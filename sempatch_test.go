package sempatch

import (
	"strings"
	"testing"
)

const renamePatch = `@r@
expression list el;
@@
- foo(el)
+ bar(el)
`

func TestApplyOneShot(t *testing.T) {
	res, err := Apply("r.cocci", renamePatch, Options{},
		File{Name: "a.c", Src: "void f(void){ foo(1, 2); }\n"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Outputs["a.c"], "bar(1, 2);") {
		t.Errorf("output: %s", res.Outputs["a.c"])
	}
	if len(res.Changed()) != 1 || res.Changed()[0] != "a.c" {
		t.Errorf("changed: %v", res.Changed())
	}
}

func TestApplierMultipleFiles(t *testing.T) {
	p, err := ParsePatch("r.cocci", renamePatch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewApplier(p, Options{}).Apply(
		File{Name: "a.c", Src: "void f(void){ foo(1); }\n"},
		File{Name: "b.c", Src: "void g(void){ nothing(); }\n"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changed()) != 1 {
		t.Errorf("changed=%v", res.Changed())
	}
	if res.Outputs["b.c"] != "void g(void){ nothing(); }\n" {
		t.Errorf("untouched file modified: %q", res.Outputs["b.c"])
	}
}

func TestPatchRules(t *testing.T) {
	p, err := ParsePatch("two.cocci", "@one@\n@@\n- a();\n\n@two depends on one@\n@@\n- b();\n")
	if err != nil {
		t.Fatal(err)
	}
	rules := p.Rules()
	if len(rules) != 2 || rules[0] != "one" || rules[1] != "two" {
		t.Errorf("rules=%v", rules)
	}
}

func TestRegisterScript(t *testing.T) {
	patch := `@find@
identifier fn;
expression list el;
@@
fn(el)

@script:go xf@
fn << find.fn;
nf;
@@
(go)

@apply@
identifier find.fn;
identifier xf.nf;
@@
- fn
+ nf
(...)
`
	p, err := ParsePatch("s.cocci", patch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewApplier(p, Options{}).
		RegisterScript("xf", func(in map[string]string) (map[string]string, error) {
			return map[string]string{"nf": "v2_" + in["fn"]}, nil
		}).
		Apply(File{Name: "a.c", Src: "void f(void){ compute(9); }\n"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Outputs["a.c"], "v2_compute(9);") {
		t.Errorf("output: %s", res.Outputs["a.c"])
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParsePatch("bad.cocci", "not a patch"); err == nil {
		t.Error("expected parse error")
	}
	if _, err := ParsePatchFile("/nonexistent/x.cocci"); err == nil {
		t.Error("expected file error")
	}
}

func TestDefinesPropagate(t *testing.T) {
	patch := "virtual enable;\n\n@r depends on enable@\n@@\n- drop_me();\n"
	src := "void f(void){ drop_me(); }\n"
	res, err := Apply("v.cocci", patch, Options{}, File{Name: "a.c", Src: src})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changed()) != 0 {
		t.Error("rule ran without its virtual define")
	}
	res, err = Apply("v.cocci", patch, Options{Defines: []string{"enable"}}, File{Name: "a.c", Src: src})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changed()) != 1 {
		t.Error("define did not enable the rule")
	}
}

func TestOptionsPropagate(t *testing.T) {
	// C++23 multi-index requires the right dialect flags end to end.
	patch := "@m@\nsymbol a;\nexpression x,y,z;\n@@\n- a[x][y][z]\n+ a[x, y, z]\n"
	res, err := Apply("m.cocci", patch, Options{CPlusPlus: true, Std: 23},
		File{Name: "a.cc", Src: "void f(double ***a){ a[1][2][3] = 0; }\n"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Outputs["a.cc"], "a[1, 2, 3] = 0;") {
		t.Errorf("output: %s", res.Outputs["a.cc"])
	}
}
