// Package accomp translates OpenACC compute directives to OpenMP, the use
// case the paper sketches with a pragmainfo metavariable and a Python
// helper ("Translation of directive-based APIs"). It implements a real
// directive/clause parser and a mapping table in the spirit of Intel's
// application migration tool, so the semantic patch's script rule can call
// into it instead of returning a hardcoded clause.
package accomp

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Directive is a parsed OpenACC (or OpenMP) pragma line body: the text after
// "#pragma acc".
type Directive struct {
	// Name is the directive, possibly two words ("parallel loop",
	// "enter data").
	Name string
	// Clauses in source order.
	Clauses []Clause
}

// Clause is one clause with an optional parenthesized argument.
type Clause struct {
	Name string
	Arg  string // contents of (...), "" if none
}

// String renders the directive back to pragma-body text.
func (d Directive) String() string {
	var sb strings.Builder
	sb.WriteString(d.Name)
	for _, c := range d.Clauses {
		sb.WriteByte(' ')
		sb.WriteString(c.Name)
		if c.Arg != "" {
			sb.WriteByte('(')
			sb.WriteString(c.Arg)
			sb.WriteByte(')')
		}
	}
	return sb.String()
}

// ParseDirective parses the body of an OpenACC pragma (without "#pragma acc").
func ParseDirective(body string) (Directive, error) {
	toks, err := scan(body)
	if err != nil {
		return Directive{}, err
	}
	if len(toks) == 0 {
		return Directive{}, fmt.Errorf("empty directive")
	}
	d := Directive{}
	i := 0
	// Multi-word directive heads.
	head := toks[0].word
	i++
	switch head {
	case "parallel", "kernels", "serial":
		if i < len(toks) && toks[i].word == "loop" && toks[i].arg == "" {
			head += " loop"
			i++
		}
	case "enter", "exit":
		if i < len(toks) && toks[i].word == "data" {
			head += " data"
			i++
		}
	}
	d.Name = head
	for ; i < len(toks); i++ {
		d.Clauses = append(d.Clauses, Clause{Name: toks[i].word, Arg: toks[i].arg})
	}
	return d, nil
}

type tok struct {
	word string
	arg  string
}

// scan splits "parallel loop copy(a,b) collapse(2)" into word/arg tokens.
func scan(s string) ([]tok, error) {
	var out []tok
	i := 0
	n := len(s)
	for i < n {
		for i < n && (s[i] == ' ' || s[i] == '\t' || s[i] == ',') {
			i++
		}
		if i >= n {
			break
		}
		start := i
		for i < n && s[i] != ' ' && s[i] != '\t' && s[i] != '(' && s[i] != ',' {
			i++
		}
		word := s[start:i]
		if word == "" {
			return nil, fmt.Errorf("unexpected character %q in directive", string(s[i]))
		}
		t := tok{word: word}
		// optional (...) argument, balanced
		for i < n && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i < n && s[i] == '(' {
			depth := 0
			argStart := i + 1
			for ; i < n; i++ {
				if s[i] == '(' {
					depth++
				} else if s[i] == ')' {
					depth--
					if depth == 0 {
						break
					}
				}
			}
			if depth != 0 {
				return nil, fmt.Errorf("unbalanced parentheses in %q", s)
			}
			t.arg = strings.TrimSpace(s[argStart:i])
			i++ // past ')'
		}
		out = append(out, t)
	}
	return out, nil
}

// Mode selects the OpenMP flavour to emit.
type Mode uint8

// Translation modes.
const (
	// Host targets multicore CPU OpenMP (parallel for).
	Host Mode = iota
	// Offload targets OpenMP device offloading (target teams ...).
	Offload
)

// directiveMap maps OpenACC directives to OpenMP per mode.
var directiveMap = map[string][2]string{
	//                     Host                      Offload
	"parallel":      {"parallel", "target teams"},
	"parallel loop": {"parallel for", "target teams distribute parallel for"},
	"kernels":       {"parallel", "target teams"},
	"kernels loop":  {"parallel for", "target teams distribute parallel for"},
	"serial":        {"single", "target"},
	"serial loop":   {"for", "target"},
	"loop":          {"for", "distribute parallel for"},
	"data":          {"", "target data"},
	"enter data":    {"", "target enter data"},
	"exit data":     {"", "target exit data"},
	"update":        {"", "target update"},
	"routine":       {"declare simd", "declare target"},
	"declare":       {"", "declare target"},
	"atomic":        {"atomic", "atomic"},
	"wait":          {"taskwait", "taskwait"},
	"host_data":     {"", "target data"},
	"cache":         {"", ""},
}

// clauseMap maps OpenACC clauses to OpenMP clauses; %s is the argument.
var clauseMap = map[string]string{
	"copy":          "map(tofrom: %s)",
	"copyin":        "map(to: %s)",
	"copyout":       "map(from: %s)",
	"create":        "map(alloc: %s)",
	"delete":        "map(delete: %s)",
	"present":       "map(tofrom: %s)",
	"deviceptr":     "is_device_ptr(%s)",
	"private":       "private(%s)",
	"firstprivate":  "firstprivate(%s)",
	"reduction":     "reduction(%s)",
	"num_gangs":     "num_teams(%s)",
	"num_workers":   "num_threads(%s)",
	"vector_length": "simdlen(%s)",
	"collapse":      "collapse(%s)",
	"if":            "if(%s)",
	"default":       "default(%s)",
	"device":        "map(tofrom: %s)",
	"self":          "map(from: %s)",
	"host":          "map(from: %s)",
	"async":         "nowait",
	"wait":          "",
	"gang":          "",
	"worker":        "",
	"vector":        "simd",
	"seq":           "",
	"independent":   "",
	"auto":          "",
}

var (
	fpOnce sync.Once
	fp     string
)

// Fingerprint returns a short stable hash of the translation tables. Script
// handlers that call into this package fold it into their declared version
// (batch.RegisterScriptVersioned), so editing a table entry invalidates
// every cached outcome the translator helped produce.
func Fingerprint() string {
	fpOnce.Do(func() {
		h := sha256.New()
		names := make([]string, 0, len(directiveMap))
		for name := range directiveMap {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			m := directiveMap[name]
			fmt.Fprintf(h, "d:%s=%s|%s\n", name, m[Host], m[Offload])
		}
		names = names[:0]
		for name := range clauseMap {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(h, "c:%s=%s\n", name, clauseMap[name])
		}
		fp = hex.EncodeToString(h.Sum(nil))[:12]
	})
	return fp
}

// Warning describes a directive or clause the translator dropped or
// approximated.
type Warning struct {
	What string
	Why  string
}

// Translate converts an OpenACC directive body into an OpenMP directive
// body. The returned string excludes "#pragma omp ". An empty string means
// the directive has no OpenMP equivalent and the pragma should be removed.
func Translate(body string, mode Mode) (string, []Warning, error) {
	d, err := ParseDirective(body)
	if err != nil {
		return "", nil, err
	}
	var warns []Warning
	heads, ok := directiveMap[d.Name]
	if !ok {
		return "", warns, fmt.Errorf("unknown OpenACC directive %q", d.Name)
	}
	head := heads[mode]
	if head == "" {
		warns = append(warns, Warning{What: d.Name, Why: "no host-mode OpenMP equivalent; dropped"})
		return "", warns, nil
	}
	parts := []string{head}
	simd := false
	for _, c := range d.Clauses {
		tmpl, ok := clauseMap[c.Name]
		if !ok {
			warns = append(warns, Warning{What: c.Name, Why: "unknown clause; dropped"})
			continue
		}
		if tmpl == "" {
			if c.Name != "seq" && c.Name != "independent" && c.Name != "auto" {
				warns = append(warns, Warning{What: c.Name, Why: "no OpenMP equivalent; dropped"})
			}
			continue
		}
		if tmpl == "simd" {
			simd = true
			continue
		}
		if strings.Contains(tmpl, "%s") {
			if c.Arg == "" {
				warns = append(warns, Warning{What: c.Name, Why: "missing argument; dropped"})
				continue
			}
			parts = append(parts, fmt.Sprintf(tmpl, c.Arg))
		} else {
			parts = append(parts, tmpl)
		}
	}
	if simd {
		// append simd to the loop construct
		parts[0] = strings.TrimSpace(parts[0] + " simd")
	}
	return strings.Join(parts, " "), warns, nil
}

// TranslateSource rewrites every "#pragma acc ..." line of a C source into
// its OpenMP counterpart, preserving all other lines byte-for-byte. It is
// the line-oriented fallback the paper contrasts with the semantic patch
// approach (which goes through internal/patchlib instead).
func TranslateSource(src string, mode Mode) (string, []Warning, error) {
	var warns []Warning
	lines := strings.Split(src, "\n")
	for i, line := range lines {
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "#pragma") {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(trimmed, "#pragma"))
		if !strings.HasPrefix(rest, "acc") {
			continue
		}
		body := strings.TrimSpace(strings.TrimPrefix(rest, "acc"))
		omp, w, err := Translate(body, mode)
		warns = append(warns, w...)
		if err != nil {
			return "", warns, fmt.Errorf("line %d: %w", i+1, err)
		}
		indent := line[:len(line)-len(strings.TrimLeft(line, " \t"))]
		if omp == "" {
			lines[i] = indent + "// (removed: #pragma acc " + body + ")"
		} else {
			lines[i] = indent + "#pragma omp " + omp
		}
	}
	return strings.Join(lines, "\n"), warns, nil
}
