package accomp

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseDirective(t *testing.T) {
	d, err := ParseDirective("parallel loop copy(a,b) collapse(2) reduction(+:s)")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "parallel loop" {
		t.Errorf("name=%q", d.Name)
	}
	if len(d.Clauses) != 3 {
		t.Fatalf("clauses=%d: %+v", len(d.Clauses), d.Clauses)
	}
	if d.Clauses[0].Name != "copy" || d.Clauses[0].Arg != "a,b" {
		t.Errorf("clause 0: %+v", d.Clauses[0])
	}
	if d.Clauses[2].Arg != "+:s" {
		t.Errorf("reduction arg=%q", d.Clauses[2].Arg)
	}
}

func TestParseMultiWordHeads(t *testing.T) {
	cases := map[string]string{
		"enter data copyin(x)": "enter data",
		"exit data delete(x)":  "exit data",
		"kernels loop":         "kernels loop",
		"loop gang vector":     "loop",
		"serial":               "serial",
	}
	for body, want := range cases {
		d, err := ParseDirective(body)
		if err != nil {
			t.Errorf("%q: %v", body, err)
			continue
		}
		if d.Name != want {
			t.Errorf("%q: head=%q want %q", body, d.Name, want)
		}
	}
}

func TestParseNestedParens(t *testing.T) {
	d, err := ParseDirective("parallel if(f(a,b) > 0)")
	if err != nil {
		t.Fatal(err)
	}
	if d.Clauses[0].Arg != "f(a,b) > 0" {
		t.Errorf("arg=%q", d.Clauses[0].Arg)
	}
	if _, err := ParseDirective("parallel if(unbalanced"); err == nil {
		t.Error("expected error for unbalanced parens")
	}
}

func TestTranslateHost(t *testing.T) {
	cases := map[string]string{
		"parallel loop":                        "parallel for",
		"parallel loop copy(a)":                "parallel for map(tofrom: a)",
		"kernels copyin(x) copyout(y)":         "parallel map(to: x) map(from: y)",
		"loop vector":                          "for simd",
		"parallel loop reduction(+:s)":         "parallel for reduction(+:s)",
		"parallel num_gangs(8)":                "parallel num_teams(8)",
		"parallel loop collapse(2) private(t)": "parallel for collapse(2) private(t)",
		"atomic":                               "atomic",
	}
	for in, want := range cases {
		got, _, err := Translate(in, Host)
		if err != nil {
			t.Errorf("%q: %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("%q:\n got %q\nwant %q", in, got, want)
		}
	}
}

func TestTranslateOffload(t *testing.T) {
	got, _, err := Translate("parallel loop copy(a) num_gangs(4)", Offload)
	if err != nil {
		t.Fatal(err)
	}
	want := "target teams distribute parallel for map(tofrom: a) num_teams(4)"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
	got, _, err = Translate("enter data copyin(buf)", Offload)
	if err != nil {
		t.Fatal(err)
	}
	if got != "target enter data map(to: buf)" {
		t.Errorf("got %q", got)
	}
}

func TestTranslateDropped(t *testing.T) {
	out, warns, err := Translate("data copy(a)", Host)
	if err != nil {
		t.Fatal(err)
	}
	if out != "" {
		t.Errorf("host-mode data should be dropped, got %q", out)
	}
	if len(warns) == 0 {
		t.Error("expected a warning")
	}
}

func TestTranslateUnknownDirective(t *testing.T) {
	if _, _, err := Translate("notadirective", Host); err == nil {
		t.Error("expected error")
	}
}

func TestTranslateSeqIndependentSilent(t *testing.T) {
	out, warns, err := Translate("loop seq independent", Host)
	if err != nil {
		t.Fatal(err)
	}
	if out != "for" {
		t.Errorf("got %q", out)
	}
	if len(warns) != 0 {
		t.Errorf("seq/independent should drop silently: %+v", warns)
	}
}

func TestTranslateSource(t *testing.T) {
	src := `#include <stdio.h>
void saxpy(int n, float a, float *x, float *y) {
#pragma acc parallel loop copy(y[0:n]) copyin(x[0:n])
	for (int i = 0; i < n; ++i)
		y[i] = a * x[i] + y[i];
}
`
	out, warns, err := TranslateSource(src, Host)
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 0 {
		t.Errorf("warnings: %+v", warns)
	}
	if !strings.Contains(out, "#pragma omp parallel for map(tofrom: y[0:n]) map(to: x[0:n])") {
		t.Errorf("translation wrong:\n%s", out)
	}
	if strings.Contains(out, "acc") {
		t.Errorf("acc remnants:\n%s", out)
	}
	// untouched lines stay identical
	if !strings.Contains(out, "#include <stdio.h>") || !strings.Contains(out, "y[i] = a * x[i] + y[i];") {
		t.Errorf("unrelated lines changed:\n%s", out)
	}
}

func TestTranslateSourcePreservesIndent(t *testing.T) {
	src := "void f(){\n\t#pragma acc loop\n\tfor(;;);\n}\n"
	out, _, err := TranslateSource(src, Host)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "\t#pragma omp for") {
		t.Errorf("indentation lost:\n%s", out)
	}
}

// Property: every generated well-formed directive round-trips through the
// parser (String -> ParseDirective -> String).
func TestQuickDirectiveRoundtrip(t *testing.T) {
	heads := []string{"parallel", "parallel loop", "kernels", "loop", "data", "update"}
	clauses := []Clause{
		{Name: "copy", Arg: "a"}, {Name: "copyin", Arg: "b[0:n]"},
		{Name: "collapse", Arg: "2"}, {Name: "gang"}, {Name: "vector"},
		{Name: "reduction", Arg: "+:s"},
	}
	prop := func(h uint8, picks []uint8) bool {
		d := Directive{Name: heads[int(h)%len(heads)]}
		for _, p := range picks {
			d.Clauses = append(d.Clauses, clauses[int(p)%len(clauses)])
		}
		if len(d.Clauses) > 4 {
			d.Clauses = d.Clauses[:4]
		}
		parsed, err := ParseDirective(d.String())
		if err != nil {
			return false
		}
		return parsed.String() == d.String()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: translation is deterministic.
func TestQuickTranslateDeterministic(t *testing.T) {
	bodies := []string{"parallel loop copy(a)", "kernels", "loop vector", "atomic"}
	prop := func(p uint8, mode bool) bool {
		b := bodies[int(p)%len(bodies)]
		m := Host
		if mode {
			m = Offload
		}
		a1, _, e1 := Translate(b, m)
		a2, _, e2 := Translate(b, m)
		return a1 == a2 && (e1 == nil) == (e2 == nil)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
