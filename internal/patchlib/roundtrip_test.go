package patchlib

// Golden round-trip: every shipped experiment patch must survive the SmPL
// renderer's parse→print→parse fixpoint, and the rendered text must compile
// to a semantically identical patch — byte-identical output and identical
// match counts on the experiment's own workload.

import (
	"reflect"
	"testing"

	"repro/internal/smpl"
)

func TestExperimentPatchesRenderRoundTrip(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			p, err := smpl.ParsePatch(e.ID+".cocci", e.Patch)
			if err != nil {
				t.Fatalf("original does not parse: %v", err)
			}
			text := smpl.Render(p)
			p2, err := smpl.ParsePatch(e.ID+".cocci", text)
			if err != nil {
				t.Fatalf("rendered patch does not re-parse: %v\nrendered:\n%s", err, text)
			}
			if again := smpl.Render(p2); again != text {
				t.Fatalf("render is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", text, again)
			}

			// Semantic equivalence: the rendered patch run on the same
			// workload must produce the same output and the same matches.
			src := e.Input()
			origRes, origOut, err := e.RunOn(src)
			if err != nil {
				t.Fatalf("original run: %v", err)
			}
			rendered := e
			rendered.Patch = text
			renRes, renOut, err := rendered.RunOn(src)
			if err != nil {
				t.Fatalf("rendered run: %v", err)
			}
			if renOut != origOut {
				t.Errorf("rendered patch output diverges:\n--- original\n%s\n--- rendered\n%s", origOut, renOut)
			}
			if !reflect.DeepEqual(renRes.MatchCount, origRes.MatchCount) {
				t.Errorf("match counts diverge: original %v, rendered %v", origRes.MatchCount, renRes.MatchCount)
			}
		})
	}
}
