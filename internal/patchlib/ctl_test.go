package patchlib

import (
	"testing"

	"repro/internal/core"
	"repro/internal/smpl"
)

// Every experiment must also pass with the CTL dots backend enabled: the
// path-sensitive verification is a filter on top of the syntactic matcher
// and may never change a correct transformation into a wrong one.
func TestAllExperimentsUnderCTL(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			p, err := smpl.ParsePatch(e.ID+".cocci", e.Patch)
			if err != nil {
				t.Fatal(err)
			}
			opts := e.Opts
			opts.UseCTL = true
			eng := core.New(p, opts)
			if e.Setup != nil {
				e.Setup(eng)
			}
			name := e.ID + ".c"
			res, err := eng.Run([]core.SourceFile{{Name: name, Src: e.Input()}})
			if err != nil {
				t.Fatalf("%s under CTL: %v", e.ID, err)
			}
			if e.Check != nil {
				if cerr := e.Check(res.Outputs[name], res); cerr != nil {
					t.Fatalf("%s under CTL: %v", e.ID, cerr)
				}
			}
		})
	}
}

// The experiments' patches must parse as standalone .cocci files through
// the public entry point (no hidden coupling to engine setup).
func TestAllPatchesParseStandalone(t *testing.T) {
	for _, e := range Experiments() {
		if _, err := smpl.ParsePatch(e.ID+".cocci", e.Patch); err != nil {
			t.Errorf("%s: %v", e.ID, err)
		}
	}
}
