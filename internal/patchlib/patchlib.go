// Package patchlib embeds the paper's fourteen semantic-patch use cases
// (Section 3, "Enabled HPC Refactorings") as executable experiments. Each
// experiment couples the semantic patch text with a representative input
// workload and a checker for the transformation's expected shape; the
// benchmark harness and EXPERIMENTS.md regenerate from this index.
package patchlib

import (
	"fmt"
	"strings"

	"repro/internal/accomp"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/smpl"
)

// Experiment is one reproducible use case.
type Experiment struct {
	// ID is the experiment identifier used throughout the repo (L1..L14 for
	// the paper's listings, S* for cross-cutting studies).
	ID string
	// Title is the paper's use-case heading.
	Title string
	// Patch is the semantic patch text.
	Patch string
	// Input produces the workload source.
	Input func() string
	// InputName is the file name handed to the engine.
	InputName string
	// Opts are the engine options (language dialect).
	Opts core.Options
	// Setup optionally configures the engine (e.g. native script rules).
	Setup func(*core.Engine)
	// Check verifies the transformed output's shape.
	Check func(out string, res *core.Result) error
	// Fidelity documents deviations from the paper's listing.
	Fidelity string
}

// Run executes the experiment once and checks the result.
func (e Experiment) Run() (*core.Result, string, error) {
	res, out, err := e.apply(e.Input())
	if err != nil {
		return nil, "", err
	}
	if e.Check != nil {
		if cerr := e.Check(out, res); cerr != nil {
			return res, out, fmt.Errorf("experiment %s check failed: %w", e.ID, cerr)
		}
	}
	return res, out, nil
}

// RunOn executes the experiment's patch over a caller-provided source
// (used by the benchmarks for size sweeps).
func (e Experiment) RunOn(src string) (*core.Result, string, error) {
	return e.apply(src)
}

func (e Experiment) apply(src string) (*core.Result, string, error) {
	p, err := smpl.ParsePatch(e.ID+".cocci", e.Patch)
	if err != nil {
		return nil, "", fmt.Errorf("experiment %s: %w", e.ID, err)
	}
	eng := core.New(p, e.Opts)
	if e.Setup != nil {
		e.Setup(eng)
	}
	name := e.InputName
	if name == "" {
		name = e.ID + ".c"
	}
	res, err := eng.Run([]core.SourceFile{{Name: name, Src: src}})
	if err != nil {
		return nil, "", fmt.Errorf("experiment %s: %w", e.ID, err)
	}
	return res, res.Outputs[name], nil
}

// want returns an error when any needle is missing from out.
func want(out string, needles ...string) error {
	for _, n := range needles {
		if !strings.Contains(out, n) {
			return fmt.Errorf("missing %q in output:\n%s", n, out)
		}
	}
	return nil
}

// wantNot returns an error when any needle is still present.
func wantNot(out string, needles ...string) error {
	for _, n := range needles {
		if strings.Contains(out, n) {
			return fmt.Errorf("unexpected %q in output:\n%s", n, out)
		}
	}
	return nil
}

func gen(f func(codegen.Config) string, funcs, stmts int) func() string {
	return func() string { return f(codegen.Config{Funcs: funcs, StmtsPerFunc: stmts, Seed: 20250326}) }
}

// Experiments returns the full index in paper order.
func Experiments() []Experiment {
	return []Experiment{
		l1(), l2(), l3(), l4(), l5(), l6(), l7(),
		l8(), l9(), l10(), l11(), l12(), l13(), l14(),
		s6(),
	}
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---------------------------------------------------------------------------

func l1() Experiment {
	return Experiment{
		ID:    "L1",
		Title: "Interfacing with an instrumentation API (LIKWID markers)",
		Patch: `@@ @@
#include <omp.h>
+ #include <likwid-marker.h>

@@ @@
#pragma omp ...
{
+ LIKWID_MARKER_START(__func__);
...
+ LIKWID_MARKER_STOP(__func__);
}
`,
		Input: gen(codegen.OpenMP, 4, 2),
		Check: func(out string, res *core.Result) error {
			if err := want(out, "#include <likwid-marker.h>",
				"LIKWID_MARKER_START(__func__);", "LIKWID_MARKER_STOP(__func__);"); err != nil {
				return err
			}
			if n := strings.Count(out, "MARKER_START"); n != 4 {
				return fmt.Errorf("want 4 instrumented regions, got %d", n)
			}
			return nil
		},
	}
}

func l2() Experiment {
	return Experiment{
		ID:    "L2",
		Title: "OpenMP declare variant: function cloning with fresh identifiers",
		Patch: `@@
type T;
identifier f =~ "kernel";
parameter list PL;
statement list SL;
fresh identifier f512 = "avx512_" ## f;
fresh identifier f10 = "avx10_" ## f;
@@
+ T f512 (PL) { SL }
+ T f10 (PL) { SL }
+ #pragma omp declare variant(f512) match(device={isa("core-avx512")})
+ #pragma omp declare variant(f10) match(device={isa("core-avx10")})
T f (PL) { SL }
`,
		Input: gen(codegen.Kernels, 3, 2),
		Fidelity: "The paper's listing references v512_f/v10_f in the pragma " +
			"lines while declaring f512/f10; we use the declared names consistently.",
		Check: func(out string, res *core.Result) error {
			if err := want(out,
				"avx512_kernel_fma_0", "avx10_kernel_fma_0",
				"#pragma omp declare variant(avx512_kernel_fma_0)",
				"avx512_kernel_fma_2"); err != nil {
				return err
			}
			// helpers must not be cloned
			return wantNot(out, "avx512_helper")
		},
	}
}

func l3() Experiment {
	return Experiment{
		ID:    "L3",
		Title: "Function multiversioning: matching target attributes",
		Patch: `@@
identifier f;
type T;
@@
__attribute__((target(...,"avx512",...)))
T f(...)
{
+ // add and modify avx512-specific code only
...
}
`,
		Input: gen(codegen.Multiversion, 3, 2),
		Check: func(out string, res *core.Result) error {
			if n := strings.Count(out, "// add and modify avx512-specific code only"); n != 3 {
				return fmt.Errorf("want the marker in exactly the 3 avx512 clones, got %d", n)
			}
			return nil
		},
	}
}

func l4() Experiment {
	return Experiment{
		ID:    "L4",
		Title: "Bloat and clone removal (avx512/avx2 specializations)",
		Patch: `@c@
type T;
function f;
parameter list PL;
@@
- __attribute__((target(
(
- "avx512"
|
- "avx2"
)
- )))
- T f(PL) { ... }

@d@
type c.T;
function c.f;
parameter list c.PL;
@@
- __attribute__((target("default")))
T f(PL) { ... }
`,
		Input: gen(codegen.Multiversion, 3, 2),
		Check: func(out string, res *core.Result) error {
			if err := wantNot(out, "avx512", "avx2", "__attribute__"); err != nil {
				return err
			}
			// the default bodies survive, one per family
			if n := strings.Count(out, "void spmv_"); n != 3 {
				return fmt.Errorf("want 3 surviving functions, got %d:\n%s", n, out)
			}
			return nil
		},
	}
}

func l5() Experiment {
	return Experiment{
		ID:    "L5",
		Title: "Removal of explicit loop unrolling, rule p0",
		Patch: `@p0@
type T;
identifier i,l;
constant k={4};
statement A,B,C,D;
@@
+ #pragma omp unroll partial(4)
for (T i=0; i
- +k-1
 < l ;
- i+=k
+ ++i
)
{
\( A \& i+0 \) \(
- B \& i+1
\) \(
- C \& i+2
\) \(
- D \& i+3
\)
}
`,
		Input: gen(codegen.Unrolled, 3, 1),
		Check: func(out string, res *core.Result) error {
			if n := strings.Count(out, "#pragma omp unroll partial(4)"); n != 3 {
				return fmt.Errorf("want 3 re-rolled loops, got %d:\n%s", n, out)
			}
			return wantNot(out, "+4-1", "v0+1", "v0+2", "v0+3")
		},
	}
}

func l6() Experiment {
	return Experiment{
		ID:    "L6",
		Title: "Removal of explicit loop unrolling, rules p1+r1 (safe variant)",
		Patch: `@p1@
type T;
identifier i,l;
constant k={4};
statement A,B,C,D;
@@
for (T i=0; i+k-1 < l; i+=k)
{
\( A \& i+0 \) \( B \&
- i+1
+ i+0
\) \( C \&
- i+2
+ i+0
\) \( D \&
- i+3
+ i+0
\)
}

@r1@
type T;
identifier i,l;
constant k={4};
statement p1.A;
@@
+ #pragma omp unroll partial(4)
for (T i=0; i
- +k-1
 < l ;
- i+=k
+ ++i
)
{
A
- A A A
}
`,
		Input: gen(codegen.Unrolled, 2, 1),
		Check: func(out string, res *core.Result) error {
			if !res.Matched["r1"] {
				return fmt.Errorf("r1 did not match after p1 normalisation:\n%s", out)
			}
			if n := strings.Count(out, "#pragma omp unroll partial(4)"); n != 2 {
				return fmt.Errorf("want 2 re-rolled loops, got %d:\n%s", n, out)
			}
			// exactly one body statement per loop remains
			if n := strings.Count(out, "s[v0+0] = q[v0+0]"); n != 1 {
				return fmt.Errorf("body not collapsed to one statement:\n%s", out)
			}
			return wantNot(out, "v0+1", "v1+1", "v0+=4")
		},
	}
}

func l7() Experiment {
	return Experiment{
		ID:    "L7",
		Title: "Advanced expression modification: a[x][y][z] to C++23 a[x, y, z]",
		Patch: `@tomultiindex@
symbol a;
expression x,y,z;
@@
- a[x][y][z]
+ a[x, y, z]
`,
		Opts:  core.Options{CPlusPlus: true, Std: 23},
		Input: gen(codegen.NestedIndex, 3, 2),
		Check: func(out string, res *core.Result) error {
			if strings.Contains(out, "[i][j][k]") {
				return fmt.Errorf("nested subscripts remain:\n%s", out)
			}
			return want(out, "a[i, j, k] =")
		},
	}
}

func l8() Experiment {
	return Experiment{
		ID:    "L8",
		Title: "CUDA to HIP: function dictionary via script rules",
		Patch: `@initialize:python@ @@
C2HF = { "curand_uniform_double":
 "rocrand_uniform_double" }

@cfe@
identifier fn;
expression list el;
position p;
@@
fn@p(el)

@script:python cf2hf@
fn << cfe.fn;
nf;
@@
coccinelle.nf =
 cocci.make_ident(C2HF[fn]);

@hfe@
identifier cfe.fn;
identifier cf2hf.nf;
position cfe.p;
@@
- fn@p
+ nf
(...)
`,
		Input: gen(codegen.Curand, 3, 2),
		Check: func(out string, res *core.Result) error {
			if err := wantNot(out, "curand_uniform_double"); err != nil {
				return err
			}
			return want(out, "rocrand_uniform_double(gen)")
		},
	}
}

func l9() Experiment {
	return Experiment{
		ID:    "L9",
		Title: "CUDA to HIP: type dictionary via script rules",
		Patch: `@initialize:python@ @@
C2HT = { "__half": "rocblas_half" }

@cte@
type c_t;
identifier i;
@@
c_t i;

@script:python ct2hf@
c_t << cte.c_t;
h_t;
@@
coccinelle.h_t = cocci.make_type(C2HT[c_t])

@hte@
type ct2hf.h_t;
type cte.c_t;
identifier cte.i;
@@
- c_t i;
+ h_t i;
`,
		Input: gen(codegen.Curand, 3, 1),
		Check: func(out string, res *core.Result) error {
			if err := wantNot(out, "__half h;"); err != nil {
				return err
			}
			return want(out, "rocblas_half h;")
		},
	}
}

func l10() Experiment {
	return Experiment{
		ID:    "L10",
		Title: "CUDA to HIP: triple-chevron kernel launch",
		Patch: `@@
identifier k;
expression b,t,x,y;
expression list el;
@@
- k<<<b,t,x,y>>>(el)
+ hipLaunchKernelGGL(k,b,t,x,y,el)
`,
		Opts:  core.Options{CUDA: true},
		Input: gen(codegen.CUDA, 2, 2),
		Check: func(out string, res *core.Result) error {
			if err := wantNot(out, "<<<"); err != nil {
				return err
			}
			return want(out, "hipLaunchKernelGGL(dev_kernel_0,gridOf(n),")
		},
	}
}

func l11() Experiment {
	return Experiment{
		ID:    "L11",
		Title: "Translation of directive-based APIs: OpenACC to OpenMP",
		Patch: `@moa@
pragmainfo pi;
@@
#pragma acc pi

@script:go o2o@
pi << moa.pi;
po;
@@
(translated by internal/accomp)

@@
pragmainfo moa.pi;
pragmainfo o2o.po;
@@
- #pragma acc pi
+ #pragma omp po
`,
		Input: gen(codegen.OpenACC, 3, 1),
		Setup: func(eng *core.Engine) {
			eng.RegisterScript("o2o", func(in map[string]string) (map[string]string, error) {
				omp, _, err := accomp.Translate(in["pi"], accomp.Host)
				if err != nil {
					return nil, err
				}
				return map[string]string{"po": omp}, nil
			})
		},
		Fidelity: "The paper's o2o rule returns a hardcoded clause for brevity; " +
			"ours calls the real directive translator (internal/accomp) through " +
			"the Go script host, which is the 'small parser and translator' the " +
			"listing alludes to.",
		Check: func(out string, res *core.Result) error {
			if err := wantNot(out, "#pragma acc"); err != nil {
				return err
			}
			return want(out, "#pragma omp parallel for")
		},
	}
}

func l12() Experiment {
	return Experiment{
		ID:    "L12",
		Title: "Modern C++ STL constructs: raw search loop to std::find",
		Patch: `@rl@
type T;
constant k;
identifier elem,result,arrid;
@@
- bool result = false;
...
- for ( T &elem : arrid )
- if ( \( elem == k \| k == elem \) )
- {
- ...
- result = true;
- break;
- }
+ const bool result =
+ (find(begin(arrid),end(arrid),k) !=
+ end(arrid));

@ah depends on rl@
@@
#include <iostream>
+ #include <algorithm>
+ #include <functional>
`,
		Opts:  core.Options{CPlusPlus: true, Std: 17},
		Input: gen(codegen.SearchLoops, 3, 1),
		Check: func(out string, res *core.Result) error {
			if !res.Matched["rl"] || !res.Matched["ah"] {
				return fmt.Errorf("rules did not chain: %+v", res.Matched)
			}
			if err := want(out, "#include <algorithm>", "#include <functional>",
				"const bool found ="); err != nil {
				return err
			}
			return wantNot(out, "found = true;", "bool found = false;")
		},
	}
}

func l13() Experiment {
	return Experiment{
		ID:    "L13",
		Title: "Introduction of APIs enclosing lambdas (Kokkos)",
		Patch: `@r0@ @@
+ #include <Kokkos_Core.hpp>
#include <cmath>

@r1@
statement fb, fc;
expression n;
identifier c = {i,j};
position p;
@@
(
fc@p
&
for (...;c<n;...) fb
)

@script:python r2@
fb << r1.fb;
lb;
rp;
@@
coccinelle.lb = "KOKKOS_LAMBDA(const int i)" + fb;
coccinelle.rp = "RangePolicy<HostExecutionSpace>(0,n)";

@r3@
statement r1.fc;
position r1.p;
identifier r2.lb;
identifier r2.rp;
@@
(
fc@p
&
(
- for (...;...;...) { ... result += ...; }
+ parallel_reduce(rp, lb);
|
- for (...;...;...) { ... }
+ parallel_for(rp, lb);
)
)
`,
		Opts: core.Options{CPlusPlus: true, Std: 17},
		Input: func() string {
			return `#include <cmath>
void axpy(int n, double *x, double *y, double a) {
	for (int i = 0; i < n; ++i) { y[i] = a * x[i] + y[i]; }
	for (int q = 0; q < m; ++q) { other(q); }
}
double dot(int n, double *x, double *y) {
	double result = 0;
	for (int i = 0; i < n; ++i) { result += x[i] * y[i]; }
	return result;
}
`
		},
		Fidelity: "Exercises the paper's 'string as identifier' loophole: the " +
			"lambda body flows through an identifier metavariable as plain text.",
		Check: func(out string, res *core.Result) error {
			if err := want(out, "#include <Kokkos_Core.hpp>",
				"parallel_for(RangePolicy<HostExecutionSpace>(0,n), KOKKOS_LAMBDA(const int i){ y[i] = a * x[i] + y[i]; });",
				"parallel_reduce(RangePolicy<HostExecutionSpace>(0,n), KOKKOS_LAMBDA(const int i){ result += x[i] * y[i]; });"); err != nil {
				return err
			}
			// the loop with index q is not in the {i,j} set and must survive
			return want(out, "for (int q = 0; q < m; ++q) { other(q); }")
		},
	}
}

func l14() Experiment {
	return Experiment{
		ID:    "L14",
		Title: "Workarounds for occasional compiler bugs (librsb pragma injection)",
		Patch: `@pragma_inject@
identifier i =~ "rsb__BCSR_spmv_sasa_double_complex_[CH]__t[NTC]_r1_c1_uu_s[HS]_dE_uG";
type T;
@@
+ #pragma GCC push_options
+ #pragma GCC optimize "-O3", "-fno-tree-loop-vectorize"
T i(...)
{
...
}
+ #pragma GCC pop_options
`,
		Input: gen(codegen.Librsb, 9, 2),
		Check: func(out string, res *core.Result) error {
			// 3 of 9 functions are affected (every third)
			if n := strings.Count(out, "#pragma GCC push_options"); n != 3 {
				return fmt.Errorf("want 3 protected functions, got %d:\n%s", n, out)
			}
			if n := strings.Count(out, "#pragma GCC pop_options"); n != 3 {
				return fmt.Errorf("push/pop mismatch:\n%s", out)
			}
			return nil
		},
	}
}

// s6 is the [ML21] companion case study: AoS-to-SoA access rewriting.
func s6() Experiment {
	return Experiment{
		ID:    "S6",
		Title: "AoS to SoA access rewriting (the [ML21] GADGET case study)",
		Patch: `@soa@
identifier fld;
expression idx;
symbol P;
@@
- P[idx].fld
+ P_soa.fld[idx]
`,
		Input: gen(codegen.AoS, 3, 3),
		Fidelity: "The GADGET sources are not redistributable; the workload " +
			"generator emits particle AoS loops with the same access shapes " +
			"([ML21] reports tens of accesses per loop over thousands of loops).",
		Check: func(out string, res *core.Result) error {
			if strings.Contains(out, "P[i].") {
				return fmt.Errorf("AoS accesses remain:\n%s", out)
			}
			return want(out, "P_soa.px[i]", "P_soa.vx[i]")
		},
	}
}
