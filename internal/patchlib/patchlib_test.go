package patchlib

import (
	"strings"
	"testing"
)

// TestAllExperiments runs every paper use case end to end and applies its
// shape check. This is the core fidelity suite of the reproduction.
func TestAllExperiments(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, out, err := e.Run()
			if err != nil {
				t.Fatalf("%s (%s): %v", e.ID, e.Title, err)
			}
			if len(res.Matched) == 0 {
				t.Fatalf("%s: no rule matched\noutput:\n%s", e.ID, out)
			}
		})
	}
}

func TestByID(t *testing.T) {
	e, ok := ByID("L7")
	if !ok || e.ID != "L7" {
		t.Fatalf("ByID(L7) = %+v, %v", e, ok)
	}
	if _, ok := ByID("L99"); ok {
		t.Error("ByID(L99) should fail")
	}
}

func TestExperimentsCoverPaperSections(t *testing.T) {
	// Every Section-3 use case of the paper has an experiment, in order.
	wantIDs := []string{"L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9", "L10", "L11", "L12", "L13", "L14", "S6"}
	got := Experiments()
	if len(got) != len(wantIDs) {
		t.Fatalf("experiments=%d want %d", len(got), len(wantIDs))
	}
	for i, e := range got {
		if e.ID != wantIDs[i] {
			t.Errorf("experiment %d: id=%s want %s", i, e.ID, wantIDs[i])
		}
		if e.Title == "" || e.Patch == "" || e.Input == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestExperimentsAreIdempotentOnUnmatchedInput(t *testing.T) {
	// Applying a patch to code that contains none of its shapes must not
	// change anything.
	neutral := "int plain_add(int a, int b) { return a + b; }\n"
	for _, e := range Experiments() {
		if e.ID == "L8" {
			// cfe matches any call; plain_add has none, still fine
			continue
		}
		res, out, err := e.RunOn(neutral)
		if err != nil {
			t.Errorf("%s on neutral input: %v", e.ID, err)
			continue
		}
		if out != neutral {
			t.Errorf("%s changed neutral input:\n%s\ndiff:\n%s", e.ID, out, res.Diffs[e.InputNameOr()])
		}
	}
}

// InputNameOr is a test helper mirroring the engine's default naming.
func (e Experiment) InputNameOr() string {
	if e.InputName != "" {
		return e.InputName
	}
	return e.ID + ".c"
}

func TestL6SaferThanL5(t *testing.T) {
	// The paper's point: p0 can mis-fire on four statements that merely
	// index i+0..i+3 without being identical modulo the index; p1+r1 will
	// not collapse them. Verify the differing-statement case survives L6.
	src := `void f(int n, double *s, double *q) {
	for (int v=0; v+4-1 < n; v+=4)
	{
		s[v+0] = q[v+0];
		s[v+1] = q[v+1] * 2;
		s[v+2] = q[v+2];
		s[v+3] = q[v+3];
	}
}
`
	l6, _ := ByID("L6")
	res, out, err := l6.RunOn(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched["r1"] {
		t.Errorf("r1 must not match non-uniform unrolled body:\n%s", out)
	}
	// p1 normalised the indices but r1 refused; the paper notes the code is
	// then incorrect and a third undo rule would be needed — we just verify
	// the collapse did not happen.
	if strings.Count(out, "s[v+0]") == 1 && !strings.Contains(out, "* 2") {
		t.Errorf("loop was collapsed despite non-uniform body:\n%s", out)
	}
}

func TestL14RegexSelectivity(t *testing.T) {
	l14, _ := ByID("L14")
	src := `int rsb__BCSR_spmv_sasa_double_complex_H__tC_r1_c1_uu_sS_dE_uG(const void *a) { return 0; }
int rsb__BCSR_spmv_sasa_single_real_C__tN_r1_c1_uu_sH_dE_uG(const void *a) { return 0; }
`
	_, out, err := l14.RunOn(src)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "push_options") != 1 {
		t.Errorf("regex must select only the double-complex kernel:\n%s", out)
	}
}

func TestL11WarnsSurviveUnknownClauses(t *testing.T) {
	l11, _ := ByID("L11")
	src := "void f(int n, double *a){\n#pragma acc parallel loop copy(a[0:n])\nfor (int i=0;i<n;++i) a[i]=0;\n}\n"
	_, out, err := l11.RunOn(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "#pragma omp parallel for map(tofrom: a[0:n])") {
		t.Errorf("clause translation wrong:\n%s", out)
	}
}

func TestDiffsProduced(t *testing.T) {
	l7, _ := ByID("L7")
	res, _, err := l7.Run()
	if err != nil {
		t.Fatal(err)
	}
	d := res.Diffs["L7.c"]
	if !strings.Contains(d, "-") || !strings.Contains(d, "+") {
		t.Errorf("unified diff missing markers:\n%s", d)
	}
	if !strings.Contains(d, "@@") {
		t.Errorf("no hunk headers:\n%s", d)
	}
}
