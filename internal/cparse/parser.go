// Package cparse implements a recursive-descent parser for the C/C++ dialect
// used by the semantic patch engine. The same parser, given a metavariable
// table, parses SmPL pattern fragments: metavariables parse as their declared
// kind (types, statements, parameter lists, ...), "..." parses as a dots
// wildcard, and column-zero or escaped parentheses parse as pattern
// disjunctions/conjunctions.
package cparse

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/cast"
	"repro/internal/ctoken"
)

// MetaTable resolves metavariable names during pattern parsing. A nil table
// means plain C/C++ parsing.
type MetaTable interface {
	Lookup(name string) (cast.MetaKind, bool)
}

// Options controls the accepted dialect.
type Options struct {
	CPlusPlus bool
	Std       int  // 11, 17, 23; 23 enables multi-index subscripts
	CUDA      bool // enables <<< >>> kernel launches
	Meta      MetaTable
}

// Pattern reports whether the parser runs in SmPL pattern mode.
func (o Options) pattern() bool { return o.Meta != nil }

// A ParseError carries a source position.
type ParseError struct {
	File string
	Pos  ctoken.Pos
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("%s:%s: %s", e.File, e.Pos, e.Msg)
}

// parses counts full (non-pattern) translation-unit parses, the dominant
// cost on corpus-scale runs. Tests use the counter to assert parse-sharing:
// campaign mode must parse each unchanged file at most once however many
// patches it applies, and cached runs must not parse at all.
var parses atomic.Int64

// Parses returns the number of translation-unit parses performed so far by
// this process (SmPL pattern-fragment parses are not counted).
func Parses() int64 { return parses.Load() }

// Parse lexes and parses a translation unit.
func Parse(name, src string, opts Options) (*cast.File, error) {
	if !opts.pattern() {
		parses.Add(1)
	}
	lf, err := ctoken.Lex(name, src, ctoken.Options{
		SmPL:         opts.pattern(),
		CUDAChevrons: opts.CUDA || strings.Contains(src, "<<<"),
	})
	if err != nil {
		return nil, err
	}
	return ParseTokens(lf, opts)
}

// ParseTokens parses an already-lexed file.
func ParseTokens(lf *ctoken.File, opts Options) (*cast.File, error) {
	p := &parser{toks: lf.Tokens, file: lf, opts: opts}
	f := &cast.File{Name: lf.Name, Toks: lf}
	for !p.at(ctoken.EOF) {
		d, err := p.parseTopDecl()
		if err != nil {
			return nil, err
		}
		if d != nil {
			f.Decls = append(f.Decls, d)
		}
	}
	return f, nil
}

// ParseExpr parses a standalone expression (used by tests and by the SmPL
// pattern compiler for expression patterns and `when != e` constraints).
func ParseExpr(src string, opts Options) (cast.Expr, *ctoken.File, error) {
	lf, err := ctoken.Lex("<expr>", src, ctoken.Options{
		SmPL:         opts.pattern(),
		CUDAChevrons: true,
	})
	if err != nil {
		return nil, nil, err
	}
	p := &parser{toks: lf.Tokens, file: lf, opts: opts}
	e, err := p.parseExpr(precComma + 1)
	if err != nil {
		return nil, nil, err
	}
	if !p.at(ctoken.EOF) {
		return nil, nil, p.errHere("trailing tokens after expression")
	}
	return e, lf, nil
}

// ParseStmts parses a brace-less statement sequence (used for SmPL
// statement-sequence patterns and plus-line fragments).
func ParseStmts(src string, opts Options) ([]cast.Stmt, *ctoken.File, error) {
	lf, err := ctoken.Lex("<stmts>", src, ctoken.Options{
		SmPL:         opts.pattern(),
		CUDAChevrons: true,
	})
	if err != nil {
		return nil, nil, err
	}
	stmts, err := ParseStmtsTokens(lf, opts)
	return stmts, lf, err
}

// ParseStmtsTokens parses an already-lexed statement sequence.
func ParseStmtsTokens(lf *ctoken.File, opts Options) ([]cast.Stmt, error) {
	p := &parser{toks: lf.Tokens, file: lf, opts: opts}
	var out []cast.Stmt
	for !p.at(ctoken.EOF) {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// ParseExprTokens parses an already-lexed file as one expression.
func ParseExprTokens(lf *ctoken.File, opts Options) (cast.Expr, error) {
	p := &parser{toks: lf.Tokens, file: lf, opts: opts}
	e, err := p.parseExpr(precComma + 1)
	if err != nil {
		return nil, err
	}
	if !p.at(ctoken.EOF) {
		return nil, p.errHere("trailing tokens after expression")
	}
	return e, nil
}

type parser struct {
	toks []ctoken.Token
	file *ctoken.File
	opts Options
	pos  int
}

func (p *parser) tok() ctoken.Token     { return p.toks[p.pos] }
func (p *parser) at(k ctoken.Kind) bool { return p.toks[p.pos].Kind == k }
func (p *parser) peek(n int) ctoken.Token {
	if p.pos+n < len(p.toks) {
		return p.toks[p.pos+n]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) is(text string) bool   { return p.tok().Is(text) }
func (p *parser) isIdent(s string) bool { return p.tok().IsIdent(s) }
func (p *parser) next() ctoken.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) expect(text string) (int, error) {
	if !p.is(text) {
		return 0, p.errHere("expected %q, found %q", text, p.tok().Text)
	}
	i := p.pos
	p.next()
	return i, nil
}

func (p *parser) errHere(format string, args ...any) error {
	return &ParseError{File: p.file.Name, Pos: p.tok().Pos, Msg: fmt.Sprintf(format, args...)}
}

// metaKind looks up an identifier in the metavariable table.
func (p *parser) metaKind(name string) (cast.MetaKind, bool) {
	if p.opts.Meta == nil {
		return 0, false
	}
	return p.opts.Meta.Lookup(name)
}

func (p *parser) isMeta(name string, kinds ...cast.MetaKind) bool {
	k, ok := p.metaKind(name)
	if !ok {
		return false
	}
	for _, want := range kinds {
		if k == want {
			return true
		}
	}
	return false
}

// setSpan assigns a token span to a node created by the parser.
type spanner interface{ SetSpan(first, last int) }

func setSpan(n cast.Node, first, last int) {
	if s, ok := n.(spanner); ok {
		if last < first {
			last = first
		}
		s.SetSpan(first, last)
	}
}

// span helper: last consumed token index.
func (p *parser) prev() int {
	if p.pos == 0 {
		return 0
	}
	return p.pos - 1
}
