package cparse

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cast"
)

func TestParseCUDAQualifiers(t *testing.T) {
	f := parseOK(t, "__global__ void k(int n, double *a) { a[0] = n; }", Options{CUDA: true})
	fd := f.Decls[0].(*cast.FuncDef)
	found := false
	for _, q := range fd.Ret.Quals {
		if q == "__global__" {
			found = true
		}
	}
	if !found {
		t.Errorf("__global__ qualifier lost: %+v", fd.Ret)
	}
}

func TestParseExternC(t *testing.T) {
	f := parseOK(t, `extern "C" { int exported(int x); }
int after;`, Options{CPlusPlus: true})
	if len(f.Decls) != 2 {
		t.Fatalf("decls=%d", len(f.Decls))
	}
	if _, ok := f.Decls[0].(*cast.OpaqueDecl); !ok {
		t.Errorf("extern C block: %T", f.Decls[0])
	}
}

func TestParseCastsAndSizeof(t *testing.T) {
	cases := []string{
		"void f(void){ x = (double)n; }",
		"void f(void){ x = (unsigned long)p; }",
		"void f(void){ x = (float*)buf; }",
		"void f(void){ n = sizeof(double); }",
		"void f(void){ n = sizeof(struct particle); }",
		"void f(void){ n = sizeof x; }",
		"void f(void){ p = malloc(n * sizeof(double)); }",
	}
	for _, src := range cases {
		parseOK(t, src, Options{})
	}
}

func TestParseCommaInForPost(t *testing.T) {
	f := parseOK(t, "void f(int n){ for (i = 0, j = n; i < j; ++i, --j) swap(i, j); }", Options{})
	fd := f.Decls[0].(*cast.FuncDef)
	fl := fd.Body.Items[0].(*cast.For)
	if _, ok := fl.Post.(*cast.CommaExpr); !ok {
		t.Errorf("post clause: %T", fl.Post)
	}
	if _, ok := fl.Init.(*cast.ExprStmt); !ok {
		t.Errorf("init clause: %T", fl.Init)
	}
}

func TestParseTernaryChain(t *testing.T) {
	e, _, err := ParseExpr("a ? b : c ? d : e", Options{})
	if err != nil {
		t.Fatal(err)
	}
	top := e.(*cast.CondExpr)
	if _, ok := top.Else.(*cast.CondExpr); !ok {
		t.Errorf("ternary should right-nest: else is %T", top.Else)
	}
}

func TestParseLabelVsScope(t *testing.T) {
	// "std::foo()" must not parse 'std' as a label
	f := parseOK(t, "void f(void){ std::sort(v); out: return; }", Options{CPlusPlus: true})
	fd := f.Decls[0].(*cast.FuncDef)
	if _, ok := fd.Body.Items[0].(*cast.ExprStmt); !ok {
		t.Errorf("std::sort parsed as %T", fd.Body.Items[0])
	}
	if _, ok := fd.Body.Items[1].(*cast.Label); !ok {
		t.Errorf("label parsed as %T", fd.Body.Items[1])
	}
}

func TestParseDefineInBody(t *testing.T) {
	src := "void f(void){\n#define LOCAL 1\n\tuse(LOCAL);\n}\n"
	f := parseOK(t, src, Options{})
	fd := f.Decls[0].(*cast.FuncDef)
	if len(fd.Body.Items) != 2 {
		t.Fatalf("items=%d", len(fd.Body.Items))
	}
}

func TestParseInitializerLists(t *testing.T) {
	f := parseOK(t, "double m[2][2] = {{1, 0}, {0, 1}};", Options{})
	vd := f.Decls[0].(*cast.VarDecl)
	il, ok := vd.Items[0].Init.(*cast.InitList)
	if !ok {
		t.Fatalf("init: %T", vd.Items[0].Init)
	}
	if len(il.Elems) != 2 {
		t.Errorf("elems=%d", len(il.Elems))
	}
	if _, ok := il.Elems[0].(*cast.InitList); !ok {
		t.Errorf("nested init list: %T", il.Elems[0])
	}
}

func TestParseEmptyAndCommentOnly(t *testing.T) {
	for _, src := range []string{"", "  \n\t\n", "/* just a comment */\n", "// line\n"} {
		f, err := Parse("e.c", src, Options{})
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if len(f.Decls) != 0 {
			t.Errorf("%q: decls=%d", src, len(f.Decls))
		}
	}
}

func TestParseConstructorInit(t *testing.T) {
	parseOK(t, "void f(void){ std::vector<int> v(10); }", Options{CPlusPlus: true})
}

func TestParsePatternDoWhile(t *testing.T) {
	// do-while in pattern mode with metavariables
	meta := tableOf(map[string]cast.MetaKind{"E": cast.MetaExprKind, "S": cast.MetaStmtKind})
	stmts, _, err := ParseStmts("do S while (E);", Options{Meta: meta})
	if err != nil {
		t.Fatal(err)
	}
	dw, ok := stmts[0].(*cast.DoWhile)
	if !ok {
		t.Fatalf("stmt: %T", stmts[0])
	}
	if _, ok := dw.Body.(*cast.MetaStmt); !ok {
		t.Errorf("body: %T", dw.Body)
	}
}

type fakeTable map[string]cast.MetaKind

func (f fakeTable) Lookup(name string) (cast.MetaKind, bool) {
	k, ok := f[name]
	return k, ok
}

func tableOf(m map[string]cast.MetaKind) MetaTable { return fakeTable(m) }

func TestParseNestedSwitch(t *testing.T) {
	src := `void f(int a, int b){
	switch (a) {
	case 1:
		switch (b) {
		case 2: inner(); break;
		}
		break;
	}
}`
	parseOK(t, src, Options{})
}

func TestParseStringConcatAdjacent(t *testing.T) {
	// Adjacent string literals appear in pragma text and calls; our parser
	// sees them as separate primary expressions inside calls only when
	// separated by commas, so just ensure a call with one literal parses.
	parseOK(t, `void f(void){ puts("hello world"); }`, Options{})
}

func TestParseErrorMessagesAreSpecific(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"void f( {", "expected"},
		{"void f(void){ return 1 }", `";"`},
		{"void f(void){ if x) y(); }", `"("`},
	}
	for _, c := range cases {
		_, err := Parse("e.c", c.src, Options{})
		if err == nil {
			t.Errorf("%q: expected error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q missing %q", c.src, err.Error(), c.want)
		}
	}
}

func TestParseDeepNestingNoStackOverflow(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("void f(void){ x = ")
	depth := 300
	for i := 0; i < depth; i++ {
		sb.WriteString("(1 + ")
	}
	sb.WriteString("0")
	for i := 0; i < depth; i++ {
		sb.WriteString(")")
	}
	sb.WriteString("; }")
	parseOK(t, sb.String(), Options{})
}

func TestParseManyFunctions(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "int fn_%d(int x) { return x + %d; }\n", i, i)
	}
	f := parseOK(t, sb.String(), Options{})
	if len(f.Funcs()) != 200 {
		t.Errorf("funcs=%d", len(f.Funcs()))
	}
}
