package cparse

import (
	"repro/internal/cast"
	"repro/internal/ctoken"
)

// Precedence levels, loosest first.
const (
	precComma = iota
	precAssign
	precCond
	precLor
	precLand
	precBitor
	precBitxor
	precBitand
	precEq
	precRel
	precShift
	precAdd
	precMul
	precUnary
)

var binPrec = map[string]int{
	"=": precAssign, "+=": precAssign, "-=": precAssign, "*=": precAssign,
	"/=": precAssign, "%=": precAssign, "&=": precAssign, "|=": precAssign,
	"^=": precAssign, "<<=": precAssign, ">>=": precAssign,
	"||": precLor, "&&": precLand,
	"|": precBitor, "^": precBitxor, "&": precBitand,
	"==": precEq, "!=": precEq,
	"<": precRel, ">": precRel, "<=": precRel, ">=": precRel,
	"<<": precShift, ">>": precShift,
	"+": precAdd, "-": precAdd,
	"*": precMul, "/": precMul, "%": precMul,
}

func rightAssoc(prec int) bool { return prec == precAssign }

// parseExpr parses an expression of at least the given precedence.
func (p *parser) parseExpr(minPrec int) (cast.Expr, error) {
	start := p.pos
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return p.parseBinRHS(start, lhs, minPrec)
}

func (p *parser) parseBinRHS(start int, lhs cast.Expr, minPrec int) (cast.Expr, error) {
	for {
		t := p.tok()

		// SmPL escaped conjunction/disjunction closing or separators end the
		// expression, as do their column-zero forms.
		if t.Is("\\)") || t.Is("\\|") || t.Is("\\&") {
			return lhs, nil
		}
		if p.opts.pattern() && t.Pos.Col == 1 && (t.Is("|") || t.Is("&") || t.Is(")") || t.Is("(")) {
			return lhs, nil
		}

		// Ternary conditional.
		if t.Is("?") && precCond >= minPrec {
			p.next()
			then, err := p.parseExpr(precComma + 1)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(":"); err != nil {
				return nil, err
			}
			els, err := p.parseExpr(precCond)
			if err != nil {
				return nil, err
			}
			c := &cast.CondExpr{Cond: lhs, Then: then, Else: els}
			setSpan(c, start, p.prev())
			lhs = c
			continue
		}

		// Comma expression (sequence), only at the loosest level.
		if t.Is(",") && minPrec == precComma {
			list := []cast.Expr{lhs}
			for p.is(",") {
				p.next()
				e, err := p.parseExpr(precComma + 1)
				if err != nil {
					return nil, err
				}
				list = append(list, e)
			}
			ce := &cast.CommaExpr{List: list}
			setSpan(ce, start, p.prev())
			return ce, nil
		}

		prec, ok := binPrec[t.Text]
		if !ok || t.Kind != ctoken.Punct || prec < minPrec {
			return lhs, nil
		}
		op := t.Text
		p.next()
		nextMin := prec + 1
		if rightAssoc(prec) {
			nextMin = prec
		}
		rstart := p.pos
		rhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		rhs, err = p.parseBinRHS(rstart, rhs, nextMin)
		if err != nil {
			return nil, err
		}
		b := &cast.BinaryExpr{X: lhs, Op: op, Y: rhs}
		setSpan(b, start, p.prev())
		lhs = b
	}
}

func (p *parser) parseUnary() (cast.Expr, error) {
	start := p.pos
	t := p.tok()

	// SmPL expression dots: "..." as a wildcard expression.
	if p.opts.pattern() && t.Is("...") {
		p.next()
		d := &cast.Dots{}
		setSpan(d, start, start)
		return d, nil
	}
	// SmPL escaped groups in expression position.
	if p.opts.pattern() && t.Is("\\(") {
		return p.parseExprGroup()
	}
	// Column-zero parentheses form a disjunction in expression position too
	// (used inside attribute argument patterns) — but only when the group
	// really contains a column-zero separator; "(...)" wrapped to a new line
	// is ordinary syntax.
	if p.opts.pattern() && t.Is("(") && t.Pos.Col == 1 && p.colGroupIsDisj() {
		return p.parseColDisjExpr()
	}

	switch {
	case t.Is("++") || t.Is("--") || t.Is("!") || t.Is("~") || t.Is("-") ||
		t.Is("+") || t.Is("*") || t.Is("&"):
		op := t.Text
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		u := &cast.UnaryExpr{Op: op, X: x}
		setSpan(u, start, p.prev())
		return u, nil
	case t.IsIdent("sizeof"):
		p.next()
		se := &cast.SizeofExpr{}
		if p.is("(") && p.typeAhead(1) {
			p.next()
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			for p.is("*") {
				ty.Stars++
				p.next()
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			se.Type = ty
		} else {
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			se.X = x
		}
		setSpan(se, start, p.prev())
		return se, nil
	case t.Is("(") && p.castAhead():
		p.next()
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		for p.is("*") {
			ty.Stars++
			p.next()
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		c := &cast.CastExpr{Type: ty, X: x}
		setSpan(c, start, p.prev())
		return c, nil
	}
	return p.parsePostfix()
}

// castAhead checks for "(type)" followed by something castable.
func (p *parser) castAhead() bool {
	if !p.typeAhead(1) {
		return false
	}
	// find matching ')'
	depth := 0
	i := 0
	for {
		t := p.peek(i)
		if t.Kind == ctoken.EOF {
			return false
		}
		if t.Is("(") {
			depth++
		} else if t.Is(")") {
			depth--
			if depth == 0 {
				break
			}
		}
		i++
	}
	after := p.peek(i + 1)
	// A cast is followed by a unary expression start.
	if after.Kind == ctoken.Ident && !ctoken.Keywords[after.Text] {
		return true
	}
	if after.Kind == ctoken.IntLit || after.Kind == ctoken.FloatLit ||
		after.Kind == ctoken.StringLit || after.Kind == ctoken.CharLit {
		return true
	}
	if after.Is("(") || after.Is("-") || after.Is("*") || after.Is("&") || after.Is("!") || after.Is("~") {
		// "(x)(y)" would be a call on parenthesized expr; require the inner
		// tokens to look like a type.
		return p.strictTypeAhead(1, i)
	}
	return false
}

// typeAhead reports whether tokens starting at offset form a type name.
func (p *parser) typeAhead(off int) bool {
	t := p.peek(off)
	if t.Kind != ctoken.Ident {
		return false
	}
	if ctoken.TypeKeywords[t.Text] {
		return true
	}
	if p.isMeta(t.Text, cast.MetaTypeKind) {
		return true
	}
	return false
}

// strictTypeAhead: all tokens in (start..end) are type-ish.
func (p *parser) strictTypeAhead(from, to int) bool {
	for i := from; i < to; i++ {
		t := p.peek(i)
		if t.Kind == ctoken.Ident {
			if !ctoken.TypeKeywords[t.Text] && !p.isMeta(t.Text, cast.MetaTypeKind) {
				return false
			}
			continue
		}
		if t.Is("*") || t.Is("const") {
			continue
		}
		return false
	}
	return to > from
}

// parseExprGroup parses \( a \| b \) or \( a \& b \) in expression position.
func (p *parser) parseExprGroup() (cast.Expr, error) {
	start := p.pos
	p.next() // \(
	var items []cast.Expr
	conj := false
	for {
		e, err := p.parseExpr(precComma + 1)
		if err != nil {
			return nil, err
		}
		items = append(items, e)
		switch {
		case p.is("\\|"):
			p.next()
		case p.is("\\&"):
			conj = true
			p.next()
		case p.is("\\)"):
			p.next()
			if conj {
				c := &cast.ConjExpr{Operands: items}
				setSpan(c, start, p.prev())
				return c, nil
			}
			d := &cast.DisjExpr{Branches: items}
			setSpan(d, start, p.prev())
			return d, nil
		default:
			return nil, p.errHere("expected \\| \\& or \\) in pattern group")
		}
	}
}

// colGroupIsDisj reports whether the column-zero "(" at the current
// position opens a disjunction group, i.e. a column-zero "|" or "&"
// separator appears before its matching column-zero ")".
func (p *parser) colGroupIsDisj() bool {
	depth := 0
	for i := 0; ; i++ {
		t := p.peek(i)
		if t.Kind == ctoken.EOF {
			return false
		}
		switch {
		case t.Is("("):
			depth++
		case t.Is(")"):
			depth--
			if depth == 0 {
				return false
			}
		case (t.Is("|") || t.Is("&")) && t.Pos.Col == 1 && depth == 1:
			return true
		}
	}
}

// parseColDisjExpr parses a column-zero ( a | b ) disjunction where the
// delimiters each sit in column one of their lines.
func (p *parser) parseColDisjExpr() (cast.Expr, error) {
	start := p.pos
	p.next() // (
	d := &cast.DisjExpr{}
	for {
		e, err := p.parseExpr(precComma + 1)
		if err != nil {
			return nil, err
		}
		d.Branches = append(d.Branches, e)
		t := p.tok()
		switch {
		case t.Is("|") && t.Pos.Col == 1:
			p.next()
		case t.Is(")") && t.Pos.Col == 1:
			p.next()
			setSpan(d, start, p.prev())
			return d, nil
		default:
			return nil, p.errHere("expected column-zero | or ) in disjunction")
		}
	}
}

func (p *parser) parsePostfix() (cast.Expr, error) {
	prim, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	return p.parsePostfixFrom(prim)
}

func (p *parser) parsePostfixFrom(x cast.Expr) (cast.Expr, error) {
	start, _ := x.Span()
	for {
		t := p.tok()
		// A column-zero paren opening a real disjunction group ends the
		// postfix chain (it belongs to the enclosing pattern).
		if p.opts.pattern() && t.Is("(") && t.Pos.Col == 1 && p.colGroupIsDisj() {
			return x, nil
		}
		switch {
		case t.Is("("):
			p.next()
			call := &cast.CallExpr{Fun: x}
			for !p.is(")") && !p.at(ctoken.EOF) {
				a, err := p.parseCallArg()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.is(",") {
					p.next()
				} else {
					break
				}
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			setSpan(call, start, p.prev())
			x = call
		case t.Is("["):
			p.next()
			idx := &cast.IndexExpr{X: x}
			for !p.is("]") && !p.at(ctoken.EOF) {
				e, err := p.parseExpr(precComma + 1)
				if err != nil {
					return nil, err
				}
				idx.Indices = append(idx.Indices, e)
				if p.is(",") {
					if p.opts.Std < 23 && !p.opts.pattern() {
						// Pre-C++23: comma inside [] is a comma expression.
						p.next()
						rest := []cast.Expr{idx.Indices[len(idx.Indices)-1]}
						idx.Indices = idx.Indices[:len(idx.Indices)-1]
						for {
							e, err := p.parseExpr(precComma + 1)
							if err != nil {
								return nil, err
							}
							rest = append(rest, e)
							if p.is(",") {
								p.next()
								continue
							}
							break
						}
						ce := &cast.CommaExpr{List: rest}
						f, _ := rest[0].Span()
						setSpan(ce, f, p.prev())
						idx.Indices = append(idx.Indices, ce)
						break
					}
					p.next()
				} else {
					break
				}
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			setSpan(idx, start, p.prev())
			x = idx
		case t.Is(".") || t.Is("->") || t.Is("::"):
			op := t.Text
			p.next()
			if p.tok().Kind != ctoken.Ident {
				return nil, p.errHere("expected member name after %q", op)
			}
			nameTok := p.pos
			m := &cast.MemberExpr{X: x, Op: op, Name: p.next().Text, NameT: nameTok}
			setSpan(m, start, p.prev())
			x = m
		case t.Is("++") || t.Is("--"):
			p.next()
			u := &cast.UnaryExpr{Op: t.Text, X: x, Postfix: true}
			setSpan(u, start, p.prev())
			x = u
		case t.Is("<<<"):
			p.next()
			kl := &cast.KernelLaunch{Fun: x}
			for !p.is(">>>") && !p.at(ctoken.EOF) {
				e, err := p.parseCallArg()
				if err != nil {
					return nil, err
				}
				kl.Config = append(kl.Config, e)
				if p.is(",") {
					p.next()
				} else {
					break
				}
			}
			if _, err := p.expect(">>>"); err != nil {
				return nil, err
			}
			if _, err := p.expect("("); err != nil {
				return nil, err
			}
			for !p.is(")") && !p.at(ctoken.EOF) {
				e, err := p.parseCallArg()
				if err != nil {
					return nil, err
				}
				kl.Args = append(kl.Args, e)
				if p.is(",") {
					p.next()
				} else {
					break
				}
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			setSpan(kl, start, p.prev())
			x = kl
		default:
			return x, nil
		}
	}
}

// parseCallArg parses one call argument; in pattern mode "..." and
// expression-list metavariables are allowed. In code mode, an argument the
// expression grammar cannot model (template-heavy C++, lambda macros) is
// preserved as an opaque balanced token run.
func (p *parser) parseCallArg() (cast.Expr, error) {
	if p.opts.pattern() {
		if p.is("...") {
			s := p.pos
			p.next()
			d := &cast.Dots{}
			setSpan(d, s, s)
			return d, nil
		}
		if p.tok().Kind == ctoken.Ident {
			if p.isMeta(p.tok().Text, cast.MetaExprListKind) && (p.peek(1).Is(",") || p.peek(1).Is(")")) {
				s := p.pos
				me := &cast.MetaExpr{Name: p.next().Text, Kind: cast.MetaExprListKind}
				setSpan(me, s, s)
				return me, nil
			}
		}
		return p.parseExpr(precComma + 1)
	}
	save := p.pos
	e, err := p.parseExpr(precComma + 1)
	if err == nil && (p.is(",") || p.is(")") || p.is(">>>")) {
		return e, nil
	}
	// Fallback: consume a balanced run up to a depth-zero ',' ')' or '>>>'.
	p.pos = save
	start := p.pos
	depth := 0
	for !p.at(ctoken.EOF) {
		t := p.tok()
		switch {
		case t.Is("(") || t.Is("[") || t.Is("{"):
			depth++
		case t.Is(")") || t.Is("]") || t.Is("}"):
			if depth == 0 {
				goto done
			}
			depth--
		case (t.Is(",") || t.Is(">>>")) && depth == 0:
			goto done
		case t.Is(";"):
			// a semicolon can only appear inside braces here
			if depth == 0 {
				goto done
			}
		}
		p.next()
	}
done:
	if p.pos == start {
		if err != nil {
			return nil, err
		}
		return nil, p.errHere("empty call argument")
	}
	o := &cast.OpaqueExpr{Raw: p.file.Slice(start, p.prev())}
	setSpan(o, start, p.prev())
	return o, nil
}

func (p *parser) parsePrimary() (cast.Expr, error) {
	start := p.pos
	t := p.tok()
	switch t.Kind {
	case ctoken.IntLit, ctoken.FloatLit, ctoken.CharLit, ctoken.StringLit:
		p.next()
		b := &cast.BasicLit{Kind: t.Kind, Value: t.Text}
		setSpan(b, start, start)
		return b, nil
	case ctoken.Ident:
		if ctoken.Keywords[t.Text] {
			switch t.Text {
			case "true", "false", "nullptr":
				p.next()
				b := &cast.BasicLit{Kind: ctoken.Ident, Value: t.Text}
				setSpan(b, start, start)
				return b, nil
			case "new", "delete":
				// Opaque-ish: treat as unary operator on following expr.
				p.next()
				if p.is("[") { // delete[]
					p.next()
					if _, err := p.expect("]"); err != nil {
						return nil, err
					}
				}
				x, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				u := &cast.UnaryExpr{Op: t.Text, X: x}
				setSpan(u, start, p.prev())
				return u, nil
			case "operator", "template", "typename", "class", "struct":
				return nil, p.errHere("unsupported keyword %q in expression", t.Text)
			}
		}
		p.next()
		// Metavariable?
		if k, ok := p.metaKind(t.Text); ok {
			me := &cast.MetaExpr{Name: t.Text, Kind: k}
			// @position attachments
			for p.is("@") && p.peek(1).Kind == ctoken.Ident {
				p.next()
				me.Positions = append(me.Positions, p.next().Text)
			}
			setSpan(me, start, p.prev())
			return me, nil
		}
		id := &cast.Ident{Name: t.Text}
		setSpan(id, start, start)
		return id, nil
	case ctoken.Punct:
		if t.Is("(") {
			p.next()
			e, err := p.parseExpr(precComma)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			pe := &cast.ParenExpr{X: e}
			setSpan(pe, start, p.prev())
			return pe, nil
		}
		if t.Is("{") {
			return p.parseInitList()
		}
		if t.Is("[") && p.opts.CPlusPlus {
			return p.parseLambda()
		}
	}
	return nil, p.errHere("unexpected token %q in expression", t.Text)
}

// parseLambda parses a C++ lambda shallowly.
func (p *parser) parseLambda() (cast.Expr, error) {
	start := p.pos
	p.next() // [
	capStart := p.pos
	depth := 1
	for depth > 0 && !p.at(ctoken.EOF) {
		if p.is("[") {
			depth++
		} else if p.is("]") {
			depth--
			if depth == 0 {
				break
			}
		}
		p.next()
	}
	capture := ""
	if p.pos > capStart {
		capture = p.file.Slice(capStart, p.pos-1)
	}
	if _, err := p.expect("]"); err != nil {
		return nil, err
	}
	l := &cast.LambdaExpr{Capture: capture}
	if p.is("(") {
		pl, err := p.parseParamList()
		if err != nil {
			return nil, err
		}
		l.Params = pl
	}
	// skip specifiers until '{'
	for !p.is("{") && !p.at(ctoken.EOF) && !p.is(";") && !p.is(")") && !p.is(",") {
		p.next()
	}
	if p.is("{") {
		body, err := p.parseCompound()
		if err != nil {
			return nil, err
		}
		l.Body = body
	}
	setSpan(l, start, p.prev())
	return l, nil
}
