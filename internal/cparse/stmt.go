package cparse

import (
	"repro/internal/cast"
	"repro/internal/ctoken"
)

// parseCompound parses { items... }.
func (p *parser) parseCompound() (*cast.Compound, error) {
	start, err := p.expect("{")
	if err != nil {
		return nil, err
	}
	c := &cast.Compound{}
	for !p.is("}") && !p.at(ctoken.EOF) {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		c.Items = append(c.Items, s)
	}
	if _, err := p.expect("}"); err != nil {
		return nil, err
	}
	setSpan(c, start, p.prev())
	return c, nil
}

// parseStmt parses one statement (or pattern statement form).
func (p *parser) parseStmt() (cast.Stmt, error) {
	start := p.pos
	t := p.tok()

	// SmPL pattern forms first.
	if p.opts.pattern() {
		if t.Is("...") {
			return p.parseDots()
		}
		if t.Is("\\(") || (t.Is("(") && t.Pos.Col == 1 && p.colGroupIsDisj()) {
			return p.parseStmtGroup(t.Text == "\\(")
		}
		if t.Kind == ctoken.Ident {
			if k, ok := p.metaKind(t.Text); ok && (k == cast.MetaStmtKind || k == cast.MetaStmtListKind) {
				// Statement metavariable, optionally with @pos, optionally a
				// bare reference (no semicolon).
				p.next()
				ms := &cast.MetaStmt{Name: t.Text}
				for p.is("@") && p.peek(1).Kind == ctoken.Ident {
					p.next()
					ms.Positions = append(ms.Positions, p.next().Text)
				}
				if p.is(";") {
					p.next()
				}
				setSpan(ms, start, p.prev())
				return ms, nil
			}
		}
	}

	if t.Kind == ctoken.PP {
		d, err := p.parsePP()
		if err != nil {
			return nil, err
		}
		switch x := d.(type) {
		case *cast.Pragma:
			ps := &cast.PragmaStmt{P: x}
			setSpan(ps, start, p.prev())
			return ps, nil
		case *cast.PragmaPattern:
			return x, nil
		case *cast.IncludePattern:
			return x, nil
		default:
			// Other directives in statement position: wrap as pragma-like
			// opaque statement via Empty + raw? Represent as PragmaStmt with
			// synthetic pragma to preserve tokens.
			pr := &cast.Pragma{Raw: p.file.Tokens[start].Text}
			setSpan(pr, start, start)
			ps := &cast.PragmaStmt{P: pr}
			setSpan(ps, start, start)
			return ps, nil
		}
	}

	if t.Is(";") {
		p.next()
		e := &cast.Empty{}
		setSpan(e, start, start)
		return e, nil
	}
	if t.Is("{") {
		return p.parseCompound()
	}

	if t.Kind == ctoken.Ident {
		switch t.Text {
		case "if":
			return p.parseIf()
		case "for":
			return p.parseFor()
		case "while":
			return p.parseWhile()
		case "do":
			return p.parseDoWhile()
		case "return":
			p.next()
			r := &cast.Return{}
			if !p.is(";") {
				e, err := p.parseExpr(precComma)
				if err != nil {
					return nil, err
				}
				r.X = e
			}
			if _, err := p.expect(";"); err != nil {
				return nil, err
			}
			setSpan(r, start, p.prev())
			return r, nil
		case "break":
			p.next()
			if _, err := p.expect(";"); err != nil {
				return nil, err
			}
			b := &cast.Break{}
			setSpan(b, start, p.prev())
			return b, nil
		case "continue":
			p.next()
			if _, err := p.expect(";"); err != nil {
				return nil, err
			}
			c := &cast.Continue{}
			setSpan(c, start, p.prev())
			return c, nil
		case "goto":
			p.next()
			if p.tok().Kind != ctoken.Ident {
				return nil, p.errHere("expected label after goto")
			}
			g := &cast.Goto{Label: p.next().Text}
			if _, err := p.expect(";"); err != nil {
				return nil, err
			}
			setSpan(g, start, p.prev())
			return g, nil
		case "switch":
			return p.parseSwitch()
		case "case", "default":
			return p.parseCase()
		}
		// Label: ident ':' (not '::')
		if p.peek(1).Is(":") && !p.peek(2).Is(":") && !ctoken.Keywords[t.Text] {
			if _, isMeta := p.metaKind(t.Text); !isMeta {
				p.next()
				p.next()
				inner, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				l := &cast.Label{Name: t.Text, Stmt: inner}
				setSpan(l, start, p.prev())
				return l, nil
			}
		}
	}

	// Declaration or expression statement.
	if p.startsDecl() {
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		stars := 0
		ref := false
		for p.is("*") {
			stars++
			p.next()
		}
		if p.is("&") {
			ref = true
			p.next()
		}
		name, err := p.parseDeclName()
		if err != nil {
			return nil, err
		}
		vd, err := p.parseVarDeclRest(start, ty, stars, ref, name)
		if err != nil {
			return nil, err
		}
		ds := &cast.DeclStmt{D: vd}
		setSpan(ds, start, p.prev())
		return ds, nil
	}

	e, err := p.parseExpr(precComma)
	if err != nil {
		return nil, err
	}
	if p.is(";") {
		p.next()
	} else if !p.patternStmtEnd() {
		return nil, p.errHere("expected \";\", found %q", p.tok().Text)
	}
	es := &cast.ExprStmt{X: e}
	setSpan(es, start, p.prev())
	return es, nil
}

// patternStmtEnd reports whether, in pattern mode, the current token may
// legally terminate a semicolon-less statement: end of pattern, or a
// disjunction/conjunction separator (escaped or column-zero).
func (p *parser) patternStmtEnd() bool {
	if !p.opts.pattern() {
		return false
	}
	t := p.tok()
	if t.Kind == ctoken.EOF {
		return true
	}
	if t.Is("\\|") || t.Is("\\&") || t.Is("\\)") {
		return true
	}
	if t.Pos.Col == 1 && (t.Is("|") || t.Is("&") || t.Is(")")) {
		return true
	}
	return false
}

// parseDots parses "..." in statement position plus any "when" constraints:
// `when != e`, `when == e`, `when any`, `when strict`, `when exists`,
// `when forall`. Contradictory combinations are rejected here so the
// matcher never sees them.
func (p *parser) parseDots() (cast.Stmt, error) {
	start := p.pos
	p.next() // ...
	d := &cast.Dots{}
	for p.isIdent("when") {
		p.next()
		switch {
		case p.is("!="):
			p.next()
			e, err := p.parseExpr(precAssign)
			if err != nil {
				return nil, err
			}
			d.WhenNot = append(d.WhenNot, e)
		case p.is("=="):
			p.next()
			e, err := p.parseExpr(precAssign)
			if err != nil {
				return nil, err
			}
			d.WhenOnly = append(d.WhenOnly, e)
		case p.isIdent("any"):
			p.next()
			d.WhenAny = true
		case p.isIdent("strict"):
			p.next()
			d.WhenStrict = true
		case p.isIdent("exists"):
			p.next()
			d.WhenExists = true
		case p.isIdent("forall"):
			p.next()
			d.WhenForall = true
		default:
			return nil, p.errHere("unsupported when constraint")
		}
	}
	if d.WhenAny && (len(d.WhenNot) > 0 || len(d.WhenOnly) > 0 || d.WhenStrict || d.WhenForall) {
		return nil, p.errHere("`when any` contradicts other when constraints on the same dots")
	}
	if d.WhenExists && (d.WhenStrict || d.WhenForall) {
		return nil, p.errHere("`when exists` contradicts `when strict`/`when forall` on the same dots")
	}
	setSpan(d, start, p.prev())
	return d, nil
}

// parseStmtGroup parses a statement-level disjunction/conjunction group
// delimited either by escaped \( \| \& \) tokens or by column-zero ( | ).
func (p *parser) parseStmtGroup(escaped bool) (cast.Stmt, error) {
	start := p.pos
	open, bar, amp, close := "(", "|", "&", ")"
	if escaped {
		open, bar, amp, close = "\\(", "\\|", "\\&", "\\)"
	}
	if _, err := p.expect(open); err != nil {
		return nil, err
	}
	isSep := func(txt string) bool {
		t := p.tok()
		if !t.Is(txt) {
			return false
		}
		return escaped || t.Pos.Col == 1
	}
	var branches [][]cast.Stmt
	var cur []cast.Stmt
	conj := false
	for {
		if p.at(ctoken.EOF) {
			return nil, p.errHere("unterminated pattern group")
		}
		if isSep(close) {
			p.next()
			branches = append(branches, cur)
			break
		}
		if isSep(bar) {
			p.next()
			branches = append(branches, cur)
			cur = nil
			continue
		}
		if isSep(amp) {
			p.next()
			branches = append(branches, cur)
			cur = nil
			conj = true
			continue
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		cur = append(cur, s)
	}
	if conj {
		cs := &cast.ConjStmt{}
		for _, b := range branches {
			if len(b) != 1 {
				return nil, p.errHere("conjunction branches must be single statements")
			}
			cs.Operands = append(cs.Operands, b[0])
		}
		setSpan(cs, start, p.prev())
		return cs, nil
	}
	ds := &cast.DisjStmt{Branches: branches}
	setSpan(ds, start, p.prev())
	return ds, nil
}

// startsDecl decides whether the statement at the current position is a
// declaration.
func (p *parser) startsDecl() bool {
	t := p.tok()
	if t.Kind != ctoken.Ident {
		return false
	}
	if ctoken.TypeKeywords[t.Text] {
		return true
	}
	if ctoken.Keywords[t.Text] && t.Text != "bool" && t.Text != "auto" {
		return false
	}
	if p.isMeta(t.Text, cast.MetaTypeKind) {
		return true
	}
	if _, isMeta := p.metaKind(t.Text); isMeta {
		return false
	}
	// Heuristics for "Typename x ...".
	i := 1
	// qualified name a::b
	for p.peek(i).Is("::") && p.peek(i+1).Kind == ctoken.Ident {
		i += 2
	}
	// Template suffix like vec<int>, only in C++ mode and only when the
	// angle brackets balance before a statement boundary.
	if p.opts.CPlusPlus && p.peek(i).Is("<") {
		if j, ok := p.scanTemplateArgs(i); ok {
			i = j
		}
	}
	stars := 0
	for p.peek(i).Is("*") || p.peek(i).Is("&") {
		if p.peek(i).Is("*") {
			stars++
		}
		i++
	}
	nt := p.peek(i)
	if nt.Kind != ctoken.Ident || ctoken.Keywords[nt.Text] {
		return false
	}
	if _, isMeta := p.metaKind(nt.Text); isMeta && !p.isMeta(nt.Text, cast.MetaIdentKind, cast.MetaFreshIdentKind) {
		return false
	}
	after := p.peek(i + 1)
	switch {
	case after.Is(";"), after.Is("="), after.Is(","), after.Is("["):
		return true
	}
	return false
}

// scanTemplateArgs checks whether tokens starting at offset form a balanced
// <...> group, returning the offset just past the closing '>'.
func (p *parser) scanTemplateArgs(off int) (int, bool) {
	depth := 0
	for i := off; ; i++ {
		t := p.peek(i)
		switch {
		case t.Kind == ctoken.EOF || t.Is(";") || t.Is("{") || t.Is("}") || t.Kind == ctoken.PP:
			return 0, false
		case t.Is("<"):
			depth++
		case t.Is(">"):
			depth--
			if depth == 0 {
				return i + 1, true
			}
		case t.Is(">>"):
			depth -= 2
			if depth == 0 {
				return i + 1, true
			}
			if depth < 0 {
				return 0, false
			}
		}
	}
}

func (p *parser) parseIf() (cast.Stmt, error) {
	start := p.pos
	p.next() // if
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr(precComma)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st := &cast.If{Cond: cond, Then: then}
	if p.isIdent("else") {
		p.next()
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	setSpan(st, start, p.prev())
	return st, nil
}

func (p *parser) parseFor() (cast.Stmt, error) {
	start := p.pos
	p.next() // for
	if _, err := p.expect("("); err != nil {
		return nil, err
	}

	// Range-based for? Scan for ':' before ';' at paren depth 0.
	if p.opts.CPlusPlus || p.opts.pattern() {
		if p.rangeForAhead() {
			return p.parseRangeFor(start)
		}
	}

	f := &cast.For{}
	// init clause
	switch {
	case p.is(";"):
		es := p.pos
		p.next()
		e := &cast.Empty{}
		setSpan(e, es, es)
		f.Init = e
	case p.opts.pattern() && p.is("..."):
		ds := p.pos
		p.next()
		d := &cast.Dots{}
		setSpan(d, ds, ds)
		f.Init = d
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
	case p.startsDecl():
		is := p.pos
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		stars := 0
		for p.is("*") {
			stars++
			p.next()
		}
		name, err := p.parseDeclName()
		if err != nil {
			return nil, err
		}
		vd, err := p.parseVarDeclRest(is, ty, stars, false, name)
		if err != nil {
			return nil, err
		}
		dsNode := &cast.DeclStmt{D: vd}
		setSpan(dsNode, is, p.prev())
		f.Init = dsNode
	default:
		is := p.pos
		e, err := p.parseExpr(precComma)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		es := &cast.ExprStmt{X: e}
		setSpan(es, is, p.prev())
		f.Init = es
	}
	// cond clause
	if !p.is(";") {
		if p.opts.pattern() && p.is("...") && p.peek(1).Is(";") {
			ds := p.pos
			p.next()
			d := &cast.Dots{}
			setSpan(d, ds, ds)
			f.Cond = d
		} else {
			e, err := p.parseExpr(precComma)
			if err != nil {
				return nil, err
			}
			f.Cond = e
		}
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	// post clause
	if !p.is(")") {
		if p.opts.pattern() && p.is("...") && p.peek(1).Is(")") {
			ds := p.pos
			p.next()
			d := &cast.Dots{}
			setSpan(d, ds, ds)
			f.Post = d
		} else {
			e, err := p.parseExpr(precComma)
			if err != nil {
				return nil, err
			}
			f.Post = e
		}
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	f.Body = body
	setSpan(f, start, p.prev())
	return f, nil
}

// rangeForAhead reports whether the for-header contains ':' before ';' at
// depth zero (range-based for).
func (p *parser) rangeForAhead() bool {
	depth := 0
	for i := 0; ; i++ {
		t := p.peek(i)
		if t.Kind == ctoken.EOF {
			return false
		}
		switch {
		case t.Is("(") || t.Is("[") || t.Is("{"):
			depth++
		case t.Is(")") || t.Is("]") || t.Is("}"):
			if depth == 0 {
				return false
			}
			depth--
		case t.Is(";") && depth == 0:
			return false
		case t.Is(":") && depth == 0 && !p.peek(i+1).Is(":") && (i == 0 || !p.peek(i-1).Is(":")):
			return true
		case t.Is("?") && depth == 0:
			return false // ternary ':' would confuse us
		}
	}
}

func (p *parser) parseRangeFor(start int) (cast.Stmt, error) {
	rf := &cast.RangeFor{}
	is := p.pos
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	stars := 0
	ref := false
	for p.is("*") {
		stars++
		p.next()
	}
	if p.is("&") {
		ref = true
		p.next()
	}
	name, err := p.parseDeclName()
	if err != nil {
		return nil, err
	}
	d := &cast.Declarator{Stars: stars, Ref: ref, Name: name}
	nf, _ := name.Span()
	setSpan(d, nf, p.prev())
	vd := &cast.VarDecl{Type: ty, Items: []*cast.Declarator{d}}
	setSpan(vd, is, p.prev())
	rf.Decl = vd
	if _, err := p.expect(":"); err != nil {
		return nil, err
	}
	x, err := p.parseExpr(precComma)
	if err != nil {
		return nil, err
	}
	rf.X = x
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	rf.Body = body
	setSpan(rf, start, p.prev())
	return rf, nil
}

func (p *parser) parseWhile() (cast.Stmt, error) {
	start := p.pos
	p.next() // while
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr(precComma)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	w := &cast.While{Cond: cond, Body: body}
	setSpan(w, start, p.prev())
	return w, nil
}

func (p *parser) parseDoWhile() (cast.Stmt, error) {
	start := p.pos
	p.next() // do
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if !p.isIdent("while") {
		return nil, p.errHere("expected while after do body")
	}
	p.next()
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr(precComma)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	dw := &cast.DoWhile{Body: body, Cond: cond}
	setSpan(dw, start, p.prev())
	return dw, nil
}

func (p *parser) parseSwitch() (cast.Stmt, error) {
	start := p.pos
	p.next() // switch
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr(precComma)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s := &cast.Switch{Cond: cond, Body: body}
	setSpan(s, start, p.prev())
	return s, nil
}

func (p *parser) parseCase() (cast.Stmt, error) {
	start := p.pos
	c := &cast.Case{}
	if p.isIdent("case") {
		p.next()
		e, err := p.parseExpr(precComma)
		if err != nil {
			return nil, err
		}
		c.X = e
	} else {
		p.next() // default
	}
	if _, err := p.expect(":"); err != nil {
		return nil, err
	}
	setSpan(c, start, p.prev())
	return c, nil
}
