package cparse

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cast"
)

func parseOK(t *testing.T, src string, opts Options) *cast.File {
	t.Helper()
	f, err := Parse("test.c", src, opts)
	if err != nil {
		t.Fatalf("Parse error: %v\nsource:\n%s", err, src)
	}
	return f
}

func TestParseSimpleFunction(t *testing.T) {
	f := parseOK(t, "int add(int a, int b) { return a + b; }", Options{})
	if len(f.Decls) != 1 {
		t.Fatalf("want 1 decl, got %d", len(f.Decls))
	}
	fd, ok := f.Decls[0].(*cast.FuncDef)
	if !ok {
		t.Fatalf("not a FuncDef: %T", f.Decls[0])
	}
	if fd.Name.Name != "add" || fd.Ret.Base != "int" {
		t.Errorf("name=%q ret=%q", fd.Name.Name, fd.Ret.Base)
	}
	if len(fd.Params.Params) != 2 {
		t.Errorf("params=%d", len(fd.Params.Params))
	}
	if len(fd.Body.Items) != 1 {
		t.Errorf("body items=%d", len(fd.Body.Items))
	}
	if _, ok := fd.Body.Items[0].(*cast.Return); !ok {
		t.Errorf("body[0] is %T, want Return", fd.Body.Items[0])
	}
}

func TestParseDirectives(t *testing.T) {
	src := "#include <omp.h>\n#include \"local.h\"\n#pragma omp parallel for\nvoid f(void) {}\n"
	f := parseOK(t, src, Options{})
	if len(f.Decls) != 4 {
		t.Fatalf("want 4 decls, got %d", len(f.Decls))
	}
	inc := f.Decls[0].(*cast.Include)
	if inc.Path != "omp.h" || !inc.Angled {
		t.Errorf("include 0: %+v", inc)
	}
	inc2 := f.Decls[1].(*cast.Include)
	if inc2.Path != "local.h" || inc2.Angled {
		t.Errorf("include 1: %+v", inc2)
	}
	pr := f.Decls[2].(*cast.Pragma)
	if pr.Info != "omp parallel for" || pr.Word[0] != "omp" {
		t.Errorf("pragma: %+v", pr)
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
void f(int n) {
	int s = 0;
	for (int i = 0; i < n; ++i) {
		if (i % 2 == 0) s += i; else continue;
	}
	while (s > 0) { s--; }
	do { s++; } while (s < 3);
	switch (s) {
	case 1: break;
	default: s = 0;
	}
	goto out;
out:
	return;
}
`
	f := parseOK(t, src, Options{})
	fd := f.Decls[0].(*cast.FuncDef)
	kinds := []string{}
	for _, s := range fd.Body.Items {
		kinds = append(kinds, fmt.Sprintf("%T", s))
	}
	want := []string{"*cast.DeclStmt", "*cast.For", "*cast.While", "*cast.DoWhile", "*cast.Switch", "*cast.Goto", "*cast.Label"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Errorf("got %v\nwant %v", kinds, want)
	}
}

func TestParseExprPrecedence(t *testing.T) {
	e, _, err := ParseExpr("a + b * c", Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, ok := e.(*cast.BinaryExpr)
	if !ok || b.Op != "+" {
		t.Fatalf("top is %T %v", e, e)
	}
	if inner, ok := b.Y.(*cast.BinaryExpr); !ok || inner.Op != "*" {
		t.Errorf("rhs should be mult, got %T", b.Y)
	}

	e, _, err = ParseExpr("a = b = c", Options{})
	if err != nil {
		t.Fatal(err)
	}
	b = e.(*cast.BinaryExpr)
	if b.Op != "=" {
		t.Fatalf("op=%q", b.Op)
	}
	if inner, ok := b.Y.(*cast.BinaryExpr); !ok || inner.Op != "=" {
		t.Errorf("assignment should be right-assoc, rhs is %T", b.Y)
	}
}

func TestParseExprForms(t *testing.T) {
	cases := []struct {
		src  string
		want string // expected top-level node type
	}{
		{"x", "*cast.Ident"},
		{"42", "*cast.BasicLit"},
		{"f(a, b)", "*cast.CallExpr"},
		{"a[i]", "*cast.IndexExpr"},
		{"a[i][j]", "*cast.IndexExpr"},
		{"p->x", "*cast.MemberExpr"},
		{"s.x", "*cast.MemberExpr"},
		{"std::find", "*cast.MemberExpr"},
		{"(x)", "*cast.ParenExpr"},
		{"-x", "*cast.UnaryExpr"},
		{"x++", "*cast.UnaryExpr"},
		{"a ? b : c", "*cast.CondExpr"},
		{"sizeof(int)", "*cast.SizeofExpr"},
		{"(float)x", "*cast.CastExpr"},
		{"a < b", "*cast.BinaryExpr"},
	}
	for _, c := range cases {
		e, _, err := ParseExpr(c.src, Options{})
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if got := fmt.Sprintf("%T", e); got != c.want {
			t.Errorf("%q: got %s want %s", c.src, got, c.want)
		}
	}
}

func TestParseKernelLaunch(t *testing.T) {
	f := parseOK(t, "void g(void){ k<<<b, t, 0, s>>>(x, y); }", Options{CUDA: true})
	fd := f.Decls[0].(*cast.FuncDef)
	es := fd.Body.Items[0].(*cast.ExprStmt)
	kl, ok := es.X.(*cast.KernelLaunch)
	if !ok {
		t.Fatalf("not a KernelLaunch: %T", es.X)
	}
	if len(kl.Config) != 4 || len(kl.Args) != 2 {
		t.Errorf("config=%d args=%d", len(kl.Config), len(kl.Args))
	}
}

func TestParseMultiIndexCxx23(t *testing.T) {
	f := parseOK(t, "void g(){ a[x, y, z] = 1; }", Options{CPlusPlus: true, Std: 23})
	fd := f.Decls[0].(*cast.FuncDef)
	asn := fd.Body.Items[0].(*cast.ExprStmt).X.(*cast.BinaryExpr)
	idx := asn.X.(*cast.IndexExpr)
	if len(idx.Indices) != 3 {
		t.Errorf("indices=%d want 3", len(idx.Indices))
	}
	// Pre-23: same text is a comma expression in a single subscript.
	f = parseOK(t, "void g(){ a[x, y, z] = 1; }", Options{CPlusPlus: true, Std: 17})
	fd = f.Decls[0].(*cast.FuncDef)
	asn = fd.Body.Items[0].(*cast.ExprStmt).X.(*cast.BinaryExpr)
	idx = asn.X.(*cast.IndexExpr)
	if len(idx.Indices) != 1 {
		t.Errorf("pre-23 indices=%d want 1", len(idx.Indices))
	}
}

func TestParseRangeFor(t *testing.T) {
	f := parseOK(t, "void g(){ for (float &e : arr) { e += 1; } }", Options{CPlusPlus: true})
	fd := f.Decls[0].(*cast.FuncDef)
	rf, ok := fd.Body.Items[0].(*cast.RangeFor)
	if !ok {
		t.Fatalf("not RangeFor: %T", fd.Body.Items[0])
	}
	if rf.Decl.Type.Base != "float" || !rf.Decl.Items[0].Ref {
		t.Errorf("decl: %+v", rf.Decl)
	}
	if id, ok := rf.X.(*cast.Ident); !ok || id.Name != "arr" {
		t.Errorf("range expr: %v", rf.X)
	}
}

func TestParseAttributes(t *testing.T) {
	src := `__attribute__((target("avx512"))) void fk(double *a) { a[0] = 0; }`
	f := parseOK(t, src, Options{})
	fd := f.Decls[0].(*cast.FuncDef)
	if len(fd.Attrs) != 1 {
		t.Fatalf("attrs=%d", len(fd.Attrs))
	}
	call, ok := fd.Attrs[0].Args[0].(*cast.CallExpr)
	if !ok {
		t.Fatalf("attr arg is %T", fd.Attrs[0].Args[0])
	}
	if id := call.Fun.(*cast.Ident); id.Name != "target" {
		t.Errorf("attr fun=%v", id.Name)
	}
}

func TestParseOpaqueDecls(t *testing.T) {
	src := `
typedef struct { double x, y, z; } vec3;
struct particle { double pos[3]; int id; };
enum color { RED, GREEN };
template<typename T> T twice(T v) { return v + v; }
namespace ns { int w; }
int x = 1;
`
	f := parseOK(t, src, Options{CPlusPlus: true})
	var opaque, vars int
	for _, d := range f.Decls {
		switch d.(type) {
		case *cast.OpaqueDecl:
			opaque++
		case *cast.VarDecl:
			vars++
		}
	}
	if opaque != 5 || vars != 1 {
		t.Errorf("opaque=%d vars=%d (want 5, 1)", opaque, vars)
	}
}

func TestParseGlobalVarDecls(t *testing.T) {
	src := "static const double eps = 1e-9;\nint a, *b, c[10];\nfloat m[3][4];\n"
	f := parseOK(t, src, Options{})
	if len(f.Decls) != 3 {
		t.Fatalf("decls=%d", len(f.Decls))
	}
	vd := f.Decls[1].(*cast.VarDecl)
	if len(vd.Items) != 3 {
		t.Fatalf("items=%d", len(vd.Items))
	}
	if vd.Items[1].Stars != 1 {
		t.Errorf("b stars=%d", vd.Items[1].Stars)
	}
	if len(vd.Items[2].Dims) != 1 {
		t.Errorf("c dims=%d", len(vd.Items[2].Dims))
	}
	m := f.Decls[2].(*cast.VarDecl)
	if len(m.Items[0].Dims) != 2 {
		t.Errorf("m dims=%d", len(m.Items[0].Dims))
	}
}

func TestParsePragmaInBody(t *testing.T) {
	src := "void f(int n, double *a){\n#pragma omp parallel for\nfor(int i=0;i<n;++i) a[i]=0;\n}"
	f := parseOK(t, src, Options{})
	fd := f.Decls[0].(*cast.FuncDef)
	ps, ok := fd.Body.Items[0].(*cast.PragmaStmt)
	if !ok {
		t.Fatalf("body[0]=%T", fd.Body.Items[0])
	}
	if ps.P.Info != "omp parallel for" {
		t.Errorf("info=%q", ps.P.Info)
	}
	if _, ok := fd.Body.Items[1].(*cast.For); !ok {
		t.Errorf("body[1]=%T", fd.Body.Items[1])
	}
}

func TestParseLambda(t *testing.T) {
	src := "void f(){ auto g = [=](int i) { s += i; }; }"
	f := parseOK(t, src, Options{CPlusPlus: true})
	fd := f.Decls[0].(*cast.FuncDef)
	ds := fd.Body.Items[0].(*cast.DeclStmt)
	l, ok := ds.D.Items[0].Init.(*cast.LambdaExpr)
	if !ok {
		t.Fatalf("init=%T", ds.D.Items[0].Init)
	}
	if l.Capture != "=" {
		t.Errorf("capture=%q", l.Capture)
	}
	if l.Body == nil || len(l.Body.Items) != 1 {
		t.Errorf("lambda body missing")
	}
}

func TestParseDeclVsExprHeuristics(t *testing.T) {
	src := `void f(){
	mytype v;
	mytype *p = 0;
	a * b;
	x = y * z;
	obj.call();
}`
	f := parseOK(t, src, Options{})
	fd := f.Decls[0].(*cast.FuncDef)
	types := []string{}
	for _, s := range fd.Body.Items {
		types = append(types, fmt.Sprintf("%T", s))
	}
	// "a * b;" is ambiguous without typedef knowledge; we follow the usual
	// lexer-hack resolution and read "ident * ident ;" as a declaration,
	// since a multiply with a discarded result is dead code.
	want := []string{"*cast.DeclStmt", "*cast.DeclStmt", "*cast.DeclStmt", "*cast.ExprStmt", "*cast.ExprStmt"}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Errorf("got %v want %v", types, want)
	}
}

func TestParseErrorsCarryPosition(t *testing.T) {
	_, err := Parse("bad.c", "void f( {", Options{})
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.File != "bad.c" || pe.Pos.Line != 1 {
		t.Errorf("error=%v", pe)
	}
}

func TestSpansCoverSource(t *testing.T) {
	src := "int add(int a, int b) { return a + b; }"
	f := parseOK(t, src, Options{})
	fd := f.Decls[0].(*cast.FuncDef)
	if got := f.Text(fd); got != src {
		t.Errorf("FuncDef text=%q", got)
	}
	ret := fd.Body.Items[0].(*cast.Return)
	if got := f.Text(ret); got != "return a + b;" {
		t.Errorf("Return text=%q", got)
	}
	if got := f.Text(ret.X); got != "a + b" {
		t.Errorf("expr text=%q", got)
	}
}

// Property: every generated arithmetic expression parses, and its span text
// re-parses to the same structure (idempotent parse).
func TestQuickExprRoundtrip(t *testing.T) {
	ops := []string{"+", "-", "*", "/", "<", ">=", "==", "&&"}
	var build func(seed []byte, depth int) string
	build = func(seed []byte, depth int) string {
		if depth <= 0 || len(seed) < 3 {
			return fmt.Sprintf("v%d", int(seedAt(seed, 0))%5)
		}
		op := ops[int(seedAt(seed, 1))%len(ops)]
		l := build(seed[1:], depth-1)
		r := build(seed[2:], depth-1)
		return "(" + l + " " + op + " " + r + ")"
	}
	prop := func(seed []byte) bool {
		src := build(seed, 4)
		e1, tf, err := ParseExpr(src, Options{})
		if err != nil {
			return false
		}
		first, last := e1.Span()
		text := tf.Slice(first, last)
		e2, _, err := ParseExpr(text, Options{})
		if err != nil {
			return false
		}
		return fmt.Sprintf("%T", e1) == fmt.Sprintf("%T", e2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func seedAt(b []byte, i int) byte {
	if i < len(b) {
		return b[i]
	}
	return 0
}
