package cparse

import (
	"strings"

	"repro/internal/cast"
	"repro/internal/ctoken"
)

// parseTopDecl parses one top-level declaration, directive, or function.
func (p *parser) parseTopDecl() (cast.Decl, error) {
	start := p.pos
	tok := p.tok()

	if tok.Kind == ctoken.PP {
		return p.parsePP()
	}

	// Opaque constructs we preserve but do not model.
	if tok.Kind == ctoken.Ident {
		switch tok.Text {
		case "typedef", "using":
			// Terminated by ';' even after a braced body: typedef struct {...} name;
			return p.parseOpaqueDecl(start, false)
		case "template", "namespace":
			return p.parseOpaqueDecl(start, true)
		case "struct", "union", "enum", "class":
			// "struct X { ... };" or "struct X;" is opaque; "struct X f(...)"
			// is a type use and falls through.
			if p.structLikeDefinition() {
				return p.parseOpaqueDecl(start, true)
			}
		case "extern":
			if p.peek(1).Kind == ctoken.StringLit {
				return p.parseOpaqueDecl(start, true) // extern "C" { ... }
			}
		}
	}
	if p.is(";") {
		p.next()
		d := &cast.OpaqueDecl{Raw: ";"}
		setSpan(d, start, start)
		return d, nil
	}

	// Attributes preceding a function.
	var attrs []*cast.Attr
	for p.isIdent("__attribute__") {
		a, err := p.parseAttr()
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, a)
	}

	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}

	// Declarator: pointer stars belong to the item, not the base type here.
	stars := 0
	ref := false
	for p.is("*") {
		stars++
		p.next()
	}
	if p.is("&") {
		ref = true
		p.next()
	}
	name, err := p.parseDeclName()
	if err != nil {
		return nil, err
	}

	if p.is("(") {
		fd := &cast.FuncDef{Attrs: attrs, Ret: ty, Name: name}
		ty.Stars += stars
		pl, err := p.parseParamList()
		if err != nil {
			return nil, err
		}
		fd.Params = pl
		// Trailing attributes / specifiers before body or semicolon.
		for p.tok().Kind == ctoken.Ident && !p.is("{") && !p.at(ctoken.EOF) && !p.is(";") {
			if p.isIdent("__attribute__") {
				a, err := p.parseAttr()
				if err != nil {
					return nil, err
				}
				fd.Attrs = append(fd.Attrs, a)
				continue
			}
			p.next() // const, noexcept, override ...
		}
		if p.is(";") {
			p.next()
			setSpan(fd, start, p.prev())
			return fd, nil
		}
		body, err := p.parseCompound()
		if err != nil {
			return nil, err
		}
		fd.Body = body
		setSpan(fd, start, p.prev())
		return fd, nil
	}

	// Variable declaration.
	vd, err := p.parseVarDeclRest(start, ty, stars, ref, name)
	if err != nil {
		return nil, err
	}
	return vd, nil
}

// structLikeDefinition reports whether the upcoming tokens form a struct/
// union/enum/class *definition* (ending in braces) rather than a type use.
func (p *parser) structLikeDefinition() bool {
	i := 1
	if p.peek(i).Kind == ctoken.Ident && !ctoken.Keywords[p.peek(i).Text] {
		i++
	}
	return p.peek(i).Is("{") || p.peek(i).Is(";") || p.peek(i).Is(":")
}

// parseOpaqueDecl consumes a balanced top-level construct. With endAtBrace,
// a closing brace at depth zero ends the construct (plus an optional
// semicolon right after); otherwise only a depth-zero semicolon does, which
// is what typedefs with braced bodies need.
func (p *parser) parseOpaqueDecl(start int, endAtBrace bool) (cast.Decl, error) {
	depth := 0
	sawBrace := false
	for !p.at(ctoken.EOF) {
		t := p.tok()
		switch {
		case t.Is("{") || t.Is("(") || t.Is("["):
			depth++
			if t.Is("{") {
				sawBrace = true
			}
		case t.Is("}") || t.Is(")") || t.Is("]"):
			depth--
			if depth == 0 && t.Is("}") && endAtBrace {
				p.next()
				if p.is(";") {
					p.next()
				}
				d := &cast.OpaqueDecl{Raw: p.file.Slice(start, p.prev())}
				setSpan(d, start, p.prev())
				return d, nil
			}
		case t.Is(";") && depth == 0:
			p.next()
			d := &cast.OpaqueDecl{Raw: p.file.Slice(start, p.prev())}
			setSpan(d, start, p.prev())
			return d, nil
		}
		p.next()
	}
	if sawBrace && !endAtBrace {
		return nil, p.errHere("unterminated declaration")
	}
	d := &cast.OpaqueDecl{Raw: p.file.Slice(start, p.prev())}
	setSpan(d, start, p.prev())
	return d, nil
}

// parsePP converts a preprocessor token into the right Decl node. In pattern
// mode, pragma and include lines become pattern nodes with wildcard support.
func (p *parser) parsePP() (cast.Decl, error) {
	start := p.pos
	t := p.next()
	text := t.Text
	rest := strings.TrimSpace(strings.TrimPrefix(text, "#"))
	switch {
	case strings.HasPrefix(rest, "include"):
		arg := strings.TrimSpace(strings.TrimPrefix(rest, "include"))
		inc := parseIncludeArg(arg, text)
		if p.opts.pattern() {
			ip := &cast.IncludePattern{Path: inc.Path, Angled: inc.Angled}
			setSpan(ip, start, start)
			return ip, nil
		}
		setSpan(inc, start, start)
		return inc, nil
	case strings.HasPrefix(rest, "pragma"):
		info := strings.TrimSpace(strings.TrimPrefix(rest, "pragma"))
		if p.opts.pattern() {
			pp := p.pragmaPattern(info)
			setSpan(pp, start, start)
			return pp, nil
		}
		pr := &cast.Pragma{Raw: text, Info: info, Word: strings.Fields(info)}
		setSpan(pr, start, start)
		return pr, nil
	default:
		o := &cast.PPOther{Raw: text}
		setSpan(o, start, start)
		return o, nil
	}
}

func parseIncludeArg(arg, raw string) *cast.Include {
	inc := &cast.Include{Raw: raw}
	if strings.HasPrefix(arg, "<") {
		inc.Angled = true
		inc.Path = strings.TrimSuffix(strings.TrimPrefix(arg, "<"), ">")
	} else {
		inc.Path = strings.Trim(arg, `"`)
	}
	return inc
}

// pragmaPattern interprets a pragma pattern body: fixed words, then either a
// "..." wildcard or a pragmainfo metavariable (possibly rule-qualified).
func (p *parser) pragmaPattern(info string) *cast.PragmaPattern {
	pp := &cast.PragmaPattern{}
	for _, w := range strings.Fields(info) {
		if w == "..." {
			pp.TailDots = true
			break
		}
		base := w
		if i := strings.LastIndex(w, "."); i >= 0 {
			base = w // keep qualified name whole for lookup by the compiler
			_ = i
		}
		if k, ok := p.metaKind(base); ok && k == cast.MetaPragmaInfoKind {
			pp.InfoMeta = base
			break
		}
		pp.Words = append(pp.Words, w)
	}
	return pp
}

// parseAttr parses __attribute__((args...)).
func (p *parser) parseAttr() (*cast.Attr, error) {
	start := p.pos
	p.next() // __attribute__
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	a := &cast.Attr{}
	for !p.is(")") && !p.at(ctoken.EOF) {
		e, err := p.parseExpr(precComma + 1)
		if err != nil {
			return nil, err
		}
		a.Args = append(a.Args, e)
		if p.is(",") {
			p.next()
		}
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	setSpan(a, start, p.prev())
	return a, nil
}

// parseType parses qualifiers and a base type name. Pointer declarators are
// handled by the caller.
func (p *parser) parseType() (*cast.Type, error) {
	start := p.pos
	ty := &cast.Type{}
	var base []string

	qual := func(s string) bool {
		switch s {
		case "const", "volatile", "static", "extern", "inline", "register",
			"restrict", "constexpr", "typename",
			"__global__", "__device__", "__host__", "__shared__":
			return true
		}
		return false
	}
	baseKw := func(s string) bool {
		switch s {
		case "void", "char", "short", "int", "long", "float", "double",
			"signed", "unsigned", "bool", "auto":
			return true
		}
		return false
	}

	for p.tok().Kind == ctoken.Ident {
		t := p.tok().Text
		switch {
		case qual(t):
			ty.Quals = append(ty.Quals, t)
			p.next()
		case baseKw(t):
			base = append(base, t)
			p.next()
		case t == "struct" || t == "union" || t == "enum" || t == "class":
			base = append(base, t)
			p.next()
			if p.tok().Kind == ctoken.Ident {
				base = append(base, p.next().Text)
			}
		default:
			// Metavariable of kind type?
			if p.isMeta(t, cast.MetaTypeKind) {
				if len(base) == 0 {
					base = append(base, t)
					ty.Base = t
					p.next()
					p.qualifiedName(&base)
					ty.Base = strings.Join(base, " ")
					setSpan(ty, start, p.prev())
					return ty, nil
				}
				goto done
			}
			// Language keywords that cannot name a type (return, break,
			// if, sizeof, ...) never start a declaration; without this, a
			// top-level parse of statement text like `return r;` would
			// fabricate a VarDecl with base type "return".
			if ctoken.Keywords[t] {
				goto done
			}
			// A plain identifier can be the base type if none seen yet.
			if len(base) == 0 {
				base = append(base, t)
				p.next()
				p.qualifiedName(&base)
				// template argument list, consumed opaquely
				if p.opts.CPlusPlus && p.is("<") {
					if txt, ok := p.tryTemplateArgs(); ok {
						base[len(base)-1] += txt
					}
				}
				goto done
			}
			goto done
		}
	}
done:
	if len(base) == 0 && len(ty.Quals) == 0 {
		return nil, p.errHere("expected type, found %q", p.tok().Text)
	}
	if len(base) == 0 {
		base = append(base, "int") // e.g. "unsigned" alone handled above; bare quals default
	}
	ty.Base = strings.Join(base, " ")
	setSpan(ty, start, p.prev())
	return ty, nil
}

// qualifiedName extends base with ::name segments.
func (p *parser) qualifiedName(base *[]string) {
	for p.is("::") && p.peek(1).Kind == ctoken.Ident {
		p.next()
		(*base)[len(*base)-1] += "::" + p.next().Text
	}
}

// tryTemplateArgs consumes <...> if it is balanced before any ; or { and
// returns its text.
func (p *parser) tryTemplateArgs() (string, bool) {
	save := p.pos
	depth := 0
	start := p.pos
	for !p.at(ctoken.EOF) {
		t := p.tok()
		if t.Is("<") {
			depth++
		} else if t.Is(">") {
			depth--
			if depth == 0 {
				p.next()
				return p.file.Slice(start, p.prev()), true
			}
		} else if t.Is(">>") && depth >= 2 {
			depth -= 2
			if depth == 0 {
				p.next()
				return p.file.Slice(start, p.prev()), true
			}
		} else if t.Is(";") || t.Is("{") || t.Is("}") || t.Kind == ctoken.PP {
			break
		}
		p.next()
	}
	p.pos = save
	return "", false
}

// parseDeclName parses the declared identifier (plain or metavariable).
func (p *parser) parseDeclName() (*cast.Ident, error) {
	if p.tok().Kind != ctoken.Ident {
		return nil, p.errHere("expected identifier, found %q", p.tok().Text)
	}
	start := p.pos
	id := &cast.Ident{Name: p.next().Text}
	setSpan(id, start, start)
	return id, nil
}

// parseParamList parses (params...) including SmPL wildcards.
func (p *parser) parseParamList() (*cast.ParamList, error) {
	start, err := p.expect("(")
	if err != nil {
		return nil, err
	}
	pl := &cast.ParamList{}
	if p.is(")") {
		p.next()
		setSpan(pl, start, p.prev())
		return pl, nil
	}
	// SmPL: a bare "..." means "any parameter list"; a parameter-list
	// metavariable likewise stands for all parameters.
	for {
		if p.is("...") {
			if p.opts.pattern() && len(pl.Params) == 0 && p.peek(1).Is(")") {
				pl.MetaDots = true
			} else {
				pl.Variadic = true
			}
			p.next()
		} else if p.tok().Kind == ctoken.Ident && p.isMeta(p.tok().Text, cast.MetaParamListKind) {
			ps := p.pos
			prm := &cast.Param{MetaName: p.next().Text}
			setSpan(prm, ps, ps)
			pl.Params = append(pl.Params, prm)
		} else if p.isIdent("void") && p.peek(1).Is(")") {
			p.next()
		} else {
			prm, err := p.parseParam()
			if err != nil {
				return nil, err
			}
			pl.Params = append(pl.Params, prm)
		}
		if p.is(",") {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	setSpan(pl, start, p.prev())
	return pl, nil
}

func (p *parser) parseParam() (*cast.Param, error) {
	start := p.pos
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	for p.is("*") {
		ty.Stars++
		p.next()
	}
	if p.is("&") {
		ty.Ref = true
		p.next()
	}
	prm := &cast.Param{Type: ty}
	if p.tok().Kind == ctoken.Ident && !ctoken.Keywords[p.tok().Text] {
		nstart := p.pos
		prm.Name = &cast.Ident{Name: p.next().Text}
		setSpan(prm.Name, nstart, nstart)
	}
	// array suffixes
	for p.is("[") {
		p.next()
		for !p.is("]") && !p.at(ctoken.EOF) {
			p.next()
		}
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	setSpan(prm, start, p.prev())
	return prm, nil
}

// parseVarDeclRest finishes a variable declaration whose type, leading stars,
// and first name have been consumed.
func (p *parser) parseVarDeclRest(start int, ty *cast.Type, stars int, ref bool, name *cast.Ident) (*cast.VarDecl, error) {
	vd := &cast.VarDecl{Type: ty}
	first := &cast.Declarator{Stars: stars, Ref: ref, Name: name}
	nf, _ := name.Span()
	dstart := nf
	if err := p.parseDeclaratorRest(first); err != nil {
		return nil, err
	}
	setSpan(first, dstart, p.prev())
	vd.Items = append(vd.Items, first)
	for p.is(",") {
		p.next()
		d := &cast.Declarator{}
		ds := p.pos
		for p.is("*") {
			d.Stars++
			p.next()
		}
		if p.is("&") {
			d.Ref = true
			p.next()
		}
		n, err := p.parseDeclName()
		if err != nil {
			return nil, err
		}
		d.Name = n
		if err := p.parseDeclaratorRest(d); err != nil {
			return nil, err
		}
		setSpan(d, ds, p.prev())
		vd.Items = append(vd.Items, d)
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	setSpan(vd, start, p.prev())
	return vd, nil
}

// parseDeclaratorRest parses array dims and the initializer.
func (p *parser) parseDeclaratorRest(d *cast.Declarator) error {
	for p.is("[") {
		p.next()
		if p.is("]") {
			d.Dims = append(d.Dims, nil)
			p.next()
			continue
		}
		e, err := p.parseExpr(precComma + 1)
		if err != nil {
			return err
		}
		d.Dims = append(d.Dims, e)
		if _, err := p.expect("]"); err != nil {
			return err
		}
	}
	if p.is("=") {
		p.next()
		if p.is("{") {
			il, err := p.parseInitList()
			if err != nil {
				return err
			}
			d.Init = il
			return nil
		}
		e, err := p.parseExpr(precComma + 1)
		if err != nil {
			return err
		}
		d.Init = e
	} else if p.is("(") && p.opts.CPlusPlus {
		// constructor-style init, consumed opaquely as a call on the name
		e, err := p.parsePostfixFrom(d.Name)
		if err != nil {
			return err
		}
		d.Init = e
	}
	return nil
}

func (p *parser) parseInitList() (*cast.InitList, error) {
	start, err := p.expect("{")
	if err != nil {
		return nil, err
	}
	il := &cast.InitList{}
	for !p.is("}") && !p.at(ctoken.EOF) {
		var e cast.Expr
		if p.is("{") {
			sub, err := p.parseInitList()
			if err != nil {
				return nil, err
			}
			e = sub
		} else {
			var err error
			e, err = p.parseExpr(precComma + 1)
			if err != nil {
				return nil, err
			}
		}
		il.Elems = append(il.Elems, e)
		if p.is(",") {
			p.next()
		}
	}
	if _, err := p.expect("}"); err != nil {
		return nil, err
	}
	setSpan(il, start, p.prev())
	return il, nil
}
