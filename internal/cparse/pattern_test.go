package cparse

import (
	"testing"

	"repro/internal/cast"
	"repro/internal/ctoken"
)

// pattern-mode parsing exercised directly (higher layers test it through
// smpl; these tests pin the parser-level behaviour).

func patTable() MetaTable {
	return tableOf(map[string]cast.MetaKind{
		"E":  cast.MetaExprKind,
		"S":  cast.MetaStmtKind,
		"S2": cast.MetaStmtKind,
		"T":  cast.MetaTypeKind,
		"id": cast.MetaIdentKind,
		"el": cast.MetaExprListKind,
		"pi": cast.MetaPragmaInfoKind,
	})
}

func TestPatternDotsWithWhen(t *testing.T) {
	stmts, _, err := ParseStmts("lock();\n... when != bad(E)\nunlock();", Options{Meta: patTable()})
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("stmts=%d", len(stmts))
	}
	d, ok := stmts[1].(*cast.Dots)
	if !ok {
		t.Fatalf("middle: %T", stmts[1])
	}
	if len(d.WhenNot) != 1 {
		t.Errorf("when constraints: %d", len(d.WhenNot))
	}
}

func TestPatternWhenAny(t *testing.T) {
	stmts, _, err := ParseStmts("a();\n... when any\nb();", Options{Meta: patTable()})
	if err != nil {
		t.Fatal(err)
	}
	if !stmts[1].(*cast.Dots).WhenAny {
		t.Error("when any lost")
	}
}

// The full `when` variant set parses onto the Dots node.
func TestPatternWhenFamily(t *testing.T) {
	get := func(t *testing.T, body string) *cast.Dots {
		t.Helper()
		stmts, _, err := ParseStmts(body, Options{Meta: patTable()})
		if err != nil {
			t.Fatalf("%q: %v", body, err)
		}
		d, ok := stmts[1].(*cast.Dots)
		if !ok {
			t.Fatalf("%q: middle is %T", body, stmts[1])
		}
		return d
	}
	if d := get(t, "a();\n... when strict\nb();"); !d.WhenStrict {
		t.Error("when strict lost")
	}
	if d := get(t, "a();\n... when exists\nb();"); !d.WhenExists {
		t.Error("when exists lost")
	}
	if d := get(t, "a();\n... when forall\nb();"); !d.WhenForall {
		t.Error("when forall lost")
	}
	if d := get(t, "a();\n... when == log(E)\nb();"); len(d.WhenOnly) != 1 {
		t.Errorf("when ==: WhenOnly=%d want 1", len(d.WhenOnly))
	}
	d := get(t, "a();\n... when strict when != bad(E) when == log(E)\nb();")
	if !d.WhenStrict || len(d.WhenNot) != 1 || len(d.WhenOnly) != 1 {
		t.Errorf("combined whens lost: %+v", d)
	}
}

// Contradictory `when` combinations are parse errors, pinned here: `when
// any` used to silently swallow `when != e` constraints on the same dots.
func TestPatternWhenConflicts(t *testing.T) {
	bad := []string{
		"a();\n... when any when != bad(E)\nb();",
		"a();\n... when != bad(E) when any\nb();",
		"a();\n... when any when == log(E)\nb();",
		"a();\n... when any when strict\nb();",
		"a();\n... when exists when forall\nb();",
		"a();\n... when strict when exists\nb();",
		"a();\n... when sometimes\nb();",
	}
	for _, body := range bad {
		if _, _, err := ParseStmts(body, Options{Meta: patTable()}); err == nil {
			t.Errorf("%q: want parse error, got none", body)
		}
	}
}

func TestPatternEscapedStmtGroup(t *testing.T) {
	stmts, _, err := ParseStmts(`\( S \| S2 \)`, Options{Meta: patTable()})
	if err != nil {
		t.Fatal(err)
	}
	ds, ok := stmts[0].(*cast.DisjStmt)
	if !ok {
		t.Fatalf("got %T", stmts[0])
	}
	if len(ds.Branches) != 2 {
		t.Errorf("branches=%d", len(ds.Branches))
	}
}

func TestPatternEscapedConjStmt(t *testing.T) {
	stmts, _, err := ParseStmts(`\( S \& E + 1 \)`, Options{Meta: patTable()})
	if err != nil {
		t.Fatal(err)
	}
	cs, ok := stmts[0].(*cast.ConjStmt)
	if !ok {
		t.Fatalf("got %T", stmts[0])
	}
	if len(cs.Operands) != 2 {
		t.Errorf("operands=%d", len(cs.Operands))
	}
}

func TestPatternExprGroup(t *testing.T) {
	e, _, err := ParseExpr(`\( E == 1 \| 1 == E \)`, Options{Meta: patTable()})
	if err != nil {
		t.Fatal(err)
	}
	d, ok := e.(*cast.DisjExpr)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if len(d.Branches) != 2 {
		t.Errorf("branches=%d", len(d.Branches))
	}
	// conjunction
	e, _, err = ParseExpr(`\( E \& id \)`, Options{Meta: patTable()})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*cast.ConjExpr); !ok {
		t.Fatalf("got %T", e)
	}
}

func TestPatternColumnZeroDisjExpr(t *testing.T) {
	// column-zero parens with a column-zero separator form a disjunction
	src := "x = \n(\n\"a\"\n|\n\"b\"\n)\n;"
	stmts, _, err := ParseStmts(src, Options{Meta: patTable()})
	if err != nil {
		t.Fatal(err)
	}
	b := stmts[0].(*cast.ExprStmt).X.(*cast.BinaryExpr)
	if _, ok := b.Y.(*cast.DisjExpr); !ok {
		t.Fatalf("rhs: %T", b.Y)
	}
}

func TestPatternColumnZeroParenNotDisj(t *testing.T) {
	// a column-zero paren with no separator is ordinary grouping
	src := "x = id\n(E)\n;"
	stmts, _, err := ParseStmts(src, Options{Meta: patTable()})
	if err != nil {
		t.Fatal(err)
	}
	b := stmts[0].(*cast.ExprStmt).X.(*cast.BinaryExpr)
	if _, ok := b.Y.(*cast.CallExpr); !ok {
		t.Fatalf("rhs should be a call: %T", b.Y)
	}
}

func TestPatternPragma(t *testing.T) {
	lf, err := ctoken.Lex("p", "#pragma acc pi", ctoken.Options{SmPL: true})
	if err != nil {
		t.Fatal(err)
	}
	f, err := ParseTokens(lf, Options{Meta: patTable()})
	if err != nil {
		t.Fatal(err)
	}
	pp, ok := f.Decls[0].(*cast.PragmaPattern)
	if !ok {
		t.Fatalf("got %T", f.Decls[0])
	}
	if pp.InfoMeta != "pi" || len(pp.Words) != 1 || pp.Words[0] != "acc" {
		t.Errorf("pattern: %+v", pp)
	}
}

func TestPatternPragmaTailDots(t *testing.T) {
	lf, err := ctoken.Lex("p", "#pragma omp parallel ...", ctoken.Options{SmPL: true})
	if err != nil {
		t.Fatal(err)
	}
	f, err := ParseTokens(lf, Options{Meta: patTable()})
	if err != nil {
		t.Fatal(err)
	}
	pp := f.Decls[0].(*cast.PragmaPattern)
	if !pp.TailDots || len(pp.Words) != 2 {
		t.Errorf("pattern: %+v", pp)
	}
}

func TestTemplateArgsInTypePosition(t *testing.T) {
	f := parseOK(t, "void f(void){ std::vector<double> v; }", Options{CPlusPlus: true})
	fd := f.Decls[0].(*cast.FuncDef)
	ds, ok := fd.Body.Items[0].(*cast.DeclStmt)
	if !ok {
		t.Fatalf("got %T", fd.Body.Items[0])
	}
	if ds.D.Items[0].Name.Name != "v" {
		t.Errorf("decl: %+v", ds.D)
	}
}

func TestParseExprTokensDirect(t *testing.T) {
	lf, err := ctoken.Lex("e", "a + b", ctoken.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := ParseExprTokens(lf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*cast.BinaryExpr); !ok {
		t.Fatalf("got %T", e)
	}
	// trailing tokens must error
	lf2, _ := ctoken.Lex("e", "a + b c", ctoken.Options{})
	if _, err := ParseExprTokens(lf2, Options{}); err == nil {
		t.Error("expected trailing-token error")
	}
}

func TestPatternForHeaderDots(t *testing.T) {
	stmts, _, err := ParseStmts("for (...;E;...) S", Options{Meta: patTable()})
	if err != nil {
		t.Fatal(err)
	}
	fl := stmts[0].(*cast.For)
	if _, ok := fl.Init.(*cast.Dots); !ok {
		t.Errorf("init: %T", fl.Init)
	}
	if _, ok := fl.Post.(*cast.Dots); !ok {
		t.Errorf("post: %T", fl.Post)
	}
	if _, ok := fl.Body.(*cast.MetaStmt); !ok {
		t.Errorf("body: %T", fl.Body)
	}
}

func TestPatternMetaParamListAndDots(t *testing.T) {
	lf, err := ctoken.Lex("p", "T id(...) { ... }", ctoken.Options{SmPL: true})
	if err != nil {
		t.Fatal(err)
	}
	f, err := ParseTokens(lf, Options{Meta: patTable()})
	if err != nil {
		t.Fatal(err)
	}
	fd := f.Decls[0].(*cast.FuncDef)
	if !fd.Params.MetaDots {
		t.Error("param dots not detected")
	}
}
