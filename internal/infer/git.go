// Git mining: turn a repository's commit history into before/after pairs.
// Each commit's modified C files are diffed at function granularity using
// cast.SegmentFile's position-independent identities — a pair is kept only
// when at least one function body actually changed (file-level churn such
// as reordered functions or comment edits yields no examples and is
// skipped).

package infer

import (
	"fmt"
	"os/exec"
	"strings"

	"repro/internal/cast"
	"repro/internal/cparse"
)

// MinedPair is one usable before/after pair mined from history, with the
// names of the functions whose identities changed.
type MinedPair struct {
	Pair
	Commit  string
	Path    string
	Changed []string
}

// MineGit walks the repository's first-parent history and collects up to
// limit before/after pairs from modified .c/.h files whose function-level
// segmentation shows at least one changed function. Pairs that fail to
// parse or change anything other than function bodies are skipped, not
// fatal: history is noisy and mining is best-effort by design.
func MineGit(repoDir string, limit int, popts cparse.Options) ([]MinedPair, error) {
	if limit <= 0 {
		limit = 16
	}
	out, err := gitRun(repoDir, "log", "--first-parent", "--pretty=%H")
	if err != nil {
		return nil, fmt.Errorf("infer: git log in %s: %w", repoDir, err)
	}
	var mined []MinedPair
	for _, commit := range strings.Fields(out) {
		if len(mined) >= limit {
			break
		}
		files, err := gitRun(repoDir, "diff-tree", "--no-commit-id", "--name-only",
			"--diff-filter=M", "-r", commit+"^", commit)
		if err != nil {
			continue // root commit or unreadable tree
		}
		for _, path := range strings.Split(strings.TrimSpace(files), "\n") {
			if len(mined) >= limit {
				break
			}
			if !isCSource(path) {
				continue
			}
			before, err := gitRun(repoDir, "show", commit+"^:"+path)
			if err != nil {
				continue
			}
			after, err := gitRun(repoDir, "show", commit+":"+path)
			if err != nil {
				continue
			}
			pair := Pair{Name: shortSHA(commit) + ":" + path, Before: before, After: after}
			changed := changedFunctions(pair, popts)
			if len(changed) == 0 {
				continue
			}
			mined = append(mined, MinedPair{
				Pair: pair, Commit: commit, Path: path, Changed: changed,
			})
		}
	}
	if len(mined) == 0 {
		return nil, fmt.Errorf("infer: no minable function-level changes found in %s", repoDir)
	}
	return mined, nil
}

// changedFunctions segments both sides and returns the names of functions
// present in both whose segment identity differs. An unparseable or
// unpairable file returns nil (skipped by mining).
func changedFunctions(p Pair, popts cparse.Options) []string {
	bf, err := cparse.Parse(p.Name, p.Before, popts)
	if err != nil {
		return nil
	}
	af, err := cparse.Parse(p.Name, p.After, popts)
	if err != nil {
		return nil
	}
	bs, as := cast.SegmentFile(bf), cast.SegmentFile(af)
	if bs == nil || as == nil {
		return nil
	}
	bIDs := map[string]string{}
	for i := range bs.Funcs {
		fs := &bs.Funcs[i]
		bIDs[fs.Name] = fs.Identity()
	}
	aNames := map[string]bool{}
	var changed []string
	for i := range as.Funcs {
		fs := &as.Funcs[i]
		aNames[fs.Name] = true
		if id, ok := bIDs[fs.Name]; ok && id != fs.Identity() {
			changed = append(changed, fs.Name)
		}
	}
	// Inference rejects added/removed functions; mining filters them here.
	for name := range bIDs {
		if !aNames[name] {
			return nil
		}
	}
	for i := range as.Funcs {
		if _, ok := bIDs[as.Funcs[i].Name]; !ok {
			return nil
		}
	}
	return changed
}

func isCSource(path string) bool {
	return strings.HasSuffix(path, ".c") || strings.HasSuffix(path, ".h") ||
		strings.HasSuffix(path, ".cc") || strings.HasSuffix(path, ".cpp") ||
		strings.HasSuffix(path, ".cu")
}

func shortSHA(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}

func gitRun(dir string, args ...string) (string, error) {
	cmd := exec.Command("git", append([]string{"-C", dir}, args...)...)
	out, err := cmd.Output()
	if err != nil {
		return "", err
	}
	return string(out), nil
}
