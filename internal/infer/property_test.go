package infer

// Property test: for a family of seeded random fixture functions with one
// random expression-level perturbation, inference must (a) succeed with the
// engine-as-oracle round trip, (b) emit a patch whose rendered .cocci
// survives the parse→print→parse fixpoint, and (c) generalize to a renamed
// copy of the fixture — the same edit under different function, variable,
// and parameter names.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/smpl"
)

// fixture builds one function from the seeded rng, parameterized by the
// names it uses, and returns the before and after sources. The perturbation
// touches exactly one expression, chosen by the rng.
func fixture(rng *rand.Rand, fn, v, p string) (before, after string) {
	callees := []string{"stage_a", "stage_b", "stage_c", "stage_d", "stage_e"}
	rng.Shuffle(len(callees), func(i, j int) { callees[i], callees[j] = callees[j], callees[i] })
	n := 3 + rng.Intn(3)
	mid := make([]string, n)
	for i := 0; i < n; i++ {
		mid[i] = fmt.Sprintf("    %s(%s, %d);\n", callees[i], v, rng.Intn(100))
	}
	target := rng.Intn(n)
	bMid := strings.Join(mid, "")
	var aStmt string
	switch rng.Intn(3) {
	case 0: // rename the callee
		aStmt = strings.Replace(mid[target], callees[target]+"(", callees[target]+"_v2(", 1)
	case 1: // append an argument
		aStmt = strings.Replace(mid[target], ");", ", 0);", 1)
	default: // wrap the value argument
		aStmt = strings.Replace(mid[target], "("+v+",", "(clamp("+v+"),", 1)
	}
	aMid := strings.Join(append(append(append([]string{}, mid[:target]...), aStmt), mid[target+1:]...), "")

	head := fmt.Sprintf("int %s(int %s) {\n    int %s = init(%s);\n", fn, p, v, p)
	tail := fmt.Sprintf("    return %s;\n}\n", v)
	return head + bMid + tail, head + aMid + tail
}

func TestInferPropertyRandomPerturbations(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			before, after := fixture(rand.New(rand.NewSource(seed)), "f", "acc", "x")
			res, err := Infer([]Pair{{Name: "p", Before: before, After: after}}, Options{})
			if err != nil {
				t.Fatalf("inference failed:\nbefore:\n%s\nafter:\n%s\nerror: %v", before, after, err)
			}

			// (b) The emitted .cocci survives the renderer fixpoint.
			p2, perr := smpl.ParsePatch("rt.cocci", res.Cocci)
			if perr != nil {
				t.Fatalf("inferred .cocci does not re-parse: %v\n%s", perr, res.Cocci)
			}
			if again := smpl.Render(p2); again != res.Cocci {
				t.Fatalf("inferred .cocci is not a render fixpoint:\nfirst:\n%s\nsecond:\n%s", res.Cocci, again)
			}

			// (c) The patch generalizes to the same edit under fresh names.
			// The renamed copy is generated from the identical rng stream, so
			// it differs from the original only in the identifiers.
			rBefore, rAfter := fixture(rand.New(rand.NewSource(seed)), "g_prop", "val", "count")
			var got string
			batch.New(res.Patch, batch.Options{}).Run(
				[]core.SourceFile{{Name: "r.c", Src: rBefore}},
				func(fr batch.FileResult) bool {
					if fr.Err != nil {
						t.Fatalf("apply to renamed copy: %v", fr.Err)
					}
					got = fr.Output
					return true
				})
			if got != rAfter {
				t.Errorf("patch (variant %s) does not generalize to the renamed copy:\npatch:\n%s\ngot:\n%s\nwant:\n%s",
					res.Variant, res.Cocci, got, rAfter)
			}
		})
	}
}
