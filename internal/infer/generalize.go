// Cross-example generalization: two skeletons describing "the same edit" in
// different code are folded into one. Corresponding match-side (context or
// minus) subtrees that differ across examples promote to shared typed
// metavariables — the anti-unification join — while divergent inserted code
// is irreconcilable: a plus-line metavariable would have no binding to
// substitute, so the conflict is reported as a structured PairError naming
// both examples and the offending subtree.

package infer

import (
	"fmt"
	"reflect"
	"sort"
	"strings"

	"repro/internal/cast"
	"repro/internal/cparse"
	"repro/internal/ctoken"
)

// generalize folds s2 into s1. The skeletons must have the same edit shape;
// when their full piece sequences disagree (different context structure
// around the same edit), both are reduced to their edit-only form first.
func generalize(s1, s2 *skeleton, vb *variantBuilder, popts cparse.Options) (*skeleton, *PairError) {
	a, b := s1, s2
	if a.marks() != b.marks() {
		a, b = editOnly(a), editOnly(b)
		if a.marks() != b.marks() {
			return nil, &PairError{Pair: s1.example, Other: s2.example, Stage: "generalize",
				Detail: fmt.Sprintf("edit shapes differ (%q vs %q)", s1.marks(), s2.marks())}
		}
	}
	// Match-side pieces are folded first: they discover the metavariable
	// aliasing between the two examples (s2's I2 standing where s1 uses
	// I1), which plus pieces then consume — a plus line may differ only by
	// such renames, never by genuinely different inserted code.
	alias := map[string]string{}
	out := &skeleton{example: a.example}
	out.pieces = make([]piece, len(a.pieces))
	for i := range a.pieces {
		p1, p2 := a.pieces[i], b.pieces[i]
		if p1.mark == '+' || p1.mark == '.' ||
			cast.NormalizeSpace(p1.text) == cast.NormalizeSpace(p2.text) {
			out.pieces[i] = p1
			continue
		}
		text, perr := promotePiece(p1, p2, a.example, b.example, vb, alias, popts)
		if perr != nil {
			return nil, perr
		}
		out.pieces[i] = piece{p1.mark, text}
	}
	for i := range a.pieces {
		p1, p2 := a.pieces[i], b.pieces[i]
		if p1.mark != '+' {
			continue
		}
		renamed := renameWords(p2.text, alias)
		if cast.NormalizeSpace(p1.text) != cast.NormalizeSpace(renamed) {
			return nil, &PairError{Pair: a.example, Other: b.example, Stage: "generalize",
				Subtree: p2.text,
				Detail:  "inserted code differs between examples (a plus-line metavariable would have no binding to substitute)"}
		}
	}
	return out, nil
}

// renameWords substitutes whole-word occurrences per the alias map.
func renameWords(text string, alias map[string]string) string {
	if len(alias) == 0 {
		return text
	}
	var sb strings.Builder
	i := 0
	for i < len(text) {
		if !isWordByte(text[i]) {
			sb.WriteByte(text[i])
			i++
			continue
		}
		j := i
		for j < len(text) && isWordByte(text[j]) {
			j++
		}
		word := text[i:j]
		if to, ok := alias[word]; ok {
			sb.WriteString(to)
		} else {
			sb.WriteString(word)
		}
		i = j
	}
	return sb.String()
}

// editOnly strips a skeleton to its edits: interior context runs become a
// single `...`, leading and trailing context is dropped, and adjacent dots
// merge. This is the common shape two examples of the same edit share even
// when their surrounding functions look nothing alike.
func editOnly(sk *skeleton) *skeleton {
	out := &skeleton{example: sk.example}
	// Locate the first and last non-context piece.
	lo, hi := -1, -1
	for i, p := range sk.pieces {
		if p.mark != ' ' {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	if lo < 0 {
		return out // no edits; empty skeleton
	}
	for i := lo; i <= hi; i++ {
		p := sk.pieces[i]
		if p.mark == ' ' || p.mark == '.' {
			if len(out.pieces) > 0 && out.pieces[len(out.pieces)-1].mark == '.' {
				continue // merge adjacent gaps
			}
			p = piece{mark: '.'}
		}
		out.pieces = append(out.pieces, p)
	}
	return out
}

// promotePiece anti-unifies two match-side pieces: both texts are parsed as
// statement sequences (metavariable names lex as plain identifiers) and
// walked in lockstep; divergent subtrees of joinable kinds are replaced in
// the first piece's text by fresh shared metavariables.
func promotePiece(p1, p2 piece, ex1, ex2 string, vb *variantBuilder, alias map[string]string, popts cparse.Options) (string, *PairError) {
	stmts1, tf1, err := cparse.ParseStmts(p1.text, popts)
	if err != nil {
		return "", &PairError{Pair: ex1, Other: ex2, Stage: "generalize",
			Subtree: p1.text, Detail: "piece does not re-parse: " + err.Error()}
	}
	stmts2, tf2, err := cparse.ParseStmts(p2.text, popts)
	if err != nil {
		return "", &PairError{Pair: ex1, Other: ex2, Stage: "generalize",
			Subtree: p2.text, Detail: "piece does not re-parse: " + err.Error()}
	}
	if len(stmts1) != len(stmts2) {
		return "", &PairError{Pair: ex1, Other: ex2, Stage: "generalize",
			Subtree: p2.text, Detail: "pieces differ in statement structure"}
	}
	pr := &promoter{
		vb: vb, ex1: ex1, ex2: ex2, alias: alias,
		f1: &cast.File{Name: ex1, Toks: tf1},
		f2: &cast.File{Name: ex2, Toks: tf2},
	}
	for i := range stmts1 {
		pr.visit(stmts1[i], stmts2[i], false)
	}
	if pr.perr != nil {
		return "", pr.perr
	}
	return applySplices(p1.text, tf1, pr.spl), nil
}

// promoter is the cross-example lockstep walker.
type promoter struct {
	vb       *variantBuilder
	f1, f2   *cast.File
	ex1, ex2 string
	alias    map[string]string // example-2 metavariable name -> surviving name
	spl      []splice          // replacements into f1's token stream
	perr     *PairError
}

func (pr *promoter) fail(n2 cast.Node, detail string) {
	if pr.perr == nil {
		pr.perr = &PairError{Pair: pr.ex1, Other: pr.ex2, Stage: "generalize",
			Subtree: pr.f2.Text(n2), Detail: detail}
	}
}

func (pr *promoter) visit(n1, n2 cast.Node, callee bool) {
	if pr.perr != nil || n1 == nil || n2 == nil {
		return
	}
	if cast.NormText(pr.f1, n1) == cast.NormText(pr.f2, n2) {
		return // identical across examples: stays as-is
	}
	// A side that is already a metavariable absorbs the other side when the
	// kinds are compatible (weakening to `expression` when needed).
	if name1, k1, ok := pr.metaIdent(pr.f1, n1); ok {
		if name2, k2, ok2 := pr.metaIdent(pr.f2, n2); ok2 {
			joined, jerr := joinKind(k1, k2)
			if jerr != "" {
				pr.fail(n2, fmt.Sprintf("metavariables %s and %s have incompatible kinds (%s)", name1, name2, jerr))
				return
			}
			pr.vb.metas[name1] = joined
			if name2 != name1 {
				pr.alias[name2] = name1
			}
			return
		}
		joined, jerr := pr.joinWithConcrete(k1, n2)
		if jerr != "" {
			pr.fail(n2, fmt.Sprintf("metavariable %s cannot absorb this subtree (%s)", name1, jerr))
			return
		}
		pr.vb.metas[name1] = joined
		return
	}
	if name2, k2, ok := pr.metaIdent(pr.f2, n2); ok {
		joined, jerr := pr.joinWithConcrete(k2, n1)
		if jerr != "" {
			pr.fail(n2, fmt.Sprintf("metavariable %s cannot absorb this subtree (%s)", name2, jerr))
			return
		}
		pr.vb.metas[name2] = joined
		first, last := n1.Span()
		pr.spl = append(pr.spl, splice{first, last, name2})
		return
	}
	// Both concrete. Same shape: recurse. Different shape or unpaired
	// children: promote the whole divergent subtree pair.
	if reflect.TypeOf(n1) == reflect.TypeOf(n2) {
		if call, ok := n1.(*cast.CallExpr); ok {
			other := n2.(*cast.CallExpr)
			if len(call.Args) == len(other.Args) {
				pr.visit(call.Fun, other.Fun, true)
				for i := range call.Args {
					pr.visit(call.Args[i], other.Args[i], false)
				}
				return
			}
		} else {
			c1, c2 := cast.Children(n1), cast.Children(n2)
			if len(c1) == len(c2) && len(c1) > 0 {
				for i := range c1 {
					pr.visit(c1[i], c2[i], false)
				}
				return
			}
		}
	}
	pr.promote(n1, n2, callee)
}

// promote replaces the divergent pair with one shared metavariable.
func (pr *promoter) promote(n1, n2 cast.Node, callee bool) {
	k1, ok1 := abstractKind(n1)
	k2, ok2 := abstractKind(n2)
	if !ok1 || !ok2 || callee {
		pr.fail(n2, "subtree has no metavariable kind that could stand for both examples")
		return
	}
	joined, jerr := joinKind(k1, k2)
	if jerr != "" {
		pr.fail(n2, "subtree kinds are incompatible ("+jerr+")")
		return
	}
	// Key the hole by both sides' texts so the same cross-example
	// divergence reuses one metavariable (coreference across edit sites).
	key := cast.NormText(pr.f1, n1) + "\x00" + cast.NormText(pr.f2, n2)
	name := pr.vb.hole(joined, key)
	first, last := n1.Span()
	pr.spl = append(pr.spl, splice{first, last, name})
}

// metaIdent recognizes a bare identifier that names a declared
// metavariable.
func (pr *promoter) metaIdent(f *cast.File, n cast.Node) (string, cast.MetaKind, bool) {
	id, ok := n.(*cast.Ident)
	if !ok {
		return "", 0, false
	}
	k, ok := pr.vb.isMeta(id.Name)
	return id.Name, k, ok
}

// joinWithConcrete joins a metavariable kind with a concrete node.
func (pr *promoter) joinWithConcrete(k cast.MetaKind, n cast.Node) (cast.MetaKind, string) {
	kn, ok := abstractKind(n)
	if !ok {
		return 0, "the concrete side is not abstractable"
	}
	return joinKind(k, kn)
}

// joinKind is the kind lattice: equal kinds stay, identifier/constant
// weaken to expression, and type joins with nothing but itself.
func joinKind(a, b cast.MetaKind) (cast.MetaKind, string) {
	if a == b {
		return a, ""
	}
	if a == cast.MetaTypeKind || b == cast.MetaTypeKind {
		return 0, "a type cannot join with a non-type"
	}
	return cast.MetaExprKind, ""
}

// applySplices rewrites token spans of text (lexed as tf) to metavariable
// names. Spans never overlap: the lockstep walk stops at each splice.
func applySplices(text string, tf *ctoken.File, spls []splice) string {
	if len(spls) == 0 {
		return text
	}
	sorted := append([]splice(nil), spls...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].first < sorted[j].first })
	toks := tf.Tokens
	var sb strings.Builder
	at := 0
	for _, sp := range sorted {
		a := toks[sp.first].Pos.Offset
		b := toks[sp.last].Pos.Offset + len(toks[sp.last].Text)
		sb.WriteString(text[at:a])
		sb.WriteString(sp.name)
		at = b
	}
	sb.WriteString(text[at:])
	return sb.String()
}
