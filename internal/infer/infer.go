// Package infer derives semantic patches from before/after example pairs —
// patch inference by demonstration, after Sottile & Hulette's
// transformation-by-demonstration (arXiv:1301.4334) and FlexiRepair's
// generic fix patterns (arXiv:2011.13280).
//
// The pipeline: each pair's files are parsed and their function definitions
// matched by name; every function whose body changed becomes one example.
// Within an example, the before and after statement sequences are aligned
// (longest common subsequence over normalized statement text); unchanged
// statements become context anchors, deleted/inserted statements become
// minus/plus lines, and long unchanged runs between edits collapse to `...`.
// Paired modified statements are anti-unified: subtrees shared verbatim by
// both sides abstract into typed metavariables (expression / identifier /
// constant / type), while the divergent subtrees — the edit itself — stay
// concrete. Multiple examples are then generalized pairwise: corresponding
// match-side subtrees that differ across examples promote to shared
// metavariables of the joined kind; divergent *inserted* code is
// irreconcilable and reported as a structured PairError naming both
// examples.
//
// Every inferred patch is verified in-process before it is returned: the
// rendered .cocci is compiled (smpl.BuildPatch goes through the same front
// end as hand-written patches) and run through the batch campaign API
// against every "before" file; any pair whose output is not byte-identical
// to its "after" fails inference. On failure the engine retries a ladder of
// less-abstract variants (full context instead of dots, concrete instead of
// abstracted) and only reports an error when none survives the oracle — the
// engine is its own round-trip test oracle.
package infer

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/batch"
	"repro/internal/cast"
	"repro/internal/core"
	"repro/internal/cparse"
	"repro/internal/ctoken"
	"repro/internal/smpl"
)

// Pair is one before/after demonstration: two versions of a C/C++ source
// file. A pair may contain several changed functions; each becomes one
// example feeding inference, and verification always replays the whole
// file.
type Pair struct {
	// Name labels the pair in diagnostics (a file name, "before.c:after.c",
	// or a commit:path reference for mined pairs).
	Name string
	// Before and After are the two full file sources.
	Before string
	After  string
}

// Options configures inference.
type Options struct {
	// RuleName names the emitted rule (default "inferred").
	RuleName string
	// Parse selects the C dialect for the example files.
	Parse cparse.Options
	// Engine configures the verification runs (dialect fields should agree
	// with Parse).
	Engine core.Options
}

func (o Options) rule() string {
	if o.RuleName == "" {
		return "inferred"
	}
	return o.RuleName
}

// Result is a successfully inferred and verified patch.
type Result struct {
	// Patch is the compiled patch; Patch.Src is exactly Cocci.
	Patch *smpl.Patch
	// Cocci is the rendered .cocci text (smpl.Render form).
	Cocci string
	// Metas maps each declared metavariable to its kind keyword.
	Metas map[string]string
	// Examples names the function examples the patch was inferred from.
	Examples []string
	// Variant reports which abstraction level survived verification:
	// "abstracted", "abstracted/full-context", "concrete", or
	// "concrete/full-context".
	Variant string
	// Notes carries non-fatal observations (variants that failed the
	// oracle before one succeeded, skipped pairs, ...).
	Notes []string
}

// PairError is a structured inference failure. It names the offending pair
// (and, for cross-example irreconcilability, the second pair), the pipeline
// stage that failed, and — when the failure is a subtree that could not be
// generalized — the subtree's source text.
type PairError struct {
	// Pair is the offending pair or example name.
	Pair string
	// Other is the second example for irreconcilable divergences.
	Other string
	// Stage is the failing pipeline stage: "input", "parse", "align",
	// "generalize", "compile", or "verify".
	Stage string
	// Subtree is the source text of the subtree that failed to generalize.
	Subtree string
	// Detail is the human-readable specifics.
	Detail string
}

func (e *PairError) Error() string {
	var sb strings.Builder
	sb.WriteString("infer: ")
	sb.WriteString(e.Stage)
	sb.WriteString(" failed")
	if e.Pair != "" {
		fmt.Fprintf(&sb, " for %s", e.Pair)
	}
	if e.Other != "" {
		fmt.Fprintf(&sb, " vs %s", e.Other)
	}
	if e.Detail != "" {
		sb.WriteString(": ")
		sb.WriteString(e.Detail)
	}
	if e.Subtree != "" {
		fmt.Fprintf(&sb, " (subtree %q)", cast.NormalizeSpace(e.Subtree))
	}
	return sb.String()
}

// variant is one rung of the abstraction ladder, most general first.
type variant struct {
	abstract bool // anti-unify shared subtrees into metavariables
	collapse bool // collapse unchanged runs to `...`
	label    string
}

var ladder = []variant{
	{true, true, "abstracted"},
	{true, false, "abstracted/full-context"},
	{false, true, "concrete"},
	{false, false, "concrete/full-context"},
}

// Infer derives one semantic patch from the pairs and verifies it by
// applying it to every pair's "before" and comparing the output to the
// "after" byte for byte. The most abstract variant that survives
// verification wins. The returned error is always a *PairError.
func Infer(pairs []Pair, opts Options) (*Result, error) {
	if len(pairs) == 0 {
		return nil, &PairError{Stage: "input", Detail: "no before/after pairs given"}
	}
	var examples []example
	idents := map[string]bool{}
	for _, p := range pairs {
		exs, perr := extractExamples(p, opts.Parse, idents)
		if perr != nil {
			return nil, perr
		}
		examples = append(examples, exs...)
	}
	if len(examples) == 0 {
		return nil, &PairError{Pair: pairs[0].Name, Stage: "align",
			Detail: "no function body differs between before and after in any pair"}
	}

	var notes []string
	var firstErr *PairError
	for _, v := range ladder {
		res, perr := inferVariant(examples, pairs, idents, v, opts)
		if perr == nil {
			res.Notes = append(notes, res.Notes...)
			return res, nil
		}
		if firstErr == nil {
			firstErr = perr
		}
		notes = append(notes, fmt.Sprintf("variant %s rejected by oracle: %v", v.label, perr))
	}
	return nil, firstErr
}

// inferVariant builds, generalizes, compiles, and verifies one ladder rung.
func inferVariant(examples []example, pairs []Pair, idents map[string]bool, v variant, opts Options) (*Result, *PairError) {
	vb := newVariantBuilder(idents)
	skels := make([]*skeleton, len(examples))
	for i, ex := range examples {
		sk, perr := vb.buildSkeleton(ex, v.abstract)
		if perr != nil {
			return nil, perr
		}
		if v.collapse {
			sk = collapseSkeleton(sk)
		}
		skels[i] = sk
	}
	folded := skels[0]
	for _, sk := range skels[1:] {
		var perr *PairError
		folded, perr = generalize(folded, sk, vb, opts.Parse)
		if perr != nil {
			return nil, perr
		}
	}
	patch, perr := buildPatch(folded, vb, opts)
	if perr != nil {
		return nil, perr
	}
	if perr := verifyAll(patch, pairs, opts.Engine); perr != nil {
		return nil, perr
	}
	names := make([]string, len(examples))
	for i, ex := range examples {
		names[i] = ex.name
	}
	metas := map[string]string{}
	for _, r := range patch.Rules {
		for _, m := range r.Metas {
			metas[m.Name] = m.Kind.String()
		}
	}
	return &Result{
		Patch: patch, Cocci: patch.Src, Metas: metas,
		Examples: names, Variant: v.label,
	}, nil
}

// example is one changed function within a pair.
type example struct {
	pair string
	name string // pair + ":" + function name
	bf   *cast.File
	af   *cast.File
	bFn  *cast.FuncDef
	aFn  *cast.FuncDef
}

// extractExamples parses both sides of a pair, matches function definitions
// by name, and returns one example per changed body. It also accumulates
// every identifier token into idents, the reserve set metavariable naming
// must avoid.
func extractExamples(p Pair, popts cparse.Options, idents map[string]bool) ([]example, *PairError) {
	bf, err := cparse.Parse(p.Name+":before", p.Before, popts)
	if err != nil {
		return nil, &PairError{Pair: p.Name, Stage: "parse", Detail: "before: " + err.Error()}
	}
	af, err := cparse.Parse(p.Name+":after", p.After, popts)
	if err != nil {
		return nil, &PairError{Pair: p.Name, Stage: "parse", Detail: "after: " + err.Error()}
	}
	collectIdents(bf.Toks, idents)
	collectIdents(af.Toks, idents)

	bFns, perr := funcsByName(p.Name, "before", bf)
	if perr != nil {
		return nil, perr
	}
	aFns, perr := funcsByName(p.Name, "after", af)
	if perr != nil {
		return nil, perr
	}
	for name := range bFns {
		if _, ok := aFns[name]; !ok {
			return nil, &PairError{Pair: p.Name, Stage: "align",
				Detail: fmt.Sprintf("function %q exists only in the before version (deletions of whole functions are not inferable)", name)}
		}
	}
	for name := range aFns {
		if _, ok := bFns[name]; !ok {
			return nil, &PairError{Pair: p.Name, Stage: "align",
				Detail: fmt.Sprintf("function %q exists only in the after version (additions of whole functions are not inferable)", name)}
		}
	}

	// Deterministic example order: by position in the before file.
	names := make([]string, 0, len(bFns))
	for name := range bFns {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		fi, _ := bFns[names[i]].Span()
		fj, _ := bFns[names[j]].Span()
		return fi < fj
	})

	var out []example
	for _, name := range names {
		bFn, aFn := bFns[name], aFns[name]
		if headerText(bf, bFn) != headerText(af, aFn) {
			return nil, &PairError{Pair: p.Name, Stage: "align",
				Detail: fmt.Sprintf("signature of %q changed; only body edits are inferable", name)}
		}
		if cast.NormText(bf, bFn.Body) == cast.NormText(af, aFn.Body) {
			continue // untouched function; still replayed during verification
		}
		out = append(out, example{
			pair: p.Name, name: p.Name + ":" + name,
			bf: bf, af: af, bFn: bFn, aFn: aFn,
		})
	}
	return out, nil
}

// funcsByName indexes a file's function definitions (with bodies) by name.
func funcsByName(pair, side string, f *cast.File) (map[string]*cast.FuncDef, *PairError) {
	out := map[string]*cast.FuncDef{}
	for _, fd := range f.Funcs() {
		name := f.Text(fd.Name)
		if _, dup := out[name]; dup {
			return nil, &PairError{Pair: pair, Stage: "align",
				Detail: fmt.Sprintf("duplicate definition of %q in the %s version", name, side)}
		}
		out[name] = fd
	}
	return out, nil
}

// headerText is the function's signature text (everything before the body),
// whitespace-normalized.
func headerText(f *cast.File, fd *cast.FuncDef) string {
	first, _ := fd.Span()
	bodyFirst, _ := fd.Body.Span()
	if bodyFirst <= first {
		return ""
	}
	return cast.NormalizeSpace(f.Toks.Slice(first, bodyFirst-1))
}

func collectIdents(tf *ctoken.File, idents map[string]bool) {
	for _, t := range tf.Tokens {
		if t.Kind == ctoken.Ident {
			idents[t.Text] = true
		}
	}
}

// buildPatch renders the skeleton to .cocci text and compiles it through
// the standard front end, declaring exactly the metavariables the body uses.
func buildPatch(sk *skeleton, vb *variantBuilder, opts Options) (*smpl.Patch, *PairError) {
	body := sk.body()
	var decls []*smpl.MetaDecl
	for _, name := range vb.order {
		if usesWord(body, name) {
			decls = append(decls, smpl.NewMetaDecl(vb.metas[name], name))
		}
	}
	rule := &smpl.Rule{Name: opts.rule(), Kind: smpl.MatchRule, Metas: decls, Body: body}
	p, err := smpl.BuildPatch(opts.rule()+".cocci", nil, []*smpl.Rule{rule})
	if err != nil {
		return nil, &PairError{Pair: sk.example, Stage: "compile",
			Detail: fmt.Sprintf("inferred rule does not compile: %v\nbody:\n%s", err, body)}
	}
	return p, nil
}

// usesWord reports whether body contains name as a whole word.
func usesWord(body, name string) bool {
	for i := 0; ; {
		j := strings.Index(body[i:], name)
		if j < 0 {
			return false
		}
		j += i
		before := j == 0 || !isWordByte(body[j-1])
		after := j+len(name) == len(body) || !isWordByte(body[j+len(name)])
		if before && after {
			return true
		}
		i = j + 1
	}
}

func isWordByte(b byte) bool {
	return b == '_' || b >= '0' && b <= '9' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z'
}

// verifyAll is the oracle: it applies the patch to every pair's before file
// through the batch campaign API and demands byte-identity with the after.
func verifyAll(p *smpl.Patch, pairs []Pair, eng core.Options) *PairError {
	runner := batch.New(p, batch.Options{Engine: eng})
	files := make([]core.SourceFile, len(pairs))
	for i, pr := range pairs {
		files[i] = core.SourceFile{Name: pr.Name, Src: pr.Before}
	}
	var perr *PairError
	runner.Run(files, func(fr batch.FileResult) bool {
		if fr.Index < 0 {
			perr = &PairError{Stage: "verify", Detail: fmt.Sprintf("configuration: %v", fr.Err)}
			return false
		}
		pr := pairs[fr.Index]
		if fr.Err != nil {
			perr = &PairError{Pair: pr.Name, Stage: "verify", Detail: fr.Err.Error()}
			return false
		}
		if fr.Output != pr.After {
			perr = &PairError{Pair: pr.Name, Stage: "verify",
				Detail: mismatchDetail(fr.Output, pr.After, fr.Matches())}
			return false
		}
		return true
	})
	return perr
}

// mismatchDetail pinpoints the first divergence between the patched output
// and the expected after text.
func mismatchDetail(got, want string, matches int) string {
	i := 0
	for i < len(got) && i < len(want) && got[i] == want[i] {
		i++
	}
	line := 1 + strings.Count(want[:min(i, len(want))], "\n")
	excerpt := func(s string) string {
		e := s[min(i, len(s)):]
		if len(e) > 40 {
			e = e[:40]
		}
		return e
	}
	return fmt.Sprintf("patched output diverges from the expected after at byte %d (line %d): got %q, want %q (%d rule matches)",
		i, line, excerpt(got), excerpt(want), matches)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
