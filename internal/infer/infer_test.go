package infer

import (
	"strings"
	"testing"

	"repro/internal/batch"
	"repro/internal/core"
)

func mustInfer(t *testing.T, pairs []Pair) *Result {
	t.Helper()
	res, err := Infer(pairs, Options{})
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	return res
}

// apply runs the inferred patch over one source through the same campaign
// API the oracle uses.
func apply(t *testing.T, res *Result, src string) string {
	t.Helper()
	var out string
	perr := (*PairError)(nil)
	runner := batch.New(res.Patch, batch.Options{})
	runner.Run([]core.SourceFile{{Name: "x.c", Src: src}}, func(fr batch.FileResult) bool {
		if fr.Err != nil {
			t.Fatalf("apply: %v", fr.Err)
		}
		out = fr.Output
		return true
	})
	_ = perr
	return out
}

func TestInferSimpleCallRewrite(t *testing.T) {
	before := `int f(int n) {
    int r = old_api(n);
    return r;
}
`
	after := `int f(int n) {
    int r = new_api(n, 0);
    return r;
}
`
	res := mustInfer(t, []Pair{{Name: "p1", Before: before, After: after}})
	t.Logf("inferred (%s):\n%s", res.Variant, res.Cocci)
	if res.Variant != "abstracted" {
		t.Errorf("expected the most abstract variant to survive, got %s", res.Variant)
	}
	if len(res.Metas) == 0 {
		t.Error("expected at least one metavariable in the abstracted patch")
	}
	// The abstracted patch generalizes: a different function with different
	// names gets the same rewrite.
	other := `static long g(long count) {
    long v = old_api(count);
    return v;
}
`
	got := apply(t, res, other)
	want := `static long g(long count) {
    long v = new_api(count, 0);
    return v;
}
`
	if got != want {
		t.Errorf("inferred patch does not generalize:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestInferStatementInsertionAndDeletion(t *testing.T) {
	before := `void h(char *p) {
    setup(p);
    stage_one(p);
    stage_two(p);
    old_log(p);
    teardown(p);
}
`
	after := `void h(char *p) {
    setup(p);
    check(p);
    stage_one(p);
    stage_two(p);
    teardown(p);
}
`
	res := mustInfer(t, []Pair{{Name: "p1", Before: before, After: after}})
	t.Logf("inferred (%s):\n%s", res.Variant, res.Cocci)
	if !strings.Contains(res.Cocci, "+") || !strings.Contains(res.Cocci, "-") {
		t.Fatalf("expected both an insertion and a deletion:\n%s", res.Cocci)
	}
}

func TestInferDotsCollapse(t *testing.T) {
	// Edits at both ends, so the unchanged interior run is genuinely
	// interior and must collapse to `...`.
	before := `void f(int *a) {
    old_open(a);
    s1(a);
    s2(a);
    s3(a);
    s4(a);
    s5(a);
    old_close(a);
}
`
	after := `void f(int *a) {
    new_open(a);
    s1(a);
    s2(a);
    s3(a);
    s4(a);
    s5(a);
    new_close(a);
}
`
	res := mustInfer(t, []Pair{{Name: "p1", Before: before, After: after}})
	t.Logf("inferred (%s):\n%s", res.Variant, res.Cocci)
	if res.Variant == "abstracted" && !strings.Contains(res.Cocci, "...") {
		t.Errorf("expected the unchanged interior to collapse to dots:\n%s", res.Cocci)
	}
}

func TestInferMultiPairPromotesConstant(t *testing.T) {
	mk := func(fn, arg string) (string, string) {
		before := "int " + fn + "(int x) {\n    return old_call(x, " + arg + ");\n}\n"
		after := "int " + fn + "(int x) {\n    return new_call(x);\n}\n"
		return before, after
	}
	b1, a1 := mk("f", "4")
	b2, a2 := mk("g", "8")
	res := mustInfer(t, []Pair{
		{Name: "p1", Before: b1, After: a1},
		{Name: "p2", Before: b2, After: a2},
	})
	t.Logf("inferred (%s):\n%s", res.Variant, res.Cocci)
	// The differing constants 4 and 8 must have been promoted to a shared
	// metavariable; neither literal may survive in the patch body.
	if strings.Contains(res.Cocci, "4") || strings.Contains(res.Cocci, "8") {
		t.Errorf("constants should have been promoted to a metavariable:\n%s", res.Cocci)
	}
	foundConst := false
	for _, kind := range res.Metas {
		if kind == "constant" {
			foundConst = true
		}
	}
	if !foundConst {
		t.Errorf("expected a constant metavariable, got %v", res.Metas)
	}
}

func TestInferRenamedCopyCoverage(t *testing.T) {
	body := `{
    int v = compute(n);
    old_use(v);
    return v;
}`
	before1 := "int f(int n) " + body + "\n"
	after1 := strings.Replace(before1, "old_use", "new_use", 1)
	before2 := "int g_renamed(int n) " + body + "\n"
	after2 := strings.Replace(before2, "old_use", "new_use", 1)
	res := mustInfer(t, []Pair{
		{Name: "p1", Before: before1, After: after1},
		{Name: "p2", Before: before2, After: after2},
	})
	if len(res.Examples) != 2 {
		t.Errorf("expected two examples, got %v", res.Examples)
	}
}

func TestInferIrreconcilablePair(t *testing.T) {
	// The two examples insert *different* code — no single patch can
	// reproduce both, and the diagnostic must name the offending pair.
	b1 := "void f(int x) {\n    old(x);\n}\n"
	a1 := "void f(int x) {\n    alpha(x);\n    beta(x);\n}\n"
	b2 := "void g(int y) {\n    old(y);\n}\n"
	a2 := "void g(int y) {\n    gamma_only(y);\n}\n"
	_, err := Infer([]Pair{
		{Name: "pairA", Before: b1, After: a1},
		{Name: "pairB", Before: b2, After: a2},
	}, Options{})
	if err == nil {
		t.Fatal("expected an inference failure for irreconcilable pairs")
	}
	perr, ok := err.(*PairError)
	if !ok {
		t.Fatalf("error is %T, want *PairError: %v", err, err)
	}
	if !strings.Contains(perr.Pair+perr.Other, "pairA") || !strings.Contains(perr.Pair+perr.Other, "pairB") {
		t.Errorf("diagnostic does not name both pairs: %+v", perr)
	}
	t.Logf("structured diagnostic: %v", perr)
}

func TestInferMultiFunctionPair(t *testing.T) {
	before := `static void first(int a) {
    old_api(a);
}

static void second(int b) {
    old_api(b);
}
`
	after := strings.ReplaceAll(before, "old_api", "new_api")
	res := mustInfer(t, []Pair{{Name: "p1", Before: before, After: after}})
	if len(res.Examples) != 2 {
		t.Errorf("expected one example per changed function, got %v", res.Examples)
	}
}

func TestInferNoChanges(t *testing.T) {
	src := "int f(void) {\n    return 1;\n}\n"
	_, err := Infer([]Pair{{Name: "p1", Before: src, After: src}}, Options{})
	perr, ok := err.(*PairError)
	if !ok || perr.Stage != "align" {
		t.Fatalf("expected an align-stage PairError, got %v", err)
	}
}

func TestInferParseFailure(t *testing.T) {
	_, err := Infer([]Pair{{Name: "bad", Before: "int f( {", After: "int f() {}"}}, Options{})
	perr, ok := err.(*PairError)
	if !ok || perr.Stage != "parse" || perr.Pair != "bad" {
		t.Fatalf("expected a parse-stage PairError naming the pair, got %v", err)
	}
}

func TestPairErrorMessage(t *testing.T) {
	e := &PairError{Pair: "a.c", Other: "b.c", Stage: "generalize",
		Subtree: "x +  1", Detail: "kinds differ"}
	msg := e.Error()
	for _, want := range []string{"a.c", "b.c", "generalize", "x + 1", "kinds differ"} {
		if !strings.Contains(msg, want) {
			t.Errorf("PairError message %q missing %q", msg, want)
		}
	}
}
