// Skeleton construction: one example's before/after function bodies become
// a sequence of marked pieces (context / minus / plus / dots), with shared
// subtrees of paired modified statements anti-unified into typed
// metavariable holes.

package infer

import (
	"reflect"
	"sort"
	"strings"

	"repro/internal/cast"
)

// piece is one statement-granular element of a rule body.
type piece struct {
	mark byte   // ' ' context, '-' deletion, '+' insertion, '.' dots
	text string // statement text, base-indent-stripped, possibly multi-line
}

// skeleton is one example's (or a generalization's) rule-body shape.
type skeleton struct {
	example string
	pieces  []piece
}

// marks returns the piece marks as a string — the shape compared across
// examples during generalization.
func (sk *skeleton) marks() string {
	b := make([]byte, len(sk.pieces))
	for i, p := range sk.pieces {
		b[i] = p.mark
	}
	return string(b)
}

// body renders the skeleton as an SmPL rule body.
func (sk *skeleton) body() string {
	var lines []string
	for _, p := range sk.pieces {
		switch p.mark {
		case '.':
			lines = append(lines, "  ...")
		case '-':
			for _, l := range strings.Split(p.text, "\n") {
				lines = append(lines, "- "+l)
			}
		case '+':
			for _, l := range strings.Split(p.text, "\n") {
				lines = append(lines, "+ "+l)
			}
		default:
			for _, l := range strings.Split(p.text, "\n") {
				lines = append(lines, "  "+l)
			}
		}
	}
	return strings.Join(lines, "\n")
}

// variantBuilder holds the metavariable state shared by every skeleton of
// one ladder variant: the allocator (collision-free against all source
// identifiers), the kind table, and the coreference map keying holes by
// their concrete text so the same subtree always gets the same name —
// within an example and across examples.
type variantBuilder struct {
	reserved map[string]bool
	metas    map[string]cast.MetaKind
	order    []string
	keyName  map[string]string // "kind\x00normtext" -> metavariable name
	counters map[byte]int
}

func newVariantBuilder(idents map[string]bool) *variantBuilder {
	reserved := make(map[string]bool, len(idents))
	for id := range idents {
		reserved[id] = true
	}
	return &variantBuilder{
		reserved: reserved,
		metas:    map[string]cast.MetaKind{},
		keyName:  map[string]string{},
		counters: map[byte]int{},
	}
}

func kindPrefix(kind cast.MetaKind) byte {
	switch kind {
	case cast.MetaIdentKind:
		return 'I'
	case cast.MetaConstKind:
		return 'C'
	case cast.MetaTypeKind:
		return 'T'
	default:
		return 'E'
	}
}

// fresh allocates a new metavariable name of the given kind, skipping any
// identifier that appears in the example sources (plus-line substitution is
// word-based, so a collision would rewrite unrelated code).
func (vb *variantBuilder) fresh(kind cast.MetaKind) string {
	prefix := kindPrefix(kind)
	for {
		vb.counters[prefix]++
		name := string(prefix) + itoa(vb.counters[prefix])
		if !vb.reserved[name] {
			vb.reserved[name] = true
			vb.metas[name] = kind
			vb.order = append(vb.order, name)
			return name
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// hole returns the metavariable standing for a shared subtree, reusing the
// name when the same (kind, text) was abstracted before — that is what
// gives repeated subterms coreference in the pattern.
func (vb *variantBuilder) hole(kind cast.MetaKind, norm string) string {
	key := string(kindPrefix(kind)) + "\x00" + norm
	if name, ok := vb.keyName[key]; ok {
		return name
	}
	name := vb.fresh(kind)
	vb.keyName[key] = name
	return name
}

// isMeta reports the kind of a declared metavariable name.
func (vb *variantBuilder) isMeta(name string) (cast.MetaKind, bool) {
	k, ok := vb.metas[name]
	return k, ok
}

// splice is one subtree replacement: token range [first,last] of a file
// becomes the metavariable name.
type splice struct {
	first, last int
	name        string
}

// buildSkeleton aligns the example's body statements and assembles pieces.
// Hole discovery is a first pass over the edit hunks only; context
// statements are then abstracted in a second pass, but solely at subtrees
// coreferent with an already-discovered hole — novel context text stays
// concrete, so the pattern keeps its anchors while unchanged mentions of an
// edited subterm generalize with it.
func (vb *variantBuilder) buildSkeleton(ex example, abstract bool) (*skeleton, *PairError) {
	bItems, aItems := ex.bFn.Body.Items, ex.aFn.Body.Items
	bKeys := make([]string, len(bItems))
	for i, s := range bItems {
		bKeys[i] = cast.NormText(ex.bf, s)
	}
	aKeys := make([]string, len(aItems))
	for i, s := range aItems {
		aKeys[i] = cast.NormText(ex.af, s)
	}
	ops := cast.AlignSeq(bKeys, aKeys)

	// Pass 1: anti-unify each hunk's paired modified statements.
	bSpl, aSpl := map[int][]splice{}, map[int][]splice{}
	if abstract {
		var dels, inss []int
		discover := func() {
			if len(dels) == len(inss) {
				for i := range dels {
					au := &antiUnifier{vb: vb, bf: ex.bf, af: ex.af}
					au.visit(bItems[dels[i]], aItems[inss[i]], false)
					bSpl[dels[i]] = au.bSpl
					aSpl[inss[i]] = au.aSpl
				}
			}
			dels, inss = nil, nil
		}
		for _, op := range ops {
			switch op.Kind {
			case cast.AlignSame:
				discover()
			case cast.AlignDel:
				dels = append(dels, op.A)
			case cast.AlignIns:
				inss = append(inss, op.B)
			}
		}
		discover()
	}

	// Pass 2a: match-side splices. Context and minus statements reuse the
	// holes pass 1 discovered and abstract their remaining identifiers into
	// fresh ones — match-side holes bind freely, and the oracle demotes the
	// variant if an anchor was load-bearing. Plus statements (pass 2b, after
	// every binder has been seen) only consume existing holes: a plus-side
	// metavariable without a minus-side binding would be unsubstitutable.
	ctxSpl := map[int][]splice{}
	if abstract {
		for _, op := range ops {
			switch op.Kind {
			case cast.AlignSame:
				ctxSpl[op.A] = vb.sideSplices(ex.bf, bItems[op.A], nil, true)
			case cast.AlignDel:
				bSpl[op.A] = vb.sideSplices(ex.bf, bItems[op.A], bSpl[op.A], true)
			}
		}
		for _, op := range ops {
			if op.Kind == cast.AlignIns {
				aSpl[op.B] = vb.sideSplices(ex.af, aItems[op.B], aSpl[op.B], false)
			}
		}
	}

	// Pass 3: emit pieces; hunks keep diff order (deletions then
	// insertions).
	sk := &skeleton{example: ex.name}
	var dels, inss []int
	flush := func() {
		for _, di := range dels {
			sk.pieces = append(sk.pieces, piece{'-', stmtText(ex.bf, bItems[di], bSpl[di])})
		}
		for _, ii := range inss {
			sk.pieces = append(sk.pieces, piece{'+', stmtText(ex.af, aItems[ii], aSpl[ii])})
		}
		dels, inss = nil, nil
	}
	for _, op := range ops {
		switch op.Kind {
		case cast.AlignSame:
			flush()
			sk.pieces = append(sk.pieces, piece{' ', stmtText(ex.bf, bItems[op.A], ctxSpl[op.A])})
		case cast.AlignDel:
			dels = append(dels, op.A)
		case cast.AlignIns:
			inss = append(inss, op.B)
		}
	}
	flush()
	return sk, nil
}

// sideSplices computes one statement's final splice set: the fixed splices
// (pass 1's anti-unification holes) are kept, subtrees whose text already
// names a hole reuse it, and — when fresh is set, i.e. on match-side
// statements — remaining identifiers get fresh holes. Call-function
// positions stay concrete throughout, preserving the pattern's anchors.
func (vb *variantBuilder) sideSplices(f *cast.File, n cast.Node, fixed []splice, fresh bool) []splice {
	out := append([]splice(nil), fixed...)
	walkHolable(n, false, func(m cast.Node, kind cast.MetaKind) bool {
		first, last := m.Span()
		contains := false
		for _, sp := range fixed {
			if sp.first <= first && last <= sp.last {
				return true // already inside a pass-1 hole
			}
			if first <= sp.first && sp.last <= last {
				contains = true
			}
		}
		if contains {
			return false // holds a pass-1 hole; only descend
		}
		norm := cast.NormText(f, m)
		key := string(kindPrefix(kind)) + "\x00" + norm
		if name, ok := vb.keyName[key]; ok {
			out = append(out, splice{first, last, name})
			return true
		}
		if fresh && kind == cast.MetaIdentKind {
			out = append(out, splice{first, last, vb.hole(kind, norm)})
			return true
		}
		return false
	})
	return out
}

// collapseSkeleton reduces unchanged context: interior runs of three or
// more context statements keep only their two edit-adjacent anchors with
// `...` between; the leading run keeps only its last statement and the
// trailing run only its first (a statement-sequence pattern may start and
// end anywhere, so no outer dots are needed).
func collapseSkeleton(sk *skeleton) *skeleton {
	out := &skeleton{example: sk.example}
	n := len(sk.pieces)
	i := 0
	for i < n {
		if sk.pieces[i].mark != ' ' {
			out.pieces = append(out.pieces, sk.pieces[i])
			i++
			continue
		}
		j := i
		for j < n && sk.pieces[j].mark == ' ' {
			j++
		}
		run := sk.pieces[i:j]
		switch {
		case i == 0 && j == n:
			// Whole body unchanged — nothing to collapse against; keep.
			out.pieces = append(out.pieces, run...)
		case i == 0:
			out.pieces = append(out.pieces, run[len(run)-1])
		case j == n:
			out.pieces = append(out.pieces, run[0])
		case len(run) <= 2:
			out.pieces = append(out.pieces, run...)
		default:
			out.pieces = append(out.pieces, run[0], piece{mark: '.'}, run[len(run)-1])
		}
		i = j
	}
	return out
}

// stmtText returns the statement's exact source text with the given token
// spans replaced by metavariable names and the statement's own-line
// indentation stripped from continuation lines (the transformer re-adds the
// insertion site's indentation to every plus line, so stored text must be
// relative).
func stmtText(f *cast.File, n cast.Node, spls []splice) string {
	first, last := n.Span()
	toks := f.Toks.Tokens
	start := toks[first].Pos.Offset
	end := toks[last].Pos.Offset + len(toks[last].Text)
	raw := f.Toks.Src[start:end]
	if len(spls) > 0 {
		sorted := append([]splice(nil), spls...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].first < sorted[j].first })
		var sb strings.Builder
		at := start
		for _, sp := range sorted {
			a := toks[sp.first].Pos.Offset
			b := toks[sp.last].Pos.Offset + len(toks[sp.last].Text)
			sb.WriteString(f.Toks.Src[at:a])
			sb.WriteString(sp.name)
			at = b
		}
		sb.WriteString(f.Toks.Src[at:end])
		raw = sb.String()
	}
	return stripBase(raw, lineIndent(toks[first].WS))
}

// lineIndent is the tail of a whitespace run after its last newline — the
// indentation of the token's own line.
func lineIndent(ws string) string {
	if nl := strings.LastIndexByte(ws, '\n'); nl >= 0 {
		return ws[nl+1:]
	}
	return ws
}

// stripBase removes the base indentation from every continuation line.
func stripBase(text, base string) string {
	if base == "" || !strings.Contains(text, "\n") {
		return text
	}
	lines := strings.Split(text, "\n")
	for i := 1; i < len(lines); i++ {
		lines[i] = strings.TrimPrefix(lines[i], base)
	}
	return strings.Join(lines, "\n")
}

// antiUnifier walks a paired before/after statement in lockstep, recording
// hole splices for subtrees shared verbatim by both sides.
type antiUnifier struct {
	vb   *variantBuilder
	bf   *cast.File
	af   *cast.File
	bSpl []splice
	aSpl []splice
}

// abstractKind maps a node to the metavariable kind that may stand for it;
// ok is false for nodes that must stay concrete (statements, initializer
// lists, opaque runs).
func abstractKind(n cast.Node) (cast.MetaKind, bool) {
	switch n.(type) {
	case *cast.Ident:
		return cast.MetaIdentKind, true
	case *cast.BasicLit:
		return cast.MetaConstKind, true
	case *cast.Type:
		return cast.MetaTypeKind, true
	case *cast.ParenExpr, *cast.UnaryExpr, *cast.BinaryExpr, *cast.CondExpr,
		*cast.CallExpr, *cast.IndexExpr, *cast.MemberExpr, *cast.CastExpr,
		*cast.SizeofExpr, *cast.KernelLaunch:
		return cast.MetaExprKind, true
	}
	return 0, false
}

// visit anti-unifies one before/after node pair. callee suppresses
// abstraction of the node itself (a call's function position abstracted to
// a metavariable would match any call site and destroy the pattern's
// anchor); recursion below a callee is unrestricted again.
func (au *antiUnifier) visit(bn, an cast.Node, callee bool) {
	if bn == nil || an == nil {
		return
	}
	normB := cast.NormText(au.bf, bn)
	normA := cast.NormText(au.af, an)
	if kind, ok := abstractKind(bn); ok && !callee && normB == normA &&
		reflect.TypeOf(bn) == reflect.TypeOf(an) {
		name := au.vb.hole(kind, normB)
		bFirst, bLast := bn.Span()
		aFirst, aLast := an.Span()
		au.bSpl = append(au.bSpl, splice{bFirst, bLast, name})
		au.aSpl = append(au.aSpl, splice{aFirst, aLast, name})
		return
	}
	if reflect.TypeOf(bn) != reflect.TypeOf(an) {
		au.divergent(bn, an) // the edit: only shared sub-subtrees abstract
		return
	}
	switch x := bn.(type) {
	case *cast.CallExpr:
		y := an.(*cast.CallExpr)
		au.visit(x.Fun, y.Fun, true)
		au.visitArgs(x.Args, y.Args)
	case *cast.KernelLaunch:
		y := an.(*cast.KernelLaunch)
		au.visit(x.Fun, y.Fun, true)
		au.visitArgs(x.Config, y.Config)
		au.visitArgs(x.Args, y.Args)
	default:
		bc, ac := cast.Children(bn), cast.Children(an)
		if len(bc) != len(ac) {
			au.divergent(bn, an)
			return
		}
		for i := range bc {
			au.visit(bc[i], ac[i], false)
		}
	}
}

// divergent handles a structurally divergent pair — the edit itself. The
// edit's own shape stays concrete, but maximal subtrees appearing verbatim
// on BOTH sides still abstract to one shared metavariable: the minus side
// binds it and the plus side substitutes the binding, so an edit like
// `acc` → `clamp(acc)` generalizes over the wrapped variable. A subtree
// present on only one side stays concrete — a plus-side metavariable with
// no minus-side binding would be unsubstitutable.
func (au *antiUnifier) divergent(bn, an cast.Node) {
	bKeys := subtreeKeys(au.bf, bn)
	aKeys := subtreeKeys(au.af, an)
	shared := map[string]bool{}
	for k := range bKeys {
		if aKeys[k] {
			shared[k] = true
		}
	}
	if len(shared) == 0 {
		return
	}
	au.bSpl = append(au.bSpl, spliceShared(au.vb, au.bf, bn, shared)...)
	au.aSpl = append(au.aSpl, spliceShared(au.vb, au.af, an, shared)...)
}

// subtreeKeys collects the hole key of every abstractable subtree, honoring
// the callee rule (a call's function position contributes its children, not
// itself).
func subtreeKeys(f *cast.File, n cast.Node) map[string]bool {
	out := map[string]bool{}
	walkHolable(n, false, func(m cast.Node, kind cast.MetaKind) bool {
		out[string(kindPrefix(kind))+"\x00"+cast.NormText(f, m)] = true
		return false // keep descending: inner shared subtrees count too
	})
	return out
}

// spliceShared splices a hole over every maximal subtree whose key is in
// shared, descending no further below a splice.
func spliceShared(vb *variantBuilder, f *cast.File, n cast.Node, shared map[string]bool) []splice {
	var out []splice
	walkHolable(n, false, func(m cast.Node, kind cast.MetaKind) bool {
		norm := cast.NormText(f, m)
		if !shared[string(kindPrefix(kind))+"\x00"+norm] {
			return false
		}
		first, last := m.Span()
		out = append(out, splice{first, last, vb.hole(kind, norm)})
		return true // maximal: stop below the splice
	})
	return out
}

// walkHolable visits every node that may become a hole (abstractable, not a
// callee position), calling fn with its kind; fn returning true prunes the
// subtree below that node.
func walkHolable(n cast.Node, callee bool, fn func(m cast.Node, kind cast.MetaKind) bool) {
	if n == nil {
		return
	}
	if kind, ok := abstractKind(n); ok && !callee {
		if fn(n, kind) {
			return
		}
	}
	switch x := n.(type) {
	case *cast.CallExpr:
		walkHolable(x.Fun, true, fn)
		for _, a := range x.Args {
			walkHolable(a, false, fn)
		}
	case *cast.KernelLaunch:
		walkHolable(x.Fun, true, fn)
		for _, c := range x.Config {
			walkHolable(c, false, fn)
		}
		for _, a := range x.Args {
			walkHolable(a, false, fn)
		}
	default:
		for _, c := range cast.Children(n) {
			walkHolable(c, false, fn)
		}
	}
}

// visitArgs pairs variadic child lists (call arguments) by aligning their
// normalized texts, so a shared argument abstracts even when the argument
// count changed around it.
func (au *antiUnifier) visitArgs(bArgs, aArgs []cast.Expr) {
	bKeys := make([]string, len(bArgs))
	for i, e := range bArgs {
		bKeys[i] = cast.NormText(au.bf, e)
	}
	aKeys := make([]string, len(aArgs))
	for i, e := range aArgs {
		aKeys[i] = cast.NormText(au.af, e)
	}
	var dels, inss []int
	flush := func() {
		if len(dels) == len(inss) {
			// Positionally paired rewritten arguments anti-unify like any
			// modified pair; unbalanced runs (an argument appeared or
			// vanished) stay concrete.
			for i := range dels {
				au.visit(bArgs[dels[i]], aArgs[inss[i]], false)
			}
		}
		dels, inss = nil, nil
	}
	for _, op := range cast.AlignSeq(bKeys, aKeys) {
		switch op.Kind {
		case cast.AlignSame:
			flush()
			au.visit(bArgs[op.A], aArgs[op.B], false)
		case cast.AlignDel:
			dels = append(dels, op.A)
		case cast.AlignIns:
			inss = append(inss, op.B)
		}
	}
	flush()
}
