// Package instrument generates marker-API instrumentation patches for the
// profiling tools the paper names — LIKWID, Score-P, and Caliper — all
// instances of its first use case: enclose the code to be measured with
// start/stop calls of a marker API, selected and removable via semantic
// patches. The generators are parametric in the region selector (every
// OpenMP block, or functions matching a regex), so instrumentation can be
// turned on transitorily and reverted exactly, as the paper advocates.
package instrument

import (
	"fmt"
	"regexp"
	"strings"
)

// API describes one marker API's syntax.
type API struct {
	Name    string
	Header  string // header to include
	Start   string // statement template; %s is the region label expression
	Stop    string
	AfterOf string // the include after which to place the new header
}

// Supported marker APIs (the three named in the paper).
var (
	LIKWID = API{
		Name:    "likwid",
		Header:  "likwid-marker.h",
		Start:   "LIKWID_MARKER_START(%s);",
		Stop:    "LIKWID_MARKER_STOP(%s);",
		AfterOf: "omp.h",
	}
	ScoreP = API{
		Name:    "scorep",
		Header:  "scorep/SCOREP_User.h",
		Start:   "SCOREP_USER_REGION_BY_NAME_BEGIN(%s, SCOREP_USER_REGION_TYPE_COMMON);",
		Stop:    "SCOREP_USER_REGION_BY_NAME_END(%s);",
		AfterOf: "omp.h",
	}
	Caliper = API{
		Name:    "caliper",
		Header:  "caliper/cali.h",
		Start:   "CALI_MARK_BEGIN(%s);",
		Stop:    "CALI_MARK_END(%s);",
		AfterOf: "omp.h",
	}
)

// APIs indexes the supported marker APIs by name.
var APIs = map[string]API{
	"likwid":  LIKWID,
	"scorep":  ScoreP,
	"caliper": Caliper,
}

// Selector restricts which regions get instrumented.
type Selector struct {
	// FuncRegex, when non-empty, instruments whole functions whose name
	// matches instead of OpenMP blocks.
	FuncRegex string
	// Label is the region label expression (default __func__).
	Label string
}

func (s Selector) label() string {
	if s.Label == "" {
		return "__func__"
	}
	return s.Label
}

// Validate checks the selector.
func (s Selector) Validate() error {
	if s.FuncRegex != "" {
		if _, err := regexp.Compile(s.FuncRegex); err != nil {
			return fmt.Errorf("instrument: bad function regex: %w", err)
		}
	}
	return nil
}

// InsertPatch generates the semantic patch that adds instrumentation.
func InsertPatch(api API, sel Selector) (string, error) {
	if err := sel.Validate(); err != nil {
		return "", err
	}
	var sb strings.Builder
	// Rule 1: the header.
	fmt.Fprintf(&sb, "@header@\n@@\n#include <%s>\n+ #include <%s>\n\n", api.AfterOf, api.Header)
	start := fmt.Sprintf(api.Start, sel.label())
	stop := fmt.Sprintf(api.Stop, sel.label())
	if sel.FuncRegex != "" {
		// Rule 2a: instrument whole functions selected by regex.
		fmt.Fprintf(&sb, `@funcs@
type T;
identifier f =~ "%s";
parameter list PL;
@@
T f(PL)
{
+ %s
...
+ %s
}
`, sel.FuncRegex, start, stop)
		return sb.String(), nil
	}
	// Rule 2b: instrument every OpenMP block (the paper's listing).
	fmt.Fprintf(&sb, "@regions@\n@@\n#pragma omp ...\n{\n+ %s\n...\n+ %s\n}\n", start, stop)
	return sb.String(), nil
}

// RemovePatch generates the inverse patch: delete the marker calls and the
// header again ("perhaps only transitorily", as the paper puts it).
func RemovePatch(api API, sel Selector) (string, error) {
	if err := sel.Validate(); err != nil {
		return "", err
	}
	start := fmt.Sprintf(api.Start, sel.label())
	stop := fmt.Sprintf(api.Stop, sel.label())
	var sb strings.Builder
	fmt.Fprintf(&sb, "@unmark@\n@@\n- %s\n\n@unmark2@\n@@\n- %s\n\n", start, stop)
	fmt.Fprintf(&sb, "@unheader depends on unmark@\n@@\n- #include <%s>\n", api.Header)
	return sb.String(), nil
}
