package instrument

import (
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/smpl"
)

func apply(t *testing.T, patchText, src string) string {
	t.Helper()
	p, err := smpl.ParsePatch("i.cocci", patchText)
	if err != nil {
		t.Fatalf("patch: %v\n%s", err, patchText)
	}
	res, err := core.New(p, core.Options{}).Run([]core.SourceFile{{Name: "a.c", Src: src}})
	if err != nil {
		t.Fatal(err)
	}
	return res.Outputs["a.c"]
}

func workload() string {
	return codegen.OpenMP(codegen.Config{Funcs: 2, StmtsPerFunc: 1, Seed: 13})
}

func TestInsertAllAPIs(t *testing.T) {
	for name, api := range APIs {
		patch, err := InsertPatch(api, Selector{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := apply(t, patch, workload())
		if !strings.Contains(out, "#include <"+api.Header+">") {
			t.Errorf("%s: header missing:\n%s", name, out)
		}
		wantStart := strings.ReplaceAll(api.Start, "%s", "__func__")
		if strings.Count(out, wantStart) != 2 {
			t.Errorf("%s: want 2 start markers:\n%s", name, out)
		}
	}
}

func TestInsertThenRemoveRoundtrips(t *testing.T) {
	// The paper's "transitory instrumentation" workflow: the remove patch
	// is the exact inverse of the insert patch.
	src := workload()
	for name, api := range APIs {
		ins, err := InsertPatch(api, Selector{})
		if err != nil {
			t.Fatal(err)
		}
		rem, err := RemovePatch(api, Selector{})
		if err != nil {
			t.Fatal(err)
		}
		instrumented := apply(t, ins, src)
		restored := apply(t, rem, instrumented)
		if restored != src {
			t.Errorf("%s: roundtrip not identity\noriginal:\n%s\nrestored:\n%s", name, src, restored)
		}
	}
}

func TestFuncRegexSelector(t *testing.T) {
	patch, err := InsertPatch(LIKWID, Selector{FuncRegex: "kernel_0"})
	if err != nil {
		t.Fatal(err)
	}
	out := apply(t, patch, workload())
	if strings.Count(out, "LIKWID_MARKER_START") != 1 {
		t.Errorf("regex selector should hit exactly one function:\n%s", out)
	}
}

func TestCustomLabel(t *testing.T) {
	patch, err := InsertPatch(Caliper, Selector{Label: `"hot_loop"`})
	if err != nil {
		t.Fatal(err)
	}
	out := apply(t, patch, workload())
	if !strings.Contains(out, `CALI_MARK_BEGIN("hot_loop");`) {
		t.Errorf("custom label missing:\n%s", out)
	}
}

func TestBadRegexRejected(t *testing.T) {
	if _, err := InsertPatch(LIKWID, Selector{FuncRegex: "("}); err == nil {
		t.Error("expected error for bad regex")
	}
	if _, err := RemovePatch(LIKWID, Selector{FuncRegex: "("}); err == nil {
		t.Error("expected error for bad regex")
	}
}

func TestRemoveOnlyWhenMarkersExist(t *testing.T) {
	// depends-on prevents the header removal when no markers were removed.
	rem, err := RemovePatch(ScoreP, Selector{})
	if err != nil {
		t.Fatal(err)
	}
	src := "#include <scorep/SCOREP_User.h>\nvoid f(void) { unrelated(); }\n"
	out := apply(t, rem, src)
	if !strings.Contains(out, "scorep/SCOREP_User.h") {
		t.Errorf("header removed although no marker present:\n%s", out)
	}
}
