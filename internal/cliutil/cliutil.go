// Package cliutil holds the file-handling helpers shared by the gocci
// command-line front ends: the atomic in-place writer and the recursive
// source-tree collector. They were born in cmd/gocci and moved here when
// the HPC tools (gocci-acc2omp, gocci-hipify) became engine clients with
// the same --in-place and -r semantics.
package cliutil

import (
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/obs"
)

// srcExts are the file suffixes CollectSources gathers.
var srcExts = map[string]bool{
	".c": true, ".h": true,
	".cc": true, ".cpp": true, ".cxx": true,
	".hh": true, ".hpp": true, ".hxx": true,
	".cu": true, ".cuh": true,
}

// IsSource reports whether path has a C/C++/CUDA source suffix.
func IsSource(path string) bool { return srcExts[filepath.Ext(path)] }

// WriteInPlace atomically replaces path with content, keeping the original
// file's permission bits: the new text lands in a temp file in the same
// directory, is fsynced, and is renamed over the original, so a crash
// mid-write can never leave a truncated source file behind, and an
// executable script stays executable. Symlinks are resolved first so the
// rename rewrites the link's target instead of silently replacing the link
// with a regular file. (Hard-link peers do detach — the price of an atomic
// replace.)
func WriteInPlace(path, content string) error {
	real, err := filepath.EvalSymlinks(path)
	if err != nil {
		return err
	}
	path = real
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".gocci-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.WriteString(content); err != nil {
		tmp.Close()
		return err
	}
	// Chmod rather than relying on CreateTemp's 0600: the replacement must
	// carry the original's permission bits.
	if err := tmp.Chmod(info.Mode().Perm()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// WriteTrace renders a run's trace buffer as Chrome trace-event JSON at
// path, ready to load in Perfetto or chrome://tracing. Shared by every
// front end's --trace flag.
func WriteTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// CollectSources walks directories gathering C/C++/CUDA files in sorted
// path order, so batch output order is reproducible run to run. Files
// reached through repeated or overlapping directory arguments are kept
// once — patching a file twice in one run would double-apply the rules.
// An unreadable entry is reported through warnf (when non-nil) and skipped
// — one bad subdirectory must not abort the whole batch.
func CollectSources(dirs []string, warnf func(format string, args ...any)) ([]string, error) {
	if warnf == nil {
		warnf = func(string, ...any) {}
	}
	var out []string
	seen := map[string]bool{}
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				warnf("skipping %s: %v", path, err)
				if d != nil && d.IsDir() {
					return filepath.SkipDir
				}
				return nil
			}
			if d.IsDir() {
				if name := d.Name(); name == ".git" {
					return filepath.SkipDir
				}
				return nil
			}
			if !IsSource(path) {
				return nil
			}
			key := filepath.Clean(path)
			if !seen[key] {
				seen[key] = true
				out = append(out, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}
