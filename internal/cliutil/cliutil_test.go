package cliutil

import (
	"os"
	"path/filepath"
	"testing"
)

func TestIsSource(t *testing.T) {
	for _, p := range []string{"a.c", "b.h", "c.cu", "d.cuh", "e.cpp", "f.hpp", "g.cc", "h.cxx"} {
		if !IsSource(p) {
			t.Errorf("IsSource(%s) = false", p)
		}
	}
	for _, p := range []string{"a.go", "b.txt", "Makefile", "c.cocci", "d"} {
		if IsSource(p) {
			t.Errorf("IsSource(%s) = true", p)
		}
	}
}

func TestWriteInPlace(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "a.c")
	if err := os.WriteFile(p, []byte("old"), 0o750); err != nil {
		t.Fatal(err)
	}
	if err := WriteInPlace(p, "new"); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(p)
	if err != nil || string(b) != "new" {
		t.Fatalf("content = %q, err = %v", b, err)
	}
	info, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o750 {
		t.Errorf("permission bits not preserved: %v", info.Mode().Perm())
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("stray files after write: %v", entries)
	}
}

func TestWriteInPlaceFollowsSymlink(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "real.c")
	link := filepath.Join(dir, "link.c")
	if err := os.WriteFile(target, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Symlink(target, link); err != nil {
		t.Skipf("symlinks unavailable: %v", err)
	}
	if err := WriteInPlace(link, "new"); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Lstat(link); err != nil || fi.Mode()&os.ModeSymlink == 0 {
		t.Errorf("link was replaced by a regular file")
	}
	b, _ := os.ReadFile(target)
	if string(b) != "new" {
		t.Errorf("target content = %q", b)
	}
}

func TestWriteInPlaceMissing(t *testing.T) {
	if err := WriteInPlace(filepath.Join(t.TempDir(), "nope.c"), "x"); err == nil {
		t.Error("want error for missing file")
	}
}

func TestCollectSources(t *testing.T) {
	dir := t.TempDir()
	mk := func(rel string) string {
		p := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte("int x;\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := mk("src/a.c")
	b := mk("src/sub/b.cu")
	mk("src/readme.txt")          // wrong suffix: skipped
	mk(".git/objects/deadbeef.c") // .git: skipped

	// Overlapping roots must not duplicate files.
	got, err := CollectSources([]string{dir, filepath.Join(dir, "src")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Errorf("got %v, want [%s %s]", got, a, b)
	}
}

func TestCollectSourcesMissingDir(t *testing.T) {
	var warned bool
	got, err := CollectSources([]string{filepath.Join(t.TempDir(), "nope")},
		func(string, ...any) { warned = true })
	if err != nil {
		t.Fatalf("missing dir should warn, not fail: %v", err)
	}
	if !warned || len(got) != 0 {
		t.Errorf("warned=%v got=%v", warned, got)
	}
}
