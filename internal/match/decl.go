package match

import (
	"repro/internal/cast"
	"repro/internal/smpl"
)

// findDecls enumerates matches for declaration-level patterns.
func (m *Matcher) findDecls() []Match {
	pats := m.Pat.Decls
	var out []Match
	if len(pats) == 1 {
		out = append(out, m.findSingleDecl(pats[0])...)
		return out
	}
	// Multi-declaration patterns match contiguous windows of top-level
	// declarations.
	for start := 0; start+len(pats) <= len(m.Code.Decls); start++ {
		if m.Window != nil {
			first, _ := m.Code.Decls[start].Span()
			_, last := m.Code.Decls[start+len(pats)-1].Span()
			if !m.Window(first, last) {
				continue
			}
		}
		c := m.newCtx()
		ok := true
		for i, p := range pats {
			if !c.decl(p, m.Code.Decls[start+i]) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c.finish())
		}
	}
	return out
}

// findSingleDecl matches one pattern declaration everywhere it can occur:
// top level always; VarDecl patterns also against declaration statements,
// pragma patterns also against pragma statements.
func (m *Matcher) findSingleDecl(p cast.Decl) []Match {
	var out []Match
	for _, d := range m.Code.Decls {
		if !m.admits(d) {
			continue
		}
		c := m.newCtx()
		if c.decl(p, d) {
			out = append(out, c.finish())
		}
	}
	switch pt := p.(type) {
	case *cast.VarDecl:
		cast.Walk(m.Code, func(n cast.Node) bool {
			if ds, ok := n.(*cast.DeclStmt); ok && m.admits(ds) {
				c := m.newCtx()
				if c.varDecl(pt, ds.D) {
					out = append(out, c.finish())
				}
			}
			return true
		})
	case *cast.PragmaPattern:
		cast.Walk(m.Code, func(n cast.Node) bool {
			if ps, ok := n.(*cast.PragmaStmt); ok && m.admits(ps) {
				c := m.newCtx()
				if c.pragma(pt, ps.P) {
					c.pairNode(pt, ps)
					out = append(out, c.finish())
				}
			}
			return true
		})
	}
	return out
}

// decl matches a pattern declaration against a code declaration.
func (c *ctx) decl(p, x cast.Decl) bool {
	switch pt := p.(type) {
	case *cast.IncludePattern:
		inc, ok := x.(*cast.Include)
		if !ok || inc.Path != pt.Path || inc.Angled != pt.Angled {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.PragmaPattern:
		pr, ok := x.(*cast.Pragma)
		if !ok {
			return false
		}
		if !c.pragma(pt, pr) {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.FuncDef:
		fd, ok := x.(*cast.FuncDef)
		if !ok {
			return false
		}
		return c.funcDef(pt, fd)
	case *cast.VarDecl:
		vd, ok := x.(*cast.VarDecl)
		if !ok {
			return false
		}
		return c.varDecl(pt, vd)
	case *cast.Pragma:
		pr, ok := x.(*cast.Pragma)
		if !ok || pr.Info != pt.Info {
			return false
		}
		c.pairNode(pt, x)
		return true
	}
	return false
}

// funcDef matches function definition patterns, including attribute
// patterns, metavariable return types/names, parameter-list wildcards, and
// statement-list bodies.
func (c *ctx) funcDef(p, x *cast.FuncDef) bool {
	// Attributes: every pattern attribute must match a code attribute, in
	// order.
	ai := 0
	for _, pa := range p.Attrs {
		found := false
		for ai < len(x.Attrs) {
			na, nc := c.save()
			if c.attr(pa, x.Attrs[ai]) {
				found = true
				ai++
				break
			}
			c.restore(na, nc)
			ai++
		}
		if !found {
			return false
		}
	}
	if !c.typ(p.Ret, x.Ret) {
		return false
	}
	nf, _ := x.Name.Span()
	if !c.name(p.Name, nf, x.Name.Name) {
		return false
	}
	if !c.params(p.Params, x.Params) {
		return false
	}
	if (p.Body == nil) != (x.Body == nil) {
		return false
	}
	if p.Body != nil {
		ok, _ := c.stmtSeq(p.Body.Items, x.Body.Items, true)
		if !ok {
			return false
		}
		c.pairNode(p.Body, x.Body)
	}
	c.pairNode(p, x)
	return true
}

// attr matches one __attribute__((...)) specifier.
func (c *ctx) attr(p, x *cast.Attr) bool {
	if !c.exprList(p.Args, x.Args) {
		return false
	}
	c.pairNode(p, x)
	return true
}

// params matches parameter lists with SmPL wildcards.
func (c *ctx) params(p, x *cast.ParamList) bool {
	if p == nil || x == nil {
		return p == x
	}
	if p.MetaDots {
		c.pairNode(p, x)
		return true
	}
	// A single parameter-list metavariable binds the whole list.
	if len(p.Params) == 1 && p.Params[0].MetaName != "" {
		cf, cl := x.Span()
		// bind the inner range (exclude parens) when params exist
		name := p.Params[0].MetaName
		if len(x.Params) > 0 {
			f, _ := x.Params[0].Span()
			_, l := x.Params[len(x.Params)-1].Span()
			if !c.bind(name, cast.MetaParamListKind, f, l) {
				return false
			}
		} else {
			if !c.bindValue(name, NewValueBinding(cast.MetaParamListKind, "")) {
				return false
			}
		}
		c.corr = append(c.corr, Pair{PF: mustSpanF(p.Params[0]), PL: mustSpanL(p.Params[0]), CF: cf + 1, CL: cl - 1})
		c.pairNode(p, x)
		return true
	}
	if len(p.Params) != len(x.Params) || p.Variadic != x.Variadic {
		return false
	}
	for i := range p.Params {
		pp, xp := p.Params[i], x.Params[i]
		if pp.MetaName != "" {
			f, l := xp.Span()
			if !c.bind(pp.MetaName, cast.MetaParamListKind, f, l) {
				return false
			}
			c.corr = append(c.corr, Pair{PF: mustSpanF(pp), PL: mustSpanL(pp), CF: f, CL: l})
			continue
		}
		if !c.typ(pp.Type, xp.Type) {
			return false
		}
		if (pp.Name == nil) != (xp.Name == nil) {
			return false
		}
		if pp.Name != nil {
			nf, _ := xp.Name.Span()
			if !c.name(pp.Name, nf, xp.Name.Name) {
				return false
			}
		}
		c.pairNode(pp, xp)
	}
	c.pairNode(p, x)
	return true
}

func mustSpanF(n cast.Node) int { f, _ := n.Span(); return f }
func mustSpanL(n cast.Node) int { _, l := n.Span(); return l }

var _ = smpl.Ctx // keep the smpl import for Pattern kinds used in match.go
