package match

import (
	"strings"

	"repro/internal/cast"
)

// stmt matches one pattern statement against one code statement.
func (c *ctx) stmt(p, x cast.Stmt) bool {
	if p == nil || x == nil {
		return p == nil && x == nil
	}
	switch pt := p.(type) {
	case *cast.MetaStmt:
		cf, cl := x.Span()
		if !c.bind(pt.Name, cast.MetaStmtKind, cf, cl) {
			return false
		}
		c.pairNode(pt, x)
		return c.bindPositions(pt.Positions, cf)
	case *cast.Dots:
		// bare dots in single-statement position match any statement
		c.pairNode(pt, x)
		return true
	case *cast.DisjStmt:
		for _, br := range pt.Branches {
			if len(br) != 1 {
				continue
			}
			na, nc := c.save()
			if c.stmt(br[0], x) {
				c.pairNode(pt, x)
				return true
			}
			c.restore(na, nc)
		}
		return false
	case *cast.ConjStmt:
		for _, op := range pt.Operands {
			if !c.conjOperand(op, x) {
				return false
			}
		}
		c.pairNode(pt, x)
		return true
	case *cast.ExprStmt:
		es, ok := x.(*cast.ExprStmt)
		if !ok {
			return false
		}
		if !c.expr(pt.X, es.X) {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.DeclStmt:
		ds, ok := x.(*cast.DeclStmt)
		if !ok {
			return false
		}
		if !c.varDecl(pt.D, ds.D) {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.If:
		f, ok := x.(*cast.If)
		if !ok {
			return false
		}
		if !c.expr(pt.Cond, f.Cond) || !c.bodyStmt(pt.Then, f.Then) {
			return false
		}
		if (pt.Else == nil) != (f.Else == nil) {
			return false
		}
		if pt.Else != nil && !c.bodyStmt(pt.Else, f.Else) {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.For:
		f, ok := x.(*cast.For)
		if !ok {
			return false
		}
		if !c.forInit(pt.Init, f.Init) {
			return false
		}
		if !c.optExpr(pt.Cond, f.Cond) || !c.optExpr(pt.Post, f.Post) {
			return false
		}
		if !c.bodyStmt(pt.Body, f.Body) {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.RangeFor:
		f, ok := x.(*cast.RangeFor)
		if !ok {
			return false
		}
		if !c.varDecl(pt.Decl, f.Decl) || !c.expr(pt.X, f.X) || !c.bodyStmt(pt.Body, f.Body) {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.While:
		w, ok := x.(*cast.While)
		if !ok {
			return false
		}
		if !c.expr(pt.Cond, w.Cond) || !c.bodyStmt(pt.Body, w.Body) {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.DoWhile:
		w, ok := x.(*cast.DoWhile)
		if !ok {
			return false
		}
		if !c.bodyStmt(pt.Body, w.Body) || !c.expr(pt.Cond, w.Cond) {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.Switch:
		s, ok := x.(*cast.Switch)
		if !ok {
			return false
		}
		if !c.expr(pt.Cond, s.Cond) || !c.bodyStmt(pt.Body, s.Body) {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.Return:
		r, ok := x.(*cast.Return)
		if !ok {
			return false
		}
		if (pt.X == nil) != (r.X == nil) {
			return false
		}
		if pt.X != nil && !c.expr(pt.X, r.X) {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.Break:
		if _, ok := x.(*cast.Break); !ok {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.Continue:
		if _, ok := x.(*cast.Continue); !ok {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.Goto:
		g, ok := x.(*cast.Goto)
		if !ok || g.Label != pt.Label {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.Label:
		l, ok := x.(*cast.Label)
		if !ok || l.Name != pt.Name {
			return false
		}
		if !c.stmt(pt.Stmt, l.Stmt) {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.Case:
		cs, ok := x.(*cast.Case)
		if !ok {
			return false
		}
		if (pt.X == nil) != (cs.X == nil) {
			return false
		}
		if pt.X != nil && !c.expr(pt.X, cs.X) {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.Empty:
		if _, ok := x.(*cast.Empty); !ok {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.Compound:
		cp, ok := x.(*cast.Compound)
		if !ok {
			return false
		}
		ok2, _ := c.stmtSeq(pt.Items, cp.Items, true)
		if !ok2 {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.PragmaPattern:
		ps, ok := x.(*cast.PragmaStmt)
		if !ok {
			return false
		}
		if !c.pragma(pt, ps.P) {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.PragmaStmt:
		ps, ok := x.(*cast.PragmaStmt)
		if !ok || ps.P.Info != pt.P.Info {
			return false
		}
		c.pairNode(pt, x)
		return true
	}
	return false
}

// conjOperand implements conjunction semantics: a statement-pattern operand
// must match the statement itself; an expression-pattern operand must match
// some subexpression of the statement (every occurrence is recorded so the
// transformer can rewrite all of them, as the unroll rules require).
func (c *ctx) conjOperand(op cast.Stmt, x cast.Stmt) bool {
	if es, ok := op.(*cast.ExprStmt); ok {
		// A pattern expression used as a conjunction operand without a
		// semicolon parses as ExprStmt only when followed by ';'; treat
		// both ExprStmt and bare expression forms as containment patterns
		// unless the code statement is itself a matching ExprStmt.
		na, nc := c.save()
		if c.stmt(op, x) {
			return true
		}
		c.restore(na, nc)
		return c.containsExpr(es.X, x)
	}
	return c.stmt(op, x)
}

// containsExpr matches the pattern expression against every subexpression of
// the statement, requiring at least one hit and recording all of them with a
// consistent environment.
func (c *ctx) containsExpr(pe cast.Expr, x cast.Stmt) bool {
	found := false
	for _, sub := range cast.Exprs(x) {
		na, nc := c.save()
		if c.expr(pe, sub) {
			found = true
			// keep bindings and correspondence of every occurrence
			continue
		}
		c.restore(na, nc)
	}
	return found
}

// bodyStmt matches loop/if bodies: a pattern Compound matches either a code
// Compound or is compared via stmt; a bare pattern statement also matches a
// code Compound holding exactly that statement (brace isomorphism).
func (c *ctx) bodyStmt(p, x cast.Stmt) bool {
	if p == nil || x == nil {
		return p == nil && x == nil
	}
	// A statement metavariable binds the body as written, braces included,
	// so its text survives verbatim into script rules and plus lines.
	if _, isMeta := p.(*cast.MetaStmt); isMeta {
		return c.stmt(p, x)
	}
	if _, pIsComp := p.(*cast.Compound); !pIsComp {
		if cp, ok := x.(*cast.Compound); ok && len(cp.Items) == 1 {
			na, nc := c.save()
			if c.stmt(p, cp.Items[0]) {
				return true
			}
			c.restore(na, nc)
		}
	}
	if pc, ok := p.(*cast.Compound); ok {
		if xc, ok2 := x.(*cast.Compound); ok2 {
			ok3, _ := c.stmtSeq(pc.Items, xc.Items, true)
			if ok3 {
				c.pairNode(pc, xc)
			}
			return ok3
		}
		// pattern { ... } with a single wildcard matches a bare statement
		if len(pc.Items) == 1 {
			if _, isDots := pc.Items[0].(*cast.Dots); isDots {
				c.pairNode(pc.Items[0].(*cast.Dots), x)
				return true
			}
		}
		return false
	}
	return c.stmt(p, x)
}

// forInit matches the for-loop init clause; pattern Dots matches any.
func (c *ctx) forInit(p, x cast.Stmt) bool {
	if d, ok := p.(*cast.Dots); ok {
		if x != nil {
			c.pairNode(d, x)
		}
		return true
	}
	return c.stmt(p, x)
}

// optExpr matches optional expressions (for-clauses); pattern Dots matches
// anything including absent.
func (c *ctx) optExpr(p, x cast.Expr) bool {
	if p == nil {
		return x == nil
	}
	if d, ok := p.(*cast.Dots); ok {
		if x != nil {
			c.pairNode(d, x)
		}
		return true
	}
	if x == nil {
		return false
	}
	return c.expr(p, x)
}

// varDecl matches declarations.
func (c *ctx) varDecl(p, x *cast.VarDecl) bool {
	if p == nil || x == nil {
		return p == x
	}
	if !c.typ(p.Type, x.Type) {
		return false
	}
	if len(p.Items) != len(x.Items) {
		return false
	}
	for i := range p.Items {
		pd, xd := p.Items[i], x.Items[i]
		if pd.Stars != xd.Stars || pd.Ref != xd.Ref {
			return false
		}
		nf, _ := xd.Name.Span()
		if !c.name(pd.Name, nf, xd.Name.Name) {
			return false
		}
		if len(pd.Dims) != len(xd.Dims) {
			return false
		}
		for j := range pd.Dims {
			if (pd.Dims[j] == nil) != (xd.Dims[j] == nil) {
				return false
			}
			if pd.Dims[j] != nil && !c.expr(pd.Dims[j], xd.Dims[j]) {
				return false
			}
		}
		if (pd.Init == nil) != (xd.Init == nil) {
			return false
		}
		if pd.Init != nil && !c.expr(pd.Init, xd.Init) {
			return false
		}
	}
	c.pairNode(p, x)
	return true
}

// pragma matches a pragma pattern against a concrete pragma.
func (c *ctx) pragma(p *cast.PragmaPattern, x *cast.Pragma) bool {
	words := x.Word
	if len(words) < len(p.Words) {
		return false
	}
	for i, w := range p.Words {
		if words[i] != w {
			return false
		}
	}
	rest := strings.Join(words[len(p.Words):], " ")
	if p.InfoMeta != "" {
		cf, _ := x.Span()
		b := Binding{
			Kind: cast.MetaPragmaInfoKind, Text: rest, Norm: rest,
			First: cf, Last: cf, File: c.m.Code.Name,
		}
		if !c.bindValue(p.InfoMeta, b) {
			return false
		}
		return true
	}
	if p.TailDots {
		return true
	}
	return rest == ""
}

// stmtSeq matches a pattern statement sequence against a code statement
// slice. When exact is true the pattern must consume the entire slice;
// otherwise trailing code statements may remain (sliding-window matching).
// Returns the number of code statements consumed.
func (c *ctx) stmtSeq(pats []cast.Stmt, items []cast.Stmt, exact bool) (bool, int) {
	if len(pats) == 0 {
		if exact && len(items) != 0 {
			return false, 0
		}
		return true, 0
	}
	p0 := pats[0]
	switch pt := p0.(type) {
	case *cast.Dots:
		// Dots absorb 0..len(items) statements, honoring `when` constraints.
		for k := 0; k <= len(items); k++ {
			if k > 0 && !c.dotsAllows(pt, items[k-1]) {
				return false, 0
			}
			na, nc := c.save()
			c.recordStmtGap(pt, items, k)
			if ok, n := c.stmtSeq(pats[1:], items[k:], exact); ok {
				return true, k + n
			}
			c.restore(na, nc)
		}
		return false, 0
	case *cast.MetaStmt:
		if d := c.metaDecl(pt.Name); d != nil && d.Kind == cast.MetaStmtListKind {
			// statement-list metavariable: greedy bind of a contiguous run
			for k := len(items); k >= 0; k-- {
				na, nc := c.save()
				if c.bindStmtRange(pt, items, k) {
					if ok, n := c.stmtSeq(pats[1:], items[k:], exact); ok {
						return true, k + n
					}
				}
				c.restore(na, nc)
			}
			return false, 0
		}
	case *cast.DisjStmt:
		// A disjunction with multi-statement branches participates in
		// sequence matching.
		for _, br := range pt.Branches {
			na, nc := c.save()
			if ok, n := c.stmtSeq(br, items, false); ok {
				if ok2, n2 := c.stmtSeq(pats[1:], items[n:], exact); ok2 {
					return true, n + n2
				}
			}
			c.restore(na, nc)
		}
		return false, 0
	}
	if len(items) == 0 {
		return false, 0
	}
	na, nc := c.save()
	if !c.stmt(p0, items[0]) {
		c.restore(na, nc)
		return false, 0
	}
	ok, n := c.stmtSeq(pats[1:], items[1:], exact)
	if !ok {
		c.restore(na, nc)
		return false, 0
	}
	return true, n + 1
}

// dotsAllows checks the dots' `when` constraints against a skipped
// statement: no `when != e` expression may occur anywhere in its subtree
// (cast.Exprs walks nested compound bodies, so content hidden inside a
// skipped if/while/block is checked too), and under `when == e` the
// statement must itself be one of the permitted expression forms. The
// parser guarantees `when any` never carries other constraints, so it
// cannot silently mask them here.
func (c *ctx) dotsAllows(d *cast.Dots, skipped cast.Stmt) bool {
	if d.WhenAny {
		return true
	}
	for _, forbidden := range d.WhenNot {
		for _, sub := range cast.Exprs(skipped) {
			probe := &ctx{m: c.m, env: c.env.Clone()}
			if probe.expr(forbidden, sub) {
				return false
			}
		}
	}
	if len(d.WhenOnly) > 0 {
		es, ok := skipped.(*cast.ExprStmt)
		if !ok {
			return false
		}
		for _, only := range d.WhenOnly {
			probe := &ctx{m: c.m, env: c.env.Clone()}
			if probe.expr(only, es.X) {
				return true
			}
		}
		return false
	}
	return true
}

func (c *ctx) recordStmtGap(p cast.Node, items []cast.Stmt, k int) {
	pf, pl := p.Span()
	if k == 0 {
		anchor := -1
		if len(items) > 0 {
			f, _ := items[0].Span()
			anchor = f
		}
		c.corr = append(c.corr, Pair{PF: pf, PL: pl, CF: anchor, CL: anchor - 1})
		return
	}
	f, _ := items[0].Span()
	_, l := items[k-1].Span()
	c.corr = append(c.corr, Pair{PF: pf, PL: pl, CF: f, CL: l})
}

func (c *ctx) bindStmtRange(pt *cast.MetaStmt, items []cast.Stmt, k int) bool {
	pf, pl := pt.Span()
	if k == 0 {
		if !c.bindValue(pt.Name, NewValueBinding(cast.MetaStmtListKind, "")) {
			return false
		}
		c.corr = append(c.corr, Pair{PF: pf, PL: pl, CF: -1, CL: -2})
		return true
	}
	f, _ := items[0].Span()
	_, l := items[k-1].Span()
	if !c.bind(pt.Name, cast.MetaStmtListKind, f, l) {
		return false
	}
	c.corr = append(c.corr, Pair{PF: pf, PL: pl, CF: f, CL: l})
	return true
}
