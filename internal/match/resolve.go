package match

import "sort"

// Resolver answers "which code tokens correspond to pattern token i" for one
// match, using the recorded node-level pairs plus positional gap alignment.
// The transformer uses it to delete exactly the code tokens behind minus
// pattern tokens and to anchor plus-line insertions.
type Resolver struct {
	pairs []Pair
	// children[i] lists indices of pairs directly contained in pairs[i].
	children [][]int
	// roots are top-level pairs.
	roots []int
}

// NewResolver builds the containment tree over the match's pairs.
func NewResolver(m *Match) *Resolver {
	ps := make([]Pair, len(m.Corr))
	copy(ps, m.Corr)
	// Pre-order sort: by start ascending, then wider spans first, so a
	// linear scan with a stack of open pairs reconstructs the nesting.
	sort.SliceStable(ps, func(i, j int) bool {
		if ps[i].PF != ps[j].PF {
			return ps[i].PF < ps[j].PF
		}
		return ps[i].PL > ps[j].PL
	})
	r := &Resolver{pairs: ps, children: make([][]int, len(ps))}
	// Build tree by scanning outermost-first with a stack of open pairs.
	var stack []int
	for i := range ps {
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			if contains(ps[top], ps[i]) {
				break
			}
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			r.roots = append(r.roots, i)
		} else {
			top := stack[len(stack)-1]
			r.children[top] = append(r.children[top], i)
		}
		stack = append(stack, i)
	}
	for i := range r.children {
		sort.SliceStable(r.children[i], func(a, b int) bool {
			return ps[r.children[i][a]].PF < ps[r.children[i][b]].PF
		})
	}
	return r
}

// contains reports whether outer strictly contains inner in pattern space
// (equal spans count as containing to keep duplicates nested).
func contains(outer, inner Pair) bool {
	return outer.PF <= inner.PF && inner.PL <= outer.PL &&
		!(outer.PF == inner.PF && outer.PL == inner.PL)
}

// Ranges returns every code token range that corresponds to pattern token t.
// Multiple ranges occur when a conjunction matched several occurrences of a
// subexpression.
func (r *Resolver) Ranges(t int) [][2]int {
	var out [][2]int
	seen := map[[2]int]bool{}
	for _, root := range r.roots {
		if r.pairs[root].PF <= t && t <= r.pairs[root].PL {
			for _, rng := range r.resolveIn(root, t) {
				if !seen[rng] {
					seen[rng] = true
					out = append(out, rng)
				}
			}
		}
	}
	return out
}

// resolveIn maps pattern token t within pair pi to code ranges.
func (r *Resolver) resolveIn(pi int, t int) [][2]int {
	p := r.pairs[pi]
	// Descend into every child containing t (duplicated pattern spans from
	// conjunction occurrences all contribute).
	var out [][2]int
	descended := false
	for _, ci := range r.children[pi] {
		cp := r.pairs[ci]
		if cp.PF <= t && t <= cp.PL {
			descended = true
			out = append(out, r.resolveIn(ci, t)...)
		}
	}
	if descended {
		return out
	}
	if p.CL < p.CF {
		return nil // empty code range (dots over nothing)
	}
	// t sits in a gap of this pair: align pattern gap tokens to code gap
	// tokens positionally.
	pGaps, cGaps := r.gaps(pi)
	for gi := range pGaps {
		pg := pGaps[gi]
		if t < pg[0] || t > pg[1] {
			continue
		}
		if gi >= len(cGaps) {
			// No code tokens correspond to this pattern gap: tokens of an
			// untaken disjunction branch, or separators whose statement is
			// fully covered by sibling pairs. Nothing to edit.
			return nil
		}
		cg := cGaps[gi]
		pLen := pg[1] - pg[0] + 1
		cLen := cg[1] - cg[0] + 1
		if pLen == cLen {
			off := t - pg[0]
			return [][2]int{{cg[0] + off, cg[0] + off}}
		}
		// counts differ (isomorphism absorbed tokens): map the whole gap
		if cLen <= 0 {
			return nil
		}
		return [][2]int{cg}
	}
	// No gap found (e.g. leaf pair): whole range.
	return [][2]int{{p.CF, p.CL}}
}

// gaps computes the pattern-token and code-token gap segments of pair pi:
// the tokens inside the pair not covered by any child pair.
func (r *Resolver) gaps(pi int) (pGaps, cGaps [][2]int) {
	p := r.pairs[pi]
	// Merge child spans (pattern side and code side separately).
	type span struct{ f, l int }
	var pc, cc []span
	for _, ci := range r.children[pi] {
		cp := r.pairs[ci]
		pc = append(pc, span{cp.PF, cp.PL})
		if cp.CL >= cp.CF {
			cc = append(cc, span{cp.CF, cp.CL})
		}
	}
	merge := func(spans []span, lo, hi int) [][2]int {
		sort.Slice(spans, func(i, j int) bool { return spans[i].f < spans[j].f })
		var out [][2]int
		cur := lo
		for _, s := range spans {
			if s.f > cur {
				out = append(out, [2]int{cur, s.f - 1})
			}
			if s.l+1 > cur {
				cur = s.l + 1
			}
		}
		if cur <= hi {
			out = append(out, [2]int{cur, hi})
		}
		return out
	}
	return merge(pc, p.PF, p.PL), merge(cc, p.CF, p.CL)
}

// AnchorAfter resolves the code token after which an insertion anchored at
// pattern token t should be placed: the last code token corresponding to t,
// or, when t resolves to nothing, the nearest preceding resolvable token.
func (r *Resolver) AnchorAfter(t int) (int, bool) {
	for i := t; i >= 0; i-- {
		rngs := r.Ranges(i)
		best := -1
		for _, rng := range rngs {
			if rng[1] >= best {
				best = rng[1]
			}
		}
		if best >= 0 {
			return best, true
		}
		// empty dots ranges: fall through to earlier tokens
	}
	return 0, false
}

// AnchorBefore resolves the code token before which an insertion anchored at
// pattern token t should be placed.
func (r *Resolver) AnchorBefore(t, patTokens int) (int, bool) {
	for i := t; i < patTokens; i++ {
		rngs := r.Ranges(i)
		best := -1
		for _, rng := range rngs {
			if best < 0 || rng[0] < best {
				best = rng[0]
			}
		}
		if best >= 0 {
			return best, true
		}
	}
	return 0, false
}
