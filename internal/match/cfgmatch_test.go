package match

import (
	"testing"

	"repro/internal/cast"
	"repro/internal/cfg"
	"repro/internal/cparse"
	"repro/internal/smpl"
)

// withCFG turns a sequence-matching Matcher into a CFG path matcher, the
// way the engine does (modulo the engine's per-file graph cache).
func withCFG(m *Matcher) *Matcher {
	m.CFGs = func(fd *cast.FuncDef) *cfg.Graph { return cfg.Build(fd) }
	return m
}

// Anchors on two different if/else arms are unreachable for the sequence
// matcher (they live in sibling statement lists) but are connected through
// the join node on the CFG.
func TestCFGCrossBranchMatch(t *testing.T) {
	patch := `@r@
expression E;
@@
prepare(E);
...
commit(E);
`
	src := `void f(int x, int v){
	if (x) {
		prepare(v);
		log_then();
	} else {
		log_else();
	}
	commit(v);
}
`
	m, _ := compile(t, patch, src)
	if n := len(m.FindAll()); n != 0 {
		t.Fatalf("sequence matcher found %d matches across branch arms, want 0", n)
	}
	ms := withCFG(m).FindAll()
	if len(ms) != 1 {
		t.Fatalf("CFG matches=%d want 1", len(ms))
	}
	if got := ms[0].Env["E"].Norm; got != "v" {
		t.Errorf("E bound to %q want v", got)
	}
}

// Anchors in both arms of the same if: two distinct path matches.
func TestCFGBothArmsMatch(t *testing.T) {
	patch := `@r@
identifier fn;
@@
fn();
...
done();
`
	src := `void f(int x){
	if (x) { left(); } else { right(); }
	done();
}
`
	m, _ := compile(t, patch, src)
	ms := withCFG(m).FindAll()
	names := map[string]bool{}
	for _, mt := range ms {
		names[mt.Env["fn"].Norm] = true
	}
	if !names["left"] || !names["right"] {
		t.Fatalf("want matches anchored in both arms, got %v", names)
	}
}

// A pattern whose second anchor precedes the first in source order matches
// through the loop back-edge.
func TestCFGLoopBackEdgeMatch(t *testing.T) {
	patch := `@r@
@@
step_b();
...
step_a();
`
	src := `void f(int n){
	for (int i = 0; i < n; i++) {
		step_a();
		step_b();
	}
}
`
	m, _ := compile(t, patch, src)
	if n := len(m.FindAll()); n != 0 {
		t.Fatalf("sequence matcher found %d back-edge matches, want 0", n)
	}
	if n := len(withCFG(m).FindAll()); n != 1 {
		t.Fatalf("CFG back-edge matches=%d want 1", n)
	}
}

// `when != e` must veto the back-edge path when the forbidden call sits on
// it — here the loop body's own statement between b and a (via the header).
func TestCFGBackEdgeWhenNot(t *testing.T) {
	patch := `@r@
@@
step_b();
... when != reset()
step_a();
`
	src := `void f(int n){
	for (int i = 0; i < n; i++) {
		step_a();
		step_b();
		reset();
	}
}
`
	m, _ := compile(t, patch, src)
	if n := len(withCFG(m).FindAll()); n != 0 {
		t.Fatalf("matches=%d want 0 (reset() is on every b->a path)", n)
	}
}

// A forbidden expression in a skipped if/loop *header* must veto the path:
// unlike body content, the header sits on every path through the node.
func TestCFGWhenNotInBranchHeader(t *testing.T) {
	patch := `@r@
@@
lock();
... when != touch()
unlock();
`
	src := `void f(void){
	lock();
	if (touch()) { harmless(); }
	unlock();
}
`
	m, _ := compile(t, patch, src)
	if n := len(withCFG(m).FindAll()); n != 0 {
		t.Fatalf("matches=%d want 0 (touch() is in the traversed if header)", n)
	}
}

// Regression for the nested-constraint probe: forbidden content inside a
// skipped compound statement (if body, bare block, loop body) is caught by
// both engines — the sequence matcher walks the skipped subtree, and the
// CFG engine meets the nested statement as its own path node.
func TestDotsWhenNotNestedCompound(t *testing.T) {
	patch := `@r@
@@
lock();
... when != touch()
unlock();
`
	cases := []struct {
		name, src string
		want      int
	}{
		{"direct", "void f(void){ lock(); touch(); unlock(); }", 0},
		{"nested-if", "void f(int x){ lock(); if (x) { touch(); } unlock(); }", 0},
		{"nested-block", "void f(void){ lock(); { touch(); } unlock(); }", 0},
		{"nested-while", "void f(int x){ lock(); while (x) { touch(); } unlock(); }", 0},
		{"clean", "void f(void){ lock(); work(); unlock(); }", 1},
	}
	for _, tc := range cases {
		for _, engine := range []string{"seq", "cfg"} {
			m, _ := compile(t, patch, tc.src)
			if engine == "cfg" {
				withCFG(m)
			}
			got := len(m.FindAll())
			// The CFG engine legitimately finds the branch-avoiding path in
			// the nested-if case: the then-arm is not on the matched path.
			want := tc.want
			if engine == "cfg" && (tc.name == "nested-if" || tc.name == "nested-while") {
				want = 1
			}
			if got != want {
				t.Errorf("%s/%s: matches=%d want %d", engine, tc.name, got, want)
			}
		}
	}
}

// `when == e`: the gap may only traverse statements matching e.
func TestCFGWhenOnly(t *testing.T) {
	patch := `@r@
expression E;
@@
start();
... when == log(E)
stop();
`
	okSrc := `void f(void){
	start();
	log(1);
	log(2);
	stop();
}
`
	badSrc := `void f(void){
	start();
	log(1);
	other();
	stop();
}
`
	m, _ := compile(t, patch, okSrc)
	if n := len(withCFG(m).FindAll()); n != 1 {
		t.Fatalf("when== clean gap: matches=%d want 1", n)
	}
	m, _ = compile(t, patch, badSrc)
	if n := len(withCFG(m).FindAll()); n != 0 {
		t.Fatalf("when== polluted gap: matches=%d want 0", n)
	}
	// sequence matcher agrees on straight-line code
	m, _ = compile(t, patch, okSrc)
	if n := len(m.FindAll()); n != 1 {
		t.Fatalf("seq when== clean gap: matches=%d want 1", n)
	}
	m, _ = compile(t, patch, badSrc)
	if n := len(m.FindAll()); n != 0 {
		t.Fatalf("seq when== polluted gap: matches=%d want 0", n)
	}
}

// Default quantification is existential: one clean path suffices. `when
// strict` / `when forall` require every path from the first anchor to
// reach the second through allowed nodes.
func TestCFGWhenStrictForall(t *testing.T) {
	src := `void f(int x){
	begin();
	if (x) { poison(); }
	end();
}
`
	for _, q := range []string{"strict", "forall"} {
		patch := "@r@\n@@\nbegin();\n... when " + q + " when != poison()\nend();\n"
		m, _ := compile(t, patch, src)
		if n := len(withCFG(m).FindAll()); n != 0 {
			t.Fatalf("when %s: matches=%d want 0 (some path hits poison())", q, n)
		}
	}
	// without the quantifier, the else path is a valid witness
	m, _ := compile(t, "@r@\n@@\nbegin();\n... when != poison()\nend();\n", src)
	if n := len(withCFG(m).FindAll()); n != 1 {
		t.Fatalf("exists (default): matches=%d want 1", n)
	}
	// `when exists` spells the default explicitly
	m, _ = compile(t, "@r@\n@@\nbegin();\n... when exists when != poison()\nend();\n", src)
	if n := len(withCFG(m).FindAll()); n != 1 {
		t.Fatalf("when exists: matches=%d want 1", n)
	}
	// strict on a clean diamond passes
	clean := `void f(int x){
	begin();
	if (x) { fine(); }
	end();
}
`
	m, _ = compile(t, "@r@\n@@\nbegin();\n... when strict when != poison()\nend();\n", clean)
	if n := len(withCFG(m).FindAll()); n != 1 {
		t.Fatalf("when strict clean: matches=%d want 1", n)
	}
	// strict also demands every path reaches the anchor: an arm that
	// returns first fails the obligation.
	escape := `int f(int x){
	begin();
	if (x) { return 1; }
	end();
	return 0;
}
`
	m, _ = compile(t, "@r@\n@@\nbegin();\n... when strict\nend();\n", escape)
	if n := len(withCFG(m).FindAll()); n != 0 {
		t.Fatalf("when strict early-return: matches=%d want 0", n)
	}
	m, _ = compile(t, "@r@\n@@\nbegin();\n...\nend();\n", escape)
	if n := len(withCFG(m).FindAll()); n != 1 {
		t.Fatalf("exists early-return: matches=%d want 1", n)
	}
}

// Patterns the path engine cannot express fall back to the sequence
// matcher rather than silently missing matches.
func TestCFGEligibility(t *testing.T) {
	parse := func(body string, metas []*smpl.MetaDecl) *smpl.Pattern {
		t.Helper()
		stmts, _, err := cparse.ParseStmts(body, cparse.Options{Meta: smpl.NewMetaTable(metas)})
		if err != nil {
			t.Fatalf("parse %q: %v", body, err)
		}
		return &smpl.Pattern{Kind: smpl.StmtSeqPattern, Stmts: stmts}
	}
	slMeta := []*smpl.MetaDecl{{Kind: cast.MetaStmtListKind, Name: "SL"}}
	if CFGEligible(parse("a();\n...\nb();", nil), nil) != true {
		t.Error("plain dots pattern should be eligible")
	}
	if CFGEligible(parse("a();\nb();", nil), nil) != false {
		t.Error("dots-free pattern needs no path engine")
	}
	mt := smpl.NewMetaTable(slMeta)
	if CFGEligible(parse("a();\n...\nSL", slMeta), mt) != false {
		t.Error("statement-list metavariables must fall back to the sequence matcher")
	}
	// A statement-list metavariable still matches (via the fallback) when a
	// CFG provider is installed.
	m, _ := compile(t, "@r@\nstatement list SL;\n@@\nfirst();\n...\nlast();\nSL\n", `void f(void){
	first();
	mid();
	last();
	tail1();
	tail2();
}
`)
	ms := withCFG(m).FindAll()
	if len(ms) != 1 {
		t.Fatalf("fallback matches=%d want 1", len(ms))
	}
	if got := ms[0].Env["SL"].Norm; got != "tail1 ( ) ; tail2 ( ) ;" {
		t.Errorf("SL bound to %q", got)
	}
}

// The gap record of a cross-branch skip must not cover tokens of the arm
// the path never takes: skipped branch headers contribute nothing, skipped
// simple statements contribute their own spans.
func TestCFGGapRecordSkipsUntakenArm(t *testing.T) {
	patch := `@r@
@@
prepare();
...
commit();
`
	src := `void f(int x){
	prepare();
	if (x) { taken(); } else { untaken(); }
	commit();
}
`
	m, _ := compile(t, patch, src)
	ms := withCFG(m).FindAll()
	if len(ms) != 1 {
		t.Fatalf("matches=%d want 1", len(ms))
	}
	f := m.Code
	var takenTok, untakenTok int
	for i, tok := range f.Toks.Tokens {
		switch tok.Text {
		case "taken":
			takenTok = i
		case "untaken":
			untakenTok = i
		}
	}
	coversTaken, coversUntaken := false, false
	for _, pr := range ms[0].Corr {
		if pr.CL < pr.CF {
			continue
		}
		if pr.CF <= takenTok && takenTok <= pr.CL {
			coversTaken = true
		}
		if pr.CF <= untakenTok && untakenTok <= pr.CL {
			coversUntaken = true
		}
	}
	if !coversTaken {
		t.Error("gap record should cover the traversed then-arm statement")
	}
	if coversUntaken {
		t.Error("gap record must not cover the untaken else-arm statement")
	}
}
