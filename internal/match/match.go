// Package match implements SmPL pattern matching against C/C++ syntax trees.
// A match binds metavariables to code fragments and records a correspondence
// between pattern tokens and code tokens; the correspondence is what lets the
// transformer delete exactly the code tokens that '-' pattern tokens matched
// and anchor '+' insertions at the right code positions.
package match

import (
	"strings"

	"repro/internal/cast"
	"repro/internal/cfg"
	"repro/internal/ctoken"
	"repro/internal/smpl"
)

// Binding is the value of one metavariable.
type Binding struct {
	Kind cast.MetaKind
	// Text is the exact source text of the bound fragment (or the
	// synthesized value for script/fresh bindings).
	Text string
	// Norm is the whitespace-normalized text used for consistency checks.
	Norm string
	// First/Last are the code token range; -1/-2 when synthesized.
	First, Last int
	// TokIdx is the anchor token for position bindings.
	TokIdx int
	// File is the source file name the binding came from.
	File string
}

// Synthesized reports whether the binding has no code token range.
func (b Binding) Synthesized() bool { return b.First < 0 }

// NewValueBinding makes a synthesized binding (script outputs, fresh ids).
func NewValueBinding(kind cast.MetaKind, text string) Binding {
	return Binding{Kind: kind, Text: text, Norm: text, First: -1, Last: -2}
}

// Env maps metavariable names (local to a rule) to bindings.
type Env map[string]Binding

// Clone copies the environment.
func (e Env) Clone() Env {
	out := make(Env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// Pair records that pattern tokens [PF,PL] matched code tokens [CF,CL].
// An empty code range (CL<CF) is legal: dots that consumed nothing.
type Pair struct{ PF, PL, CF, CL int }

// Match is one successful pattern application.
type Match struct {
	Env   Env
	Corr  []Pair
	First int // first code token covered
	Last  int // last code token covered
}

// Matcher runs one rule's pattern over one file.
type Matcher struct {
	Pat   *smpl.Pattern
	Metas *smpl.MetaTable
	Code  *cast.File
	// Inherited holds pre-bound metavariables (local names).
	Inherited Env
	// MaxMatches caps the result list (0 = unlimited).
	MaxMatches int
	// CFGs, when non-nil, provides per-function control-flow graphs and
	// enables the path-sensitive dots engine (cfgmatch.go) for eligible
	// statement patterns. The engine caches graphs behind this hook so one
	// build serves every rule, environment, and match on the file. Nil
	// falls back to the syntactic sequence matcher.
	CFGs func(*cast.FuncDef) *cfg.Graph
}

// ctx is the per-attempt mutable state with undo support.
type ctx struct {
	m    *Matcher
	env  Env
	adds []string // keys added to env, for rollback
	corr []Pair
}

func (c *ctx) save() (int, int) { return len(c.adds), len(c.corr) }

func (c *ctx) restore(na, nc int) {
	for i := len(c.adds) - 1; i >= na; i-- {
		delete(c.env, c.adds[i])
	}
	c.adds = c.adds[:na]
	c.corr = c.corr[:nc]
}

func (c *ctx) pair(p cast.Node, first, last int) {
	pf, pl := p.Span()
	c.corr = append(c.corr, Pair{PF: pf, PL: pl, CF: first, CL: last})
}

func (c *ctx) pairNode(p, code cast.Node) {
	cf, cl := code.Span()
	c.pair(p, cf, cl)
}

// norm produces the canonical text of a code token range.
func norm(f *ctoken.File, first, last int) string {
	if last < first {
		return ""
	}
	var sb strings.Builder
	for i := first; i <= last && i < len(f.Tokens); i++ {
		if i > first {
			sb.WriteByte(' ')
		}
		sb.WriteString(f.Tokens[i].Text)
	}
	return sb.String()
}

// bind records name := code range with consistency and constraint checks.
func (c *ctx) bind(name string, kind cast.MetaKind, first, last int) bool {
	n := norm(c.m.Code.Toks, first, last)
	return c.bindValue(name, Binding{
		Kind: kind, Text: c.m.Code.Toks.Slice(first, last), Norm: n,
		First: first, Last: last, File: c.m.Code.Name,
	})
}

func (c *ctx) bindValue(name string, b Binding) bool {
	if prev, ok := c.env[name]; ok {
		return prev.Norm == b.Norm
	}
	if inh, ok := c.m.Inherited[name]; ok {
		if inh.Kind == cast.MetaPosKind {
			if b.Kind == cast.MetaPosKind && (inh.File != b.File || inh.TokIdx != b.TokIdx) {
				return false
			}
		} else if inh.Norm != b.Norm {
			return false
		}
	}
	if !c.checkConstraints(name, b) {
		return false
	}
	c.env[name] = b
	c.adds = append(c.adds, name)
	return true
}

// checkConstraints enforces regex and value-set restrictions from the
// metavariable declaration.
func (c *ctx) checkConstraints(name string, b Binding) bool {
	d, ok := c.m.Metas.Decl(name)
	if !ok {
		return true
	}
	if d.Regex != nil && !d.Regex.MatchString(b.Norm) {
		return false
	}
	if len(d.Values) > 0 {
		for _, v := range d.Values {
			if b.Norm == v {
				return true
			}
		}
		return false
	}
	return true
}

// bindPositions records position metavariables attached with @p.
func (c *ctx) bindPositions(names []string, tokIdx int) bool {
	for _, p := range names {
		tok := c.m.Code.Toks.Tokens[tokIdx]
		b := Binding{
			Kind: cast.MetaPosKind, TokIdx: tokIdx, First: tokIdx, Last: tokIdx,
			File: c.m.Code.Name,
			Text: c.m.Code.Name + ":" + tok.Pos.String(),
			Norm: c.m.Code.Name + ":" + tok.Pos.String(),
		}
		if inh, ok := c.m.Inherited[p]; ok && inh.Kind == cast.MetaPosKind {
			if inh.File != b.File || inh.TokIdx != b.TokIdx {
				return false
			}
		}
		if !c.bindValue(p, b) {
			return false
		}
	}
	return true
}

// metaDecl looks up the declaration behind an identifier used in the
// pattern; plain names return nil.
func (c *ctx) metaDecl(name string) *smpl.MetaDecl {
	d, ok := c.m.Metas.Decl(name)
	if !ok {
		return nil
	}
	return d
}

// finish converts ctx state into a Match.
func (c *ctx) finish() Match {
	first, last := -1, -1
	for _, p := range c.corr {
		if p.CL < p.CF {
			continue
		}
		if first < 0 || p.CF < first {
			first = p.CF
		}
		if p.CL > last {
			last = p.CL
		}
	}
	env := c.env.Clone()
	corr := make([]Pair, len(c.corr))
	copy(corr, c.corr)
	return Match{Env: env, Corr: corr, First: first, Last: last}
}

func (m *Matcher) newCtx() *ctx {
	return &ctx{m: m, env: Env{}}
}

// ExprOccurs reports whether the pattern expression matches any
// subexpression of root, with inherited bindings enforced. It is the probe
// the engine's CTL verification uses for `when != e` node predicates.
func (m *Matcher) ExprOccurs(pe cast.Expr, root cast.Node) bool {
	for _, sub := range cast.Exprs(root) {
		c := m.newCtx()
		if c.expr(pe, sub) {
			return true
		}
	}
	return false
}

// FindAll returns every match of the pattern in the file.
func (m *Matcher) FindAll() []Match {
	var out []Match
	add := func(mt Match) bool {
		out = append(out, mt)
		return m.MaxMatches > 0 && len(out) >= m.MaxMatches
	}
	switch m.Pat.Kind {
	case smpl.ExprPattern:
		for _, e := range cast.Exprs(m.Code) {
			c := m.newCtx()
			if c.expr(m.Pat.Expr, e) {
				if add(c.finish()) {
					return out
				}
			}
		}
	case smpl.StmtSeqPattern:
		if m.CFGs != nil && CFGEligible(m.Pat, m.Metas) {
			m.findCFG(add)
			return dedupMatches(out)
		}
		for _, seq := range stmtContexts(m.Code) {
			for start := 0; start <= len(seq); start++ {
				c := m.newCtx()
				if ok, _ := c.stmtSeq(m.Pat.Stmts, seq[min(start, len(seq)):], false); ok {
					if add(c.finish()) {
						return out
					}
				}
				if start >= len(seq) {
					break
				}
				// Patterns that begin with dots are anchored once.
				if len(m.Pat.Stmts) > 0 {
					if _, isDots := m.Pat.Stmts[0].(*cast.Dots); isDots && start == 0 {
						break
					}
				}
			}
		}
	case smpl.DeclPattern:
		out = append(out, m.findDecls()...)
		if m.MaxMatches > 0 && len(out) > m.MaxMatches {
			out = out[:m.MaxMatches]
		}
	}
	return dedupMatches(out)
}

// stmtContexts enumerates every statement list in the file: compound bodies
// plus singleton lists for bare (unbraced) bodies.
func stmtContexts(f *cast.File) [][]cast.Stmt {
	var out [][]cast.Stmt
	cast.Walk(f, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.Compound:
			out = append(out, x.Items)
		case *cast.If:
			out = append(out, bareBody(x.Then)...)
			out = append(out, bareBody(x.Else)...)
		case *cast.For:
			out = append(out, bareBody(x.Body)...)
		case *cast.RangeFor:
			out = append(out, bareBody(x.Body)...)
		case *cast.While:
			out = append(out, bareBody(x.Body)...)
		case *cast.DoWhile:
			out = append(out, bareBody(x.Body)...)
		case *cast.Label:
			out = append(out, bareBody(x.Stmt)...)
		}
		return true
	})
	return out
}

func bareBody(s cast.Stmt) [][]cast.Stmt {
	if s == nil {
		return nil
	}
	if _, ok := s.(*cast.Compound); ok {
		return nil // already walked
	}
	return [][]cast.Stmt{{s}}
}

// dedupMatches removes duplicate matches covering the identical code span
// with identical environments.
func dedupMatches(ms []Match) []Match {
	seen := map[string]bool{}
	var out []Match
	for _, m := range ms {
		key := matchKey(m)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, m)
	}
	return out
}

func matchKey(m Match) string {
	var sb strings.Builder
	sb.WriteString(itoa(m.First))
	sb.WriteByte(':')
	sb.WriteString(itoa(m.Last))
	// environments sorted deterministically
	keys := make([]string, 0, len(m.Env))
	for k := range m.Env {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		sb.WriteByte(';')
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(m.Env[k].Norm)
	}
	return sb.String()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		p--
		buf[p] = '-'
	}
	return string(buf[p:])
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
