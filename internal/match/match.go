// Package match implements SmPL pattern matching against C/C++ syntax trees.
// A match binds metavariables to code fragments and records a correspondence
// between pattern tokens and code tokens; the correspondence is what lets the
// transformer delete exactly the code tokens that '-' pattern tokens matched
// and anchor '+' insertions at the right code positions.
package match

import (
	"strings"

	"repro/internal/cast"
	"repro/internal/cfg"
	"repro/internal/ctoken"
	"repro/internal/smpl"
)

// Binding is the value of one metavariable.
type Binding struct {
	Kind cast.MetaKind
	// Text is the exact source text of the bound fragment (or the
	// synthesized value for script/fresh bindings).
	Text string
	// Norm is the whitespace-normalized text used for consistency checks.
	Norm string
	// First/Last are the code token range; -1/-2 when synthesized.
	First, Last int
	// TokIdx is the anchor token for position bindings.
	TokIdx int
	// File is the source file name the binding came from.
	File string
}

// Synthesized reports whether the binding has no code token range.
func (b Binding) Synthesized() bool { return b.First < 0 }

// NewValueBinding makes a synthesized binding (script outputs, fresh ids).
func NewValueBinding(kind cast.MetaKind, text string) Binding {
	return Binding{Kind: kind, Text: text, Norm: text, First: -1, Last: -2}
}

// Env maps metavariable names (local to a rule) to bindings.
type Env map[string]Binding

// Clone copies the environment.
func (e Env) Clone() Env {
	out := make(Env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// Pair records that pattern tokens [PF,PL] matched code tokens [CF,CL].
// An empty code range (CL<CF) is legal: dots that consumed nothing.
type Pair struct{ PF, PL, CF, CL int }

// Match is one successful pattern application.
type Match struct {
	Env   Env
	Corr  []Pair
	First int // first code token covered
	Last  int // last code token covered
}

// Matcher runs one rule's pattern over one file.
type Matcher struct {
	Pat   *smpl.Pattern
	Metas *smpl.MetaTable
	Code  *cast.File
	// Inherited holds pre-bound metavariables (local names).
	Inherited Env
	// MaxMatches caps the result list (0 = unlimited).
	MaxMatches int
	// CFGs, when non-nil, provides per-function control-flow graphs and
	// enables the path-sensitive dots engine (cfgmatch.go) for eligible
	// statement patterns. The engine caches graphs behind this hook so one
	// build serves every rule, environment, and match on the file. Nil
	// falls back to the syntactic sequence matcher.
	CFGs func(*cast.FuncDef) *cfg.Graph
	// Window, when non-nil, restricts matching to candidate roots whose
	// token span [first,last] it admits. Candidate roots — expressions,
	// statement contexts, declarations, CFG functions — each occupy a
	// contiguous token range, so a partition of the token file into windows
	// (cast.Segmentation's function extents and residue) partitions the
	// match set: every match found without a window is found under exactly
	// one window of the partition, and vice versa.
	Window func(first, last int) bool
	// Cands, when non-nil, supplies the file's candidate enumerations,
	// computed once by PrecomputeCands. Windowed per-segment matchers share
	// one Cands so FindAll filters a ready list instead of re-walking the
	// whole AST per segment; it must have been computed from Code.
	Cands *Cands
}

// Cands caches the per-file candidate enumerations FindAll iterates: every
// expression, every statement context, and every function definition.
// Computing them costs a full AST walk, so segment-granular callers that run
// FindAll once per window build one Cands per file and share it (it is
// read-only and safe for concurrent matchers).
type Cands struct {
	exprs []cast.Expr
	stmts []stmtContext
	funcs []*cast.FuncDef
}

// PrecomputeCands enumerates f's candidates for Matcher.Cands.
func PrecomputeCands(f *cast.File) *Cands {
	return &Cands{exprs: cast.Exprs(f), stmts: stmtContexts(f), funcs: f.Funcs()}
}

// exprCands returns the expression candidates, enumerating on demand when no
// precomputed set was supplied.
func (m *Matcher) exprCands() []cast.Expr {
	if m.Cands != nil {
		return m.Cands.exprs
	}
	return cast.Exprs(m.Code)
}

// stmtCands returns the statement-context candidates.
func (m *Matcher) stmtCands() []stmtContext {
	if m.Cands != nil {
		return m.Cands.stmts
	}
	return stmtContexts(m.Code)
}

// funcCands returns the function-definition candidates.
func (m *Matcher) funcCands() []*cast.FuncDef {
	if m.Cands != nil {
		return m.Cands.funcs
	}
	return m.Code.Funcs()
}

// admits reports whether the window (if any) accepts the node's span.
func (m *Matcher) admits(n cast.Node) bool {
	if m.Window == nil {
		return true
	}
	first, last := n.Span()
	return m.Window(first, last)
}

// ctx is the per-attempt mutable state with undo support.
type ctx struct {
	m    *Matcher
	env  Env
	adds []string // keys added to env, for rollback
	corr []Pair
}

func (c *ctx) save() (int, int) { return len(c.adds), len(c.corr) }

func (c *ctx) restore(na, nc int) {
	for i := len(c.adds) - 1; i >= na; i-- {
		delete(c.env, c.adds[i])
	}
	c.adds = c.adds[:na]
	c.corr = c.corr[:nc]
}

func (c *ctx) pair(p cast.Node, first, last int) {
	pf, pl := p.Span()
	c.corr = append(c.corr, Pair{PF: pf, PL: pl, CF: first, CL: last})
}

func (c *ctx) pairNode(p, code cast.Node) {
	cf, cl := code.Span()
	c.pair(p, cf, cl)
}

// norm produces the canonical text of a code token range.
func norm(f *ctoken.File, first, last int) string {
	if last < first {
		return ""
	}
	var sb strings.Builder
	for i := first; i <= last && i < len(f.Tokens); i++ {
		if i > first {
			sb.WriteByte(' ')
		}
		sb.WriteString(f.Tokens[i].Text)
	}
	return sb.String()
}

// bind records name := code range with consistency and constraint checks.
func (c *ctx) bind(name string, kind cast.MetaKind, first, last int) bool {
	n := norm(c.m.Code.Toks, first, last)
	return c.bindValue(name, Binding{
		Kind: kind, Text: c.m.Code.Toks.Slice(first, last), Norm: n,
		First: first, Last: last, File: c.m.Code.Name,
	})
}

func (c *ctx) bindValue(name string, b Binding) bool {
	if prev, ok := c.env[name]; ok {
		return prev.Norm == b.Norm
	}
	if inh, ok := c.m.Inherited[name]; ok {
		if inh.Kind == cast.MetaPosKind {
			if b.Kind == cast.MetaPosKind && (inh.File != b.File || inh.TokIdx != b.TokIdx) {
				return false
			}
		} else if inh.Norm != b.Norm {
			return false
		}
	}
	if !c.checkConstraints(name, b) {
		return false
	}
	c.env[name] = b
	c.adds = append(c.adds, name)
	return true
}

// checkConstraints enforces regex and value-set restrictions from the
// metavariable declaration.
func (c *ctx) checkConstraints(name string, b Binding) bool {
	d, ok := c.m.Metas.Decl(name)
	if !ok {
		return true
	}
	if d.Regex != nil && !d.Regex.MatchString(b.Norm) {
		return false
	}
	if len(d.Values) > 0 {
		for _, v := range d.Values {
			if b.Norm == v {
				return true
			}
		}
		return false
	}
	return true
}

// bindPositions records position metavariables attached with @p.
func (c *ctx) bindPositions(names []string, tokIdx int) bool {
	for _, p := range names {
		tok := c.m.Code.Toks.Tokens[tokIdx]
		b := Binding{
			Kind: cast.MetaPosKind, TokIdx: tokIdx, First: tokIdx, Last: tokIdx,
			File: c.m.Code.Name,
			Text: c.m.Code.Name + ":" + tok.Pos.String(),
			Norm: c.m.Code.Name + ":" + tok.Pos.String(),
		}
		if inh, ok := c.m.Inherited[p]; ok && inh.Kind == cast.MetaPosKind {
			if inh.File != b.File || inh.TokIdx != b.TokIdx {
				return false
			}
		}
		if !c.bindValue(p, b) {
			return false
		}
	}
	return true
}

// metaDecl looks up the declaration behind an identifier used in the
// pattern; plain names return nil.
func (c *ctx) metaDecl(name string) *smpl.MetaDecl {
	d, ok := c.m.Metas.Decl(name)
	if !ok {
		return nil
	}
	return d
}

// finish converts ctx state into a Match.
func (c *ctx) finish() Match {
	first, last := -1, -1
	for _, p := range c.corr {
		if p.CL < p.CF {
			continue
		}
		if first < 0 || p.CF < first {
			first = p.CF
		}
		if p.CL > last {
			last = p.CL
		}
	}
	env := c.env.Clone()
	corr := make([]Pair, len(c.corr))
	copy(corr, c.corr)
	return Match{Env: env, Corr: corr, First: first, Last: last}
}

func (m *Matcher) newCtx() *ctx {
	return &ctx{m: m, env: Env{}}
}

// ExprOccurs reports whether the pattern expression matches any
// subexpression of root, with inherited bindings enforced. It is the probe
// the engine's CTL verification uses for `when != e` node predicates.
func (m *Matcher) ExprOccurs(pe cast.Expr, root cast.Node) bool {
	for _, sub := range cast.Exprs(root) {
		c := m.newCtx()
		if c.expr(pe, sub) {
			return true
		}
	}
	return false
}

// FindAll returns every match of the pattern in the file.
func (m *Matcher) FindAll() []Match {
	var out []Match
	add := func(mt Match) bool {
		out = append(out, mt)
		return m.MaxMatches > 0 && len(out) >= m.MaxMatches
	}
	switch m.Pat.Kind {
	case smpl.ExprPattern:
		for _, e := range m.exprCands() {
			if !m.admits(e) {
				continue
			}
			c := m.newCtx()
			if c.expr(m.Pat.Expr, e) {
				if add(c.finish()) {
					return out
				}
			}
		}
	case smpl.StmtSeqPattern:
		if m.CFGs != nil && CFGEligible(m.Pat, m.Metas) {
			m.findCFG(add)
			return dedupMatches(out)
		}
		for _, sc := range m.stmtCands() {
			if m.Window != nil && !m.Window(sc.first, sc.last) {
				continue
			}
			seq := sc.items
			for start := 0; start <= len(seq); start++ {
				c := m.newCtx()
				if ok, _ := c.stmtSeq(m.Pat.Stmts, seq[min(start, len(seq)):], false); ok {
					if add(c.finish()) {
						return out
					}
				}
				if start >= len(seq) {
					break
				}
				// Patterns that begin with dots are anchored once.
				if len(m.Pat.Stmts) > 0 {
					if _, isDots := m.Pat.Stmts[0].(*cast.Dots); isDots && start == 0 {
						break
					}
				}
			}
		}
	case smpl.DeclPattern:
		out = append(out, m.findDecls()...)
		if m.MaxMatches > 0 && len(out) > m.MaxMatches {
			out = out[:m.MaxMatches]
		}
	}
	return dedupMatches(out)
}

// stmtContext is one statement list together with the token span of the
// node that owns it, so windowed matching can admit or reject it whole.
type stmtContext struct {
	first, last int
	items       []cast.Stmt
}

// stmtContexts enumerates every statement list in the file: compound bodies
// plus singleton lists for bare (unbraced) bodies.
func stmtContexts(f *cast.File) []stmtContext {
	var out []stmtContext
	bare := func(s cast.Stmt) {
		if s == nil {
			return
		}
		if _, ok := s.(*cast.Compound); ok {
			return // already walked
		}
		first, last := s.Span()
		out = append(out, stmtContext{first: first, last: last, items: []cast.Stmt{s}})
	}
	cast.Walk(f, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.Compound:
			first, last := x.Span()
			out = append(out, stmtContext{first: first, last: last, items: x.Items})
		case *cast.If:
			bare(x.Then)
			bare(x.Else)
		case *cast.For:
			bare(x.Body)
		case *cast.RangeFor:
			bare(x.Body)
		case *cast.While:
			bare(x.Body)
		case *cast.DoWhile:
			bare(x.Body)
		case *cast.Label:
			bare(x.Stmt)
		}
		return true
	})
	return out
}

// dedupMatches removes duplicate matches covering the identical code span
// with identical environments.
func dedupMatches(ms []Match) []Match {
	seen := map[string]bool{}
	var out []Match
	for _, m := range ms {
		key := matchKey(m)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, m)
	}
	return out
}

func matchKey(m Match) string {
	var sb strings.Builder
	sb.WriteString(itoa(m.First))
	sb.WriteByte(':')
	sb.WriteString(itoa(m.Last))
	// environments sorted deterministically
	keys := make([]string, 0, len(m.Env))
	for k := range m.Env {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		sb.WriteByte(';')
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(m.Env[k].Norm)
	}
	return sb.String()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		p--
		buf[p] = '-'
	}
	return string(buf[p:])
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
