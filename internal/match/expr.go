package match

import (
	"repro/internal/cast"
	"repro/internal/ctoken"
)

// stripParens removes redundant parentheses (Coccinelle's paren isomorphism).
func stripParens(e cast.Expr) cast.Expr {
	for {
		p, ok := e.(*cast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// expr matches a pattern expression against a code expression.
func (c *ctx) expr(p, x cast.Expr) bool {
	if p == nil || x == nil {
		return p == nil && x == nil
	}
	x = stripParens(x)
	switch pt := p.(type) {
	case *cast.ParenExpr:
		return c.expr(pt.X, x)
	case *cast.Dots:
		// wildcard expression
		c.pairNode(pt, x)
		return true
	case *cast.DisjExpr:
		for _, br := range pt.Branches {
			na, nc := c.save()
			if c.expr(br, x) {
				c.pairNode(pt, x)
				return true
			}
			c.restore(na, nc)
		}
		return false
	case *cast.ConjExpr:
		for _, op := range pt.Operands {
			if !c.expr(op, x) {
				return false
			}
		}
		c.pairNode(pt, x)
		return true
	case *cast.MetaExpr:
		return c.metaExpr(pt, x)
	case *cast.Ident:
		// A declared name parsed as a plain identifier still acts as a
		// metavariable.
		if d := c.metaDecl(pt.Name); d != nil {
			me := &cast.MetaExpr{Name: pt.Name, Kind: d.Kind}
			pf, pl := pt.Span()
			ms := cast.NewSpan(pf, pl)
			_ = ms
			return c.metaExprAt(me, x, pf, pl)
		}
		id, ok := x.(*cast.Ident)
		if !ok || id.Name != pt.Name {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.BasicLit:
		lit, ok := x.(*cast.BasicLit)
		if !ok || lit.Value != pt.Value {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.UnaryExpr:
		u, ok := x.(*cast.UnaryExpr)
		if !ok || u.Op != pt.Op || u.Postfix != pt.Postfix {
			return false
		}
		if !c.expr(pt.X, u.X) {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.BinaryExpr:
		b, ok := x.(*cast.BinaryExpr)
		if !ok || b.Op != pt.Op {
			return false
		}
		if !c.expr(pt.X, b.X) || !c.expr(pt.Y, b.Y) {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.CondExpr:
		ce, ok := x.(*cast.CondExpr)
		if !ok {
			return false
		}
		if !c.expr(pt.Cond, ce.Cond) || !c.expr(pt.Then, ce.Then) || !c.expr(pt.Else, ce.Else) {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.CallExpr:
		call, ok := x.(*cast.CallExpr)
		if !ok {
			return false
		}
		if !c.expr(pt.Fun, call.Fun) {
			return false
		}
		if !c.exprList(pt.Args, call.Args) {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.IndexExpr:
		idx, ok := x.(*cast.IndexExpr)
		if !ok {
			return false
		}
		if !c.expr(pt.X, idx.X) {
			return false
		}
		if len(pt.Indices) != len(idx.Indices) {
			return false
		}
		for i := range pt.Indices {
			if !c.expr(pt.Indices[i], idx.Indices[i]) {
				return false
			}
		}
		c.pairNode(pt, x)
		return true
	case *cast.MemberExpr:
		mem, ok := x.(*cast.MemberExpr)
		if !ok || mem.Op != pt.Op {
			return false
		}
		if !c.expr(pt.X, mem.X) {
			return false
		}
		if d := c.metaDecl(pt.Name); d != nil && (d.Kind == cast.MetaIdentKind || d.Kind == cast.MetaFreshIdentKind) {
			if !c.bind(pt.Name, d.Kind, mem.NameT, mem.NameT) {
				return false
			}
		} else if mem.Name != pt.Name {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.CastExpr:
		ce, ok := x.(*cast.CastExpr)
		if !ok {
			return false
		}
		if !c.typ(pt.Type, ce.Type) || !c.expr(pt.X, ce.X) {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.SizeofExpr:
		se, ok := x.(*cast.SizeofExpr)
		if !ok {
			return false
		}
		if (pt.Type == nil) != (se.Type == nil) {
			return false
		}
		if pt.Type != nil {
			if !c.typ(pt.Type, se.Type) {
				return false
			}
		} else if !c.expr(pt.X, se.X) {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.CommaExpr:
		cm, ok := x.(*cast.CommaExpr)
		if !ok || len(cm.List) != len(pt.List) {
			return false
		}
		for i := range pt.List {
			if !c.expr(pt.List[i], cm.List[i]) {
				return false
			}
		}
		c.pairNode(pt, x)
		return true
	case *cast.InitList:
		il, ok := x.(*cast.InitList)
		if !ok {
			return false
		}
		if !c.exprList(pt.Elems, il.Elems) {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.KernelLaunch:
		kl, ok := x.(*cast.KernelLaunch)
		if !ok {
			return false
		}
		if !c.expr(pt.Fun, kl.Fun) {
			return false
		}
		if !c.exprList(pt.Config, kl.Config) || !c.exprList(pt.Args, kl.Args) {
			return false
		}
		c.pairNode(pt, x)
		return true
	case *cast.LambdaExpr:
		lm, ok := x.(*cast.LambdaExpr)
		if !ok {
			return false
		}
		if pt.Body != nil && lm.Body != nil {
			ok, _ := c.stmtSeq(pt.Body.Items, lm.Body.Items, false)
			if !ok {
				return false
			}
		}
		c.pairNode(pt, x)
		return true
	case *cast.Type:
		t, ok := x.(*cast.Type)
		if !ok {
			return false
		}
		return c.typ(pt, t)
	}
	return false
}

// metaExpr matches a metavariable in expression position.
func (c *ctx) metaExpr(pt *cast.MetaExpr, x cast.Expr) bool {
	pf, pl := pt.Span()
	return c.metaExprAt(pt, x, pf, pl)
}

func (c *ctx) metaExprAt(pt *cast.MetaExpr, x cast.Expr, pf, pl int) bool {
	cf, cl := x.Span()
	switch pt.Kind {
	case cast.MetaIdentKind, cast.MetaFreshIdentKind, cast.MetaFuncKind:
		id, ok := x.(*cast.Ident)
		if !ok {
			return false
		}
		_ = id
	case cast.MetaConstKind:
		lit, ok := x.(*cast.BasicLit)
		if !ok {
			return false
		}
		switch lit.Kind {
		case ctoken.IntLit, ctoken.FloatLit, ctoken.CharLit, ctoken.StringLit:
		default:
			return false
		}
	case cast.MetaSymbolKind:
		// `symbol a;` declares a plain identifier named like the
		// metavariable itself.
		id, ok := x.(*cast.Ident)
		if !ok || id.Name != pt.Name {
			return false
		}
		c.corr = append(c.corr, Pair{PF: pf, PL: pl, CF: cf, CL: cl})
		return c.bindPositions(pt.Positions, cf)
	case cast.MetaTypeKind:
		t, ok := x.(*cast.Type)
		if !ok {
			return false
		}
		_ = t
	case cast.MetaExprKind, cast.MetaExprListKind:
		// any expression
	case cast.MetaStmtKind, cast.MetaStmtListKind, cast.MetaParamListKind,
		cast.MetaPosKind, cast.MetaPragmaInfoKind:
		return false
	}
	if !c.bind(pt.Name, pt.Kind, cf, cl) {
		return false
	}
	c.corr = append(c.corr, Pair{PF: pf, PL: pl, CF: cf, CL: cl})
	return c.bindPositions(pt.Positions, cf)
}

// exprList matches an argument/element list with dots and expression-list
// metavariables.
func (c *ctx) exprList(pats, xs []cast.Expr) bool {
	if len(pats) == 0 {
		return len(xs) == 0
	}
	p0 := pats[0]
	switch pt := p0.(type) {
	case *cast.Dots:
		// try consuming 0..len(xs) arguments
		for k := 0; k <= len(xs); k++ {
			na, nc := c.save()
			c.recordGapPair(pt, xs, k)
			if c.exprList(pats[1:], xs[k:]) {
				return true
			}
			c.restore(na, nc)
		}
		return false
	case *cast.MetaExpr:
		if pt.Kind == cast.MetaExprListKind {
			for k := len(xs); k >= 0; k-- {
				na, nc := c.save()
				if c.bindRange(pt, xs, k) && c.exprList(pats[1:], xs[k:]) {
					return true
				}
				c.restore(na, nc)
			}
			return false
		}
	}
	if len(xs) == 0 {
		return false
	}
	na, nc := c.save()
	if !c.expr(p0, xs[0]) {
		c.restore(na, nc)
		return false
	}
	if !c.exprList(pats[1:], xs[1:]) {
		c.restore(na, nc)
		return false
	}
	return true
}

// recordGapPair records the code range consumed by dots over k elements.
func (c *ctx) recordGapPair(p cast.Node, xs []cast.Expr, k int) {
	pf, pl := p.Span()
	if k == 0 {
		// empty: anchor just before the next element (or nothing)
		anchor := -1
		if len(xs) > 0 {
			f, _ := xs[0].Span()
			anchor = f
		}
		c.corr = append(c.corr, Pair{PF: pf, PL: pl, CF: anchor, CL: anchor - 1})
		return
	}
	f, _ := xs[0].Span()
	_, l := xs[k-1].Span()
	c.corr = append(c.corr, Pair{PF: pf, PL: pl, CF: f, CL: l})
}

// bindRange binds an expression-list metavariable to the first k elements.
func (c *ctx) bindRange(pt *cast.MetaExpr, xs []cast.Expr, k int) bool {
	pf, pl := pt.Span()
	if k == 0 {
		if !c.bindValue(pt.Name, NewValueBinding(pt.Kind, "")) {
			return false
		}
		c.corr = append(c.corr, Pair{PF: pf, PL: pl, CF: -1, CL: -2})
		return true
	}
	f, _ := xs[0].Span()
	_, l := xs[k-1].Span()
	if !c.bind(pt.Name, pt.Kind, f, l) {
		return false
	}
	c.corr = append(c.corr, Pair{PF: pf, PL: pl, CF: f, CL: l})
	return true
}

// typ matches a pattern type against a code type.
func (c *ctx) typ(p, x *cast.Type) bool {
	if p == nil || x == nil {
		return p == x
	}
	// Type metavariable?
	if d := c.metaDecl(p.Base); d != nil && d.Kind == cast.MetaTypeKind {
		cf, cl := x.Span()
		if !c.bind(p.Base, cast.MetaTypeKind, cf, cl) {
			return false
		}
		// pointer/ref structure outside the metavariable must agree
		if p.Stars != 0 && p.Stars != x.Stars {
			return false
		}
		c.pairNode(p, x)
		return true
	}
	if p.Base != x.Base || p.Stars != x.Stars || p.Ref != x.Ref {
		return false
	}
	if len(p.Quals) != len(x.Quals) {
		return false
	}
	for i := range p.Quals {
		if p.Quals[i] != x.Quals[i] {
			return false
		}
	}
	c.pairNode(p, x)
	return true
}

// name matches a declared identifier (pattern *cast.Ident) that may be a
// metavariable.
func (c *ctx) name(p *cast.Ident, codeTok int, codeName string) bool {
	if d := c.metaDecl(p.Name); d != nil {
		switch d.Kind {
		case cast.MetaIdentKind, cast.MetaFuncKind, cast.MetaFreshIdentKind, cast.MetaExprKind:
			if !c.bind(p.Name, d.Kind, codeTok, codeTok) {
				return false
			}
			pf, pl := p.Span()
			c.corr = append(c.corr, Pair{PF: pf, PL: pl, CF: codeTok, CL: codeTok})
			return true
		case cast.MetaSymbolKind:
			if codeName != p.Name {
				return false
			}
			pf, pl := p.Span()
			c.corr = append(c.corr, Pair{PF: pf, PL: pl, CF: codeTok, CL: codeTok})
			return true
		default:
			return false
		}
	}
	if codeName != p.Name {
		return false
	}
	pf, pl := p.Span()
	c.corr = append(c.corr, Pair{PF: pf, PL: pl, CF: codeTok, CL: codeTok})
	return true
}
