package match

import (
	"strings"
	"testing"

	"repro/internal/cast"
)

func TestMatchMemberFieldMetavar(t *testing.T) {
	// identifier metavariable in member-name position (the AoS->SoA shape)
	m, _ := compile(t, `@r@
identifier fld;
expression idx;
symbol P;
@@
P[idx].fld
`, "void f(int i){ P[i].px = P[i+1].mass; Q[i].px = 0; }")
	ms := m.FindAll()
	if len(ms) != 2 {
		t.Fatalf("matches=%d want 2 (P only)", len(ms))
	}
	fields := []string{ms[0].Env["fld"].Norm, ms[1].Env["fld"].Norm}
	got := strings.Join(fields, ",")
	if got != "px,mass" && got != "mass,px" {
		t.Errorf("fields=%v", fields)
	}
}

func TestMatchMetaStmtBindsBracedBody(t *testing.T) {
	// a statement metavariable as a loop body must keep the braces in its
	// binding text (the Kokkos lambda requirement)
	m, _ := compile(t, `@r@
statement fb;
expression n;
identifier c = {i,j};
@@
for (...;c<n;...) fb
`, "void f(int n){ for (int i=0;i<n;++i) { s += i; } }")
	ms := m.FindAll()
	if len(ms) != 1 {
		t.Fatalf("matches=%d", len(ms))
	}
	fb := ms[0].Env["fb"].Text
	if !strings.HasPrefix(fb, "{") || !strings.HasSuffix(fb, "}") {
		t.Errorf("braces lost: %q", fb)
	}
}

func TestMatchDeclPatternAtStmtLevel(t *testing.T) {
	// a declaration pattern matches declarations inside function bodies too
	m, _ := compile(t, `@r@
type c_t;
identifier i;
@@
c_t i;
`, "float g1;\nvoid f(void){ double local; int k; }")
	ms := m.FindAll()
	if len(ms) != 3 {
		t.Fatalf("matches=%d want 3 (one global + two locals)", len(ms))
	}
}

func TestMatchBodyBraceIso(t *testing.T) {
	// `if (e) f();` pattern matches both braced and unbraced code bodies
	m, _ := compile(t, `@r@
expression e;
@@
if (e) probe();
`, "void f(int x){ if (x) probe(); if (x+1) { probe(); } if (x) other(); }")
	ms := m.FindAll()
	if len(ms) != 2 {
		t.Fatalf("matches=%d want 2", len(ms))
	}
}

func TestMatchEmptyCompoundPattern(t *testing.T) {
	m, _ := compile(t, `@r@
type T;
identifier f;
parameter list PL;
@@
T f(PL) { }
`, "void empty(void) { }\nvoid full(void) { x(); }")
	ms := m.FindAll()
	if len(ms) != 1 || ms[0].Env["f"].Norm != "empty" {
		t.Fatalf("matches=%v", ms)
	}
}

func TestMatchStmtListEmptyBind(t *testing.T) {
	m, _ := compile(t, `@r@
type T;
identifier f;
parameter list PL;
statement list SL;
@@
T f(PL) { SL }
`, "void empty(void) { }")
	ms := m.FindAll()
	if len(ms) != 1 {
		t.Fatalf("matches=%d", len(ms))
	}
	if ms[0].Env["SL"].Text != "" {
		t.Errorf("empty body SL=%q", ms[0].Env["SL"].Text)
	}
}

func TestMatchInheritedPositionConstrains(t *testing.T) {
	src := "void f(void){ target(1); target(2); }"
	m, _ := compile(t, `@r@
identifier fn;
position p;
@@
fn@p(...)
`, src)
	all := m.FindAll()
	var want Match
	found := false
	for _, mt := range all {
		if mt.Env["fn"].Norm == "target" && strings.Contains(m.Code.Toks.Slice(mt.First, mt.Last), "2") {
			want = mt
			found = true
		}
	}
	if !found {
		t.Fatal("second call not matched")
	}
	// Re-match with inherited position: only the second call survives.
	m2, _ := compile(t, `@r@
identifier fn;
position p;
@@
fn@p(...)
`, src)
	m2.Inherited = Env{"p": want.Env["p"], "fn": want.Env["fn"]}
	ms := m2.FindAll()
	if len(ms) != 1 {
		t.Fatalf("matches=%d want 1 under inherited position", len(ms))
	}
	if !strings.Contains(m2.Code.Toks.Slice(ms[0].First, ms[0].Last), "2") {
		t.Errorf("wrong call matched: %q", m2.Code.Toks.Slice(ms[0].First, ms[0].Last))
	}
}

func TestMatchTypePointerStructure(t *testing.T) {
	// `T *x` with meta type T: stars outside the metavariable must agree
	m, _ := compile(t, `@r@
type T;
identifier x;
@@
T *x;
`, "void f(void){ double *p; int q; }")
	ms := m.FindAll()
	if len(ms) != 1 {
		t.Fatalf("matches=%d want 1 (pointer decls only)", len(ms))
	}
	if ms[0].Env["T"].Norm != "double" {
		t.Errorf("T=%q", ms[0].Env["T"].Norm)
	}
}

func TestBindingKinds(t *testing.T) {
	b := NewValueBinding(cast.MetaIdentKind, "x")
	if !b.Synthesized() {
		t.Error("value binding should be synthesized")
	}
}
