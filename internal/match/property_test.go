package match

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/codegen"
	"repro/internal/cparse"
	"repro/internal/smpl"
)

// Property: FindAll is deterministic — two runs over the same input yield
// identical match sets.
func TestQuickFindAllDeterministic(t *testing.T) {
	patchText := "@r@\ntype T;\nidentifier f;\nparameter list PL;\nstatement list SL;\n@@\nT f (PL) { SL }\n"
	p, err := smpl.ParsePatch("d.cocci", patchText)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(funcs uint8, seed int64) bool {
		src := codegen.Mixed(codegen.Config{Funcs: int(funcs%5) + 1, StmtsPerFunc: 2, Seed: seed})
		f, err := cparse.Parse("q.c", src, cparse.Options{CPlusPlus: true, CUDA: true})
		if err != nil {
			return false
		}
		mk := func() string {
			m := &Matcher{Pat: p.Rules[0].Pattern, Metas: smpl.NewMetaTable(p.Rules[0].Metas), Code: f}
			sig := ""
			for _, mt := range m.FindAll() {
				sig += fmt.Sprintf("%d-%d;%s|", mt.First, mt.Last, mt.Env["f"].Norm)
			}
			return sig
		}
		return mk() == mk()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// straightLine generates a flat function body — calls, assignments and
// declarations only, no branches or loops — the domain on which the CFG
// path engine and the syntactic sequence matcher must agree exactly.
func straightLine(seed int64, funcs int) string {
	r := rand.New(rand.NewSource(seed))
	var sb []byte
	app := func(s string) { sb = append(sb, s...) }
	for f := 0; f < funcs; f++ {
		app(fmt.Sprintf("void straight_%d(int n, double *a) {\n", f))
		stmts := r.Intn(8) + 2
		for s := 0; s < stmts; s++ {
			switch r.Intn(5) {
			case 0:
				app(fmt.Sprintf("\tlock(a[%d]);\n", r.Intn(4)))
			case 1:
				app(fmt.Sprintf("\twork(n, %d);\n", r.Intn(9)))
			case 2:
				app(fmt.Sprintf("\tdouble t%d = a[%d] * n;\n", s, r.Intn(4)))
			case 3:
				app(fmt.Sprintf("\tunlock(a[%d]);\n", r.Intn(4)))
			case 4:
				app(fmt.Sprintf("\ttouch();\n"))
			}
		}
		app("}\n\n")
	}
	return string(sb)
}

// Property: on straight-line code the CFG path engine reproduces the
// sequence matcher exactly — same matches, same order, same environments,
// same correspondence records — for anchored, leading-dots, constrained,
// and multi-gap patterns.
func TestQuickSeqCFGParity(t *testing.T) {
	patches := []string{
		"@r@\nexpression E;\n@@\nlock(E);\n... when != touch()\nunlock(E);\n",
		"@r@\nexpression E;\n@@\n... when != work(E, 3)\nunlock(E);\n",
		"@r@\nexpression E;\nexpression F;\n@@\nlock(E);\n...\nwork(n, F);\n...\nunlock(E);\n",
		"@r@\n@@\nlock(a[1]);\n...\n",
		"@r@\nexpression E;\n@@\nstart();\n... when == touch()\nunlock(E);\n",
	}
	for pi, patchText := range patches {
		p, err := smpl.ParsePatch("p.cocci", patchText)
		if err != nil {
			t.Fatal(err)
		}
		prop := func(seed int64, funcs uint8) bool {
			src := straightLine(seed, int(funcs%3)+1)
			f, err := cparse.Parse("q.c", src, cparse.Options{})
			if err != nil {
				return false
			}
			sig := func(useCFG bool) string {
				m := &Matcher{Pat: p.Rules[0].Pattern, Metas: smpl.NewMetaTable(p.Rules[0].Metas), Code: f}
				if useCFG {
					withCFG(m)
				}
				out := ""
				for _, mt := range m.FindAll() {
					out += fmt.Sprintf("[%d-%d", mt.First, mt.Last)
					for _, pr := range mt.Corr {
						if pr.CL < pr.CF {
							continue // empty gaps compare equal regardless of anchor
						}
						out += fmt.Sprintf(";%d:%d=%d:%d", pr.PF, pr.PL, pr.CF, pr.CL)
					}
					out += fmt.Sprintf("|%s]", mt.Env["E"].Norm)
				}
				return out
			}
			seq, cfgSig := sig(false), sig(true)
			if seq != cfgSig {
				t.Logf("patch %d seed %d:\nseq: %s\ncfg: %s\nsrc:\n%s", pi, seed, seq, cfgSig, src)
				return false
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("patch %d: %v", pi, err)
		}
	}
}

// Property: every match's environment is internally consistent — a
// metavariable bound twice in one pattern always reports a single Norm.
func TestQuickEnvConsistency(t *testing.T) {
	patchText := "@r@\nexpression e;\n@@\ne + e\n"
	p, err := smpl.ParsePatch("c.cocci", patchText)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(vals []uint8) bool {
		src := "void f(void){\n"
		for i, v := range vals {
			if i > 4 {
				break
			}
			src += fmt.Sprintf("\tx%d = a%d + a%d;\n\ty%d = a%d + b%d;\n", i, v%7, v%7, i, v%7, v%5)
		}
		src += "}\n"
		f, err := cparse.Parse("q.c", src, cparse.Options{})
		if err != nil {
			return false
		}
		m := &Matcher{Pat: p.Rules[0].Pattern, Metas: smpl.NewMetaTable(p.Rules[0].Metas), Code: f}
		for _, mt := range m.FindAll() {
			// e+e matched: both operand texts must equal the binding
			b := mt.Env["e"]
			sub := f.Toks.Slice(mt.First, mt.Last)
			if sub == "" || b.Norm == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: match spans never exceed file bounds and First <= Last.
func TestQuickSpanBounds(t *testing.T) {
	patchText := "@r@\nidentifier fn;\nexpression list el;\n@@\nfn(el)\n"
	p, err := smpl.ParsePatch("s.cocci", patchText)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		src := codegen.OpenMP(codegen.Config{Funcs: 2, StmtsPerFunc: 2, Seed: seed})
		f, err := cparse.Parse("q.c", src, cparse.Options{})
		if err != nil {
			return false
		}
		m := &Matcher{Pat: p.Rules[0].Pattern, Metas: smpl.NewMetaTable(p.Rules[0].Metas), Code: f}
		for _, mt := range m.FindAll() {
			if mt.First < 0 || mt.Last >= len(f.Toks.Tokens) || mt.First > mt.Last {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the resolver never returns ranges outside the match span.
func TestQuickResolverBounds(t *testing.T) {
	patchText := "@r@\ntype T;\nidentifier i,l;\nconstant k={4};\n@@\nfor (T i=0; i+k-1 < l ; i+=k) { ... }\n"
	p, err := smpl.ParsePatch("r.cocci", patchText)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		src := codegen.Unrolled(codegen.Config{Funcs: 2, StmtsPerFunc: 1, Seed: seed})
		f, err := cparse.Parse("q.c", src, cparse.Options{})
		if err != nil {
			return false
		}
		m := &Matcher{Pat: p.Rules[0].Pattern, Metas: smpl.NewMetaTable(p.Rules[0].Metas), Code: f}
		for _, mt := range m.FindAll() {
			res := NewResolver(&mt)
			for ti := range p.Rules[0].Pattern.Toks.Tokens {
				for _, rng := range res.Ranges(ti) {
					if rng[0] < mt.First || rng[1] > mt.Last {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
