package match

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/codegen"
	"repro/internal/cparse"
	"repro/internal/smpl"
)

// Property: FindAll is deterministic — two runs over the same input yield
// identical match sets.
func TestQuickFindAllDeterministic(t *testing.T) {
	patchText := "@r@\ntype T;\nidentifier f;\nparameter list PL;\nstatement list SL;\n@@\nT f (PL) { SL }\n"
	p, err := smpl.ParsePatch("d.cocci", patchText)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(funcs uint8, seed int64) bool {
		src := codegen.Mixed(codegen.Config{Funcs: int(funcs%5) + 1, StmtsPerFunc: 2, Seed: seed})
		f, err := cparse.Parse("q.c", src, cparse.Options{CPlusPlus: true, CUDA: true})
		if err != nil {
			return false
		}
		mk := func() string {
			m := &Matcher{Pat: p.Rules[0].Pattern, Metas: smpl.NewMetaTable(p.Rules[0].Metas), Code: f}
			sig := ""
			for _, mt := range m.FindAll() {
				sig += fmt.Sprintf("%d-%d;%s|", mt.First, mt.Last, mt.Env["f"].Norm)
			}
			return sig
		}
		return mk() == mk()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: every match's environment is internally consistent — a
// metavariable bound twice in one pattern always reports a single Norm.
func TestQuickEnvConsistency(t *testing.T) {
	patchText := "@r@\nexpression e;\n@@\ne + e\n"
	p, err := smpl.ParsePatch("c.cocci", patchText)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(vals []uint8) bool {
		src := "void f(void){\n"
		for i, v := range vals {
			if i > 4 {
				break
			}
			src += fmt.Sprintf("\tx%d = a%d + a%d;\n\ty%d = a%d + b%d;\n", i, v%7, v%7, i, v%7, v%5)
		}
		src += "}\n"
		f, err := cparse.Parse("q.c", src, cparse.Options{})
		if err != nil {
			return false
		}
		m := &Matcher{Pat: p.Rules[0].Pattern, Metas: smpl.NewMetaTable(p.Rules[0].Metas), Code: f}
		for _, mt := range m.FindAll() {
			// e+e matched: both operand texts must equal the binding
			b := mt.Env["e"]
			sub := f.Toks.Slice(mt.First, mt.Last)
			if sub == "" || b.Norm == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: match spans never exceed file bounds and First <= Last.
func TestQuickSpanBounds(t *testing.T) {
	patchText := "@r@\nidentifier fn;\nexpression list el;\n@@\nfn(el)\n"
	p, err := smpl.ParsePatch("s.cocci", patchText)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		src := codegen.OpenMP(codegen.Config{Funcs: 2, StmtsPerFunc: 2, Seed: seed})
		f, err := cparse.Parse("q.c", src, cparse.Options{})
		if err != nil {
			return false
		}
		m := &Matcher{Pat: p.Rules[0].Pattern, Metas: smpl.NewMetaTable(p.Rules[0].Metas), Code: f}
		for _, mt := range m.FindAll() {
			if mt.First < 0 || mt.Last >= len(f.Toks.Tokens) || mt.First > mt.Last {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the resolver never returns ranges outside the match span.
func TestQuickResolverBounds(t *testing.T) {
	patchText := "@r@\ntype T;\nidentifier i,l;\nconstant k={4};\n@@\nfor (T i=0; i+k-1 < l ; i+=k) { ... }\n"
	p, err := smpl.ParsePatch("r.cocci", patchText)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		src := codegen.Unrolled(codegen.Config{Funcs: 2, StmtsPerFunc: 1, Seed: seed})
		f, err := cparse.Parse("q.c", src, cparse.Options{})
		if err != nil {
			return false
		}
		m := &Matcher{Pat: p.Rules[0].Pattern, Metas: smpl.NewMetaTable(p.Rules[0].Metas), Code: f}
		for _, mt := range m.FindAll() {
			res := NewResolver(&mt)
			for ti := range p.Rules[0].Pattern.Toks.Tokens {
				for _, rng := range res.Ranges(ti) {
					if rng[0] < mt.First || rng[1] > mt.Last {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
