package match

import (
	"repro/internal/cast"
	"repro/internal/cfg"
	"repro/internal/ctl"
	"repro/internal/smpl"
)

// This file implements the path-sensitive dots engine: when a rule's
// top-level statement pattern contains `...`, matches are enumerated by
// walking the function's control-flow graph instead of scanning sibling
// statement lists. Anchors (the concrete pattern statements between dots)
// are matched against CFG nodes with the ordinary node matcher; each dots
// segment becomes a path search across if/else arms, switch cases, and
// loop back-edges, with the `when` constraint family checked on every
// traversed node. `when strict`/`when forall` segments are additionally
// verified with the CTL model checker (A[ok U anchor] over the graph), so
// the quantified semantics match Coccinelle's CTL-VW formulation.
//
// On straight-line code the engine enumerates exactly the matches of the
// syntactic sequence matcher, in the same order and with byte-identical
// gap records (TestQuickSeqCFGParity pins this); on branchy code it finds
// the cross-arm and back-edge matches the sequence matcher cannot.

// CFGEligible reports whether the pattern's top-level statement sequence
// can be matched path-sensitively: it must contain statement dots, and
// every other element must be an anchor the node matcher can compare
// against a single CFG node. Compound anchors ({ } blocks, which the CFG
// flattens away), statement-list metavariables (which bind contiguous
// sibling runs), and disjunctions with multi-statement branches fall back
// to the sequence matcher.
func CFGEligible(pat *smpl.Pattern, metas *smpl.MetaTable) bool {
	if pat == nil || pat.Kind != smpl.StmtSeqPattern {
		return false
	}
	hasDots := false
	for _, s := range pat.Stmts {
		switch st := s.(type) {
		case *cast.Dots:
			hasDots = true
		case *cast.Compound:
			return false
		case *cast.DisjStmt:
			for _, br := range st.Branches {
				if len(br) != 1 {
					return false
				}
			}
		case *cast.MetaStmt:
			if metas != nil {
				if d, ok := metas.Decl(st.Name); ok && d.Kind == cast.MetaStmtListKind {
					return false
				}
			}
		}
	}
	return hasDots
}

// pathCtx carries one function's graph through a path-matching attempt.
type pathCtx struct {
	c *ctx
	g *cfg.Graph
}

// nodeStmt returns the statement a content node carries (branch nodes
// carry their whole construct).
func nodeStmt(n *cfg.Node) (cast.Stmt, bool) {
	s, ok := n.AST.(cast.Stmt)
	return s, ok && s != nil
}

// content reports whether the node carries matchable program content.
// Entry/exit/join nodes (including label joins, whose statement is wired
// as its own node) are transparent: paths cross them freely, constraints
// never apply to them, and anchors never match them.
func content(n *cfg.Node) bool {
	return n.Kind == cfg.Stmt || n.Kind == cfg.Branch
}

// findCFG enumerates path-sensitive matches over every function in the
// file. Like the sequence matcher it commits to the first solution per
// start point — the shortest-path witness — so straight-line results stay
// identical between engines; distinct start points yield distinct matches.
func (m *Matcher) findCFG(add func(Match) bool) bool {
	elems := mergeDots(m.Pat.Stmts)
	if len(elems) == 0 {
		return false
	}
	_, leadingDots := elems[0].(*cast.Dots)
	for _, fd := range m.funcCands() {
		if !m.admits(fd) {
			continue
		}
		g := m.CFGs(fd)
		if g == nil {
			continue
		}
		if leadingDots {
			// Leading dots are anchored once, at function entry.
			c := m.newCtx()
			p := &pathCtx{c: c, g: g}
			if p.matchElems(elems, 0, p.contentSuccs(g.EntryID)) {
				if add(c.finish()) {
					return true
				}
			}
			continue
		}
		for _, n := range g.Nodes { // id order tracks source order
			if !content(n) {
				continue
			}
			ast, ok := nodeStmt(n)
			if !ok {
				continue
			}
			c := m.newCtx()
			p := &pathCtx{c: c, g: g}
			if c.stmt(elems[0], ast) && p.matchElems(elems, 1, p.frontier(n.ID)) {
				if add(c.finish()) {
					return true
				}
			}
		}
	}
	return false
}

// mergeDots collapses adjacent dots elements into one, unioning their
// constraints, so the recursion below can assume dots and anchors
// alternate.
func mergeDots(stmts []cast.Stmt) []cast.Stmt {
	var out []cast.Stmt
	for _, s := range stmts {
		d, isDots := s.(*cast.Dots)
		if !isDots || len(out) == 0 {
			out = append(out, s)
			continue
		}
		prev, prevDots := out[len(out)-1].(*cast.Dots)
		if !prevDots {
			out = append(out, s)
			continue
		}
		merged := *prev
		merged.WhenNot = append(append([]cast.Expr{}, prev.WhenNot...), d.WhenNot...)
		merged.WhenOnly = append(append([]cast.Expr{}, prev.WhenOnly...), d.WhenOnly...)
		merged.WhenAny = prev.WhenAny && d.WhenAny
		merged.WhenStrict = prev.WhenStrict || d.WhenStrict
		merged.WhenForall = prev.WhenForall || d.WhenForall
		merged.WhenExists = prev.WhenExists || d.WhenExists
		out[len(out)-1] = &merged
	}
	return out
}

// matchElems matches pattern elements i.. given the content nodes where
// the next element may begin. Returns true on the first full solution.
func (p *pathCtx) matchElems(elems []cast.Stmt, i int, entry []int) bool {
	if i >= len(elems) {
		return true
	}
	c := p.c
	if d, ok := elems[i].(*cast.Dots); ok {
		if i == len(elems)-1 {
			// Trailing dots consume nothing, mirroring the sequence
			// matcher: the path to function exit is unconstrained.
			c.pair(d, -1, -2)
			return p.matchElems(elems, i+1, nil)
		}
		next := elems[i+1]
		return p.matchGap(d, entry, func(cand int, skipped []int) bool {
			ast, ok := nodeStmt(p.g.Nodes[cand])
			if !ok {
				return false
			}
			na, nc := c.save()
			p.recordGap(d, skipped)
			if c.stmt(next, ast) && p.matchElems(elems, i+2, p.frontier(cand)) {
				return true
			}
			c.restore(na, nc)
			return false
		})
	}
	// No dots between the previous anchor and this one: it must match one
	// of the immediately following content nodes.
	for _, id := range entry {
		ast, ok := nodeStmt(p.g.Nodes[id])
		if !ok {
			continue
		}
		na, nc := c.save()
		if c.stmt(elems[i], ast) && p.matchElems(elems, i+1, p.frontier(id)) {
			return true
		}
		c.restore(na, nc)
	}
	return false
}

// matchGap explores the paths a dots segment may take from the entry
// nodes, in breadth-first (shortest-skip-first) order. Every discovered
// content node is offered to `try` as a candidate position for the next
// anchor, with the content nodes skipped along its discovery path; the
// search then continues through the node only if the dots' constraints
// allow traversing it. Under `when strict`/`when forall` a candidate is
// only offered when the CTL check proves every path from the gap's entry
// reaches it through allowed nodes.
func (p *pathCtx) matchGap(d *cast.Dots, entry []int, try func(cand int, skipped []int) bool) bool {
	type gapNode struct{ id, parent int }
	visited := make([]bool, len(p.g.Nodes))
	var order []gapNode
	push := func(id, parent int) {
		if !visited[id] {
			visited[id] = true
			order = append(order, gapNode{id, parent})
		}
	}
	for _, e := range entry {
		push(e, -1)
	}
	strict := d.WhenStrict || d.WhenForall
	for qi := 0; qi < len(order); qi++ {
		nd := order[qi]
		var skipped []int
		for pi := nd.parent; pi >= 0; pi = order[pi].parent {
			skipped = append(skipped, order[pi].id)
		}
		for l, r := 0, len(skipped)-1; l < r; l, r = l+1, r-1 {
			skipped[l], skipped[r] = skipped[r], skipped[l]
		}
		if !strict || p.allPathsReach(d, entry, nd.id) {
			if try(nd.id, skipped) {
				return true
			}
		}
		if p.nodeAllowed(d, p.g.Nodes[nd.id]) {
			for _, s := range p.contentSuccs(nd.id) {
				push(s, qi)
			}
		}
	}
	return false
}

// nodeAllowed checks the dots constraints against one traversed node: no
// `when != e` expression may occur in its probe fragments (for branch
// headers, the header only — arm content is its own node and is checked
// when the path enters it), and under `when == e` the node must be a
// permitted expression statement.
func (p *pathCtx) nodeAllowed(d *cast.Dots, n *cfg.Node) bool {
	if !content(n) || d.WhenAny {
		return true
	}
	roots := n.ProbeNodes()
	for _, forbidden := range d.WhenNot {
		for _, root := range roots {
			for _, sub := range cast.Exprs(root) {
				probe := &ctx{m: p.c.m, env: p.c.env.Clone()}
				if probe.expr(forbidden, sub) {
					return false
				}
			}
		}
	}
	if len(d.WhenOnly) > 0 {
		es, ok := n.AST.(*cast.ExprStmt)
		if !ok {
			return false
		}
		for _, only := range d.WhenOnly {
			probe := &ctx{m: p.c.m, env: p.c.env.Clone()}
			if probe.expr(only, es.X) {
				return true
			}
		}
		return false
	}
	return true
}

// allPathsReach decides the `when strict`/`when forall` obligation with
// the CTL model checker: A[allowed U cand] must hold at every gap entry —
// every path from where the dots begin reaches the candidate anchor, and
// until then traverses only nodes the constraints allow.
func (p *pathCtx) allPathsReach(d *cast.Dots, entry []int, cand int) bool {
	ok := ctl.Pred{Name: "allowed", Fn: func(n *cfg.Node) bool {
		return n.ID == cand || p.nodeAllowed(d, n)
	}}
	at := ctl.Pred{Name: "anchor", Fn: func(n *cfg.Node) bool { return n.ID == cand }}
	res := ctl.Check(p.g, ctl.AU{L: ok, R: at})
	for _, e := range entry {
		if !res.Holds(e) {
			return false
		}
	}
	return true
}

// recordGap records the correspondence between the dots pattern tokens and
// the skipped content nodes, as maximal contiguous token runs so that on
// straight-line code the record is exactly the sequence matcher's single
// gap pair. Skipped branch headers contribute nothing: their token span
// covers arms the path may never take, and a `- ...` deletion must not
// swallow untaken code.
func (p *pathCtx) recordGap(d *cast.Dots, skipped []int) {
	type rng struct{ f, l int }
	var runs []rng
	for _, id := range skipped {
		n := p.g.Nodes[id]
		if n.Kind != cfg.Stmt || n.AST == nil {
			continue
		}
		f, l := n.AST.Span()
		placed := false
		for i := range runs {
			if f >= runs[i].f && f <= runs[i].l+1 {
				if l > runs[i].l {
					runs[i].l = l
				}
				placed = true
				break
			}
			if l >= runs[i].f-1 && l <= runs[i].l {
				if f < runs[i].f {
					runs[i].f = f
				}
				placed = true
				break
			}
		}
		if !placed {
			runs = append(runs, rng{f, l})
		}
	}
	// merge runs that became adjacent after extension
	for merged := true; merged; {
		merged = false
		for i := 0; i < len(runs) && !merged; i++ {
			for j := i + 1; j < len(runs); j++ {
				if runs[j].f <= runs[i].l+1 && runs[i].f <= runs[j].l+1 {
					if runs[j].f < runs[i].f {
						runs[i].f = runs[j].f
					}
					if runs[j].l > runs[i].l {
						runs[i].l = runs[j].l
					}
					runs = append(runs[:j], runs[j+1:]...)
					merged = true
					break
				}
			}
		}
	}
	if len(runs) == 0 {
		p.c.pair(d, -1, -2) // empty gap: dots over nothing
		return
	}
	for _, r := range runs {
		p.c.pair(d, r.f, r.l)
	}
}

// contentSuccs returns the content nodes immediately after `id`, crossing
// transparent entry/exit/join nodes, in deterministic successor order.
func (p *pathCtx) contentSuccs(id int) []int {
	var out []int
	seen := make([]bool, len(p.g.Nodes))
	seen[id] = true
	var walk func(int)
	walk = func(nid int) {
		for _, s := range p.g.Nodes[nid].Succs {
			if seen[s] {
				continue
			}
			seen[s] = true
			if content(p.g.Nodes[s]) {
				out = append(out, s)
			} else {
				walk(s)
			}
		}
	}
	walk(id)
	return out
}

// frontier returns the content nodes where a path continues after the
// whole construct matched at node `id`: successors reached by crossing
// transparent nodes and nodes inside the anchor's own token span (the
// bodies of a matched if/loop, which the anchor matched syntactically).
func (p *pathCtx) frontier(id int) []int {
	n := p.g.Nodes[id]
	nf, nl := -1, -1
	if n.AST != nil {
		nf, nl = n.AST.Span()
	}
	var out []int
	seen := make([]bool, len(p.g.Nodes))
	seen[id] = true
	queue := []int{id}
	for qi := 0; qi < len(queue); qi++ {
		for _, s := range p.g.Nodes[queue[qi]].Succs {
			if seen[s] {
				continue
			}
			seen[s] = true
			sn := p.g.Nodes[s]
			if !content(sn) {
				queue = append(queue, s)
				continue
			}
			if f, l := sn.AST.Span(); nf >= 0 && f >= nf && l <= nl {
				queue = append(queue, s)
				continue
			}
			out = append(out, s)
		}
	}
	return out
}
