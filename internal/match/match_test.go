package match

import (
	"strings"
	"testing"

	"repro/internal/cast"
	"repro/internal/cparse"
	"repro/internal/smpl"
)

// compile builds a matcher for a one-rule patch against the given source.
func compile(t *testing.T, patch, src string) (*Matcher, *smpl.Rule) {
	t.Helper()
	p, err := smpl.ParsePatch("t.cocci", patch)
	if err != nil {
		t.Fatalf("ParsePatch: %v", err)
	}
	r := p.Rules[0]
	f, err := cparse.Parse("t.c", src, cparse.Options{CPlusPlus: true, Std: 23, CUDA: true})
	if err != nil {
		t.Fatalf("parse C: %v", err)
	}
	return &Matcher{
		Pat:   r.Pattern,
		Metas: smpl.NewMetaTable(r.Metas),
		Code:  f,
	}, r
}

func TestMatchExprPattern(t *testing.T) {
	m, _ := compile(t, `@r@
symbol a;
expression x,y,z;
@@
a[x][y][z]
`, `void f(double ***a, int i, int j, int k){ a[i][j+1][k*2] = 0; b[i][j][k] = 1; }`)
	ms := m.FindAll()
	if len(ms) != 1 {
		t.Fatalf("matches=%d want 1 (only array named a)", len(ms))
	}
	env := ms[0].Env
	if env["x"].Norm != "i" || env["y"].Norm != "j + 1" || env["z"].Norm != "k * 2" {
		t.Errorf("env: x=%q y=%q z=%q", env["x"].Norm, env["y"].Norm, env["z"].Norm)
	}
}

func TestMatchMetavarConsistency(t *testing.T) {
	m, _ := compile(t, `@r@
expression e;
@@
e + e
`, `void f(int a, int b){ x = a + a; y = a + b; }`)
	ms := m.FindAll()
	if len(ms) != 1 {
		t.Fatalf("matches=%d want 1 (a+a only)", len(ms))
	}
	if ms[0].Env["e"].Norm != "a" {
		t.Errorf("e=%q", ms[0].Env["e"].Norm)
	}
}

func TestMatchStmtPatternWithDots(t *testing.T) {
	m, _ := compile(t, `@r@
expression e;
@@
lock();
...
unlock();
`, `void f(int x){
	lock();
	work(x);
	more(x);
	unlock();
	other();
}`)
	ms := m.FindAll()
	if len(ms) != 1 {
		t.Fatalf("matches=%d want 1", len(ms))
	}
}

func TestMatchDotsWhenNot(t *testing.T) {
	src := `void f(int x){
	lock();
	work(x);
	unlock();
}
void g(int x){
	lock();
	unlock2();
	unlock();
}`
	patch := `@r@
@@
lock();
... when != unlock2()
unlock();
`
	m, _ := compile(t, patch, src)
	ms := m.FindAll()
	if len(ms) != 1 {
		t.Fatalf("matches=%d want 1 (g blocked by when)", len(ms))
	}
}

func TestMatchFunctionPattern(t *testing.T) {
	m, _ := compile(t, `@r@
type T;
identifier f =~ "kernel";
parameter list PL;
statement list SL;
@@
T f (PL) { SL }
`, `
int helper(int a) { return a; }
double kernel_axpy(int n, double *x) { double s = 0; return s; }
void my_kernel(void) { run(); }
`)
	ms := m.FindAll()
	if len(ms) != 2 {
		t.Fatalf("matches=%d want 2 (regex selects kernels)", len(ms))
	}
	names := []string{ms[0].Env["f"].Norm, ms[1].Env["f"].Norm}
	got := strings.Join(names, ",")
	if got != "kernel_axpy,my_kernel" {
		t.Errorf("names=%q", got)
	}
	if !strings.Contains(ms[0].Env["PL"].Text, "double *x") {
		t.Errorf("PL=%q", ms[0].Env["PL"].Text)
	}
	if !strings.Contains(ms[0].Env["SL"].Text, "double s = 0") {
		t.Errorf("SL=%q", ms[0].Env["SL"].Text)
	}
}

func TestMatchIdentifierValueSet(t *testing.T) {
	m, _ := compile(t, `@r@
identifier c = {i,j};
expression n;
statement fb;
@@
for (...;c<n;...) fb
`, `void f(int n){
	for (int i=0;i<n;++i) body(i);
	for (int q=0;q<n;++q) body(q);
}`)
	ms := m.FindAll()
	if len(ms) != 1 {
		t.Fatalf("matches=%d want 1 (only loop variable i allowed)", len(ms))
	}
	if ms[0].Env["c"].Norm != "i" {
		t.Errorf("c=%q", ms[0].Env["c"].Norm)
	}
}

func TestMatchConstantValueSet(t *testing.T) {
	m, _ := compile(t, `@r@
constant k={4};
expression e;
@@
e + k
`, `void f(int a){ x = a + 4; y = a + 8; }`)
	ms := m.FindAll()
	if len(ms) != 1 {
		t.Fatalf("matches=%d want 1", len(ms))
	}
	if ms[0].Env["k"].Norm != "4" {
		t.Errorf("k=%q", ms[0].Env["k"].Norm)
	}
}

func TestMatchEscapedDisjunction(t *testing.T) {
	m, _ := compile(t, `@r@
identifier elem;
constant k;
@@
\( elem == k \| k == elem \)
`, `void f(int v){ if (v == 3) {} if (5 == v) {} if (v == w) {} }`)
	ms := m.FindAll()
	if len(ms) != 2 {
		t.Fatalf("matches=%d want 2", len(ms))
	}
}

func TestMatchConjunctionContains(t *testing.T) {
	// A statement metavariable conjoined with an expression: statement must
	// contain the expression.
	m, _ := compile(t, `@r@
identifier i;
statement A;
@@
\( A \& i+0 \)
`, `void f(int i, double *s, double *q){
	s[i+0] = q[i+0];
	s[i+1] = q[i+1];
}`)
	ms := m.FindAll()
	if len(ms) != 1 {
		t.Fatalf("matches=%d want 1 (only the i+0 statement)", len(ms))
	}
	// both occurrences of i+0 recorded: resolver must see 2 ranges for the
	// pattern token of "0"
	res := NewResolver(&ms[0])
	zeroTok := -1
	for i, tok := range m.Pat.Toks.Tokens {
		if tok.Text == "0" {
			zeroTok = i
		}
	}
	if zeroTok < 0 {
		t.Fatal("no 0 token in pattern")
	}
	if got := len(res.Ranges(zeroTok)); got != 2 {
		t.Errorf("occurrences of i+0 recorded: %d want 2", got)
	}
}

func TestMatchPragmaPattern(t *testing.T) {
	m, _ := compile(t, `@r@
@@
#pragma omp ...
{
...
}
`, `void f(int n, double *a){
#pragma omp parallel for
{
	for (int i=0;i<n;++i) a[i]=0;
}
}`)
	ms := m.FindAll()
	if len(ms) != 1 {
		t.Fatalf("matches=%d want 1", len(ms))
	}
}

func TestMatchPragmaInfoMeta(t *testing.T) {
	m, _ := compile(t, `@moa@
pragmainfo pi;
@@
#pragma acc pi
`, "void f(void){\n#pragma acc kernels copy(a)\nwork();\n}")
	ms := m.FindAll()
	if len(ms) != 1 {
		t.Fatalf("matches=%d want 1", len(ms))
	}
	if ms[0].Env["pi"].Text != "kernels copy(a)" {
		t.Errorf("pi=%q", ms[0].Env["pi"].Text)
	}
}

func TestMatchIncludePattern(t *testing.T) {
	m, _ := compile(t, "@r@\n@@\n#include <omp.h>\n", "#include <stdio.h>\n#include <omp.h>\nint x;\n")
	ms := m.FindAll()
	if len(ms) != 1 {
		t.Fatalf("matches=%d want 1", len(ms))
	}
}

func TestMatchKernelLaunch(t *testing.T) {
	m, _ := compile(t, `@r@
identifier k;
expression b,t,x,y;
expression list el;
@@
k<<<b,t,x,y>>>(el)
`, "void f(void){ saxpy<<<grid, block, 0, stream>>>(n, a, x, y); }")
	ms := m.FindAll()
	if len(ms) != 1 {
		t.Fatalf("matches=%d want 1", len(ms))
	}
	env := ms[0].Env
	if env["k"].Norm != "saxpy" || env["b"].Norm != "grid" {
		t.Errorf("k=%q b=%q", env["k"].Norm, env["b"].Norm)
	}
	if !strings.Contains(env["el"].Text, "n, a, x, y") {
		t.Errorf("el=%q", env["el"].Text)
	}
}

func TestMatchAttributeDots(t *testing.T) {
	m, _ := compile(t, `@r@
identifier f;
type T;
@@
__attribute__((target(...,"avx512",...)))
T f(...)
{
...
}
`, `
__attribute__((target("avx2"))) void fa(double *a) { a[0]=0; }
__attribute__((target("arch=x86-64","avx512"))) void fb(double *a) { a[0]=0; }
`)
	ms := m.FindAll()
	if len(ms) != 1 {
		t.Fatalf("matches=%d want 1", len(ms))
	}
	if ms[0].Env["f"].Norm != "fb" {
		t.Errorf("f=%q", ms[0].Env["f"].Norm)
	}
}

func TestMatchColumnZeroDisjunction(t *testing.T) {
	patch := "@c@\ntype T;\nfunction f;\nparameter list PL;\n@@\n" +
		"- __attribute__((target(\n(\n- \"avx512\"\n|\n- \"avx2\"\n)\n- )))\n- T f(PL) { ... }\n"
	src := `
__attribute__((target("avx512"))) void fa(double *a) { a[0]=0; }
__attribute__((target("avx2"))) void fb(double *a) { a[1]=0; }
__attribute__((target("sse4"))) void fc(double *a) { a[2]=0; }
`
	m, _ := compile(t, patch, src)
	ms := m.FindAll()
	if len(ms) != 2 {
		t.Fatalf("matches=%d want 2", len(ms))
	}
}

func TestMatchInheritedBinding(t *testing.T) {
	m, _ := compile(t, `@r@
identifier f;
@@
f(...)
`, "void g(void){ alpha(1); beta(2); }")
	m.Inherited = Env{"f": NewValueBinding(cast.MetaIdentKind, "beta")}
	ms := m.FindAll()
	if len(ms) != 1 {
		t.Fatalf("matches=%d want 1 (inherited f=beta)", len(ms))
	}
	if ms[0].Env["f"].Norm != "beta" {
		t.Errorf("f=%q", ms[0].Env["f"].Norm)
	}
}

func TestMatchRangeForPattern(t *testing.T) {
	m, _ := compile(t, `@rl@
type T;
constant k;
identifier elem,result,arrid;
@@
- bool result = false;
...
- for ( T &elem : arrid )
-   if ( \( elem == k \| k == elem \) )
-   {
-     ...
-     result = true;
-     break;
-   }
`, `bool search(float *data) {
	bool found = false;
	prep();
	for ( float &e : vals )
		if ( e == 42 )
		{
			log_hit();
			found = true;
			break;
		}
	return found;
}`)
	ms := m.FindAll()
	if len(ms) != 1 {
		t.Fatalf("matches=%d want 1", len(ms))
	}
	env := ms[0].Env
	if env["result"].Norm != "found" || env["arrid"].Norm != "vals" || env["k"].Norm != "42" {
		t.Errorf("env: result=%q arrid=%q k=%q", env["result"].Norm, env["arrid"].Norm, env["k"].Norm)
	}
}

func TestMatchPositionBinding(t *testing.T) {
	m, _ := compile(t, `@cfe@
identifier fn;
expression list el;
position p;
@@
fn@p(el)
`, "void f(void){ curand_uniform_double(gen); }")
	ms := m.FindAll()
	if len(ms) == 0 {
		t.Fatal("no matches")
	}
	found := false
	for _, mt := range ms {
		if mt.Env["fn"].Norm == "curand_uniform_double" {
			found = true
			if mt.Env["p"].Kind != cast.MetaPosKind {
				t.Errorf("p kind=%v", mt.Env["p"].Kind)
			}
		}
	}
	if !found {
		t.Error("curand call not matched")
	}
}

func TestResolverGapAlignment(t *testing.T) {
	// for (T i=0; i +k-1 < l; i+=k) — deleting "+k-1" must resolve to the
	// code tokens of "+4-1".
	m, _ := compile(t, `@p0@
type T;
identifier i,l;
constant k={4};
@@
for (T i=0; i+k-1 < l ; i+=k) { ... }
`, "void f(int n){ for (int v=0; v+4-1 < n; v+=4) { w(v); } }")
	ms := m.FindAll()
	if len(ms) != 1 {
		t.Fatalf("matches=%d want 1", len(ms))
	}
	res := NewResolver(&ms[0])
	// find the pattern token "+" right after "i" in the cond
	pt := -1
	toks := m.Pat.Toks.Tokens
	for i := 0; i < len(toks)-1; i++ {
		if toks[i].Text == "i" && toks[i+1].Text == "+" && toks[i+2].Text == "k" {
			pt = i + 1
			break
		}
	}
	if pt < 0 {
		t.Fatal("pattern + token not found")
	}
	rngs := res.Ranges(pt)
	if len(rngs) != 1 {
		t.Fatalf("ranges=%v", rngs)
	}
	codeTok := m.Code.Toks.Tokens[rngs[0][0]]
	if codeTok.Text != "+" {
		t.Errorf("resolved token %q want +", codeTok.Text)
	}
}

func TestMatchMaxMatches(t *testing.T) {
	m, _ := compile(t, "@r@\nexpression e;\n@@\nf(e)\n", "void g(void){ f(1); f(2); f(3); }")
	m.MaxMatches = 2
	if got := len(m.FindAll()); got != 2 {
		t.Errorf("matches=%d want 2 (capped)", got)
	}
}
