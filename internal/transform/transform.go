// Package transform applies token-level edits to a lexed C/C++ file. A
// semantic patch match is realised as a set of token deletions (for '-'
// pattern tokens) and anchored text insertions (for '+' lines). Untouched
// tokens keep their exact source text and whitespace, so everything the
// patch does not mention survives byte-for-byte — the property that makes
// semantic patches reviewable as ordinary diffs.
package transform

import (
	"sort"
	"strings"

	"repro/internal/ctoken"
)

// marker tags the whitespace of a deleted token during rendering so the
// cleanup pass can drop lines that lost all their tokens.
const marker = "\x00"

// Where selects insertion placement relative to the anchor token.
type Where uint8

// Insertion placements.
const (
	// BeforeOwnLine places the text on its own line(s) before the line the
	// anchor token starts on.
	BeforeOwnLine Where = iota
	// AfterOwnLine places the text on its own line(s) after the anchor
	// token.
	AfterOwnLine
	// Inline places the text exactly at the anchor token's position (used
	// to replace deleted tokens).
	Inline
	// InlineAfter places the text directly after the anchor token's text.
	InlineAfter
)

// Insertion is one pending text insertion.
type Insertion struct {
	Anchor int // token index
	Place  Where
	Text   string // may contain newlines; indentation is added per line
	seq    int
}

// EditSet collects edits against one token file.
type EditSet struct {
	file *ctoken.File
	del  map[int]bool
	ins  []Insertion
	seq  int
}

// NewEditSet creates an empty edit set for the file.
func NewEditSet(f *ctoken.File) *EditSet {
	return &EditSet{file: f, del: map[int]bool{}}
}

// File returns the underlying token file.
func (e *EditSet) File() *ctoken.File { return e.file }

// Empty reports whether no edits are recorded.
func (e *EditSet) Empty() bool { return len(e.del) == 0 && len(e.ins) == 0 }

// DeleteRange marks tokens [first,last] (inclusive) for deletion.
func (e *EditSet) DeleteRange(first, last int) {
	for i := first; i <= last && i < len(e.file.Tokens); i++ {
		if i >= 0 {
			e.del[i] = true
		}
	}
}

// Deleted reports whether token i is marked deleted.
func (e *EditSet) Deleted(i int) bool { return e.del[i] }

// Insert queues text at the anchor with the given placement.
func (e *EditSet) Insert(anchor int, place Where, text string) {
	e.ins = append(e.ins, Insertion{Anchor: anchor, Place: place, Text: text, seq: e.seq})
	e.seq++
}

// Overlaps reports whether the token range [first,last] intersects any
// already-deleted token; the engine uses it to keep matches disjoint.
func (e *EditSet) Overlaps(first, last int) bool {
	for i := first; i <= last; i++ {
		if e.del[i] {
			return true
		}
	}
	return false
}

// indentOf returns the leading whitespace of the line on which token i
// starts.
func (e *EditSet) indentOf(i int) string {
	if i < 0 || i >= len(e.file.Tokens) {
		return ""
	}
	src := e.file.Src
	off := e.file.Tokens[i].Pos.Offset
	if off > len(src) {
		off = len(src)
	}
	lineStart := strings.LastIndexByte(src[:off], '\n') + 1
	j := lineStart
	for j < len(src) && (src[j] == ' ' || src[j] == '\t') {
		j++
	}
	return src[lineStart:j]
}

// Merge folds o's edits into e. Both sets must address the same token file.
// Deletions union; insertions append after e's own, preserving o's internal
// order — per-anchor insertion order is therefore preserved whenever the two
// sets touch disjoint anchors (the function-granular runner's case).
func (e *EditSet) Merge(o *EditSet) {
	for i := range o.del {
		e.del[i] = true
	}
	for _, in := range o.ins {
		e.Insert(in.Anchor, in.Place, in.Text)
	}
}

// WithinRange reports whether every recorded edit touches only tokens in
// [first,last].
func (e *EditSet) WithinRange(first, last int) bool {
	for i := range e.del {
		if i < first || i > last {
			return false
		}
	}
	for _, in := range e.ins {
		if in.Anchor < first || in.Anchor > last {
			return false
		}
	}
	return true
}

// Touches reports whether any recorded edit lands on a token in [first,last].
func (e *EditSet) Touches(first, last int) bool {
	for i := range e.del {
		if i >= first && i <= last {
			return true
		}
	}
	for _, in := range e.ins {
		if in.Anchor >= first && in.Anchor <= last {
			return true
		}
	}
	return false
}

// Apply renders the edited source.
func (e *EditSet) Apply() string {
	out, _ := e.render(0, len(e.file.Tokens)-1, "", false)
	return out
}

// ApplyRange renders tokens [first,last] with e's edits, substituting lead
// for the first token's whitespace (the caller owns the bytes before it).
// The returned text composes with the untouched surrounding pieces exactly
// as a full Apply would render them — except when ambiguous is true: the
// range's final line was emptied by deletions but the newline that would
// have removed it lies beyond the range, so a full render would drop a line
// this render had to keep. Callers treat an ambiguous render as "cannot
// compose" and fall back to whole-file rendering.
func (e *EditSet) ApplyRange(first, last int, lead string) (out string, ambiguous bool) {
	if last < first {
		return "", false
	}
	return e.render(first, last, lead, true)
}

// render is the shared token loop behind Apply and ApplyRange.
func (e *EditSet) render(first, last int, lead string, override bool) (string, bool) {
	byAnchor := map[int][]Insertion{}
	for _, in := range e.ins {
		byAnchor[in.Anchor] = append(byAnchor[in.Anchor], in)
	}
	for _, list := range byAnchor {
		sort.SliceStable(list, func(i, j int) bool { return list[i].seq < list[j].seq })
	}

	var sb strings.Builder
	toks := e.file.Tokens
	prevDeleted := false
	for i := first; i <= last && i < len(toks); i++ {
		t := toks[i]
		if i == first && override {
			// The caller owns the bytes before the range; substitute the
			// range-local whitespace (the anchor's own-line indentation).
			t.WS = lead
		}
		inserts := byAnchor[i]

		// BeforeOwnLine insertions: split the token's whitespace at its last
		// newline and slot the new lines in between.
		var beforeOwn []Insertion
		var inline []Insertion
		var afterOwn []Insertion
		var inlineAfter []Insertion
		for _, in := range inserts {
			switch in.Place {
			case BeforeOwnLine:
				beforeOwn = append(beforeOwn, in)
			case Inline:
				inline = append(inline, in)
			case AfterOwnLine:
				afterOwn = append(afterOwn, in)
			case InlineAfter:
				inlineAfter = append(inlineAfter, in)
			}
		}

		ws := t.WS
		if len(beforeOwn) > 0 {
			indent := e.indentOf(i)
			nl := strings.LastIndexByte(ws, '\n')
			head, tail := "", ws
			if nl >= 0 {
				head, tail = ws[:nl+1], ws[nl+1:]
			}
			sb.WriteString(head)
			for _, in := range beforeOwn {
				for _, line := range strings.Split(in.Text, "\n") {
					sb.WriteString(indent)
					sb.WriteString(line)
					sb.WriteString("\n")
				}
			}
			if nl < 0 && tail == ws {
				// No newline in the anchor's whitespace (e.g. first token of
				// the file or same-line anchor): the inserted lines already
				// end with newline; keep original spacing then the token.
				sb.WriteString(tail)
			} else {
				sb.WriteString(tail)
			}
			ws = "" // consumed
		}

		deleted := e.del[i]
		if ws != "" {
			switch {
			case deleted && prevDeleted && !strings.Contains(ws, "\n"):
				// Interior whitespace of a deleted run collapses, so inline
				// deletions do not leave runs of blanks behind.
				sb.WriteString(marker)
			case deleted:
				sb.WriteString(ws)
				sb.WriteString(marker)
			default:
				sb.WriteString(ws)
			}
		} else if deleted {
			sb.WriteString(marker)
		}
		prevDeleted = deleted

		for _, in := range inline {
			sb.WriteString(in.Text)
		}

		if !deleted {
			sb.WriteString(t.Text)
		}

		for _, in := range inlineAfter {
			sb.WriteString(in.Text)
		}
		if len(afterOwn) > 0 {
			indent := e.indentOf(i)
			for _, in := range afterOwn {
				for _, line := range strings.Split(in.Text, "\n") {
					sb.WriteString("\n")
					sb.WriteString(indent)
					sb.WriteString(line)
				}
			}
		}
	}
	return cleanup(sb.String())
}

// cleanup removes lines that consist only of whitespace and deletion
// markers (a fully deleted source line), and strips markers elsewhere.
// ambiguous reports that the final, newline-less line was emptied by
// deletions: a full-file render would see that line continue into the
// following range and might drop it entirely, so a range render cannot
// know the composed result. (Apply always renders through the file's final
// newline-or-EOF, where the flag is meaningless and ignored.)
func cleanup(s string) (out string, ambiguous bool) {
	if !strings.Contains(s, marker) {
		return s, false
	}
	lines := strings.SplitAfter(s, "\n")
	var sb strings.Builder
	for _, line := range lines {
		if strings.Contains(line, marker) {
			stripped := strings.ReplaceAll(line, marker, "")
			if strings.TrimSpace(stripped) == "" {
				if strings.HasSuffix(line, "\n") {
					continue // drop the emptied line entirely
				}
				ambiguous = true
			}
			sb.WriteString(stripped)
			continue
		}
		sb.WriteString(line)
	}
	return sb.String(), ambiguous
}
