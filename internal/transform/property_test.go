package transform

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ctoken"
)

// Property: with no edits, Apply is the identity for any lexable source.
func TestQuickIdentity(t *testing.T) {
	shapes := []string{
		"int x = 1;\n",
		"void f(void){ a(); b(); }\n",
		"/* c */ #include <x.h>\nint v; // tail\n",
		"for (i = 0; i < n; ++i) { s += a[i]; }\n",
	}
	prop := func(pick uint8, reps uint8) bool {
		src := strings.Repeat(shapes[int(pick)%len(shapes)], int(reps%5)+1)
		f, err := ctoken.Lex("q.c", src, ctoken.Options{})
		if err != nil {
			return false
		}
		return NewEditSet(f).Apply() == src
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: after deleting an arbitrary token range, none of the deleted
// token texts survive at their positions and all other tokens survive.
func TestQuickDeletionSound(t *testing.T) {
	src := "alpha beta gamma delta epsilon zeta eta theta iota kappa\n"
	f, err := ctoken.Lex("q.c", src, ctoken.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := len(f.Tokens) - 1 // exclude EOF
	prop := func(a, b uint8) bool {
		lo := int(a) % n
		hi := int(b) % n
		if lo > hi {
			lo, hi = hi, lo
		}
		e := NewEditSet(f)
		e.DeleteRange(lo, hi)
		out := e.Apply()
		words := map[string]bool{}
		for _, w := range strings.Fields(out) {
			words[w] = true
		}
		for i := 0; i < n; i++ {
			word := f.Tokens[i].Text
			if i >= lo && i <= hi && words[word] {
				return false // deleted word survived
			}
			if (i < lo || i > hi) && !words[word] {
				return false // kept word vanished
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: insertions always appear in the output, in insertion order for
// a shared anchor.
func TestQuickInsertionAppears(t *testing.T) {
	src := "one two three\n"
	f, err := ctoken.Lex("q.c", src, ctoken.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(anchor uint8, place uint8) bool {
		a := int(anchor) % 3
		e := NewEditSet(f)
		w := Where(place % 4)
		e.Insert(a, w, "INSERTED")
		out := e.Apply()
		return strings.Contains(out, "INSERTED")
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: deletion plus inline replacement at the same spot yields output
// containing the replacement exactly once.
func TestQuickReplaceOnce(t *testing.T) {
	src := "keep drop keep2 drop2 keep3\n"
	f, err := ctoken.Lex("q.c", src, ctoken.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(which bool) bool {
		e := NewEditSet(f)
		idx := 1
		if which {
			idx = 3
		}
		e.DeleteRange(idx, idx)
		e.Insert(idx, Inline, "REPL")
		out := e.Apply()
		return strings.Count(out, "REPL") == 1 &&
			strings.Contains(out, "keep") && strings.Contains(out, "keep3")
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
