package transform

import (
	"strings"
	"testing"

	"repro/internal/ctoken"
)

func lexed(t *testing.T, src string) *ctoken.File {
	t.Helper()
	f, err := ctoken.Lex("t.c", src, ctoken.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNoEditsIsIdentity(t *testing.T) {
	src := "int main(void) {\n  return 0; /* c */\n}\n"
	e := NewEditSet(lexed(t, src))
	if got := e.Apply(); got != src {
		t.Errorf("identity failed:\n%q\n%q", src, got)
	}
	if !e.Empty() {
		t.Error("Empty() should be true")
	}
}

func findTok(f *ctoken.File, text string) int {
	for i, t := range f.Tokens {
		if t.Text == text {
			return i
		}
	}
	return -1
}

func TestDeleteWholeLine(t *testing.T) {
	src := "a();\nb();\nc();\n"
	f := lexed(t, src)
	e := NewEditSet(f)
	// delete "b" "(" ")" ";"
	i := findTok(f, "b")
	e.DeleteRange(i, i+3)
	got := e.Apply()
	if got != "a();\nc();\n" {
		t.Errorf("got %q", got)
	}
}

func TestDeleteInline(t *testing.T) {
	src := "for (i = 0; i+k-1 < n; i+=k) ;\n"
	f := lexed(t, src)
	e := NewEditSet(f)
	// delete "+k-1": tokens +,k,-,1 after the second i
	idx := -1
	for i, t := range f.Tokens {
		if t.Text == "+" && f.Tokens[i+1].Text == "k" {
			idx = i
			break
		}
	}
	e.DeleteRange(idx, idx+3)
	got := e.Apply()
	if !strings.Contains(got, "i < n") {
		t.Errorf("got %q", got)
	}
	if strings.Contains(got, "k-1") {
		t.Errorf("deletion incomplete: %q", got)
	}
}

func TestInlineReplacement(t *testing.T) {
	src := "for (;; i+=k) ;\n"
	f := lexed(t, src)
	e := NewEditSet(f)
	i := findTok(f, "i")
	e.DeleteRange(i, i+2) // i += k
	e.Insert(i, Inline, "++i")
	got := e.Apply()
	if !strings.Contains(got, "for (;; ++i) ;") {
		t.Errorf("got %q", got)
	}
}

func TestInsertAfterOwnLine(t *testing.T) {
	src := "  {\n  work();\n  }\n"
	f := lexed(t, src)
	e := NewEditSet(f)
	e.Insert(findTok(f, "{"), AfterOwnLine, "START(__func__);")
	got := e.Apply()
	want := "  {\n  START(__func__);\n  work();\n  }\n"
	if got != want {
		t.Errorf("got:\n%q\nwant:\n%q", got, want)
	}
}

func TestInsertBeforeOwnLine(t *testing.T) {
	src := "int f(void) { return 1; }\n"
	f := lexed(t, src)
	e := NewEditSet(f)
	e.Insert(findTok(f, "int"), BeforeOwnLine, "#pragma GCC push_options")
	got := e.Apply()
	want := "#pragma GCC push_options\nint f(void) { return 1; }\n"
	if got != want {
		t.Errorf("got:\n%q\nwant:\n%q", got, want)
	}
}

func TestInsertBeforeKeepsIndent(t *testing.T) {
	src := "void g(void) {\n    call(1);\n}\n"
	f := lexed(t, src)
	e := NewEditSet(f)
	e.Insert(findTok(f, "call"), BeforeOwnLine, "prep();")
	got := e.Apply()
	want := "void g(void) {\n    prep();\n    call(1);\n}\n"
	if got != want {
		t.Errorf("got:\n%q\nwant:\n%q", got, want)
	}
}

func TestMultiLineInsertion(t *testing.T) {
	src := "int base(int x) { return x; }\n"
	f := lexed(t, src)
	e := NewEditSet(f)
	e.Insert(0, BeforeOwnLine, "int clone_a(int x) { return x; }\nint clone_b(int x) { return x; }")
	got := e.Apply()
	if !strings.HasPrefix(got, "int clone_a(int x) { return x; }\nint clone_b(int x) { return x; }\nint base") {
		t.Errorf("got:\n%q", got)
	}
}

func TestInlineAfter(t *testing.T) {
	src := "f(a);\n"
	f := lexed(t, src)
	e := NewEditSet(f)
	e.Insert(findTok(f, "a"), InlineAfter, ", b")
	got := e.Apply()
	if got != "f(a, b);\n" {
		t.Errorf("got %q", got)
	}
}

func TestMultipleInsertionsSameAnchorKeepOrder(t *testing.T) {
	src := "x;\n"
	f := lexed(t, src)
	e := NewEditSet(f)
	e.Insert(0, BeforeOwnLine, "first;")
	e.Insert(0, BeforeOwnLine, "second;")
	got := e.Apply()
	if !strings.HasPrefix(got, "first;\nsecond;\nx;") {
		t.Errorf("got %q", got)
	}
}

func TestOverlaps(t *testing.T) {
	f := lexed(t, "a b c d e")
	e := NewEditSet(f)
	e.DeleteRange(1, 2)
	if !e.Overlaps(2, 3) {
		t.Error("overlap not detected")
	}
	if e.Overlaps(3, 4) {
		t.Error("false overlap")
	}
}

func TestDeleteFunctionSpanningLines(t *testing.T) {
	src := "void keep(void) {}\nvoid drop(void)\n{\n  x = 1;\n}\nint tail;\n"
	f := lexed(t, src)
	e := NewEditSet(f)
	first := -1
	last := -1
	for i, t := range f.Tokens {
		if t.Text == "drop" {
			first = i - 1 // the 'void' before drop
		}
		if first >= 0 && t.Text == "}" && i > first+3 {
			last = i
			break
		}
	}
	e.DeleteRange(first, last)
	got := e.Apply()
	want := "void keep(void) {}\nint tail;\n"
	if got != want {
		t.Errorf("got:\n%q\nwant:\n%q", got, want)
	}
}
