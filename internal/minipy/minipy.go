// Package minipy implements a deliberately restricted interpreter for the
// Python fragments that appear in Coccinelle script rules. It supports
// exactly the idioms the paper's listings use: dictionary literals, string
// literals and concatenation, name and subscript lookups, and calls to the
// cocci.make_ident / cocci.make_type / cocci.make_pragmainfo constructors,
// with assignments either to globals (initialize rules) or to
// coccinelle.<output> metavariables (script rules). Arbitrary Python is out
// of scope by design; the Go ScriptHost interface in internal/core covers
// anything beyond these forms.
package minipy

import (
	"fmt"
	"strings"
)

// Value is a runtime value: a string (possibly tagged by its constructor) or
// a dictionary.
type Value struct {
	Str  string
	Dict map[string]string
	// Tag records which cocci constructor made the value ("ident", "type",
	// "pragmainfo", "" for plain strings).
	Tag    string
	IsDict bool
}

// Interp holds global state shared across rules of one engine run.
type Interp struct {
	globals map[string]Value
}

// New creates an empty interpreter.
func New() *Interp {
	return &Interp{globals: map[string]Value{}}
}

// Global returns a global value (for tests and the engine).
func (in *Interp) Global(name string) (Value, bool) {
	v, ok := in.globals[name]
	return v, ok
}

// An Error reports a script failure.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("script line %d: %s", e.Line, e.Msg) }

// KeyError is returned when a dictionary subscript misses; the engine treats
// it as "this environment does not apply" rather than a hard failure,
// mirroring Python's KeyError aborting one script invocation.
type KeyError struct {
	Key string
}

func (e *KeyError) Error() string { return "KeyError: " + e.Key }

// Exec runs a script body. locals are read-only input bindings (inherited
// metavariable values); assignments to coccinelle.X are collected as
// outputs; assignments to bare names update the interpreter globals.
func (in *Interp) Exec(code string, locals map[string]string) (map[string]Value, error) {
	outputs := map[string]Value{}
	stmts, err := splitStatements(code)
	if err != nil {
		return nil, err
	}
	for _, st := range stmts {
		if err := in.execStmt(st, locals, outputs); err != nil {
			return nil, err
		}
	}
	return outputs, nil
}

type stmt struct {
	line int
	text string
}

// splitStatements joins continuation lines (trailing backslash or open
// brackets) and drops comments.
func splitStatements(code string) ([]stmt, error) {
	var out []stmt
	lines := strings.Split(code, "\n")
	i := 0
	for i < len(lines) {
		line := lines[i]
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") || strings.HasPrefix(trimmed, "//") {
			i++
			continue
		}
		start := i
		text := line
		for {
			depth := bracketDepth(text)
			trimmed := strings.TrimSpace(text)
			cont := strings.HasSuffix(trimmed, "\\")
			// An operator at end of line, or a bracket/operator opening the
			// next line, also continues the statement (the paper's listings
			// wrap assignments this way).
			hangs := strings.HasSuffix(trimmed, "=") || strings.HasSuffix(trimmed, "+") ||
				strings.HasSuffix(trimmed, ",") || strings.HasSuffix(trimmed, ":")
			nextOpens := false
			if i+1 < len(lines) {
				nt := strings.TrimSpace(lines[i+1])
				nextOpens = strings.HasPrefix(nt, "(") || strings.HasPrefix(nt, "[") ||
					strings.HasPrefix(nt, "+") || strings.HasPrefix(nt, ".")
			}
			if depth <= 0 && !cont && !hangs && !nextOpens {
				break
			}
			if cont {
				text = strings.TrimSuffix(trimmed, "\\")
			}
			i++
			if i >= len(lines) {
				if depth > 0 || cont || hangs {
					return nil, &Error{Line: start + 1, Msg: "unterminated statement"}
				}
				break
			}
			text += " " + strings.TrimSpace(lines[i])
		}
		st := strings.TrimSpace(text)
		st = strings.TrimSuffix(st, ";") // tolerate C-habit semicolons
		out = append(out, stmt{line: start + 1, text: st})
		i++
	}
	return out, nil
}

func bracketDepth(s string) int {
	depth := 0
	inStr := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inStr != 0 {
			if c == '\\' {
				i++
			} else if c == inStr {
				inStr = 0
			}
			continue
		}
		switch c {
		case '"', '\'':
			inStr = c
		case '{', '(', '[':
			depth++
		case '}', ')', ']':
			depth--
		case '#':
			return depth // comment to end of line
		}
	}
	return depth
}

// execStmt executes one logical statement.
func (in *Interp) execStmt(st stmt, locals map[string]string, outputs map[string]Value) error {
	text := st.text
	eq := topLevelAssign(text)
	if eq < 0 {
		// bare expression: evaluate for effect (none) and ignore
		_, err := in.eval(text, st.line, locals, outputs)
		return err
	}
	target := strings.TrimSpace(text[:eq])
	rhs := strings.TrimSpace(text[eq+1:])
	val, err := in.eval(rhs, st.line, locals, outputs)
	if err != nil {
		return err
	}
	switch {
	case strings.HasPrefix(target, "coccinelle."):
		outputs[strings.TrimPrefix(target, "coccinelle.")] = val
	case isName(target):
		in.globals[target] = val
	default:
		return &Error{Line: st.line, Msg: fmt.Sprintf("unsupported assignment target %q", target)}
	}
	return nil
}

// topLevelAssign finds a single '=' (not ==, not inside brackets/strings).
func topLevelAssign(s string) int {
	depth := 0
	inStr := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inStr != 0 {
			if c == '\\' {
				i++
			} else if c == inStr {
				inStr = 0
			}
			continue
		}
		switch c {
		case '"', '\'':
			inStr = c
		case '{', '(', '[':
			depth++
		case '}', ')', ']':
			depth--
		case '=':
			if depth == 0 {
				if i+1 < len(s) && s[i+1] == '=' {
					i++
					continue
				}
				if i > 0 && (s[i-1] == '!' || s[i-1] == '<' || s[i-1] == '>') {
					continue
				}
				return i
			}
		}
	}
	return -1
}

func isName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9') {
			continue
		}
		return false
	}
	return true
}

// eval evaluates an expression.
func (in *Interp) eval(expr string, line int, locals map[string]string, outputs map[string]Value) (Value, error) {
	p := &eparser{src: expr, line: line, in: in, locals: locals, outputs: outputs}
	v, err := p.parseConcat()
	if err != nil {
		return Value{}, err
	}
	p.skipWS()
	if p.pos < len(p.src) {
		return Value{}, &Error{Line: line, Msg: fmt.Sprintf("trailing text %q", p.src[p.pos:])}
	}
	return v, nil
}

type eparser struct {
	src     string
	pos     int
	line    int
	in      *Interp
	locals  map[string]string
	outputs map[string]Value
}

func (p *eparser) errf(format string, args ...any) error {
	return &Error{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *eparser) skipWS() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

// parseConcat handles `a + b + c` string concatenation.
func (p *eparser) parseConcat() (Value, error) {
	v, err := p.parsePostfix()
	if err != nil {
		return Value{}, err
	}
	for {
		p.skipWS()
		if p.pos < len(p.src) && p.src[p.pos] == '+' {
			p.pos++
			rhs, err := p.parsePostfix()
			if err != nil {
				return Value{}, err
			}
			if v.IsDict || rhs.IsDict {
				return Value{}, p.errf("cannot concatenate dictionaries")
			}
			v = Value{Str: v.Str + rhs.Str}
			continue
		}
		return v, nil
	}
}

// parsePostfix handles primary expressions with [subscript] suffixes.
func (p *eparser) parsePostfix() (Value, error) {
	v, err := p.parsePrimary()
	if err != nil {
		return Value{}, err
	}
	for {
		p.skipWS()
		if p.pos < len(p.src) && p.src[p.pos] == '[' {
			p.pos++
			key, err := p.parseConcat()
			if err != nil {
				return Value{}, err
			}
			p.skipWS()
			if p.pos >= len(p.src) || p.src[p.pos] != ']' {
				return Value{}, p.errf("expected ]")
			}
			p.pos++
			if !v.IsDict {
				return Value{}, p.errf("subscript on non-dictionary")
			}
			got, ok := v.Dict[key.Str]
			if !ok {
				return Value{}, &KeyError{Key: key.Str}
			}
			v = Value{Str: got}
			continue
		}
		return v, nil
	}
}

func (p *eparser) parsePrimary() (Value, error) {
	p.skipWS()
	if p.pos >= len(p.src) {
		return Value{}, p.errf("unexpected end of expression")
	}
	c := p.src[p.pos]
	switch {
	case c == '"' || c == '\'':
		return p.parseString(c)
	case c == '{':
		return p.parseDict()
	case c == '(':
		p.pos++
		v, err := p.parseConcat()
		if err != nil {
			return Value{}, err
		}
		p.skipWS()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return Value{}, p.errf("expected )")
		}
		p.pos++
		return v, nil
	default:
		return p.parseNameOrCall()
	}
}

func (p *eparser) parseString(quote byte) (Value, error) {
	p.pos++
	var sb strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '\\' && p.pos+1 < len(p.src) {
			next := p.src[p.pos+1]
			switch next {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\', '"', '\'':
				sb.WriteByte(next)
			default:
				sb.WriteByte('\\')
				sb.WriteByte(next)
			}
			p.pos += 2
			continue
		}
		if c == quote {
			p.pos++
			return Value{Str: sb.String()}, nil
		}
		sb.WriteByte(c)
		p.pos++
	}
	return Value{}, p.errf("unterminated string")
}

func (p *eparser) parseDict() (Value, error) {
	p.pos++ // {
	d := map[string]string{}
	for {
		p.skipWS()
		if p.pos < len(p.src) && p.src[p.pos] == '}' {
			p.pos++
			return Value{Dict: d, IsDict: true}, nil
		}
		key, err := p.parseConcat()
		if err != nil {
			return Value{}, err
		}
		p.skipWS()
		if p.pos >= len(p.src) || p.src[p.pos] != ':' {
			return Value{}, p.errf("expected : in dictionary")
		}
		p.pos++
		val, err := p.parseConcat()
		if err != nil {
			return Value{}, err
		}
		if key.IsDict || val.IsDict {
			return Value{}, p.errf("nested dictionaries unsupported")
		}
		d[key.Str] = val.Str
		p.skipWS()
		if p.pos < len(p.src) && p.src[p.pos] == ',' {
			p.pos++
			continue
		}
	}
}

func (p *eparser) parseNameOrCall() (Value, error) {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '_' || c == '.' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			p.pos++
			continue
		}
		break
	}
	name := p.src[start:p.pos]
	if name == "" {
		return Value{}, p.errf("unexpected character %q", string(p.src[p.pos]))
	}
	p.skipWS()
	// call?
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		p.pos++
		var args []Value
		for {
			p.skipWS()
			if p.pos < len(p.src) && p.src[p.pos] == ')' {
				p.pos++
				break
			}
			a, err := p.parseConcat()
			if err != nil {
				return Value{}, err
			}
			args = append(args, a)
			p.skipWS()
			if p.pos < len(p.src) && p.src[p.pos] == ',' {
				p.pos++
			}
		}
		return p.call(name, args)
	}
	return p.lookup(name)
}

func (p *eparser) call(name string, args []Value) (Value, error) {
	one := func() (string, error) {
		if len(args) != 1 || args[0].IsDict {
			return "", p.errf("%s expects one string argument", name)
		}
		return args[0].Str, nil
	}
	switch name {
	case "cocci.make_ident":
		s, err := one()
		return Value{Str: s, Tag: "ident"}, err
	case "cocci.make_type":
		s, err := one()
		return Value{Str: s, Tag: "type"}, err
	case "cocci.make_pragmainfo":
		s, err := one()
		return Value{Str: s, Tag: "pragmainfo"}, err
	case "cocci.make_expr":
		s, err := one()
		return Value{Str: s, Tag: "expr"}, err
	case "str":
		s, err := one()
		return Value{Str: s}, err
	case "len":
		if len(args) != 1 {
			return Value{}, p.errf("len expects one argument")
		}
		if args[0].IsDict {
			return Value{Str: itoa(len(args[0].Dict))}, nil
		}
		return Value{Str: itoa(len(args[0].Str))}, nil
	}
	return Value{}, p.errf("unsupported function %q", name)
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

func (p *eparser) lookup(name string) (Value, error) {
	// coccinelle.X reads back an output being built
	if strings.HasPrefix(name, "coccinelle.") {
		if v, ok := p.outputs[strings.TrimPrefix(name, "coccinelle.")]; ok {
			return v, nil
		}
		return Value{}, p.errf("unbound output %q", name)
	}
	if v, ok := p.locals[name]; ok {
		return Value{Str: v}, nil
	}
	if v, ok := p.in.globals[name]; ok {
		return v, nil
	}
	return Value{}, p.errf("unbound name %q", name)
}
