package minipy

import (
	"errors"
	"testing"
)

func TestDictInitAndLookup(t *testing.T) {
	in := New()
	// the paper's initialize rule, verbatim shape
	_, err := in.Exec(`C2HF = { "curand_uniform_double":
 "rocrand_uniform_double" }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := in.Exec(`coccinelle.nf =
 cocci.make_ident(C2HF[fn]);`, map[string]string{"fn": "curand_uniform_double"})
	// note: trailing semicolons are not python; strip them first
	if err != nil {
		// retry without semicolon (the engine strips them)
		out, err = in.Exec(`coccinelle.nf = cocci.make_ident(C2HF[fn])`, map[string]string{"fn": "curand_uniform_double"})
		if err != nil {
			t.Fatal(err)
		}
	}
	if out["nf"].Str != "rocrand_uniform_double" || out["nf"].Tag != "ident" {
		t.Errorf("nf=%+v", out["nf"])
	}
}

func TestKeyErrorSurfaces(t *testing.T) {
	in := New()
	if _, err := in.Exec(`D = { "a": "b" }`, nil); err != nil {
		t.Fatal(err)
	}
	_, err := in.Exec(`coccinelle.x = D[k]`, map[string]string{"k": "missing"})
	var ke *KeyError
	if !errors.As(err, &ke) {
		t.Fatalf("want KeyError, got %v", err)
	}
	if ke.Key != "missing" {
		t.Errorf("key=%q", ke.Key)
	}
}

func TestStringConcat(t *testing.T) {
	in := New()
	out, err := in.Exec(`coccinelle.lb = "KOKKOS_LAMBDA(const int i)" + fb`, map[string]string{"fb": "{ s += a[i]; }"})
	if err != nil {
		t.Fatal(err)
	}
	if out["lb"].Str != "KOKKOS_LAMBDA(const int i){ s += a[i]; }" {
		t.Errorf("lb=%q", out["lb"].Str)
	}
}

func TestMakePragmainfo(t *testing.T) {
	in := New()
	out, err := in.Exec(`coccinelle.po =
 cocci.make_pragmainfo
 ("kernels copy(a)")`, nil)
	if err != nil {
		// join of continuation lines puts the call on one line
		t.Fatal(err)
	}
	if out["po"].Str != "kernels copy(a)" || out["po"].Tag != "pragmainfo" {
		t.Errorf("po=%+v", out["po"])
	}
}

func TestMakeType(t *testing.T) {
	in := New()
	if _, err := in.Exec(`C2HT = { "__half": "rocblas_half" }`, nil); err != nil {
		t.Fatal(err)
	}
	out, err := in.Exec("coccinelle.h_t = \\\n cocci.make_type(C2HT[c_t])", map[string]string{"c_t": "__half"})
	if err != nil {
		t.Fatal(err)
	}
	if out["h_t"].Str != "rocblas_half" || out["h_t"].Tag != "type" {
		t.Errorf("h_t=%+v", out["h_t"])
	}
}

func TestCommentsSkipped(t *testing.T) {
	in := New()
	out, err := in.Exec(`# python comment
// c-style comment accepted too (appears in the paper listing)
coccinelle.x = "ok"`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out["x"].Str != "ok" {
		t.Errorf("x=%+v", out["x"])
	}
}

func TestGlobalsPersistAcrossExec(t *testing.T) {
	in := New()
	if _, err := in.Exec(`G = "v1"`, nil); err != nil {
		t.Fatal(err)
	}
	out, err := in.Exec(`coccinelle.y = G + "!"`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out["y"].Str != "v1!" {
		t.Errorf("y=%q", out["y"].Str)
	}
	if v, ok := in.Global("G"); !ok || v.Str != "v1" {
		t.Errorf("global G=%+v ok=%v", v, ok)
	}
}

func TestLocalsShadowGlobals(t *testing.T) {
	in := New()
	if _, err := in.Exec(`n = "global"`, nil); err != nil {
		t.Fatal(err)
	}
	out, err := in.Exec(`coccinelle.r = n`, map[string]string{"n": "local"})
	if err != nil {
		t.Fatal(err)
	}
	if out["r"].Str != "local" {
		t.Errorf("r=%q", out["r"].Str)
	}
}

func TestErrors(t *testing.T) {
	in := New()
	cases := []string{
		`x = unknown_name`,
		`x = f(1`,
		`x = "unterminated`,
		`x = {"a" "b"}`,
		`x = cocci.unknown("y")`,
		`x[0] = "y"`,
	}
	for _, c := range cases {
		if _, err := in.Exec(c, nil); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestParenAndEscapes(t *testing.T) {
	in := New()
	out, err := in.Exec(`coccinelle.s = ("a\n" + "b\t") + 'c'`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out["s"].Str != "a\nb\tc" {
		t.Errorf("s=%q", out["s"].Str)
	}
}

func TestLenAndStr(t *testing.T) {
	in := New()
	if _, err := in.Exec(`D = {"a":"1","b":"2"}`, nil); err != nil {
		t.Fatal(err)
	}
	out, err := in.Exec(`coccinelle.n = len(D)
coccinelle.m = len("abc")`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out["n"].Str != "2" || out["m"].Str != "3" {
		t.Errorf("n=%q m=%q", out["n"].Str, out["m"].Str)
	}
}
