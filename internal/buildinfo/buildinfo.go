// Package buildinfo derives a human-readable version string for the gocci
// tools from the binary's embedded build metadata, so every tool answers
// --version identically without any per-tool ldflags plumbing.
package buildinfo

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
)

// Version renders the best version the binary knows about itself: the
// module version when built from a tagged module (`go install repro@v1.2.3`),
// otherwise the VCS revision (shortened, with a +dirty marker) a
// source-tree build embeds, otherwise "devel".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}

// Setup wires the shared version conventions into a tool's default flag
// set: it registers --version, and wraps flag.Usage so -h/usage output
// leads with "tool version". Call before flag.Parse, then pass the
// returned pointer to HandleVersion after it.
func Setup(tool string) *bool {
	show := flag.Bool("version", false, "print version and exit")
	prev := flag.Usage
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "%s %s\n", tool, Version())
		prev()
	}
	return show
}

// HandleVersion prints "tool version" and exits 0 when --version was
// given. Call immediately after flag.Parse.
func HandleVersion(tool string, show *bool) {
	if show != nil && *show {
		fmt.Printf("%s %s\n", tool, Version())
		os.Exit(0)
	}
}
