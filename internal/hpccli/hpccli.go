// Package hpccli is the shared driver behind the HPC command-line tools
// (gocci-hipify, gocci-acc2omp). Both tools are thin clients of the shipped
// campaigns in internal/hpc: the driver collects the input paths, runs the
// campaign through the engine's batch runner — inheriting the worker pool,
// prefilter, per-function cache, and persistent result cache — and renders
// diffs, in-place rewrites, verifier findings, and statistics in one
// consistent format. The tools' v0 bespoke walkers stay available behind
// --legacy through a per-tool callback.
package hpccli

import (
	"fmt"
	"os"
	"time"

	sempatch "repro"
	"repro/internal/cliutil"
	"repro/internal/cparse"
	"repro/internal/diff"
	"repro/internal/hpc"
)

// Spec describes one tool invocation after flag parsing.
type Spec struct {
	// Tool is the binary name used as the message prefix.
	Tool string
	// Campaign is the shipped campaign to run; nil selects Legacy.
	Campaign *hpc.Campaign
	// Legacy translates one file with the v0 walker (used when Campaign is
	// nil); warnings it wants shown go directly to stderr.
	Legacy func(path, src string) (string, error)
	// InPlace rewrites files atomically instead of printing diffs.
	InPlace bool
	// Stats prints a summary (including the parse count) to stderr.
	Stats bool
	// Verify enables the post-transform safety checker (campaign runs only).
	Verify bool
	// Recurse treats Args as directory trees to scan.
	Recurse bool
	// Workers is the batch pool size; 0 means GOMAXPROCS.
	Workers int
	// CacheDir enables the persistent corpus index (campaign runs only).
	CacheDir string
	// TracePath, when non-empty, writes the run's Chrome trace-event JSON
	// there (campaign runs only).
	TracePath string
	// Profile prints the aggregate stage/rule profile to stderr (campaign
	// runs only).
	Profile bool
	// Args are the positional file (or, with Recurse, directory) arguments.
	Args []string
}

// Run executes one invocation and returns the process exit code.
func Run(s Spec) int {
	paths := s.Args
	if s.Recurse {
		var err error
		paths, err = cliutil.CollectSources(s.Args, func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, s.Tool+": "+format+"\n", args...)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", s.Tool, err)
			return 1
		}
	}
	if s.Campaign == nil {
		if s.TracePath != "" || s.Profile {
			fmt.Fprintf(os.Stderr, "%s: warning: --trace/--profile only apply to campaign runs; ignored with --legacy\n", s.Tool)
		}
		return runLegacy(s, paths)
	}
	return runCampaign(s, paths)
}

// runLegacy drives the per-tool v0 walker file by file.
func runLegacy(s Spec, paths []string) int {
	code := 0
	for _, path := range paths {
		b, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", s.Tool, err)
			return 1
		}
		src := string(b)
		out, err := s.Legacy(path, src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", s.Tool, err)
			return 1
		}
		if c := emit(s, path, src, out, ""); c != 0 {
			code = c
		}
	}
	return code
}

// runCampaign builds and sweeps the shipped campaign over paths.
func runCampaign(s Spec, paths []string) int {
	opts := sempatch.Options{Workers: s.Workers, CacheDir: s.CacheDir, Verify: s.Verify}
	var tracer *sempatch.Tracer
	if s.TracePath != "" || s.Profile {
		tracer = sempatch.NewTracer()
		opts.Tracer = tracer
	}
	ca, err := s.Campaign.Build(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", s.Tool, err)
		return 1
	}
	code := 0
	start := time.Now()
	parses := cparse.Parses()
	st, err := ca.ApplyAllPathsFunc(paths, func(fr sempatch.CampaignFileResult) error {
		if fr.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", s.Tool, fr.Err)
			code = 1
			return nil
		}
		for _, o := range fr.Patches {
			for _, w := range o.Warnings {
				fmt.Fprintf(os.Stderr, "%s: verify: %s: %s\n", s.Tool, fr.Name, w)
			}
			if o.Demoted {
				fmt.Fprintf(os.Stderr, "%s: verify: %s: unsafe edit by %s demoted\n", s.Tool, fr.Name, o.Patch)
			}
		}
		if fr.Diff == "" {
			return nil
		}
		if c := emit(s, fr.Name, "", fr.Output, fr.Diff); c != 0 {
			code = c
		}
		return nil
	})
	parses = cparse.Parses() - parses
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", s.Tool, err)
		return 1
	}
	cs := ca.CacheStatus()
	if cs.Enabled && cs.Rebuilt != "" {
		fmt.Fprintf(os.Stderr, "%s: warning: cache at %s was incompatible (%s); it was dropped and rebuilt\n", s.Tool, cs.Dir, cs.Rebuilt)
	}
	if cs.Enabled && cs.CorruptEntries > 0 {
		fmt.Fprintf(os.Stderr, "%s: warning: %d corrupt cache entries at %s were dropped and rebuilt\n", s.Tool, cs.CorruptEntries, cs.Dir)
	}
	if s.Stats {
		fmt.Fprintf(os.Stderr, "%s: campaign %s v%s: %d files, %d changed, %d errors, parsed: %d in %v\n",
			s.Tool, s.Campaign.Name, s.Campaign.Version, st.Files, st.Changed, st.Errors,
			parses, elapsed.Round(time.Millisecond))
		for _, ps := range st.PerPatch {
			fmt.Fprintf(os.Stderr, "%s:   patch %s: %d skipped by prefilter, %d cached, %d matched (%d matches), %d changed, %d functions matched, %d functions cached, %d demoted, %d warnings\n",
				s.Tool, ps.Patch, ps.Skipped, ps.Cached, ps.Matched, ps.Matches, ps.Changed,
				ps.FuncsMatched, ps.FuncsCached, ps.Demoted, ps.Warnings)
		}
	}
	if s.Profile {
		fmt.Fprint(os.Stderr, tracer.Profile().Format())
	}
	if s.TracePath != "" {
		if err := cliutil.WriteTrace(s.TracePath, tracer); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", s.Tool, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "%s: trace written to %s\n", s.Tool, s.TracePath)
	}
	return code
}

// emit writes or prints one changed file. src may be "" when ready is the
// precomputed unified diff; legacy callers pass src and let emit diff.
func emit(s Spec, path, src, out, ready string) int {
	if ready == "" && out == src {
		return 0
	}
	if s.InPlace {
		if err := cliutil.WriteInPlace(path, out); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", s.Tool, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "patched %s\n", path)
		return 0
	}
	if ready == "" {
		ready = diff.Unified("a/"+path, "b/"+path, src, out)
	}
	fmt.Print(ready)
	return 0
}
