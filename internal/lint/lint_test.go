package lint

import (
	"strings"
	"testing"

	"repro/internal/hpc"
	"repro/internal/patchlib"
	"repro/internal/smpl"
)

func parse(t *testing.T, text string) *smpl.Patch {
	t.Helper()
	p, err := smpl.ParsePatch("test.cocci", text)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// codes extracts the issue codes for easy assertions.
func codes(issues []Issue) []string {
	out := make([]string, len(issues))
	for i, is := range issues {
		out[i] = is.Code
	}
	return out
}

func hasCode(issues []Issue, code string) bool {
	for _, is := range issues {
		if is.Code == code {
			return true
		}
	}
	return false
}

func TestUnusedMetavar(t *testing.T) {
	p := parse(t, `@r@
expression E;
expression Dead;
@@
- f(E);
+ g(E);
`)
	issues := Check(p)
	if !hasCode(issues, CodeUnusedMetavar) {
		t.Fatalf("want unused-metavar, got %v", codes(issues))
	}
	for _, is := range issues {
		if is.Code == CodeUnusedMetavar && !strings.Contains(is.Msg, "Dead") {
			t.Fatalf("unused-metavar names the wrong metavariable: %s", is.Msg)
		}
	}
}

func TestUnboundMetavar(t *testing.T) {
	p := parse(t, `@r@
expression E;
expression Ghost;
@@
- f(E);
+ g(E, Ghost);
`)
	issues := Check(p)
	if !hasCode(issues, CodeUnboundMetavar) {
		t.Fatalf("want unbound-metavar, got %v", codes(issues))
	}
}

// A metavariable referenced only by a check message still needs a binding.
func TestUnboundMetavarInCheckMsg(t *testing.T) {
	p := parse(t, `// gocci:check id=c severity=warning msg="saw Ghost here"
@r@
expression E;
expression Ghost;
@@
* f(E);
`)
	if !hasCode(Check(p), CodeUnboundMetavar) {
		t.Fatal("check-msg-only metavariable not reported as unbindable")
	}
}

// Inherited and position metavariables are bindable by other means and must
// not be reported; a used one produces no metavar issues at all.
func TestMetavarCleanCases(t *testing.T) {
	p := parse(t, `@a@
expression E;
identifier fn = {f};
position p;
@@
* fn@p(E);

@b@
expression a.E;
@@
- g(E);
+ h(E);
`)
	for _, is := range Check(p) {
		if is.Code == CodeUnusedMetavar || is.Code == CodeUnboundMetavar {
			t.Fatalf("clean patch reported %v", is)
		}
	}
}

func TestUnreachableRule(t *testing.T) {
	p := parse(t, `@a depends on nosuchrule@
expression E;
@@
- f(E);
+ g(E);

@b depends on a@
expression E;
@@
- h(E);
+ k(E);
`)
	issues := Check(p)
	n := 0
	for _, is := range issues {
		if is.Code == CodeUnreachableRule {
			n++
		}
	}
	// a is unreachable (unknown name), and the chain kills b too.
	if n != 2 {
		t.Fatalf("want 2 unreachable rules, got %d in %v", n, issues)
	}
}

func TestReachableViaVirtual(t *testing.T) {
	p := parse(t, `virtual patch;

@a depends on patch@
expression E;
@@
- f(E);
+ g(E);
`)
	if hasCode(Check(p), CodeUnreachableRule) {
		t.Fatal("virtual-gated rule reported unreachable")
	}
}

func TestShadowedBranch(t *testing.T) {
	p := parse(t, `@r@
expression E;
@@
(
- f(E);
|
- f(x);
)
+ g();
`)
	if !hasCode(Check(p), CodeShadowedBranch) {
		t.Fatalf("f(E) | f(x): second branch not reported shadowed; got %v", codes(Check(p)))
	}
	// The reverse order is fine: the specific branch is tried first.
	q := parse(t, `@r@
expression E;
@@
(
- f(x);
|
- f(E);
)
+ g();
`)
	if hasCode(Check(q), CodeShadowedBranch) {
		t.Fatal("f(x) | f(E) wrongly reported shadowed")
	}
}

func TestUnprunableRule(t *testing.T) {
	// A bare metavariable assignment has no literal atoms at all.
	p := parse(t, `@r@
expression E1, E2;
@@
- E1 = E2;
+ E2 = E1;
`)
	if !hasCode(Check(p), CodeUnprunableRule) {
		t.Fatalf("atom-free rule not reported unprunable; got %v", codes(Check(p)))
	}
	q := parse(t, `@r@
expression E;
@@
- f(E);
+ g(E);
`)
	if hasCode(Check(q), CodeUnprunableRule) {
		t.Fatal("rule with literal f reported unprunable")
	}
}

// TestShippedPatchesVet runs the linter over every patch the repo ships —
// the patchlib experiments and all HPC campaign members. Shipped patches
// must parse and stay free of dead-rule classes (unreachable rules,
// shadowed branches, unusable metavariables); prefilter-unprunable rules
// are tolerated (some shipped rules legitimately match atom-free shapes)
// but everything else is a regression.
func TestShippedPatchesVet(t *testing.T) {
	type shipped struct{ name, text string }
	var all []shipped
	for _, e := range patchlib.Experiments() {
		all = append(all, shipped{e.ID + ".cocci", e.Patch})
	}
	for _, c := range hpc.Campaigns() {
		for _, n := range c.PatchNames() {
			all = append(all, shipped{c.Name + "/" + n, c.PatchText(n)})
		}
	}
	if len(all) < 10 {
		t.Fatalf("expected the shipped patch set, found only %d patches", len(all))
	}
	for _, s := range all {
		p, err := smpl.ParsePatch(s.name, s.text)
		if err != nil {
			t.Errorf("%s: does not parse: %v", s.name, err)
			continue
		}
		for _, is := range Check(p) {
			if is.Code == CodeUnprunableRule {
				t.Logf("note: %s", is)
				continue
			}
			t.Errorf("shipped patch has vet issue: %s", is)
		}
	}
}
