// Package lint statically checks semantic patches: the analyses behind
// `gocci vet`. Everything here reasons about the patch alone, never about
// any source corpus, so a vet run is instant and exact. Four families:
//
//   - metavariables declared but never used, and metavariables used only in
//     added code or check messages where they can never receive a binding;
//   - rules unreachable through their `depends on` chains (a dependency
//     naming no earlier rule, a contradiction, or a chain through another
//     unreachable rule);
//   - disjunction branches shadowed by an earlier branch that matches
//     everything they do, so they can never be taken;
//   - rules with an empty required-atom set, which the batch prefilter must
//     treat as always-maybe (internal/index can never skip a file for them).
//
// Every finding is advisory: a patch with issues still runs. The point is
// to catch dead weight before a campaign ships — exactly the rules
// `gocci --stats` would later report as "never fired".
package lint

import (
	"fmt"
	"regexp"
	"strings"

	"repro/internal/cast"
	"repro/internal/index"
	"repro/internal/smpl"
)

// Issue codes.
const (
	CodeUnusedMetavar   = "unused-metavar"   // declared, referenced nowhere
	CodeUnboundMetavar  = "unbound-metavar"  // used only where it cannot bind
	CodeUnreachableRule = "unreachable-rule" // depends-on can never hold
	CodeShadowedBranch  = "shadowed-branch"  // disjunction branch dead
	CodeUnprunableRule  = "unprunable-rule"  // empty required-atom set
)

// Issue is one vet finding about a patch.
type Issue struct {
	Patch string // patch name (file name as parsed)
	Rule  string // rule the issue is about
	Code  string // one of the Code* constants
	Msg   string
}

func (i Issue) String() string {
	return fmt.Sprintf("%s: rule %s: %s: %s", i.Patch, i.Rule, i.Code, i.Msg)
}

// Check runs every analysis over the patch. Issues come out grouped by
// analysis, each in rule order — deterministic for a given patch text.
func Check(p *smpl.Patch) []Issue {
	var issues []Issue
	issues = append(issues, checkMetavars(p)...)
	issues = append(issues, checkReachability(p)...)
	issues = append(issues, checkDisjunctions(p)...)
	issues = append(issues, checkPrunability(p)...)
	return issues
}

// checkMetavars flags declarations that are never referenced, and
// references that can never be bound: a non-inherited, non-fresh
// metavariable appearing only on plus lines or in a check message has no
// match-side occurrence to bind it, so its uses would emit the bare name.
func checkMetavars(p *smpl.Patch) []Issue {
	// usedRemote[rule][name]: a later rule inherits the metavariable
	// (`expression r.E;`) or a script rule reads it (`e << r.E;`).
	usedRemote := map[string]map[string]bool{}
	mark := func(rule, name string) {
		if rule == "" || name == "" {
			return
		}
		m := usedRemote[rule]
		if m == nil {
			m = map[string]bool{}
			usedRemote[rule] = m
		}
		m[name] = true
	}
	for _, r := range p.Rules {
		for _, md := range r.Metas {
			if md.FromRule != "" {
				name := md.RemoteName
				if name == "" {
					name = md.Name
				}
				mark(md.FromRule, name)
			}
		}
		for _, in := range r.Inputs {
			mark(in.Rule, in.Remote)
		}
	}

	var issues []Issue
	for _, r := range p.Rules {
		if r.Kind != smpl.MatchRule || r.Pattern == nil {
			continue
		}
		// Words on the match side (context, minus, and star lines) — any
		// occurrence there binds the metavariable. Tokens are word-scanned
		// rather than taken whole because preprocessor lines (`#pragma acc
		// pi`) lex as one token whose text embeds metavariable references.
		matchWords := map[string]bool{}
		for _, t := range r.Pattern.Toks.Tokens {
			matchWords[t.Text] = true
			for w := range index.ScanWords(t.Text) {
				matchWords[w] = true
			}
		}
		// Words on the render side (plus lines) and in the check message —
		// uses that need a binding but cannot create one.
		plusWords := map[string]bool{}
		for _, blk := range r.Pattern.PlusBlocks {
			for _, line := range blk.Text {
				for w := range index.ScanWords(line) {
					plusWords[w] = true
				}
			}
		}
		msgWords := map[string]bool{}
		if r.Check != nil {
			msgWords = index.ScanWords(r.Check.Msg)
		}
		// Fresh-identifier seeds reference other metavariables of the rule.
		freshRef := map[string]bool{}
		for _, md := range r.Metas {
			for _, fp := range md.Fresh {
				if fp.Ref != "" {
					freshRef[fp.Ref] = true
				}
			}
		}
		for _, md := range r.Metas {
			name := md.Name
			// A position metavariable is used by attachment (`f@p(...)`);
			// the @ sigil keeps it out of the plain word scans.
			attached := md.Kind == cast.MetaPosKind &&
				regexp.MustCompile(`@`+regexp.QuoteMeta(name)+`\b`).MatchString(r.Body)
			usedMatch := matchWords[name] || attached
			usedRender := plusWords[name] || msgWords[name] || freshRef[name]
			usedLater := usedRemote[r.Name][name]
			switch {
			case !usedMatch && !usedRender && !usedLater:
				issues = append(issues, Issue{Patch: p.Name, Rule: r.Name, Code: CodeUnusedMetavar,
					Msg: fmt.Sprintf("%s metavariable %s is declared but never used", md.Kind, name)})
			case !usedMatch && md.FromRule == "" && md.Kind != cast.MetaFreshIdentKind &&
				md.Kind != cast.MetaPosKind:
				issues = append(issues, Issue{Patch: p.Name, Rule: r.Name, Code: CodeUnboundMetavar,
					Msg: fmt.Sprintf("%s metavariable %s is used only in added code or messages; nothing on the match side can bind it", md.Kind, name)})
			}
		}
	}
	return issues
}

// tri mirrors the prefilter's three-valued truth for reachability.
type tri uint8

const (
	triNo tri = iota
	triMaybe
	triYes
)

// checkReachability walks the rules in engine order, tracking whether each
// could possibly fire. Virtuals are maybe (the caller picks the defines); a
// dependency on a name no earlier match or script rule carries is no, as in
// the engine's Matched map. A rule whose dependency evaluates to no can
// never run — and stays no for everything downstream, so one typo surfaces
// the whole dead chain.
func checkReachability(p *smpl.Patch) []Issue {
	fired := map[string]tri{}
	for _, v := range p.Virtuals {
		fired[v] = triMaybe
	}
	var issues []Issue
	for _, r := range p.Rules {
		if r.Kind != smpl.MatchRule && r.Kind != smpl.ScriptRule {
			continue
		}
		v := evalDep(r.Depends, fired)
		if v != triNo && r.Kind == smpl.ScriptRule {
			// A script rule additionally needs every input binding's source
			// rule to have possibly fired.
			for _, in := range r.Inputs {
				if fired[in.Rule] == triNo {
					v = triNo
					issues = append(issues, Issue{Patch: p.Name, Rule: r.Name, Code: CodeUnreachableRule,
						Msg: fmt.Sprintf("input %s << %s.%s reads a rule that can never fire", in.Local, in.Rule, in.Remote)})
					break
				}
			}
		} else if v == triNo {
			issues = append(issues, Issue{Patch: p.Name, Rule: r.Name, Code: CodeUnreachableRule,
				Msg: "its depends-on expression can never hold (it names no reachable earlier rule or defined virtual)"})
		}
		if r.Name != "" && v > fired[r.Name] {
			fired[r.Name] = v
		}
	}
	return issues
}

// evalDep is three-valued dependency evaluation; names absent from fired
// are no, exactly like the engine's Matched map.
func evalDep(d *smpl.DepExpr, fired map[string]tri) tri {
	if d == nil {
		return triYes
	}
	if len(d.And) > 0 {
		v := triYes
		for _, c := range d.And {
			if cv := evalDep(c, fired); cv < v {
				v = cv
			}
		}
		return v
	}
	if len(d.Or) > 0 {
		v := triNo
		for _, c := range d.Or {
			if cv := evalDep(c, fired); cv > v {
				v = cv
			}
		}
		return v
	}
	v := fired[d.Name]
	if d.Not {
		return triYes - v
	}
	return v
}

// branchTok is one normalized branch token for shadow comparison: either a
// literal text or a metavariable wildcard class.
type branchTok struct {
	text  string
	class cast.MetaKind // meaningful only when meta is set
	meta  bool
}

// checkDisjunctions finds dead disjunction branches. The matcher tries
// branches in order and commits to the first that matches, so a branch an
// earlier branch fully generalizes is unreachable. Detection is
// conservative and token-shaped: equal length, and at every position the
// earlier token equals the later one or is a metavariable that matches any
// single token of the later one's class.
func checkDisjunctions(p *smpl.Patch) []Issue {
	var issues []Issue
	for _, r := range p.Rules {
		if r.Kind != smpl.MatchRule || r.Pattern == nil {
			continue
		}
		metas := smpl.NewMetaTable(r.Metas)
		toks := r.Pattern.Toks.Tokens
		norm := func(first, last int) []branchTok {
			if first < 0 || last >= len(toks) || first > last {
				return nil
			}
			out := make([]branchTok, 0, last-first+1)
			for i := first; i <= last; i++ {
				t := toks[i]
				if k, ok := metas.Lookup(t.Text); ok {
					out = append(out, branchTok{text: t.Text, class: k, meta: true})
					continue
				}
				out = append(out, branchTok{text: t.Text})
			}
			return out
		}
		report := func(n cast.Node, branches [][]branchTok) {
			for j := 1; j < len(branches); j++ {
				for i := 0; i < j; i++ {
					if subsumes(branches[i], branches[j]) {
						first, _ := n.Span()
						line := 0
						if first >= 0 && first < len(toks) {
							line = toks[first].Pos.Line
						}
						issues = append(issues, Issue{Patch: p.Name, Rule: r.Name, Code: CodeShadowedBranch,
							Msg: fmt.Sprintf("disjunction at body line %d: branch %d is shadowed by branch %d and can never match", line, j+1, i+1)})
						break
					}
				}
			}
		}
		visit := func(n cast.Node) bool {
			switch x := n.(type) {
			case *cast.DisjExpr:
				var bs [][]branchTok
				for _, b := range x.Branches {
					f, l := b.Span()
					bs = append(bs, norm(f, l))
				}
				report(x, bs)
			case *cast.DisjStmt:
				var bs [][]branchTok
				for _, stmts := range x.Branches {
					if len(stmts) == 0 {
						bs = append(bs, nil)
						continue
					}
					f, _ := stmts[0].Span()
					_, l := stmts[len(stmts)-1].Span()
					bs = append(bs, norm(f, l))
				}
				report(x, bs)
			}
			return true
		}
		switch r.Pattern.Kind {
		case smpl.ExprPattern:
			cast.Walk(r.Pattern.Expr, visit)
		case smpl.StmtSeqPattern:
			for _, s := range r.Pattern.Stmts {
				cast.Walk(s, visit)
			}
		case smpl.DeclPattern:
			for _, d := range r.Pattern.Decls {
				cast.Walk(d, visit)
			}
		}
	}
	return issues
}

// subsumes reports whether branch a matches everything branch b does, token
// by token. Empty branches never participate (span extraction failed).
func subsumes(a, b []branchTok) bool {
	if len(a) == 0 || len(b) == 0 || len(a) != len(b) {
		return false
	}
	for i := range a {
		if generalizes(a[i], b[i]) {
			continue
		}
		return false
	}
	return true
}

// generalizes reports whether one normalized token of an earlier branch
// covers the corresponding token of a later branch.
func generalizes(a, b branchTok) bool {
	if !a.meta {
		return !b.meta && a.text == b.text
	}
	switch a.class {
	case cast.MetaExprKind:
		// An expression metavariable matches any single-token expression:
		// identifiers, constants, strings, and any metavariable of those
		// classes.
		if b.meta {
			switch b.class {
			case cast.MetaExprKind, cast.MetaIdentKind, cast.MetaConstKind, cast.MetaSymbolKind:
				return true
			}
			return false
		}
		return isIdentTok(b.text) || isConstTok(b.text) || strings.HasPrefix(b.text, `"`)
	case cast.MetaIdentKind:
		if b.meta {
			return b.class == cast.MetaIdentKind || b.class == cast.MetaSymbolKind
		}
		return isIdentTok(b.text)
	case cast.MetaConstKind:
		if b.meta {
			return b.class == cast.MetaConstKind
		}
		return isConstTok(b.text)
	}
	// Other metavariable classes (types, statements, lists) only cover an
	// identical metavariable token.
	return b.meta && b.class == a.class && b.text == a.text
}

// isIdentTok reports an identifier-shaped token.
func isIdentTok(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

// isConstTok reports a numeric-constant-shaped token.
func isConstTok(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	return '0' <= c && c <= '9'
}

// checkPrunability reports rules the required-atom prefilter can never use
// to skip a file, reusing the very index the batch engine builds so the
// diagnosis cannot drift from the real filter.
func checkPrunability(p *smpl.Patch) []Issue {
	var issues []Issue
	for _, name := range index.Build(p).UnprunableRules() {
		issues = append(issues, Issue{Patch: p.Name, Rule: name, Code: CodeUnprunableRule,
			Msg: "no required literal atoms: the prefilter must parse and match every file for this rule"})
	}
	return issues
}
