// Benchmarks for function-granular incrementality. These run against an
// in-memory store — the configuration a resident session (internal/serve)
// actually uses for warm applies — so they measure matching, not disk
// round-trips. scripts/bench_incremental.sh renders them into
// BENCH_incremental.json.

package batch

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/smpl"
)

// benchDotsPatch anchors two statements across dots — matched per function
// by the CFG path engine, the paper's expensive-match shape.
const benchDotsPatch = `@r@
expression E;
@@
- prepare(E);
+ prepare_v2(E);
... when != giveup(E)
    when != reset(E)
    when != retry(E)
    when != checkpoint(E)
    when != abort_run()
- commit(E);
+ commit_v2(E);
`

// benchKernel renders a kernel file of nFns functions; edit selects the
// per-run constant of one function so consecutive runs differ in exactly
// one function's content.
func benchKernel(nFns, stmts, edit int) string {
	var sb strings.Builder
	sb.WriteString("#include <hpc.h>\n\n")
	for f := 0; f < nFns; f++ {
		c := f
		if f == nFns/2 {
			c = 1000 + edit
		}
		fmt.Fprintf(&sb, "void stage_%d(int x)\n{\n\tprepare(x);\n", f)
		for s := 0; s < stmts; s++ {
			// Branchy bodies: the dots constraint is verified across every
			// prepare-to-commit path, so match cost grows with the CFG, the
			// shape the per-function cache pays off on.
			fmt.Fprintf(&sb, "\tif (x > %d) { work_%d(x, %d); } else { idle_%d(x); }\n", s, s, c*10+s, s)
		}
		sb.WriteString("\tcommit(x);\n}\n\n")
	}
	return sb.String()
}

// BenchmarkWarmOneFunctionEdit measures a warm apply after editing one of
// ten functions: the file-granular baseline misses the file-level result
// cache (the content changed) and re-matches all ten functions; the
// function-granular path replays nine segments and re-matches exactly one.
// The ratio is the per-edit win a resident session sees (acceptance floor
// in BENCH_incremental.json: 3x).
func BenchmarkWarmOneFunctionEdit(b *testing.B) {
	patch := parseBenchPatch(b, benchDotsPatch)
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"function-granular", Options{Workers: 1}},
		{"file-granular", Options{Workers: 1, NoFuncCache: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			// Bounded LRU: every iteration writes records for fresh content,
			// so an unbounded store would grow the GC scan set and skew
			// later iterations.
			opts := mode.opts
			opts.Store = cache.NewMemory(nil, 512)
			r := New(patch, opts)
			prime := []core.SourceFile{{Name: "k.c", Src: benchKernel(10, 16, -1)}}
			runBench(b, r, prime, -1, -1)
			b.SetBytes(int64(len(prime[0].Src)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				files := []core.SourceFile{{Name: "k.c", Src: benchKernel(10, 16, i)}}
				if mode.opts.NoFuncCache {
					runBench(b, r, files, 0, 0)
				} else {
					runBench(b, r, files, 1, 9)
				}
			}
		})
	}
}

// BenchmarkParallelFunctionMatch measures intra-file parallel matching: one
// many-function file, no cache, the function path fanning segments out to
// GOMAXPROCS goroutines against the sequential file-level matcher.
func BenchmarkParallelFunctionMatch(b *testing.B) {
	patch := parseBenchPatch(b, benchDotsPatch)
	files := []core.SourceFile{{Name: "p.c", Src: benchKernel(64, 8, -1)}}
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"parallel-functions", Options{Workers: 1}},
		{"sequential-file", Options{Workers: 1, NoFuncCache: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			r := New(patch, mode.opts)
			b.SetBytes(int64(len(files[0].Src)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runBench(b, r, files, -1, -1)
			}
		})
	}
}

func parseBenchPatch(b *testing.B, text string) *smpl.Patch {
	b.Helper()
	p, err := smpl.ParsePatch("bench.cocci", text)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// runBench runs one sweep and asserts it did real work (never a file-level
// cache replay) and, when wantMatched >= 0, that the function counters are
// exactly the incremental contract.
func runBench(b *testing.B, r *Runner, files []core.SourceFile, wantMatched, wantCached int) {
	b.Helper()
	r.Run(files, func(fr FileResult) bool {
		if fr.Err != nil {
			b.Fatal(fr.Err)
		}
		if fr.Cached || !fr.Changed() {
			b.Fatalf("benchmark iteration replayed at file level: %+v", fr)
		}
		if wantMatched >= 0 && (fr.FuncsMatched != wantMatched || fr.FuncsCached != wantCached) {
			b.Fatalf("matched=%d cached=%d, want %d/%d", fr.FuncsMatched, fr.FuncsCached, wantMatched, wantCached)
		}
		return true
	})
}
