// Integrity tests for the tracing thread through the batch pipeline: spans
// must nest cleanly per track, per-stage self-times must account for the
// sweep's wall time, and the rendered Chrome trace JSON must keep its
// schema. BenchmarkTraceOverhead pins the cost of both states of the
// Options.Tracer switch.

package batch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/smpl"
)

// traceFixture is a small mixed corpus: half the files match the dots
// patch, half are prefilter-skippable, so a traced sweep exercises read,
// hash, prefilter (both outcomes), parse, match, render, and cache spans.
func traceFixture(n int) []core.SourceFile {
	files := make([]core.SourceFile, n)
	for i := range files {
		if i%2 == 0 {
			files[i] = core.SourceFile{Name: fmt.Sprintf("m%d.c", i), Src: benchKernel(4, 6, i)}
		} else {
			files[i] = core.SourceFile{Name: fmt.Sprintf("s%d.c", i),
				Src: fmt.Sprintf("void idle_%d(int x)\n{\n\tspin(x, %d);\n}\n", i, i)}
		}
	}
	return files
}

func tracePatch(t testing.TB) *smpl.Patch {
	t.Helper()
	p, err := smpl.ParsePatch("bench.cocci", benchDotsPatch)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestTraceSelfTimeCoversWall runs a strictly single-threaded sweep
// (Workers=1, no segment fan-out) and requires the per-stage self-times to
// sum to the traced wall time within 5%: the worker umbrella span makes
// pool glue and idle time attributable, so nothing the sweep spent is
// missing from the profile.
func TestTraceSelfTimeCoversWall(t *testing.T) {
	tr := obs.New()
	r := New(tracePatch(t), Options{Workers: 1, NoFuncCache: true, Tracer: tr,
		Store: cache.NewMemory(nil, 256)})
	r.Run(traceFixture(8), func(fr FileResult) bool {
		if fr.Err != nil {
			t.Fatal(fr.Err)
		}
		return true
	})
	prof := tr.Profile()
	if prof.Spans == 0 || prof.Wall <= 0 {
		t.Fatalf("empty profile: %+v", prof)
	}
	var self time.Duration
	for _, ss := range prof.Stages {
		if ss.Self < 0 {
			t.Errorf("stage %s has negative self-time %v", ss.Stage, ss.Self)
		}
		self += ss.Self
	}
	ratio := float64(self) / float64(prof.Wall)
	if ratio < 0.95 || ratio > 1.0001 {
		t.Errorf("sum of stage self-times is %.1f%% of wall (%v of %v), want within [95%%, 100%%]",
			100*ratio, self, prof.Wall)
	}
	if prof.PrefilterSkips == 0 {
		t.Errorf("fixture has unmatched files but no prefilter skips: %+v", prof)
	}
	var matchTotal time.Duration
	for _, rs := range prof.Rules {
		matchTotal += rs.Total
	}
	if matchTotal == 0 {
		t.Error("no match time attributed to any rule")
	}
}

// chromeTraceFile mirrors the trace-event JSON container; unknown fields
// are schema drift and fail the decode.
type chromeTraceFile struct {
	DisplayTimeUnit string             `json:"displayTimeUnit"`
	TraceEvents     []chromeTraceEvent `json:"traceEvents"`
}

type chromeTraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts,omitempty"`
	Dur  float64        `json:"dur,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// decodeTrace renders tr and decodes it strictly.
func decodeTrace(t *testing.T, tr *obs.Tracer) chromeTraceFile {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	var out chromeTraceFile
	if err := dec.Decode(&out); err != nil {
		t.Fatalf("trace JSON schema drift: %v\n%s", err, buf.String())
	}
	return out
}

// TestTraceSpansNestPerTrack sweeps with the function-granular fan-out
// enabled (forked seg tracks) and checks the trace-event invariants: every
// track's complete events either nest or are disjoint — a partial overlap
// would render as garbage in Perfetto — and every track carries exactly one
// thread_name metadata event.
func TestTraceSpansNestPerTrack(t *testing.T) {
	tr := obs.New()
	r := New(tracePatch(t), Options{Workers: 2, Tracer: tr, Store: cache.NewMemory(nil, 256)})
	r.Run(traceFixture(8), func(fr FileResult) bool {
		if fr.Err != nil {
			t.Fatal(fr.Err)
		}
		return true
	})
	trace := decodeTrace(t, tr)
	if trace.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", trace.DisplayTimeUnit)
	}
	byTid := map[int][]chromeTraceEvent{}
	names := map[int]int{}
	for _, ev := range trace.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name != "thread_name" {
				t.Errorf("unexpected metadata event %q", ev.Name)
			}
			names[ev.Tid]++
		case "X":
			if ev.Cat != "stage" || ev.Dur < 0 {
				t.Errorf("bad complete event: %+v", ev)
			}
			byTid[ev.Tid] = append(byTid[ev.Tid], ev)
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	for tid, evs := range byTid {
		if names[tid] != 1 {
			t.Errorf("track %d has %d thread_name events, want 1", tid, names[tid])
		}
		// Events sorted by start (longer first on ties) must form a proper
		// nesting: each event either starts after the enclosing one ends or
		// ends within it. Timestamps are µs with sub-µs fractions; allow a
		// rounding hair.
		const eps = 0.002
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].Ts != evs[j].Ts {
				return evs[i].Ts < evs[j].Ts
			}
			return evs[i].Dur > evs[j].Dur
		})
		var stack []chromeTraceEvent
		for _, ev := range evs {
			for len(stack) > 0 && stack[len(stack)-1].Ts+stack[len(stack)-1].Dur <= ev.Ts+eps {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				if ev.Ts+ev.Dur > top.Ts+top.Dur+eps {
					t.Errorf("track %d: span %s [%.3f,%.3f] partially overlaps %s [%.3f,%.3f]",
						tid, ev.Name, ev.Ts, ev.Ts+ev.Dur, top.Name, top.Ts, top.Ts+top.Dur)
				}
			}
			stack = append(stack, ev)
		}
	}
	// Rule attribution must survive the render: at least one match span
	// carries the rule name from the patch.
	ruleSeen := false
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "X" && ev.Name == string(obs.StageMatch) {
			if r, ok := ev.Args["rule"].(string); ok && r != "" {
				ruleSeen = true
			}
		}
	}
	if !ruleSeen {
		t.Error("no match span carries a rule arg")
	}
}

// TestTraceCampaignStates traces a campaign over caller-managed states via
// the per-request tracer entry point and checks the request is attributed:
// both member patches appear as spans, and a second traced run on a fresh
// tracer replays from the cache with cache-read hits in its profile.
func TestTraceCampaignStates(t *testing.T) {
	other, err := smpl.ParsePatch("other.cocci", "@s@\nexpression E;\n@@\n- spin(E)\n+ spin_v2(E)\n")
	if err != nil {
		t.Fatal(err)
	}
	camp := NewCampaign([]*smpl.Patch{tracePatch(t), other},
		Options{Workers: 1, Store: cache.NewMemory(nil, 256)})
	states := func() []*FileState {
		files := traceFixture(4)
		sts := make([]*FileState, len(files))
		for i, f := range files {
			sts[i] = &FileState{Name: f.Name, Src: f.Src, Loaded: true}
		}
		return sts
	}

	tr := obs.New()
	if _, err := camp.CollectStatesT(states(), tr, nil); err != nil {
		t.Fatal(err)
	}
	cold := tr.Profile()
	if cold.Spans == 0 {
		t.Fatal("cold campaign run produced no spans")
	}

	warm := obs.New()
	if _, err := camp.CollectStatesT(states(), warm, nil); err != nil {
		t.Fatal(err)
	}
	wp := warm.Profile()
	if wp.FileCacheHits == 0 {
		t.Errorf("warm campaign run shows no file-cache hits: %+v", wp)
	}
}

// BenchmarkTraceOverhead is BenchmarkWarmOneFunctionEdit's warm
// function-granular loop under both states of the Options.Tracer switch.
// "disabled" is the default nil sink — the cost of the pointer checks the
// instrumentation leaves in the hot path (acceptance: <2% over the
// untouched baseline) — and "enabled" is the full recording cost.
func BenchmarkTraceOverhead(b *testing.B) {
	patch := parseBenchPatch(b, benchDotsPatch)
	for _, mode := range []struct {
		name   string
		traced bool
	}{
		{"disabled", false},
		{"enabled", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opts := Options{Workers: 1, Store: cache.NewMemory(nil, 512)}
			if mode.traced {
				opts.Tracer = obs.New()
			}
			r := New(patch, opts)
			prime := []core.SourceFile{{Name: "k.c", Src: benchKernel(10, 16, -1)}}
			runBench(b, r, prime, -1, -1)
			b.SetBytes(int64(len(prime[0].Src)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				files := []core.SourceFile{{Name: "k.c", Src: benchKernel(10, 16, i)}}
				runBench(b, r, files, 1, 9)
			}
		})
	}
}
