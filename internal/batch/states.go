// Request-scoped campaign runs over caller-managed file state. A resident
// server (internal/serve) keeps content hashes, word sets, and parse trees
// warm between requests; FileState is how it hands those artifacts to one
// campaign sweep and harvests what the sweep had to derive. Everything is
// lazy: a file whose outcome replays entirely from the result cache is
// never even read, one whose words rule out every patch is read but never
// parsed, and only files a patch actually runs on cost a parse.

package batch

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cast"
	"repro/internal/core"
	"repro/internal/cparse"
	"repro/internal/diff"
	"repro/internal/index"
	"repro/internal/obs"
)

// FileState is one corpus file presented to a campaign run, carrying
// whatever input-text artifacts the caller already holds. The run fills in
// (and reports, via ReadInput/ParsedInput) the artifacts it had to derive,
// so a resident caller can keep them warm for the next request. A FileState
// belongs to one run; the pool touches each state from exactly one worker,
// and the caller must not read it until the run returns.
type FileState struct {
	// Name is the file's name, used in results and diffs.
	Name string
	// Src is the input text, valid only when Loaded is set. Callers that
	// already hold the text set both and may omit Read.
	Src    string
	Loaded bool
	// Read fetches the input text on demand. It is called at most once, and
	// only when processing needs the bytes — a fully cache-replayed or
	// prefilter-skipped file may need none.
	Read func() (string, error)
	// Hash is the content hash (cache.HashString) of the input text, "" when
	// unknown. Supplying it lets cache lookups run without reading the file.
	Hash string
	// Parsed is the input text's parse tree, nil when absent. It must have
	// been produced by parsing the text Hash names under the same dialect
	// options as this campaign; the run only reads it.
	Parsed *cast.File

	// ReadInput reports that the run called Read; Src and Loaded now hold
	// the text.
	ReadInput bool
	// ParsedInput reports that the run parsed the input text; Parsed now
	// holds the fresh tree. Re-parses of transformed intermediate text are
	// internal to the engine and not reported here.
	ParsedInput bool
}

// load ensures the input text is resident, fetching it via Read at most
// once.
func (st *FileState) load() error {
	if st.Loaded {
		return nil
	}
	if st.Read == nil {
		st.Loaded = true // no source of text: treat as empty input
		return nil
	}
	src, err := st.Read()
	if err != nil {
		return err
	}
	st.Src, st.Loaded, st.ReadInput = src, true, true
	return nil
}

// RunStates is Run over caller-prepared file states: artifacts present in a
// state are reused instead of re-derived, and each state is updated with
// the input-text artifacts processing produced. Results stream to yield in
// input order exactly as with Run; a state whose outcome is fully replayed
// from the result cache and unchanged is reported with OutputElided set
// instead of paying a read.
func (c *Campaign) RunStates(states []*FileState, yield func(CampaignFileResult) bool) {
	c.run(len(states), c.opts.Tracer, func(i int) *FileState { return states[i] }, yield)
}

// RunStatesT is RunStates tracing into tr instead of Options.Tracer. A
// resident server holds one Campaign for many requests; this is how each
// request gets its own trace without copying the Campaign (it embeds a
// sync.Once) or racing concurrent runs on a shared tracer field. A nil tr
// disables tracing for the run regardless of Options.Tracer.
func (c *Campaign) RunStatesT(states []*FileState, tr *obs.Tracer, yield func(CampaignFileResult) bool) {
	c.run(len(states), tr, func(i int) *FileState { return states[i] }, yield)
}

// CollectStates is Collect over RunStates.
func (c *Campaign) CollectStates(states []*FileState, fn func(CampaignFileResult) error) (CampaignStats, error) {
	return c.collectC(func(yield func(CampaignFileResult) bool) { c.RunStates(states, yield) }, fn)
}

// CollectStatesT is Collect over RunStatesT (per-run tracer).
func (c *Campaign) CollectStatesT(states []*FileState, tr *obs.Tracer, fn func(CampaignFileResult) error) (CampaignStats, error) {
	return c.collectC(func(yield func(CampaignFileResult) bool) { c.RunStatesT(states, tr, yield) }, fn)
}

// processState threads one file through every member patch in order. The
// expensive artifacts — the content hash, the identifier-word set, and the
// parse tree — are derived from the *current* text at most once each,
// seeded from the FileState while the current text is still the input, and
// invalidated together when a member actually changes the text.
func (c *Campaign) processState(engines []*core.Engine, popts cparse.Options, tk *obs.Track, st *FileState, idx int) CampaignFileResult {
	fsp := tk.Start(obs.StageFile).File(st.Name)
	defer fsp.End()
	fr := CampaignFileResult{Index: idx, Name: st.Name}

	// cur* track the file's current text as members transform it. Until the
	// first change they alias the input state; after it, artifacts no
	// longer flow back into st.
	cur := st.Src
	curLoaded := st.Loaded
	curIsInput := true
	curHash := st.Hash
	parsed := st.Parsed
	var words map[string]bool

	fail := func(err error) CampaignFileResult {
		fr.Err = err
		return fr
	}
	ensureCur := func() error {
		if curLoaded {
			return nil
		}
		// Only reachable while cur is the input: transformed text is always
		// resident.
		sp := tk.Start(obs.StageRead).File(st.Name)
		err := st.load()
		sp.End()
		if err != nil {
			return err
		}
		cur, curLoaded = st.Src, true
		return nil
	}
	ensureHash := func() error {
		if curHash != "" {
			return nil
		}
		if err := ensureCur(); err != nil {
			return err
		}
		sp := tk.Start(obs.StageHash).File(st.Name)
		curHash = cache.HashString(cur)
		sp.End()
		if curIsInput {
			st.Hash = curHash
		}
		return nil
	}
	// ensureWords answers the prefilter, from the cache store when one is
	// open (priming it when not).
	ensureWords := func() error {
		if words != nil {
			return nil
		}
		if c.store != nil {
			if err := ensureHash(); err != nil {
				return err
			}
			if w, ok := c.store.Words(curHash); ok {
				words = w
				return nil
			}
		}
		if err := ensureCur(); err != nil {
			return err
		}
		// Decision-free scan span: the per-patch skip/pass decision spans
		// follow, but the word-set derivation is paid once per content.
		sp := tk.Start(obs.StagePrefilter).File(st.Name)
		words = index.ScanWords(cur)
		if c.store != nil {
			c.store.PutWords(curHash, words)
		}
		sp.End()
		return nil
	}

	for i, cp := range c.patches {
		o := PatchOutcome{Patch: cp.patch.Name}
		if c.resultCacheable() {
			if err := ensureHash(); err != nil {
				return fail(err)
			}
			csp := tk.Start(obs.StageCacheRead).File(st.Name)
			rec, hit := c.store.Result(cp.key, curHash)
			if hit {
				csp.Outcome(obs.OutcomeHit)
			} else {
				csp.Outcome(obs.OutcomeMiss)
			}
			csp.End()
			if hit {
				o.Cached = true
				// Normalize the JSON omitempty round trip: cold runs always
				// produce a non-nil map, so replays must too.
				o.MatchCount = rec.MatchCount
				if o.MatchCount == nil {
					o.MatchCount = map[string]int{}
				}
				o.EnvsTruncated = rec.EnvsTruncated
				o.Warnings = loadWarnings(rec.Warnings)
				o.Demoted = rec.Demoted
				o.Findings = loadFindings(rec.Findings)
				if rec.Changed {
					o.Changed = true
					cur, curLoaded, curIsInput = rec.Output, true, false
					curHash, words, parsed = "", nil, nil
				}
				fr.Patches = append(fr.Patches, o)
				continue
			}
		}
		if cp.filter != nil {
			if err := ensureWords(); err != nil {
				return fail(err)
			}
			psp := tk.Start(obs.StagePrefilter).File(st.Name)
			pass := cp.filter.MayMatchWords(words)
			if pass {
				psp.Outcome(obs.OutcomePass)
			} else {
				psp.Outcome(obs.OutcomeSkip)
			}
			psp.End()
			if !pass {
				o.Skipped = true
				o.MatchCount = map[string]int{}
				c.put(tk, cp, curHash, &cache.Record{Skipped: true})
				fr.Patches = append(fr.Patches, o)
				continue
			}
		}
		if err := ensureCur(); err != nil {
			return fail(err)
		}
		if parsed == nil {
			sp := tk.Start(obs.StageParse).File(st.Name)
			cf, err := cparse.Parse(st.Name, cur, popts)
			sp.End()
			fr.Parsed = true
			if err != nil {
				// No later patch could parse the file either; report once.
				return fail(fmt.Errorf("parsing %s: %w", st.Name, err))
			}
			parsed = cf
			if curIsInput {
				st.Parsed, st.ParsedInput = cf, true
			}
		}
		if cp.fn != nil {
			var fnStore cache.Store
			fnKey := ""
			if c.resultCacheable() {
				fnStore, fnKey = c.store, cp.key
			}
			if out, ok := cp.fn.apply(engines[i], tk, st.Name, cur, parsed, fnStore, fnKey); ok {
				o.MatchCount = out.MatchCount
				o.Changed = out.Changed
				o.FuncsMatched = out.Matched
				o.FuncsCached = out.Cached
				o.Findings = out.Findings
				rec := &cache.Record{MatchCount: out.MatchCount, Findings: storeFindings(out.Findings)}
				next := out.Output
				if out.Changed {
					rec.Changed = true
					rec.Output = out.Output
					next = c.verifyOutcome(tk, st.Name, cur, out.Output, &o, rec)
				}
				c.put(tk, cp, curHash, rec)
				if o.Changed {
					cur, curLoaded, curIsInput = next, true, false
					curHash, words, parsed = "", nil, nil
				}
				fr.Patches = append(fr.Patches, o)
				continue
			}
		}
		eng := engines[i]
		eng.Reset()
		res, err := eng.RunParsed([]core.ParsedFile{{Name: st.Name, Src: cur, File: parsed}})
		if err != nil {
			return fail(err)
		}
		out := res.Outputs[st.Name]
		o.MatchCount = res.MatchCount
		o.EnvsTruncated = res.EnvsTruncated
		o.Changed = out != cur
		o.Findings = res.Findings
		rec := &cache.Record{MatchCount: res.MatchCount, EnvsTruncated: res.EnvsTruncated, Findings: storeFindings(res.Findings)}
		if o.Changed {
			rec.Changed = true
			rec.Output = out
			out = c.verifyOutcome(tk, st.Name, cur, out, &o, rec)
		}
		c.put(tk, cp, curHash, rec)
		if o.Changed {
			cur, curLoaded, curIsInput = out, true, false
			curHash, words, parsed = "", nil, nil
		}
		fr.Patches = append(fr.Patches, o)
	}
	if curIsInput && !curLoaded {
		// Every member replayed or skipped without needing the bytes: the
		// file is unchanged and was never read.
		fr.OutputElided = true
		return fr
	}
	if err := st.load(); err != nil { // the diff needs the original input
		return fail(err)
	}
	dsp := tk.Start(obs.StageRender).File(st.Name)
	fr.Output = cur
	fr.Diff = diff.Unified("a/"+st.Name, "b/"+st.Name, st.Src, cur)
	dsp.End()
	return fr
}
