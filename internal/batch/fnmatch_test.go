// The function-granular pipeline's differential test suite. Every test here
// compares the incremental path (segmentation, windowed matching, per-segment
// caching, splicing) against the file-level path byte for byte: the pipeline
// is pinned to be a pure optimization, never a semantic change.

package batch

import (
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/smpl"
)

// fnDotsPatch anchors two statements across dots inside one function — the
// CFG dots engine's home turf, still function-local.
const fnDotsPatch = `@r@
expression E;
@@
- prepare(E);
+ prepare_v2(E);
...
- commit(E);
+ commit_v2(E);
`

// fnBuildFile fabricates one file with a header gap, the given function
// bodies, and a trailing comment gap.
func fnBuildFile(name string, bodies []string) core.SourceFile {
	var sb strings.Builder
	sb.WriteString("#include <hpc.h>\n\nstatic int budget = 4;\n\n")
	for i, b := range bodies {
		fmt.Fprintf(&sb, "int step_%d(int x)\n{\n%s\treturn x + %d;\n}\n\n", i, b, i)
	}
	sb.WriteString("/* end of translation unit */\n")
	return core.SourceFile{Name: name, Src: sb.String()}
}

// runAll collects every FileResult of one run.
func runAll(t *testing.T, r *Runner, files []core.SourceFile) []FileResult {
	t.Helper()
	var out []FileResult
	r.Run(files, func(fr FileResult) bool { out = append(out, fr); return true })
	if len(out) != len(files) {
		t.Fatalf("got %d results for %d files", len(out), len(files))
	}
	return out
}

// compareResults asserts two runs are observably identical per file.
func compareResults(t *testing.T, label string, got, want []FileResult) {
	t.Helper()
	for i := range want {
		g, w := got[i], want[i]
		if g.Name != w.Name {
			t.Fatalf("%s: result %d is %s, want %s", label, i, g.Name, w.Name)
		}
		if (g.Err == nil) != (w.Err == nil) {
			t.Errorf("%s: %s: error presence differs: got %v want %v", label, g.Name, g.Err, w.Err)
			continue
		}
		if g.Output != w.Output {
			t.Errorf("%s: %s: output differs\ngot:\n%s\nwant:\n%s", label, g.Name, g.Output, w.Output)
		}
		if g.Diff != w.Diff {
			t.Errorf("%s: %s: diff differs", label, g.Name)
		}
		if g.Matches() != w.Matches() {
			t.Errorf("%s: %s: matches = %d, want %d", label, g.Name, g.Matches(), w.Matches())
		}
	}
}

// TestFunctionCacheParity is the pipeline's headline guarantee: with the
// function cache cold, warm, or disabled — and under either dots engine —
// outputs, diffs, and match counts are byte-identical. The corpus mixes
// multi-function files (matching and not), files without functions, an empty
// file, and a misaligned file the pipeline must refuse.
func TestFunctionCacheParity(t *testing.T) {
	cases := []struct {
		name  string
		patch string
		eopts core.Options
		match string // body line(s) the patch fires on, with one %d constant
		miss  string // body line(s) it cannot fire on
	}{
		{"rename", renamePatch, core.Options{},
			"\told_api(x, %d);\n", "\tother_api(x, %d);\n"},
		{"rename-seqdots", renamePatch, core.Options{SeqDots: true},
			"\told_api(x, %d);\n", "\tother_api(x, %d);\n"},
		{"dots-cfg", fnDotsPatch, core.Options{},
			"\tprepare(x);\n\twork(x, %d);\n\tcommit(x);\n",
			"\twork(x, %d);\n\tcommit(x);\n"},
		{"dots-seq", fnDotsPatch, core.Options{SeqDots: true},
			"\tprepare(x);\n\twork(x, %d);\n\tcommit(x);\n",
			"\twork(x, %d);\n\tcommit(x);\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			build := func(editedConst int) []core.SourceFile {
				var files []core.SourceFile
				for j := 0; j < 4; j++ {
					bodies := make([]string, 5)
					for i := range bodies {
						c := 10*j + i
						if j == 0 && i == 0 {
							c = editedConst
						}
						line := tc.miss
						if (i+j)%2 == 0 {
							line = tc.match
						}
						bodies[i] = fmt.Sprintf(line, c)
					}
					files = append(files, fnBuildFile(fmt.Sprintf("f%d.c", j), bodies))
				}
				return append(files,
					core.SourceFile{Name: "nofuncs.c", Src: "int x;\nextern void f(int);\n"},
					core.SourceFile{Name: "empty.c", Src: ""},
					core.SourceFile{Name: "misaligned.c",
						Src: "int a(void) { return 0; } int b(void) { return 1; }\n"},
				)
			}
			corpusA, corpusB := build(0), build(999) // B edits one function of f0.c

			patch := parsePatch(t, tc.patch)
			base := func(files []core.SourceFile) []FileResult {
				return runAll(t, New(patch, Options{Workers: 4, Engine: tc.eopts, NoFuncCache: true}), files)
			}
			baseA, baseB := base(corpusA), base(corpusB)

			// Function path without any cache store: parallel per-segment
			// matching alone must already be byte-identical.
			plain := runAll(t, New(patch, Options{Workers: 4, Engine: tc.eopts}), corpusA)
			compareResults(t, "no-store", plain, baseA)

			// Cold then warm through a shared store; the warm corpus has one
			// edited function, so the file-level record cannot shortcut it.
			store := cache.NewMemory(nil, 0)
			r := New(patch, Options{Workers: 4, Engine: tc.eopts, Store: store})
			cold := runAll(t, r, corpusA)
			compareResults(t, "cold", cold, baseA)
			warm := runAll(t, r, corpusB)
			compareResults(t, "warm", warm, baseB)

			if eligible := newFnRunner(core.Compile(patch), tc.eopts, nil) != nil; eligible {
				if warm[0].FuncsCached != 4 || warm[0].FuncsMatched != 1 {
					t.Errorf("warm f0.c: matched=%d cached=%d, want 1/4",
						warm[0].FuncsMatched, warm[0].FuncsCached)
				}
			} else if warm[0].FuncsCached != 0 || warm[0].FuncsMatched != 0 {
				t.Errorf("ineligible patch must not report function counters: %+v", warm[0])
			}
		})
	}
}

// TestFunctionCacheFuzzOneEdit mutates one randomly chosen function per
// iteration (deterministic seed) and asserts that the warm pipeline both
// reproduces a from-scratch run byte-exactly and — per the instrumentation —
// re-matches exactly the edited function, replaying every other one.
func TestFunctionCacheFuzzOneEdit(t *testing.T) {
	const k = 6
	rng := rand.New(rand.NewSource(7))
	consts := make([]int, k)
	for i := range consts {
		consts[i] = i
	}
	build := func() []core.SourceFile {
		bodies := make([]string, k)
		for i := range bodies {
			bodies[i] = fmt.Sprintf("\told_api(x, %d);\n", consts[i])
		}
		return []core.SourceFile{fnBuildFile("fuzz.c", bodies)}
	}

	patch := parsePatch(t, renamePatch)
	warm := New(patch, Options{Workers: 4, Store: cache.NewMemory(nil, 0)})
	scratch := New(patch, Options{Workers: 1, NoFuncCache: true})

	cold := runAll(t, warm, build())
	compareResults(t, "cold", cold, runAll(t, scratch, build()))
	if cold[0].FuncsMatched != k || cold[0].FuncsCached != 0 {
		t.Fatalf("cold run: matched=%d cached=%d, want %d/0", cold[0].FuncsMatched, cold[0].FuncsCached, k)
	}

	for iter := 0; iter < 25; iter++ {
		consts[rng.Intn(k)] = 1000 + iter // always-fresh content, one function
		files := build()
		m0, r0 := FuncMatches(), FuncReplays()
		got := runAll(t, warm, files)
		want := runAll(t, scratch, files)
		compareResults(t, fmt.Sprintf("iter %d", iter), got, want)
		if got[0].FuncsMatched != 1 || got[0].FuncsCached != k-1 {
			t.Fatalf("iter %d: matched=%d cached=%d, want 1/%d",
				iter, got[0].FuncsMatched, got[0].FuncsCached, k-1)
		}
		if dm, dr := FuncMatches()-m0, FuncReplays()-r0; dm != 1 || dr != k-1 {
			t.Fatalf("iter %d: instrumentation delta matched=%d replayed=%d, want 1/%d", iter, dm, dr, k-1)
		}
	}
}

// TestFunctionCacheInvalidation pins the invalidation semantics of the
// segment identities: a rename re-matches exactly the renamed function;
// reordering functions, touching only inter-function whitespace, or adding a
// comment between functions are full cache hits; deleting a function replays
// every survivor.
func TestFunctionCacheInvalidation(t *testing.T) {
	fnText := func(name string, c int) string {
		return fmt.Sprintf("int %s(int x)\n{\n\told_api(x, %d);\n\treturn x;\n}\n", name, c)
	}
	mk := func(sep string, funcs ...string) []core.SourceFile {
		src := "#include <hpc.h>\n\n" + strings.Join(funcs, sep) + "\n/* tail */\n"
		return []core.SourceFile{{Name: "inv.c", Src: src}}
	}
	f0, f1, f2, f3 := fnText("step_0", 0), fnText("step_1", 1), fnText("step_2", 2), fnText("step_3", 3)

	patch := parsePatch(t, renamePatch)
	warm := New(patch, Options{Workers: 4, Store: cache.NewMemory(nil, 0)})
	scratch := New(patch, Options{Workers: 1, NoFuncCache: true})

	cold := runAll(t, warm, mk("\n", f0, f1, f2, f3))
	if cold[0].FuncsMatched != 4 {
		t.Fatalf("cold run matched %d functions, want 4", cold[0].FuncsMatched)
	}

	check := func(t *testing.T, files []core.SourceFile, wantMatched, wantCached int) {
		t.Helper()
		got := runAll(t, warm, files)
		compareResults(t, "warm", got, runAll(t, scratch, files))
		if got[0].FuncsMatched != wantMatched || got[0].FuncsCached != wantCached {
			t.Errorf("matched=%d cached=%d, want %d/%d",
				got[0].FuncsMatched, got[0].FuncsCached, wantMatched, wantCached)
		}
	}

	t.Run("rename-invalidates-one", func(t *testing.T) {
		check(t, mk("\n", f0, fnText("step_1_v2", 1), f2, f3), 1, 3)
	})
	t.Run("reorder-full-hit", func(t *testing.T) {
		check(t, mk("\n", f2, f1, f0, f3), 0, 4)
	})
	t.Run("delete-replays-survivors", func(t *testing.T) {
		check(t, mk("\n", f0, f1, f2), 0, 3)
	})
	t.Run("gap-comment-full-hit", func(t *testing.T) {
		check(t, mk("\n/* interlude between kernels */\n", f0, f1, f2, f3), 0, 4)
	})
	t.Run("gap-whitespace-full-hit", func(t *testing.T) {
		check(t, mk("\n\n\n", f0, f1, f2, f3), 0, 4)
	})
}

// TestFunctionCacheCorruptionHeals corrupts every persisted segment and
// file record on disk: the next run must drop them, re-derive everything
// byte-exactly, count the corruption, and leave a healthy cache behind.
func TestFunctionCacheCorruptionHeals(t *testing.T) {
	dir := t.TempDir() + "/cache"
	bodies := []string{"\told_api(x, 0);\n", "\told_api(x, 1);\n", "\told_api(x, 2);\n"}
	files := []core.SourceFile{fnBuildFile("heal.c", bodies)}
	patch := parsePatch(t, renamePatch)
	want := runAll(t, New(patch, Options{Workers: 2, NoFuncCache: true}), files)

	r1 := New(patch, Options{Workers: 2, CacheDir: dir})
	compareResults(t, "cold", runAll(t, r1, files), want)

	// Garbage every result entry (file-level under res/, segment under fn/).
	corrupted := 0
	for _, sub := range []string{"res", "fn"} {
		err := filepath.WalkDir(filepath.Join(dir, sub), func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			corrupted++
			return os.WriteFile(path, []byte("{garbage"), 0o644)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if corrupted == 0 {
		t.Fatal("cold run persisted no result entries")
	}

	r2 := New(patch, Options{Workers: 2, CacheDir: dir})
	healed := runAll(t, r2, files)
	compareResults(t, "healed", healed, want)
	if healed[0].FuncsMatched != 3 {
		t.Errorf("healing run matched %d functions, want 3 (all re-derived)", healed[0].FuncsMatched)
	}
	if n := r2.Cache().CorruptEntries(); n == 0 {
		t.Error("corrupt entries were read back without being counted")
	}

	// The rebuilt records replay: edit one function, only it re-matches.
	bodies[1] = "\told_api(x, 99);\n"
	edited := []core.SourceFile{fnBuildFile("heal.c", bodies)}
	wantEdited := runAll(t, New(patch, Options{Workers: 2, NoFuncCache: true}), edited)
	r3 := New(patch, Options{Workers: 2, CacheDir: dir})
	after := runAll(t, r3, edited)
	compareResults(t, "after-heal", after, wantEdited)
	if after[0].FuncsMatched != 1 || after[0].FuncsCached != 2 {
		t.Errorf("after heal: matched=%d cached=%d, want 1/2", after[0].FuncsMatched, after[0].FuncsCached)
	}
}

// countingStore wraps a Store and counts writes per key, pinning the write
// discipline of the function-granular layer: every segment record is written
// exactly once, and segment writes never replace the file-level manifest.
type countingStore struct {
	inner    cache.Store
	mu       sync.Mutex
	fnPuts   map[string]int
	filePuts map[string]int
}

func newCountingStore(inner cache.Store) *countingStore {
	return &countingStore{inner: inner, fnPuts: map[string]int{}, filePuts: map[string]int{}}
}

func (s *countingStore) Words(h string) (map[string]bool, bool) { return s.inner.Words(h) }
func (s *countingStore) PutWords(h string, w map[string]bool) error {
	return s.inner.PutWords(h, w)
}
func (s *countingStore) Result(key, h string) (*cache.Record, bool) { return s.inner.Result(key, h) }
func (s *countingStore) PutResult(key, h string, r *cache.Record) error {
	s.mu.Lock()
	s.filePuts[key+"\x00"+h]++
	s.mu.Unlock()
	return s.inner.PutResult(key, h, r)
}
func (s *countingStore) FuncResult(key, h string) (*cache.FuncRecord, bool) {
	return s.inner.FuncResult(key, h)
}
func (s *countingStore) PutFuncResult(key, h string, r *cache.FuncRecord) error {
	s.mu.Lock()
	s.fnPuts[key+"\x00"+h]++
	s.mu.Unlock()
	return s.inner.PutFuncResult(key, h, r)
}

// TestFuncStoreWriteDiscipline pins the caching layer's bookkeeping: a cold
// run writes each segment record once (k functions + residue strong key +
// residue token key) and exactly one file manifest; a warm run after a
// one-function edit adds exactly one new segment record and one manifest,
// re-writing nothing. The file manifest must still be readable afterwards —
// segment entries live under their own key prefix and can never displace it.
func TestFuncStoreWriteDiscipline(t *testing.T) {
	const k = 4
	mem := cache.NewMemory(nil, 0)
	cs := newCountingStore(mem)
	patch := parsePatch(t, renamePatch)
	r := New(patch, Options{Workers: 2, Store: cs})

	bodies := make([]string, k)
	for i := range bodies {
		bodies[i] = fmt.Sprintf("\told_api(x, %d);\n", i)
	}
	files := []core.SourceFile{fnBuildFile("disc.c", bodies)}
	runAll(t, r, files)

	cs.mu.Lock()
	if len(cs.fnPuts) != k+2 {
		t.Errorf("cold run wrote %d segment records, want %d (k functions + 2 residue keys)", len(cs.fnPuts), k+2)
	}
	for key, n := range cs.fnPuts {
		if n != 1 {
			t.Errorf("segment record %x written %d times", key, n)
		}
	}
	if len(cs.filePuts) != 1 {
		t.Errorf("cold run wrote %d file manifests, want 1", len(cs.filePuts))
	}
	coldFn := len(cs.fnPuts)
	cs.mu.Unlock()

	// The manifest replays through the store even though k+2 segment entries
	// were written under the same (patch, options) key.
	fileHash := cache.HashString(files[0].Src)
	key := cache.ResultKey(patch.Src, fingerprint(r.opts.Engine))
	if rec, ok := cs.Result(key, fileHash); !ok || !rec.Changed {
		t.Fatalf("file manifest unreadable after segment writes: ok=%v rec=%+v", ok, rec)
	}

	bodies[2] = "\told_api(x, 77);\n"
	runAll(t, r, []core.SourceFile{fnBuildFile("disc.c", bodies)})
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if len(cs.fnPuts) != coldFn+1 {
		t.Errorf("warm run grew segment records by %d, want 1", len(cs.fnPuts)-coldFn)
	}
	for key, n := range cs.fnPuts {
		if n != 1 {
			t.Errorf("segment record %x re-written (%d writes)", key, n)
		}
	}
	if len(cs.filePuts) != 2 {
		t.Errorf("total file manifests = %d, want 2 (one per content version)", len(cs.filePuts))
	}
}

// TestFunctionCacheCampaignCounters checks the campaign path wires the
// per-member counters: a two-patch campaign over an edited file replays
// per function for each eligible member.
func TestFunctionCacheCampaignCounters(t *testing.T) {
	secondPatch := `@s@
expression list el;
@@
- aux_api(el)
+ aux_api_v2(el)
`
	patches := []*smpl.Patch{parsePatch(t, renamePatch), parsePatch(t, secondPatch)}
	mk := func(c int) []string {
		return []string{
			fmt.Sprintf("\told_api(x, %d);\n", c),
			"\taux_api(x, 1);\n",
			"\told_api(x, 2);\n\taux_api(x, 2);\n",
		}
	}
	c := NewCampaign(patches, Options{Workers: 2, Store: cache.NewMemory(nil, 0)})
	cold, err := c.Collect([]core.SourceFile{fnBuildFile("camp.c", mk(0))}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, ps := range cold.PerPatch {
		if ps.FuncsMatched == 0 {
			t.Errorf("cold campaign member %d matched no functions: %+v", i, ps)
		}
	}
	warm, err := c.Collect([]core.SourceFile{fnBuildFile("camp.c", mk(9))}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Member 0 re-matches the edited function; member 1 sees a different
	// intermediate text (member 0 already transformed it), so only assert it
	// replays at least one function.
	if ps := warm.PerPatch[0]; ps.FuncsMatched != 1 || ps.FuncsCached != 2 {
		t.Errorf("warm member 0: matched=%d cached=%d, want 1/2", ps.FuncsMatched, ps.FuncsCached)
	}
	if ps := warm.PerPatch[1]; ps.FuncsCached == 0 {
		t.Errorf("warm member 1 replayed no functions: %+v", ps)
	}
}
