package batch

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/smpl"
)

const renamePatch = `@r@
expression list el;
@@
- old_api(el)
+ new_api(el)
`

func parsePatch(t *testing.T, text string) *smpl.Patch {
	t.Helper()
	p, err := smpl.ParsePatch("t.cocci", text)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// corpus fabricates n small files; every third one contains a match.
func corpus(n int) []core.SourceFile {
	files := make([]core.SourceFile, n)
	for i := range files {
		call := "other_api"
		if i%3 == 0 {
			call = "old_api"
		}
		files[i] = core.SourceFile{
			Name: fmt.Sprintf("f%03d.c", i),
			Src:  fmt.Sprintf("void fn%d(int x)\n{\n\t%s(x, %d);\n}\n", i, call, i),
		}
	}
	return files
}

func TestEmptyFileSet(t *testing.T) {
	r := New(parsePatch(t, renamePatch), Options{Workers: 4})
	st, err := r.Collect(nil, func(FileResult) error {
		t.Error("callback invoked for empty set")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st != (Stats{}) {
		t.Errorf("stats = %+v, want zero", st)
	}
}

func TestDeterministicOrderAndOutputs(t *testing.T) {
	files := corpus(40)
	patch := parsePatch(t, renamePatch)

	// Sequential reference: the one-file-at-a-time engine.
	want := make([]string, len(files))
	for i, f := range files {
		res, err := core.New(patch, core.Options{}).Run([]core.SourceFile{f})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Outputs[f.Name]
	}

	for _, workers := range []int{1, 3, 16} {
		r := New(patch, Options{Workers: workers})
		var got []FileResult
		r.Run(files, func(fr FileResult) bool {
			got = append(got, fr)
			return true
		})
		if len(got) != len(files) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(files))
		}
		for i, fr := range got {
			if fr.Index != i || fr.Name != files[i].Name {
				t.Fatalf("workers=%d: result %d is %s (index %d), want %s", workers, i, fr.Name, fr.Index, files[i].Name)
			}
			if fr.Err != nil {
				t.Fatalf("workers=%d: %s: %v", workers, fr.Name, fr.Err)
			}
			if fr.Output != want[i] {
				t.Errorf("workers=%d: %s output differs from sequential engine", workers, fr.Name)
			}
			if i%3 == 0 && !fr.Changed() {
				t.Errorf("workers=%d: %s should have changed", workers, fr.Name)
			}
			if i%3 != 0 && fr.Changed() {
				t.Errorf("workers=%d: %s should be untouched", workers, fr.Name)
			}
		}
	}
}

func TestParseFailureMidBatch(t *testing.T) {
	files := corpus(9)
	// The broken file mentions old_api so the prefilter cannot rule it out;
	// a broken file without the patch's atoms is skipped unparsed (see
	// TestPrefilterSkipsUnparseable).
	files[4] = core.SourceFile{Name: "broken.c", Src: "void f( {{{ old_api"}
	r := New(parsePatch(t, renamePatch), Options{Workers: 4})
	st, err := r.Collect(files, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors != 1 {
		t.Errorf("Errors = %d, want 1", st.Errors)
	}
	if st.Files != 9 {
		t.Errorf("Files = %d, want 9 (others must still complete)", st.Files)
	}
	if st.Changed != 3 { // indices 0, 3, 6 contain old_api
		t.Errorf("Changed = %d, want 3", st.Changed)
	}

	// The failing file reports its error in order, with the name attached.
	var got []FileResult
	r.Run(files, func(fr FileResult) bool { got = append(got, fr); return true })
	if got[4].Err == nil || got[4].Name != "broken.c" {
		t.Errorf("result 4 = %+v, want parse error for broken.c", got[4])
	}
	if !strings.Contains(got[4].Err.Error(), "broken.c") {
		t.Errorf("error should name the file: %v", got[4].Err)
	}
}

func TestWorkerCountExceedsFiles(t *testing.T) {
	files := corpus(2)
	r := New(parsePatch(t, renamePatch), Options{Workers: 64})
	st, err := r.Collect(files, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != 2 || st.Errors != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEarlyStop(t *testing.T) {
	files := corpus(200)
	r := New(parsePatch(t, renamePatch), Options{Workers: 8})
	seen := 0
	r.Run(files, func(fr FileResult) bool {
		seen++
		return seen < 5
	})
	if seen != 5 {
		t.Errorf("saw %d results after early stop, want 5", seen)
	}
	// The runner must still be reusable after an aborted run.
	st, err := r.Collect(files[:6], nil)
	if err != nil || st.Files != 6 {
		t.Errorf("rerun after stop: stats=%+v err=%v", st, err)
	}
}

func TestBoundedWindow(t *testing.T) {
	files := corpus(100)
	r := New(parsePatch(t, renamePatch), Options{Workers: 4, Window: 4})
	count := 0
	r.Run(files, func(fr FileResult) bool {
		if fr.Index != count {
			t.Fatalf("out of order: got %d want %d", fr.Index, count)
		}
		count++
		return true
	})
	if count != 100 {
		t.Errorf("delivered %d/100", count)
	}
}

func TestScriptRuleAcrossWorkers(t *testing.T) {
	patch := parsePatch(t, `@find@
identifier fn;
expression list el;
@@
fn(el)

@script:python up@
f << find.fn;
nf;
@@
coccinelle.nf = cocci.make_ident(RENAMES[f])

@apply depends on find@
identifier find.fn;
identifier up.nf;
expression list find.el;
@@
- fn(el)
+ nf(el)
`)
	// The Go handler replaces the Python body; it must be safe for
	// concurrent calls from multiple workers.
	renames := map[string]string{"old_api": "new_api", "other_api": "kept_api"}
	r := New(patch, Options{Workers: 8})
	r.RegisterScript("up", func(in map[string]string) (map[string]string, error) {
		nf, ok := renames[in["f"]]
		if !ok {
			return nil, fmt.Errorf("no rename for %q", in["f"])
		}
		return map[string]string{"nf": nf}, nil
	})
	files := corpus(24)
	st, err := r.Collect(files, func(fr FileResult) error {
		if fr.Err != nil {
			return fr.Err
		}
		if strings.Contains(fr.Output, "old_api") {
			return fmt.Errorf("%s: old_api survived:\n%s", fr.Name, fr.Output)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Changed != 24 {
		t.Errorf("Changed = %d, want 24", st.Changed)
	}
}

func TestRunPathsLazyReads(t *testing.T) {
	dir := t.TempDir()
	files := corpus(12)
	paths := make([]string, 0, len(files)+1)
	for _, f := range files {
		p := filepath.Join(dir, f.Name)
		if err := os.WriteFile(p, []byte(f.Src), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	// A missing file mid-batch must fail alone, like a parse error.
	paths = append(paths[:6:6], append([]string{filepath.Join(dir, "gone.c")}, paths[6:]...)...)

	r := New(parsePatch(t, renamePatch), Options{Workers: 4})
	st, err := r.CollectPaths(paths, func(fr FileResult) error {
		if fr.Name == filepath.Join(dir, "gone.c") {
			if fr.Err == nil {
				t.Error("missing file should report an error")
			}
		} else if fr.Err != nil {
			t.Errorf("%s: %v", fr.Name, fr.Err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != 13 || st.Errors != 1 || st.Changed != 4 { // indices 0,3,6,9 contain old_api
		t.Errorf("stats = %+v", st)
	}
}

func TestUndeclaredDefineReportedOnce(t *testing.T) {
	r := New(parsePatch(t, renamePatch), Options{
		Workers: 4,
		Engine:  core.Options{Defines: []string{"nosuch"}},
	})
	var results []FileResult
	r.Run(corpus(10), func(fr FileResult) bool { results = append(results, fr); return true })
	if len(results) != 1 || results[0].Index != -1 || results[0].Err == nil {
		t.Fatalf("want one Index=-1 config-error result, got %+v", results)
	}
	st, err := r.Collect(corpus(10), nil)
	if err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Errorf("Collect err = %v, want undeclared-define error", err)
	}
	if st.Files != 0 || st.Errors != 0 {
		t.Errorf("config error must not count as per-file stats: %+v", st)
	}
}

func TestCollectCallbackError(t *testing.T) {
	files := corpus(50)
	r := New(parsePatch(t, renamePatch), Options{Workers: 4})
	boom := fmt.Errorf("boom")
	st, err := r.Collect(files, func(fr FileResult) error {
		if fr.Index == 3 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Errorf("err = %v, want boom", err)
	}
	if st.Files != 4 {
		t.Errorf("Files = %d, want 4 (stopped at the failing callback)", st.Files)
	}
}

// parityPatches exercise the prefilter's conservative paths: a plain rename,
// a dependency chain, a virtual-gated rule, a disjunction, and a
// fresh-identifier rule that forces the filter to widen.
var parityPatches = []struct {
	name    string
	patch   string
	defines []string
}{
	{name: "rename", patch: renamePatch},
	{name: "chain", patch: `@first@
expression list el;
@@
- old_api(el)
+ mid_api(el)

@second depends on first@
expression list el;
@@
- mid_api(el)
+ new_api(el)
`},
	{name: "virtual", patch: `virtual go

@r depends on go@
expression list el;
@@
- old_api(el)
+ new_api(el)
`, defines: []string{"go"}},
	{name: "disjunction", patch: `@r@
expression E;
@@
- \( old_api(E, E) \| other_api(E, E) \)
+ new_api(E)
`},
	{name: "fresh", patch: `@r@
expression E;
fresh identifier tmp = "t";
@@
- old_api(E, E)
+ old_api(E, tmp)
`},
}

// parityCorpus mixes matching files, near-miss files (the atom embedded in
// a longer identifier or a comment), and plain non-matching files.
func parityCorpus() []core.SourceFile {
	files := corpus(12)
	files = append(files,
		core.SourceFile{Name: "near.c", Src: "void f(void)\n{\n\tmy_old_api(1, 2);\n}\n"},
		core.SourceFile{Name: "comment.c", Src: "/* old_api gone */\nvoid f(void)\n{\n\tx();\n}\n"},
		core.SourceFile{Name: "empty.c", Src: ""},
	)
	return files
}

// TestPrefilterParity is the prefilter's core guarantee: enabling it changes
// nothing observable per file — outputs, diffs and match counts are
// byte-identical — it only avoids work.
func TestPrefilterParity(t *testing.T) {
	files := parityCorpus()
	for _, pc := range parityPatches {
		t.Run(pc.name, func(t *testing.T) {
			collect := func(noPrefilter bool) []FileResult {
				r := New(parsePatch(t, pc.patch), Options{
					Workers: 4,
					Engine:  core.Options{Defines: pc.defines},

					NoPrefilter: noPrefilter,
				})
				var out []FileResult
				r.Run(files, func(fr FileResult) bool { out = append(out, fr); return true })
				return out
			}
			off := collect(true)
			on := collect(false)
			if len(on) != len(off) {
				t.Fatalf("result counts differ: on=%d off=%d", len(on), len(off))
			}
			skipped := 0
			for i := range on {
				if on[i].Skipped {
					skipped++
				}
				if on[i].Output != off[i].Output {
					t.Errorf("%s: output differs with prefilter on", on[i].Name)
				}
				if on[i].Diff != off[i].Diff {
					t.Errorf("%s: diff differs with prefilter on", on[i].Name)
				}
				if on[i].Matches() != off[i].Matches() {
					t.Errorf("%s: match count differs: on=%d off=%d",
						on[i].Name, on[i].Matches(), off[i].Matches())
				}
				if (on[i].Err == nil) != (off[i].Err == nil) {
					t.Errorf("%s: error presence differs: on=%v off=%v",
						on[i].Name, on[i].Err, off[i].Err)
				}
				if off[i].Skipped {
					t.Errorf("%s: NoPrefilter run must never skip", off[i].Name)
				}
			}
			if skipped == 0 {
				t.Error("prefilter never skipped anything on a mostly-non-matching corpus")
			}
		})
	}
}

// TestPrefilterSkippedStats pins the Skipped accounting: skipped files count
// in Files and Skipped, never in Matched/Changed/Errors.
func TestPrefilterSkippedStats(t *testing.T) {
	files := parityCorpus() // 12 corpus files (4 matching) + 3 unmatchable
	r := New(parsePatch(t, renamePatch), Options{Workers: 2})
	st, err := r.Collect(files, func(fr FileResult) error {
		if fr.Skipped && (fr.Diff != "" || fr.Err != nil || fr.Matches() != 0) {
			t.Errorf("%s: skipped result must be inert: %+v", fr.Name, fr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != 15 || st.Errors != 0 {
		t.Errorf("stats = %+v, want 15 files, 0 errors", st)
	}
	if st.Matched != 4 || st.Changed != 4 {
		t.Errorf("stats = %+v, want 4 matched/changed", st)
	}
	// 8 corpus files call other_api, plus near.c and empty.c. comment.c
	// mentions old_api in a comment, which conservatively counts as
	// present, so it is parsed (and found unmatched) rather than skipped.
	if st.Skipped != 10 {
		t.Errorf("Skipped = %d, want 10", st.Skipped)
	}
}

// TestPrefilterSkipsUnparseable documents the intended trade-off: a file the
// patch provably cannot touch is never parsed, so its syntax errors go
// unreported unless the prefilter is disabled.
func TestPrefilterSkipsUnparseable(t *testing.T) {
	files := []core.SourceFile{{Name: "broken.c", Src: "void f( {{{"}}
	r := New(parsePatch(t, renamePatch), Options{Workers: 1})
	st, err := r.Collect(files, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors != 0 || st.Skipped != 1 {
		t.Errorf("stats = %+v, want the broken file skipped, not errored", st)
	}

	r = New(parsePatch(t, renamePatch), Options{Workers: 1, NoPrefilter: true})
	st, err = r.Collect(files, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors != 1 || st.Skipped != 0 {
		t.Errorf("stats = %+v, want a parse error with the prefilter off", st)
	}
}
