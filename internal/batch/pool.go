package batch

import "sync"

// runPool is the worker-pool core shared by single-patch runs and
// campaigns: it dispatches indices 0..n-1 to workers, each worker applying
// the process function its factory returned, and delivers results to yield
// in increasing index order, stopping early when yield returns false. The
// factory runs once per worker goroutine, giving each worker private
// mutable state (its engines) and optionally a teardown hook (may be nil)
// that runs when the worker goroutine exits — which is how each worker
// closes its observability track's umbrella span; index extracts a result's
// input position for the reorder buffer. Memory stays bounded by the
// window: a file is admitted only when a slot is free, and a slot is
// returned per delivered result.
func runPool[T any](n, workers, window int, newWorker func() (func(int) T, func()), index func(T) int, yield func(T) bool) {
	jobs := make(chan int)
	results := make(chan T, workers)
	stop := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			process, done := newWorker()
			if done != nil {
				defer done()
			}
			for {
				select {
				case idx, ok := <-jobs:
					if !ok {
						return
					}
					fr := process(idx)
					select {
					case results <- fr:
					case <-stop:
						return
					}
				case <-stop:
					return
				}
			}
		}()
	}

	// The feeder admits a file only when the in-flight window has room; the
	// consumer returns a slot per delivered result. This bounds undelivered
	// results (and the reorder buffer below) to the window size even when
	// one slow file holds up in-order delivery.
	slots := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		slots <- struct{}{}
	}
	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			select {
			case <-slots:
			case <-stop:
				return
			}
			select {
			case jobs <- i:
			case <-stop:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// Reorder buffer: workers finish in any order, delivery is by index.
	pending := map[int]T{}
	next := 0
	stopped := false
	for fr := range results {
		// After an early stop, keep draining so no worker blocks on send.
		if stopped {
			continue
		}
		pending[index(fr)] = fr
		for {
			out, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if !yield(out) {
				stopped = true
				close(stop)
				break
			}
			slots <- struct{}{}
		}
	}
}
