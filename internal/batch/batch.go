// Package batch applies one semantic patch across many source files with a
// worker pool, the way spatch is used over a whole codebase. The patch is
// compiled once (core.Compile) and the read-only artifacts are shared by
// per-worker engine instances; per-file results stream to the caller in
// input order with bounded memory, so a run over a million-file corpus
// holds only a small window of results at any moment. Before parsing a
// file, workers consult the patch's required-atom prefilter
// (internal/index): a file that provably cannot be fired on by any rule is
// reported as skipped without ever being lexed or parsed, which is where
// most of the time goes on a mostly-non-matching corpus.
//
// Batch semantics are per-file: each file is patched independently, exactly
// as if it were the only file handed to a fresh core.Engine. Metavariable
// environments do not flow between files, and fresh-identifier counters
// reset per file, so the output for a file never depends on which worker
// processed it, how many workers ran, or in what order files completed.
package batch

import (
	"os"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/smpl"
)

// Options configures a batch run.
type Options struct {
	// Engine is the per-file engine configuration (dialect, CTL, limits).
	Engine core.Options
	// Workers is the pool size; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Window bounds the number of files that may be in flight (dispatched
	// but not yet delivered in order); <= 0 means 2x the worker count.
	// Larger windows tolerate more skew between fast and slow files at the
	// cost of buffering more results.
	Window int
	// NoPrefilter disables the required-atom prefilter, forcing every file
	// through the full parse-and-match pipeline. The filter only skips
	// files no rule could possibly fire on, so outputs are identical either
	// way; disabling it restores per-file parse-error reporting for files
	// the patch provably cannot touch.
	NoPrefilter bool
}

// FileResult is the outcome for one input file.
type FileResult struct {
	// Index is the file's position in the input slice; results are
	// delivered in increasing Index order. A configuration error that
	// aborts the run before any file is processed (e.g. an undeclared
	// define) is delivered as a single result with Index -1.
	Index int
	// Name is the input file name.
	Name string
	// Output is the (possibly transformed) source; empty when Err is set.
	Output string
	// Diff is the unified diff; empty when the file is unchanged.
	Diff string
	// MatchCount counts matches per rule in this file.
	MatchCount map[string]int
	// Skipped reports that the prefilter proved no rule could fire on this
	// file, so it was never parsed; Output equals the input and Diff is
	// empty, exactly as a full run would have produced.
	Skipped bool
	// EnvsTruncated reports that this file's run hit the MaxEnvs cap and
	// dropped matches (see core.Result.EnvsTruncated).
	EnvsTruncated bool
	// Err is the per-file failure (parse error, script error); other files
	// in the batch are unaffected.
	Err error
}

// Changed reports whether the patch modified the file.
func (r FileResult) Changed() bool { return r.Diff != "" }

// Matches is the total number of rule matches in the file.
func (r FileResult) Matches() int {
	n := 0
	for _, c := range r.MatchCount {
		n += c
	}
	return n
}

// Stats aggregates a completed run.
type Stats struct {
	Files   int // files processed
	Matched int // files where at least one rule matched
	Changed int // files whose output differs from the input
	Errors  int // files that failed (parse or script error)
	Matches int // total rule matches across all files
	Skipped int // files the prefilter rejected without parsing
}

// Runner applies one compiled patch across file sets.
type Runner struct {
	compiled *core.Compiled
	opts     Options
	scripts  map[string]core.ScriptFunc
	// filter is the per-run required-atom prefilter (nil when disabled):
	// workers consult it on raw file bytes before parsing, and skip files
	// no rule could possibly fire on.
	filter *index.Filter
	// cfgErr is a patch/options mismatch caught at construction; it is
	// reported once per run instead of once per file.
	cfgErr error
}

// New compiles the patch once and returns a Runner; the Runner may be used
// for any number of Run calls, concurrently if desired.
func New(patch *smpl.Patch, opts Options) *Runner {
	r := &Runner{
		compiled: core.Compile(patch),
		opts:     opts,
		scripts:  map[string]core.ScriptFunc{},
		cfgErr:   core.ValidateDefines(patch, opts.Engine.Defines),
	}
	if !opts.NoPrefilter {
		r.filter = r.compiled.Prefilter.ForDefines(opts.Engine.Defines)
	}
	return r
}

// RegisterScript installs a native Go handler for the named script rule on
// every worker engine. Must be called before Run; the handler may be called
// from multiple goroutines and must be safe for that.
func (r *Runner) RegisterScript(rule string, fn core.ScriptFunc) *Runner {
	r.scripts[rule] = fn
	return r
}

// workers resolves the effective pool size for n files.
func (r *Runner) workers(n int) int {
	w := r.opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Run streams per-file results to yield in input order, stopping early if
// yield returns false. It blocks until delivery finishes and all workers
// have exited; memory use is bounded by the window size, not the corpus.
func (r *Runner) Run(files []core.SourceFile, yield func(FileResult) bool) {
	r.run(len(files), func(i int) (core.SourceFile, error) { return files[i], nil }, yield)
}

// RunPaths is Run for on-disk files: each worker reads its file from disk
// just before patching it, so the corpus text is never resident all at
// once — only the in-flight window is. A file that cannot be read reports
// the error in its FileResult like any other per-file failure.
func (r *Runner) RunPaths(paths []string, yield func(FileResult) bool) {
	r.run(len(paths), func(i int) (core.SourceFile, error) {
		b, err := os.ReadFile(paths[i])
		if err != nil {
			return core.SourceFile{Name: paths[i]}, err
		}
		return core.SourceFile{Name: paths[i], Src: string(b)}, nil
	}, yield)
}

// run is the shared pool: get fetches the i-th file inside a worker.
func (r *Runner) run(n int, get func(int) (core.SourceFile, error), yield func(FileResult) bool) {
	if r.cfgErr != nil {
		yield(FileResult{Index: -1, Err: r.cfgErr})
		return
	}
	if n == 0 {
		return
	}
	workers := r.workers(n)
	window := r.opts.Window
	if window <= 0 {
		window = 2 * workers
	}

	jobs := make(chan int)
	results := make(chan FileResult, workers)
	stop := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			eng := core.NewCompiled(r.compiled, r.opts.Engine)
			for rule, fn := range r.scripts {
				eng.RegisterScript(rule, fn)
			}
			for {
				select {
				case idx, ok := <-jobs:
					if !ok {
						return
					}
					var fr FileResult
					if f, err := get(idx); err != nil {
						fr = FileResult{Index: idx, Name: f.Name, Err: err}
					} else if r.filter != nil && !r.filter.MayMatch(f.Src) {
						// Provably unmatchable: synthesize the result a
						// full run would produce, without parsing. (A
						// syntactically broken file that cannot match is
						// skipped too — its parse error goes unreported,
						// like spatch under a glimpse index; pass
						// NoPrefilter to surface such errors.)
						fr = FileResult{
							Index: idx, Name: f.Name, Output: f.Src,
							MatchCount: map[string]int{}, Skipped: true,
						}
					} else {
						fr = applyOne(eng, f, idx)
					}
					select {
					case results <- fr:
					case <-stop:
						return
					}
				case <-stop:
					return
				}
			}
		}()
	}

	// The feeder admits a file only when the in-flight window has room; the
	// consumer returns a slot per delivered result. This bounds undelivered
	// results (and the reorder buffer below) to the window size even when
	// one slow file holds up in-order delivery.
	slots := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		slots <- struct{}{}
	}
	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			select {
			case <-slots:
			case <-stop:
				return
			}
			select {
			case jobs <- i:
			case <-stop:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// Reorder buffer: workers finish in any order, delivery is by Index.
	pending := map[int]FileResult{}
	next := 0
	stopped := false
	for fr := range results {
		// After an early stop, keep draining so no worker blocks on send.
		if stopped {
			continue
		}
		pending[fr.Index] = fr
		for {
			out, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if !yield(out) {
				stopped = true
				close(stop)
				break
			}
			slots <- struct{}{}
		}
	}
}

// Collect runs the batch and accumulates aggregate statistics, forwarding
// each result to fn (which may be nil). A non-nil error from fn stops the
// run and is returned; per-file errors only count in Stats.Errors.
func (r *Runner) Collect(files []core.SourceFile, fn func(FileResult) error) (Stats, error) {
	return r.collect(func(yield func(FileResult) bool) { r.Run(files, yield) }, fn)
}

// CollectPaths is Collect over on-disk files (see RunPaths).
func (r *Runner) CollectPaths(paths []string, fn func(FileResult) error) (Stats, error) {
	return r.collect(func(yield func(FileResult) bool) { r.RunPaths(paths, yield) }, fn)
}

func (r *Runner) collect(run func(func(FileResult) bool), fn func(FileResult) error) (Stats, error) {
	var st Stats
	var cbErr error
	run(func(fr FileResult) bool {
		if fr.Index < 0 { // configuration error: abort, don't count files
			cbErr = fr.Err
			return false
		}
		st.Files++
		switch {
		case fr.Err != nil:
			st.Errors++
		default:
			if fr.Skipped {
				st.Skipped++
			}
			if m := fr.Matches(); m > 0 {
				st.Matched++
				st.Matches += m
			}
			if fr.Changed() {
				st.Changed++
			}
		}
		if fn != nil {
			if err := fn(fr); err != nil {
				cbErr = err
				return false
			}
		}
		return true
	})
	return st, cbErr
}

// applyOne patches a single file on a reset engine.
func applyOne(eng *core.Engine, f core.SourceFile, idx int) FileResult {
	eng.Reset()
	res, err := eng.Run([]core.SourceFile{f})
	if err != nil {
		return FileResult{Index: idx, Name: f.Name, Err: err}
	}
	return FileResult{
		Index:         idx,
		Name:          f.Name,
		Output:        res.Outputs[f.Name],
		Diff:          res.Diffs[f.Name],
		MatchCount:    res.MatchCount,
		EnvsTruncated: res.EnvsTruncated,
	}
}
