// Package batch applies one semantic patch across many source files with a
// worker pool, the way spatch is used over a whole codebase. The patch is
// compiled once (core.Compile) and the read-only artifacts are shared by
// per-worker engine instances; per-file results stream to the caller in
// input order with bounded memory, so a run over a million-file corpus
// holds only a small window of results at any moment. Before parsing a
// file, workers consult the patch's required-atom prefilter
// (internal/index): a file that provably cannot be fired on by any rule is
// reported as skipped without ever being lexed or parsed, which is where
// most of the time goes on a mostly-non-matching corpus.
//
// Batch semantics are per-file: each file is patched independently, exactly
// as if it were the only file handed to a fresh core.Engine. Metavariable
// environments do not flow between files, and fresh-identifier counters
// reset per file, so the output for a file never depends on which worker
// processed it, how many workers ran, or in what order files completed.
package batch

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/cast"
	"repro/internal/core"
	"repro/internal/cparse"
	"repro/internal/diff"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/smpl"
	"repro/internal/verify"
)

// Options configures a batch run.
type Options struct {
	// Engine is the per-file engine configuration (dialect, CTL, limits).
	Engine core.Options
	// Workers is the pool size; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Window bounds the number of files that may be in flight (dispatched
	// but not yet delivered in order); <= 0 means 2x the worker count.
	// Larger windows tolerate more skew between fast and slow files at the
	// cost of buffering more results.
	Window int
	// NoPrefilter disables the required-atom prefilter, forcing every file
	// through the full parse-and-match pipeline. The filter only skips
	// files no rule could possibly fire on, so outputs are identical either
	// way; disabling it restores per-file parse-error reporting for files
	// the patch provably cannot touch.
	NoPrefilter bool
	// CacheDir, when non-empty, enables the persistent corpus index
	// (internal/cache) rooted at that directory: file scans and per-file
	// results are cached by content hash, so re-running over an unchanged
	// corpus skips scanning, parsing, and matching. Outputs are identical
	// with the cache cold, warm, or disabled; invalidation is automatic
	// (editing a file, the patch, or result-affecting options changes the
	// key). An unusable directory is reported once per run, like any other
	// configuration error.
	CacheDir string
	// Store, when non-nil, is the cache the run reads and writes through —
	// typically a cache.Memory layered over a disk cache, owned by a
	// resident server (internal/serve). It takes precedence over CacheDir.
	// The Cache() status surface only covers caches opened from CacheDir; a
	// caller supplying its own Store reports its own status.
	Store cache.Store
	// NoFuncCache disables function-granular processing (per-function
	// result caching, prefiltering, and intra-file parallel matching) for
	// patches that qualify (core.FunctionLocal). Outputs are identical
	// either way; the knob exists for debugging and differential testing,
	// so it is excluded from the result-cache fingerprint.
	NoFuncCache bool
	// Verify runs the post-transform safety checker (internal/verify) on
	// every file a patch changed: capture-avoidance and def-use checks for
	// rewritten identifiers, pragma round-trip checks for directive
	// translations, and an output re-parse. An unsafe finding demotes the
	// edit — the file's output reverts to its input and the findings ride
	// the result as structured warnings. Verify mode (and the checker
	// version) keys the result cache, so verified and unverified runs never
	// share cached outcomes.
	Verify bool
	// Tracer, when non-nil, receives pipeline spans: each worker records its
	// read/hash/prefilter/parse/segment/cfg/match/verify/render and cache
	// traffic on its own track. Tracing never changes outputs, so it is
	// excluded from the result-cache fingerprint; with a nil Tracer every
	// instrumentation site costs a single pointer check.
	Tracer *obs.Tracer
}

// fingerprint canonicalizes every result-affecting engine option into the
// result-cache key, so a cached outcome is only ever replayed under the
// exact configuration that produced it. NoPrefilter and Workers/Window are
// excluded: they cannot change outputs.
func fingerprint(o core.Options) string {
	maxEnvs := o.MaxEnvs
	if maxEnvs == 0 {
		maxEnvs = 4096 // the engine's default; 0 and 4096 are the same run
	}
	defines := append([]string(nil), o.Defines...)
	sort.Strings(defines)
	return fmt.Sprintf("cpp=%v,std=%d,cuda=%v,ctl=%v,seqdots=%v,maxenvs=%d,maxmatch=%d,D=%s",
		o.CPlusPlus, o.Std, o.CUDA, o.UseCTL, o.SeqDots, maxEnvs, o.MaxMatchesPerRule,
		strings.Join(defines, ";"))
}

// keyFingerprint extends the engine fingerprint with every result-affecting
// input that lives outside the patch text: verify mode (with the checker's
// version, so changing the checks invalidates cached verify decisions), the
// finding-emission version for patches that carry check rules (so changing
// how findings are derived invalidates cached findings), and the declared
// versions of native Go script handlers (so a re-versioned handler
// invalidates every outcome it helped produce).
func keyFingerprint(o core.Options, verifyOn, hasChecks bool, scriptVers map[string]string) string {
	fp := fingerprint(o)
	if verifyOn {
		fp += ",verify=" + verify.Version
	}
	if hasChecks {
		fp += ",check=" + analysis.Version
	}
	if len(scriptVers) > 0 {
		rules := make([]string, 0, len(scriptVers))
		for rule := range scriptVers {
			rules = append(rules, rule)
		}
		sort.Strings(rules)
		var sb strings.Builder
		for i, rule := range rules {
			if i > 0 {
				sb.WriteByte(';')
			}
			sb.WriteString(rule)
			sb.WriteByte(':')
			sb.WriteString(scriptVers[rule])
		}
		fp += ",scripts=" + sb.String()
	}
	return fp
}

// verifyOptions maps the engine dialect onto the checker's.
func verifyOptions(o core.Options) verify.Options {
	return verify.Options{CPlusPlus: o.CPlusPlus, Std: o.Std, CUDA: o.CUDA}
}

// storeWarnings converts checker findings to their cache form.
func storeWarnings(warns []verify.Warning) []cache.Warning {
	out := make([]cache.Warning, len(warns))
	for i, w := range warns {
		out[i] = cache.Warning{Code: w.Code, Func: w.Func, Message: w.Message, Unsafe: w.Unsafe}
	}
	return out
}

// loadWarnings converts cached findings back to checker form.
func loadWarnings(ws []cache.Warning) []verify.Warning {
	if len(ws) == 0 {
		return nil
	}
	out := make([]verify.Warning, len(ws))
	for i, w := range ws {
		out[i] = verify.Warning{Code: w.Code, Func: w.Func, Message: w.Message, Unsafe: w.Unsafe}
	}
	return out
}

// storeFindings converts check-rule findings to their file-level cache form.
func storeFindings(fs []analysis.Finding) []cache.Finding {
	if len(fs) == 0 {
		return nil
	}
	out := make([]cache.Finding, len(fs))
	for i, f := range fs {
		out[i] = cache.Finding{
			Check: f.Check, Severity: f.Severity, File: f.File, Line: f.Line,
			Col: f.Col, Func: f.Func, Message: f.Message, Rule: f.Rule,
			Bindings: f.Bindings, FuncHash: f.FuncHash, TokOff: f.TokOff,
		}
	}
	return out
}

// loadFindings converts cached file-level findings back to analysis form.
func loadFindings(fs []cache.Finding) []analysis.Finding {
	if len(fs) == 0 {
		return nil
	}
	out := make([]analysis.Finding, len(fs))
	for i, f := range fs {
		out[i] = analysis.Finding{
			Check: f.Check, Severity: f.Severity, File: f.File, Line: f.Line,
			Col: f.Col, Func: f.Func, Message: f.Message, Rule: f.Rule,
			Bindings: f.Bindings, FuncHash: f.FuncHash, TokOff: f.TokOff,
		}
	}
	return out
}

// FileResult is the outcome for one input file.
type FileResult struct {
	// Index is the file's position in the input slice; results are
	// delivered in increasing Index order. A configuration error that
	// aborts the run before any file is processed (e.g. an undeclared
	// define) is delivered as a single result with Index -1.
	Index int
	// Name is the input file name.
	Name string
	// Output is the (possibly transformed) source; empty when Err is set.
	Output string
	// Diff is the unified diff; empty when the file is unchanged.
	Diff string
	// MatchCount counts matches per rule in this file.
	MatchCount map[string]int
	// Skipped reports that the prefilter proved no rule could fire on this
	// file, so it was never parsed; Output equals the input and Diff is
	// empty, exactly as a full run would have produced.
	Skipped bool
	// Cached reports that the whole result was replayed from the persistent
	// result cache — the file was neither scanned nor parsed nor matched
	// this run. Cached and Skipped are mutually exclusive: a cache hit is
	// reported as cached even when the cached outcome was originally a
	// prefilter skip.
	Cached bool
	// EnvsTruncated reports that this file's run hit the MaxEnvs cap and
	// dropped matches (see core.Result.EnvsTruncated).
	EnvsTruncated bool
	// FuncsMatched counts this file's function segments that were matched
	// fresh by the function-granular pipeline (0 when the file took the
	// file-level path).
	FuncsMatched int
	// FuncsCached counts this file's function segments replayed from the
	// function-granular result cache.
	FuncsCached int
	// Warnings are the post-transform verifier's findings for this file
	// (only ever set under Options.Verify).
	Warnings []verify.Warning
	// Demoted reports that an unsafe finding reverted the edit: MatchCount
	// still records what matched, but Output equals the input and Diff is
	// empty.
	Demoted bool
	// Findings are the check-rule reports for this file (match-only star
	// rules and gocci:check rules; empty for pure transform patches).
	Findings []analysis.Finding
	// Parsed reports that this run actually parsed the file. False for
	// prefilter skips and cache replays — the warm-sweep signal `gocci
	// --check` sums into its "parsed: N" line.
	Parsed bool
	// Err is the per-file failure (parse error, script error); other files
	// in the batch are unaffected.
	Err error
}

// Changed reports whether the patch modified the file.
func (r FileResult) Changed() bool { return r.Diff != "" }

// Matches is the total number of rule matches in the file.
func (r FileResult) Matches() int {
	n := 0
	for _, c := range r.MatchCount {
		n += c
	}
	return n
}

// Stats aggregates a completed run.
type Stats struct {
	Files   int // files processed
	Matched int // files where at least one rule matched
	Changed int // files whose output differs from the input
	Errors  int // files that failed (parse or script error)
	Matches int // total rule matches across all files
	Skipped int // files the prefilter rejected without parsing
	Cached  int // files replayed from the persistent result cache
	// FuncsMatched and FuncsCached count function segments matched fresh
	// vs replayed from the function-granular cache across all files.
	FuncsMatched int
	FuncsCached  int
	// Demoted counts files whose edit the verifier reverted; Warnings
	// totals the verifier findings across all files.
	Demoted  int
	Warnings int
	// Findings totals the check-rule reports across all files.
	Findings int
	// Parsed counts files this run actually parsed (as opposed to skipping
	// via the prefilter or replaying from a cache).
	Parsed int
}

// Runner applies one compiled patch across file sets.
type Runner struct {
	compiled *core.Compiled
	opts     Options
	scripts  map[string]core.ScriptFunc
	// scriptVers holds the declared version of each script handler
	// registered through RegisterScriptVersioned; handlers registered
	// without a version never appear here, which is what disables the
	// result cache (see resultCacheable).
	scriptVers map[string]string
	// filter is the per-run required-atom prefilter (nil when disabled):
	// workers consult it on raw file bytes before parsing, and skip files
	// no rule could possibly fire on.
	filter *index.Filter
	// store is the cache the run reads and writes through (nil when
	// disabled), disk the *cache.Cache opened from Options.CacheDir for
	// status reporting (nil when the caller supplied Options.Store).
	store cache.Store
	disk  *cache.Cache
	// resultKey is this patch+options+scripts tuple's result-cache key,
	// computed lazily on first use (keyOnce) because script registration
	// happens after construction.
	resultKey string
	keyOnce   sync.Once
	patchSrc  string
	// fn drives function-granular processing when the patch qualifies and
	// Options.NoFuncCache is off; nil otherwise.
	fn *fnRunner
	// cfgErr is a patch/options mismatch caught at construction; it is
	// reported once per run instead of once per file.
	cfgErr error
}

// New compiles the patch once and returns a Runner; the Runner may be used
// for any number of Run calls, concurrently if desired.
func New(patch *smpl.Patch, opts Options) *Runner {
	r := &Runner{
		compiled:   core.Compile(patch),
		opts:       opts,
		scripts:    map[string]core.ScriptFunc{},
		scriptVers: map[string]string{},
		patchSrc:   patch.Src,
		cfgErr:     core.ValidateDefines(patch, opts.Engine.Defines),
	}
	if !opts.NoPrefilter {
		r.filter = r.compiled.Prefilter.ForDefines(opts.Engine.Defines)
	}
	switch {
	case opts.Store != nil:
		r.store = opts.Store
	case opts.CacheDir != "":
		c, err := cache.Open(opts.CacheDir)
		if err != nil && r.cfgErr == nil {
			r.cfgErr = err
		}
		if c != nil {
			// A typed nil must not become a non-nil Store interface.
			r.disk, r.store = c, c
		}
	}
	if !opts.NoFuncCache {
		r.fn = newFnRunner(r.compiled, opts.Engine, r.filter)
	}
	return r
}

// Cache returns the disk cache opened from Options.CacheDir, or nil when
// caching is disabled, its directory was unusable, or the store was
// supplied via Options.Store. Callers use it to surface rebuild and
// corruption reports.
func (r *Runner) Cache() *cache.Cache { return r.disk }

// RegisterScript installs a native Go handler for the named script rule on
// every worker engine. Must be called before Run; the handler may be called
// from multiple goroutines and must be safe for that.
//
// Registering any Go handler disables the persistent result cache for this
// Runner: a native function's behaviour is not captured by the patch text
// the cache keys on, so replaying results across handler versions would be
// unsound. (Script rules written in the patch itself cache fine — their
// code is part of the patch hash.) The scan cache stays active.
func (r *Runner) RegisterScript(rule string, fn core.ScriptFunc) *Runner {
	r.scripts[rule] = fn
	return r
}

// RegisterScriptVersioned is RegisterScript for handlers that declare a
// version string covering everything their behaviour depends on (code
// revision, embedded tables, modes). The version joins the result-cache
// fingerprint, so — unlike RegisterScript — the persistent result cache
// stays enabled: bumping the version invalidates every cached outcome the
// handler helped produce, which restores the soundness RegisterScript has
// to give up.
func (r *Runner) RegisterScriptVersioned(rule, version string, fn core.ScriptFunc) *Runner {
	r.scripts[rule] = fn
	r.scriptVers[rule] = version
	return r
}

// resultCacheable reports whether per-file results may be persisted and
// replayed for this runner: a store must be open and every registered Go
// handler must have declared a version.
func (r *Runner) resultCacheable() bool {
	return r.store != nil && len(r.scripts) == len(r.scriptVers)
}

// key returns this runner's result-cache key, computed on first use so
// that script handlers registered after construction are reflected in it.
// Callers must not register further scripts once a Run has started.
func (r *Runner) key() string {
	r.keyOnce.Do(func() {
		r.resultKey = cache.ResultKey(r.patchSrc,
			keyFingerprint(r.opts.Engine, r.opts.Verify, r.compiled.Patch.HasChecks(), r.scriptVers))
	})
	return r.resultKey
}

// workers resolves the effective pool size for n files.
func (r *Runner) workers(n int) int {
	w := r.opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Run streams per-file results to yield in input order, stopping early if
// yield returns false. It blocks until delivery finishes and all workers
// have exited; memory use is bounded by the window size, not the corpus.
func (r *Runner) Run(files []core.SourceFile, yield func(FileResult) bool) {
	r.run(len(files), func(i int) (core.SourceFile, error) { return files[i], nil }, yield)
}

// RunPaths is Run for on-disk files: each worker reads its file from disk
// just before patching it, so the corpus text is never resident all at
// once — only the in-flight window is. A file that cannot be read reports
// the error in its FileResult like any other per-file failure.
func (r *Runner) RunPaths(paths []string, yield func(FileResult) bool) {
	r.run(len(paths), func(i int) (core.SourceFile, error) {
		b, err := os.ReadFile(paths[i])
		if err != nil {
			return core.SourceFile{Name: paths[i]}, err
		}
		return core.SourceFile{Name: paths[i], Src: string(b)}, nil
	}, yield)
}

// run is the shared pool: get fetches the i-th file inside a worker.
func (r *Runner) run(n int, get func(int) (core.SourceFile, error), yield func(FileResult) bool) {
	if r.cfgErr != nil {
		yield(FileResult{Index: -1, Err: r.cfgErr})
		return
	}
	if n == 0 {
		return
	}
	workers := r.workers(n)
	window := r.opts.Window
	if window <= 0 {
		window = 2 * workers
	}
	var wid atomic.Int32
	runPool(n, workers, window, func() (func(int) FileResult, func()) {
		eng := core.NewCompiled(r.compiled, r.opts.Engine)
		for rule, fn := range r.scripts {
			eng.RegisterScript(rule, fn)
		}
		tk := r.opts.Tracer.Track(fmt.Sprintf("worker-%d", wid.Add(1)))
		eng.SetTrace(tk)
		wsp := tk.Start(obs.StageWorker)
		return func(idx int) FileResult { return r.processOne(eng, tk, get, idx) }, wsp.End
	}, func(fr FileResult) int { return fr.Index }, yield)
}

// processOne produces the result for one file: replayed from the result
// cache when possible, skipped when the prefilter rules it out, otherwise
// parsed and patched — and the outcome persisted for the next run.
func (r *Runner) processOne(eng *core.Engine, tk *obs.Track, get func(int) (core.SourceFile, error), idx int) FileResult {
	fsp := tk.Start(obs.StageFile)
	defer fsp.End()
	rsp := tk.Start(obs.StageRead)
	f, err := get(idx)
	rsp.End()
	fsp.File(f.Name)
	if err != nil {
		return FileResult{Index: idx, Name: f.Name, Err: err}
	}
	fileHash := ""
	if r.resultCacheable() {
		hsp := tk.Start(obs.StageHash).File(f.Name)
		fileHash = cache.HashString(f.Src)
		hsp.End()
		csp := tk.Start(obs.StageCacheRead).File(f.Name)
		rec, ok := r.store.Result(r.key(), fileHash)
		if ok {
			csp.Outcome(obs.OutcomeHit).End()
			return replay(idx, f, rec)
		}
		csp.Outcome(obs.OutcomeMiss).End()
	}
	var fr FileResult
	if r.filter != nil && !r.mayMatchTraced(tk, f, fileHash) {
		// Provably unmatchable: synthesize the result a full run would
		// produce, without parsing. (A syntactically broken file that
		// cannot match is skipped too — its parse error goes unreported,
		// like spatch under a glimpse index; pass NoPrefilter to surface
		// such errors.)
		fr = FileResult{
			Index: idx, Name: f.Name, Output: f.Src,
			MatchCount: map[string]int{}, Skipped: true,
		}
	} else {
		fr = r.applyFile(eng, tk, f, idx)
	}
	if r.opts.Verify && fr.Err == nil && fr.Output != f.Src {
		vsp := tk.Start(obs.StageVerify).File(f.Name)
		fr.Warnings = verify.Check(f.Name, f.Src, fr.Output, verifyOptions(r.opts.Engine))
		vsp.End()
		if verify.Unsafe(fr.Warnings) {
			fr.Demoted = true
			fr.Output = f.Src
			fr.Diff = ""
		}
	}
	if fileHash != "" && fr.Err == nil {
		// Errors are never cached: a parse failure is cheap to rediscover
		// and the user is likely editing the file to fix it.
		wsp := tk.Start(obs.StageCacheWrite).File(f.Name)
		r.store.PutResult(r.key(), fileHash, record(fr, f.Src))
		wsp.End()
	}
	return fr
}

// mayMatchTraced wraps mayMatch in a prefilter span recording the decision.
func (r *Runner) mayMatchTraced(tk *obs.Track, f core.SourceFile, fileHash string) bool {
	sp := tk.Start(obs.StagePrefilter).File(f.Name)
	ok := r.mayMatch(f.Src, fileHash)
	if ok {
		sp.Outcome(obs.OutcomePass)
	} else {
		sp.Outcome(obs.OutcomeSkip)
	}
	sp.End()
	return ok
}

// mayMatch consults the prefilter, answering from the persistent scan cache
// when one is open (and priming it when not): the file's word set is
// computed at most once per content hash, ever, instead of one byte scan
// per required atom per run. fileHash is the content hash when the caller
// already computed it ("" otherwise), so a file is hashed at most once.
func (r *Runner) mayMatch(src, fileHash string) bool {
	if r.store == nil {
		return r.filter.MayMatch(src)
	}
	h := fileHash
	if h == "" {
		h = cache.HashString(src)
	}
	words, ok := r.store.Words(h)
	if !ok {
		words = index.ScanWords(src)
		r.store.PutWords(h, words)
	}
	return r.filter.MayMatchWords(words)
}

// record captures a completed file result for the cache.
func record(fr FileResult, input string) *cache.Record {
	rec := &cache.Record{
		MatchCount:    fr.MatchCount,
		Skipped:       fr.Skipped,
		EnvsTruncated: fr.EnvsTruncated,
		Warnings:      storeWarnings(fr.Warnings),
		Demoted:       fr.Demoted,
		Findings:      storeFindings(fr.Findings),
	}
	if fr.Output != input {
		rec.Changed = true
		rec.Output = fr.Output
	}
	return rec
}

// replay synthesizes the FileResult a full run would produce from a cached
// record. The diff is recomputed (it is a pure function of input and
// output), so replayed results are byte-identical to cold ones.
func replay(idx int, f core.SourceFile, rec *cache.Record) FileResult {
	fr := FileResult{
		Index: idx, Name: f.Name, Output: f.Src,
		MatchCount: rec.MatchCount, Cached: true,
		EnvsTruncated: rec.EnvsTruncated,
		Warnings:      loadWarnings(rec.Warnings),
		Demoted:       rec.Demoted,
		Findings:      loadFindings(rec.Findings),
	}
	if fr.MatchCount == nil {
		fr.MatchCount = map[string]int{}
	}
	if rec.Changed {
		fr.Output = rec.Output
		fr.Diff = diff.Unified("a/"+f.Name, "b/"+f.Name, f.Src, fr.Output)
	}
	return fr
}

// Collect runs the batch and accumulates aggregate statistics, forwarding
// each result to fn (which may be nil). A non-nil error from fn stops the
// run and is returned; per-file errors only count in Stats.Errors.
func (r *Runner) Collect(files []core.SourceFile, fn func(FileResult) error) (Stats, error) {
	return r.collect(func(yield func(FileResult) bool) { r.Run(files, yield) }, fn)
}

// CollectPaths is Collect over on-disk files (see RunPaths).
func (r *Runner) CollectPaths(paths []string, fn func(FileResult) error) (Stats, error) {
	return r.collect(func(yield func(FileResult) bool) { r.RunPaths(paths, yield) }, fn)
}

func (r *Runner) collect(run func(func(FileResult) bool), fn func(FileResult) error) (Stats, error) {
	var st Stats
	var cbErr error
	run(func(fr FileResult) bool {
		if fr.Index < 0 { // configuration error: abort, don't count files
			cbErr = fr.Err
			return false
		}
		st.Files++
		switch {
		case fr.Err != nil:
			st.Errors++
		default:
			if fr.Skipped {
				st.Skipped++
			}
			if fr.Cached {
				st.Cached++
			}
			if m := fr.Matches(); m > 0 {
				st.Matched++
				st.Matches += m
			}
			if fr.Changed() {
				st.Changed++
			}
			st.FuncsMatched += fr.FuncsMatched
			st.FuncsCached += fr.FuncsCached
			if fr.Demoted {
				st.Demoted++
			}
			st.Warnings += len(fr.Warnings)
			st.Findings += len(fr.Findings)
			if fr.Parsed {
				st.Parsed++
			}
		}
		if fn != nil {
			if err := fn(fr); err != nil {
				cbErr = err
				return false
			}
		}
		return true
	})
	return st, cbErr
}

// applyFile patches one file, through the function-granular pipeline when
// this runner has one (falling back to the file-level engine whenever a
// file or outcome is outside its province), else directly at file level.
func (r *Runner) applyFile(eng *core.Engine, tk *obs.Track, f core.SourceFile, idx int) FileResult {
	if r.fn == nil {
		return applyOne(eng, f, idx)
	}
	psp := tk.Start(obs.StageParse).File(f.Name)
	parsed, err := cparse.Parse(f.Name, f.Src, cparse.Options{
		CPlusPlus: r.opts.Engine.CPlusPlus, Std: r.opts.Engine.Std, CUDA: r.opts.Engine.CUDA,
	})
	psp.End()
	if err != nil {
		// Match the file-level path's error shape (core.Engine.Run).
		return FileResult{Index: idx, Name: f.Name, Err: fmt.Errorf("parsing %s: %w", f.Name, err)}
	}
	var store cache.Store
	key := ""
	if r.resultCacheable() {
		store, key = r.store, r.key()
	}
	if out, ok := r.fn.apply(eng, tk, f.Name, f.Src, parsed, store, key); ok {
		return FileResult{
			Index:        idx,
			Name:         f.Name,
			Output:       out.Output,
			Diff:         diff.Unified("a/"+f.Name, "b/"+f.Name, f.Src, out.Output),
			MatchCount:   out.MatchCount,
			FuncsMatched: out.Matched,
			FuncsCached:  out.Cached,
			Findings:     out.Findings,
			Parsed:       true,
		}
	}
	return applyOneParsed(eng, f, parsed, idx)
}

// applyOne patches a single file on a reset engine.
func applyOne(eng *core.Engine, f core.SourceFile, idx int) FileResult {
	eng.Reset()
	res, err := eng.Run([]core.SourceFile{f})
	if err != nil {
		return FileResult{Index: idx, Name: f.Name, Err: err}
	}
	return fileResult(idx, f, res)
}

// applyOneParsed is applyOne over an already-parsed input tree.
func applyOneParsed(eng *core.Engine, f core.SourceFile, parsed *cast.File, idx int) FileResult {
	eng.Reset()
	res, err := eng.RunParsed([]core.ParsedFile{{Name: f.Name, Src: f.Src, File: parsed}})
	if err != nil {
		return FileResult{Index: idx, Name: f.Name, Err: err}
	}
	return fileResult(idx, f, res)
}

func fileResult(idx int, f core.SourceFile, res *core.Result) FileResult {
	return FileResult{
		Index:         idx,
		Name:          f.Name,
		Output:        res.Outputs[f.Name],
		Diff:          res.Diffs[f.Name],
		MatchCount:    res.MatchCount,
		EnvsTruncated: res.EnvsTruncated,
		Findings:      res.Findings,
		Parsed:        true,
	}
}
