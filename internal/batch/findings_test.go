// Findings through the batch layer: check-rule reports must survive the
// file-level result cache verbatim, survive the function-granular cache in
// re-anchored form (identical to a fresh run even after unrelated parts of
// the file moved), and aggregate into the run statistics.

package batch

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/smpl"
)

var errReadForbidden = errors.New("warm replay must not read the file")

const checkPatchText = `// gocci:check id=sync-call severity=error msg="blocking call of sync_api(E)"
@s@
expression E;
@@
* sync_api(E);
`

func parseCheckPatch(t *testing.T) *smpl.Patch {
	t.Helper()
	p, err := smpl.ParsePatch("check.cocci", checkPatchText)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFindingsFileCacheReplay pins the file-level result cache: a warm run
// replays findings byte-identical to the cold run that stored them.
func TestFindingsFileCacheReplay(t *testing.T) {
	files := []core.SourceFile{
		fnBuildFile("a.c", []string{"\tsync_api(x);\n", "\twork(x, 1);\n"}),
		fnBuildFile("b.c", []string{"\twork(x, 2);\n"}),
	}
	patch := parseCheckPatch(t)
	r := New(patch, Options{CacheDir: t.TempDir(), NoFuncCache: true})
	cold := runAll(t, r, files)
	if len(cold[0].Findings) != 1 || cold[0].Findings[0].Check != "sync-call" {
		t.Fatalf("cold findings = %+v", cold[0].Findings)
	}
	if cold[0].Output != files[0].Src {
		t.Fatal("check patch rewrote its input")
	}
	warm := runAll(t, r, files)
	for i := range warm {
		if !warm[i].Cached {
			t.Fatalf("%s not replayed from the cache", warm[i].Name)
		}
		if !reflect.DeepEqual(warm[i].Findings, cold[i].Findings) {
			t.Fatalf("%s: replayed findings differ\ncold: %+v\nwarm: %+v",
				warm[i].Name, cold[i].Findings, warm[i].Findings)
		}
	}
}

// TestFindingsFunctionCacheReanchor pins the function-granular cache: after
// editing one function, a warm run replays the other segments' findings and
// re-anchors them to the current parse — lines drift, baseline keys do not —
// producing exactly what an uncached run over the edited text reports.
func TestFindingsFunctionCacheReanchor(t *testing.T) {
	bodies := []string{"\twork(x, 0);\n", "\tsync_api(x);\n", "\tsync_api(y);\n"}
	file := fnBuildFile("m.c", bodies)
	patch := parseCheckPatch(t)
	r := New(patch, Options{CacheDir: t.TempDir()})
	cold := runAll(t, r, []core.SourceFile{file})[0]
	if len(cold.Findings) != 2 {
		t.Fatalf("cold findings = %+v", cold.Findings)
	}

	// Grow the first (non-matching) function: every later segment moves but
	// none of their content changes.
	edited := bodies
	edited[0] = "\twork(x, 0);\n\twork(x, 7);\n\twork(x, 9);\n"
	editedFile := fnBuildFile("m.c", edited)
	if editedFile.Src == file.Src {
		t.Fatal("edit did not change the file")
	}
	warm := runAll(t, r, []core.SourceFile{editedFile})[0]
	if warm.FuncsCached < 2 {
		t.Fatalf("FuncsCached = %d, want >= 2 (unchanged functions replayed)", warm.FuncsCached)
	}

	fresh := runAll(t, New(patch, Options{}), []core.SourceFile{editedFile})[0]
	got := append([]analysis.Finding(nil), warm.Findings...)
	want := append([]analysis.Finding(nil), fresh.Findings...)
	analysis.Sort(got)
	analysis.Sort(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed findings differ from a fresh run\nwarm:  %+v\nfresh: %+v", got, want)
	}
	// The findings moved with their functions but kept their identity.
	for i := range got {
		if got[i].Line <= cold.Findings[i].Line {
			t.Fatalf("finding %d did not drift: line %d -> %d", i, cold.Findings[i].Line, got[i].Line)
		}
	}
	coldKeys := map[string]bool{}
	for i := range cold.Findings {
		coldKeys[cold.Findings[i].BaselineKey()] = true
	}
	for i := range got {
		if !coldKeys[got[i].BaselineKey()] {
			t.Fatalf("baseline key changed across line drift: %s", got[i].BaselineKey())
		}
	}
}

// TestFindingsStats pins the aggregate counters on Runner and Campaign runs.
func TestFindingsStats(t *testing.T) {
	files := []core.SourceFile{
		fnBuildFile("a.c", []string{"\tsync_api(x);\n", "\tsync_api(y);\n"}),
		fnBuildFile("b.c", []string{"\twork(x, 1);\n"}),
	}
	patch := parseCheckPatch(t)
	st, err := New(patch, Options{}).Collect(files, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Findings != 2 || st.Changed != 0 {
		t.Fatalf("runner stats = %+v, want 2 findings, 0 changed", st)
	}
	cst, err := NewCampaign([]*smpl.Patch{patch}, Options{}).Collect(files, func(fr CampaignFileResult) error {
		if fr.Name == "a.c" && len(fr.Findings()) != 2 {
			t.Errorf("a.c campaign findings = %+v", fr.Findings())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cst.PerPatch[0].Findings != 2 {
		t.Fatalf("campaign per-patch stats = %+v", cst.PerPatch[0])
	}
}

// TestFindingsCampaignStateReplay pins the resident-server path: a warm
// RunStates sweep replays findings from the result cache without reading the
// file.
func TestFindingsCampaignStateReplay(t *testing.T) {
	file := fnBuildFile("s.c", []string{"\tsync_api(x);\n"})
	c := NewCampaign([]*smpl.Patch{parseCheckPatch(t)}, Options{CacheDir: t.TempDir(), NoFuncCache: true})
	var cold []analysis.Finding
	if _, err := c.Collect([]core.SourceFile{file}, func(fr CampaignFileResult) error {
		cold = fr.Findings()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(cold) != 1 {
		t.Fatalf("cold campaign findings = %+v", cold)
	}
	st := &FileState{
		Name: "s.c",
		Hash: cache.HashString(file.Src),
		Read: func() (string, error) { return "", errReadForbidden },
	}
	var warm []analysis.Finding
	elided := false
	if _, err := c.CollectStates([]*FileState{st}, func(fr CampaignFileResult) error {
		warm = fr.Findings()
		elided = fr.OutputElided
		if fr.Err != nil {
			return fr.Err
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !elided {
		t.Fatal("warm state sweep read the file instead of replaying")
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Fatalf("state-replayed findings differ\ncold: %+v\nwarm: %+v", cold, warm)
	}
	if !strings.Contains(warm[0].Message, "sync_api(x)") {
		t.Fatalf("interpolated message lost in replay: %q", warm[0].Message)
	}
}
