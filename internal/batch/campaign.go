// Campaign mode: apply a whole collection of semantic patches across a
// corpus in one sweep. The HPC maintenance workload the paper targets is
// rarely one patch — it is a library of coexisting refactorings (insert
// instrumentation, migrate an API, translate directives) re-run over a
// slowly-changing tree. Running gocci once per patch parses every file once
// per patch; a campaign parses each file at most once and evaluates every
// patch against the shared tree, falling back to a re-parse only when an
// earlier patch actually changed the file.
//
// Semantics are sequential composition per file: patch i+1 sees the file as
// patch i left it, exactly as if the patches had been applied by separate
// runs in order. Files remain independent of each other, so the worker
// pool, ordering, and memory bounds are those of the single-patch Runner.

package batch

import (
	"fmt"
	"os"

	"repro/internal/cache"
	"repro/internal/cast"
	"repro/internal/core"
	"repro/internal/cparse"
	"repro/internal/diff"
	"repro/internal/index"
	"repro/internal/smpl"
)

// campaignPatch is one compiled member of a campaign.
type campaignPatch struct {
	patch    *smpl.Patch
	compiled *core.Compiled
	filter   *index.Filter
	// engOpts is the engine configuration with Defines narrowed to the
	// names this patch declares virtual: a campaign-wide -D set may mix
	// names for different member patches.
	engOpts core.Options
	// key is this (patch, options) pair's result-cache key.
	key string
}

// Campaign applies an ordered list of compiled patches across file sets.
type Campaign struct {
	patches []*campaignPatch
	opts    Options
	scripts map[string]core.ScriptFunc
	cache   *cache.Cache
	cfgErr  error
}

// NewCampaign compiles every patch once and returns a Campaign. Each define
// in Options.Engine.Defines must be declared `virtual` by at least one
// member patch; a patch that does not declare a name simply does not see it
// (running the members as separate per-patch invocations would require
// per-patch -D sets — the campaign derives them).
func NewCampaign(patches []*smpl.Patch, opts Options) *Campaign {
	c := &Campaign{opts: opts, scripts: map[string]core.ScriptFunc{}}
	if len(patches) == 0 {
		c.cfgErr = fmt.Errorf("campaign: no patches given")
		return c
	}
	declared := map[string]bool{}
	for _, p := range patches {
		for _, v := range p.Virtuals {
			declared[v] = true
		}
	}
	for _, d := range opts.Engine.Defines {
		if !declared[d] {
			c.cfgErr = fmt.Errorf("define %q is not declared virtual in any patch of the campaign", d)
			return c
		}
	}
	if opts.CacheDir != "" {
		pc, err := cache.Open(opts.CacheDir)
		if err != nil {
			c.cfgErr = err
			return c
		}
		c.cache = pc
	}
	for _, p := range patches {
		cp := &campaignPatch{patch: p, compiled: core.Compile(p), engOpts: opts.Engine}
		cp.engOpts.Defines = intersectDefines(opts.Engine.Defines, p.Virtuals)
		if !opts.NoPrefilter {
			cp.filter = cp.compiled.Prefilter.ForDefines(cp.engOpts.Defines)
		}
		if c.cache != nil {
			cp.key = cache.ResultKey(p.Src, fingerprint(cp.engOpts))
		}
		c.patches = append(c.patches, cp)
	}
	return c
}

func intersectDefines(defines, virtuals []string) []string {
	decl := map[string]bool{}
	for _, v := range virtuals {
		decl[v] = true
	}
	var out []string
	for _, d := range defines {
		if decl[d] {
			out = append(out, d)
		}
	}
	return out
}

// Cache returns the open persistent cache, or nil when caching is disabled.
func (c *Campaign) Cache() *cache.Cache { return c.cache }

// RegisterScript installs a native Go handler for the named script rule on
// every worker engine of every member patch whose rules include it. Like
// Runner.RegisterScript, registering any handler disables the persistent
// result cache (the handler's behaviour is not part of the patch hash).
func (c *Campaign) RegisterScript(rule string, fn core.ScriptFunc) *Campaign {
	c.scripts[rule] = fn
	return c
}

func (c *Campaign) resultCacheable() bool {
	return c.cache != nil && len(c.scripts) == 0
}

// PatchOutcome is one member patch's effect on one file.
type PatchOutcome struct {
	// Patch is the member patch's name (its .cocci path).
	Patch string
	// MatchCount counts matches per rule of this patch in this file.
	MatchCount map[string]int
	// Changed reports that this patch modified the file (relative to the
	// text the preceding members left).
	Changed bool
	// Skipped reports the prefilter proved this patch cannot fire here.
	Skipped bool
	// Cached reports this patch's outcome was replayed from the result
	// cache without scanning, parsing, or matching.
	Cached bool
	// EnvsTruncated reports this patch's run hit the MaxEnvs cap.
	EnvsTruncated bool
}

// Matches is the total number of rule matches by this patch in the file.
func (o PatchOutcome) Matches() int {
	n := 0
	for _, c := range o.MatchCount {
		n += c
	}
	return n
}

// CampaignFileResult is the outcome for one input file across all patches.
type CampaignFileResult struct {
	// Index is the file's position in the input; results are delivered in
	// increasing Index order. A configuration error is delivered once as a
	// single result with Index -1.
	Index int
	// Name is the input file name.
	Name string
	// Output is the file after every patch, in order; empty when Err is
	// set.
	Output string
	// Diff is the unified diff from the original input to Output.
	Diff string
	// Patches holds one outcome per member patch, in campaign order. On a
	// per-file error it covers the members up to the failing one.
	Patches []PatchOutcome
	// Err is the per-file failure; other files still complete. A parse
	// failure aborts the file's remaining patches (they could not parse it
	// either).
	Err error
}

// Changed reports whether any patch modified the file.
func (r CampaignFileResult) Changed() bool { return r.Diff != "" }

// PatchStats aggregates one member patch over a completed run.
type PatchStats struct {
	Patch   string // patch name
	Matched int    // files where at least one of its rules matched
	Changed int    // files it modified
	Matches int    // total rule matches
	Skipped int    // files its prefilter rejected
	Cached  int    // files replayed from the result cache
}

// CampaignStats aggregates a completed campaign run.
type CampaignStats struct {
	Files    int // files processed
	Changed  int // files where the final output differs from the input
	Errors   int // files that failed
	PerPatch []PatchStats
}

// workers mirrors Runner.workers.
func (c *Campaign) workers(n int) int {
	r := Runner{opts: c.opts}
	return r.workers(n)
}

// Run streams per-file campaign results to yield in input order, stopping
// early if yield returns false; see Runner.Run for the pool contract.
func (c *Campaign) Run(files []core.SourceFile, yield func(CampaignFileResult) bool) {
	c.run(len(files), func(i int) (core.SourceFile, error) { return files[i], nil }, yield)
}

// RunPaths is Run over on-disk files, read lazily inside the pool.
func (c *Campaign) RunPaths(paths []string, yield func(CampaignFileResult) bool) {
	c.run(len(paths), func(i int) (core.SourceFile, error) {
		b, err := os.ReadFile(paths[i])
		if err != nil {
			return core.SourceFile{Name: paths[i]}, err
		}
		return core.SourceFile{Name: paths[i], Src: string(b)}, nil
	}, yield)
}

func (c *Campaign) run(n int, get func(int) (core.SourceFile, error), yield func(CampaignFileResult) bool) {
	if c.cfgErr != nil {
		yield(CampaignFileResult{Index: -1, Err: c.cfgErr})
		return
	}
	if n == 0 {
		return
	}
	workers := c.workers(n)
	window := c.opts.Window
	if window <= 0 {
		window = 2 * workers
	}
	popts := cparse.Options{
		CPlusPlus: c.opts.Engine.CPlusPlus, Std: c.opts.Engine.Std, CUDA: c.opts.Engine.CUDA,
	}
	runPool(n, workers, window, func() func(int) CampaignFileResult {
		engines := make([]*core.Engine, len(c.patches))
		for i, cp := range c.patches {
			engines[i] = core.NewCompiled(cp.compiled, cp.engOpts)
			for rule, fn := range c.scripts {
				engines[i].RegisterScript(rule, fn)
			}
		}
		return func(idx int) CampaignFileResult {
			f, err := get(idx)
			if err != nil {
				return CampaignFileResult{Index: idx, Name: f.Name, Err: err}
			}
			return c.processFile(engines, popts, f, idx)
		}
	}, func(fr CampaignFileResult) int { return fr.Index }, yield)
}

// processFile threads one file through every member patch in order. The
// expensive artifacts — the content hash, the identifier-word set, and the
// parse tree — are derived from the *current* text at most once each and
// shared by all members until a member actually changes the text, at which
// point they are invalidated together.
func (c *Campaign) processFile(engines []*core.Engine, popts cparse.Options, f core.SourceFile, idx int) CampaignFileResult {
	cur := f.Src
	curHash := ""             // content hash of cur ("" = not yet computed)
	var words map[string]bool // identifier-word set of cur (nil = not yet scanned)
	var parsed *cast.File     // parse tree of cur (nil = not yet parsed)
	invalidate := func() { curHash, words, parsed = "", nil, nil }

	fr := CampaignFileResult{Index: idx, Name: f.Name}
	for i, cp := range c.patches {
		o := PatchOutcome{Patch: cp.patch.Name}
		if c.resultCacheable() {
			if curHash == "" {
				curHash = cache.HashString(cur)
			}
			if rec, ok := c.cache.Result(cp.key, curHash); ok {
				o.Cached = true
				// Normalize the JSON omitempty round trip: cold runs always
				// produce a non-nil map, so replays must too.
				o.MatchCount = rec.MatchCount
				if o.MatchCount == nil {
					o.MatchCount = map[string]int{}
				}
				o.EnvsTruncated = rec.EnvsTruncated
				if rec.Changed {
					o.Changed = true
					cur = rec.Output
					invalidate()
				}
				fr.Patches = append(fr.Patches, o)
				continue
			}
		}
		if cp.filter != nil {
			if words == nil {
				words = c.scanWords(cur, &curHash)
			}
			if !cp.filter.MayMatchWords(words) {
				o.Skipped = true
				o.MatchCount = map[string]int{}
				c.put(cp, curHash, &cache.Record{Skipped: true})
				fr.Patches = append(fr.Patches, o)
				continue
			}
		}
		if parsed == nil {
			cf, err := cparse.Parse(f.Name, cur, popts)
			if err != nil {
				// No later patch could parse the file either; report once.
				fr.Err = fmt.Errorf("parsing %s: %w", f.Name, err)
				return fr
			}
			parsed = cf
		}
		eng := engines[i]
		eng.Reset()
		res, err := eng.RunParsed([]core.ParsedFile{{Name: f.Name, Src: cur, File: parsed}})
		if err != nil {
			fr.Err = err
			return fr
		}
		out := res.Outputs[f.Name]
		o.MatchCount = res.MatchCount
		o.EnvsTruncated = res.EnvsTruncated
		o.Changed = out != cur
		rec := &cache.Record{MatchCount: res.MatchCount, EnvsTruncated: res.EnvsTruncated}
		if o.Changed {
			rec.Changed = true
			rec.Output = out
		}
		c.put(cp, curHash, rec)
		if o.Changed {
			cur = out
			invalidate()
		}
		fr.Patches = append(fr.Patches, o)
	}
	fr.Output = cur
	fr.Diff = diff.Unified("a/"+f.Name, "b/"+f.Name, f.Src, cur)
	return fr
}

// scanWords computes (or recalls) the identifier-word set for text, priming
// the persistent scan cache when one is open. hash is threaded by pointer
// so a hash computed here is reused by the caller's cache lookups.
func (c *Campaign) scanWords(text string, hash *string) map[string]bool {
	if c.cache == nil {
		return index.ScanWords(text)
	}
	if *hash == "" {
		*hash = cache.HashString(text)
	}
	if words, ok := c.cache.Words(*hash); ok {
		return words
	}
	words := index.ScanWords(text)
	c.cache.PutWords(*hash, words)
	return words
}

// put persists one member outcome when result caching is on.
func (c *Campaign) put(cp *campaignPatch, fileHash string, rec *cache.Record) {
	if !c.resultCacheable() || fileHash == "" {
		return
	}
	c.cache.PutResult(cp.key, fileHash, rec)
}

// Collect runs the campaign and accumulates aggregate and per-patch
// statistics, forwarding each result to fn (which may be nil). A non-nil
// error from fn stops the run and is returned; per-file errors only count
// in CampaignStats.Errors.
func (c *Campaign) Collect(files []core.SourceFile, fn func(CampaignFileResult) error) (CampaignStats, error) {
	return c.collectC(func(yield func(CampaignFileResult) bool) { c.Run(files, yield) }, fn)
}

// CollectPaths is Collect over on-disk files (see RunPaths).
func (c *Campaign) CollectPaths(paths []string, fn func(CampaignFileResult) error) (CampaignStats, error) {
	return c.collectC(func(yield func(CampaignFileResult) bool) { c.RunPaths(paths, yield) }, fn)
}

func (c *Campaign) collectC(run func(func(CampaignFileResult) bool), fn func(CampaignFileResult) error) (CampaignStats, error) {
	st := CampaignStats{PerPatch: make([]PatchStats, len(c.patches))}
	for i, cp := range c.patches {
		st.PerPatch[i].Patch = cp.patch.Name
	}
	var cbErr error
	run(func(fr CampaignFileResult) bool {
		if fr.Index < 0 { // configuration error: abort, don't count files
			cbErr = fr.Err
			return false
		}
		st.Files++
		switch {
		case fr.Err != nil:
			st.Errors++
		default:
			if fr.Changed() {
				st.Changed++
			}
		}
		for i, o := range fr.Patches {
			ps := &st.PerPatch[i]
			if m := o.Matches(); m > 0 {
				ps.Matched++
				ps.Matches += m
			}
			if o.Changed {
				ps.Changed++
			}
			if o.Skipped {
				ps.Skipped++
			}
			if o.Cached {
				ps.Cached++
			}
		}
		if fn != nil {
			if err := fn(fr); err != nil {
				cbErr = err
				return false
			}
		}
		return true
	})
	return st, cbErr
}
