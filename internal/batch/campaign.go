// Campaign mode: apply a whole collection of semantic patches across a
// corpus in one sweep. The HPC maintenance workload the paper targets is
// rarely one patch — it is a library of coexisting refactorings (insert
// instrumentation, migrate an API, translate directives) re-run over a
// slowly-changing tree. Running gocci once per patch parses every file once
// per patch; a campaign parses each file at most once and evaluates every
// patch against the shared tree, falling back to a re-parse only when an
// earlier patch actually changed the file.
//
// Semantics are sequential composition per file: patch i+1 sees the file as
// patch i left it, exactly as if the patches had been applied by separate
// runs in order. Files remain independent of each other, so the worker
// pool, ordering, and memory bounds are those of the single-patch Runner.

package batch

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cparse"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/smpl"
	"repro/internal/verify"
)

// campaignPatch is one compiled member of a campaign.
type campaignPatch struct {
	patch    *smpl.Patch
	compiled *core.Compiled
	filter   *index.Filter
	// engOpts is the engine configuration with Defines narrowed to the
	// names this patch declares virtual: a campaign-wide -D set may mix
	// names for different member patches.
	engOpts core.Options
	// key is this (patch, options, scripts) tuple's result-cache key,
	// filled lazily at run start (Campaign.keys) so script handlers
	// registered after construction are reflected in it.
	key string
	// fn drives function-granular processing for this member when it
	// qualifies (core.FunctionLocal); nil otherwise.
	fn *fnRunner
}

// Campaign applies an ordered list of compiled patches across file sets.
type Campaign struct {
	patches []*campaignPatch
	opts    Options
	scripts map[string]core.ScriptFunc
	// scriptVers mirrors Runner.scriptVers: declared versions of handlers
	// registered through RegisterScriptVersioned, keyed into every member's
	// result-cache key.
	scriptVers map[string]string
	keyOnce    sync.Once
	// store is the cache the run reads and writes through (nil when caching
	// is disabled); disk is the *cache.Cache opened from Options.CacheDir,
	// kept separately for status reporting (nil when the store was supplied
	// by the caller via Options.Store).
	store  cache.Store
	disk   *cache.Cache
	cfgErr error
}

// NewCampaign compiles every patch once and returns a Campaign. Each define
// in Options.Engine.Defines must be declared `virtual` by at least one
// member patch; a patch that does not declare a name simply does not see it
// (running the members as separate per-patch invocations would require
// per-patch -D sets — the campaign derives them).
func NewCampaign(patches []*smpl.Patch, opts Options) *Campaign {
	c := &Campaign{opts: opts, scripts: map[string]core.ScriptFunc{}, scriptVers: map[string]string{}}
	if len(patches) == 0 {
		c.cfgErr = fmt.Errorf("campaign: no patches given")
		return c
	}
	declared := map[string]bool{}
	for _, p := range patches {
		for _, v := range p.Virtuals {
			declared[v] = true
		}
	}
	for _, d := range opts.Engine.Defines {
		if !declared[d] {
			c.cfgErr = fmt.Errorf("define %q is not declared virtual in any patch of the campaign", d)
			return c
		}
	}
	switch {
	case opts.Store != nil:
		c.store = opts.Store
	case opts.CacheDir != "":
		pc, err := cache.Open(opts.CacheDir)
		if err != nil {
			c.cfgErr = err
			return c
		}
		c.disk, c.store = pc, pc
	}
	for _, p := range patches {
		cp := &campaignPatch{patch: p, compiled: core.Compile(p), engOpts: opts.Engine}
		cp.engOpts.Defines = intersectDefines(opts.Engine.Defines, p.Virtuals)
		if !opts.NoPrefilter {
			cp.filter = cp.compiled.Prefilter.ForDefines(cp.engOpts.Defines)
		}
		if !opts.NoFuncCache {
			cp.fn = newFnRunner(cp.compiled, cp.engOpts, cp.filter)
		}
		c.patches = append(c.patches, cp)
	}
	return c
}

func intersectDefines(defines, virtuals []string) []string {
	decl := map[string]bool{}
	for _, v := range virtuals {
		decl[v] = true
	}
	var out []string
	for _, d := range defines {
		if decl[d] {
			out = append(out, d)
		}
	}
	return out
}

// Cache returns the disk cache opened from Options.CacheDir, or nil when
// caching is disabled or the store was supplied via Options.Store (such a
// caller reports its own cache status).
func (c *Campaign) Cache() *cache.Cache { return c.disk }

// RegisterScript installs a native Go handler for the named script rule on
// every worker engine of every member patch whose rules include it. Like
// Runner.RegisterScript, registering any handler disables the persistent
// result cache (the handler's behaviour is not part of the patch hash).
func (c *Campaign) RegisterScript(rule string, fn core.ScriptFunc) *Campaign {
	c.scripts[rule] = fn
	return c
}

// RegisterScriptVersioned is RegisterScript for handlers that declare a
// version covering everything their behaviour depends on; the version joins
// every member's result-cache key, keeping the result cache enabled (see
// Runner.RegisterScriptVersioned).
func (c *Campaign) RegisterScriptVersioned(rule, version string, fn core.ScriptFunc) *Campaign {
	c.scripts[rule] = fn
	c.scriptVers[rule] = version
	return c
}

func (c *Campaign) resultCacheable() bool {
	return c.store != nil && len(c.scripts) == len(c.scriptVers)
}

// keys fills every member's result-cache key on first use (run start),
// folding in verify mode and registered script versions. Callers must not
// register further scripts once a run has started.
func (c *Campaign) keys() {
	c.keyOnce.Do(func() {
		if c.store == nil {
			return
		}
		for _, cp := range c.patches {
			cp.key = cache.ResultKey(cp.patch.Src,
				keyFingerprint(cp.engOpts, c.opts.Verify, cp.patch.HasChecks(), c.scriptVers))
		}
	})
}

// PatchOutcome is one member patch's effect on one file.
type PatchOutcome struct {
	// Patch is the member patch's name (its .cocci path).
	Patch string
	// MatchCount counts matches per rule of this patch in this file.
	MatchCount map[string]int
	// Changed reports that this patch modified the file (relative to the
	// text the preceding members left).
	Changed bool
	// Skipped reports the prefilter proved this patch cannot fire here.
	Skipped bool
	// Cached reports this patch's outcome was replayed from the result
	// cache without scanning, parsing, or matching.
	Cached bool
	// EnvsTruncated reports this patch's run hit the MaxEnvs cap.
	EnvsTruncated bool
	// FuncsMatched and FuncsCached count this file's function segments
	// matched fresh vs replayed by this patch's function-granular pipeline
	// (both 0 on the file-level path).
	FuncsMatched int
	FuncsCached  int
	// Warnings are the post-transform verifier's findings for this patch on
	// this file (only ever set under Options.Verify).
	Warnings []verify.Warning
	// Demoted reports that an unsafe finding reverted this patch's edit:
	// MatchCount still records what matched, but Changed is false and later
	// members saw the text this patch received.
	Demoted bool
	// Findings are this patch's check-rule reports for this file. Positions
	// refer to the text this member received (the input for check-only
	// campaigns, which never transform).
	Findings []analysis.Finding
}

// Matches is the total number of rule matches by this patch in the file.
func (o PatchOutcome) Matches() int {
	n := 0
	for _, c := range o.MatchCount {
		n += c
	}
	return n
}

// CampaignFileResult is the outcome for one input file across all patches.
type CampaignFileResult struct {
	// Index is the file's position in the input; results are delivered in
	// increasing Index order. A configuration error is delivered once as a
	// single result with Index -1.
	Index int
	// Name is the input file name.
	Name string
	// Output is the file after every patch, in order; empty when Err is
	// set.
	Output string
	// OutputElided reports that the run proved the file unchanged without
	// ever reading its text (RunStates over an unloaded FileState replayed
	// everything from the cache): Output is "" and the file's on-disk
	// content is its own output. Never set by Run or RunPaths.
	OutputElided bool
	// Diff is the unified diff from the original input to Output.
	Diff string
	// Patches holds one outcome per member patch, in campaign order. On a
	// per-file error it covers the members up to the failing one.
	Patches []PatchOutcome
	// Parsed reports that the sweep actually parsed the file's text (at
	// least once; transforms can force re-parses). False when every member
	// replayed, skipped, or was ruled out without parsing.
	Parsed bool
	// Err is the per-file failure; other files still complete. A parse
	// failure aborts the file's remaining patches (they could not parse it
	// either).
	Err error
}

// Changed reports whether any patch modified the file.
func (r CampaignFileResult) Changed() bool { return r.Diff != "" }

// Findings gathers every member patch's check-rule reports for the file, in
// campaign order.
func (r CampaignFileResult) Findings() []analysis.Finding {
	var out []analysis.Finding
	for _, o := range r.Patches {
		out = append(out, o.Findings...)
	}
	return out
}

// PatchStats aggregates one member patch over a completed run.
type PatchStats struct {
	Patch   string // patch name
	Matched int    // files where at least one of its rules matched
	Changed int    // files it modified
	Matches int    // total rule matches
	Skipped int    // files its prefilter rejected
	Cached  int    // files replayed from the result cache
	// FuncsMatched and FuncsCached count function segments matched fresh
	// vs replayed from the function-granular cache across all files.
	FuncsMatched int
	FuncsCached  int
	// Demoted counts files where the verifier reverted this patch's edit;
	// Warnings totals its verifier findings across all files.
	Demoted  int
	Warnings int
	// Findings totals this patch's check-rule reports across all files.
	Findings int
}

// CampaignStats aggregates a completed campaign run.
type CampaignStats struct {
	Files    int // files processed
	Changed  int // files where the final output differs from the input
	Errors   int // files that failed
	Parsed   int // files the sweep actually parsed (vs replayed/skipped)
	PerPatch []PatchStats
}

// workers mirrors Runner.workers.
func (c *Campaign) workers(n int) int {
	r := Runner{opts: c.opts}
	return r.workers(n)
}

// Run streams per-file campaign results to yield in input order, stopping
// early if yield returns false; see Runner.Run for the pool contract.
func (c *Campaign) Run(files []core.SourceFile, yield func(CampaignFileResult) bool) {
	c.run(len(files), c.opts.Tracer, func(i int) *FileState {
		return &FileState{Name: files[i].Name, Src: files[i].Src, Loaded: true}
	}, yield)
}

// RunPaths is Run over on-disk files, read lazily inside the pool.
func (c *Campaign) RunPaths(paths []string, yield func(CampaignFileResult) bool) {
	c.run(len(paths), c.opts.Tracer, func(i int) *FileState {
		path := paths[i]
		return &FileState{Name: path, Read: func() (string, error) {
			b, err := os.ReadFile(path)
			return string(b), err
		}}
	}, yield)
}

// run drives the pool over n states. tr is the run's trace sink — usually
// Options.Tracer, but the *T run variants substitute a per-call tracer so a
// resident server can trace each request separately against one long-lived
// Campaign (which cannot be copied per request: it embeds a sync.Once).
func (c *Campaign) run(n int, tr *obs.Tracer, get func(int) *FileState, yield func(CampaignFileResult) bool) {
	if c.cfgErr != nil {
		yield(CampaignFileResult{Index: -1, Err: c.cfgErr})
		return
	}
	if n == 0 {
		return
	}
	c.keys()
	workers := c.workers(n)
	window := c.opts.Window
	if window <= 0 {
		window = 2 * workers
	}
	popts := cparse.Options{
		CPlusPlus: c.opts.Engine.CPlusPlus, Std: c.opts.Engine.Std, CUDA: c.opts.Engine.CUDA,
	}
	var wid atomic.Int32
	runPool(n, workers, window, func() (func(int) CampaignFileResult, func()) {
		tk := tr.Track(fmt.Sprintf("worker-%d", wid.Add(1)))
		engines := make([]*core.Engine, len(c.patches))
		for i, cp := range c.patches {
			engines[i] = core.NewCompiled(cp.compiled, cp.engOpts)
			engines[i].SetTrace(tk)
			for rule, fn := range c.scripts {
				engines[i].RegisterScript(rule, fn)
			}
		}
		wsp := tk.Start(obs.StageWorker)
		return func(idx int) CampaignFileResult {
			return c.processState(engines, popts, tk, get(idx), idx)
		}, wsp.End
	}, func(fr CampaignFileResult) int { return fr.Index }, yield)
}

// put persists one member outcome when result caching is on.
func (c *Campaign) put(tk *obs.Track, cp *campaignPatch, fileHash string, rec *cache.Record) {
	if !c.resultCacheable() || fileHash == "" {
		return
	}
	sp := tk.Start(obs.StageCacheWrite)
	c.store.PutResult(cp.key, fileHash, rec)
	sp.End()
}

// verifyOutcome runs the post-transform checker over one member's edit
// (before → after), recording the findings on both the live outcome and its
// cache record. An unsafe finding demotes the edit — the member's Changed is
// cleared on both, and the returned text (what later members see) reverts to
// before. Only called when the member actually changed the text.
func (c *Campaign) verifyOutcome(tk *obs.Track, name, before, after string, o *PatchOutcome, rec *cache.Record) string {
	if !c.opts.Verify {
		return after
	}
	sp := tk.Start(obs.StageVerify).File(name)
	warns := verify.Check(name, before, after, verifyOptions(c.opts.Engine))
	sp.End()
	o.Warnings = warns
	rec.Warnings = storeWarnings(warns)
	if verify.Unsafe(warns) {
		o.Demoted, o.Changed = true, false
		rec.Demoted, rec.Changed, rec.Output = true, false, ""
		return before
	}
	return after
}

// Collect runs the campaign and accumulates aggregate and per-patch
// statistics, forwarding each result to fn (which may be nil). A non-nil
// error from fn stops the run and is returned; per-file errors only count
// in CampaignStats.Errors.
func (c *Campaign) Collect(files []core.SourceFile, fn func(CampaignFileResult) error) (CampaignStats, error) {
	return c.collectC(func(yield func(CampaignFileResult) bool) { c.Run(files, yield) }, fn)
}

// CollectPaths is Collect over on-disk files (see RunPaths).
func (c *Campaign) CollectPaths(paths []string, fn func(CampaignFileResult) error) (CampaignStats, error) {
	return c.collectC(func(yield func(CampaignFileResult) bool) { c.RunPaths(paths, yield) }, fn)
}

func (c *Campaign) collectC(run func(func(CampaignFileResult) bool), fn func(CampaignFileResult) error) (CampaignStats, error) {
	st := CampaignStats{PerPatch: make([]PatchStats, len(c.patches))}
	for i, cp := range c.patches {
		st.PerPatch[i].Patch = cp.patch.Name
	}
	var cbErr error
	run(func(fr CampaignFileResult) bool {
		if fr.Index < 0 { // configuration error: abort, don't count files
			cbErr = fr.Err
			return false
		}
		st.Files++
		if fr.Parsed {
			st.Parsed++
		}
		switch {
		case fr.Err != nil:
			st.Errors++
		default:
			if fr.Changed() {
				st.Changed++
			}
		}
		for i, o := range fr.Patches {
			ps := &st.PerPatch[i]
			if m := o.Matches(); m > 0 {
				ps.Matched++
				ps.Matches += m
			}
			if o.Changed {
				ps.Changed++
			}
			if o.Skipped {
				ps.Skipped++
			}
			if o.Cached {
				ps.Cached++
			}
			ps.FuncsMatched += o.FuncsMatched
			ps.FuncsCached += o.FuncsCached
			if o.Demoted {
				ps.Demoted++
			}
			ps.Warnings += len(o.Warnings)
			ps.Findings += len(o.Findings)
		}
		if fn != nil {
			if err := fn(fr); err != nil {
				cbErr = err
				return false
			}
		}
		return true
	})
	return st, cbErr
}
