// Function-granular incremental matching. For a function-local patch (one
// match rule, no cross-segment coupling — see core.FunctionLocal), a file is
// cut at its top-level function definitions (cast.SegmentFile) and each
// segment is matched independently under a window restricted to its token
// extent. Segment outcomes are cached by content hash (cache.FuncRecord), so
// a warm run after editing one function of a k-function file replays k-1
// segments and re-matches exactly one; fresh segments of one file are
// matched in parallel goroutines sharing one engine. The file-level answer
// is spliced from the per-segment texts; a cold run cross-checks the splice
// against a whole-file render of the merged edits before any segment record
// is persisted, and any condition the segment pipeline cannot reproduce
// byte-exactly (edits escaping a segment, ambiguous boundary rendering,
// MaxEnvs truncation, misaligned segment boundaries) falls back to the
// ordinary file-level path.
package batch

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/cast"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/transform"
)

// Package-level instrumentation, mirroring cparse.Parses: cumulative counts
// of function segments matched fresh, replayed from the cache, and ruled
// out by the per-function prefilter. The parity and fuzz tests read deltas
// to assert that a warm run re-matched exactly the edited function.
var (
	fnMatched     atomic.Int64
	fnReplayed    atomic.Int64
	fnPrefiltered atomic.Int64
)

// FuncMatches returns the cumulative number of function segments matched
// fresh by function-granular runs in this process.
func FuncMatches() int64 { return fnMatched.Load() }

// FuncReplays returns the cumulative number of function segments replayed
// from the function-granular result cache in this process.
func FuncReplays() int64 { return fnReplayed.Load() }

// FuncPrefilters returns the cumulative number of function segments the
// per-function prefilter ruled out without matching in this process.
func FuncPrefilters() int64 { return fnPrefiltered.Load() }

// fnRunner drives function-granular processing for one (compiled patch,
// engine options) pair. nil when the patch is not function-local.
type fnRunner struct {
	compiled *core.Compiled
	filter   *index.Filter
	ruleName string
	maxEnvs  int
}

// newFnRunner returns a runner when the patch and options are eligible for
// function-granular execution, nil otherwise.
func newFnRunner(compiled *core.Compiled, engOpts core.Options, filter *index.Filter) *fnRunner {
	if !core.FunctionLocal(compiled, engOpts) {
		return nil
	}
	maxEnvs := engOpts.MaxEnvs
	if maxEnvs == 0 {
		maxEnvs = 4096
	}
	return &fnRunner{
		compiled: compiled,
		filter:   filter,
		ruleName: core.FunctionLocalRule(compiled).Name,
		maxEnvs:  maxEnvs,
	}
}

// fnOutcome is the file-level result assembled from per-segment outcomes.
type fnOutcome struct {
	Output     string
	MatchCount map[string]int
	Changed    bool
	Matched    int // function segments matched fresh
	Cached     int // function segments replayed from the cache
	// Findings are the check-rule reports across all segments: fresh ones
	// carry current positions, replayed ones are re-anchored to the current
	// parse from their segment-relative token offsets.
	Findings []analysis.Finding
}

// storeFnFindings strips a segment's findings to their position-independent
// cache form: everything re-derivable from the live parse at replay time
// (file, line, column, enclosing function name and hash) is dropped, keeping
// only the anchor's segment-relative token offset.
func storeFnFindings(fs []analysis.Finding) []cache.FnFinding {
	if len(fs) == 0 {
		return nil
	}
	out := make([]cache.FnFinding, len(fs))
	for i, f := range fs {
		out[i] = cache.FnFinding{
			Check: f.Check, Severity: f.Severity, Message: f.Message,
			Rule: f.Rule, Bindings: f.Bindings, TokOff: f.TokOff,
		}
	}
	return out
}

// loadFnFindings re-anchors a replayed segment's findings against the
// current parse: slot i < n is function i (anchor = segment start + offset),
// slot n is the residue (anchor = ResidueToken(offset)). Line, column,
// function name, and function hash are recomputed, so a record replayed
// after unrelated parts of the file moved — or, for the residue's token-only
// key, after whitespace between functions changed — reports exactly what a
// fresh run over the current text would.
func loadFnFindings(fs []cache.FnFinding, name string, segs *cast.Segmentation, i, n int) []analysis.Finding {
	if len(fs) == 0 {
		return nil
	}
	toks := segs.File.Toks.Tokens
	out := make([]analysis.Finding, len(fs))
	for k, f := range fs {
		af := analysis.Finding{
			Check: f.Check, Severity: f.Severity, File: name, Message: f.Message,
			Rule: f.Rule, Bindings: f.Bindings, TokOff: f.TokOff,
		}
		var anchor int
		if i < n {
			seg := &segs.Funcs[i]
			anchor = seg.First + f.TokOff
			if anchor > seg.Last {
				anchor = seg.Last
			}
			af.Func = seg.Name
			af.FuncHash = analysis.FuncKey(seg.Identity())
		} else {
			anchor = segs.ResidueToken(f.TokOff)
			af.FuncHash = analysis.FuncKey(segs.ResidueIdentity())
		}
		if anchor < 0 || anchor >= len(toks) {
			anchor = 0
		}
		pos := toks[anchor].Pos
		af.Line, af.Col = pos.Line, pos.Col
		out[k] = af
	}
	return out
}

// fnHash keys a function segment's cache entry.
func fnHash(seg *cast.FuncSeg) string {
	return cache.HashString("fn\x00" + seg.Identity())
}

// resHash keys the residue's full-content cache entry. The function count
// is part of the key so gap boundaries cannot alias across files whose
// concatenated gaps happen to collide.
func resHash(segs *cast.Segmentation) string {
	return cache.HashString(fmt.Sprintf("res\x00%d\x00", len(segs.Funcs)) + segs.ResidueIdentity())
}

// resTokHash keys the residue's token-only cache entry: gap token texts
// with per-token and per-gap separators, ignoring whitespace and comments.
// A record is stored under this key only when the residue run applied no
// edits, so replaying it after a whitespace- or comment-only edit between
// functions is sound — matching reads only token texts, and with no edits
// the rendered gaps are the current raw gaps.
func resTokHash(segs *cast.Segmentation) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "restok\x00%d", len(segs.Funcs))
	toks := segs.File.Toks.Tokens
	for i := 0; i <= len(segs.Funcs); i++ {
		sb.WriteByte('\x1e')
		a, b := segs.GapBounds(i)
		for j := a; j <= b; j++ {
			sb.WriteByte('\x1f')
			sb.WriteString(toks[j].Text)
		}
	}
	return cache.HashString(sb.String())
}

// segState tracks one segment (index < n: function i; index n: residue)
// through an apply call.
type segState struct {
	rec     *cache.FuncRecord // cached outcome, nil when fresh
	sr      *core.SegmentResult
	err     error
	skipped bool // per-segment prefilter ruled matching out
}

// matches returns the segment's applied-match count from whichever source
// resolved it.
func (s *segState) matches() int {
	if s.rec != nil {
		return s.rec.Matches
	}
	if s.sr != nil {
		return s.sr.Matches
	}
	return 0
}

// apply runs the patch function-granularly over one parsed file. ok=false
// means the caller must fall back to the ordinary file-level path; no cache
// record has been written for this file in that case (scan-cache priming
// aside, which is content-keyed and always sound).
func (r *fnRunner) apply(eng *core.Engine, tk *obs.Track, name, src string, parsed *cast.File, store cache.Store, key string) (fnOutcome, bool) {
	ssp := tk.Start(obs.StageSegment).File(name)
	segs := cast.SegmentFile(parsed)
	ssp.End()
	if segs == nil || !segs.Aligned() {
		return fnOutcome{}, false
	}
	n := len(segs.Funcs)
	states := make([]segState, n+1)

	// Replay segments whose content hash is cached. The residue tries its
	// full-content key first, then the token-only key (see resTokHash).
	cachedFns := 0
	if store != nil && key != "" {
		for i := range segs.Funcs {
			csp := tk.Start(obs.StageCacheRead).File(name).Func(segs.Funcs[i].Name)
			if rec, ok := store.FuncResult(key, fnHash(&segs.Funcs[i])); ok {
				states[i].rec = rec
				cachedFns++
				csp.Outcome(obs.OutcomeHit)
			} else {
				csp.Outcome(obs.OutcomeMiss)
			}
			csp.End()
		}
		csp := tk.Start(obs.StageCacheRead).File(name).Func("(residue)")
		if rec, ok := store.FuncResult(key, resHash(segs)); ok && (!rec.Changed || len(rec.Gaps) == n+1) {
			states[n].rec = rec
		} else if rec, ok := store.FuncResult(key, resTokHash(segs)); ok && !rec.Changed {
			states[n].rec = rec
		}
		if states[n].rec != nil {
			csp.Outcome(obs.OutcomeHit)
		} else {
			csp.Outcome(obs.OutcomeMiss)
		}
		csp.End()
	}

	// Match the remaining segments in parallel on this file, sharing the
	// engine: RunSegment only reads engine state.
	var fresh []int
	for i := range states {
		if states[i].rec == nil {
			fresh = append(fresh, i)
		}
	}
	freshFns := 0
	if len(fresh) > 0 {
		// One candidate enumeration serves every segment's matcher; without
		// it each RunSegment walks the whole AST again, costing k walks for
		// a k-segment file.
		cands := match.PrecomputeCands(parsed)
		var next atomic.Int64
		var wg sync.WaitGroup
		workers := runtime.GOMAXPROCS(0)
		if workers > len(fresh) {
			workers = len(fresh)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Fan-out goroutines share one engine but must not share a
				// track; each records on its own fork, passed via the job.
				fk := tk
				if workers > 1 {
					fk = tk.Fork(fmt.Sprintf("seg-%d", w))
				}
				for {
					k := int(next.Add(1)) - 1
					if k >= len(fresh) {
						return
					}
					i := fresh[k]
					if r.filter != nil && !r.segMayMatchTraced(fk, store, segs, i) {
						states[i].skipped = true
						states[i].sr = &core.SegmentResult{Edits: transform.NewEditSet(parsed.Toks)}
						if i < n {
							fnPrefiltered.Add(1)
						}
						continue
					}
					states[i].sr, states[i].err = eng.RunSegment(core.SegmentJob{
						Name: name, Src: src, File: parsed, Segs: segs, Fn: segIndex(i, n),
						Cands: cands, Trace: fk,
					})
				}
			}(w)
		}
		wg.Wait()
	}

	total := 0
	for i := range states {
		if states[i].err != nil || (states[i].sr != nil && states[i].sr.Escaped) {
			return fnOutcome{}, false
		}
		total += states[i].matches()
		if i < n && states[i].rec == nil {
			if states[i].skipped {
				continue
			}
			freshFns++
		}
	}
	if total >= r.maxEnvs {
		// A whole-file run would truncate (or sit exactly at the cap, which
		// only it can decide); its semantics are file-level.
		return fnOutcome{}, false
	}

	// Assemble per-segment texts. Unchanged segments are reconstructed from
	// the current parse, so cached entries stay position-independent.
	fnTexts := make([]string, n)
	for i := range segs.Funcs {
		switch {
		case states[i].rec != nil && states[i].rec.Changed:
			fnTexts[i] = states[i].rec.Output
		case states[i].rec != nil || states[i].skipped:
			fnTexts[i] = segs.Funcs[i].Raw()
		default:
			fnTexts[i] = states[i].sr.Text
		}
	}
	gaps := make([]string, n+1)
	for i := 0; i <= n; i++ {
		gaps[i] = segs.GapRaw(i)
	}
	switch {
	case states[n].rec != nil && states[n].rec.Changed:
		copy(gaps, states[n].rec.Gaps)
	case states[n].rec == nil && !states[n].skipped:
		copy(gaps, states[n].sr.Gaps)
	}
	rsp := tk.Start(obs.StageRender).File(name)
	spliced := segs.Splice(gaps, fnTexts)

	output := spliced
	verified := true
	if cachedFns == 0 && states[n].rec == nil {
		// Fully cold: the whole-file render of the merged per-segment edits
		// is the ground truth (it is exactly what a file-level run applies).
		// The splice must reproduce it byte-for-byte before any segment
		// record may be persisted and replayed into future splices.
		merged := transform.NewEditSet(parsed.Toks)
		for i := range states {
			if states[i].sr != nil && states[i].sr.Edits != nil {
				merged.Merge(states[i].sr.Edits)
			}
		}
		output = src
		if !merged.Empty() {
			output = merged.Apply()
		}
		verified = spliced == output
	}
	rsp.End()

	if store != nil && key != "" && verified {
		wsp := tk.Start(obs.StageCacheWrite).File(name)
		for i := range states {
			if states[i].rec != nil {
				continue
			}
			sr := states[i].sr
			rec := &cache.FuncRecord{Matches: sr.Matches, Changed: sr.Changed, Findings: storeFnFindings(sr.Findings)}
			if i < n {
				if sr.Changed {
					rec.Output = sr.Text
				}
				store.PutFuncResult(key, fnHash(&segs.Funcs[i]), rec)
			} else {
				if sr.Changed {
					rec.Gaps = sr.Gaps
				}
				store.PutFuncResult(key, resHash(segs), rec)
				if sr.Edits.Empty() {
					store.PutFuncResult(key, resTokHash(segs), &cache.FuncRecord{Matches: sr.Matches, Findings: rec.Findings})
				}
			}
		}
		wsp.End()
	}

	fnMatched.Add(int64(freshFns))
	fnReplayed.Add(int64(cachedFns))
	mc := map[string]int{}
	if total > 0 {
		mc[r.ruleName] = total
	}
	// Gather findings in segment order; replayed segments re-anchor theirs to
	// the current parse. Deduped like the file-level path (core.RunParsed), so
	// both paths report identical findings.
	var findings []analysis.Finding
	for i := range states {
		switch {
		case states[i].rec != nil:
			findings = append(findings, loadFnFindings(states[i].rec.Findings, name, segs, i, n)...)
		case states[i].sr != nil:
			findings = append(findings, states[i].sr.Findings...)
		}
	}
	findings = analysis.Dedupe(findings)
	return fnOutcome{
		Output:     output,
		MatchCount: mc,
		Changed:    output != src,
		Matched:    freshFns,
		Cached:     cachedFns,
		Findings:   findings,
	}, true
}

// segIndex maps a state slot to a SegmentJob.Fn (slot n is the residue).
func segIndex(i, n int) int {
	if i == n {
		return -1
	}
	return i
}

// segMayMatch answers the per-segment prefilter: false guarantees no match
// of the rule lies inside the segment, because every required atom occurs
// within a match's own token span. Function segments answer through the
// scan cache (one word scan per segment content hash, ever); the residue
// scans directly.
func (r *fnRunner) segMayMatchTraced(tk *obs.Track, store cache.Store, segs *cast.Segmentation, i int) bool {
	sp := tk.Start(obs.StagePrefilter)
	if i < len(segs.Funcs) {
		sp.Func(segs.Funcs[i].Name)
	} else {
		sp.Func("(residue)")
	}
	ok := r.segMayMatch(store, segs, i)
	if ok {
		sp.Outcome(obs.OutcomePass)
	} else {
		sp.Outcome(obs.OutcomeSkip)
	}
	sp.End()
	return ok
}

func (r *fnRunner) segMayMatch(store cache.Store, segs *cast.Segmentation, i int) bool {
	if i < len(segs.Funcs) {
		text := segs.Funcs[i].Text
		if store == nil {
			return r.filter.MayMatch(text)
		}
		h := cache.HashString(text)
		words, ok := store.Words(h)
		if !ok {
			words = index.ScanWords(text)
			store.PutWords(h, words)
		}
		return r.filter.MayMatchWords(words)
	}
	var sb strings.Builder
	for g := 0; g <= len(segs.Funcs); g++ {
		sb.WriteString(segs.GapRaw(g))
	}
	return r.filter.MayMatch(sb.String())
}
