package batch

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/smpl"
)

const secondPatch = `@s@
expression list el;
@@
- new_api(el)
+ newer_api(el)
`

const unrelatedPatch = `@u@
expression list el;
@@
- absent_api(el)
+ present_api(el)
`

// campaignCorpus mixes files that match patch 1 only, patch 2 only (via
// patch 1's output), and neither.
func campaignCorpus(n int) []core.SourceFile {
	return corpus(n)
}

// sequentialReference applies the patches one Runner at a time, feeding
// each patch the previous one's outputs — the semantics a campaign must
// reproduce exactly.
func sequentialReference(t *testing.T, patchTexts []string, files []core.SourceFile) []string {
	t.Helper()
	cur := make([]core.SourceFile, len(files))
	copy(cur, files)
	for _, pt := range patchTexts {
		r := New(parsePatch(t, pt), Options{Workers: 1})
		next := make([]core.SourceFile, len(cur))
		i := 0
		r.Run(cur, func(fr FileResult) bool {
			if fr.Err != nil {
				t.Fatalf("%s: %v", fr.Name, fr.Err)
			}
			next[i] = core.SourceFile{Name: fr.Name, Src: fr.Output}
			i++
			return true
		})
		cur = next
	}
	out := make([]string, len(cur))
	for i, f := range cur {
		out[i] = f.Src
	}
	return out
}

// A campaign must equal running its member patches as separate sequential
// batch runs, file for file and byte for byte, at any worker count.
func TestCampaignEqualsSequentialRuns(t *testing.T) {
	files := campaignCorpus(30)
	texts := []string{renamePatch, secondPatch, unrelatedPatch}
	want := sequentialReference(t, texts, files)

	for _, workers := range []int{1, 4, 16} {
		c := NewCampaign(parseAll(t, texts), Options{Workers: workers})
		i := 0
		c.Run(files, func(fr CampaignFileResult) bool {
			if fr.Err != nil {
				t.Fatalf("%s: %v", fr.Name, fr.Err)
			}
			if fr.Index != i {
				t.Fatalf("out of order: got index %d at position %d", fr.Index, i)
			}
			if fr.Output != want[i] {
				t.Errorf("workers=%d %s: campaign output differs from sequential runs", workers, fr.Name)
			}
			if len(fr.Patches) != len(texts) {
				t.Fatalf("%s: %d patch outcomes, want %d", fr.Name, len(fr.Patches), len(texts))
			}
			i++
			return true
		})
		if i != len(files) {
			t.Fatalf("workers=%d: delivered %d of %d results", workers, i, len(files))
		}
	}
}

func parseAll(t *testing.T, texts []string) []*smpl.Patch {
	t.Helper()
	out := make([]*smpl.Patch, len(texts))
	for i, pt := range texts {
		out[i] = parsePatch(t, pt)
	}
	return out
}

func TestCampaignStats(t *testing.T) {
	files := campaignCorpus(9) // files 0,3,6 call old_api
	c := NewCampaign(parseAll(t, []string{renamePatch, secondPatch, unrelatedPatch}), Options{Workers: 2})
	st, err := c.Collect(files, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != 9 || st.Changed != 3 || st.Errors != 0 {
		t.Errorf("aggregate = %+v", st)
	}
	if len(st.PerPatch) != 3 {
		t.Fatalf("PerPatch = %v", st.PerPatch)
	}
	// Patch 1 rewrites old_api in 3 files; patch 2 rewrites patch 1's
	// output in the same 3; patch 3 can never fire and is prefilter-skipped
	// everywhere.
	if p := st.PerPatch[0]; p.Matched != 3 || p.Changed != 3 {
		t.Errorf("patch 1 stats = %+v", p)
	}
	if p := st.PerPatch[1]; p.Matched != 3 || p.Changed != 3 {
		t.Errorf("patch 2 stats = %+v", p)
	}
	if p := st.PerPatch[2]; p.Matched != 0 || p.Changed != 0 || p.Skipped != 9 {
		t.Errorf("patch 3 stats = %+v", p)
	}
}

// A parse failure aborts that file's remaining patches and reports one
// error; other files complete.
func TestCampaignParseFailure(t *testing.T) {
	files := campaignCorpus(4)
	files[2].Src = "void broken( {" // unparseable, but contains no atom...
	// Give it an atom so the prefilter cannot save it from the parser.
	files[2].Src = "void broken(\n{\n\told_api(1;\n}\n"
	c := NewCampaign(parseAll(t, []string{renamePatch, secondPatch}), Options{Workers: 2})
	st, err := c.Collect(files, func(fr CampaignFileResult) error {
		if fr.Name == files[2].Name {
			if fr.Err == nil {
				t.Error("broken file reported no error")
			}
		} else if fr.Err != nil {
			t.Errorf("%s: unexpected error %v", fr.Name, fr.Err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors != 1 || st.Files != 4 {
		t.Errorf("stats = %+v", st)
	}
}

// A define declared in only one member patch configures that patch and is
// invisible to the others; an entirely undeclared define is a config error
// delivered once.
func TestCampaignDefines(t *testing.T) {
	virtualPatch := "virtual aggressive;\n@v depends on aggressive@\nexpression list el;\n@@\n- old_api(el)\n+ tuned_api(el)\n"
	files := campaignCorpus(3)

	c := NewCampaign(parseAll(t, []string{virtualPatch, unrelatedPatch}), Options{
		Workers: 2, Engine: core.Options{Defines: []string{"aggressive"}},
	})
	st, err := c.Collect(files, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.PerPatch[0].Changed != 1 {
		t.Errorf("virtual patch did not fire: %+v", st.PerPatch[0])
	}

	bad := NewCampaign(parseAll(t, []string{virtualPatch, unrelatedPatch}), Options{
		Workers: 2, Engine: core.Options{Defines: []string{"nonsense"}},
	})
	calls := 0
	bad.Run(files, func(fr CampaignFileResult) bool {
		calls++
		if fr.Index != -1 || fr.Err == nil {
			t.Errorf("want one config error result, got %+v", fr)
		}
		return true
	})
	if calls != 1 {
		t.Errorf("config error delivered %d times", calls)
	}
}

func TestCampaignEarlyStop(t *testing.T) {
	files := campaignCorpus(40)
	c := NewCampaign(parseAll(t, []string{renamePatch, secondPatch}), Options{Workers: 4})
	n := 0
	c.Run(files, func(fr CampaignFileResult) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("stopped after %d results, want 5", n)
	}
	// The campaign stays reusable.
	st, err := c.Collect(files, nil)
	if err != nil || st.Files != 40 {
		t.Errorf("reuse after early stop: %+v, %v", st, err)
	}
}

func TestCampaignEmptyPatchList(t *testing.T) {
	c := NewCampaign(nil, Options{})
	got := 0
	c.Run(campaignCorpus(2), func(fr CampaignFileResult) bool {
		got++
		if fr.Err == nil {
			t.Error("want config error")
		}
		return true
	})
	if got != 1 {
		t.Errorf("got %d results", got)
	}
}

// Cold, warm, and disabled cache must produce byte-identical results for
// both the single-patch Runner and the Campaign; the warm run must be
// served from the cache.
func TestRunnerCacheParity(t *testing.T) {
	files := campaignCorpus(20)
	dir := filepath.Join(t.TempDir(), "cache")
	patch := parsePatch(t, renamePatch)

	collect := func(opts Options) ([]FileResult, Stats) {
		var out []FileResult
		st, err := New(patch, opts).Collect(files, func(fr FileResult) error {
			out = append(out, fr)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out, st
	}

	plain, _ := collect(Options{Workers: 2})
	cold, coldSt := collect(Options{Workers: 2, CacheDir: dir})
	warm, warmSt := collect(Options{Workers: 2, CacheDir: dir})

	if coldSt.Cached != 0 {
		t.Errorf("cold run reported %d cached files", coldSt.Cached)
	}
	if warmSt.Cached != len(files) {
		t.Errorf("warm run cached %d of %d files", warmSt.Cached, len(files))
	}
	if warmSt.Skipped != 0 {
		t.Errorf("warm run reported %d skipped (cache hits must report cached, not skipped)", warmSt.Skipped)
	}
	for i := range files {
		for _, mode := range []struct {
			name string
			got  FileResult
		}{{"cold", cold[i]}, {"warm", warm[i]}} {
			if mode.got.Output != plain[i].Output || mode.got.Diff != plain[i].Diff {
				t.Errorf("%s %s: output differs from uncached run", mode.name, files[i].Name)
			}
			if fmt.Sprint(mode.got.MatchCount) != fmt.Sprint(plain[i].MatchCount) {
				t.Errorf("%s %s: match counts differ", mode.name, files[i].Name)
			}
		}
		if !warm[i].Cached {
			t.Errorf("warm %s: not served from cache", files[i].Name)
		}
	}
}

// Editing a file invalidates exactly its own cached results.
func TestCacheInvalidationByContent(t *testing.T) {
	files := campaignCorpus(6)
	dir := filepath.Join(t.TempDir(), "cache")
	patch := parsePatch(t, renamePatch)

	if _, err := New(patch, Options{CacheDir: dir}).Collect(files, nil); err != nil {
		t.Fatal(err)
	}
	files[0].Src = "void edited(int x)\n{\n\told_api(x, 99);\n}\n"
	var results []FileResult
	st, err := New(patch, Options{CacheDir: dir}).Collect(files, func(fr FileResult) error {
		results = append(results, fr)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cached != len(files)-1 {
		t.Errorf("cached = %d, want %d (only the edited file re-runs)", st.Cached, len(files)-1)
	}
	if results[0].Cached {
		t.Error("edited file served from cache")
	}
	if !strings.Contains(results[0].Output, "new_api(x, 99)") {
		t.Errorf("edited file not re-patched:\n%s", results[0].Output)
	}
}

// A patch edit changes the result key: nothing from the old patch replays.
func TestCacheInvalidationByPatch(t *testing.T) {
	files := campaignCorpus(6)
	dir := filepath.Join(t.TempDir(), "cache")

	if _, err := New(parsePatch(t, renamePatch), Options{CacheDir: dir}).Collect(files, nil); err != nil {
		t.Fatal(err)
	}
	other := strings.Replace(renamePatch, "new_api", "brand_new_api", 1)
	st, err := New(parsePatch(t, other), Options{CacheDir: dir}).Collect(files, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cached != 0 {
		t.Errorf("edited patch replayed %d stale results", st.Cached)
	}
}

// Campaign warm runs replay every member outcome from the cache, and a
// member's cached output still feeds the next member.
func TestCampaignCacheWarm(t *testing.T) {
	files := campaignCorpus(12)
	dir := filepath.Join(t.TempDir(), "cache")
	texts := []string{renamePatch, secondPatch}
	want := sequentialReference(t, texts, files)

	opts := Options{Workers: 2, CacheDir: dir}
	if _, err := NewCampaign(parseAll(t, texts), opts).Collect(files, nil); err != nil {
		t.Fatal(err)
	}
	i := 0
	st, err := NewCampaign(parseAll(t, texts), opts).Collect(files, func(fr CampaignFileResult) error {
		if fr.Output != want[i] {
			t.Errorf("%s: warm campaign output differs", fr.Name)
		}
		for _, o := range fr.Patches {
			if !o.Cached {
				t.Errorf("%s: patch %s not cached on warm run", fr.Name, o.Patch)
			}
			if o.MatchCount == nil {
				t.Errorf("%s: patch %s replayed a nil MatchCount (cold runs always produce a map)", fr.Name, o.Patch)
			}
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for pi, ps := range st.PerPatch {
		if ps.Cached != len(files) {
			t.Errorf("patch %d: %d of %d cached", pi, ps.Cached, len(files))
		}
	}
}

// Corrupting a cache entry between runs must not corrupt outputs: the entry
// is dropped, the file re-runs, and the cache heals.
func TestCacheCorruptionHeals(t *testing.T) {
	files := campaignCorpus(4)
	dir := filepath.Join(t.TempDir(), "cache")
	patch := parsePatch(t, renamePatch)
	if _, err := New(patch, Options{CacheDir: dir}).Collect(files, nil); err != nil {
		t.Fatal(err)
	}
	// Smash every result entry.
	err := filepath.Walk(filepath.Join(dir, "res"), func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		return os.WriteFile(path, []byte("not json"), 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	r := New(patch, Options{CacheDir: dir})
	var outs []string
	st, err := r.Collect(files, func(fr FileResult) error {
		outs = append(outs, fr.Output)
		return fr.Err
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cached != 0 {
		t.Errorf("corrupt entries replayed: %+v", st)
	}
	if n := r.Cache().CorruptEntries(); n == 0 {
		t.Error("corruption not counted")
	}
	if !strings.Contains(outs[0], "new_api(x, 0)") {
		t.Errorf("output wrong after corruption:\n%s", outs[0])
	}
	// Third run: healed, fully cached.
	st, err = New(patch, Options{CacheDir: dir}).Collect(files, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cached != len(files) {
		t.Errorf("cache did not heal: %+v", st)
	}
}

// Registering a Go script handler disables result caching (the handler's
// behaviour is outside the patch hash) but never breaks the run.
func TestGoScriptDisablesResultCache(t *testing.T) {
	scriptPatch := `@r@
identifier f;
@@
old_api(f)

@script:python s@
f << r.f;
g;
@@
g = f + "_mk2"

@w@
identifier r.f;
identifier s.g;
@@
- old_api(f)
+ new_api(g)
`
	files := []core.SourceFile{
		{Name: "a.c", Src: "void a(void)\n{\n\told_api(dev);\n}\n"},
	}
	dir := filepath.Join(t.TempDir(), "cache")
	mk := func() *Runner {
		r := New(parsePatch(t, scriptPatch), Options{CacheDir: dir})
		r.RegisterScript("s", func(in map[string]string) (map[string]string, error) {
			return map[string]string{"g": in["f"] + "_native"}, nil
		})
		return r
	}
	for run := 0; run < 2; run++ {
		st, err := mk().Collect(files, func(fr FileResult) error { return fr.Err })
		if err != nil {
			t.Fatal(err)
		}
		if st.Cached != 0 {
			t.Errorf("run %d: results cached despite Go script handler", run)
		}
		if st.Changed != 1 {
			t.Errorf("run %d: stats %+v", run, st)
		}
	}
}
