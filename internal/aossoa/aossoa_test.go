package aossoa

import (
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/cparse"
)

const sample = `struct particle { double px, py, pz; double mass; };
struct particle P[1024];

void kick(int n, double dt) {
	for (int i = 0; i < n; ++i) {
		P[i].px = P[i].px + dt * P[i].mass;
		P[i].py = P[i].py + dt;
	}
}
`

func TestAnalyze(t *testing.T) {
	l, err := Analyze(sample, "particle", "P")
	if err != nil {
		t.Fatal(err)
	}
	if l.Length != "1024" {
		t.Errorf("length=%q", l.Length)
	}
	if len(l.Fields) != 4 {
		t.Fatalf("fields=%v", l.Fields)
	}
	if l.Fields[0].Name != "px" || l.Fields[3].Name != "mass" {
		t.Errorf("field order: %v", l.Fields)
	}
	if l.Fields[0].Type != "double" {
		t.Errorf("field type: %v", l.Fields[0])
	}
	if l.SoAName() != "P_soa" {
		t.Errorf("soa name: %q", l.SoAName())
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze("int x;", "particle", "P"); err == nil {
		t.Error("expected error for missing struct")
	}
	if _, err := Analyze("struct particle { double x; };", "particle", "P"); err == nil {
		t.Error("expected error for missing array")
	}
}

func TestSoADecl(t *testing.T) {
	l, err := Analyze(sample, "particle", "P")
	if err != nil {
		t.Fatal(err)
	}
	decl := l.SoADecl()
	for _, w := range []string{
		"struct particle_soa {",
		"double px[1024];",
		"double mass[1024];",
		"struct particle_soa P_soa;",
	} {
		if !strings.Contains(decl, w) {
			t.Errorf("SoADecl missing %q:\n%s", w, decl)
		}
	}
}

func TestAccessPatchRestrictsFields(t *testing.T) {
	l, err := Analyze(sample, "particle", "P")
	if err != nil {
		t.Fatal(err)
	}
	patch := l.AccessPatch()
	if !strings.Contains(patch, "identifier fld = {px,py,pz,mass};") {
		t.Errorf("field set missing:\n%s", patch)
	}
}

func TestTransform(t *testing.T) {
	out, n, err := Transform(sample, "particle", "P")
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("rewritten accesses=%d want 5", n)
	}
	for _, w := range []string{
		"struct particle_soa P_soa;",
		"P_soa.px[i] = P_soa.px[i] + dt * P_soa.mass[i];",
		"P_soa.py[i] = P_soa.py[i] + dt;",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("missing %q:\n%s", w, out)
		}
	}
	if strings.Contains(out, "P[i]") {
		t.Errorf("AoS accesses remain:\n%s", out)
	}
	if strings.Contains(out, "struct particle P[1024];") {
		t.Errorf("AoS array declaration remains:\n%s", out)
	}
	// The result must still parse.
	if _, err := cparse.Parse("soa.c", out, cparse.Options{}); err != nil {
		t.Errorf("transformed source does not parse: %v\n%s", err, out)
	}
}

func TestTransformGeneratedWorkload(t *testing.T) {
	src := codegen.AoS(codegen.Config{Funcs: 4, StmtsPerFunc: 4, Seed: 9})
	out, n, err := Transform(src, "particle", "P")
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no accesses rewritten")
	}
	if strings.Contains(out, "P[i].") {
		t.Errorf("AoS accesses remain:\n%s", out)
	}
	if _, err := cparse.Parse("soa.c", out, cparse.Options{}); err != nil {
		t.Errorf("output does not parse: %v", err)
	}
}

// Fields outside the struct stay untouched: a different array's member
// accesses survive.
func TestTransformSelectivity(t *testing.T) {
	src := sample + `
struct other { double px; };
struct other Q[8];
void peek(void) { Q[0].px = 1; }
`
	out, _, err := Transform(src, "particle", "P")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Q[0].px = 1;") {
		t.Errorf("unrelated array rewritten:\n%s", out)
	}
}

func TestTransformIdempotentDecl(t *testing.T) {
	out, _, err := Transform(sample, "particle", "P")
	if err != nil {
		t.Fatal(err)
	}
	// Re-running on already-converted code must fail cleanly (struct gone),
	// not corrupt it.
	if _, _, err := Transform(out, "particle", "P"); err == nil {
		t.Error("expected error on already-converted source")
	}
}
