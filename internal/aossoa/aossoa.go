// Package aossoa implements the array-of-structures to structure-of-arrays
// refactoring of the paper's predecessor case study ([ML21]: the GADGET
// cosmological code). Given a source with an AoS declaration like
//
//	struct particle { double px, py, pz; };
//	struct particle P[1024];
//
// it analyses the struct layout, generates the SoA replacement declaration,
// generates the access-rewriting semantic patch (P[i].f -> P_soa.f[i], for
// exactly the struct's fields), and applies everything through the engine —
// the "transformation rules that let domain scientists keep developing the
// AoS code" workflow the paper describes.
package aossoa

import (
	"fmt"
	"strings"

	"repro/internal/cast"
	"repro/internal/core"
	"repro/internal/cparse"
	"repro/internal/smpl"
)

// Field is one struct member.
type Field struct {
	Type string // e.g. "double"
	Name string
}

// Layout describes the AoS declaration being converted.
type Layout struct {
	StructName string  // "particle"
	ArrayName  string  // "P"
	Length     string  // "1024" (dimension expression text)
	Fields     []Field // in declaration order
}

// SoAName is the name of the generated structure-of-arrays instance.
func (l *Layout) SoAName() string { return l.ArrayName + "_soa" }

// Analyze locates `struct <structName> { ... };` and the array declaration
// `struct <structName> <arrayName>[N];` in the source.
func Analyze(src, structName, arrayName string) (*Layout, error) {
	f, err := cparse.Parse("aos.c", src, cparse.Options{})
	if err != nil {
		return nil, fmt.Errorf("aossoa: %w", err)
	}
	l := &Layout{StructName: structName, ArrayName: arrayName}

	for _, d := range f.Decls {
		switch x := d.(type) {
		case *cast.OpaqueDecl:
			raw := strings.TrimSpace(x.Raw)
			if !strings.HasPrefix(raw, "struct "+structName) || !strings.Contains(raw, "{") {
				continue
			}
			fields, err := parseFields(raw)
			if err != nil {
				return nil, err
			}
			l.Fields = fields
		case *cast.VarDecl:
			if x.Type.Base != "struct "+structName {
				continue
			}
			for _, it := range x.Items {
				if it.Name.Name == arrayName && len(it.Dims) == 1 && it.Dims[0] != nil {
					l.Length = f.Text(it.Dims[0])
				}
			}
		}
	}
	if len(l.Fields) == 0 {
		return nil, fmt.Errorf("aossoa: struct %s not found or empty", structName)
	}
	if l.Length == "" {
		return nil, fmt.Errorf("aossoa: array %s of struct %s not found", arrayName, structName)
	}
	return l, nil
}

// parseFields extracts members from the struct definition's raw text by
// parsing the brace body as a declaration sequence.
func parseFields(raw string) ([]Field, error) {
	lb := strings.Index(raw, "{")
	rb := strings.LastIndex(raw, "}")
	if lb < 0 || rb <= lb {
		return nil, fmt.Errorf("aossoa: malformed struct body")
	}
	body := raw[lb+1 : rb]
	stmts, _, err := cparse.ParseStmts(body, cparse.Options{})
	if err != nil {
		return nil, fmt.Errorf("aossoa: struct body: %w", err)
	}
	var out []Field
	for _, s := range stmts {
		ds, ok := s.(*cast.DeclStmt)
		if !ok {
			return nil, fmt.Errorf("aossoa: unsupported struct member %T", s)
		}
		base := ds.D.Type.Base
		for _, it := range ds.D.Items {
			ty := base + strings.Repeat("*", it.Stars)
			out = append(out, Field{Type: ty, Name: it.Name.Name})
		}
	}
	return out, nil
}

// SoADecl renders the replacement declaration: a struct of arrays plus its
// instance, preserving field order.
func (l *Layout) SoADecl() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "struct %s_soa {\n", l.StructName)
	for _, fld := range l.Fields {
		fmt.Fprintf(&sb, "\t%s %s[%s];\n", fld.Type, fld.Name, l.Length)
	}
	fmt.Fprintf(&sb, "};\nstruct %s_soa %s;", l.StructName, l.SoAName())
	return sb.String()
}

// AccessPatch generates the semantic patch rewriting every field access
// P[idx].f into P_soa.f[idx], restricted to exactly the struct's fields.
func (l *Layout) AccessPatch() string {
	names := make([]string, len(l.Fields))
	for i, f := range l.Fields {
		names[i] = f.Name
	}
	return fmt.Sprintf(`@soa@
identifier fld = {%s};
expression idx;
symbol %s;
@@
- %s[idx].fld
+ %s.fld[idx]
`, strings.Join(names, ","), l.ArrayName, l.ArrayName, l.SoAName())
}

// Transform runs the complete conversion: replace the AoS declarations and
// rewrite all accesses. Returns the new source and the number of rewritten
// accesses.
func Transform(src, structName, arrayName string) (string, int, error) {
	l, err := Analyze(src, structName, arrayName)
	if err != nil {
		return "", 0, err
	}

	// Step 1: rewrite accesses with the generated semantic patch.
	patch, err := smpl.ParsePatch("aossoa.cocci", l.AccessPatch())
	if err != nil {
		return "", 0, fmt.Errorf("aossoa: generated patch: %w", err)
	}
	eng := core.New(patch, core.Options{})
	res, err := eng.Run([]core.SourceFile{{Name: "aos.c", Src: src}})
	if err != nil {
		return "", 0, err
	}
	out := res.Outputs["aos.c"]

	// Step 2: swap the declarations textually (the paper notes the data
	// structure definitions are "a mere few hundred lines one could change
	// by hand"; we still automate it).
	out, err = replaceDecls(out, l)
	if err != nil {
		return "", 0, err
	}
	return out, res.MatchCount["soa"], nil
}

// replaceDecls substitutes the struct definition and array declaration with
// the SoA form.
func replaceDecls(src string, l *Layout) (string, error) {
	f, err := cparse.Parse("aos.c", src, cparse.Options{})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	lastEnd := 0
	replaced := false
	for _, d := range f.Decls {
		switch x := d.(type) {
		case *cast.OpaqueDecl:
			if strings.HasPrefix(strings.TrimSpace(x.Raw), "struct "+l.StructName) && strings.Contains(x.Raw, "{") {
				first, last := x.Span()
				start := f.Toks.Tokens[first].Pos.Offset
				end := endOffset(f, last)
				sb.WriteString(src[lastEnd:start])
				sb.WriteString(l.SoADecl())
				lastEnd = end
				replaced = true
			}
		case *cast.VarDecl:
			if x.Type.Base == "struct "+l.StructName {
				first, last := x.Span()
				start := f.Toks.Tokens[first].Pos.Offset
				end := endOffset(f, last)
				sb.WriteString(src[lastEnd:start])
				// the SoA instance is declared with the struct; drop this
				lastEnd = end
			}
		}
	}
	if !replaced {
		return "", fmt.Errorf("aossoa: struct %s definition not found for replacement", l.StructName)
	}
	sb.WriteString(src[lastEnd:])
	return sb.String(), nil
}

// endOffset computes the byte offset just past token `last`.
func endOffset(f *cast.File, last int) int {
	t := f.Toks.Tokens[last]
	return t.Pos.Offset + len(t.Text)
}
