// Package ctl implements a computation tree logic (CTL) model checker over
// control-flow graphs. Coccinelle's matching semantics for statement dots is
// defined in terms of CTL with variables and witnesses (CTL-VW); this package
// provides the temporal core used to decide path constraints such as
// "between these two match points, no path may contain statement S"
// (`when != S`) and reachability along all/any paths.
package ctl

import "repro/internal/cfg"

// Formula is a CTL formula over CFG nodes.
type Formula interface{ isFormula() }

// Pred holds a node predicate with a human-readable name.
type Pred struct {
	Name string
	Fn   func(*cfg.Node) bool
}

// True matches every node.
type True struct{}

// Not negates a formula.
type Not struct{ F Formula }

// And is conjunction.
type And struct{ L, R Formula }

// Or is disjunction.
type Or struct{ L, R Formula }

// EX: some successor satisfies F.
type EX struct{ F Formula }

// AX: all successors satisfy F (and at least one exists).
type AX struct{ F Formula }

// EF: some path eventually reaches F.
type EF struct{ F Formula }

// AF: all paths eventually reach F.
type AF struct{ F Formula }

// EG: some path where F holds globally.
type EG struct{ F Formula }

// AG: F holds on all reachable nodes.
type AG struct{ F Formula }

// EU: E[L U R] — some path where L holds until R.
type EU struct{ L, R Formula }

// AU: A[L U R] — on all paths L holds until R (and R is reached).
type AU struct{ L, R Formula }

func (Pred) isFormula() {}
func (True) isFormula() {}
func (Not) isFormula()  {}
func (And) isFormula()  {}
func (Or) isFormula()   {}
func (EX) isFormula()   {}
func (AX) isFormula()   {}
func (EF) isFormula()   {}
func (AF) isFormula()   {}
func (EG) isFormula()   {}
func (AG) isFormula()   {}
func (EU) isFormula()   {}
func (AU) isFormula()   {}

// Result is the satisfying set of a formula over a graph's nodes.
type Result struct {
	g   *cfg.Graph
	set []bool
}

// Holds reports whether node id satisfies the checked formula.
func (r *Result) Holds(id int) bool { return id >= 0 && id < len(r.set) && r.set[id] }

// Nodes returns the ids of satisfying nodes in order.
func (r *Result) Nodes() []int {
	var out []int
	for i, b := range r.set {
		if b {
			out = append(out, i)
		}
	}
	return out
}

// Check evaluates the formula on every node of the graph using the standard
// fixpoint characterisations of the CTL operators.
func Check(g *cfg.Graph, f Formula) *Result {
	return &Result{g: g, set: eval(g, f)}
}

func eval(g *cfg.Graph, f Formula) []bool {
	n := len(g.Nodes)
	set := make([]bool, n)
	switch x := f.(type) {
	case True:
		for i := range set {
			set[i] = true
		}
	case Pred:
		for i, node := range g.Nodes {
			set[i] = x.Fn(node)
		}
	case Not:
		inner := eval(g, x.F)
		for i := range set {
			set[i] = !inner[i]
		}
	case And:
		l, r := eval(g, x.L), eval(g, x.R)
		for i := range set {
			set[i] = l[i] && r[i]
		}
	case Or:
		l, r := eval(g, x.L), eval(g, x.R)
		for i := range set {
			set[i] = l[i] || r[i]
		}
	case EX:
		inner := eval(g, x.F)
		for i, node := range g.Nodes {
			for _, s := range node.Succs {
				if inner[s] {
					set[i] = true
					break
				}
			}
		}
	case AX:
		inner := eval(g, x.F)
		for i, node := range g.Nodes {
			if len(node.Succs) == 0 {
				continue
			}
			ok := true
			for _, s := range node.Succs {
				if !inner[s] {
					ok = false
					break
				}
			}
			set[i] = ok
		}
	case EF:
		// EF f = mu Z. f \/ EX Z : backward reachability from f-nodes.
		inner := eval(g, x.F)
		copy(set, inner)
		work := queueOf(set)
		for len(work) > 0 {
			id := work[len(work)-1]
			work = work[:len(work)-1]
			for _, p := range g.Nodes[id].Preds {
				if !set[p] {
					set[p] = true
					work = append(work, p)
				}
			}
		}
	case AF:
		// AF f = mu Z. f \/ (AX Z and some successor): count-down algorithm.
		inner := eval(g, x.F)
		copy(set, inner)
		remaining := make([]int, n)
		for i, node := range g.Nodes {
			remaining[i] = len(node.Succs)
		}
		work := queueOf(set)
		for len(work) > 0 {
			id := work[len(work)-1]
			work = work[:len(work)-1]
			for _, p := range g.Nodes[id].Preds {
				if set[p] {
					continue
				}
				remaining[p]--
				if remaining[p] == 0 {
					set[p] = true
					work = append(work, p)
				}
			}
		}
	case EG:
		// EG f = nu Z. f /\ (EX Z or no successor): greatest fixpoint by
		// iterative pruning.
		inner := eval(g, x.F)
		copy(set, inner)
		for changed := true; changed; {
			changed = false
			for i, node := range g.Nodes {
				if !set[i] {
					continue
				}
				if len(node.Succs) == 0 {
					continue
				}
				ok := false
				for _, s := range node.Succs {
					if set[s] {
						ok = true
						break
					}
				}
				if !ok {
					set[i] = false
					changed = true
				}
			}
		}
	case AG:
		// AG f = not EF not f
		return eval(g, Not{EF{Not{x.F}}})
	case EU:
		l, r := eval(g, x.L), eval(g, x.R)
		copy(set, r)
		work := queueOf(set)
		for len(work) > 0 {
			id := work[len(work)-1]
			work = work[:len(work)-1]
			for _, p := range g.Nodes[id].Preds {
				if !set[p] && l[p] {
					set[p] = true
					work = append(work, p)
				}
			}
		}
	case AU:
		// A[l U r] = mu Z. r \/ (l /\ AX Z /\ some successor)
		l, r := eval(g, x.L), eval(g, x.R)
		copy(set, r)
		remaining := make([]int, n)
		for i, node := range g.Nodes {
			remaining[i] = len(node.Succs)
		}
		work := queueOf(set)
		for len(work) > 0 {
			id := work[len(work)-1]
			work = work[:len(work)-1]
			for _, p := range g.Nodes[id].Preds {
				if set[p] || !l[p] {
					continue
				}
				remaining[p]--
				if remaining[p] == 0 {
					set[p] = true
					work = append(work, p)
				}
			}
		}
	}
	return set
}

func queueOf(set []bool) []int {
	var q []int
	for i, b := range set {
		if b {
			q = append(q, i)
		}
	}
	return q
}

// PathWithout reports whether a path exists from node `from` to a node
// satisfying `to`, along which no intermediate node satisfies `avoid`.
// This is E[!avoid U to] evaluated at `from`, the core of `when != S`.
func PathWithout(g *cfg.Graph, from int, to, avoid func(*cfg.Node) bool) bool {
	f := EU{L: Not{Pred{Name: "avoid", Fn: avoid}}, R: Pred{Name: "to", Fn: to}}
	return Check(g, f).Holds(from)
}

// AllPathsReach reports whether every path from `from` eventually reaches a
// node satisfying `to` (AF at from).
func AllPathsReach(g *cfg.Graph, from int, to func(*cfg.Node) bool) bool {
	return Check(g, AF{Pred{Name: "to", Fn: to}}).Holds(from)
}
