package ctl

import (
	"strings"
	"testing"

	"repro/internal/cast"
	"repro/internal/cfg"
	"repro/internal/cparse"
)

func graphOf(t *testing.T, src string) (*cast.File, *cfg.Graph) {
	t.Helper()
	f, err := cparse.Parse("t.c", src, cparse.Options{})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f, cfg.Build(f.Funcs()[0])
}

// pred matches Stmt-kind nodes only: a Branch node's AST spans the whole
// conditional, so a plain text search would match it spuriously.
func pred(f *cast.File, sub string) Pred {
	return Pred{Name: sub, Fn: func(n *cfg.Node) bool {
		return n.Kind == cfg.Stmt && n.AST != nil && strings.Contains(f.Text(n.AST), sub)
	}}
}

func nodeWith(f *cast.File, g *cfg.Graph, sub string) int {
	for _, n := range g.Nodes {
		if n.AST != nil && strings.Contains(f.Text(n.AST), sub) && n.Kind == cfg.Stmt {
			return n.ID
		}
	}
	return -1
}

func TestEFReachability(t *testing.T) {
	f, g := graphOf(t, "void f(int x){ a(); if (x) b(); c(); }")
	r := Check(g, EF{pred(f, "c()")})
	if !r.Holds(nodeWith(f, g, "a()")) {
		t.Error("EF c should hold at a")
	}
	if !r.Holds(g.EntryID) {
		t.Error("EF c should hold at entry")
	}
	r2 := Check(g, EF{pred(f, "a()")})
	if r2.Holds(nodeWith(f, g, "c()")) {
		t.Error("EF a should not hold at c (no back edge)")
	}
}

func TestAFvsEF(t *testing.T) {
	// b() happens only on one branch: EF b at entry, but not AF b.
	f, g := graphOf(t, "void f(int x){ if (x) b(); c(); }")
	if !Check(g, EF{pred(f, "b()")}).Holds(g.EntryID) {
		t.Error("EF b should hold at entry")
	}
	if Check(g, AF{pred(f, "b()")}).Holds(g.EntryID) {
		t.Error("AF b must not hold at entry (else-path avoids b)")
	}
	// c() happens on all paths.
	if !Check(g, AF{pred(f, "c()")}).Holds(g.EntryID) {
		t.Error("AF c should hold at entry")
	}
}

func TestAFThroughLoop(t *testing.T) {
	// Standard CTL over the CFG: the cycle head->body->head is an infinite
	// path that never reaches after(), so AF after must NOT hold at entry,
	// while EF after does. This mirrors why Coccinelle needs `when strict`
	// to force matching around loops.
	f, g := graphOf(t, "void f(int n){ while (n) { n--; } after(); }")
	if Check(g, AF{pred(f, "after()")}).Holds(g.EntryID) {
		t.Error("AF after must fail at entry: the loop may spin forever")
	}
	if !Check(g, EF{pred(f, "after()")}).Holds(g.EntryID) {
		t.Error("EF after should hold at entry")
	}
	// EG !after: an infinite path staying in the loop exists.
	if !Check(g, EG{Not{pred(f, "after()")}}).Holds(g.EntryID) {
		t.Error("EG !after should hold: the loop can spin forever")
	}
}

func TestEUAndAU(t *testing.T) {
	f, g := graphOf(t, "void f(int x){ lock(); if (x) { use(); } unlock(); }")
	lockID := nodeWith(f, g, "lock()")
	// From lock, there is a path where nothing is unlock-before... E[!unlock U use]
	r := Check(g, EU{Not{pred(f, "unlock()")}, pred(f, "use()")})
	if !r.Holds(lockID) {
		t.Error("E[!unlock U use] should hold at lock()")
	}
	// A[!use U unlock] does NOT hold at lock (the then-branch hits use first).
	r2 := Check(g, AU{Not{pred(f, "use()")}, pred(f, "unlock()")})
	if r2.Holds(lockID) {
		t.Error("A[!use U unlock] must fail at lock(): then-branch sees use() first")
	}
}

func TestAGInvariant(t *testing.T) {
	f, g := graphOf(t, "void f(){ a(); b(); }")
	// AG (!bad) holds everywhere since bad() never occurs.
	if !Check(g, AG{Not{pred(f, "bad()")}}).Holds(g.EntryID) {
		t.Error("AG !bad should hold")
	}
	if Check(g, AG{Not{pred(f, "b()")}}).Holds(g.EntryID) {
		t.Error("AG !b must fail: b() is reachable")
	}
}

func TestEXAndAX(t *testing.T) {
	f, g := graphOf(t, "void f(){ a(); b(); }")
	aID := nodeWith(f, g, "a()")
	if !Check(g, EX{pred(f, "b()")}).Holds(aID) {
		t.Error("EX b should hold at a")
	}
	if !Check(g, AX{pred(f, "b()")}).Holds(aID) {
		t.Error("AX b should hold at a (single successor)")
	}
}

func TestPathWithout(t *testing.T) {
	f, g := graphOf(t, "void f(int x){ start(); if (x) { skipme(); } end(); }")
	startID := nodeWith(f, g, "start()")
	stmtWith := func(f *cast.File, sub string) func(*cfg.Node) bool {
		return func(n *cfg.Node) bool {
			return n.Kind == cfg.Stmt && n.AST != nil && strings.Contains(f.Text(n.AST), sub)
		}
	}
	if !PathWithout(g, startID, stmtWith(f, "end()"), stmtWith(f, "skipme()")) {
		t.Error("a path avoiding skipme() exists via the else branch")
	}
	// Make skip unavoidable.
	f2, g2 := graphOf(t, "void f(){ start(); skipme(); end(); }")
	start2 := nodeWith(f2, g2, "start()")
	if PathWithout(g2, start2, stmtWith(f2, "end()"), stmtWith(f2, "skipme()")) {
		t.Error("no path can avoid skipme() in straight-line code")
	}
}

func TestAllPathsReach(t *testing.T) {
	f, g := graphOf(t, "void f(int x){ a(); if (x) return; b(); }")
	aID := nodeWith(f, g, "a()")
	if AllPathsReach(g, aID, func(n *cfg.Node) bool {
		return n.AST != nil && strings.Contains(f.Text(n.AST), "b()")
	}) {
		t.Error("the return path avoids b()")
	}
	// exit is reached on all paths
	if !AllPathsReach(g, aID, func(n *cfg.Node) bool { return n.Kind == cfg.Exit }) {
		t.Error("all paths must reach exit")
	}
}

func TestBooleanCombinators(t *testing.T) {
	f, g := graphOf(t, "void f(){ a(); b(); }")
	aID := nodeWith(f, g, "a()")
	isA := pred(f, "a()")
	isB := pred(f, "b()")
	if !Check(g, And{isA, Not{isB}}).Holds(aID) {
		t.Error("a && !b should hold at a")
	}
	if !Check(g, Or{isB, isA}).Holds(aID) {
		t.Error("b || a should hold at a")
	}
	if !Check(g, True{}).Holds(aID) {
		t.Error("true should hold")
	}
}
