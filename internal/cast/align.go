// Tree alignment helpers for patch inference (internal/infer). Inference
// needs two primitives the engine itself never did: a whitespace-insensitive
// text identity for comparing subtrees across two parses of related sources,
// and a longest-common-subsequence alignment for pairing statement sequences
// (and variadic child lists) between a "before" and an "after" tree.

package cast

import "strings"

// NormText returns the node's source text with every whitespace run
// collapsed to a single space — a token-level identity that is stable across
// reformatting, so `a+b` and `a + b` align.
func NormText(f *File, n Node) string {
	return NormalizeSpace(f.Text(n))
}

// NormalizeSpace collapses whitespace runs in s to single spaces and trims
// the ends.
func NormalizeSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// AlignKind classifies one alignment operation.
type AlignKind uint8

const (
	// AlignSame pairs a[A] with b[B] (equal keys).
	AlignSame AlignKind = iota
	// AlignDel consumes a[A] with no counterpart in b.
	AlignDel
	// AlignIns consumes b[B] with no counterpart in a.
	AlignIns
)

// AlignOp is one step of an alignment; A and B index into the aligned
// sequences (-1 when the side is not consumed).
type AlignOp struct {
	Kind AlignKind
	A, B int
}

// AlignSeq computes a longest-common-subsequence alignment of two string
// sequences. Equal elements pair as AlignSame; the rest become AlignDel /
// AlignIns runs (deletions before insertions within a divergent region).
// The inference pipeline feeds it normalized statement texts, pairing the
// unchanged statements of a before/after function body so the leftovers are
// exactly the edit.
func AlignSeq(a, b []string) []AlignOp {
	n, m := len(a), len(b)
	// lcs[i][j] = LCS length of a[i:], b[j:].
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var ops []AlignOp
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			ops = append(ops, AlignOp{AlignSame, i, j})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, AlignOp{AlignDel, i, -1})
			i++
		default:
			ops = append(ops, AlignOp{AlignIns, -1, j})
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, AlignOp{AlignDel, i, -1})
	}
	for ; j < m; j++ {
		ops = append(ops, AlignOp{AlignIns, -1, j})
	}
	return ops
}

// Children returns a node's direct child nodes in source order — the
// lockstep-descent order used by anti-unification. It mirrors Walk's
// traversal exactly (nil children are skipped).
func Children(n Node) []Node {
	var out []Node
	first := true
	Walk(n, func(m Node) bool {
		if first {
			first = false
			return true // descend past the root itself
		}
		out = append(out, m)
		return false // collect direct children only
	})
	return out
}
