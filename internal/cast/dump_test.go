package cast_test

import (
	"strings"
	"testing"

	"repro/internal/cast"
)

func TestDumpOutline(t *testing.T) {
	f := parse(t, "void f(int n){ if (n) g(n + 1); }")
	d := cast.Dump(f)
	for _, w := range []string{"FuncDef", "If", "CallExpr", "BinaryExpr"} {
		if !strings.Contains(d, w) {
			t.Errorf("dump missing %s:\n%s", w, d)
		}
	}
	// indentation: If is deeper than FuncDef
	lines := strings.Split(d, "\n")
	var fdIndent, ifIndent int
	for _, l := range lines {
		if strings.Contains(l, "FuncDef") {
			fdIndent = indentOf(l)
		}
		if strings.Contains(l, "If ") {
			ifIndent = indentOf(l)
		}
	}
	if ifIndent <= fdIndent {
		t.Errorf("If not nested under FuncDef:\n%s", d)
	}
}

func indentOf(l string) int {
	return len(l) - len(strings.TrimLeft(l, " "))
}

func TestDumpTruncatesLongText(t *testing.T) {
	f := parse(t, "void f(void){ really_long_call(aaaaaaaaaa, bbbbbbbbbb, cccccccccc, dddddddddd); }")
	d := cast.Dump(f)
	if !strings.Contains(d, "...") {
		t.Errorf("long text not truncated:\n%s", d)
	}
}

func TestSummarize(t *testing.T) {
	f := parse(t, `#include <omp.h>
#pragma omp declare simd
void f(int n){ for (int i=0;i<n;++i) work(i); }
void g(void){ }
`)
	st := cast.Summarize(f)
	if st.Funcs != 2 {
		t.Errorf("funcs=%d", st.Funcs)
	}
	if st.Includes != 1 || st.Pragmas != 1 {
		t.Errorf("includes=%d pragmas=%d", st.Includes, st.Pragmas)
	}
	if st.Stmts == 0 || st.Exprs == 0 || st.MaxDepth < 3 {
		t.Errorf("stats: %+v", st)
	}
}
