package cast

import (
	"fmt"
	"strings"
)

// Dump renders the tree as an indented outline, one node per line, with the
// node kind and a truncated source excerpt — the debugging view behind
// `gocci-parse --dump ast`.
func Dump(f *File) string {
	var sb strings.Builder
	depth := 0
	var spans []int // stack of last-token indices to track dedenting
	Walk(f, func(n Node) bool {
		if _, isFile := n.(*File); isFile {
			return true
		}
		first, last := n.Span()
		for len(spans) > 0 && first > spans[len(spans)-1] {
			spans = spans[:len(spans)-1]
			depth--
		}
		txt := f.Text(n)
		if len(txt) > 40 {
			txt = txt[:37] + "..."
		}
		txt = strings.ReplaceAll(txt, "\n", "\\n")
		fmt.Fprintf(&sb, "%s%s [%d..%d] %s\n",
			strings.Repeat("  ", depth), nodeKind(n), first, last, txt)
		spans = append(spans, last)
		depth++
		return true
	})
	return sb.String()
}

// nodeKind names a node without the package prefix.
func nodeKind(n Node) string {
	s := fmt.Sprintf("%T", n)
	return strings.TrimPrefix(s, "*cast.")
}

// Stats summarises a file for tooling output.
type Stats struct {
	Decls    int
	Funcs    int
	Stmts    int
	Exprs    int
	Pragmas  int
	Includes int
	MaxDepth int
}

// Summarize computes node statistics.
func Summarize(f *File) Stats {
	var st Stats
	st.Decls = len(f.Decls)
	depth := 0
	var spans []int
	Walk(f, func(n Node) bool {
		first, _ := n.Span()
		for len(spans) > 0 && first > spans[len(spans)-1] {
			spans = spans[:len(spans)-1]
			depth--
		}
		_, last := n.Span()
		spans = append(spans, last)
		depth++
		if depth > st.MaxDepth {
			st.MaxDepth = depth
		}
		switch n.(type) {
		case *FuncDef:
			st.Funcs++
		case *Pragma:
			st.Pragmas++
		case *Include:
			st.Includes++
		}
		if _, ok := n.(Stmt); ok {
			st.Stmts++
		}
		if _, ok := n.(Expr); ok {
			st.Exprs++
		}
		return true
	})
	return st
}
