package cast_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cast"
)

// TestSpliceReconstructsSource is the segmentation invariant everything else
// rests on: for any file it accepts, splicing the raw gap and function texts
// back together reproduces the source byte for byte. Fixed cases cover the
// shapes the generator cannot hit; the seeded generator covers combinatorial
// interleavings of gaps, comments, and declarations.
func TestSpliceReconstructsSource(t *testing.T) {
	fixed := []string{
		"int f(void)\n{\n\treturn 0;\n}\n",
		"int f(void)\n{\n\treturn 0;\n}", // no trailing newline
		"/* header */\nint f(void)\n{\n\treturn 0;\n}\n/* trailer */\n",
		"#include <a.h>\n\nstatic int x = 1;\n\nint f(void)\n{\n\treturn x;\n}\n\nint y;\n",
		"int f(void)\n{\n\treturn 0;\n}\n\n\n\nint g(void)\n{\n\treturn 1;\n}\n",
		"int f(void)\n{\n\treturn 0;\n}\n/* between */\nint g(void)\n{\n\treturn 1;\n}\n",
		"\n\nint f(void)\n{\n\treturn 0;\n}\n",
		"template <typename T>\nT id(T v)\n{\n\treturn v;\n}\n",
	}
	for i, src := range fixed {
		checkSplice(t, fmt.Sprintf("fixed-%d", i), src)
	}

	rng := rand.New(rand.NewSource(11))
	gaps := []string{
		"", "\n", "\n\n", "/* c */\n", "// line\n", "#define K 3\n",
		"static int s;\n", "extern void ext(int);\n", "\n/* note */\n\n",
	}
	for iter := 0; iter < 200; iter++ {
		var sb strings.Builder
		nFns := rng.Intn(5)
		sb.WriteString(gaps[rng.Intn(len(gaps))])
		for i := 0; i < nFns; i++ {
			fmt.Fprintf(&sb, "int fn_%d_%d(int x)\n{\n\tuse(x, %d);\n\treturn x;\n}\n",
				iter, i, rng.Intn(100))
			sb.WriteString(gaps[rng.Intn(len(gaps))])
		}
		checkSplice(t, fmt.Sprintf("gen-%d", iter), sb.String())
	}
}

func checkSplice(t *testing.T, label, src string) {
	t.Helper()
	f := parse(t, src)
	segs := cast.SegmentFile(f)
	if segs == nil {
		return // no functions (or unsegmentable): nothing to pin
	}
	n := len(segs.Funcs)
	gaps := make([]string, n+1)
	for i := 0; i <= n; i++ {
		gaps[i] = segs.GapRaw(i)
	}
	fns := make([]string, n)
	for i := range segs.Funcs {
		fns[i] = segs.Funcs[i].Raw()
	}
	if got := segs.Splice(gaps, fns); got != src {
		t.Errorf("%s: splice does not reconstruct the source\ngot:\n%q\nwant:\n%q", label, got, src)
	}
}
