package cast_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cast"
	"repro/internal/cparse"
)

func parse(t *testing.T, src string) *cast.File {
	t.Helper()
	f, err := cparse.Parse("t.c", src, cparse.Options{CPlusPlus: true, CUDA: true})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestWalkVisitsAllStatements(t *testing.T) {
	f := parse(t, `void f(int n){
	int s = 0;
	for (int i=0;i<n;++i) { s += i; }
	if (s) { s--; } else { s++; }
	while (s) s--;
	do { s++; } while (s < 3);
	switch (s) { case 1: break; default: s = 0; }
	return;
}`)
	counts := map[string]int{}
	cast.Walk(f, func(n cast.Node) bool {
		counts[fmt.Sprintf("%T", n)]++
		return true
	})
	for _, ty := range []string{"*cast.For", "*cast.If", "*cast.While",
		"*cast.DoWhile", "*cast.Switch", "*cast.Return", "*cast.Break"} {
		if counts[ty] == 0 {
			t.Errorf("Walk never visited %s (counts=%v)", ty, counts)
		}
	}
}

func TestWalkStopsOnFalse(t *testing.T) {
	f := parse(t, "void f(void){ a(b(c())); }")
	var seen []string
	cast.Walk(f, func(n cast.Node) bool {
		if call, ok := n.(*cast.CallExpr); ok {
			seen = append(seen, f.Text(call.Fun))
			return false // do not descend into arguments
		}
		return true
	})
	if len(seen) != 1 || seen[0] != "a" {
		t.Errorf("descent not stopped: %v", seen)
	}
}

func TestExprsOrder(t *testing.T) {
	f := parse(t, "void f(void){ x = y + z; }")
	var texts []string
	for _, e := range cast.Exprs(f) {
		texts = append(texts, f.Text(e))
	}
	joined := strings.Join(texts, "|")
	// parent expressions come before children (pre-order); the function
	// name identifier is an expression too and precedes the body.
	if !strings.Contains(joined, "x = y + z|x|y + z|y|z") {
		t.Errorf("exprs order: %v", texts)
	}
}

func TestCompounds(t *testing.T) {
	f := parse(t, "void f(int x){ { a(); } if (x) { b(); } }")
	cs := cast.Compounds(f)
	if len(cs) != 3 { // body, inner block, if-then
		t.Errorf("compounds=%d want 3", len(cs))
	}
}

func TestFuncsSkipsPrototypes(t *testing.T) {
	f := parse(t, "int declared(int x);\nint defined(int x) { return x; }\n")
	funcs := f.Funcs()
	if len(funcs) != 1 || funcs[0].Name.Name != "defined" {
		t.Errorf("funcs: %v", funcs)
	}
}

func TestTextNilSafe(t *testing.T) {
	f := parse(t, "int x;")
	if got := f.Text(nil); got != "" {
		t.Errorf("Text(nil)=%q", got)
	}
	var e *cast.Ident
	if got := f.Text(e); got != "" {
		t.Errorf("Text(typed nil)=%q", got)
	}
}

func TestSpanNesting(t *testing.T) {
	// every child's span must be inside its parent's span
	f := parse(t, "void f(int n){ for (int i=0;i<n;++i) { s[i] = i*2 + 1; } }")
	type spanned struct {
		node  cast.Node
		f, l  int
		depth int
	}
	var stack []spanned
	ok := true
	cast.Walk(f, func(n cast.Node) bool {
		nf, nl := n.Span()
		if _, isFile := n.(*cast.File); isFile {
			return true
		}
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			if nf >= top.f && nl <= top.l {
				break
			}
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			top := stack[len(stack)-1]
			if nf < top.f || nl > top.l {
				ok = false
			}
		}
		stack = append(stack, spanned{n, nf, nl, len(stack)})
		return true
	})
	if !ok {
		t.Error("child span escapes parent span")
	}
}

func TestMetaKindStrings(t *testing.T) {
	kinds := []cast.MetaKind{
		cast.MetaExprKind, cast.MetaIdentKind, cast.MetaTypeKind,
		cast.MetaStmtKind, cast.MetaConstKind, cast.MetaParamListKind,
		cast.MetaExprListKind, cast.MetaStmtListKind, cast.MetaPosKind,
		cast.MetaFreshIdentKind, cast.MetaSymbolKind, cast.MetaPragmaInfoKind,
		cast.MetaFuncKind,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "metavariable" {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}

func TestKernelLaunchWalk(t *testing.T) {
	f := parse(t, "void f(void){ k<<<g, b>>>(x, y); }")
	var launches, idents int
	cast.Walk(f, func(n cast.Node) bool {
		switch n.(type) {
		case *cast.KernelLaunch:
			launches++
		case *cast.Ident:
			idents++
		}
		return true
	})
	if launches != 1 {
		t.Errorf("launches=%d", launches)
	}
	if idents < 5 { // k, g, b, x, y
		t.Errorf("idents=%d, config/args not walked", idents)
	}
}
