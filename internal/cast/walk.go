package cast

// Visitor receives each node during a walk. Returning false stops descent
// into the node's children.
type Visitor func(Node) bool

// Walk traverses the tree rooted at n in source order, calling v for every
// node before its children.
func Walk(n Node, v Visitor) {
	if n == nil || isNilNode(n) {
		return
	}
	if !v(n) {
		return
	}
	switch x := n.(type) {
	case *File:
		for _, d := range x.Decls {
			Walk(d, v)
		}
	case *FuncDef:
		for _, a := range x.Attrs {
			Walk(a, v)
		}
		Walk(x.Ret, v)
		Walk(x.Name, v)
		Walk(x.Params, v)
		if x.Body != nil {
			Walk(x.Body, v)
		}
	case *Attr:
		for _, a := range x.Args {
			Walk(a, v)
		}
	case *VarDecl:
		Walk(x.Type, v)
		for _, it := range x.Items {
			Walk(it, v)
		}
	case *Declarator:
		Walk(x.Name, v)
		for _, d := range x.Dims {
			Walk(d, v)
		}
		Walk(x.Init, v)
	case *ParamList:
		for _, p := range x.Params {
			Walk(p, v)
		}
	case *Param:
		Walk(x.Type, v)
		Walk(x.Name, v)
	case *Compound:
		for _, s := range x.Items {
			Walk(s, v)
		}
	case *ExprStmt:
		Walk(x.X, v)
	case *DeclStmt:
		Walk(x.D, v)
	case *If:
		Walk(x.Cond, v)
		Walk(x.Then, v)
		Walk(x.Else, v)
	case *For:
		Walk(x.Init, v)
		Walk(x.Cond, v)
		Walk(x.Post, v)
		Walk(x.Body, v)
	case *RangeFor:
		Walk(x.Decl, v)
		Walk(x.X, v)
		Walk(x.Body, v)
	case *While:
		Walk(x.Cond, v)
		Walk(x.Body, v)
	case *DoWhile:
		Walk(x.Body, v)
		Walk(x.Cond, v)
	case *Return:
		Walk(x.X, v)
	case *Label:
		Walk(x.Stmt, v)
	case *Switch:
		Walk(x.Cond, v)
		Walk(x.Body, v)
	case *Case:
		Walk(x.X, v)
	case *PragmaStmt:
		Walk(x.P, v)
	case *ParenExpr:
		Walk(x.X, v)
	case *UnaryExpr:
		Walk(x.X, v)
	case *BinaryExpr:
		Walk(x.X, v)
		Walk(x.Y, v)
	case *CondExpr:
		Walk(x.Cond, v)
		Walk(x.Then, v)
		Walk(x.Else, v)
	case *CallExpr:
		Walk(x.Fun, v)
		for _, a := range x.Args {
			Walk(a, v)
		}
	case *IndexExpr:
		Walk(x.X, v)
		for _, i := range x.Indices {
			Walk(i, v)
		}
	case *MemberExpr:
		Walk(x.X, v)
	case *CastExpr:
		Walk(x.Type, v)
		Walk(x.X, v)
	case *SizeofExpr:
		Walk(x.Type, v)
		Walk(x.X, v)
	case *CommaExpr:
		for _, e := range x.List {
			Walk(e, v)
		}
	case *InitList:
		for _, e := range x.Elems {
			Walk(e, v)
		}
	case *KernelLaunch:
		Walk(x.Fun, v)
		for _, c := range x.Config {
			Walk(c, v)
		}
		for _, a := range x.Args {
			Walk(a, v)
		}
	case *LambdaExpr:
		if x.Params != nil {
			Walk(x.Params, v)
		}
		if x.Body != nil {
			Walk(x.Body, v)
		}
	case *DisjExpr:
		for _, b := range x.Branches {
			Walk(b, v)
		}
	case *ConjExpr:
		for _, o := range x.Operands {
			Walk(o, v)
		}
	case *DisjStmt:
		for _, br := range x.Branches {
			for _, s := range br {
				Walk(s, v)
			}
		}
	case *ConjStmt:
		for _, o := range x.Operands {
			Walk(o, v)
		}
	}
}

// isNilNode reports whether n is a typed nil inside the Node interface.
func isNilNode(n Node) bool {
	switch x := n.(type) {
	case *File:
		return x == nil
	case *FuncDef:
		return x == nil
	case *Attr:
		return x == nil
	case *VarDecl:
		return x == nil
	case *Declarator:
		return x == nil
	case *ParamList:
		return x == nil
	case *Param:
		return x == nil
	case *Type:
		return x == nil
	case *Ident:
		return x == nil
	case *Compound:
		return x == nil
	case *ExprStmt:
		return x == nil
	case *DeclStmt:
		return x == nil
	case *If:
		return x == nil
	case *Return:
		return x == nil
	case Expr:
		return isNilExpr(x)
	case Stmt:
		return isNilStmt(x)
	}
	return false
}

func isNilExpr(e Expr) bool {
	switch x := e.(type) {
	case nil:
		return true
	case *Ident:
		return x == nil
	case *BasicLit:
		return x == nil
	case *ParenExpr:
		return x == nil
	case *UnaryExpr:
		return x == nil
	case *BinaryExpr:
		return x == nil
	case *CondExpr:
		return x == nil
	case *CallExpr:
		return x == nil
	case *IndexExpr:
		return x == nil
	case *MemberExpr:
		return x == nil
	case *CastExpr:
		return x == nil
	case *SizeofExpr:
		return x == nil
	case *CommaExpr:
		return x == nil
	case *InitList:
		return x == nil
	case *KernelLaunch:
		return x == nil
	case *LambdaExpr:
		return x == nil
	case *MetaExpr:
		return x == nil
	case *Type:
		return x == nil
	case *DisjExpr:
		return x == nil
	case *ConjExpr:
		return x == nil
	case *Dots:
		return x == nil
	case *OpaqueExpr:
		return x == nil
	}
	return false
}

func isNilStmt(s Stmt) bool {
	switch x := s.(type) {
	case nil:
		return true
	case *Compound:
		return x == nil
	case *ExprStmt:
		return x == nil
	case *DeclStmt:
		return x == nil
	case *If:
		return x == nil
	case *For:
		return x == nil
	case *RangeFor:
		return x == nil
	case *While:
		return x == nil
	case *DoWhile:
		return x == nil
	case *Return:
		return x == nil
	case *Break:
		return x == nil
	case *Continue:
		return x == nil
	case *Goto:
		return x == nil
	case *Label:
		return x == nil
	case *Switch:
		return x == nil
	case *Case:
		return x == nil
	case *Empty:
		return x == nil
	case *PragmaStmt:
		return x == nil
	case *MetaStmt:
		return x == nil
	case *Dots:
		return x == nil
	case *DisjStmt:
		return x == nil
	case *ConjStmt:
		return x == nil
	}
	return false
}

// Exprs collects every expression node in the tree rooted at n, in source
// order.
func Exprs(n Node) []Expr {
	var out []Expr
	Walk(n, func(m Node) bool {
		if e, ok := m.(Expr); ok && !isNilExpr(e) {
			if _, isType := e.(*Type); !isType {
				out = append(out, e)
			}
		}
		return true
	})
	return out
}

// Compounds collects every compound statement in the tree rooted at n.
func Compounds(n Node) []*Compound {
	var out []*Compound
	Walk(n, func(m Node) bool {
		if c, ok := m.(*Compound); ok && c != nil {
			out = append(out, c)
		}
		return true
	})
	return out
}

// Funcs returns all function definitions with bodies in the file.
func (f *File) Funcs() []*FuncDef {
	var out []*FuncDef
	for _, d := range f.Decls {
		if fd, ok := d.(*FuncDef); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	return out
}

// Text returns the exact source text of node n in file f (without leading
// whitespace).
func (f *File) Text(n Node) string {
	if n == nil || isNilNode(n) {
		return ""
	}
	first, last := n.Span()
	return f.Toks.Slice(first, last)
}
