// File segmentation for function-granular incremental matching. A source
// file is cut at its top-level function definitions into an alternating
// sequence of gaps (everything outside function bodies: includes, globals,
// prototypes, comments) and function segments:
//
//	gap0 fn0 gap1 fn1 ... fnK gapK+1
//
// Each function segment carries a content identity — a hash input built from
// the function's name, its own-line indentation, and its exact token text,
// but *not* from anything before or after it — so reordering functions,
// editing a sibling, or touching only inter-function whitespace leaves every
// untouched function's identity intact. The residue (the concatenation of
// the gaps) gets its own identity the same way. These identities key the
// function-granular result cache (internal/cache.FuncRecord), and the
// segment token extents drive the matcher's Window restriction
// (internal/match.Matcher.Window).

package cast

import "strings"

// FuncSeg is one top-level function definition's segment.
type FuncSeg struct {
	// Fn is the function's AST node (Body is always non-nil).
	Fn *FuncDef
	// First and Last are the function's token extent (inclusive).
	First, Last int
	// Name is the function's name, part of its identity so that renaming a
	// function invalidates its cache entries even when the body is unchanged.
	Name string
	// Lead is the tail of the first token's whitespace after its last
	// newline — the function's own-line indentation. It belongs to the
	// segment (so an indentation change re-matches the function), while the
	// newline and everything before it belong to the preceding gap.
	Lead string
	// Text is the exact source text of tokens [First,Last] (Toks.Slice).
	Text string
}

// Identity is the content-hash input naming this function segment. It is
// independent of the function's position in the file and of every other
// segment's content.
func (fs *FuncSeg) Identity() string {
	return fs.Name + "\x00" + fs.Lead + "\x00" + fs.Text
}

// Raw is the segment's exact byte contribution to the file: Lead + Text.
func (fs *FuncSeg) Raw() string { return fs.Lead + fs.Text }

// Segmentation is one file cut into gaps and function segments. Splicing
// the raw pieces back together reproduces the file byte-exactly.
type Segmentation struct {
	File    *File
	Funcs   []FuncSeg
	aligned bool
}

// SegmentFile cuts f at its top-level function definitions (those with
// bodies). It returns nil when the file has no such functions — there is
// nothing to segment.
func SegmentFile(f *File) *Segmentation {
	fns := f.Funcs()
	if len(fns) == 0 {
		return nil
	}
	toks := f.Toks.Tokens
	s := &Segmentation{File: f, aligned: true}
	for _, fd := range fns {
		first, last := fd.Span()
		if first < 0 || last < first || last >= len(toks) {
			return nil // defensive: a span outside the token file
		}
		ws := toks[first].WS
		lead := ws
		if nl := strings.LastIndexByte(ws, '\n'); nl >= 0 {
			lead = ws[nl+1:]
		}
		name := ""
		if fd.Name != nil {
			name = f.Text(fd.Name)
		}
		s.Funcs = append(s.Funcs, FuncSeg{
			Fn: fd, First: first, Last: last,
			Name: name, Lead: lead, Text: f.Toks.Slice(first, last),
		})
		// Line alignment: the function must start its own line (or the
		// file), and the next token must start a new line (or be EOF).
		// Misaligned files (two functions on one line, trailing tokens on
		// the closing-brace line) fall back to file-level processing —
		// per-segment rendering could not compose line cleanup for them.
		if first > 0 && !strings.Contains(ws, "\n") {
			s.aligned = false
		}
		if next := last + 1; next < len(toks)-1 && !strings.Contains(toks[next].WS, "\n") {
			s.aligned = false
		}
	}
	// Function extents must be disjoint and in source order (always true for
	// top-level declarations; checked so splicing can assume it).
	for i := 1; i < len(s.Funcs); i++ {
		if s.Funcs[i].First <= s.Funcs[i-1].Last {
			return nil
		}
	}
	return s
}

// Aligned reports whether every segment boundary falls on a line boundary;
// only aligned files are eligible for per-segment rendering.
func (s *Segmentation) Aligned() bool { return s.aligned }

// GapBounds returns the token extent [a,b] of gap i (b < a for an empty
// gap). Gap i precedes function i; gap len(Funcs) is the tail of the file,
// including the EOF token and its trailing whitespace.
func (s *Segmentation) GapBounds(i int) (a, b int) {
	a = 0
	if i > 0 {
		a = s.Funcs[i-1].Last + 1
	}
	b = len(s.File.Toks.Tokens) - 1
	if i < len(s.Funcs) {
		b = s.Funcs[i].First - 1
	}
	return a, b
}

// GapHead returns the part of function i's leading whitespace that belongs
// to gap i: everything up to and including its last newline ("" for the
// final gap, which has no following function).
func (s *Segmentation) GapHead(i int) string {
	if i >= len(s.Funcs) {
		return ""
	}
	ws := s.File.Toks.Tokens[s.Funcs[i].First].WS
	return ws[:len(ws)-len(s.Funcs[i].Lead)]
}

// GapRaw returns gap i's exact byte contribution to the file.
func (s *Segmentation) GapRaw(i int) string {
	a, b := s.GapBounds(i)
	var sb strings.Builder
	toks := s.File.Toks.Tokens
	for j := a; j <= b; j++ {
		sb.WriteString(toks[j].WS)
		sb.WriteString(toks[j].Text)
	}
	sb.WriteString(s.GapHead(i))
	return sb.String()
}

// ResidueIdentity is the content-hash input naming the residue — every gap,
// in order, separated so gap boundaries cannot alias.
func (s *Segmentation) ResidueIdentity() string {
	var sb strings.Builder
	for i := 0; i <= len(s.Funcs); i++ {
		if i > 0 {
			sb.WriteByte('\x00')
		}
		sb.WriteString(s.GapRaw(i))
	}
	return sb.String()
}

// Splice reassembles a file from per-gap and per-function texts:
// gaps[0] + funcs[0] + gaps[1] + ... + funcs[K] + gaps[K+1].
// With the raw pieces it reproduces the original file byte-exactly.
func (s *Segmentation) Splice(gaps, funcs []string) string {
	var sb strings.Builder
	for i := 0; i <= len(s.Funcs); i++ {
		sb.WriteString(gaps[i])
		if i < len(s.Funcs) {
			sb.WriteString(funcs[i])
		}
	}
	return sb.String()
}

// FuncWindow returns the matcher window admitting exactly the tree nodes
// inside function i's extent.
func (s *Segmentation) FuncWindow(i int) func(first, last int) bool {
	f, l := s.Funcs[i].First, s.Funcs[i].Last
	return func(first, last int) bool { return first >= f && last <= l }
}

// ResidueWindow returns the matcher window admitting exactly the tree nodes
// contained in no function extent. Because top-level function subtrees own
// contiguous token ranges, every node is either inside exactly one function
// extent or outside all of them, so FuncWindow(0..K) and ResidueWindow
// partition the candidate nodes.
func (s *Segmentation) ResidueWindow() func(first, last int) bool {
	segs := s.Funcs
	return func(first, last int) bool {
		for i := range segs {
			if first >= segs[i].First && last <= segs[i].Last {
				return false
			}
		}
		return true
	}
}

// ResidueOffset converts an absolute token index lying outside every
// function extent into its residue-relative offset: the count of residue
// tokens preceding it. The offset only depends on the residue's own content
// (function token counts are excluded), so it stays stable while functions
// above the token grow or shrink — the property the analysis baseline and
// the per-function finding cache key on.
func (s *Segmentation) ResidueOffset(ti int) int {
	off := ti
	for i := range s.Funcs {
		if s.Funcs[i].Last < ti {
			off -= s.Funcs[i].Last - s.Funcs[i].First + 1
		}
	}
	return off
}

// ResidueToken is the inverse of ResidueOffset: it maps a residue-relative
// offset back to the absolute token index under this segmentation.
func (s *Segmentation) ResidueToken(off int) int {
	ti := off
	for i := range s.Funcs {
		if s.Funcs[i].First <= ti {
			ti += s.Funcs[i].Last - s.Funcs[i].First + 1
		}
	}
	return ti
}
