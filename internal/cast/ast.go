// Package cast defines the abstract syntax tree for the C/C++ dialect
// understood by the semantic patch engine. Every node records the span of
// tokens it covers in the underlying token file, which is what makes exact,
// token-level transformations possible: the engine edits token ranges, never
// re-prints whole trees.
//
// The same node set also represents SmPL patterns. Pattern-only nodes
// (metavariables, dots, disjunctions, conjunctions) carry the Meta* prefix or
// are documented as pattern-only; they never appear in trees parsed from
// plain C/C++ sources.
package cast

import "repro/internal/ctoken"

// Node is implemented by all AST nodes.
type Node interface {
	// Span returns the inclusive token index range covered by the node.
	Span() (first, last int)
}

// span is the common embeddable token range.
type span struct{ first, last int }

func (s span) Span() (int, int) { return s.first, s.last }

// SetSpan is used by the parser to record token coverage.
func (s *span) SetSpan(first, last int) { s.first, s.last = first, last }

// NewSpan builds a span; exported for the parser and tests.
func NewSpan(first, last int) Span { return Span{span{first, last}} }

// Span is a concrete spanning helper for nodes constructed outside cparse.
type Span struct{ span }

// ---------------------------------------------------------------------------
// File and top-level declarations

// File is a parsed translation unit.
type File struct {
	Name  string
	Toks  *ctoken.File
	Decls []Decl
}

// Span covers the whole token stream, making *File usable as a Node.
func (f *File) Span() (int, int) {
	if f.Toks == nil || len(f.Toks.Tokens) == 0 {
		return 0, 0
	}
	return 0, len(f.Toks.Tokens) - 1
}

// Decl is a top-level declaration or directive.
type Decl interface {
	Node
	declNode()
}

// Include is an #include directive.
type Include struct {
	span
	Path   string // header name without delimiters
	Angled bool   // <...> vs "..."
	Raw    string // full directive text
}

// Pragma is a #pragma directive (top level or statement position).
type Pragma struct {
	span
	Raw  string   // full "#pragma ..." text
	Info string   // text after "#pragma "
	Word []string // whitespace-split Info, for directive matching
}

// PPOther is any other preprocessor directive (#define, #if, ...), kept
// opaque.
type PPOther struct {
	span
	Raw string
}

// FuncDef is a function definition or prototype.
type FuncDef struct {
	span
	Attrs  []*Attr // __attribute__((...)) specifiers, in order
	Ret    *Type
	Name   *Ident
	Params *ParamList
	Body   *Compound // nil for a prototype
}

// Attr is a GNU __attribute__((...)) specifier.
type Attr struct {
	span
	Args []Expr // the attribute expression list inside the double parens
}

// VarDecl is a variable (or typedef-like) declaration; usable at top level
// and as a statement.
type VarDecl struct {
	span
	Type  *Type
	Items []*Declarator
}

// Declarator is one declared name with its modifiers and initializer.
type Declarator struct {
	span
	Stars int // pointer depth
	Ref   bool
	Name  *Ident
	Dims  []Expr // array dimensions, nil-entry for []
	Init  Expr   // nil if none
}

// OpaqueDecl preserves a top-level construct the parser does not model
// (struct/enum/typedef definitions, templates, namespaces).
type OpaqueDecl struct {
	span
	Raw string
}

func (*Include) declNode()    {}
func (*Pragma) declNode()     {}
func (*PPOther) declNode()    {}
func (*FuncDef) declNode()    {}
func (*VarDecl) declNode()    {}
func (*OpaqueDecl) declNode() {}

// ---------------------------------------------------------------------------
// Statements

// Stmt is a statement.
type Stmt interface {
	Node
	stmtNode()
}

// Compound is a { ... } block.
type Compound struct {
	span
	Items []Stmt
}

// ExprStmt is an expression statement.
type ExprStmt struct {
	span
	X Expr
}

// DeclStmt is a declaration in statement position.
type DeclStmt struct {
	span
	D *VarDecl
}

// If statement.
type If struct {
	span
	Cond Expr
	Then Stmt
	Else Stmt // nil if absent
}

// For is a classic three-clause for loop.
type For struct {
	span
	Init Stmt // DeclStmt, ExprStmt or Empty (never nil; Empty for ';')
	Cond Expr // nil if empty
	Post Expr // nil if empty
	Body Stmt
}

// RangeFor is a C++ range-based for: for (T &x : arr) body.
type RangeFor struct {
	span
	Decl *VarDecl // declaration of the loop variable
	X    Expr     // the range expression
	Body Stmt
}

// While loop.
type While struct {
	span
	Cond Expr
	Body Stmt
}

// DoWhile loop.
type DoWhile struct {
	span
	Body Stmt
	Cond Expr
}

// Return statement.
type Return struct {
	span
	X Expr // nil if void return
}

// Break statement.
type Break struct{ span }

// Continue statement.
type Continue struct{ span }

// Goto statement.
type Goto struct {
	span
	Label string
}

// Label declaration: name: stmt.
type Label struct {
	span
	Name string
	Stmt Stmt
}

// Switch statement.
type Switch struct {
	span
	Cond Expr
	Body Stmt
}

// Case label inside a switch ("case e:" or "default:").
type Case struct {
	span
	X Expr // nil for default
}

// Empty statement (bare semicolon).
type Empty struct{ span }

// PragmaStmt wraps a #pragma appearing in statement position.
type PragmaStmt struct {
	span
	P *Pragma
}

func (*Compound) stmtNode()   {}
func (*ExprStmt) stmtNode()   {}
func (*DeclStmt) stmtNode()   {}
func (*If) stmtNode()         {}
func (*For) stmtNode()        {}
func (*RangeFor) stmtNode()   {}
func (*While) stmtNode()      {}
func (*DoWhile) stmtNode()    {}
func (*Return) stmtNode()     {}
func (*Break) stmtNode()      {}
func (*Continue) stmtNode()   {}
func (*Goto) stmtNode()       {}
func (*Label) stmtNode()      {}
func (*Switch) stmtNode()     {}
func (*Case) stmtNode()       {}
func (*Empty) stmtNode()      {}
func (*PragmaStmt) stmtNode() {}

// ---------------------------------------------------------------------------
// Expressions

// Expr is an expression.
type Expr interface {
	Node
	exprNode()
}

// Ident is an identifier use.
type Ident struct {
	span
	Name string
}

// BasicLit is a literal (int, float, char, string).
type BasicLit struct {
	span
	Kind  ctoken.Kind
	Value string
}

// ParenExpr is a parenthesized expression.
type ParenExpr struct {
	span
	X Expr
}

// UnaryExpr is a prefix or postfix unary operation.
type UnaryExpr struct {
	span
	Op      string
	X       Expr
	Postfix bool
}

// BinaryExpr is a binary operation (including assignments, which carry
// assignment operators such as "=", "+=").
type BinaryExpr struct {
	span
	X  Expr
	Op string
	Y  Expr
}

// CondExpr is the ternary conditional.
type CondExpr struct {
	span
	Cond, Then, Else Expr
}

// CallExpr is a function call.
type CallExpr struct {
	span
	Fun  Expr
	Args []Expr
}

// IndexExpr is a subscript. Under C++23, Indices may hold several
// comma-separated expressions (a[x, y, z]); otherwise exactly one.
type IndexExpr struct {
	span
	X       Expr
	Indices []Expr
}

// MemberExpr is a field access with '.' or '->' (Arrow true) or '::'.
type MemberExpr struct {
	span
	X     Expr
	Op    string // ".", "->", "::"
	Name  string
	NameT int // token index of the name
}

// CastExpr is a C-style cast.
type CastExpr struct {
	span
	Type *Type
	X    Expr
}

// SizeofExpr is sizeof(type) or sizeof expr.
type SizeofExpr struct {
	span
	Type *Type // one of Type or X set
	X    Expr
}

// CommaExpr is a comma expression sequence.
type CommaExpr struct {
	span
	List []Expr
}

// InitList is a braced initializer, kept shallow.
type InitList struct {
	span
	Elems []Expr
}

// KernelLaunch is CUDA's triple-chevron launch: k<<<cfg...>>>(args...).
type KernelLaunch struct {
	span
	Fun    Expr
	Config []Expr
	Args   []Expr
}

// LambdaExpr is a C++ lambda, modelled shallowly: capture text, parameters
// and body.
type LambdaExpr struct {
	span
	Capture string
	Params  *ParamList // may be nil
	Body    *Compound
}

// OpaqueExpr preserves an expression the parser cannot model (template-heavy
// C++, lambda macros) as a balanced token run. It appears only in code
// trees, never in patterns, and matches expression metavariables and dots.
type OpaqueExpr struct {
	span
	Raw string
}

func (*OpaqueExpr) exprNode() {}

func (*Ident) exprNode()        {}
func (*BasicLit) exprNode()     {}
func (*ParenExpr) exprNode()    {}
func (*UnaryExpr) exprNode()    {}
func (*BinaryExpr) exprNode()   {}
func (*CondExpr) exprNode()     {}
func (*CallExpr) exprNode()     {}
func (*IndexExpr) exprNode()    {}
func (*MemberExpr) exprNode()   {}
func (*CastExpr) exprNode()     {}
func (*SizeofExpr) exprNode()   {}
func (*CommaExpr) exprNode()    {}
func (*InitList) exprNode()     {}
func (*KernelLaunch) exprNode() {}
func (*LambdaExpr) exprNode()   {}

// ---------------------------------------------------------------------------
// Types and parameters

// Type is a type reference: qualifiers + base name + pointer/reference
// markers. Types the parser cannot decompose stay textual in Base.
type Type struct {
	span
	Quals []string // const, volatile, static, ...
	Base  string   // normalized base, e.g. "unsigned long", "struct particle"
	Stars int
	Ref   bool
}

func (*Type) exprNode() {} // types may appear in expression positions (sizeof, casts)

// ParamList is a function parameter list.
type ParamList struct {
	span
	Params   []*Param
	Variadic bool // trailing ", ..."
	// MetaDots marks an SmPL "(...)" parameter list wildcard pattern.
	MetaDots bool
}

// Param is one function parameter.
type Param struct {
	span
	Type *Type
	Name *Ident // may be nil (unnamed)
	// MetaName set when this param is an SmPL "parameter list" metavariable.
	MetaName string
}

// ---------------------------------------------------------------------------
// SmPL pattern-only nodes

// MetaKind enumerates metavariable kinds from SmPL declarations.
type MetaKind uint8

// Metavariable kinds.
const (
	MetaExprKind MetaKind = iota
	MetaIdentKind
	MetaTypeKind
	MetaStmtKind
	MetaConstKind
	MetaParamListKind
	MetaExprListKind
	MetaStmtListKind
	MetaPosKind
	MetaFreshIdentKind
	MetaSymbolKind
	MetaPragmaInfoKind
	MetaFuncKind
)

func (k MetaKind) String() string {
	switch k {
	case MetaExprKind:
		return "expression"
	case MetaIdentKind:
		return "identifier"
	case MetaTypeKind:
		return "type"
	case MetaStmtKind:
		return "statement"
	case MetaConstKind:
		return "constant"
	case MetaParamListKind:
		return "parameter list"
	case MetaExprListKind:
		return "expression list"
	case MetaStmtListKind:
		return "statement list"
	case MetaPosKind:
		return "position"
	case MetaFreshIdentKind:
		return "fresh identifier"
	case MetaSymbolKind:
		return "symbol"
	case MetaPragmaInfoKind:
		return "pragmainfo"
	case MetaFuncKind:
		return "function"
	}
	return "metavariable"
}

// MetaExpr is a metavariable in expression position (expression, identifier,
// constant, type metavariables used as expressions).
type MetaExpr struct {
	span
	Name string
	Kind MetaKind
	// Positions attached with @p.
	Positions []string
}

func (*MetaExpr) exprNode() {}

// MetaStmt is a statement metavariable.
type MetaStmt struct {
	span
	Name      string
	Positions []string
}

func (*MetaStmt) stmtNode() {}

// Dots is "..." in statement or expression-list position. In statement
// position the dots stand for a control-flow path, and the When* fields
// carry the full SmPL `when` constraint family governing what that path may
// traverse and how it is quantified.
type Dots struct {
	span
	// WhenNot holds "when != e" constraints: no traversed statement may
	// contain a match of e.
	WhenNot []Expr
	// WhenOnly holds "when == e" constraints: every traversed statement
	// must be a match of one of these expressions.
	WhenOnly []Expr
	// WhenAny ("when any") lifts all content constraints from the path.
	// The parser rejects combining it with WhenNot/WhenOnly.
	WhenAny bool
	// WhenStrict/WhenForall ("when strict", "when forall") require the
	// constraints to hold on every path between the surrounding anchors,
	// not just on some witness path.
	WhenStrict bool
	WhenForall bool
	// WhenExists ("when exists") names the default existential
	// quantification explicitly.
	WhenExists bool
}

func (*Dots) stmtNode() {}
func (*Dots) exprNode() {}

// DisjExpr is an escaped expression disjunction \( a \| b \).
type DisjExpr struct {
	span
	Branches []Expr
}

func (*DisjExpr) exprNode() {}

// ConjExpr is an escaped expression conjunction \( a \& b \): all operands
// must match the same code expression.
type ConjExpr struct {
	span
	Operands []Expr
}

func (*ConjExpr) exprNode() {}

// DisjStmt is a statement-level disjunction written with (, |, ) in column 0.
type DisjStmt struct {
	span
	Branches [][]Stmt
}

func (*DisjStmt) stmtNode() {}

// ConjStmt is a statement-level conjunction: branches of \( s \& s \) that
// must all match the same statement.
type ConjStmt struct {
	span
	Operands []Stmt
}

func (*ConjStmt) stmtNode() {}

// PragmaPattern matches #pragma directives in patterns: a sequence of fixed
// words, then optionally a pragmainfo metavariable or dots wildcard.
type PragmaPattern struct {
	span
	Words    []string // fixed leading words ("omp", "acc", ...)
	InfoMeta string   // pragmainfo metavariable name, "" if none
	TailDots bool     // trailing "..." wildcard
}

func (*PragmaPattern) stmtNode() {}
func (*PragmaPattern) declNode() {}

// IncludePattern matches #include directives in patterns.
type IncludePattern struct {
	span
	Path   string
	Angled bool
}

func (*IncludePattern) declNode() {}
func (*IncludePattern) stmtNode() {}

// AttrPattern matches __attribute__((target(...,"avx512",...))) style
// attribute specifications with dots wildcards in the argument list.
type AttrPattern struct {
	span
	Args []Expr // may contain Dots entries
}
