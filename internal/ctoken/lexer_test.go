package ctoken

import (
	"strings"
	"testing"
	"testing/quick"
)

func lexOK(t *testing.T, src string, opts Options) *File {
	t.Helper()
	f, err := Lex("test.c", src, opts)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	return f
}

func kinds(f *File) []Kind {
	var ks []Kind
	for _, t := range f.Tokens {
		ks = append(ks, t.Kind)
	}
	return ks
}

func texts(f *File) []string {
	var ts []string
	for _, t := range f.Tokens {
		if t.Kind != EOF {
			ts = append(ts, t.Text)
		}
	}
	return ts
}

func TestLexBasics(t *testing.T) {
	f := lexOK(t, "int main(void) { return 0; }", Options{})
	want := []string{"int", "main", "(", "void", ")", "{", "return", "0", ";", "}"}
	got := texts(f)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestLexRenderRoundtrip(t *testing.T) {
	srcs := []string{
		"int main(void) { return 0; }",
		"/* header */\nint  x = 042;   // trailing\n\nfloat y = 1.5e-3f;\n",
		"#include <omp.h>\n#pragma omp parallel for\nfor(int i=0;i<n;++i) a[i]=b[i];\n",
		"char *s = \"hi\\\"there\";\nchar c = '\\n';\n",
		"#define M(a,b) \\\n  ((a)+(b))\nint z = M(1,2);\n",
		"x <<= 2; y >>= 3; p->q.r++; a ? b : c;\n",
		"double d = 0x1.8p3;\n",
	}
	for _, src := range srcs {
		f := lexOK(t, src, Options{})
		if got := f.Render(); got != src {
			t.Errorf("roundtrip failed:\n in: %q\nout: %q", src, got)
		}
	}
}

func TestLexCUDAChevrons(t *testing.T) {
	f := lexOK(t, "k<<<b,t>>>(x);", Options{CUDAChevrons: true})
	got := texts(f)
	want := []string{"k", "<<<", "b", ",", "t", ">>>", "(", "x", ")", ";"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v want %v", got, want)
	}
	// Without chevrons the same text lexes as shifts.
	f = lexOK(t, "a<<<b", Options{})
	got = texts(f)
	want = []string{"a", "<<", "<", "b"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestLexPPDirectives(t *testing.T) {
	src := "#include <stdio.h>\nint x;\n#pragma omp parallel \\\n  for\ny();\n"
	f := lexOK(t, src, Options{})
	var pps []string
	for _, tok := range f.Tokens {
		if tok.Kind == PP {
			pps = append(pps, tok.Text)
		}
	}
	if len(pps) != 2 {
		t.Fatalf("want 2 PP tokens, got %d: %v", len(pps), pps)
	}
	if pps[0] != "#include <stdio.h>" {
		t.Errorf("include text = %q", pps[0])
	}
	if !strings.Contains(pps[1], "for") || !strings.HasPrefix(pps[1], "#pragma omp") {
		t.Errorf("pragma continuation not merged: %q", pps[1])
	}
	if f.Render() != src {
		t.Errorf("roundtrip failed")
	}
}

func TestLexHashNotAtLineStart(t *testing.T) {
	// '#' mid-line is an error in C, but in SmPL mode ## is concatenation.
	f := lexOK(t, `fresh identifier g = "p_" ## f;`, Options{SmPL: true})
	found := false
	for _, tok := range f.Tokens {
		if tok.Is("##") {
			found = true
		}
	}
	if !found {
		t.Errorf("## not lexed in SmPL mode: %v", texts(f))
	}
}

func TestLexSmPLTokens(t *testing.T) {
	f := lexOK(t, `\( A \& i+0 \) \| B @p`, Options{SmPL: true})
	got := texts(f)
	want := []string{`\(`, "A", `\&`, "i", "+", "0", `\)`, `\|`, "B", "@", "p"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
	}{
		{"42", IntLit}, {"0x1f", IntLit}, {"042", IntLit}, {"42u", IntLit},
		{"42ULL", IntLit}, {"1.5", FloatLit}, {"1.5f", FloatLit},
		{"1e10", FloatLit}, {"1.5e-3", FloatLit}, {".5", FloatLit},
		{"0x1.8p3", FloatLit},
	}
	for _, c := range cases {
		f := lexOK(t, c.src, Options{})
		if f.Tokens[0].Kind != c.kind || f.Tokens[0].Text != c.src {
			t.Errorf("%q: got kind=%v text=%q, want kind=%v", c.src, f.Tokens[0].Kind, f.Tokens[0].Text, c.kind)
		}
	}
}

func TestLexStrings(t *testing.T) {
	cases := []string{`"abc"`, `"a\"b"`, `'x'`, `'\0'`, `L"wide"`, `u8"utf"`, `R"(raw " string)"`}
	for _, c := range cases {
		f := lexOK(t, c, Options{})
		if f.Tokens[0].Text != c {
			t.Errorf("%q lexed as %q", c, f.Tokens[0].Text)
		}
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{`"unterminated`, `'u`, "/* open", "`"}
	for _, c := range cases {
		if _, err := Lex("t.c", c, Options{}); err == nil {
			t.Errorf("Lex(%q): expected error", c)
		}
	}
}

func TestLexPositions(t *testing.T) {
	f := lexOK(t, "int x;\n  y = 2;", Options{})
	// token "y" should be at line 2, col 3
	for _, tok := range f.Tokens {
		if tok.IsIdent("y") {
			if tok.Pos.Line != 2 || tok.Pos.Col != 3 {
				t.Errorf("y at %v, want 2:3", tok.Pos)
			}
			return
		}
	}
	t.Fatal("y not found")
}

func TestSlice(t *testing.T) {
	f := lexOK(t, "a + b * c", Options{})
	if got := f.Slice(0, 4); got != "a + b * c" {
		t.Errorf("Slice = %q", got)
	}
	if got := f.Slice(2, 4); got != "b * c" {
		t.Errorf("Slice = %q", got)
	}
	if got := f.Slice(3, 2); got != "" {
		t.Errorf("inverted Slice = %q, want empty", got)
	}
}

// Property: rendering the token stream of any lexable identifier/whitespace
// soup reproduces the input.
func TestQuickRoundtrip(t *testing.T) {
	alphabet := []string{"x", "foo", "42", "1.5", "+", "-", "*", "(", ")", "{", "}",
		";", ",", " ", "\n", "\t", "==", "<=", "->", `"s"`, "'c'", "/*c*/ ", "// l\n"}
	gen := func(pick []int) string {
		var sb strings.Builder
		for _, p := range pick {
			if p < 0 {
				p = -p
			}
			sb.WriteString(alphabet[p%len(alphabet)])
			sb.WriteString(" ")
		}
		return sb.String()
	}
	prop := func(pick []int) bool {
		src := gen(pick)
		f, err := Lex("q.c", src, Options{})
		if err != nil {
			return false
		}
		return f.Render() == src
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: lexing is insensitive to trailing whitespace in token count.
func TestQuickTrailingWS(t *testing.T) {
	prop := func(n uint8) bool {
		src := "int x = 1;" + strings.Repeat(" ", int(n%40))
		f, err := Lex("q.c", src, Options{})
		if err != nil {
			return false
		}
		return len(f.Tokens) == 6 && f.Render() == src
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
