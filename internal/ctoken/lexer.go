package ctoken

import (
	"fmt"
	"strings"
)

// Options controls lexing behaviour.
type Options struct {
	// SmPL enables semantic-patch tokens: \( \| \) \& for escaped
	// disjunction/conjunction, @ for rule delimiters and position
	// attachment, ## for identifier concatenation, and =~ for regular
	// expression constraints.
	SmPL bool
	// CUDAChevrons enables the <<< and >>> kernel-launch tokens. When off,
	// those character runs lex as << < and >> >.
	CUDAChevrons bool
}

// A LexError describes a lexical error with its position.
type LexError struct {
	File string
	Pos  Pos
	Msg  string
}

func (e *LexError) Error() string {
	return fmt.Sprintf("%s:%s: %s", e.File, e.Pos, e.Msg)
}

// Lex tokenizes src. The token stream always ends with an EOF token whose WS
// field holds any trailing whitespace, so File.Render reproduces src exactly.
func Lex(name, src string, opts Options) (*File, error) {
	lx := &lexer{name: name, src: src, opts: opts, line: 1, col: 1}
	f := &File{Name: name, Src: src}
	// C code averages a handful of bytes per token; sizing up front keeps
	// append from copying the slice log(n) times.
	f.Tokens = make([]Token, 0, len(src)/4+8)
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		f.Tokens = append(f.Tokens, tok)
		if tok.Kind == EOF {
			return f, nil
		}
	}
}

type lexer struct {
	name string
	src  string
	opts Options
	off  int
	line int
	col  int
}

func (lx *lexer) errf(pos Pos, format string, args ...any) error {
	return &LexError{File: lx.name, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) pos() Pos { return Pos{Offset: lx.off, Line: lx.line, Col: lx.col} }

func (lx *lexer) peek() byte {
	if lx.off < len(lx.src) {
		return lx.src[lx.off]
	}
	return 0
}

func (lx *lexer) peekAt(n int) byte {
	if lx.off+n < len(lx.src) {
		return lx.src[lx.off+n]
	}
	return 0
}

// advanceNoNL advances n bytes known to contain no newline (identifier
// characters, punctuation), skipping advance's per-byte line accounting.
func (lx *lexer) advanceNoNL(n int) {
	lx.off += n
	lx.col += n
}

func (lx *lexer) advance(n int) {
	for i := 0; i < n && lx.off < len(lx.src); i++ {
		if lx.src[lx.off] == '\n' {
			lx.line++
			lx.col = 1
		} else {
			lx.col++
		}
		lx.off++
	}
}

// skipWS consumes whitespace and comments, returning the exact text skipped.
func (lx *lexer) skipWS() (string, error) {
	start := lx.off
	for lx.off < len(lx.src) {
		c := lx.src[lx.off]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f':
			lx.advance(1)
		case c == '/' && lx.peekAt(1) == '/':
			for lx.off < len(lx.src) && lx.src[lx.off] != '\n' {
				lx.advance(1)
			}
		case c == '/' && lx.peekAt(1) == '*':
			p := lx.pos()
			lx.advance(2)
			for {
				if lx.off >= len(lx.src) {
					return "", lx.errf(p, "unterminated block comment")
				}
				if lx.src[lx.off] == '*' && lx.peekAt(1) == '/' {
					lx.advance(2)
					break
				}
				lx.advance(1)
			}
		case c == '\\' && (lx.peekAt(1) == '\n' || (lx.peekAt(1) == '\r' && lx.peekAt(2) == '\n')):
			// Line continuation outside a directive: treat as whitespace.
			if lx.peekAt(1) == '\r' {
				lx.advance(3)
			} else {
				lx.advance(2)
			}
		default:
			return lx.src[start:lx.off], nil
		}
	}
	return lx.src[start:lx.off], nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// punctuation, longest first within each leading byte; checked by max munch.
var puncts = []string{
	"<<<", ">>>", "<<=", ">>=", "...", "->*", "::",
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
	"(", ")", "[", "]", "{", "}", ",", ";", ":", "?", ".",
}

var smplPuncts = []string{"\\(", "\\|", "\\)", "\\&", "##", "=~", "@"}

// punctsByByte indexes puncts by leading byte so matching probes only the
// few candidates that can start with the byte at hand, preserving the
// longest-first (max munch) order within each bucket.
var punctsByByte = func() [256][]string {
	var t [256][]string
	for _, p := range puncts {
		t[p[0]] = append(t[p[0]], p)
	}
	return t
}()

func (lx *lexer) next() (Token, error) {
	ws, err := lx.skipWS()
	if err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, WS: ws, Pos: pos}, nil
	}
	c := lx.peek()

	// Preprocessor directive: '#' at the start of a line (after whitespace).
	if c == '#' && lx.atLineStart(ws) && !(lx.opts.SmPL && lx.peekAt(1) == '#') {
		text, err := lx.lexPPLine()
		if err != nil {
			return Token{}, err
		}
		return Token{Kind: PP, Text: text, WS: ws, Pos: pos}, nil
	}

	if isIdentStart(c) {
		start := lx.off
		end := lx.off
		for end < len(lx.src) && isIdentCont(lx.src[end]) {
			end++
		}
		lx.advanceNoNL(end - start)
		text := lx.src[start:lx.off]
		// String literal prefixes: L"..." u8"..." R"(...)"
		if lx.off < len(lx.src) && (lx.peek() == '"' || lx.peek() == '\'') &&
			(text == "L" || text == "u" || text == "U" || text == "u8" || text == "R" || text == "LR" || text == "uR" || text == "UR" || text == "u8R") {
			lit, err := lx.lexStringFrom(start, pos, strings.HasSuffix(text, "R"))
			if err != nil {
				return Token{}, err
			}
			kind := StringLit
			if lx.src[start+len(text)] == '\'' {
				kind = CharLit
			}
			return Token{Kind: kind, Text: lit, WS: ws, Pos: pos}, nil
		}
		return Token{Kind: Ident, Text: text, WS: ws, Pos: pos}, nil
	}

	if isDigit(c) || (c == '.' && isDigit(lx.peekAt(1))) {
		text, kind, err := lx.lexNumber()
		if err != nil {
			return Token{}, err
		}
		return Token{Kind: kind, Text: text, WS: ws, Pos: pos}, nil
	}

	if c == '"' {
		lit, err := lx.lexStringFrom(lx.off, pos, false)
		if err != nil {
			return Token{}, err
		}
		return Token{Kind: StringLit, Text: lit, WS: ws, Pos: pos}, nil
	}
	if c == '\'' {
		lit, err := lx.lexStringFrom(lx.off, pos, false)
		if err != nil {
			return Token{}, err
		}
		return Token{Kind: CharLit, Text: lit, WS: ws, Pos: pos}, nil
	}

	if lx.opts.SmPL {
		for _, p := range smplPuncts {
			if strings.HasPrefix(lx.src[lx.off:], p) {
				lx.advance(len(p))
				return Token{Kind: Punct, Text: p, WS: ws, Pos: pos}, nil
			}
		}
	}
	for _, p := range punctsByByte[c] {
		if !strings.HasPrefix(lx.src[lx.off:], p) {
			continue
		}
		if !lx.opts.CUDAChevrons && (p == "<<<" || p == ">>>") {
			continue
		}
		lx.advanceNoNL(len(p))
		return Token{Kind: Punct, Text: p, WS: ws, Pos: pos}, nil
	}

	return Token{}, lx.errf(pos, "unexpected character %q", string(c))
}

// atLineStart reports whether the current offset begins a line, i.e. the
// preceding skipped whitespace contains a newline or we are at file start.
func (lx *lexer) atLineStart(ws string) bool {
	if lx.off-len(ws) == 0 {
		return true
	}
	return strings.ContainsAny(ws, "\n")
}

// lexPPLine consumes a whole preprocessor line, merging backslash-newline
// continuations into the token text.
func (lx *lexer) lexPPLine() (string, error) {
	start := lx.off
	for lx.off < len(lx.src) {
		c := lx.src[lx.off]
		if c == '\\' && (lx.peekAt(1) == '\n' || (lx.peekAt(1) == '\r' && lx.peekAt(2) == '\n')) {
			if lx.peekAt(1) == '\r' {
				lx.advance(3)
			} else {
				lx.advance(2)
			}
			continue
		}
		if c == '\n' {
			break
		}
		// Comments terminate the directive text but a block comment may
		// continue the logical line; keep it simple and include them.
		lx.advance(1)
	}
	text := lx.src[start:lx.off]
	// Trim trailing carriage return and trailing // comment on the line.
	text = strings.TrimRight(text, "\r")
	return text, nil
}

func (lx *lexer) lexNumber() (string, Kind, error) {
	start := lx.off
	kind := IntLit
	if lx.peek() == '0' && (lx.peekAt(1) == 'x' || lx.peekAt(1) == 'X') {
		lx.advance(2)
		for lx.off < len(lx.src) && (isHex(lx.src[lx.off]) || lx.src[lx.off] == '\'') {
			lx.advance(1)
		}
		// hex float
		if lx.peek() == '.' || lx.peek() == 'p' || lx.peek() == 'P' {
			kind = FloatLit
			for lx.off < len(lx.src) && (isHex(lx.src[lx.off]) || lx.src[lx.off] == '.' ||
				lx.src[lx.off] == 'p' || lx.src[lx.off] == 'P' ||
				((lx.src[lx.off] == '+' || lx.src[lx.off] == '-') && (lx.src[lx.off-1] == 'p' || lx.src[lx.off-1] == 'P'))) {
				lx.advance(1)
			}
		}
	} else {
		for lx.off < len(lx.src) && (isDigit(lx.src[lx.off]) || lx.src[lx.off] == '\'') {
			lx.advance(1)
		}
		if lx.peek() == '.' && lx.peekAt(1) != '.' {
			kind = FloatLit
			lx.advance(1)
			for lx.off < len(lx.src) && isDigit(lx.src[lx.off]) {
				lx.advance(1)
			}
		}
		if lx.peek() == 'e' || lx.peek() == 'E' {
			if isDigit(lx.peekAt(1)) || ((lx.peekAt(1) == '+' || lx.peekAt(1) == '-') && isDigit(lx.peekAt(2))) {
				kind = FloatLit
				lx.advance(2)
				for lx.off < len(lx.src) && isDigit(lx.src[lx.off]) {
					lx.advance(1)
				}
			}
		}
	}
	// suffixes
	for lx.off < len(lx.src) {
		c := lx.src[lx.off]
		if c == 'u' || c == 'U' || c == 'l' || c == 'L' || c == 'f' || c == 'F' {
			if c == 'f' || c == 'F' {
				kind = FloatLit
			}
			lx.advance(1)
		} else {
			break
		}
	}
	return lx.src[start:lx.off], kind, nil
}

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// lexStringFrom lexes a string or char literal whose prefix (if any) started
// at 'start'. The current offset is at the opening quote or still at the
// prefix end; raw selects C++ raw-string lexing.
func (lx *lexer) lexStringFrom(start int, pos Pos, raw bool) (string, error) {
	// advance to opening quote
	for lx.off < len(lx.src) && lx.src[lx.off] != '"' && lx.src[lx.off] != '\'' {
		lx.advance(1)
	}
	if lx.off >= len(lx.src) {
		return "", lx.errf(pos, "unterminated literal")
	}
	quote := lx.src[lx.off]
	lx.advance(1)
	if raw && quote == '"' {
		// R"delim( ... )delim"
		dstart := lx.off
		for lx.off < len(lx.src) && lx.src[lx.off] != '(' {
			lx.advance(1)
		}
		if lx.off >= len(lx.src) {
			return "", lx.errf(pos, "unterminated raw string")
		}
		delim := lx.src[dstart:lx.off]
		lx.advance(1)
		closer := ")" + delim + `"`
		idx := strings.Index(lx.src[lx.off:], closer)
		if idx < 0 {
			return "", lx.errf(pos, "unterminated raw string")
		}
		lx.advance(idx + len(closer))
		return lx.src[start:lx.off], nil
	}
	for {
		if lx.off >= len(lx.src) || lx.src[lx.off] == '\n' {
			return "", lx.errf(pos, "unterminated %q literal", string(quote))
		}
		c := lx.src[lx.off]
		if c == '\\' {
			lx.advance(2)
			continue
		}
		lx.advance(1)
		if c == quote {
			break
		}
	}
	return lx.src[start:lx.off], nil
}
