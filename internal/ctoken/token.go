// Package ctoken implements a lexer for the C/C++ dialect used by the
// semantic patch engine. Tokens keep their exact source text and the
// whitespace (including comments) that precedes them, so a token stream can
// be rendered back to the original source byte-for-byte. The same lexer, in
// SmPL mode, tokenizes semantic patch bodies, which extend C with a handful
// of pattern operators (escaped disjunctions, metavariable positions, and
// identifier concatenation).
package ctoken

import "fmt"

// Kind classifies a token.
type Kind uint8

// Token kinds. PP is a whole preprocessor line (continuations merged).
const (
	EOF Kind = iota
	Ident
	IntLit
	FloatLit
	CharLit
	StringLit
	Punct
	PP // preprocessor directive line: #include, #pragma, #define, ...
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case Ident:
		return "Ident"
	case IntLit:
		return "IntLit"
	case FloatLit:
		return "FloatLit"
	case CharLit:
		return "CharLit"
	case StringLit:
		return "StringLit"
	case Punct:
		return "Punct"
	case PP:
		return "PP"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Pos is a source position.
type Pos struct {
	Offset int // byte offset in the file
	Line   int // 1-based line
	Col    int // 1-based column (bytes)
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical element. WS holds the exact whitespace and comments
// that preceded the token in the source, so concatenating WS+Text over a
// token slice reproduces the input exactly (the EOF token carries trailing
// whitespace).
type Token struct {
	Kind Kind
	Text string
	WS   string
	Pos  Pos
}

// Is reports whether the token is a punctuation token with the given text.
func (t Token) Is(text string) bool { return t.Kind == Punct && t.Text == text }

// IsIdent reports whether the token is an identifier with the given name.
func (t Token) IsIdent(name string) bool { return t.Kind == Ident && t.Text == name }

// File is a lexed source file.
type File struct {
	Name   string
	Src    string
	Tokens []Token // always ends with an EOF token
}

// Render reconstructs the source text of the token stream.
func (f *File) Render() string {
	n := 0
	for _, t := range f.Tokens {
		n += len(t.WS) + len(t.Text)
	}
	buf := make([]byte, 0, n)
	for _, t := range f.Tokens {
		buf = append(buf, t.WS...)
		buf = append(buf, t.Text...)
	}
	return string(buf)
}

// Slice returns the exact source text spanned by tokens [first, last],
// excluding the leading whitespace of the first token.
func (f *File) Slice(first, last int) string {
	if first < 0 || last >= len(f.Tokens) || first > last {
		return ""
	}
	var buf []byte
	for i := first; i <= last; i++ {
		if i > first {
			buf = append(buf, f.Tokens[i].WS...)
		}
		buf = append(buf, f.Tokens[i].Text...)
	}
	return string(buf)
}

// Keywords of the supported C/C++ dialect. The lexer does not give keywords a
// distinct kind (they stay Ident); the parser consults this set.
var Keywords = map[string]bool{
	"auto": true, "break": true, "case": true, "char": true, "const": true,
	"continue": true, "default": true, "do": true, "double": true,
	"else": true, "enum": true, "extern": true, "float": true, "for": true,
	"goto": true, "if": true, "inline": true, "int": true, "long": true,
	"register": true, "restrict": true, "return": true, "short": true,
	"signed": true, "sizeof": true, "static": true, "struct": true,
	"switch": true, "typedef": true, "union": true, "unsigned": true,
	"void": true, "volatile": true, "while": true,
	// C++ additions we recognize
	"bool": true, "true": true, "false": true, "class": true, "new": true,
	"delete": true, "namespace": true, "template": true, "typename": true,
	"using": true, "nullptr": true, "constexpr": true, "operator": true,
	"public": true, "private": true, "protected": true,
	// CUDA qualifiers
	"__global__": true, "__device__": true, "__host__": true, "__shared__": true,
}

// TypeKeywords are keywords that can begin a type.
var TypeKeywords = map[string]bool{
	"void": true, "char": true, "short": true, "int": true, "long": true,
	"float": true, "double": true, "signed": true, "unsigned": true,
	"bool": true, "const": true, "volatile": true, "struct": true,
	"union": true, "enum": true, "auto": true, "register": true,
	"static": true, "extern": true, "inline": true, "restrict": true,
	"typename": true, "constexpr": true,
}
