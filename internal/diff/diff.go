// Package diff produces POSIX-style unified diffs between two texts using
// the Myers O(ND) shortest-edit-script algorithm. The semantic patch engine
// reports every transformation as a unified diff, mirroring spatch's default
// output mode.
package diff

import (
	"fmt"
	"strings"
)

// Unified returns a unified diff of a -> b with the given file labels and
// three lines of context. It returns "" when the inputs are identical.
func Unified(labelA, labelB, a, b string) string {
	if a == b {
		return ""
	}
	al := splitLines(a)
	bl := splitLines(b)
	ops := myers(al, bl)
	return format(labelA, labelB, al, bl, ops, 3)
}

type opKind uint8

const (
	opEq opKind = iota
	opDel
	opIns
)

type op struct {
	kind opKind
	// ai/bi index the source line (for del/eq) and destination line (ins/eq).
	ai, bi int
}

func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	lines := strings.SplitAfter(s, "\n")
	if lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	return lines
}

// myers computes the LCS-based edit script.
func myers(a, b []string) []op {
	n, m := len(a), len(b)
	max := n + m
	if max == 0 {
		return nil
	}
	// v[k] = furthest x on diagonal k; store per-step traces for backtrack.
	offset := max
	v := make([]int, 2*max+1)
	var trace [][]int
	var dFound = -1
loop:
	for d := 0; d <= max; d++ {
		snapshot := make([]int, len(v))
		copy(snapshot, v)
		trace = append(trace, snapshot)
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && v[offset+k-1] < v[offset+k+1]) {
				x = v[offset+k+1]
			} else {
				x = v[offset+k-1] + 1
			}
			y := x - k
			for x < n && y < m && a[x] == b[y] {
				x++
				y++
			}
			v[offset+k] = x
			if x >= n && y >= m {
				dFound = d
				break loop
			}
		}
	}
	// Backtrack.
	var ops []op
	x, y := n, m
	for d := dFound; d > 0; d-- {
		vprev := trace[d]
		k := x - y
		var prevK int
		if k == -d || (k != d && vprev[offset+k-1] < vprev[offset+k+1]) {
			prevK = k + 1
		} else {
			prevK = k - 1
		}
		prevX := vprev[offset+prevK]
		prevY := prevX - prevK
		for x > prevX && y > prevY {
			x--
			y--
			ops = append(ops, op{opEq, x, y})
		}
		if d > 0 {
			if x == prevX {
				y--
				ops = append(ops, op{opIns, x, y})
			} else {
				x--
				ops = append(ops, op{opDel, x, y})
			}
		}
	}
	for x > 0 && y > 0 {
		x--
		y--
		ops = append(ops, op{opEq, x, y})
	}
	for x > 0 {
		x--
		ops = append(ops, op{opDel, x, 0})
	}
	for y > 0 {
		y--
		ops = append(ops, op{opIns, 0, y})
	}
	// reverse
	for i, j := 0, len(ops)-1; i < j; i, j = i+1, j-1 {
		ops[i], ops[j] = ops[j], ops[i]
	}
	return ops
}

// format renders hunks with n lines of context.
func format(labelA, labelB string, a, b []string, ops []op, ctx int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s\n+++ %s\n", labelA, labelB)

	type hunk struct {
		ops []op
	}
	var hunks []hunk
	var cur []op
	eqRun := 0
	for _, o := range ops {
		if o.kind == opEq {
			eqRun++
			if len(cur) > 0 && eqRun > 2*ctx {
				// close current hunk, keep ctx of trailing context
				trail := cur[:len(cur)-(eqRun-ctx-1)]
				hunks = append(hunks, hunk{ops: trail})
				cur = nil
				eqRun = ctx + 1 // context we will prepend if a change follows
			}
			cur = append(cur, o)
		} else {
			if len(cur) == 0 || allEq(cur) {
				// trim leading context to ctx lines
				if len(cur) > ctx {
					cur = cur[len(cur)-ctx:]
				}
			}
			eqRun = 0
			cur = append(cur, o)
		}
	}
	if len(cur) > 0 && !allEq(cur) {
		// trim trailing context
		i := len(cur)
		for i > 0 && cur[i-1].kind == opEq {
			i--
		}
		if len(cur)-i > ctx {
			cur = cur[:i+ctx]
		}
		hunks = append(hunks, hunk{ops: cur})
	}

	for _, h := range hunks {
		if len(h.ops) == 0 {
			continue
		}
		aStart, bStart := -1, -1
		var aCount, bCount int
		for _, o := range h.ops {
			switch o.kind {
			case opEq:
				if aStart < 0 {
					aStart, bStart = o.ai, o.bi
				}
				aCount++
				bCount++
			case opDel:
				if aStart < 0 {
					aStart, bStart = o.ai, o.bi
				}
				aCount++
			case opIns:
				if aStart < 0 {
					aStart, bStart = o.ai, o.bi
				}
				bCount++
			}
		}
		// POSIX: a zero-length range names the line *before* which the
		// change applies, so pure insertions/deletions print the 0-based
		// position (e.g. "@@ -0,0 +1,N @@" for inserting into an empty
		// file), not start+1.
		aPos, bPos := aStart+1, bStart+1
		if aCount == 0 {
			aPos = aStart
		}
		if bCount == 0 {
			bPos = bStart
		}
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", aPos, aCount, bPos, bCount)
		for _, o := range h.ops {
			switch o.kind {
			case opEq:
				writeLine(&sb, " ", a[o.ai])
			case opDel:
				writeLine(&sb, "-", a[o.ai])
			case opIns:
				writeLine(&sb, "+", b[o.bi])
			}
		}
	}
	return sb.String()
}

func allEq(ops []op) bool {
	for _, o := range ops {
		if o.kind != opEq {
			return false
		}
	}
	return true
}

// writeLine emits one hunk line. Only a file's final line can lack the
// trailing newline (splitLines keeps terminators); POSIX requires it to be
// flagged with a "\ No newline at end of file" marker rather than silently
// gaining one, so that patch(1) reproduces the original byte-for-byte.
func writeLine(sb *strings.Builder, prefix, line string) {
	sb.WriteString(prefix)
	if strings.HasSuffix(line, "\n") {
		sb.WriteString(line)
		return
	}
	sb.WriteString(line)
	sb.WriteString("\n\\ No newline at end of file\n")
}
