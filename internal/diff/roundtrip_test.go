package diff

// Round-trip golden tests against patch(1): the unified diffs this package
// emits must be applicable by the POSIX patch tool and reproduce the target
// byte-for-byte — including files without a trailing newline and creations
// from or deletions to empty files.

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

func TestPatchRoundTrip(t *testing.T) {
	if _, err := exec.LookPath("patch"); err != nil {
		t.Skip("patch(1) not installed")
	}
	cases := []struct {
		name, a, b string
	}{
		{"replace", "one\ntwo\nthree\n", "one\nTWO\nthree\n"},
		{"insert", "a\nc\n", "a\nb\nc\n"},
		{"delete", "a\nb\nc\n", "a\nc\n"},
		{"create from empty", "", "fresh\nlines\n"},
		{"delete to empty", "gone\nsoon\n", ""},
		{"b loses final newline", "one\ntwo\n", "one\ntwo"},
		{"a lacked final newline", "one\ntwo", "one\ntwo\n"},
		{"both lack newline", "one\nold", "one\nnew"},
		{"change above unterminated tail", "x\nm1\nm2\nm3\ntail", "y\nm1\nm2\nm3\ntail"},
		{"multi hunk", "1\n2\n3\n4\n5\n6\n7\n8\n9\n10\n11\n12\n",
			"1\nTWO\n3\n4\n5\n6\n7\n8\n9\n10\nELEVEN\n12\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := Unified("work.txt", "work.txt", c.a, c.b)
			if d == "" {
				t.Fatal("no diff produced")
			}
			dir := t.TempDir()
			work := filepath.Join(dir, "work.txt")
			if err := os.WriteFile(work, []byte(c.a), 0o644); err != nil {
				t.Fatal(err)
			}
			cmd := exec.Command("patch", "--posix", "work.txt")
			cmd.Dir = dir
			cmd.Stdin = nil
			stdin, err := cmd.StdinPipe()
			if err != nil {
				t.Fatal(err)
			}
			go func() {
				stdin.Write([]byte(d))
				stdin.Close()
			}()
			if out, err := cmd.CombinedOutput(); err != nil {
				t.Fatalf("patch(1) rejected our diff: %v\n%s\ndiff:\n%s", err, out, d)
			}
			got, err := os.ReadFile(work)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != c.b {
				t.Errorf("patched result differs:\ngot  %q\nwant %q\ndiff:\n%s", got, c.b, d)
			}
		})
	}
}
