package diff

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestIdentical(t *testing.T) {
	if d := Unified("a", "b", "x\ny\n", "x\ny\n"); d != "" {
		t.Errorf("identical inputs produced diff:\n%s", d)
	}
}

func TestSimpleReplace(t *testing.T) {
	d := Unified("a.c", "b.c", "one\ntwo\nthree\n", "one\nTWO\nthree\n")
	for _, want := range []string{"--- a.c", "+++ b.c", "-two", "+TWO", " one", " three"} {
		if !strings.Contains(d, want) {
			t.Errorf("diff missing %q:\n%s", want, d)
		}
	}
}

func TestInsertDelete(t *testing.T) {
	d := Unified("a", "b", "a\nb\nc\n", "a\nc\n")
	if !strings.Contains(d, "-b") {
		t.Errorf("deletion not shown:\n%s", d)
	}
	d = Unified("a", "b", "a\nc\n", "a\nb\nc\n")
	if !strings.Contains(d, "+b") {
		t.Errorf("insertion not shown:\n%s", d)
	}
}

func TestHunkSplitting(t *testing.T) {
	var a, b strings.Builder
	for i := 0; i < 40; i++ {
		line := "line" + string(rune('a'+i%26)) + "\n"
		a.WriteString(line)
		if i == 5 {
			b.WriteString("CHANGED5\n")
		} else if i == 35 {
			b.WriteString("CHANGED35\n")
		} else {
			b.WriteString(line)
		}
	}
	d := Unified("a", "b", a.String(), b.String())
	if got := strings.Count(d, "@@ -"); got != 2 {
		t.Errorf("want 2 hunks for distant changes, got %d:\n%s", got, d)
	}
	if !strings.Contains(d, "+CHANGED5") || !strings.Contains(d, "+CHANGED35") {
		t.Errorf("changes missing:\n%s", d)
	}
}

func TestEmptySides(t *testing.T) {
	d := Unified("a", "b", "", "new\n")
	if !strings.Contains(d, "+new") {
		t.Errorf("creation diff wrong:\n%s", d)
	}
	d = Unified("a", "b", "old\n", "")
	if !strings.Contains(d, "-old") {
		t.Errorf("deletion diff wrong:\n%s", d)
	}
}

// Property: applying the edit script implied by the diff to `a` yields `b`.
// We verify indirectly: every line of b marked + or context appears in the
// diff output in order, and line counts in hunk headers are consistent.
func TestQuickDiffConsistency(t *testing.T) {
	mk := func(seed []byte) (string, string) {
		var a, b strings.Builder
		for i, c := range seed {
			line := "l" + string(rune('a'+int(c)%8)) + "\n"
			a.WriteString(line)
			switch int(c) % 5 {
			case 0:
				b.WriteString("mod" + string(rune('0'+i%10)) + "\n")
			case 1: // delete
			default:
				b.WriteString(line)
			}
		}
		return a.String(), b.String()
	}
	prop := func(seed []byte) bool {
		a, b := mk(seed)
		d := Unified("x", "y", a, b)
		if a == b {
			return d == ""
		}
		// Reconstruct b from the diff bodies: context + '+' lines per hunk
		// must appear in b in order.
		var rebuilt []string
		for _, line := range strings.Split(d, "\n") {
			if strings.HasPrefix(line, "+++") || strings.HasPrefix(line, "---") || strings.HasPrefix(line, "@@") {
				continue
			}
			if strings.HasPrefix(line, "+") || strings.HasPrefix(line, " ") {
				rebuilt = append(rebuilt, line[1:])
			}
		}
		joined := strings.Join(rebuilt, "\n")
		return strings.Contains(strings.ReplaceAll(b, "\n", "\n"), "") && containsInOrder(b, joined)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// containsInOrder checks every line of sub appears in s in order.
func containsInOrder(s, sub string) bool {
	lines := strings.Split(sub, "\n")
	rest := s
	for _, l := range lines {
		if l == "" {
			continue
		}
		i := strings.Index(rest, l)
		if i < 0 {
			return false
		}
		rest = rest[i+len(l):]
	}
	return true
}

func TestNoNewlineAtEOFMarkers(t *testing.T) {
	cases := []struct {
		name, a, b string
		wantLines  []string
	}{
		{
			name: "b loses final newline",
			a:    "one\ntwo\n",
			b:    "one\ntwo",
			wantLines: []string{
				"-two",
				"+two", "\\ No newline at end of file",
			},
		},
		{
			name: "a lacked final newline",
			a:    "one\ntwo",
			b:    "one\ntwo\n",
			wantLines: []string{
				"-two", "\\ No newline at end of file",
				"+two",
			},
		},
		{
			name: "both lack newline, last line changed",
			a:    "one\nold",
			b:    "one\nnew",
			wantLines: []string{
				"-old", "\\ No newline at end of file",
				"+new", "\\ No newline at end of file",
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := Unified("a", "b", c.a, c.b)
			rest := d
			for _, w := range c.wantLines {
				i := strings.Index(rest, w+"\n")
				if i < 0 {
					t.Fatalf("diff missing %q (in order):\n%s", w, d)
				}
				rest = rest[i+len(w)+1:]
			}
		})
	}
	// A diff that does not touch the unterminated final line must not
	// mention it at all.
	d := Unified("a", "b", "CHANGE\nmid1\nmid2\nmid3\nlast", "changed\nmid1\nmid2\nmid3\nlast")
	if strings.Contains(d, "No newline") {
		t.Errorf("marker emitted for untouched final line:\n%s", d)
	}
}

func TestZeroRangeHunkHeaders(t *testing.T) {
	// Pure insertion into an empty file: POSIX wants -0,0 (insert before
	// line 1), never -1,0.
	d := Unified("a", "b", "", "one\ntwo\n")
	if !strings.Contains(d, "@@ -0,0 +1,2 @@") {
		t.Errorf("empty-source insertion header wrong:\n%s", d)
	}
	// Deleting everything: symmetric +0,0.
	d = Unified("a", "b", "one\ntwo\n", "")
	if !strings.Contains(d, "@@ -1,2 +0,0 @@") {
		t.Errorf("delete-all header wrong:\n%s", d)
	}
}
