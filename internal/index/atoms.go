package index

import (
	"sort"

	"repro/internal/cast"
	"repro/internal/ctoken"
	"repro/internal/smpl"
)

// maxAtomsPerRule bounds the per-file scan cost. Extraction keeps the
// longest atoms, which in C code are almost always the rarest (API names
// like cudaMemcpyAsync discriminate; one-letter locals do not). Dropping
// atoms only weakens the filter, never its soundness.
const maxAtomsPerRule = 8

// extractor accumulates the required atoms of one rule pattern. An atom is
// a literal identifier the matcher compares by name: if the word is absent
// from a file, no subtree of that file can match the pattern. Every method
// mirrors the corresponding case of internal/match; positions where the
// matcher binds a metavariable, accepts a wildcard, or skips a comparison
// contribute nothing. When in doubt the extractor stays silent — a missed
// atom costs a wasted parse, an invented one would skip a matching file.
type extractor struct {
	metas *smpl.MetaTable
	atoms map[string]bool
	// groups are at-least-one-of word sets contributed by disjunctions: a
	// matching file must contain some word of every group. Each group
	// holds one representative word per branch.
	groups [][]string
}

func newExtractor(metas *smpl.MetaTable) *extractor {
	return &extractor{metas: metas, atoms: map[string]bool{}}
}

// add records w if it is a genuine literal identifier: not a metavariable
// of the rule (symbol metavariables excepted — the matcher compares those
// by name) and not a language keyword, which nearly every file contains.
func (x *extractor) add(w string) {
	if w == "" || ctoken.Keywords[w] {
		return
	}
	if d, ok := x.metas.Decl(w); ok {
		if d.Kind != cast.MetaSymbolKind {
			return
		}
	}
	x.atoms[w] = true
}

// addRuns records every identifier word embedded in raw text (pragma
// words, include paths). Sound because the matcher compares such text
// verbatim, so each embedded identifier run appears word-bounded in any
// file the pattern matches.
func (x *extractor) addRuns(text string) {
	for _, w := range identWords(text) {
		x.add(w)
	}
}

// branch runs fn against a fresh extractor, for disjunction branches whose
// requirements must not be conflated with the enclosing pattern's.
func (x *extractor) branch(fn func(*extractor)) *extractor {
	b := newExtractor(x.metas)
	fn(b)
	return b
}

// disjoin combines branch requirements two ways. Words required by *every*
// branch are required outright. And when each branch pins down at least one
// word, one representative per branch forms an at-least-one-of group: any
// match takes some branch, so some representative must be present. A branch
// with no requirements at all poisons both (the disjunction can then match
// anything).
func (x *extractor) disjoin(branches []*extractor) {
	if len(branches) == 0 {
		return
	}
	for w := range branches[0].atoms {
		inAll := true
		for _, br := range branches[1:] {
			if !br.atoms[w] {
				inAll = false
				break
			}
		}
		if inAll {
			x.atoms[w] = true
		}
	}
	var group []string
	for _, br := range branches {
		rep := br.representatives()
		if rep == nil {
			return // unconstrained branch: no group possible
		}
		group = append(group, rep...)
	}
	x.groups = append(x.groups, dedup(group))
}

// representatives returns words of which at least one is guaranteed present
// whenever this branch matches: its longest plain atom if it has one,
// otherwise the members of one of its own groups.
func (x *extractor) representatives() []string {
	if len(x.atoms) > 0 {
		best := ""
		for w := range x.atoms {
			if len(w) > len(best) || (len(w) == len(best) && w < best) {
				best = w
			}
		}
		return []string{best}
	}
	if len(x.groups) > 0 {
		return x.groups[0]
	}
	return nil
}

func dedup(ws []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, w := range ws {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

func (x *extractor) pattern(p *smpl.Pattern) {
	switch p.Kind {
	case smpl.ExprPattern:
		x.expr(p.Expr)
	case smpl.StmtSeqPattern:
		for _, s := range p.Stmts {
			x.stmt(s)
		}
	case smpl.DeclPattern:
		for _, d := range p.Decls {
			x.decl(d)
		}
	}
}

func (x *extractor) expr(e cast.Expr) {
	switch et := e.(type) {
	case *cast.Ident:
		x.add(et.Name)
	case *cast.ParenExpr:
		x.expr(et.X)
	case *cast.UnaryExpr:
		x.expr(et.X)
	case *cast.BinaryExpr:
		x.expr(et.X)
		x.expr(et.Y)
	case *cast.CondExpr:
		x.expr(et.Cond)
		x.expr(et.Then)
		x.expr(et.Else)
	case *cast.CallExpr:
		x.expr(et.Fun)
		for _, a := range et.Args {
			x.expr(a)
		}
	case *cast.IndexExpr:
		x.expr(et.X)
		for _, i := range et.Indices {
			x.expr(i)
		}
	case *cast.MemberExpr:
		x.expr(et.X)
		x.add(et.Name)
	case *cast.CastExpr:
		x.typ(et.Type)
		x.expr(et.X)
	case *cast.SizeofExpr:
		x.typ(et.Type)
		x.expr(et.X)
	case *cast.CommaExpr:
		for _, el := range et.List {
			x.expr(el)
		}
	case *cast.InitList:
		for _, el := range et.Elems {
			x.expr(el)
		}
	case *cast.KernelLaunch:
		x.expr(et.Fun)
		for _, c := range et.Config {
			x.expr(c)
		}
		for _, a := range et.Args {
			x.expr(a)
		}
	case *cast.Type:
		x.typ(et)
	case *cast.DisjExpr:
		var brs []*extractor
		for _, br := range et.Branches {
			brs = append(brs, x.branch(func(b *extractor) { b.expr(br) }))
		}
		x.disjoin(brs)
	case *cast.ConjExpr:
		for _, op := range et.Operands {
			x.expr(op)
		}
	case *cast.MetaExpr:
		// Symbol metavariables are the one metavariable kind the matcher
		// compares by name instead of binding.
		if et.Kind == cast.MetaSymbolKind {
			x.add(et.Name)
		}
		// LambdaExpr bodies are skipped (the matcher tolerates a nil body on
		// either side); other MetaExpr kinds, Dots, BasicLit and OpaqueExpr
		// never compare identifiers by name. nil falls through harmlessly.
	}
}

func (x *extractor) typ(t *cast.Type) {
	if t == nil {
		return
	}
	// A declared metavariable in base position binds instead of comparing,
	// whatever its kind; anything else is compared verbatim word by word.
	if _, ok := x.metas.Decl(t.Base); ok {
		return
	}
	x.addRuns(t.Base)
}

func (x *extractor) stmt(s cast.Stmt) {
	switch st := s.(type) {
	case *cast.Compound:
		for _, it := range st.Items {
			x.stmt(it)
		}
	case *cast.ExprStmt:
		x.expr(st.X)
	case *cast.DeclStmt:
		x.varDecl(st.D)
	case *cast.If:
		x.expr(st.Cond)
		x.stmt(st.Then)
		x.stmt(st.Else)
	case *cast.For:
		if _, dots := st.Init.(*cast.Dots); !dots {
			x.stmt(st.Init)
		}
		x.optExpr(st.Cond)
		x.optExpr(st.Post)
		x.stmt(st.Body)
	case *cast.RangeFor:
		x.varDecl(st.Decl)
		x.expr(st.X)
		x.stmt(st.Body)
	case *cast.While:
		x.expr(st.Cond)
		x.stmt(st.Body)
	case *cast.DoWhile:
		x.stmt(st.Body)
		x.expr(st.Cond)
	case *cast.Switch:
		x.expr(st.Cond)
		x.stmt(st.Body)
	case *cast.Return:
		x.expr(st.X)
	case *cast.Goto:
		x.add(st.Label)
	case *cast.Label:
		x.add(st.Name)
		x.stmt(st.Stmt)
	case *cast.Case:
		x.expr(st.X)
	case *cast.PragmaPattern:
		x.pragmaPattern(st)
	case *cast.PragmaStmt:
		x.add("pragma")
		x.addRuns(st.P.Info)
	case *cast.DisjStmt:
		var brs []*extractor
		for _, br := range st.Branches {
			brs = append(brs, x.branch(func(b *extractor) {
				for _, s := range br {
					b.stmt(s)
				}
			}))
		}
		x.disjoin(brs)
	case *cast.ConjStmt:
		for _, op := range st.Operands {
			x.stmt(op)
		}
	case *cast.Dots:
		// Dots match any path, so none of the `when` family may contribute
		// required atoms: `when != e` is *forbidden* content (requiring it
		// would skip exactly the files that can match), and `when == e`,
		// `when any`, and the strict/exists/forall quantifiers constrain
		// only what an arbitrarily-empty gap may contain. MetaStmt also
		// matches anything; Break, Continue and Empty carry no identifiers.
		// nil falls through harmlessly.
	}
}

func (x *extractor) optExpr(e cast.Expr) {
	if _, dots := e.(*cast.Dots); dots {
		return
	}
	x.expr(e)
}

func (x *extractor) decl(d cast.Decl) {
	switch dt := d.(type) {
	case *cast.IncludePattern:
		x.add("include")
		x.addRuns(dt.Path)
	case *cast.PragmaPattern:
		x.pragmaPattern(dt)
	case *cast.Pragma:
		x.add("pragma")
		x.addRuns(dt.Info)
	case *cast.FuncDef:
		if len(dt.Attrs) > 0 {
			x.add("__attribute__")
		}
		for _, a := range dt.Attrs {
			for _, arg := range a.Args {
				x.expr(arg)
			}
		}
		x.typ(dt.Ret)
		if dt.Name != nil {
			x.add(dt.Name.Name)
		}
		x.params(dt.Params)
		if dt.Body != nil {
			for _, it := range dt.Body.Items {
				x.stmt(it)
			}
		}
	case *cast.VarDecl:
		x.varDecl(dt)
		// OpaqueDecl and PPOther patterns never match anything, so their
		// content needs no atoms.
	}
}

func (x *extractor) pragmaPattern(p *cast.PragmaPattern) {
	x.add("pragma")
	for _, w := range p.Words {
		x.addRuns(w)
	}
}

func (x *extractor) params(p *cast.ParamList) {
	if p == nil || p.MetaDots {
		return
	}
	// A single parameter-list metavariable swallows the whole list.
	if len(p.Params) == 1 && p.Params[0].MetaName != "" {
		return
	}
	for _, pp := range p.Params {
		if pp.MetaName != "" {
			continue
		}
		x.typ(pp.Type)
		if pp.Name != nil {
			x.add(pp.Name.Name)
		}
	}
}

func (x *extractor) varDecl(v *cast.VarDecl) {
	if v == nil {
		return
	}
	x.typ(v.Type)
	for _, it := range v.Items {
		if it.Name != nil {
			x.add(it.Name.Name)
		}
		for _, dim := range it.Dims {
			x.expr(dim)
		}
		x.expr(it.Init)
	}
}

// finish returns the collected atoms longest-first and the at-least-one-of
// groups, both capped. Longest-first makes the per-file scan fail fast: the
// rarest atom is usually the longest, and one absent atom is all it takes
// to rule a file out.
func (x *extractor) finish() ([]string, [][]string) {
	atoms := make([]string, 0, len(x.atoms))
	for w := range x.atoms {
		atoms = append(atoms, w)
	}
	sort.Slice(atoms, func(i, j int) bool {
		if len(atoms[i]) != len(atoms[j]) {
			return len(atoms[i]) > len(atoms[j])
		}
		return atoms[i] < atoms[j]
	})
	if len(atoms) > maxAtomsPerRule {
		atoms = atoms[:maxAtomsPerRule]
	}
	groups := x.groups
	if len(groups) > maxAtomsPerRule {
		groups = groups[:maxAtomsPerRule]
	}
	return atoms, groups
}
