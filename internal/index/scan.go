package index

import "strings"

// identByte reports whether b can appear inside a C identifier. The table
// is what makes the scanner a *word* scanner: an atom counts as present
// only when its occurrence is not embedded in a longer identifier.
var identByte [256]bool

func init() {
	for b := 'a'; b <= 'z'; b++ {
		identByte[b] = true
	}
	for b := 'A'; b <= 'Z'; b++ {
		identByte[b] = true
	}
	for b := '0'; b <= '9'; b++ {
		identByte[b] = true
	}
	identByte['_'] = true
}

// ContainsWord reports whether src contains w as a complete identifier-like
// word: an occurrence whose neighbours on both sides are not identifier
// bytes. It never lexes or parses — just substring search plus two boundary
// byte checks per candidate — which is what lets the prefilter reject files
// orders of magnitude faster than the parser could.
//
// The check is conservative in exactly the safe direction: an occurrence
// inside a comment or string literal still counts as present (the file is
// then parsed for nothing), but a file reported as *not* containing w
// genuinely has no identifier token spelled w, because the lexer could only
// produce one from a maximal identifier-byte run equal to w.
func ContainsWord(src, w string) bool {
	if w == "" {
		return true
	}
	for i := 0; ; {
		j := strings.Index(src[i:], w)
		if j < 0 {
			return false
		}
		j += i
		end := j + len(w)
		if (j == 0 || !identByte[src[j-1]]) && (end == len(src) || !identByte[src[end]]) {
			return true
		}
		// Overlapping matches are impossible for identifier words embedded
		// in identifier runs, so resuming after the failed occurrence's
		// first byte is enough.
		i = j + 1
	}
}

// ScanWords extracts the set of identifier-like words in src, the answer
// set for Filter.MayMatchWords: w is in the set exactly when
// ContainsWord(src, w) holds for an identifier w. One ScanWords pass costs
// about the same as a handful of ContainsWord scans, and its result can be
// evaluated against any number of patches' filters — and persisted, keyed
// by the file's content hash, to serve future runs without touching the
// file's bytes again.
func ScanWords(src string) map[string]bool {
	words := identWords(src)
	set := make(map[string]bool, len(words))
	for _, w := range words {
		set[w] = true
	}
	return set
}

// identWords extracts every maximal identifier-like word from text: a run
// of identifier bytes starting with a letter or underscore. Runs starting
// with a digit are numeric literals, not identifiers, and are dropped.
func identWords(text string) []string {
	var out []string
	for i := 0; i < len(text); {
		c := text[i]
		if !identByte[c] {
			i++
			continue
		}
		j := i
		for j < len(text) && identByte[text[j]] {
			j++
		}
		if c < '0' || c > '9' {
			out = append(out, text[i:j])
		}
		i = j
	}
	return out
}
