package index

import (
	"strings"
	"testing"

	"repro/internal/smpl"
)

func build(t *testing.T, patchText string) *Index {
	t.Helper()
	p, err := smpl.ParsePatch("t.cocci", patchText)
	if err != nil {
		t.Fatal(err)
	}
	return Build(p)
}

func may(t *testing.T, ix *Index, src string, defines ...string) bool {
	t.Helper()
	return ix.ForDefines(defines).MayMatch(src)
}

func TestContainsWord(t *testing.T) {
	cases := []struct {
		src, w string
		want   bool
	}{
		{"foo(x);", "foo", true},
		{"int foo;", "foo", true},
		{"foo", "foo", true},
		{"foobar(x);", "foo", false},
		{"myfoo(x);", "foo", false},
		{"my_foo(x);", "foo", false},
		{"foo_2(x);", "foo", false},
		{"a foo b foo2", "foo", true},
		{"xfoo foo", "foo", true}, // second occurrence is word-bounded
		{"", "foo", false},
		{"foo", "", true},
		{"#pragma omp parallel", "omp", true},
		{"#include <omp.h>", "omp", true},
	}
	for _, c := range cases {
		if got := ContainsWord(c.src, c.w); got != c.want {
			t.Errorf("ContainsWord(%q, %q) = %v, want %v", c.src, c.w, got, c.want)
		}
	}
}

func TestIdentWords(t *testing.T) {
	got := identWords("num_threads(4) + a->b [x1, 2y]")
	want := []string{"num_threads", "a", "b", "x1"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("identWords = %v, want %v", got, want)
	}
}

// MayMatchWords must agree with MayMatch on every source, since the scan
// cache substitutes one for the other.
func TestMayMatchWordsParity(t *testing.T) {
	patches := []string{
		"@r@\nexpression list el;\n@@\n- old_api(el)\n+ new_api(el)\n",
		"@a@\n@@\nsetup();\n\n@b depends on a@\nexpression e;\n@@\n- use(e)\n+ use2(e)\n",
		"virtual fix;\n@v depends on fix@\n@@\n- bad()\n+ good()\n",
		"@d@\nexpression e;\n@@\n(\n- alpha(e)\n+ a2(e)\n|\n- beta(e)\n+ b2(e)\n)\n",
	}
	sources := []string{
		"void f(void)\n{\n\told_api(1);\n}\n",
		"void f(void)\n{\n\tsetup();\n\tuse(2);\n}\n",
		"void f(void)\n{\n\tuse(2);\n}\n",
		"void f(void)\n{\n\tbad();\n}\n",
		"void f(void)\n{\n\tbeta(9);\n}\n",
		"void f(void)\n{\n\tnothing();\n}\n",
		"/* old_api in a comment still counts as present */\nvoid g(void) {}\n",
		"",
	}
	for _, pt := range patches {
		ix := build(t, pt)
		for _, defines := range [][]string{nil, {"fix"}} {
			if len(defines) > 0 && !strings.Contains(pt, "virtual fix") {
				continue
			}
			f := ix.ForDefines(defines)
			for _, src := range sources {
				bySrc := f.MayMatch(src)
				bySet := f.MayMatchWords(ScanWords(src))
				if bySrc != bySet {
					t.Errorf("patch %q src %q: MayMatch=%v MayMatchWords=%v", pt, src, bySrc, bySet)
				}
			}
		}
	}
}

// ruleAtoms exposes extraction results for assertions.
func ruleAtoms(t *testing.T, patchText string) []string {
	t.Helper()
	ix := build(t, patchText)
	for _, r := range ix.rules {
		if r.kind == smpl.MatchRule {
			return r.atoms
		}
	}
	t.Fatal("no match rule in patch")
	return nil
}

func hasAtom(atoms []string, w string) bool {
	for _, a := range atoms {
		if a == w {
			return true
		}
	}
	return false
}

func TestAtomsSimpleRename(t *testing.T) {
	atoms := ruleAtoms(t, "@r@\nexpression list el;\n@@\n- old_api(el)\n+ new_api(el)\n")
	if !hasAtom(atoms, "old_api") {
		t.Errorf("atoms = %v, want old_api", atoms)
	}
	if hasAtom(atoms, "new_api") {
		t.Errorf("atoms = %v: plus-line identifier must not be required", atoms)
	}
	if hasAtom(atoms, "el") {
		t.Errorf("atoms = %v: metavariable must not be required", atoms)
	}
}

func TestAtomsExcludeMetavariablesAndKeywords(t *testing.T) {
	atoms := ruleAtoms(t, `@r@
expression E;
identifier f;
@@
for (...; E; ...)
  f(E);
`)
	for _, w := range []string{"E", "f", "for"} {
		if hasAtom(atoms, w) {
			t.Errorf("atoms = %v: %q must not be required", atoms, w)
		}
	}
}

func TestAtomsWhenConstraintNotRequired(t *testing.T) {
	atoms := ruleAtoms(t, `@r@
expression E;
@@
lock_acquire();
... when != forbidden_call(E)
lock_release();
`)
	if !hasAtom(atoms, "lock_acquire") || !hasAtom(atoms, "lock_release") {
		t.Errorf("atoms = %v, want lock_acquire and lock_release", atoms)
	}
	if hasAtom(atoms, "forbidden_call") {
		t.Errorf("atoms = %v: when-constraint content must not be required", atoms)
	}
}

// The full `when` family stays out of the required atoms: `when == e`
// content may be absent (the gap can be empty), and the quantifier
// keywords are not code words at all. The path engine widening dots to CFG
// traversals does not change what a file must contain to match.
func TestAtomsWhenFamilyNotRequired(t *testing.T) {
	atoms := ruleAtoms(t, `@r@
expression E;
@@
lock_acquire();
... when strict when != forbidden_call(E) when == permitted_call(E)
lock_release();
`)
	if !hasAtom(atoms, "lock_acquire") || !hasAtom(atoms, "lock_release") {
		t.Errorf("atoms = %v, want lock_acquire and lock_release", atoms)
	}
	for _, w := range []string{"forbidden_call", "permitted_call", "when", "strict"} {
		if hasAtom(atoms, w) {
			t.Errorf("atoms = %v: %q must not be required", atoms, w)
		}
	}
}

func TestAtomsDisjunctionIntersection(t *testing.T) {
	atoms := ruleAtoms(t, `@r@
expression E;
@@
- \( first_variant(E, shared_arg) \| second_variant(E, shared_arg) \)
+ unified(E)
`)
	if hasAtom(atoms, "first_variant") || hasAtom(atoms, "second_variant") {
		t.Errorf("atoms = %v: disjunction branches are alternatives, not all required", atoms)
	}
	if !hasAtom(atoms, "shared_arg") {
		t.Errorf("atoms = %v: word common to every branch is required", atoms)
	}

	ix := build(t, `@r@
expression E;
@@
- \( first_variant(E) \| second_variant(E) \)
+ unified(E)
`)
	if !may(t, ix, "void f(void) { second_variant(1); }\n") {
		t.Error("file matching only the second branch must not be skipped")
	}
	if may(t, ix, "void f(void) { unrelated(1); }\n") {
		t.Error("file matching no branch should be skipped")
	}
}

func TestAtomsSymbolIsRequired(t *testing.T) {
	atoms := ruleAtoms(t, "@r@\nsymbol stride;\n@@\n- use(stride)\n+ use2(stride)\n")
	if !hasAtom(atoms, "stride") {
		t.Errorf("atoms = %v: symbol metavariables match by name and are required", atoms)
	}
}

func TestAtomsPragma(t *testing.T) {
	atoms := ruleAtoms(t, `@r@
@@
- #pragma acc parallel loop
+ #pragma omp target teams loop
`)
	for _, w := range []string{"pragma", "acc"} {
		if !hasAtom(atoms, w) {
			t.Errorf("atoms = %v, want %q", atoms, w)
		}
	}
	if hasAtom(atoms, "omp") || hasAtom(atoms, "teams") {
		t.Errorf("atoms = %v: replacement pragma words must not be required", atoms)
	}
}

func TestMayMatchSimple(t *testing.T) {
	ix := build(t, "@r@\nexpression list el;\n@@\n- old_api(el)\n+ new_api(el)\n")
	if !may(t, ix, "void f(void) { old_api(1, 2); }\n") {
		t.Error("matching file must not be skipped")
	}
	if may(t, ix, "void f(void) { other_api(1, 2); }\n") {
		t.Error("non-matching file should be skipped")
	}
	if may(t, ix, "void f(void) { my_old_api(1); }\n") {
		t.Error("substring occurrence is not a word; file should be skipped")
	}
	if !may(t, ix, "// old_api mentioned in a comment only\nint x;\n") {
		t.Error("comment occurrences count as present (conservative)")
	}
}

func TestMayMatchDependencyChain(t *testing.T) {
	patch := `@first@
@@
- alpha_call()
+ alpha_new()

@second depends on first@
@@
- beta_call()
+ beta_new()
`
	ix := build(t, patch)
	// beta_call present but alpha_call absent: first cannot fire, so second
	// (depends on first) cannot either.
	if may(t, ix, "void f(void) { beta_call(); }\n") {
		t.Error("dependent rule without its root must be skipped")
	}
	if !may(t, ix, "void f(void) { alpha_call(); }\n") {
		t.Error("root rule's atoms present: file must be processed")
	}

	// With `depends on !first`, the second rule can fire exactly when the
	// first does not — so beta_call alone must keep the file.
	notPatch := strings.Replace(patch, "depends on first", "depends on !first", 1)
	ix = build(t, notPatch)
	if !may(t, ix, "void f(void) { beta_call(); }\n") {
		t.Error("negated dependency can hold when the root rule cannot fire")
	}
	if may(t, ix, "void f(void) { gamma_call(); }\n") {
		t.Error("neither rule's atoms present: skip")
	}
}

func TestMayMatchVirtualRules(t *testing.T) {
	patch := `virtual with_omp;

@r depends on with_omp@
expression list el;
@@
- old_api(el)
+ omp_api(el)
`
	ix := build(t, patch)
	src := "void f(void) { old_api(1); }\n"
	if may(t, ix, src) {
		t.Error("undefined virtual disables the rule: skip even with atoms present")
	}
	if !may(t, ix, src, "with_omp") {
		t.Error("defined virtual enables the rule: atoms present, keep")
	}
	if may(t, ix, "void f(void) { other(); }\n", "with_omp") {
		t.Error("defined virtual but atoms absent: skip")
	}
}

func TestMayMatchInsertedAtomsWiden(t *testing.T) {
	// Rule two's atom (bridge_helper) is inserted by rule one's plus lines:
	// a file containing only start_call must stay in.
	patch := `@one@
expression E;
@@
- start_call(E)
+ bridge_helper(E)

@two@
expression E;
@@
- bridge_helper(E)
+ final_call(E)
`
	ix := build(t, patch)
	if !may(t, ix, "void f(void) { start_call(1); }\n") {
		t.Error("atom inserted by an earlier firable rule must satisfy later rules")
	}
	if may(t, ix, "void f(void) { neither(1); }\n") {
		t.Error("no rule's atoms present: skip")
	}
}

func TestMayMatchFreshIdentifierDisablesLaterPruning(t *testing.T) {
	// Rule one inserts a *fresh* identifier; anything at all might appear
	// in the file afterwards, so later rules cannot be pruned by atoms.
	patch := `@one@
expression E;
fresh identifier tmp = "t";
@@
- seed_call(E)
+ seed_call(tmp)

@two@
expression E;
@@
- unrelated_call(E)
+ other(E)
`
	ix := build(t, patch)
	if !may(t, ix, "void f(void) { seed_call(1); }\n") {
		t.Error("after an unknown insertion, later rules must stay possible")
	}
	if may(t, ix, "void f(void) { nothing_here(1); }\n") {
		t.Error("rule one cannot fire, so its insertions never happen: skip")
	}
}

func TestMayMatchScriptRules(t *testing.T) {
	// A script rule whose inputs come from an unfirable match rule never
	// executes, so the file is still skippable.
	patch := `@r@
identifier f;
@@
- probe_call(f)
+ probe2(f)

@script:python s@
f << r.f;
g;
@@
g = f + "_x"
`
	ix := build(t, patch)
	if may(t, ix, "void f(void) { other(); }\n") {
		t.Error("script inputs depend on an unfirable rule: skip")
	}
	if !may(t, ix, "void f(void) { probe_call(x); }\n") {
		t.Error("root rule possible: keep")
	}

	// A script rule with no inputs executes on every file (it counts as a
	// match), so nothing is ever skippable.
	noInput := `@r@
identifier f;
@@
- probe_call(f)
+ probe2(f)

@script:python s@
g;
@@
g = "fixed"
`
	ix = build(t, noInput)
	if !may(t, ix, "void f(void) { other(); }\n") {
		t.Error("input-less script rule always runs: never skip")
	}
}

func TestMayMatchEmptyAtomRule(t *testing.T) {
	// A rule made only of metavariables has no atoms; nothing can be
	// skipped.
	ix := build(t, "@r@\nexpression E;\nidentifier f;\n@@\n- f(E)\n+ f(E, 0)\n")
	if !may(t, ix, "int x;\n") {
		t.Error("atom-free rule can match anything: never skip")
	}
}

func TestMayMatchInitializeFinalize(t *testing.T) {
	// Initialize bodies execute whenever the patch runs on a file, and a
	// failing body must surface as that file's error — so their presence
	// keeps every file in.
	ix := build(t, `@initialize:python@ @@
X = 0

@r@
expression list el;
@@
- old_api(el)
+ new_api(el)
`)
	if !may(t, ix, "void f(void) { other(); }\n") {
		t.Error("an unconditional initialize rule must disable skipping")
	}

	// Finalizers run unconditionally (their dependency is not consulted),
	// same conclusion.
	ix = build(t, `@r@
expression list el;
@@
- old_api(el)
+ new_api(el)

@finalize:python@ @@
X = 1
`)
	if !may(t, ix, "void f(void) { other(); }\n") {
		t.Error("a finalize rule must disable skipping")
	}
}
