// Package index implements the batch engine's required-atom prefilter: a
// per-patch index answering, from raw file bytes alone, "can any rule of
// this patch possibly fire on this file?". It is the role glimpse/idutils
// token indexes play for spatch — on a corpus where most files cannot
// match, skipping the parser on provably irrelevant files is the dominant
// speedup, because parsing costs orders of magnitude more than a handful
// of substring scans.
//
// For every match rule the index extracts *required atoms*: literal
// identifiers on context and minus lines that the matcher compares by
// name, so any file the rule matches must contain them as complete words.
// Per-file evaluation then walks the rules in order under three-valued
// logic (no / maybe / yes), mirroring how Engine.Run gates rules on the
// Matched set: a rule whose dependency cannot hold, or whose atoms are
// absent, can never fire; a file is skipped only when *every* rule that
// could touch the result evaluates to "no". Virtual rules resolve from the
// run's defines; rules that may run after a firing transform rule widen
// the filter with the words that transform could insert (or disable it
// when the insertions are not statically known, e.g. fresh identifiers or
// script-computed bindings).
//
// The filter is deliberately one-sided: MayMatch == true promises nothing,
// but MayMatch == false guarantees the engine would leave the file
// untouched and report no matches, so a skipped file's result can be
// synthesized without parsing.
package index

import (
	"repro/internal/cast"
	"repro/internal/smpl"
)

// tri is the three-valued truth of "this rule fires on this file".
type tri uint8

const (
	triNo tri = iota
	triMaybe
	triYes
)

// ruleInfo is the per-rule slice of the index.
type ruleInfo struct {
	name    string
	kind    smpl.RuleKind
	depends *smpl.DepExpr
	// atoms must all be present (as words) for a match rule to possibly
	// match; empty means the rule is unconditionally "maybe".
	atoms []string
	// groups are at-least-one-of word sets from disjunctions: a matching
	// file must contain some member of every group.
	groups [][]string
	// plusAtoms are literal words the rule's plus lines insert; once the
	// rule may fire, later rules' atoms may be satisfied by them.
	plusAtoms []string
	// insertsUnknown marks plus lines whose inserted text is not statically
	// known (fresh identifiers, script- or taint-derived bindings): after
	// such a rule may fire, no later atom can be ruled absent.
	insertsUnknown bool
	// inputRules names the source rules of a script rule's inputs; if any
	// of them cannot fire, the script body never executes.
	inputRules []string
}

// Index is the compiled prefilter for one patch. It is immutable after
// Build and safe for concurrent use by any number of workers.
type Index struct {
	rules []ruleInfo
	// virtuals are the names declared `virtual`, resolved per run from the
	// defines (spatch -D).
	virtuals map[string]bool
}

// Build derives the prefilter from a parsed patch. It never fails: a rule
// the analysis cannot bound simply contributes an always-maybe entry, which
// only weakens the filter.
func Build(p *smpl.Patch) *Index {
	ix := &Index{virtuals: map[string]bool{}}
	for _, v := range p.Virtuals {
		ix.virtuals[v] = true
	}
	// tainted marks rule names whose exported bindings may hold text that
	// occurs nowhere in the source file: script outputs are computed, fresh
	// identifiers are synthesized, and match rules re-export everything
	// they inherit, so taint propagates along inheritance.
	tainted := map[string]bool{}
	for _, r := range p.Rules {
		ri := ruleInfo{name: r.Name, kind: r.Kind, depends: r.Depends}
		switch r.Kind {
		case smpl.ScriptRule:
			if len(r.Outputs) > 0 {
				tainted[r.Name] = true
			}
			for _, in := range r.Inputs {
				ri.inputRules = append(ri.inputRules, in.Rule)
			}
		case smpl.MatchRule:
			metas := smpl.NewMetaTable(r.Metas)
			if r.Pattern != nil {
				ex := newExtractor(metas)
				ex.pattern(r.Pattern)
				ri.atoms, ri.groups = ex.finish()
			}
			t := false
			for _, md := range r.Metas {
				if md.Kind == cast.MetaFreshIdentKind {
					t = true
				}
				if md.FromRule != "" && tainted[md.FromRule] {
					t = true
				}
			}
			if t {
				tainted[r.Name] = true
			}
			ri.plusAtoms, ri.insertsUnknown = plusInsertions(r, metas, tainted)
		}
		ix.rules = append(ix.rules, ri)
	}
	return ix
}

// plusInsertions classifies every identifier word of the rule's plus lines.
// A word that names one of the rule's metavariables is replaced at apply
// time: if the binding can only come from matching this same file, the
// replacement introduces no new words; fresh identifiers and taint-derived
// bindings can introduce anything. All remaining words are inserted
// verbatim.
func plusInsertions(r *smpl.Rule, metas *smpl.MetaTable, tainted map[string]bool) (atoms []string, unknown bool) {
	if r.Pattern == nil {
		return nil, false
	}
	seen := map[string]bool{}
	for _, blk := range r.Pattern.PlusBlocks {
		for _, line := range blk.Text {
			for _, w := range identWords(line) {
				if seen[w] {
					continue
				}
				seen[w] = true
				d, ok := metas.Decl(w)
				if !ok {
					atoms = append(atoms, w)
					continue
				}
				if d.Kind == cast.MetaFreshIdentKind ||
					(d.FromRule != "" && tainted[d.FromRule]) {
					unknown = true
				}
			}
		}
	}
	return atoms, unknown
}

// UnprunableRules returns the names of match rules whose required-atom set
// is empty: the prefilter must treat them as always-maybe, so no file can
// ever be skipped on their account. `gocci vet` surfaces them — one literal
// identifier on a context or minus line restores prunability.
func (ix *Index) UnprunableRules() []string {
	var out []string
	for _, r := range ix.rules {
		if r.kind == smpl.MatchRule && len(r.atoms) == 0 && len(r.groups) == 0 {
			out = append(out, r.name)
		}
	}
	return out
}

// Filter is an Index specialized to one run's virtual defines. Like the
// Index it is immutable and safe for concurrent use.
type Filter struct {
	ix *Index
	// base holds the pre-run truth per name: defined virtuals are yes,
	// declared-but-undefined virtuals are no (absent names default to no
	// at evaluation time, exactly like the engine's Matched map).
	base map[string]tri
}

// ForDefines specializes the index to a define set.
func (ix *Index) ForDefines(defines []string) *Filter {
	f := &Filter{ix: ix, base: map[string]tri{}}
	for v := range ix.virtuals {
		f.base[v] = triNo
	}
	for _, d := range defines {
		f.base[d] = triYes
	}
	return f
}

// MayMatch reports whether the patch could possibly fire on src. False is a
// guarantee: running the engine on src would change nothing and count no
// matches, so the caller may skip parsing entirely and report the input
// unchanged.
func (f *Filter) MayMatch(src string) bool {
	present := make(map[string]tri, 8)
	return f.mayMatch(func(w string) bool {
		if v, ok := present[w]; ok {
			return v == triYes
		}
		v := triNo
		if ContainsWord(src, w) {
			v = triYes
		}
		present[w] = v
		return v == triYes
	})
}

// MayMatchWords is MayMatch over a pre-scanned identifier-word set (see
// ScanWords), the form the persistent scan cache answers: one scan of the
// file serves every patch of a campaign, and cached scans serve every
// future run. The two forms agree exactly, because an atom is a valid
// identifier and ContainsWord accepts precisely the occurrences ScanWords
// extracts as maximal words.
func (f *Filter) MayMatchWords(words map[string]bool) bool {
	return f.mayMatch(func(w string) bool { return w == "" || words[w] })
}

// mayMatch walks the rules under three-valued logic with has answering
// word-presence queries against the file.
func (f *Filter) mayMatch(has func(string) bool) bool {
	// fired accumulates per-name truth in rule order, mirroring how
	// Engine.Run's Matched map evolves: dependencies see the state the
	// preceding rules left behind.
	fired := make(map[string]tri, len(f.base)+len(f.ix.rules))
	for k, v := range f.base {
		fired[k] = v
	}
	inserted := map[string]bool{}
	insertedUnknown := false
	any := false

	for _, r := range f.ix.rules {
		var v tri
		switch r.kind {
		case smpl.FinalizeRule:
			// Finalizers run unconditionally (their dependency is not
			// consulted), so a patch with one can never skip a file.
			v = triMaybe
		case smpl.InitializeRule:
			// Initialize bodies don't touch the result, but they execute
			// whenever their dependency holds — and execution can fail,
			// which surfaces as the file's error. Be conservative.
			if evalDep(r.depends, fired) != triNo {
				v = triMaybe
			}
		case smpl.ScriptRule:
			if evalDep(r.depends, fired) != triNo {
				v = triMaybe
				// Every input must be bindable; one unfirable source rule
				// means the body never runs for any environment.
				for _, in := range r.inputRules {
					if fired[in] == triNo {
						v = triNo
						break
					}
				}
			}
		case smpl.MatchRule:
			if evalDep(r.depends, fired) != triNo {
				v = triMaybe
				if !insertedUnknown {
					for _, a := range r.atoms {
						if !has(a) && !inserted[a] {
							v = triNo
							break
						}
					}
					for _, g := range r.groups {
						if v == triNo {
							break
						}
						anyIn := false
						for _, a := range g {
							if has(a) || inserted[a] {
								anyIn = true
								break
							}
						}
						if !anyIn {
							v = triNo
						}
					}
				}
			}
			if v != triNo {
				for _, w := range r.plusAtoms {
					inserted[w] = true
				}
				if r.insertsUnknown {
					insertedUnknown = true
				}
			}
		}
		// Only match and script rules enter the engine's Matched map;
		// initialize/finalize rules never satisfy a dependency by name.
		if (r.kind == smpl.MatchRule || r.kind == smpl.ScriptRule) && v > fired[r.name] {
			fired[r.name] = v
		}
		if v != triNo {
			any = true
		}
	}
	return any
}

// evalDep evaluates a dependency expression in three-valued logic over the
// per-name truth accumulated so far. Names absent from fired are no, like
// names absent from the engine's Matched map.
func evalDep(d *smpl.DepExpr, fired map[string]tri) tri {
	if d == nil {
		return triYes
	}
	if len(d.And) > 0 {
		v := triYes
		for _, c := range d.And {
			if cv := evalDep(c, fired); cv < v {
				v = cv
			}
		}
		return v
	}
	if len(d.Or) > 0 {
		v := triNo
		for _, c := range d.Or {
			if cv := evalDep(c, fired); cv > v {
				v = cv
			}
		}
		return v
	}
	v := fired[d.Name]
	if d.Not {
		return triYes - v
	}
	return v
}
