package verify

import (
	"strings"
	"testing"
)

func TestCleanEditPasses(t *testing.T) {
	before := "int f(int n) {\n\tcudaMalloc(&n, 4);\n\treturn n;\n}\n"
	after := strings.ReplaceAll(before, "cudaMalloc", "hipMalloc")
	if warns := Check("a.cu", before, after, Options{CPlusPlus: true, CUDA: true}); len(warns) != 0 {
		t.Fatalf("clean rename warned: %v", warns)
	}
}

func TestCaptureAvoidance(t *testing.T) {
	before := "int f(int n) {\n\tint hipMalloc = 0;\n\tcudaMalloc(&hipMalloc, n);\n\treturn hipMalloc;\n}\n"
	after := strings.Replace(before, "cudaMalloc(", "hipMalloc(", 1)
	warns := Check("a.cu", before, after, Options{CPlusPlus: true, CUDA: true})
	if len(warns) != 1 || warns[0].Code != "capture" || !warns[0].Unsafe {
		t.Fatalf("want one unsafe capture warning, got %v", warns)
	}
	if warns[0].Func != "f" || !strings.Contains(warns[0].Message, "hipMalloc") {
		t.Errorf("warning lacks context: %+v", warns[0])
	}
	if !Unsafe(warns) {
		t.Error("Unsafe() must report true")
	}
}

func TestDefUsePreservation(t *testing.T) {
	before := "int f(void) {\n\tint acc = 0;\n\tacc = acc + 1;\n\treturn acc;\n}\n"
	after := strings.Replace(before, "\tint acc = 0;\n", "", 1)
	warns := Check("a.c", before, after, Options{})
	if len(warns) != 1 || warns[0].Code != "def-use" || !warns[0].Unsafe {
		t.Fatalf("want one unsafe def-use warning, got %v", warns)
	}
}

func TestParseFailureIsUnsafe(t *testing.T) {
	before := "int f(void) { return 0; }\n"
	after := "int f(void) { return 0;\n" // brace dropped by a broken edit
	warns := Check("a.c", before, after, Options{})
	if len(warns) != 1 || warns[0].Code != "parse" || !warns[0].Unsafe {
		t.Fatalf("want one unsafe parse warning, got %v", warns)
	}
}

func TestPragmaRoundTripAccepted(t *testing.T) {
	before := "void f(int n) {\n#pragma acc parallel loop\n\tfor (int i = 0; i < n; ++i) ;\n}\n"
	after := strings.Replace(before, "#pragma acc parallel loop", "#pragma omp parallel for", 1)
	if warns := Check("a.c", before, after, Options{}); len(warns) != 0 {
		t.Fatalf("valid host translation warned: %v", warns)
	}
	// The offload form must also be accepted: retranslate tries every mode.
	after = strings.Replace(before, "#pragma acc parallel loop",
		"#pragma omp target teams distribute parallel for", 1)
	if warns := Check("a.c", before, after, Options{}); len(warns) != 0 {
		t.Fatalf("valid offload translation warned: %v", warns)
	}
}

func TestPragmaRoundTripMismatch(t *testing.T) {
	before := "void f(int n) {\n#pragma acc parallel loop\n\tfor (int i = 0; i < n; ++i) ;\n}\n"
	after := strings.Replace(before, "#pragma acc parallel loop", "#pragma omp simd", 1)
	warns := Check("a.c", before, after, Options{})
	if len(warns) != 1 || warns[0].Code != "pragma-roundtrip" || !warns[0].Unsafe {
		t.Fatalf("want one unsafe pragma-roundtrip warning, got %v", warns)
	}
}

func TestPragmaDropIsUnsafe(t *testing.T) {
	before := "void f(int n) {\n#pragma acc parallel loop\n\tfor (int i = 0; i < n; ++i) ;\n}\n"
	after := strings.Replace(before, "#pragma acc parallel loop\n", "", 1)
	warns := Check("a.c", before, after, Options{})
	if len(warns) != 1 || warns[0].Code != "pragma-roundtrip" || !warns[0].Unsafe {
		t.Fatalf("want one unsafe pragma-roundtrip warning, got %v", warns)
	}
	if !strings.Contains(warns[0].Message, "not one-to-one") {
		t.Errorf("message should flag the count mismatch: %s", warns[0].Message)
	}
}

func TestPragmaClauseAdvisory(t *testing.T) {
	// "gang" has no OpenMP equivalent: the translator drops it with a clause
	// warning, which verify surfaces as advisory (not demoting).
	before := "void f(int n) {\n#pragma acc parallel loop gang\n\tfor (int i = 0; i < n; ++i) ;\n}\n"
	after := strings.Replace(before, "#pragma acc parallel loop gang", "#pragma omp parallel for", 1)
	warns := Check("a.c", before, after, Options{})
	if len(warns) != 1 || warns[0].Code != "pragma-clause" {
		t.Fatalf("want one advisory pragma-clause warning, got %v", warns)
	}
	if warns[0].Unsafe || Unsafe(warns) {
		t.Error("clause drops are advisory and must not demote")
	}
}

func TestUntouchedPragmasIgnored(t *testing.T) {
	// Pragmas the patch did not touch stay out of the pairing.
	before := "void f(int n) {\n#pragma acc parallel loop\n\tfor (int i = 0; i < n; ++i) ;\n#pragma acc update self(n)\n}\n"
	after := strings.Replace(before, "#pragma acc parallel loop", "#pragma omp parallel for", 1)
	if warns := Check("a.c", before, after, Options{}); Unsafe(warns) {
		t.Fatalf("untouched second pragma caused a demotion: %v", warns)
	}
}

func TestWarningString(t *testing.T) {
	w := Warning{Code: "capture", Func: "f", Message: "m"}
	if got := w.String(); got != "[capture] f: m" {
		t.Errorf("got %q", got)
	}
	w = Warning{Code: "parse", Message: "m"}
	if got := w.String(); got != "[parse] m" {
		t.Errorf("got %q", got)
	}
}
