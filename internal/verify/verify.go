// Package verify is the post-transform safety checker behind --verify: it
// re-examines a (before, after) pair produced by a semantic patch run and
// reports structured warnings for edits whose textual plausibility hides a
// semantic hazard. Following Cohen's mechanically-proved renaming
// (arXiv:1607.02226), the checks target the failure modes of the paper's
// HPC transformations specifically:
//
//   - capture avoidance: an identifier introduced into a function where a
//     local declaration of the same name already existed now binds to the
//     local, not the intended API symbol.
//   - def-use preservation: a declaration was rewritten away while uses of
//     the declared name survive.
//   - pragma round-trip: every OpenMP pragma that replaced an OpenACC one
//     must re-derive from the removed directive under the accomp
//     translation tables; clause drops the translator reported surface as
//     advisory warnings.
//   - output well-formedness: the transformed text must still parse under
//     the run's dialect.
//
// A warning with Unsafe set demotes the edit when batch.Options.Verify is
// on: the file's output reverts to its input, the warning rides the result,
// and the outcome (including the demotion) is cached under a verify-keyed
// fingerprint so warm runs replay the same decision.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/accomp"
	"repro/internal/cast"
	"repro/internal/cparse"
)

// Version fingerprints the checker's logic. It is folded into result-cache
// keys when verify mode is on, so cached verify decisions are invalidated
// when the checks themselves change. Bump on any behavioral change here.
const Version = "1"

// Warning is one finding about a transformed file.
type Warning struct {
	// Code identifies the check: "capture", "def-use", "pragma-roundtrip",
	// "pragma-clause", or "parse".
	Code string
	// Func is the enclosing function's name, "" for file-scope findings.
	Func string
	// Message describes the finding.
	Message string
	// Unsafe marks findings that demote the edit under verify mode;
	// advisory findings (clause drops) ride along without demoting.
	Unsafe bool
}

func (w Warning) String() string {
	if w.Func != "" {
		return fmt.Sprintf("[%s] %s: %s", w.Code, w.Func, w.Message)
	}
	return fmt.Sprintf("[%s] %s", w.Code, w.Message)
}

// Unsafe reports whether any warning in the list demotes the edit.
func Unsafe(warns []Warning) bool {
	for _, w := range warns {
		if w.Unsafe {
			return true
		}
	}
	return false
}

// Options selects the dialect both sides are parsed under — the same
// dialect the transforming run used.
type Options struct {
	CPlusPlus bool
	Std       int
	CUDA      bool
}

// Check verifies one transformed file. before must be the exact input the
// patch run consumed and after its output; a nil or empty slice means every
// check passed. Check never modifies anything — demotion is the caller's
// move.
func Check(name, before, after string, opts Options) []Warning {
	popts := cparse.Options{CPlusPlus: opts.CPlusPlus, Std: opts.Std, CUDA: opts.CUDA}
	fa, err := cparse.Parse(name, after, popts)
	if err != nil {
		return []Warning{{
			Code:   "parse",
			Unsafe: true,
			Message: fmt.Sprintf("transformed output no longer parses: %v",
				err),
		}}
	}
	fb, err := cparse.Parse(name, before, popts)
	if err != nil {
		// The transforming run parsed this input, so in practice this is
		// unreachable; without a baseline there is nothing to compare.
		return nil
	}
	var warns []Warning
	warns = append(warns, checkFunctions(fb, fa)...)
	warns = append(warns, checkPragmas(before, after)...)
	return warns
}

// fnInfo summarizes one function definition for the scope checks.
type fnInfo struct {
	locals map[string]bool // parameter and local-declaration names
	counts map[string]int  // identifier occurrences in the definition
}

// functions indexes a file's function definitions by name. A redefinition
// (behind #ifdef arms the parser keeps) folds into one entry; the checks
// only compare aggregate counts, so folding is conservative.
func functions(f *cast.File) map[string]*fnInfo {
	out := map[string]*fnInfo{}
	for _, d := range f.Decls {
		fd, ok := d.(*cast.FuncDef)
		if !ok || fd.Body == nil || fd.Name == nil {
			continue
		}
		info := out[fd.Name.Name]
		if info == nil {
			info = &fnInfo{locals: map[string]bool{}, counts: map[string]int{}}
			out[fd.Name.Name] = info
		}
		if fd.Params != nil {
			for _, p := range fd.Params.Params {
				if p.Name != nil {
					info.locals[p.Name.Name] = true
				}
			}
		}
		cast.Walk(fd.Body, func(n cast.Node) bool {
			switch x := n.(type) {
			case *cast.VarDecl:
				for _, it := range x.Items {
					if it.Name != nil {
						info.locals[it.Name.Name] = true
					}
				}
			case *cast.Ident:
				info.counts[x.Name]++
			}
			return true
		})
	}
	return out
}

// checkFunctions runs the capture-avoidance and def-use checks over every
// function present on both sides. Functions that appear or vanish entirely
// (the patch renamed or removed the definition) have no stable baseline and
// are skipped.
func checkFunctions(before, after *cast.File) []Warning {
	fb, fa := functions(before), functions(after)
	var names []string
	for name := range fa {
		if fb[name] != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var warns []Warning
	for _, name := range names {
		b, a := fb[name], fa[name]
		// Capture avoidance: a reference introduced by the patch that lands
		// in a function already declaring that name locally binds to the
		// local, not the intended (typically API) symbol.
		var ids []string
		for id := range a.counts {
			if a.counts[id] > b.counts[id] && b.locals[id] {
				ids = append(ids, id)
			}
		}
		sort.Strings(ids)
		for _, id := range ids {
			warns = append(warns, Warning{
				Code: "capture", Func: name, Unsafe: true,
				Message: fmt.Sprintf("introduced reference to %q is captured by an existing local declaration", id),
			})
		}
		// Def-use preservation: a declaration the patch removed while uses
		// of the name survive leaves the function referring to nothing.
		ids = ids[:0]
		for id := range b.locals {
			if !a.locals[id] && a.counts[id] > 0 {
				ids = append(ids, id)
			}
		}
		sort.Strings(ids)
		for _, id := range ids {
			warns = append(warns, Warning{
				Code: "def-use", Func: name, Unsafe: true,
				Message: fmt.Sprintf("declaration of %q was removed but %d use(s) remain", id, fa[name].counts[id]),
			})
		}
	}
	return warns
}

// pragmas scans a source line-wise for pragma bodies of the given family
// ("acc" or "omp"), in order of appearance.
func pragmas(src, family string) []string {
	var out []string
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		rest, ok := strings.CutPrefix(trimmed, "#pragma")
		if !ok {
			continue
		}
		rest = strings.TrimSpace(rest)
		body, ok := strings.CutPrefix(rest, family)
		if !ok || (body != "" && body[0] != ' ' && body[0] != '\t') {
			continue
		}
		out = append(out, strings.TrimSpace(body))
	}
	return out
}

// checkPragmas round-trips directive translations: each OpenACC pragma the
// patch consumed is paired, in order, with the OpenMP pragma that appeared,
// and the pair must agree with the accomp translation tables under at least
// one supported mode. Clause warnings the translator reports on the way are
// surfaced as advisory findings.
func checkPragmas(before, after string) []Warning {
	accB, accA := pragmas(before, "acc"), pragmas(after, "acc")
	ompB, ompA := pragmas(before, "omp"), pragmas(after, "omp")

	// Removed acc bodies and added omp bodies, in order. Multiset removal
	// keeps pragmas untouched by the patch out of the pairing.
	removed := subtract(accB, accA)
	added := subtract(ompA, ompB)
	if len(removed) == 0 && len(added) == 0 {
		return nil
	}
	var warns []Warning
	if len(removed) != len(added) {
		warns = append(warns, Warning{
			Code: "pragma-roundtrip", Unsafe: true,
			Message: fmt.Sprintf("%d OpenACC pragma(s) removed but %d OpenMP pragma(s) added; translation is not one-to-one", len(removed), len(added)),
		})
	}
	n := min(len(removed), len(added))
	for i := 0; i < n; i++ {
		omp, accWarns, matched := retranslate(removed[i], added[i])
		if !matched {
			warns = append(warns, Warning{
				Code: "pragma-roundtrip", Unsafe: true,
				Message: fmt.Sprintf("#pragma omp %s does not round-trip from #pragma acc %s (expected %q)", added[i], removed[i], omp),
			})
			continue
		}
		for _, aw := range accWarns {
			warns = append(warns, Warning{
				Code:    "pragma-clause",
				Message: fmt.Sprintf("#pragma acc %s: %s: %s", removed[i], aw.What, aw.Why),
			})
		}
	}
	return warns
}

// retranslate checks one removed-acc/added-omp pair against the translator
// under each mode, returning the host-mode expectation, the matching mode's
// clause warnings, and whether any mode reproduced the emitted pragma.
func retranslate(acc, omp string) (string, []accomp.Warning, bool) {
	var hostOmp string
	for i, mode := range []accomp.Mode{accomp.Host, accomp.Offload} {
		got, ws, err := accomp.Translate(acc, mode)
		if i == 0 {
			hostOmp = got
		}
		if err == nil && got == omp {
			return got, ws, true
		}
	}
	return hostOmp, nil, false
}

// subtract removes one occurrence of each element of b from a, preserving
// a's order.
func subtract(a, b []string) []string {
	remove := map[string]int{}
	for _, s := range b {
		remove[s]++
	}
	var out []string
	for _, s := range a {
		if remove[s] > 0 {
			remove[s]--
			continue
		}
		out = append(out, s)
	}
	return out
}
