// Package hipify translates CUDA API usage to AMD HIP, the paper's
// "Translation of very similar APIs" use case. It provides the token
// dictionaries (functions, types, enumerators, headers), an AST-level
// translator built on the engine's substrates, and a text-level baseline
// that mirrors hipify-perl's design point: dictionary substitution without
// a syntax tree.
package hipify

// Functions maps CUDA runtime/library function names to HIP equivalents.
// The subset covers the runtime, memory, stream, event, curand and cublas
// entry points exercised by the workload generator and benchmarks.
var Functions = map[string]string{
	// runtime / device management
	"cudaDeviceSynchronize":    "hipDeviceSynchronize",
	"cudaDeviceReset":          "hipDeviceReset",
	"cudaSetDevice":            "hipSetDevice",
	"cudaGetDevice":            "hipGetDevice",
	"cudaGetDeviceCount":       "hipGetDeviceCount",
	"cudaGetDeviceProperties":  "hipGetDeviceProperties",
	"cudaDeviceGetAttribute":   "hipDeviceGetAttribute",
	"cudaDeviceSetCacheConfig": "hipDeviceSetCacheConfig",
	"cudaGetLastError":         "hipGetLastError",
	"cudaPeekAtLastError":      "hipPeekAtLastError",
	"cudaGetErrorName":         "hipGetErrorName",
	"cudaGetErrorString":       "hipGetErrorString",
	"cudaDriverGetVersion":     "hipDriverGetVersion",
	"cudaRuntimeGetVersion":    "hipRuntimeGetVersion",

	// memory
	"cudaMalloc":               "hipMalloc",
	"cudaMallocHost":           "hipHostMalloc",
	"cudaMallocManaged":        "hipMallocManaged",
	"cudaMallocPitch":          "hipMallocPitch",
	"cudaMalloc3D":             "hipMalloc3D",
	"cudaFree":                 "hipFree",
	"cudaFreeHost":             "hipHostFree",
	"cudaMemcpy":               "hipMemcpy",
	"cudaMemcpyAsync":          "hipMemcpyAsync",
	"cudaMemcpy2D":             "hipMemcpy2D",
	"cudaMemcpyPeer":           "hipMemcpyPeer",
	"cudaMemcpyToSymbol":       "hipMemcpyToSymbol",
	"cudaMemcpyFromSymbol":     "hipMemcpyFromSymbol",
	"cudaMemset":               "hipMemset",
	"cudaMemsetAsync":          "hipMemsetAsync",
	"cudaMemGetInfo":           "hipMemGetInfo",
	"cudaHostRegister":         "hipHostRegister",
	"cudaHostUnregister":       "hipHostUnregister",
	"cudaHostGetDevicePointer": "hipHostGetDevicePointer",

	// streams
	"cudaStreamCreate":                   "hipStreamCreate",
	"cudaStreamCreateWithFlags":          "hipStreamCreateWithFlags",
	"cudaStreamCreateWithPriority":       "hipStreamCreateWithPriority",
	"cudaStreamDestroy":                  "hipStreamDestroy",
	"cudaStreamSynchronize":              "hipStreamSynchronize",
	"cudaStreamWaitEvent":                "hipStreamWaitEvent",
	"cudaStreamQuery":                    "hipStreamQuery",
	"cudaStreamAddCallback":              "hipStreamAddCallback",
	"cudaStreamGetFlags":                 "hipStreamGetFlags",
	"cudaStreamGetPriority":              "hipStreamGetPriority",
	"cudaStreamBeginCapture":             "hipStreamBeginCapture",
	"cudaStreamEndCapture":               "hipStreamEndCapture",
	"cudaStreamIsCapturing":              "hipStreamIsCapturing",
	"cudaDeviceGetStreamPriorityRange":   "hipDeviceGetStreamPriorityRange",
	"cudaStreamAttachMemAsync":           "hipStreamAttachMemAsync",
	"cudaLaunchKernel":                   "hipLaunchKernel",
	"cudaLaunchHostFunc":                 "hipLaunchHostFunc",
	"cudaFuncGetAttributes":              "hipFuncGetAttributes",
	"cudaOccupancyMaxPotentialBlockSize": "hipOccupancyMaxPotentialBlockSize",

	// events
	"cudaEventCreate":          "hipEventCreate",
	"cudaEventCreateWithFlags": "hipEventCreateWithFlags",
	"cudaEventDestroy":         "hipEventDestroy",
	"cudaEventRecord":          "hipEventRecord",
	"cudaEventRecordWithFlags": "hipEventRecordWithFlags",
	"cudaEventSynchronize":     "hipEventSynchronize",
	"cudaEventElapsedTime":     "hipEventElapsedTime",
	"cudaEventQuery":           "hipEventQuery",

	// curand -> rocrand/hiprand (the paper's example uses rocrand)
	"curand_init":                        "rocrand_init",
	"curand_uniform":                     "rocrand_uniform",
	"curand_uniform_double":              "rocrand_uniform_double",
	"curand_normal":                      "rocrand_normal",
	"curand_normal_double":               "rocrand_normal_double",
	"curandCreateGenerator":              "hiprandCreateGenerator",
	"curandDestroyGenerator":             "hiprandDestroyGenerator",
	"curandGenerateUniform":              "hiprandGenerateUniform",
	"curandGenerateNormal":               "hiprandGenerateNormal",
	"curandSetPseudoRandomGeneratorSeed": "hiprandSetPseudoRandomGeneratorSeed",

	// cublas -> hipblas
	"cublasCreate":    "hipblasCreate",
	"cublasDestroy":   "hipblasDestroy",
	"cublasSetStream": "hipblasSetStream",
	"cublasSaxpy":     "hipblasSaxpy",
	"cublasDaxpy":     "hipblasDaxpy",
	"cublasSgemm":     "hipblasSgemm",
	"cublasDgemm":     "hipblasDgemm",
	"cublasSdot":      "hipblasSdot",
	"cublasDdot":      "hipblasDdot",
	"cublasSscal":     "hipblasSscal",
	"cublasDscal":     "hipblasDscal",
	"cublasSetVector": "hipblasSetVector",
	"cublasGetVector": "hipblasGetVector",

	// thread/synchronization intrinsics
	"__syncthreads":     "__syncthreads",
	"__threadfence":     "__threadfence",
	"atomicAdd":         "atomicAdd",
	"cudaProfilerStart": "hipProfilerStart",
	"cudaProfilerStop":  "hipProfilerStop",
}

// Types maps CUDA type names to HIP equivalents.
var Types = map[string]string{
	"cudaError_t":             "hipError_t",
	"cudaError":               "hipError_t",
	"cudaStream_t":            "hipStream_t",
	"cudaEvent_t":             "hipEvent_t",
	"cudaDeviceProp":          "hipDeviceProp_t",
	"cudaMemcpyKind":          "hipMemcpyKind",
	"cudaStreamCaptureMode":   "hipStreamCaptureMode",
	"cudaStreamCaptureStatus": "hipStreamCaptureStatus",
	"cudaGraph_t":             "hipGraph_t",
	"cudaHostFn_t":            "hipHostFn_t",
	"cudaFuncAttributes":      "hipFuncAttributes",
	"cudaArray_t":             "hipArray_t",
	"cudaChannelFormatDesc":   "hipChannelFormatDesc",
	"curandState":             "rocrand_state_xorwow",
	"curandState_t":           "rocrand_state_xorwow",
	"curandGenerator_t":       "hiprandGenerator_t",
	"cublasHandle_t":          "hipblasHandle_t",
	"cublasStatus_t":          "hipblasStatus_t",
	"cublasOperation_t":       "hipblasOperation_t",
	"__half":                  "rocblas_half",
	"__half2":                 "rocblas_half2",
	"dim3":                    "dim3",
}

// Enums maps CUDA enumerator constants to HIP equivalents.
var Enums = map[string]string{
	"cudaSuccess":                      "hipSuccess",
	"cudaErrorMemoryAllocation":        "hipErrorOutOfMemory",
	"cudaErrorInvalidValue":            "hipErrorInvalidValue",
	"cudaMemcpyHostToDevice":           "hipMemcpyHostToDevice",
	"cudaMemcpyDeviceToHost":           "hipMemcpyDeviceToHost",
	"cudaMemcpyDeviceToDevice":         "hipMemcpyDeviceToDevice",
	"cudaMemcpyHostToHost":             "hipMemcpyHostToHost",
	"cudaMemcpyDefault":                "hipMemcpyDefault",
	"cudaStreamNonBlocking":            "hipStreamNonBlocking",
	"cudaStreamDefault":                "hipStreamDefault",
	"cudaStreamCaptureModeGlobal":      "hipStreamCaptureModeGlobal",
	"cudaStreamCaptureModeThreadLocal": "hipStreamCaptureModeThreadLocal",
	"cudaStreamCaptureModeRelaxed":     "hipStreamCaptureModeRelaxed",
	"cudaStreamCaptureStatusNone":      "hipStreamCaptureStatusNone",
	"cudaStreamCaptureStatusActive":    "hipStreamCaptureStatusActive",
	"cudaEventDefault":                 "hipEventDefault",
	"cudaEventBlockingSync":            "hipEventBlockingSync",
	"cudaEventDisableTiming":           "hipEventDisableTiming",
	"cudaEventInterprocess":            "hipEventInterprocess",
	"cudaEventRecordDefault":           "hipEventRecordDefault",
	"cudaEventRecordExternal":          "hipEventRecordExternal",
	"cudaHostRegisterDefault":          "hipHostRegisterDefault",
	"CUBLAS_OP_N":                      "HIPBLAS_OP_N",
	"CUBLAS_OP_T":                      "HIPBLAS_OP_T",
	"CUBLAS_STATUS_SUCCESS":            "HIPBLAS_STATUS_SUCCESS",
	"CURAND_RNG_PSEUDO_DEFAULT":        "HIPRAND_RNG_PSEUDO_DEFAULT",
}

// Headers maps CUDA header paths to HIP equivalents.
var Headers = map[string]string{
	"cuda.h":               "hip/hip_runtime.h",
	"cuda_runtime.h":       "hip/hip_runtime.h",
	"cuda_runtime_api.h":   "hip/hip_runtime_api.h",
	"curand.h":             "hiprand/hiprand.h",
	"curand_kernel.h":      "rocrand/rocrand_kernel.h",
	"cublas_v2.h":          "hipblas/hipblas.h",
	"cuda_fp16.h":          "hip/hip_fp16.h",
	"cooperative_groups.h": "hip/hip_cooperative_groups.h",
}

// All merges every identifier dictionary (functions, types, enums) for
// token-level baselines.
func All() map[string]string {
	out := make(map[string]string, len(Functions)+len(Types)+len(Enums))
	for k, v := range Functions {
		out[k] = v
	}
	for k, v := range Types {
		out[k] = v
	}
	for k, v := range Enums {
		out[k] = v
	}
	return out
}
