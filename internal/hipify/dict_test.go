package hipify

import (
	"strings"
	"testing"
)

// TestStreamEventEntries pins the CUDA stream/event API coverage added for
// the shipped hipify campaign: each entry must map to its hip* counterpart
// and actually translate in call position.
func TestStreamEventEntries(t *testing.T) {
	cases := []struct {
		table map[string]string
		from  string
		to    string
	}{
		{Functions, "cudaStreamCreateWithPriority", "hipStreamCreateWithPriority"},
		{Functions, "cudaStreamGetFlags", "hipStreamGetFlags"},
		{Functions, "cudaStreamGetPriority", "hipStreamGetPriority"},
		{Functions, "cudaStreamBeginCapture", "hipStreamBeginCapture"},
		{Functions, "cudaStreamEndCapture", "hipStreamEndCapture"},
		{Functions, "cudaStreamIsCapturing", "hipStreamIsCapturing"},
		{Functions, "cudaDeviceGetStreamPriorityRange", "hipDeviceGetStreamPriorityRange"},
		{Functions, "cudaStreamAttachMemAsync", "hipStreamAttachMemAsync"},
		{Functions, "cudaLaunchHostFunc", "hipLaunchHostFunc"},
		{Functions, "cudaEventRecordWithFlags", "hipEventRecordWithFlags"},
		{Types, "cudaStreamCaptureMode", "hipStreamCaptureMode"},
		{Types, "cudaStreamCaptureStatus", "hipStreamCaptureStatus"},
		{Types, "cudaGraph_t", "hipGraph_t"},
		{Types, "cudaHostFn_t", "hipHostFn_t"},
		{Enums, "cudaStreamCaptureModeGlobal", "hipStreamCaptureModeGlobal"},
		{Enums, "cudaStreamCaptureModeThreadLocal", "hipStreamCaptureModeThreadLocal"},
		{Enums, "cudaStreamCaptureModeRelaxed", "hipStreamCaptureModeRelaxed"},
		{Enums, "cudaStreamCaptureStatusNone", "hipStreamCaptureStatusNone"},
		{Enums, "cudaStreamCaptureStatusActive", "hipStreamCaptureStatusActive"},
		{Enums, "cudaEventInterprocess", "hipEventInterprocess"},
		{Enums, "cudaEventRecordDefault", "hipEventRecordDefault"},
		{Enums, "cudaEventRecordExternal", "hipEventRecordExternal"},
	}
	for _, tc := range cases {
		if got := tc.table[tc.from]; got != tc.to {
			t.Errorf("%s -> %q, want %q", tc.from, got, tc.to)
		}
	}
}

// TestStreamCaptureTranslates runs a stream-capture snippet through the
// legacy AST walker end to end.
func TestStreamCaptureTranslates(t *testing.T) {
	src := `int f(cudaStream_t s) {
	cudaStreamCaptureStatus st = cudaStreamCaptureStatusNone;
	cudaStreamBeginCapture(s, cudaStreamCaptureModeGlobal);
	cudaStreamIsCapturing(s, &st);
	cudaGraph_t g;
	cudaStreamEndCapture(s, &g);
	return 0;
}
`
	out, rep, err := Translate("cap.cu", src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() == 0 {
		t.Fatal("nothing translated")
	}
	for _, want := range []string{
		"hipStream_t s",
		"hipStreamCaptureStatus st = hipStreamCaptureStatusNone",
		"hipStreamBeginCapture(s, hipStreamCaptureModeGlobal)",
		"hipStreamIsCapturing(s, &st)",
		"hipGraph_t g",
		"hipStreamEndCapture(s, &g)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "cuda") {
		t.Errorf("untranslated CUDA names remain:\n%s", out)
	}
}
