package hipify

import (
	"strings"
	"testing"
	"testing/quick"
)

const sample = `#include <cuda_runtime.h>
#include <curand_kernel.h>

__global__ void scale(int n, double *a, double s) {
	int i = blockIdx.x * blockDim.x + threadIdx.x;
	if (i < n) a[i] = s * a[i];
}

int run(int n) {
	double *d_a;
	cudaError_t err = cudaMalloc(&d_a, n * sizeof(double));
	if (err != cudaSuccess) return 1;
	cudaStream_t stream;
	cudaStreamCreate(&stream);
	cudaMemcpyAsync(d_a, h_a, n * sizeof(double), cudaMemcpyHostToDevice, stream);
	scale<<<grid, block, 0, stream>>>(n, d_a, 2.0);
	cudaStreamSynchronize(stream);
	cudaFree(d_a);
	return 0;
}
`

func TestTranslateSample(t *testing.T) {
	out, rep, err := Translate("s.cu", sample)
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{
		"#include <hip/hip_runtime.h>",
		"#include <rocrand/rocrand_kernel.h>",
		"hipError_t err = hipMalloc(&d_a, n * sizeof(double));",
		"if (err != hipSuccess) return 1;",
		"hipStream_t stream;",
		"hipStreamCreate(&stream);",
		"hipMemcpyHostToDevice",
		"hipLaunchKernelGGL(scale, grid, block, 0, stream, n, d_a, 2.0);",
		"hipStreamSynchronize(stream);",
		"hipFree(d_a);",
	}
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Errorf("missing %q in:\n%s", w, out)
		}
	}
	if strings.Contains(out, "cuda") {
		t.Errorf("cuda remnants:\n%s", out)
	}
	if rep.Launches != 1 || rep.Headers != 2 {
		t.Errorf("report: %+v", rep)
	}
	if rep.Functions < 4 {
		t.Errorf("functions renamed=%d", rep.Functions)
	}
}

func TestTranslateLaunchPadsDefaults(t *testing.T) {
	src := "void f(void){ k<<<g, b>>>(x); }"
	out, rep, err := Translate("t.cu", src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "hipLaunchKernelGGL(k, g, b, 0, 0, x);") {
		t.Errorf("defaults not padded:\n%s", out)
	}
	if rep.Launches != 1 {
		t.Errorf("report %+v", rep)
	}
}

// The defining difference from the text baseline: identifiers that collide
// with API names but are not API uses stay untouched.
func TestASTLeavesCollisionsAlone(t *testing.T) {
	src := `void f(void) {
	int cudaMalloc = 3;            // a (terrible) local variable name
	const char *msg = "call cudaMalloc here";
	use(cudaMalloc, msg);
}`
	out, _, err := Translate("t.cu", src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "int cudaMalloc = 3;") {
		t.Errorf("variable declaration renamed:\n%s", out)
	}
	if !strings.Contains(out, `"call cudaMalloc here"`) {
		t.Errorf("string literal rewritten:\n%s", out)
	}
	// ... whereas the text baseline rewrites all of them:
	tout, n := TextHipify(src)
	if !strings.Contains(tout, "int hipMalloc = 3;") {
		t.Errorf("text baseline should rename the variable:\n%s", tout)
	}
	if n == 0 {
		t.Error("text baseline reported no substitutions")
	}
}

func TestTextHipifyBasics(t *testing.T) {
	out, n := TextHipify(sample)
	if !strings.Contains(out, "hipMalloc(&d_a") || !strings.Contains(out, "hipMemcpyHostToDevice") {
		t.Errorf("text hipify missed calls:\n%s", out)
	}
	if n < 5 {
		t.Errorf("substitutions=%d", n)
	}
	if !strings.Contains(out, "#include <hip/hip_runtime.h>") {
		t.Errorf("header not rewritten:\n%s", out)
	}
}

func TestDictionariesDisjointValues(t *testing.T) {
	// No CUDA name maps to another CUDA name (substitution must be a
	// fixpoint: applying the dictionary twice equals applying it once).
	all := All()
	for from, to := range all {
		if _, isKey := all[to]; isKey && to != from {
			t.Errorf("dictionary not idempotent: %s -> %s which is also a key", from, to)
		}
	}
}

func TestDictionariesNonEmptyTargets(t *testing.T) {
	for k, v := range All() {
		if v == "" {
			t.Errorf("empty translation for %s", k)
		}
	}
	for k, v := range Headers {
		if v == "" || k == v {
			t.Errorf("suspicious header mapping %s -> %s", k, v)
		}
	}
}

// Property: AST translation is idempotent — running it twice produces the
// same output as running it once.
func TestQuickIdempotent(t *testing.T) {
	snippets := []string{
		"void f(void){ cudaMalloc(&p, n); }",
		"void f(void){ cudaStream_t s; cudaStreamCreate(&s); }",
		"void f(void){ k<<<g,b>>>(x); }",
		"void f(void){ if (e != cudaSuccess) bail(); }",
		"#include <cuda.h>\nint x;",
	}
	prop := func(pick uint8) bool {
		src := snippets[int(pick)%len(snippets)]
		once, _, err := Translate("t.cu", src)
		if err != nil {
			return false
		}
		twice, _, err := Translate("t.cu", once)
		if err != nil {
			return false
		}
		return once == twice
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: translation never changes the number of lines (the paper's
// reviewability argument: HIP output diffs line-for-line against CUDA).
func TestQuickLinesPreserved(t *testing.T) {
	prop := func(pick uint8) bool {
		src := sample
		out, _, err := Translate("t.cu", src)
		if err != nil {
			return false
		}
		return strings.Count(out, "\n") == strings.Count(src, "\n")
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}
