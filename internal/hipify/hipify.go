package hipify

import (
	"fmt"
	"regexp"
	"strings"

	"repro/internal/cast"
	"repro/internal/cparse"
	"repro/internal/ctoken"
	"repro/internal/transform"
)

// Report summarizes a translation.
type Report struct {
	Functions int // function identifiers renamed
	Types     int // type names renamed
	Enums     int // enumerators renamed
	Launches  int // <<<>>> launches rewritten
	Headers   int // includes rewritten
}

func (r Report) Total() int {
	return r.Functions + r.Types + r.Enums + r.Launches + r.Headers
}

// Translate performs AST-level CUDA-to-HIP translation: function names are
// renamed only in call position, type names only in type position,
// enumerators only in expression position, and triple-chevron kernel
// launches become hipLaunchKernelGGL calls. Identifiers that merely collide
// with API names (local variables, struct fields, string literals, comments)
// are left alone — the property that separates this design point from the
// hipify-perl-style text baseline below.
func Translate(name, src string) (string, Report, error) {
	var rep Report
	f, err := cparse.Parse(name, src, cparse.Options{CPlusPlus: true, CUDA: true})
	if err != nil {
		return "", rep, fmt.Errorf("hipify %s: %w", name, err)
	}
	ed := transform.NewEditSet(f.Toks)

	renameTok := func(idx int, to string) {
		ed.DeleteRange(idx, idx)
		ed.Insert(idx, transform.Inline, to)
	}

	// Includes.
	for _, d := range f.Decls {
		inc, ok := d.(*cast.Include)
		if !ok {
			continue
		}
		if to, ok := Headers[inc.Path]; ok {
			first, _ := inc.Span()
			renameTok(first, "#include <"+to+">")
			rep.Headers++
		}
	}

	cast.Walk(f, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.CallExpr:
			if id, ok := x.Fun.(*cast.Ident); ok {
				if to, ok := Functions[id.Name]; ok && to != id.Name {
					first, _ := id.Span()
					if !ed.Deleted(first) {
						renameTok(first, to)
						rep.Functions++
					}
				}
			}
		case *cast.KernelLaunch:
			rep.Launches++
			rewriteLaunch(f, ed, x)
		case *cast.Type:
			if to, ok := Types[x.Base]; ok && to != x.Base {
				// rename only the base identifier token
				first, last := x.Span()
				for i := first; i <= last; i++ {
					if f.Toks.Tokens[i].Text == x.Base && !ed.Deleted(i) {
						renameTok(i, to)
						rep.Types++
						break
					}
				}
			}
		case *cast.Ident:
			if to, ok := Enums[x.Name]; ok {
				first, _ := x.Span()
				if !ed.Deleted(first) {
					renameTok(first, to)
					rep.Enums++
				}
			}
		}
		return true
	})

	return ed.Apply(), rep, nil
}

// rewriteLaunch rewrites k<<<cfg...>>>(args...) to
// hipLaunchKernelGGL(k, cfg..., args...).
func rewriteLaunch(f *cast.File, ed *transform.EditSet, kl *cast.KernelLaunch) {
	first, last := kl.Span()
	if ed.Overlaps(first, last) {
		return
	}
	var parts []string
	parts = append(parts, f.Text(kl.Fun))
	for _, c := range kl.Config {
		parts = append(parts, f.Text(c))
	}
	// HIP requires the four launch parameters; default the optional CUDA
	// shared-memory and stream arguments.
	for i := len(kl.Config); i < 4; i++ {
		parts = append(parts, "0")
	}
	for _, a := range kl.Args {
		parts = append(parts, f.Text(a))
	}
	ed.DeleteRange(first, last)
	ed.Insert(first, transform.Inline, "hipLaunchKernelGGL("+strings.Join(parts, ", ")+")")
}

// TextHipify is the hipify-perl baseline: blind word-boundary dictionary
// substitution over the raw text, including occurrences inside strings and
// comments and identifiers that merely collide with API names. It exists as
// the comparison point for the AST-vs-text ablation benchmark.
func TextHipify(src string) (string, int) {
	dict := All()
	names := make([]string, 0, len(dict))
	for k := range dict {
		names = append(names, regexp.QuoteMeta(k))
	}
	// longest-first to avoid prefix shadowing
	sortByLenDesc(names)
	re := regexp.MustCompile(`\b(` + strings.Join(names, "|") + `)\b`)
	count := 0
	out := re.ReplaceAllStringFunc(src, func(m string) string {
		count++
		return dict[m]
	})
	// headers, line-oriented like hipify-perl
	for from, to := range Headers {
		h := "#include <" + from + ">"
		if strings.Contains(out, h) {
			out = strings.ReplaceAll(out, h, "#include <"+to+">")
			count++
		}
	}
	// kernel launches via regex (the notorious weak spot of the text
	// approach: nested commas and template arguments defeat it)
	launchRe := regexp.MustCompile(`(\w+)\s*<<<([^>]*)>>>\s*\(`)
	out = launchRe.ReplaceAllString(out, "hipLaunchKernelGGL($1, $2, ")
	return out, count
}

func sortByLenDesc(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && len(s[j]) > len(s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// lexCount is a helper for benchmarks: token count of a source.
func lexCount(src string) int {
	f, err := ctoken.Lex("bench.cu", src, ctoken.Options{CUDAChevrons: true})
	if err != nil {
		return 0
	}
	return len(f.Tokens)
}

var _ = lexCount
