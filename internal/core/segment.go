// Function-granular execution. A patch that is "function-local" — a single
// match rule with no inherited bindings, no fresh identifiers, no position
// metavariables, and an anchored pattern — can be run one file segment at a
// time (see cast.SegmentFile): each top-level function is matched under a
// window restricted to its token extent, and everything between functions is
// matched under the residue window. Because the windows partition the
// matcher's candidate roots and every match's tokens stay inside its root's
// segment, the per-segment runs together find exactly the matches of a
// whole-file run — which is what lets internal/batch cache and replay
// results per function instead of per file.
package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/cast"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/smpl"
	"repro/internal/transform"
)

// FunctionLocalRule returns the patch's single match rule when the patch
// consists of exactly one rule and it is a match rule; nil otherwise.
func FunctionLocalRule(c *Compiled) *smpl.Rule {
	var mr *smpl.Rule
	for _, r := range c.Patch.Rules {
		if r.Kind != smpl.MatchRule || mr != nil {
			return nil
		}
		mr = r
	}
	return mr
}

// FunctionLocal reports whether the compiled patch can be executed
// function-granularly under the given options with results identical to a
// whole-file run. The conditions exclude every source of cross-segment or
// cross-run coupling:
//
//   - exactly one rule, a match rule: script/init rules and inter-rule
//     environment flow see the whole file.
//   - no inherited metavariables (implied by the single rule, checked
//     anyway) and no fresh identifiers: fresh-name counters depend on the
//     number and order of earlier matches across the file.
//   - no position metavariables: their bound text embeds absolute line
//     numbers, so a cached segment result would go stale when the segment
//     moves without changing.
//   - the pattern is anchored — a declaration pattern of exactly one
//     declaration, or a statement pattern with at least one element that is
//     neither dots nor a statement-list metavariable — so every match covers
//     at least one code token and lies inside one window.
//   - no per-rule match cap (MaxMatchesPerRule), which counts across the
//     whole file.
//   - quantified dots (`when strict`/`when forall`) on a configuration the
//     CFG engine cannot take must fail at file level, with runMatch's error.
func FunctionLocal(c *Compiled, opts Options) bool {
	if opts.MaxMatchesPerRule != 0 {
		return false
	}
	mr := FunctionLocalRule(c)
	if mr == nil || mr.Pattern == nil {
		return false
	}
	cr := c.rule(mr)
	if len(cr.inherits) > 0 {
		return false
	}
	for _, md := range mr.Metas {
		if md.Kind == cast.MetaFreshIdentKind {
			return false
		}
		// Position bindings embed absolute line numbers, so they are only
		// admissible when nothing position-dependent leaves the segment run.
		// A check rule qualifies: its findings store function-relative token
		// offsets and their line/col are re-derived from the live parse on
		// replay, and a single-rule patch exports no environments.
		if md.Kind == cast.MetaPosKind && !mr.IsCheck() {
			return false
		}
	}
	pat := mr.Pattern
	switch pat.Kind {
	case smpl.DeclPattern:
		if len(pat.Decls) != 1 {
			// Multi-declaration windows can span a function definition,
			// coupling a residue match to function content.
			return false
		}
	case smpl.StmtSeqPattern:
		anchored := false
		for _, s := range pat.Stmts {
			if _, isDots := s.(*cast.Dots); isDots {
				continue
			}
			if ms, ok := s.(*cast.MetaStmt); ok {
				if d, ok2 := cr.metas.Decl(ms.Name); ok2 && d.Kind == cast.MetaStmtListKind {
					continue
				}
			}
			anchored = true
		}
		if !anchored {
			return false
		}
	}
	cfgPrimary := !opts.SeqDots && match.CFGEligible(pat, cr.metas)
	if top, nested := quantifiedDots(pat); (top && !cfgPrimary) || nested {
		return false
	}
	return true
}

// SegmentJob identifies one segment of one file to match.
type SegmentJob struct {
	Name string
	Src  string
	File *cast.File
	Segs *cast.Segmentation
	// Fn is the function index in Segs.Funcs, or -1 for the residue (the
	// gaps between functions).
	Fn int
	// Cands, when non-nil, is the file's shared candidate enumeration
	// (match.PrecomputeCands(File)). Without it every segment's matcher
	// re-walks the whole AST to enumerate candidates, making a k-segment
	// file cost k walks instead of one.
	Cands *match.Cands
	// Trace, when non-nil, receives this job's match and cfg spans. It lives
	// on the job rather than the engine because segment jobs of one file fan
	// out goroutines over one shared engine; each goroutine forks its own
	// track.
	Trace *obs.Track
}

// SegmentResult is the outcome of matching one segment.
type SegmentResult struct {
	// Matches counts applied matches of the rule inside the segment.
	Matches int
	// Changed reports the rendered segment differs from its raw text.
	Changed bool
	// Text is the rendered segment (function jobs only): the function's
	// own-line indentation plus its edited token text.
	Text string
	// Gaps are the rendered gap texts (residue jobs only; len(Funcs)+1
	// entries), each the gap's edited token text plus the head of the next
	// function's leading whitespace.
	Gaps []string
	// Escaped reports the segment's result cannot stand alone: an edit
	// landed outside the segment, a rendered piece was ambiguous at its
	// boundary, or the match count reached Options.MaxEnvs (whole-file
	// truncation semantics). The caller must fall back to a file-level run.
	Escaped bool
	// Edits holds the segment's raw edit set, for callers that verify a
	// cold run by merging per-segment edits and rendering the whole file.
	Edits *transform.EditSet
	// Findings are the check-rule reports anchored inside this segment.
	// Line/Col are absolute for the current parse; TokOff and FuncHash are
	// segment-relative, so a cached finding can be re-anchored after
	// unrelated parts of the file moved.
	Findings []analysis.Finding
}

// RunSegment matches the engine's single function-local rule inside one
// segment of a parsed file. The engine must satisfy FunctionLocal for its
// compiled patch and options; segments of one file may run on separate
// goroutines sharing one engine, because the segment path only reads engine
// state (the per-file mutable state lives in the per-call fileState).
func (e *Engine) RunSegment(job SegmentJob) (*SegmentResult, error) {
	rule := FunctionLocalRule(e.compiled)
	if rule == nil {
		return nil, fmt.Errorf("RunSegment: patch %s is not function-local", e.patch.Name)
	}
	if err := ValidateDefines(e.patch, e.opts.Defines); err != nil {
		return nil, err
	}
	sr := &SegmentResult{}
	st := &fileState{name: job.Name, src: job.Src, file: job.File, ed: transform.NewEditSet(job.File.Toks), trace: job.Trace}
	sr.Edits = st.ed

	msp := job.Trace.Start(obs.StageMatch).File(job.Name).Rule(rule.Name)
	if job.Fn >= 0 {
		msp.Func(job.Segs.Funcs[job.Fn].Name)
	}
	defer func() { msp.Matches(sr.Matches).End() }()

	matched := map[string]bool{}
	for _, d := range e.opts.Defines {
		matched[d] = true
	}
	if rule.Depends.Eval(matched) {
		cr := e.compiled.rule(rule)
		cfgPrimary := !e.opts.SeqDots && match.CFGEligible(rule.Pattern, cr.metas)
		m := &match.Matcher{
			Pat:   rule.Pattern,
			Metas: cr.metas,
			Code:  st.file,
			Cands: job.Cands,
		}
		if !e.opts.SeqDots {
			m.CFGs = st.cfg
		}
		if job.Fn >= 0 {
			m.Window = job.Segs.FuncWindow(job.Fn)
		} else {
			m.Window = job.Segs.ResidueWindow()
		}
		isCheck := rule.IsCheck()
		for _, mt := range m.FindAll() {
			if e.opts.UseCTL && !cfgPrimary && !e.verifyCTL(st, rule, &mt) {
				continue
			}
			if sr.Matches >= e.opts.MaxEnvs {
				// Whole-file runs truncate here; per-segment runs cannot
				// reproduce truncation order, so force the fallback.
				sr.Escaped = true
				break
			}
			if rule.Pattern.HasTransform {
				if !e.applyMatch(st, rule.Pattern, &mt, mt.Env) {
					continue // overlapping edit: skip this match
				}
				st.dirty = true
			}
			if isCheck {
				sr.Findings = append(sr.Findings,
					makeFinding(rule, &mt, mt.Env, job.File, job.Segs, job.Src))
			}
			sr.Matches++
		}
		if isCheck && len(sr.Findings) > 0 {
			csp := job.Trace.Start(obs.StageCheck).File(job.Name).Rule(rule.Name)
			csp.Matches(len(sr.Findings)).End()
		}
	}

	if job.Fn >= 0 {
		seg := &job.Segs.Funcs[job.Fn]
		if !st.ed.WithinRange(seg.First, seg.Last) {
			sr.Escaped = true
			return sr, nil
		}
		text, ambiguous := st.ed.ApplyRange(seg.First, seg.Last, seg.Lead)
		if st.ed.Empty() {
			text = seg.Raw()
		} else if ambiguous {
			sr.Escaped = true
			return sr, nil
		}
		sr.Text = text
		sr.Changed = text != seg.Raw()
		return sr, nil
	}

	// Residue: every edit must stay out of the function extents, and each
	// gap renders independently (the head of the next function's leading
	// whitespace belongs to the gap and carries no tokens to edit).
	for i := range job.Segs.Funcs {
		seg := &job.Segs.Funcs[i]
		if st.ed.Touches(seg.First, seg.Last) {
			sr.Escaped = true
			return sr, nil
		}
	}
	n := len(job.Segs.Funcs)
	sr.Gaps = make([]string, n+1)
	for i := 0; i <= n; i++ {
		raw := job.Segs.GapRaw(i)
		a, b := job.Segs.GapBounds(i)
		if st.ed.Empty() || b < a {
			sr.Gaps[i] = raw
		} else {
			lead := job.File.Toks.Tokens[a].WS
			text, ambiguous := st.ed.ApplyRange(a, b, lead)
			if ambiguous && i < n {
				// The emptied tail line would merge into the next function's
				// lead in a whole-file render; composition is unsafe.
				sr.Escaped = true
				return sr, nil
			}
			sr.Gaps[i] = text + job.Segs.GapHead(i)
		}
		if sr.Gaps[i] != raw {
			sr.Changed = true
		}
	}
	return sr, nil
}
