// Finding emission for match-only check rules (SmPL star-lines and
// `// gocci:check` metadata headers). A check rule goes through the ordinary
// match pipeline — same matcher, same environments, same dots engines — but
// instead of recording edits it records analysis.Findings, so the engine
// "skips render/splice" simply by having nothing to render. Positions are
// taken from a bound position metavariable when the rule declares one, else
// from the first starred token of the pattern, else from the match's first
// code token; the finding additionally carries the enclosing function's
// identity hash and the anchor's function-relative token offset, the
// position-independent pair the baseline and the per-function cache key on.
package core

import (
	"strings"

	"repro/internal/analysis"
	"repro/internal/cast"
	"repro/internal/match"
	"repro/internal/smpl"
)

// checkMeta resolves a check rule's effective metadata, defaulting star
// rules without a gocci:check header to a warning named after the rule.
func checkMeta(rule *smpl.Rule) (id, severity, msg string) {
	if rule.Check != nil {
		id, severity, msg = rule.Check.ID, rule.Check.Severity, rule.Check.Msg
	}
	if id == "" {
		id = rule.Name
	}
	if severity == "" {
		severity = analysis.SeverityWarning
	}
	return id, severity, msg
}

// findingAnchor picks the report anchor: position metavariable, first
// starred token (mapped through the match's correspondence pairs), or the
// match's first code token.
func findingAnchor(rule *smpl.Rule, mt *match.Match, env match.Env, fileName string) int {
	for _, md := range rule.Metas {
		if md.Kind != cast.MetaPosKind {
			continue
		}
		if b, ok := env[md.Name]; ok && b.Kind == cast.MetaPosKind && b.TokIdx >= 0 && b.File == fileName {
			return b.TokIdx
		}
	}
	if si := rule.Pattern.FirstStarToken(); si >= 0 {
		for _, pr := range mt.Corr {
			if pr.PF <= si && si <= pr.PL {
				ci := pr.CF + (si - pr.PF)
				if ci > pr.CL {
					ci = pr.CL
				}
				return ci
			}
		}
	}
	return mt.First
}

// makeFinding assembles the finding for one check-rule match. segs may be
// nil (a file with no function definitions); src is the file's full text,
// the identity fallback for such files.
func makeFinding(rule *smpl.Rule, mt *match.Match, env match.Env, file *cast.File, segs *cast.Segmentation, src string) analysis.Finding {
	id, severity, msg := checkMeta(rule)
	if msg == "" {
		msg = "rule " + rule.Name + " matched"
	} else {
		msg = substitute(msg, env)
	}
	anchor := findingAnchor(rule, mt, env, file.Name)
	toks := file.Toks.Tokens
	if anchor < 0 || anchor >= len(toks) {
		anchor = 0
	}
	pos := toks[anchor].Pos
	f := analysis.Finding{
		Check:    id,
		Severity: severity,
		File:     file.Name,
		Line:     pos.Line,
		Col:      pos.Col,
		Message:  msg,
		Rule:     rule.Name,
	}
	for name, b := range env {
		if strings.Contains(name, ".") || b.Kind == cast.MetaPosKind {
			continue
		}
		if f.Bindings == nil {
			f.Bindings = map[string]string{}
		}
		f.Bindings[name] = b.Text
	}
	if segs == nil {
		f.FuncHash = analysis.FuncKey(src)
		f.TokOff = anchor
		return f
	}
	for i := range segs.Funcs {
		fs := &segs.Funcs[i]
		if anchor >= fs.First && anchor <= fs.Last {
			f.Func = fs.Name
			f.FuncHash = analysis.FuncKey(fs.Identity())
			f.TokOff = anchor - fs.First
			return f
		}
	}
	f.FuncHash = analysis.FuncKey(segs.ResidueIdentity())
	f.TokOff = segs.ResidueOffset(anchor)
	return f
}
