package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/cparse"
	"repro/internal/smpl"
)

// Acceptance: a pattern whose anchors sit on two different if/else arms —
// unreachable for the sequence matcher — matches and transforms correctly
// through the CFG dots engine.
func TestCFGEngineCrossBranchTransform(t *testing.T) {
	patch := `@r@
expression E;
@@
- prepare(E);
+ prepare_v2(E);
... when != giveup()
- commit(E);
+ commit_v2(E);
`
	src := `void f(int x, int v){
	if (x) {
		prepare(v);
		stage(v);
	} else {
		fallback(v);
	}
	commit(v);
}
`
	res, out := run(t, patch, src, Options{SeqDots: true})
	if res.Matched["r"] {
		t.Fatal("sequence matcher must not reach across branch arms")
	}
	res, out = run(t, patch, src, Options{})
	if !res.Matched["r"] || res.MatchCount["r"] != 1 {
		t.Fatalf("CFG engine: matched=%v count=%d want 1 match", res.Matched["r"], res.MatchCount["r"])
	}
	for _, want := range []string{"prepare_v2(v);", "commit_v2(v);", "stage(v);", "fallback(v);"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	for _, gone := range []string{"prepare(v);", "commit(v);"} {
		if strings.Contains(out, gone) {
			t.Errorf("output still contains %q:\n%s", gone, out)
		}
	}
	// The constraint still guards the traversed path.
	poisoned := strings.Replace(src, "stage(v);", "giveup();", 1)
	res, _ = run(t, patch, poisoned, Options{})
	if res.Matched["r"] {
		t.Error("giveup() on the traversed path must veto the match")
	}
}

// straightCorpus generates flat function bodies (no branches, no loops):
// the domain where the two dots engines must agree byte for byte.
func straightCorpus(seed int64, funcs int) string {
	r := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	for f := 0; f < funcs; f++ {
		fmt.Fprintf(&sb, "void sl_%d(int n, double *a) {\n", f)
		for s, stmts := 0, r.Intn(7)+3; s < stmts; s++ {
			switch r.Intn(4) {
			case 0:
				fmt.Fprintf(&sb, "\tlock(a[%d]);\n", r.Intn(3))
			case 1:
				fmt.Fprintf(&sb, "\twork(n, %d);\n", r.Intn(9))
			case 2:
				fmt.Fprintf(&sb, "\ttouch();\n")
			case 3:
				fmt.Fprintf(&sb, "\tunlock(a[%d]);\n", r.Intn(3))
			}
		}
		sb.WriteString("}\n\n")
	}
	return sb.String()
}

// Parity: on straight-line code the CFG engine's transformed output is
// byte-identical to the sequence matcher's, for matching and transforming
// patterns alike.
func TestSeqCFGEngineOutputParity(t *testing.T) {
	patches := []string{
		"@r@\nexpression E;\n@@\n- lock(E);\n+ lock_v2(E);\n... when != touch()\n- unlock(E);\n+ unlock_v2(E);\n",
		"@r@\nexpression E;\n@@\nlock(E);\n...\nunlock(E);\n+ audit(E);\n",
		"@r@\nexpression E;\nexpression F;\n@@\n... when != work(E, 3)\n- unlock(F);\n+ release(F);\n",
	}
	for pi, patchText := range patches {
		for seed := int64(0); seed < 12; seed++ {
			src := straightCorpus(seed*31+int64(pi), 3)
			_, cfgOut := run(t, patchText, src, Options{})
			_, seqOut := run(t, patchText, src, Options{SeqDots: true})
			if cfgOut != seqOut {
				t.Fatalf("patch %d seed %d: outputs differ\n--- cfg ---\n%s\n--- seq ---\n%s\n--- src ---\n%s",
					pi, seed, cfgOut, seqOut, src)
			}
		}
	}
}

// The full `when` family flows end to end: quantifiers parse in a patch
// and gate the engine's matches.
func TestEngineWhenQuantifiers(t *testing.T) {
	src := `void f(int x){
	begin();
	if (x) { poison(); }
	end();
}
`
	cases := []struct {
		when string
		want bool
	}{
		{"... when != poison()", true}, // exists: else path is clean
		{"... when exists when != poison()", true},
		{"... when strict when != poison()", false}, // some path is dirty
		{"... when forall when != poison()", false},
		{"... when any", true},
	}
	for _, tc := range cases {
		patch := "@r@\n@@\nbegin();\n" + tc.when + "\nend();\n"
		res, _ := run(t, patch, src, Options{})
		if res.Matched["r"] != tc.want {
			t.Errorf("%q: matched=%v want %v", tc.when, res.Matched["r"], tc.want)
		}
	}
}

// `when strict`/`when forall` must never silently degrade to existential
// matching: patterns the CFG engine cannot take (statement-list
// metavariables, --seq-dots) and nested quantified dots are run-time
// errors, not weaker matches.
func TestWhenQuantifierNeverSilentlyDegrades(t *testing.T) {
	parse := func(t *testing.T, text string) *smpl.Patch {
		t.Helper()
		p, err := smpl.ParsePatch("q.cocci", text)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	runErr := func(t *testing.T, patch string, opts Options) error {
		t.Helper()
		eng := New(parse(t, patch), opts)
		_, err := eng.Run([]SourceFile{{Name: "q.c", Src: "void f(int x){ lock(); if (x) return; work(); unlock(); }"}})
		return err
	}
	strictPatch := "@r@\n@@\nlock();\n... when strict\nunlock();\n"
	fallbackPatch := "@r@\nstatement list S;\n@@\nlock();\n... when strict\nS\nunlock();\n"
	nestedPatch := "@r@\nexpression C;\n@@\nif (C) { ... when forall\nunlock(); }\n"
	if err := runErr(t, strictPatch, Options{}); err != nil {
		t.Errorf("top-level strict under the CFG engine must run: %v", err)
	}
	for name, tc := range map[string]struct {
		patch string
		opts  Options
	}{
		"seq-dots":           {strictPatch, Options{SeqDots: true}},
		"stmt-list-fallback": {fallbackPatch, Options{}},
		"nested":             {nestedPatch, Options{}},
	} {
		err := runErr(t, tc.patch, tc.opts)
		if err == nil || !strings.Contains(err.Error(), "requires the CFG dots engine") {
			t.Errorf("%s: want quantifier error, got %v", name, err)
		}
	}
}

// Adjacent `...` statements have no defined constraint semantics and are
// rejected when the pattern compiles.
func TestAdjacentDotsRejected(t *testing.T) {
	bad := []string{
		"@r@\n@@\na();\n... when exists\n... when forall\nb();\n",
		"@r@\nexpression C;\n@@\nif (C) { ...\n...\nb(); }\n",
	}
	for _, text := range bad {
		if _, err := smpl.ParsePatch("adj.cocci", text); err == nil ||
			!strings.Contains(err.Error(), "adjacent `...`") {
			t.Errorf("%q: want adjacent-dots error, got %v", text, err)
		}
	}
}

// BenchmarkCFGCache quantifies hoisting cfg.Build out of the per-match
// path: one match-dense function, checked with the legacy sequence matcher
// plus CTL verification (one graph per function per file, cached on
// fileState) against the per-match rebuild the verifier used to do.
func BenchmarkCFGCache(b *testing.B) {
	const matches = 60
	var sb strings.Builder
	sb.WriteString("void dense(int x) {\n")
	for i := 0; i < matches; i++ {
		fmt.Fprintf(&sb, "\tlock();\n\twork(%d);\n\tunlock();\n", i)
	}
	sb.WriteString("}\n")
	src := sb.String()
	patchText := "@r@\n@@\nlock();\n... when != forbidden()\nunlock();\n"
	p, err := smpl.ParsePatch("b.cocci", patchText)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("cached", func(b *testing.B) {
		opts := Options{SeqDots: true, UseCTL: true}
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			eng := New(p, opts)
			res, err := eng.Run([]SourceFile{{Name: "d.c", Src: src}})
			if err != nil {
				b.Fatal(err)
			}
			if res.MatchCount["r"] != matches {
				b.Fatalf("matches=%d want %d", res.MatchCount["r"], matches)
			}
		}
	})
	b.Run("rebuild-per-match", func(b *testing.B) {
		// What verifyCTL cost before the fileState cache: one cfg.Build per
		// match on top of the cached run's work.
		f, err := cparse.Parse("d.c", src, cparse.Options{})
		if err != nil {
			b.Fatal(err)
		}
		fd := f.Funcs()[0]
		opts := Options{SeqDots: true, UseCTL: true}
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			eng := New(p, opts)
			if _, err := eng.Run([]SourceFile{{Name: "d.c", Src: src}}); err != nil {
				b.Fatal(err)
			}
			for m := 1; m < matches; m++ { // the cached run already built one
				cfg.Build(fd)
			}
		}
	})
}
