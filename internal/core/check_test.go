package core

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cast"
	"repro/internal/cparse"
	"repro/internal/smpl"
)

const checkSrc = `int setup(int n) {
    cudaMalloc(&p, n);
    return 0;
}

int teardown(void) {
    cudaFree(p);
    return 0;
}
`

func TestCheckRuleEmitsFindings(t *testing.T) {
	res, out := run(t, `// gocci:check id=cuda-malloc-unchecked severity=error msg="return value of cudaMalloc(E, n) is ignored"
@unchecked@
expression E, n;
@@
* cudaMalloc(E, n);
`, checkSrc, Options{})
	if out != checkSrc {
		t.Fatalf("check rule rewrote the source:\n%s", out)
	}
	if len(res.Findings) != 1 {
		t.Fatalf("findings = %+v, want 1", res.Findings)
	}
	f := res.Findings[0]
	if f.Check != "cuda-malloc-unchecked" || f.Severity != "error" || f.Rule != "unchecked" {
		t.Fatalf("finding metadata wrong: %+v", f)
	}
	if f.File != "t.c" || f.Line != 2 || f.Col != 5 {
		t.Fatalf("finding anchored at %s:%d:%d, want t.c:2:5", f.File, f.Line, f.Col)
	}
	if f.Func != "setup" || f.FuncHash == "" {
		t.Fatalf("finding function identity wrong: %+v", f)
	}
	if want := "return value of cudaMalloc(&p, n) is ignored"; f.Message != want {
		t.Fatalf("message = %q, want %q", f.Message, want)
	}
	if f.Bindings["E"] != "&p" {
		t.Fatalf("bindings = %v", f.Bindings)
	}
	if res.MatchCount["unchecked"] != 1 {
		t.Fatalf("MatchCount = %v", res.MatchCount)
	}
}

func TestCheckPositionMetavarAnchor(t *testing.T) {
	res, _ := run(t, `// gocci:check id=free-site severity=info msg="free here"
@f@
identifier fn = {cudaFree};
expression E;
position p;
@@
fn@p(E)
`, checkSrc, Options{})
	if len(res.Findings) != 1 {
		t.Fatalf("findings = %+v", res.Findings)
	}
	f := res.Findings[0]
	if f.Line != 7 || f.Func != "teardown" {
		t.Fatalf("position-metavar anchor at line %d func %q, want 7/teardown", f.Line, f.Func)
	}
	if _, ok := f.Bindings["p"]; ok {
		t.Fatalf("position binding leaked into Bindings: %v", f.Bindings)
	}
}

func TestStarRuleDefaultsAndDedupe(t *testing.T) {
	// No gocci:check header: id defaults to the rule name, severity to
	// warning, and the message is synthesized.
	res, _ := run(t, "@lone@\nexpression E;\n@@\n* cudaFree(E);\n", checkSrc, Options{})
	if len(res.Findings) != 1 {
		t.Fatalf("findings = %+v", res.Findings)
	}
	f := res.Findings[0]
	if f.Check != "lone" || f.Severity != analysis.SeverityWarning {
		t.Fatalf("defaults wrong: %+v", f)
	}
	if !strings.Contains(f.Message, "lone") {
		t.Fatalf("synthesized message %q", f.Message)
	}
}

// The function-granular segment path must produce the same findings as the
// file-level path, with identical baseline keys.
func TestRunSegmentFindingsMatchFileLevel(t *testing.T) {
	patch, err := smpl.ParsePatch("seg.cocci",
		"// gocci:check id=seg-check severity=warning msg=\"call of cudaMalloc\"\n@s@\nexpression E, n;\n@@\n* cudaMalloc(E, n);\n")
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(patch)
	if !FunctionLocal(c, Options{}) {
		t.Fatal("single-rule check patch should be function-local")
	}
	eng := NewCompiled(c, Options{})
	fileRes, err := eng.Run([]SourceFile{{Name: "s.c", Src: checkSrc}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fileRes.Findings) != 1 {
		t.Fatalf("file-level findings = %+v", fileRes.Findings)
	}

	cf, err := cparse.Parse("s.c", checkSrc, cparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	segs := cast.SegmentFile(cf)
	if segs == nil {
		t.Fatal("SegmentFile returned nil")
	}
	var segFindings []analysis.Finding
	for fn := -1; fn < len(segs.Funcs); fn++ {
		sr, err := eng.RunSegment(SegmentJob{Name: "s.c", Src: checkSrc, File: cf, Segs: segs, Fn: fn})
		if err != nil {
			t.Fatal(err)
		}
		if sr.Escaped {
			t.Fatalf("segment %d escaped", fn)
		}
		segFindings = append(segFindings, sr.Findings...)
	}
	if len(segFindings) != 1 {
		t.Fatalf("segment findings = %+v", segFindings)
	}
	a, b := fileRes.Findings[0], segFindings[0]
	if a.BaselineKey() != b.BaselineKey() {
		t.Fatalf("baseline keys differ:\nfile:    %s\nsegment: %s", a.BaselineKey(), b.BaselineKey())
	}
	if a.Line != b.Line || a.Col != b.Col || a.Func != b.Func {
		t.Fatalf("positions differ: file %+v segment %+v", a, b)
	}
}

// A position metavariable keeps a check rule function-local, but still
// blocks the segment path for transform rules.
func TestFunctionLocalPositionGate(t *testing.T) {
	check, err := smpl.ParsePatch("c.cocci",
		"// gocci:check id=x\n@r@\nidentifier fn = {cudaFree};\nexpression E;\nposition p;\n@@\nfn@p(E)\n")
	if err != nil {
		t.Fatal(err)
	}
	if !FunctionLocal(Compile(check), Options{}) {
		t.Fatal("check rule with position metavar should stay function-local")
	}
	xform, err := smpl.ParsePatch("x.cocci",
		"@r@\nidentifier fn = {cudaFree};\nexpression E;\nposition p;\n@@\n- fn@p(E);\n+ hipFree(E);\n")
	if err != nil {
		t.Fatal(err)
	}
	if FunctionLocal(Compile(xform), Options{}) {
		t.Fatal("transform rule with position metavar must not be function-local")
	}
}
