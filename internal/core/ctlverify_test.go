package core

import (
	"strings"
	"testing"
)

// Path sensitivity: a forbidden statement inside only one branch of an if
// still leaves a clean path. The CFG dots engine (the default) matches
// along that clean path; the legacy sequence matcher rejects, because the
// skipped if-statement's subtree contains the forbidden call — and the CTL
// post-filter only ever tightens the sequence matcher, so it stays
// rejected there too.
func TestCTLDotsBranchSensitivity(t *testing.T) {
	patch := `@r@
@@
- lock();
... when != touch()
- unlock();
+ scoped_guard();
`
	src := `void f(int x){
	lock();
	if (x) { touch(); }
	unlock();
}
`
	res, out := runWith(t, patch, src, Options{})
	if !res.Matched["r"] {
		t.Error("CFG dots engine should match along the touch()-free else path")
	}
	if !strings.Contains(out, "scoped_guard();") || strings.Contains(out, "unlock();") {
		t.Errorf("transform not applied along the clean path:\n%s", out)
	}
	res, _ = runWith(t, patch, src, Options{SeqDots: true})
	if res.Matched["r"] {
		t.Error("sequence matcher should reject: skipped if-statement contains touch()")
	}
	res, _ = runWith(t, patch, src, Options{SeqDots: true, UseCTL: true})
	if res.Matched["r"] {
		t.Error("CTL filter must not loosen the syntactic pre-filter")
	}
}

func TestCTLAcceptsCleanPath(t *testing.T) {
	patch := `@r@
@@
- lock();
... when != bad()
- unlock();
+ scoped_guard();
`
	src := "void f(void){\n\tlock();\n\twork();\n\tunlock();\n}\n"
	res, out := runWith(t, patch, src, Options{UseCTL: true})
	if !res.Matched["r"] {
		t.Fatal("clean path must match under CTL")
	}
	if !strings.Contains(out, "scoped_guard();") {
		t.Errorf("transform missing:\n%s", out)
	}
}

func runWith(t *testing.T, patch, src string, opts Options) (*Result, string) {
	t.Helper()
	return run(t, patch, src, opts)
}
