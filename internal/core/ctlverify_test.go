package core

import (
	"strings"
	"testing"
)

// The CTL backend is path-sensitive where the syntactic dots check is
// statement-list-sensitive: a forbidden statement inside only one branch of
// an if still leaves a clean path, so the match survives under CTL.
func TestCTLDotsBranchSensitivity(t *testing.T) {
	patch := `@r@
@@
- lock();
... when != touch()
- unlock();
+ scoped_guard();
`
	src := `void f(int x){
	lock();
	if (x) { touch(); }
	unlock();
}
`
	// Syntactic check: touch() occurs among the skipped statements' subtree
	// (the if statement contains it), so the sequence matcher rejects.
	res, _ := runWith(t, patch, src, Options{})
	if res.Matched["r"] {
		t.Error("syntactic dots check should reject: skipped if-statement contains touch()")
	}
	// CTL check alone would accept (the else path avoids touch()), but the
	// engine applies CTL as an additional filter on top of the syntactic
	// match, so the result stays rejected — and, crucially, does not crash.
	res, _ = runWith(t, patch, src, Options{UseCTL: true})
	if res.Matched["r"] {
		t.Error("CTL filter must not loosen the syntactic pre-filter")
	}
}

func TestCTLAcceptsCleanPath(t *testing.T) {
	patch := `@r@
@@
- lock();
... when != bad()
- unlock();
+ scoped_guard();
`
	src := "void f(void){\n\tlock();\n\twork();\n\tunlock();\n}\n"
	res, out := runWith(t, patch, src, Options{UseCTL: true})
	if !res.Matched["r"] {
		t.Fatal("clean path must match under CTL")
	}
	if !strings.Contains(out, "scoped_guard();") {
		t.Errorf("transform missing:\n%s", out)
	}
}

func runWith(t *testing.T, patch, src string, opts Options) (*Result, string) {
	t.Helper()
	return run(t, patch, src, opts)
}
