package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/smpl"
)

func mustPatch(t *testing.T, text string) *smpl.Patch {
	t.Helper()
	p, err := smpl.ParsePatch("t.cocci", text)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMultiFileRun(t *testing.T) {
	p := mustPatch(t, "@r@\nexpression list el;\n@@\n- legacy(el)\n+ modern(el)\n")
	res, err := New(p, Options{}).Run([]SourceFile{
		{Name: "a.c", Src: "void f(void){ legacy(1); }\n"},
		{Name: "b.c", Src: "void g(void){ legacy(2); legacy(3); }\n"},
		{Name: "c.c", Src: "void h(void){ untouched(); }\n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchCount["r"] != 3 {
		t.Errorf("matches=%d want 3", res.MatchCount["r"])
	}
	if got := res.Changed(); len(got) != 2 || got[0] != "a.c" || got[1] != "b.c" {
		t.Errorf("changed=%v", got)
	}
	if res.Diffs["c.c"] != "" {
		t.Error("untouched file has a diff")
	}
}

// Cross-file rule chaining: a binding found in one file drives a
// transformation in another (the multi-file nature of real refactorings).
func TestCrossFileInheritance(t *testing.T) {
	p := mustPatch(t, `@def@
identifier f =~ "deprecated";
type T;
parameter list PL;
@@
T f(PL) { ... }

@use@
identifier def.f;
expression list el;
@@
- f(el)
+ shimmed(el)
`)
	res, err := New(p, Options{}).Run([]SourceFile{
		{Name: "lib.c", Src: "int deprecated_sum(int a, int b) { return a + b; }\n"},
		{Name: "app.c", Src: "void m(void){ int s = deprecated_sum(1, 2); }\n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Outputs["app.c"], "shimmed(1, 2)") {
		t.Errorf("cross-file rename failed:\n%s", res.Outputs["app.c"])
	}
}

func TestScriptErrorPropagates(t *testing.T) {
	p := mustPatch(t, `@m@
identifier fn;
@@
fn(...)

@script:go boom@
fn << m.fn;
out;
@@
(go)
`)
	eng := New(p, Options{})
	eng.RegisterScript("boom", func(in map[string]string) (map[string]string, error) {
		return nil, errors.New("deliberate failure")
	})
	_, err := eng.Run([]SourceFile{{Name: "a.c", Src: "void f(void){ g(); }\n"}})
	if err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Errorf("script error lost: %v", err)
	}
}

func TestMinipyErrorPropagates(t *testing.T) {
	p := mustPatch(t, "@initialize:python@ @@\nX = undefined_name\n\n@r@\n@@\n- f();\n")
	_, err := New(p, Options{}).Run([]SourceFile{{Name: "a.c", Src: "void g(void){ f(); }\n"}})
	if err == nil || !strings.Contains(err.Error(), "unbound name") {
		t.Errorf("minipy error lost: %v", err)
	}
}

func TestParseErrorNamesFile(t *testing.T) {
	p := mustPatch(t, "@r@\n@@\n- f();\n")
	_, err := New(p, Options{}).Run([]SourceFile{{Name: "broken.c", Src: "void f( {"}})
	if err == nil || !strings.Contains(err.Error(), "broken.c") {
		t.Errorf("parse error missing file name: %v", err)
	}
}

func TestMaxEnvsCap(t *testing.T) {
	// a pure-match rule over many calls explodes the env set; the cap keeps
	// it bounded without failing the run.
	var sb strings.Builder
	sb.WriteString("void f(void){\n")
	for i := 0; i < 50; i++ {
		sb.WriteString("\tcall_site();\n")
	}
	sb.WriteString("}\n")
	p := mustPatch(t, "@m@\nidentifier fn;\nposition pos;\n@@\nfn@pos(...)\n")
	res, err := New(p, Options{MaxEnvs: 10}).Run([]SourceFile{{Name: "a.c", Src: sb.String()}})
	if err != nil {
		t.Fatal(err)
	}
	if res.EnvCount > 11 {
		t.Errorf("env cap not applied: %d", res.EnvCount)
	}
}

func TestFreshIdentifierCollision(t *testing.T) {
	// two kernels with the same name in different files must get distinct
	// fresh clones
	p := mustPatch(t, `@@
type T;
identifier f =~ "kernel";
parameter list PL;
statement list SL;
fresh identifier fc = "fast_" ## f;
@@
+ T fc (PL) { SL }
T f (PL) { SL }
`)
	res, err := New(p, Options{}).Run([]SourceFile{
		{Name: "a.c", Src: "int kernel_x(int v) { return v; }\n"},
		{Name: "b.c", Src: "int kernel_x(int w) { return w; }\n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.Outputs["a.c"], res.Outputs["b.c"]
	if !strings.Contains(a, "fast_kernel_x") {
		t.Errorf("a.c missing clone:\n%s", a)
	}
	if !strings.Contains(b, "fast_kernel_x_1") {
		t.Errorf("b.c should get a de-collided name:\n%s", b)
	}
}

func TestFinalizeRuleRuns(t *testing.T) {
	p := mustPatch(t, `@r@
@@
- f();

@finalize:go@
@@
(go)
`)
	ran := false
	eng := New(p, Options{})
	// finalize rules have generated names; find it
	var finalName string
	for _, r := range p.Rules {
		if r.Kind == smpl.FinalizeRule {
			finalName = r.Name
		}
	}
	eng.RegisterScript(finalName, func(in map[string]string) (map[string]string, error) {
		ran = true
		return nil, nil
	})
	if _, err := eng.Run([]SourceFile{{Name: "a.c", Src: "void g(void){ f(); }\n"}}); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("finalize rule did not run")
	}
}

func TestOverlappingMatchesApplyOnce(t *testing.T) {
	// two rules delete overlapping regions; the second must skip rather
	// than corrupt
	p := mustPatch(t, `@a@
@@
- f(1);

@b@
expression e;
@@
- f(e);
`)
	res, err := New(p, Options{}).Run([]SourceFile{{Name: "a.c", Src: "void g(void){ f(1); f(2); }\n"}})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outputs["a.c"]
	if strings.Contains(out, "f(1)") || strings.Contains(out, "f(2)") {
		t.Errorf("deletions incomplete:\n%s", out)
	}
}

func TestEmptyFileSet(t *testing.T) {
	p := mustPatch(t, "@r@\n@@\n- f();\n")
	res, err := New(p, Options{}).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 0 || len(res.Changed()) != 0 {
		t.Errorf("unexpected outputs: %+v", res)
	}
}

func TestInsertOnlyRuleIsStable(t *testing.T) {
	// insertion-only patches applied to their own output insert again —
	// users chain rules; verify the engine at least produces valid source
	// both times and the count doubles predictably.
	p := mustPatch(t, "@r@\n@@\n#pragma omp ...\n{\n+ PROLOGUE();\n...\n}\n")
	src := "void f(void){\n#pragma omp parallel\n{\nwork();\n}\n}\n"
	res1, err := New(p, Options{}).Run([]SourceFile{{Name: "a.c", Src: src}})
	if err != nil {
		t.Fatal(err)
	}
	out1 := res1.Outputs["a.c"]
	if strings.Count(out1, "PROLOGUE();") != 1 {
		t.Fatalf("first application:\n%s", out1)
	}
	res2, err := New(p, Options{}).Run([]SourceFile{{Name: "a.c", Src: out1}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(res2.Outputs["a.c"], "PROLOGUE();") != 2 {
		t.Errorf("second application:\n%s", res2.Outputs["a.c"])
	}
}
