package core

import (
	"strings"
	"testing"

	"repro/internal/smpl"
)

// The paper's librsb story: the compiler-bug workaround patch is triggered
// conditionally (per compiler version) from the build system. Virtual rules
// are the SmPL mechanism for that.
const virtualPatch = `virtual fix_gcc;

@workaround depends on fix_gcc@
identifier i =~ "rsb__BCSR";
type T;
@@
+ #pragma GCC push_options
+ #pragma GCC optimize "-O3", "-fno-tree-loop-vectorize"
T i(...)
{
...
}
+ #pragma GCC pop_options
`

const virtualSrc = "int rsb__BCSR_spmv(const void *a) { return 0; }\n"

func TestVirtualRuleDisabledByDefault(t *testing.T) {
	p, err := smpl.ParsePatch("v.cocci", virtualPatch)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Virtuals) != 1 || p.Virtuals[0] != "fix_gcc" {
		t.Fatalf("virtuals=%v", p.Virtuals)
	}
	res, err := New(p, Options{}).Run([]SourceFile{{Name: "a.c", Src: virtualSrc}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Outputs["a.c"], "push_options") {
		t.Error("rule ran although fix_gcc was not defined")
	}
}

func TestVirtualRuleEnabledByDefine(t *testing.T) {
	p, err := smpl.ParsePatch("v.cocci", virtualPatch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(p, Options{Defines: []string{"fix_gcc"}}).
		Run([]SourceFile{{Name: "a.c", Src: virtualSrc}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Outputs["a.c"], "#pragma GCC push_options") {
		t.Errorf("workaround not applied:\n%s", res.Outputs["a.c"])
	}
}

func TestUndeclaredDefineRejected(t *testing.T) {
	p, err := smpl.ParsePatch("v.cocci", virtualPatch)
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(p, Options{Defines: []string{"typo_name"}}).
		Run([]SourceFile{{Name: "a.c", Src: virtualSrc}})
	if err == nil || !strings.Contains(err.Error(), "not declared virtual") {
		t.Errorf("want undeclared-define error, got %v", err)
	}
}

func TestNegatedVirtualDependency(t *testing.T) {
	patch := `virtual legacy;

@modern depends on !legacy@
@@
- old_call();
+ new_call();
`
	p, err := smpl.ParsePatch("n.cocci", patch)
	if err != nil {
		t.Fatal(err)
	}
	src := "void f(void){ old_call(); }\n"
	// Without the define: !legacy holds, rule fires.
	res, err := New(p, Options{}).Run([]SourceFile{{Name: "a.c", Src: src}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Outputs["a.c"], "new_call();") {
		t.Error("rule should fire when legacy is undefined")
	}
	// With the define: suppressed.
	res, err = New(p, Options{Defines: []string{"legacy"}}).
		Run([]SourceFile{{Name: "a.c", Src: src}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Outputs["a.c"], "new_call();") {
		t.Error("rule must not fire when legacy is defined")
	}
}
