package core

import (
	"fmt"

	"repro/internal/index"
	"repro/internal/smpl"
)

// ValidateDefines checks that every define names a virtual declared in the
// patch — the misconfiguration Engine.Run rejects. Callers that apply one
// patch many times (the batch subsystem, CLI front ends) validate once up
// front instead of reporting the same error per file.
func ValidateDefines(patch *smpl.Patch, defines []string) error {
	declared := map[string]bool{}
	for _, v := range patch.Virtuals {
		declared[v] = true
	}
	for _, d := range defines {
		if !declared[d] {
			return fmt.Errorf("define %q is not declared virtual in %s", d, patch.Name)
		}
	}
	return nil
}

// Compiled holds the read-only artifacts an engine derives from a parsed
// patch before matching: per-rule metavariable lookup tables and inheritance
// maps. Building them is cheap for one file but adds up over a large corpus,
// and more importantly a Compiled value is immutable after Compile returns,
// so one instance can back any number of Engines running concurrently — the
// batch subsystem compiles once and shares the result across its worker
// pool.
type Compiled struct {
	// Patch is the parsed patch the artifacts were derived from. Treated as
	// read-only from here on.
	Patch *smpl.Patch
	// Prefilter is the required-atom index derived from the patch: it
	// answers from raw bytes whether any rule could fire on a file, letting
	// the batch subsystem skip parsing files that provably cannot match.
	Prefilter *index.Index
	// Keyed by rule identity, not name: the parser does not reject
	// duplicate rule names, and conflating two rules' metavariable tables
	// would silently corrupt matching.
	rules map[*smpl.Rule]*compiledRule
}

// compiledRule caches what runMatch would otherwise rebuild per run.
type compiledRule struct {
	metas *smpl.MetaTable
	// inherits maps a local metavariable name to the qualified
	// "rule.remote" environment key it is bound from.
	inherits map[string]string
}

// Compile derives the per-rule matching artifacts from a parsed patch. The
// result is safe for concurrent use by multiple Engines.
func Compile(patch *smpl.Patch) *Compiled {
	c := &Compiled{
		Patch:     patch,
		Prefilter: index.Build(patch),
		rules:     make(map[*smpl.Rule]*compiledRule, len(patch.Rules)),
	}
	for _, rule := range patch.Rules {
		cr := &compiledRule{metas: smpl.NewMetaTable(rule.Metas), inherits: map[string]string{}}
		for _, md := range rule.Metas {
			if md.FromRule != "" {
				cr.inherits[md.Name] = md.FromRule + "." + md.RemoteName
			}
		}
		c.rules[rule] = cr
	}
	return c
}

// rule returns the compiled artifacts for a rule.
func (c *Compiled) rule(r *smpl.Rule) *compiledRule {
	return c.rules[r]
}
