package core

import (
	"strings"

	"repro/internal/ctoken"
	"repro/internal/match"
	"repro/internal/smpl"
	"repro/internal/transform"
)

// applyMatch realises one match's transformation as token edits: minus
// pattern tokens delete their corresponding code tokens; plus blocks insert
// substituted text at anchors resolved through the match correspondence.
// It returns false (and records nothing) when the deletions would overlap
// edits already made by an earlier match.
func (e *Engine) applyMatch(st *fileState, pat *smpl.Pattern, mt *match.Match, env match.Env) bool {
	res := match.NewResolver(mt)
	toks := pat.Toks.Tokens

	// Collect deletions first so overlap can veto the whole match.
	type rng struct{ f, l int }
	var dels []rng
	seen := map[rng]bool{}
	for i := 0; i < len(toks)-1; i++ { // skip EOF
		if pat.TokenMark(i) != smpl.Minus {
			continue
		}
		for _, r := range res.Ranges(i) {
			if r[1] < r[0] {
				continue
			}
			k := rng{r[0], r[1]}
			if !seen[k] {
				seen[k] = true
				dels = append(dels, k)
			}
		}
	}
	for _, d := range dels {
		if st.ed.Overlaps(d.f, d.l) {
			return false
		}
	}
	for _, d := range dels {
		st.ed.DeleteRange(d.f, d.l)
	}

	// Plus blocks.
	for _, blk := range pat.PlusBlocks {
		text := substitute(strings.Join(blk.Text, "\n"), env)
		switch {
		case blk.AnchorLine >= 0 && pat.LineMarks[blk.AnchorLine] == smpl.Minus:
			// Replacement: insert at each code position where the anchor
			// line's first minus token was deleted.
			first, _ := lineTokens(pat, blk.AnchorLine)
			if first < 0 {
				continue
			}
			for _, r := range res.Ranges(first) {
				if r[0] < 0 {
					continue
				}
				// Own-line replacement only when the deleted range covers
				// whole lines; a partial-line deletion keeps the insertion
				// inline so the rest of the line stays attached.
				if tokenStartsLine(st, r[0]) && tokenEndsLine(st, r[1]) {
					st.ed.Insert(r[0], transform.BeforeOwnLine, text)
				} else {
					st.ed.Insert(r[0], transform.Inline, text)
				}
			}
		case blk.AnchorLine >= 0:
			// After a context line.
			_, last := lineTokens(pat, blk.AnchorLine)
			if last < 0 {
				continue
			}
			if code, ok := res.AnchorAfter(last); ok {
				st.ed.Insert(code, transform.AfterOwnLine, text)
			}
		case blk.FollowLine >= 0:
			first, _ := lineTokens(pat, blk.FollowLine)
			if first < 0 {
				continue
			}
			if code, ok := res.AnchorBefore(first, len(toks)); ok {
				st.ed.Insert(code, transform.BeforeOwnLine, text)
			}
		}
	}
	return true
}

// tokenStartsLine reports whether code token i begins its source line.
func tokenStartsLine(st *fileState, i int) bool {
	if i <= 0 {
		return true
	}
	return strings.Contains(st.file.Toks.Tokens[i].WS, "\n")
}

// tokenEndsLine reports whether code token i is the last on its source line.
func tokenEndsLine(st *fileState, i int) bool {
	toks := st.file.Toks.Tokens
	if i >= len(toks)-1 {
		return true
	}
	return strings.Contains(toks[i+1].WS, "\n")
}

// lineTokens returns the first and last pattern token index on the given
// body line (-1,-1 when the line holds no tokens).
func lineTokens(pat *smpl.Pattern, line int) (int, int) {
	first, last := -1, -1
	for i, t := range pat.Toks.Tokens {
		if t.Kind == ctoken.EOF {
			continue
		}
		if t.Pos.Line-1 == line {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	return first, last
}
