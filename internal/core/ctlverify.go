package core

import (
	"repro/internal/cast"
	"repro/internal/cfg"
	"repro/internal/ctl"
	"repro/internal/match"
	"repro/internal/smpl"
)

// verifyCTL re-checks a match's dots constraints against the control-flow
// graph: between the first and last matched statements there must exist a
// path on which no node matches any `when != e` expression. The sequence
// matcher already enforces the syntactic version of this; the CTL check adds
// path sensitivity across branches and loops, mirroring Coccinelle's
// CTL-VW semantics. It returns true when the match survives.
func (e *Engine) verifyCTL(st *fileState, rule *smpl.Rule, mt *match.Match) bool {
	constraints := dotsConstraints(rule.Pattern)
	if len(constraints) == 0 {
		return true
	}
	fd := enclosingFunc(st.file, mt.First)
	if fd == nil {
		return true
	}
	g := st.cfg(fd)
	from := nodeCovering(g, mt.First)
	to := nodeCovering(g, mt.Last)
	if from < 0 || to < 0 {
		return true
	}
	metas := e.compiled.rule(rule).metas
	avoid := func(n *cfg.Node) bool {
		if n.AST == nil {
			return false
		}
		f, l := n.AST.Span()
		// nodes inside the matched span are the anchors themselves
		if f >= mt.First && l <= mt.Last {
			if f == mt.First || l == mt.Last {
				return false
			}
		}
		// Probe branch headers too: a forbidden expression in an if/loop
		// condition sits on every path through the header, and used to be
		// invisible here (only Stmt-kind nodes were checked).
		for _, root := range n.ProbeNodes() {
			for _, ce := range constraints {
				if exprOccursIn(ce, root, metas, st.file, mt.Env) {
					return true
				}
			}
		}
		return false
	}
	toPred := func(n *cfg.Node) bool {
		if n.AST == nil {
			return false
		}
		f, l := n.AST.Span()
		return f <= mt.Last && mt.Last <= l
	}
	return ctl.PathWithout(g, from, toPred, avoid)
}

// dotsConstraints collects every `when != e` expression in the pattern.
func dotsConstraints(p *smpl.Pattern) []cast.Expr {
	var out []cast.Expr
	visit := func(n cast.Node) bool {
		if d, ok := n.(*cast.Dots); ok {
			out = append(out, d.WhenNot...)
		}
		return true
	}
	switch p.Kind {
	case smpl.ExprPattern:
		cast.Walk(p.Expr, visit)
	case smpl.StmtSeqPattern:
		for _, s := range p.Stmts {
			cast.Walk(s, visit)
		}
	case smpl.DeclPattern:
		for _, d := range p.Decls {
			cast.Walk(d, visit)
		}
	}
	return out
}

// quantifiedDots reports where `when strict`/`when forall` dots appear in
// the pattern: as top-level statement elements (decidable by the CFG path
// engine) or nested anywhere else (inside anchors, compounds, expressions
// — positions where matching is syntactic and the quantifier cannot be
// decided).
func quantifiedDots(p *smpl.Pattern) (topLevel, nested bool) {
	if p == nil {
		return false, false
	}
	top := map[*cast.Dots]bool{}
	if p.Kind == smpl.StmtSeqPattern {
		for _, s := range p.Stmts {
			if d, ok := s.(*cast.Dots); ok {
				top[d] = true
			}
		}
	}
	visit := func(n cast.Node) bool {
		d, ok := n.(*cast.Dots)
		if !ok || (!d.WhenStrict && !d.WhenForall) {
			return true
		}
		if top[d] {
			topLevel = true
		} else {
			nested = true
		}
		return true
	}
	switch p.Kind {
	case smpl.ExprPattern:
		cast.Walk(p.Expr, visit)
	case smpl.StmtSeqPattern:
		for _, s := range p.Stmts {
			cast.Walk(s, visit)
		}
	case smpl.DeclPattern:
		for _, d := range p.Decls {
			cast.Walk(d, visit)
		}
	}
	return topLevel, nested
}

// enclosingFunc finds the function whose token span contains tok.
func enclosingFunc(f *cast.File, tok int) *cast.FuncDef {
	for _, fd := range f.Funcs() {
		first, last := fd.Span()
		if first <= tok && tok <= last {
			return fd
		}
	}
	return nil
}

// nodeCovering finds the CFG node whose AST span contains the token.
func nodeCovering(g *cfg.Graph, tok int) int {
	best, bestW := -1, 1<<30
	for _, n := range g.Nodes {
		if n.AST == nil {
			continue
		}
		f, l := n.AST.Span()
		if f <= tok && tok <= l && l-f < bestW {
			best, bestW = n.ID, l-f
		}
	}
	return best
}

// exprOccursIn matches a pattern expression anywhere inside the node's
// subtree under the match environment.
func exprOccursIn(pe cast.Expr, root cast.Node, metas *smpl.MetaTable, file *cast.File, env match.Env) bool {
	probe := &match.Matcher{Metas: metas, Code: file, Inherited: env}
	return probe.ExprOccurs(pe, root)
}
