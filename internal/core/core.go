// Package core implements the semantic patch engine: it runs the rules of a
// parsed SmPL patch, in order, over a set of C/C++ source files. Match rules
// bind metavariables and record token edits; script rules transform bindings
// through the restricted Python interpreter or registered Go functions;
// environments flow from rule to rule exactly as in Coccinelle, keyed by
// rule-qualified metavariable names. Edited files are re-parsed lazily,
// just before the next match rule runs, so later rules match the patched
// code and a final rule's output never has to re-parse at all.
package core

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/cast"
	"repro/internal/cfg"
	"repro/internal/cparse"
	"repro/internal/diff"
	"repro/internal/match"
	"repro/internal/minipy"
	"repro/internal/obs"
	"repro/internal/smpl"
	"repro/internal/transform"
)

// Options configures an engine run.
type Options struct {
	CPlusPlus bool
	Std       int // 11, 17, 23
	CUDA      bool
	// UseCTL enables control-flow (CTL) verification of dots constraints in
	// addition to the syntactic check. It only affects patterns matched by
	// the legacy sequence matcher (SeqDots, or patterns the path engine
	// does not take): the CFG dots engine enforces path constraints itself.
	UseCTL bool
	// SeqDots selects the legacy syntactic sequence matcher for statement
	// dots instead of the default path-sensitive CFG engine. On
	// straight-line code the two produce identical results; the sequence
	// matcher cannot match anchors sitting on different branch arms or
	// across loop back-edges.
	SeqDots bool
	// MaxEnvs caps the environment set size (default 4096).
	MaxEnvs int
	// MaxMatchesPerRule caps matches per rule per file (default unlimited).
	MaxMatchesPerRule int
	// Defines sets virtual dependency names to true (spatch -D). Names not
	// declared `virtual` in the patch are rejected at Run time.
	Defines []string
}

// SourceFile is one input file.
type SourceFile struct {
	Name string
	Src  string
}

// ScriptFunc is a native Go replacement for a script rule body: it receives
// the rule's input bindings and returns its output bindings.
type ScriptFunc func(inputs map[string]string) (map[string]string, error)

// Result reports the outcome of a run.
type Result struct {
	// Outputs maps file name to transformed source (always present, equal
	// to the input when nothing matched).
	Outputs map[string]string
	// Diffs maps file name to a unified diff ("" when unchanged).
	Diffs map[string]string
	// Matched reports which rules matched at least once.
	Matched map[string]bool
	// MatchCount counts matches per rule.
	MatchCount map[string]int
	// EnvCount is the number of final environments.
	EnvCount int
	// EnvsTruncated reports that the environment set hit Options.MaxEnvs
	// and further matches were dropped: the outputs are valid but possibly
	// incomplete, and the caller should rerun with a larger cap.
	EnvsTruncated bool
	// Findings are the reports emitted by match-only check rules (star-line
	// bodies or gocci:check headers), deduplicated, in emission order.
	Findings []analysis.Finding
}

// Changed lists the names of files whose output differs from the input.
func (r *Result) Changed() []string {
	var out []string
	for name, d := range r.Diffs {
		if d != "" {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Engine applies one patch to source files.
type Engine struct {
	patch    *smpl.Patch
	compiled *Compiled
	opts     Options
	interp   *minipy.Interp
	hosts    map[string]ScriptFunc
	fresh    map[string]int
	trace    *obs.Track
}

// New creates an engine for a parsed patch.
func New(patch *smpl.Patch, opts Options) *Engine {
	return NewCompiled(Compile(patch), opts)
}

// NewCompiled creates an engine from pre-compiled patch artifacts. Multiple
// engines may share one Compiled value concurrently; each engine itself must
// only be used from one goroutine at a time.
func NewCompiled(c *Compiled, opts Options) *Engine {
	if opts.MaxEnvs == 0 {
		opts.MaxEnvs = 4096
	}
	return &Engine{
		patch:    c.Patch,
		compiled: c,
		opts:     opts,
		interp:   minipy.New(),
		hosts:    map[string]ScriptFunc{},
		fresh:    map[string]int{},
	}
}

// Reset clears the engine's accumulated run state — fresh-identifier
// counters and script-interpreter globals — so the next Run behaves exactly
// like a run on a newly constructed engine. Registered Go script handlers
// are kept. Batch workers call this between files so that results do not
// depend on which worker processed which file.
func (e *Engine) Reset() {
	e.interp = minipy.New()
	e.fresh = map[string]int{}
}

// RegisterScript installs a native Go handler for the named script rule,
// overriding the Python interpreter for that rule.
func (e *Engine) RegisterScript(ruleName string, fn ScriptFunc) {
	e.hosts[ruleName] = fn
}

// SetTrace attaches an observability track; the engine records parse, match
// (attributed per rule), cfg, and render spans on it. A nil track disables
// tracing; since a Track is single-goroutine, the engine must not be shared
// across goroutines while a track is set. RunSegment ignores this field and
// takes its track from the job, because segment jobs fan out goroutines over
// one shared engine.
func (e *Engine) SetTrace(tk *obs.Track) {
	e.trace = tk
}

// fileState tracks one file through the run.
type fileState struct {
	name  string
	src   string
	file  *cast.File
	ed    *transform.EditSet
	dirty bool
	trace *obs.Track
	// cfgs caches one control-flow graph per function for the current
	// parse. Both the CFG dots engine and the CTL verifier read through
	// cfg(); a reparse invalidates the cache with the tree. Before this
	// cache the CTL verifier rebuilt the graph per match — O(matches ×
	// function size) on match-dense files (BenchmarkCFGCache).
	cfgs map[*cast.FuncDef]*cfg.Graph
	// seg caches the file's function segmentation for finding identity;
	// built on the first check-rule match, invalidated with the parse.
	seg     *cast.Segmentation
	segDone bool
}

// segmentation lazily segments the current parse (nil for files without
// function definitions).
func (st *fileState) segmentation() *cast.Segmentation {
	if !st.segDone {
		sp := st.trace.Start(obs.StageSegment).File(st.name)
		st.seg = cast.SegmentFile(st.file)
		sp.End()
		st.segDone = true
	}
	return st.seg
}

// cfg returns the cached control-flow graph for a function of this file's
// current parse, building it on first use.
func (st *fileState) cfg(fd *cast.FuncDef) *cfg.Graph {
	if g, ok := st.cfgs[fd]; ok {
		return g
	}
	if st.cfgs == nil {
		st.cfgs = map[*cast.FuncDef]*cfg.Graph{}
	}
	sp := st.trace.Start(obs.StageCFG).File(st.name)
	if fd.Name != nil {
		sp.Func(fd.Name.Name)
	}
	g := cfg.Build(fd)
	sp.End()
	st.cfgs[fd] = g
	return g
}

func (e *Engine) parseOpts() cparse.Options {
	return cparse.Options{CPlusPlus: e.opts.CPlusPlus, Std: e.opts.Std, CUDA: e.opts.CUDA}
}

// ParsedFile pairs a source file with its parse, for callers that manage
// parsing themselves: the campaign engine parses each file once and shares
// the tree across every patch's engine, and cached runs skip parsing
// altogether. The File must have been produced by parsing Src with options
// matching the engine's dialect.
type ParsedFile struct {
	Name string
	Src  string
	File *cast.File
}

// Run applies the patch to the files.
func (e *Engine) Run(files []SourceFile) (*Result, error) {
	parsed := make([]ParsedFile, 0, len(files))
	for _, f := range files {
		sp := e.trace.Start(obs.StageParse).File(f.Name)
		cf, err := cparse.Parse(f.Name, f.Src, e.parseOpts())
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", f.Name, err)
		}
		parsed = append(parsed, ParsedFile{Name: f.Name, Src: f.Src, File: cf})
	}
	return e.RunParsed(parsed)
}

// RunParsed is Run over pre-parsed files. The engine never mutates the
// given trees or their token files — edits accumulate in per-run EditSets
// and transformed text is re-parsed into fresh trees — so one parse may be
// shared sequentially across any number of engine runs (and concurrently
// across engines, since matching only reads it).
func (e *Engine) RunParsed(files []ParsedFile) (*Result, error) {
	states := make([]*fileState, 0, len(files))
	for _, f := range files {
		states = append(states, &fileState{name: f.Name, src: f.Src, file: f.File, ed: transform.NewEditSet(f.File.Toks), trace: e.trace})
	}

	res := &Result{
		Outputs:    map[string]string{},
		Diffs:      map[string]string{},
		Matched:    map[string]bool{},
		MatchCount: map[string]int{},
	}
	// Virtual rules: dependency atoms set by the caller.
	if err := ValidateDefines(e.patch, e.opts.Defines); err != nil {
		return nil, err
	}
	for _, d := range e.opts.Defines {
		res.Matched[d] = true
	}
	envs := []match.Env{{}}

	var finalizers []*smpl.Rule
	for _, rule := range e.patch.Rules {
		if rule.Kind == smpl.FinalizeRule {
			finalizers = append(finalizers, rule)
			continue
		}
		if !rule.Depends.Eval(res.Matched) {
			continue
		}
		var err error
		switch rule.Kind {
		case smpl.InitializeRule:
			err = e.runInit(rule)
		case smpl.ScriptRule:
			envs, err = e.runScript(rule, envs, res)
		case smpl.MatchRule:
			envs, err = e.runMatch(rule, envs, states, res)
		}
		if err != nil {
			return nil, err
		}
		if len(envs) > e.opts.MaxEnvs {
			envs = envs[:e.opts.MaxEnvs]
			res.EnvsTruncated = true
		}
	}
	for _, rule := range finalizers {
		if err := e.runInit(rule); err != nil {
			return nil, err
		}
	}

	rsp := e.trace.Start(obs.StageRender)
	for _, st := range states {
		if st.dirty {
			st.src = st.ed.Apply()
		}
		res.Outputs[st.name] = st.src
	}
	for _, f := range files {
		res.Diffs[f.Name] = diff.Unified("a/"+f.Name, "b/"+f.Name, f.Src, res.Outputs[f.Name])
	}
	rsp.End()
	res.EnvCount = len(envs)
	res.Findings = analysis.Dedupe(res.Findings)
	return res, nil
}

// runInit executes an initialize/finalize rule once.
func (e *Engine) runInit(rule *smpl.Rule) error {
	if fn, ok := e.hosts[rule.Name]; ok {
		_, err := fn(nil)
		return err
	}
	_, err := e.interp.Exec(rule.Code, nil)
	if err != nil {
		return fmt.Errorf("rule %s: %w", rule.Name, err)
	}
	return nil
}

// runScript executes a script rule for every environment that can supply its
// inputs.
func (e *Engine) runScript(rule *smpl.Rule, envs []match.Env, res *Result) ([]match.Env, error) {
	var out []match.Env
	for _, env := range envs {
		locals := map[string]string{}
		missing := false
		for _, in := range rule.Inputs {
			b, ok := env[in.Rule+"."+in.Remote]
			if !ok {
				missing = true
				break
			}
			locals[in.Local] = b.Text
		}
		if missing {
			out = append(out, env)
			continue
		}
		outputs, err := e.execScript(rule, locals)
		if err != nil {
			if _, isKey := err.(*minipy.KeyError); isKey {
				// Python-side KeyError: this environment does not apply.
				out = append(out, env)
				continue
			}
			return nil, fmt.Errorf("script rule %s: %w", rule.Name, err)
		}
		next := env.Clone()
		for name, val := range outputs {
			next[rule.Name+"."+name] = val
		}
		res.Matched[rule.Name] = true
		res.MatchCount[rule.Name]++
		out = append(out, next)
	}
	return dedupEnvs(out), nil
}

func (e *Engine) execScript(rule *smpl.Rule, locals map[string]string) (map[string]match.Binding, error) {
	if fn, ok := e.hosts[rule.Name]; ok {
		raw, err := fn(locals)
		if err != nil {
			return nil, err
		}
		out := map[string]match.Binding{}
		for k, v := range raw {
			out[k] = match.NewValueBinding(cast.MetaIdentKind, v)
		}
		return out, nil
	}
	vals, err := e.interp.Exec(rule.Code, locals)
	if err != nil {
		return nil, err
	}
	out := map[string]match.Binding{}
	for k, v := range vals {
		kind := cast.MetaIdentKind
		switch v.Tag {
		case "type":
			kind = cast.MetaTypeKind
		case "pragmainfo":
			kind = cast.MetaPragmaInfoKind
		case "expr":
			kind = cast.MetaExprKind
		}
		out[k] = match.NewValueBinding(kind, v.Str)
	}
	return out, nil
}

// runMatch executes a match rule over all files for every environment.
func (e *Engine) runMatch(rule *smpl.Rule, envs []match.Env, states []*fileState, res *Result) ([]match.Env, error) {
	// Earlier rules may have edited files; refresh parses lazily, here,
	// rather than eagerly after each transformation — so a final rule's
	// output never needs to re-parse at all (it may use constructs beyond
	// our C++ subset, e.g. injected library macros).
	if err := e.reparse(states); err != nil {
		return nil, err
	}
	preMatches := res.MatchCount[rule.Name]
	msp := e.trace.Start(obs.StageMatch).Rule(rule.Name)
	defer func() { msp.Matches(res.MatchCount[rule.Name] - preMatches).End() }()
	isCheck := rule.IsCheck()
	preFindings := len(res.Findings)
	if isCheck {
		defer func() {
			csp := e.trace.Start(obs.StageCheck).Rule(rule.Name)
			csp.Matches(len(res.Findings) - preFindings).End()
		}()
	}
	cr := e.compiled.rule(rule)
	metas := cr.metas
	// Names this rule inherits: local -> qualified key.
	inherits := cr.inherits

	// Engine choice is a per-rule constant: the CFG path engine unless the
	// caller opted out or the pattern shape forces the sequence fallback.
	cfgPrimary := !e.opts.SeqDots && match.CFGEligible(rule.Pattern, metas)
	// `when strict`/`when forall` are path quantifiers only the CFG engine
	// can decide. Refuse to degrade them silently to existential matching:
	// a quantified dots on a fallback path (or nested inside an anchor,
	// where matching is syntactic even under the CFG engine) is an error,
	// not a weaker match.
	if top, nested := quantifiedDots(rule.Pattern); (top && !cfgPrimary) || nested {
		return nil, fmt.Errorf(
			"rule %s: `when strict`/`when forall` requires the CFG dots engine, which cannot handle this pattern (quantified dots must be at the top level of a pattern without statement-list metavariables, compound anchors, or --seq-dots)",
			rule.Name)
	}

	var out []match.Env
	anyMatch := false

envLoop:
	for _, env := range envs {
		inherited := match.Env{}
		missing := false
		for local, qual := range inherits {
			b, ok := env[qual]
			if !ok {
				missing = true
				break
			}
			inherited[local] = b
		}
		if missing {
			out = append(out, env)
			continue
		}

		envMatched := false
		for _, st := range states {
			m := &match.Matcher{
				Pat:        rule.Pattern,
				Metas:      metas,
				Code:       st.file,
				Inherited:  inherited,
				MaxMatches: e.opts.MaxMatchesPerRule,
			}
			if !e.opts.SeqDots {
				m.CFGs = st.cfg
			}
			for _, mt := range m.FindAll() {
				// The CFG dots engine enforces path constraints while
				// matching; re-verifying with the anchor-span heuristics of
				// verifyCTL could wrongly reject its cross-branch and
				// back-edge matches.
				if e.opts.UseCTL && !cfgPrimary && !e.verifyCTL(st, rule, &mt) {
					continue
				}
				// Clamp at the cap, not one past it, and stop before the
				// match transforms anything: the old per-file break kept
				// the outer loops collecting (and editing) across files
				// and environments, silently overshooting the cap. The
				// check sits after the CTL filter so a candidate that
				// verification would reject anyway cannot raise a
				// spurious truncation warning.
				if len(out) >= e.opts.MaxEnvs {
					res.EnvsTruncated = true
					break envLoop
				}
				// Inherited bindings participate in plus-line substitution
				// and are re-exported alongside this rule's own bindings.
				merged := mt.Env.Clone()
				for name, b := range inherited {
					if _, bound := merged[name]; !bound {
						merged[name] = b
					}
				}
				localEnv := e.withFresh(rule, merged)
				if rule.Pattern.HasTransform {
					if !e.applyMatch(st, rule.Pattern, &mt, localEnv) {
						continue // overlapping edit: skip this match
					}
					st.dirty = true
				}
				if isCheck {
					res.Findings = append(res.Findings,
						makeFinding(rule, &mt, localEnv, st.file, st.segmentation(), st.src))
				}
				envMatched = true
				anyMatch = true
				res.MatchCount[rule.Name]++
				next := env.Clone()
				for name, b := range localEnv {
					next[rule.Name+"."+name] = b
				}
				out = append(out, next)
			}
		}
		if !envMatched {
			out = append(out, env)
		}
	}
	if anyMatch {
		res.Matched[rule.Name] = true
	}
	// Edits stay pending in the EditSet until the next match rule forces a
	// re-parse or the final render applies them.
	return dedupEnvs(out), nil
}

// withFresh extends a match environment with this rule's fresh identifiers.
func (e *Engine) withFresh(rule *smpl.Rule, env match.Env) match.Env {
	out := env.Clone()
	for _, md := range rule.Metas {
		if md.Kind != cast.MetaFreshIdentKind || len(md.Fresh) == 0 {
			continue
		}
		var sb strings.Builder
		for _, part := range md.Fresh {
			if part.Lit != "" {
				sb.WriteString(part.Lit)
			} else if b, ok := out[part.Ref]; ok {
				sb.WriteString(b.Text)
			}
		}
		name := sb.String()
		if n := e.fresh[name]; n > 0 {
			e.fresh[name] = n + 1
			name = fmt.Sprintf("%s_%d", name, n)
		} else {
			e.fresh[name] = 1
		}
		out[md.Name] = match.NewValueBinding(cast.MetaFreshIdentKind, name)
	}
	return out
}

// reparse refreshes dirty files so subsequent rules see transformed code.
func (e *Engine) reparse(states []*fileState) error {
	for _, st := range states {
		if !st.dirty {
			continue
		}
		newSrc := st.ed.Apply()
		sp := e.trace.Start(obs.StageParse).File(st.name)
		cf, err := cparse.Parse(st.name, newSrc, e.parseOpts())
		sp.End()
		if err != nil {
			return fmt.Errorf("reparsing %s after transformation: %w\nsource:\n%s", st.name, err, newSrc)
		}
		st.src = newSrc
		st.file = cf
		st.ed = transform.NewEditSet(cf.Toks)
		st.dirty = false
		st.cfgs = nil // graphs describe the old tree
		st.seg, st.segDone = nil, false
	}
	return nil
}

// dedupEnvs removes exact duplicate environments.
func dedupEnvs(envs []match.Env) []match.Env {
	seen := map[string]bool{}
	var out []match.Env
	for _, env := range envs {
		key := envKey(env)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, env)
	}
	return out
}

func envKey(env match.Env) string {
	keys := make([]string, 0, len(env))
	for k := range env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(env[k].Norm)
		sb.WriteByte(';')
	}
	return sb.String()
}

// substitute replaces metavariable references in plus-line text with their
// bound values in a single pass, so substituted values are never themselves
// rewritten (e.g. an expression-list value containing variable names that
// collide with other metavariables).
func substitute(text string, env match.Env) string {
	names := make([]string, 0, len(env))
	for n := range env {
		if strings.Contains(n, ".") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return text
	}
	sort.Slice(names, func(i, j int) bool { return len(names[i]) > len(names[j]) })
	quoted := make([]string, len(names))
	for i, n := range names {
		quoted[i] = regexp.QuoteMeta(n)
	}
	re := regexp.MustCompile(`\b(` + strings.Join(quoted, "|") + `)\b`)
	return re.ReplaceAllStringFunc(text, func(name string) string {
		return env[name].Text
	})
}
