package core

import (
	"strings"
	"testing"

	"repro/internal/cast"
	"repro/internal/match"
)

func TestSubstituteSinglePass(t *testing.T) {
	// el's value contains "x" and "y", which are themselves metavariables;
	// a naive sequential substitution would rewrite them again.
	env := match.Env{
		"el": match.NewValueBinding(cast.MetaExprListKind, "n, a, x, y"),
		"x":  match.NewValueBinding(cast.MetaExprKind, "0"),
		"y":  match.NewValueBinding(cast.MetaExprKind, "stream"),
		"k":  match.NewValueBinding(cast.MetaIdentKind, "saxpy"),
	}
	got := substitute("hipLaunchKernelGGL(k,x,y,el)", env)
	want := "hipLaunchKernelGGL(saxpy,0,stream,n, a, x, y)"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestSubstituteWordBoundaries(t *testing.T) {
	env := match.Env{
		"f": match.NewValueBinding(cast.MetaIdentKind, "kernel"),
	}
	// f inside identifiers (v512_f, f_prime, leaf) must not be replaced
	got := substitute("f(v512_f, f_prime, leaf, f)", env)
	want := "kernel(v512_f, f_prime, leaf, kernel)"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestSubstituteLongestFirst(t *testing.T) {
	env := match.Env{
		"f":    match.NewValueBinding(cast.MetaIdentKind, "short"),
		"f512": match.NewValueBinding(cast.MetaFreshIdentKind, "long_one"),
	}
	got := substitute("f512 f", env)
	if got != "long_one short" {
		t.Errorf("got %q", got)
	}
}

func TestSubstituteQualifiedNamesExcluded(t *testing.T) {
	env := match.Env{
		"r.x": match.NewValueBinding(cast.MetaExprKind, "QUAL"),
		"x":   match.NewValueBinding(cast.MetaExprKind, "LOCAL"),
	}
	got := substitute("x", env)
	if got != "LOCAL" {
		t.Errorf("got %q", got)
	}
}

func TestSubstituteEmptyEnv(t *testing.T) {
	if got := substitute("unchanged text", match.Env{}); got != "unchanged text" {
		t.Errorf("got %q", got)
	}
}

func TestSubstituteMultilineValue(t *testing.T) {
	env := match.Env{
		"SL": match.NewValueBinding(cast.MetaStmtListKind, "a();\n\tb();"),
	}
	got := substitute("T f (PL) { SL }", env)
	if !strings.Contains(got, "a();\n\tb();") {
		t.Errorf("got %q", got)
	}
}

// The "replayable refactorings" workflow from the paper's Discussion: the
// patch is the version-controlled artifact, re-applied as the base code
// evolves. Simulate evolution and replay.
func TestReplayableRefactoring(t *testing.T) {
	patch := `@mark@
@@
#pragma omp ...
{
+ PROFILE_SCOPE(__func__);
...
}
`
	v1 := "void f(int n){\n#pragma omp parallel\n{\nwork(n);\n}\n}\n"
	// evolution: a new function and a renamed call
	v2 := "void f(int n){\n#pragma omp parallel\n{\nwork_v2(n);\n}\n}\nvoid g(void){\n#pragma omp parallel\n{\nmore();\n}\n}\n"

	p := mustPatch(t, patch)
	r1, err := New(p, Options{}).Run([]SourceFile{{Name: "a.c", Src: v1}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(r1.Outputs["a.c"], "PROFILE_SCOPE") != 1 {
		t.Fatalf("v1:\n%s", r1.Outputs["a.c"])
	}
	r2, err := New(p, Options{}).Run([]SourceFile{{Name: "a.c", Src: v2}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(r2.Outputs["a.c"], "PROFILE_SCOPE") != 2 {
		t.Fatalf("replay on evolved code:\n%s", r2.Outputs["a.c"])
	}
}
