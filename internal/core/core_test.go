package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/smpl"
)

// Two rules may share a name (the parser does not reject it); compiled
// artifacts must be keyed by rule identity so the first rule's inherited
// metavariables are not replaced by the second's.
func TestCompileDuplicateRuleNames(t *testing.T) {
	patch, err := smpl.ParsePatch("dup.cocci", `@a@
expression E;
@@
- foo(E)
+ foo2(E)

@r@
expression a.E;
@@
- use(E)
+ use2(E)

@r@
identifier h;
@@
- drop(h)
`)
	if err != nil {
		t.Fatal(err)
	}
	src := "void f(void)\n{\n\tfoo(x);\n\tuse(x);\n\tuse(y);\n}\n"
	res, err := New(patch, Options{}).Run([]SourceFile{{Name: "d.c", Src: src}})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outputs["d.c"]
	if !strings.Contains(out, "use2(x)") {
		t.Errorf("use(x) should be rewritten via inherited a.E:\n%s", out)
	}
	if strings.Contains(out, "use2(y)") {
		t.Errorf("use(y) must NOT be rewritten (E is inherited, bound to x):\n%s", out)
	}
}

// run applies a patch text to a source text and returns the transformed
// output.
func run(t *testing.T, patchText, src string, opts Options) (*Result, string) {
	t.Helper()
	p, err := smpl.ParsePatch("t.cocci", patchText)
	if err != nil {
		t.Fatalf("ParsePatch: %v", err)
	}
	eng := New(p, opts)
	res, err := eng.Run([]SourceFile{{Name: "t.c", Src: src}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res, res.Outputs["t.c"]
}

func TestSimpleCallRename(t *testing.T) {
	patch := `@@ @@
- old_api(
+ new_api(
...)
`
	// simpler formulation: expression-level rename
	patch = `@r@
expression list el;
@@
- old_api(el)
+ new_api(el)
`
	src := "void f(void){ old_api(1, 2); keep(); old_api(x); }\n"
	res, out := run(t, patch, src, Options{})
	if !res.Matched["r"] {
		t.Fatal("rule did not match")
	}
	if strings.Contains(out, "old_api") {
		t.Errorf("old_api still present:\n%s", out)
	}
	if strings.Count(out, "new_api") != 2 {
		t.Errorf("want 2 new_api calls:\n%s", out)
	}
	if !strings.Contains(out, "new_api(1, 2)") {
		t.Errorf("arguments lost:\n%s", out)
	}
}

func TestL1LikwidInstrumentation(t *testing.T) {
	patch := `@@ @@
#include <omp.h>
+ #include <likwid-marker.h>

@@ @@
#pragma omp ...
{
+ LIKWID_MARKER_START(__func__);
...
+ LIKWID_MARKER_STOP(__func__);
}
`
	src := `#include <omp.h>
void compute(int n, double *a) {
#pragma omp parallel for
{
	for (int i = 0; i < n; ++i) a[i] = 2.0 * a[i];
}
}
`
	res, out := run(t, patch, src, Options{})
	if len(res.Changed()) != 1 {
		t.Fatalf("changed=%v", res.Changed())
	}
	wantBits := []string{
		"#include <likwid-marker.h>",
		"LIKWID_MARKER_START(__func__);",
		"LIKWID_MARKER_STOP(__func__);",
	}
	for _, w := range wantBits {
		if !strings.Contains(out, w) {
			t.Errorf("missing %q in output:\n%s", w, out)
		}
	}
	// include must come after <omp.h>
	if strings.Index(out, "likwid-marker.h") < strings.Index(out, "omp.h") {
		t.Errorf("likwid include must follow omp include:\n%s", out)
	}
	// START before the loop, STOP after it
	if !(strings.Index(out, "MARKER_START") < strings.Index(out, "for (") &&
		strings.Index(out, "for (") < strings.Index(out, "MARKER_STOP")) {
		t.Errorf("markers misplaced:\n%s", out)
	}
}

func TestL7MultiIndex(t *testing.T) {
	patch := `@tomultiindex@
symbol a;
expression x,y,z;
@@
- a[x][y][z]
+ a[x, y, z]
`
	src := "void f(double ***a, int i, int j, int k){ a[i][j][k] = a[k][j][i] + 1; }\n"
	res, out := run(t, patch, src, Options{CPlusPlus: true, Std: 23})
	if res.MatchCount["tomultiindex"] != 2 {
		t.Errorf("matches=%d want 2", res.MatchCount["tomultiindex"])
	}
	if !strings.Contains(out, "a[i, j, k] = a[k, j, i] + 1;") {
		t.Errorf("multi-index rewrite wrong:\n%s", out)
	}
}

func TestL10KernelLaunch(t *testing.T) {
	patch := `@@
identifier k;
expression b,t,x,y;
expression list el;
@@
- k<<<b,t,x,y>>>(el)
+ hipLaunchKernelGGL(k,b,t,x,y,el)
`
	src := "void f(void){ saxpy<<<grid, block, 0, stream>>>(n, a, x, y); }\n"
	_, out := run(t, patch, src, Options{CUDA: true})
	if !strings.Contains(out, "hipLaunchKernelGGL(saxpy,grid,block,0,stream,n, a, x, y);") {
		t.Errorf("kernel launch rewrite wrong:\n%s", out)
	}
	if strings.Contains(out, "<<<") {
		t.Errorf("chevrons remain:\n%s", out)
	}
}

func TestL5UnrollP0(t *testing.T) {
	patch := `@p0@
type T;
identifier i,l;
constant k={4};
statement A,B,C,D;
@@
+ #pragma omp unroll partial(4)
for (T i=0; i
- +k-1
 < l ;
- i+=k
+ ++i
)
{
\( A \& i+0 \) \(
- B \& i+1
\) \(
- C \& i+2
\) \(
- D \& i+3
\)
}
`
	src := `void f(int n, double *s, double *q) {
	for (int v=0; v+4-1 < n; v+=4)
	{
		s[v+0] = q[v+0];
		s[v+1] = q[v+1];
		s[v+2] = q[v+2];
		s[v+3] = q[v+3];
	}
}
`
	res, out := run(t, patch, src, Options{})
	if !res.Matched["p0"] {
		t.Fatalf("p0 did not match; out:\n%s", out)
	}
	for _, w := range []string{
		"#pragma omp unroll partial(4)",
		"for (int v=0; v < n; ++v)",
		"s[v+0] = q[v+0];",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("missing %q:\n%s", w, out)
		}
	}
	for _, bad := range []string{"v+1", "v+2", "v+3", "v+=4"} {
		if strings.Contains(out, bad) {
			t.Errorf("unrolled remnant %q:\n%s", bad, out)
		}
	}
}

func TestL14PragmaInjection(t *testing.T) {
	patch := `@pragma_inject@
identifier i =~ "rsb__BCSR_spmv_sasa_double_complex";
type T;
@@
+ #pragma GCC push_options
+ #pragma GCC optimize "-O3", "-fno-tree-loop-vectorize"
T i(...)
{
...
}
+ #pragma GCC pop_options
`
	src := `int rsb__BCSR_spmv_sasa_double_complex_C__tN_r1_c1_uu_sH_dE_uG(const void *a) {
	return 0;
}
int unaffected_function(int x) {
	return x;
}
`
	res, out := run(t, patch, src, Options{})
	if res.MatchCount["pragma_inject"] != 1 {
		t.Fatalf("matches=%d want 1", res.MatchCount["pragma_inject"])
	}
	pushIdx := strings.Index(out, "#pragma GCC push_options")
	popIdx := strings.Index(out, "#pragma GCC pop_options")
	fnIdx := strings.Index(out, "rsb__BCSR")
	unIdx := strings.Index(out, "unaffected_function")
	if pushIdx < 0 || popIdx < 0 {
		t.Fatalf("pragmas missing:\n%s", out)
	}
	if !(pushIdx < fnIdx && fnIdx < popIdx && popIdx < unIdx) {
		t.Errorf("pragma placement wrong (push=%d fn=%d pop=%d un=%d):\n%s", pushIdx, fnIdx, popIdx, unIdx, out)
	}
}

func TestL4BloatRemoval(t *testing.T) {
	patch := `@c@
type T;
function f;
parameter list PL;
@@
- __attribute__((target(
(
- "avx512"
|
- "avx2"
)
- )))
- T f(PL) { ... }

@d@
type c.T;
function c.f;
parameter list c.PL;
@@
- __attribute__((target("default")))
T f(PL) { ... }
`
	src := `__attribute__((target("avx512")))
void spmv(int n, double *a) { a[0] = n; }
__attribute__((target("avx2")))
void spmv(int n, double *a) { a[0] = n + 1; }
__attribute__((target("default")))
void spmv(int n, double *a) { a[0] = n + 2; }
void untouched(void) { }
`
	res, out := run(t, patch, src, Options{})
	if res.MatchCount["c"] != 2 {
		t.Fatalf("rule c matches=%d want 2\n%s", res.MatchCount["c"], out)
	}
	if res.MatchCount["d"] != 1 {
		t.Fatalf("rule d matches=%d want 1\n%s", res.MatchCount["d"], out)
	}
	if strings.Contains(out, "avx512") || strings.Contains(out, "avx2") {
		t.Errorf("specialized clones not removed:\n%s", out)
	}
	if strings.Contains(out, "__attribute__") {
		t.Errorf("default attribute not removed:\n%s", out)
	}
	// the default function body must survive
	if !strings.Contains(out, "a[0] = n + 2;") {
		t.Errorf("default implementation lost:\n%s", out)
	}
	if !strings.Contains(out, "untouched") {
		t.Errorf("unrelated function lost:\n%s", out)
	}
}

func TestL8ScriptFunctionRename(t *testing.T) {
	patch := `@initialize:python@ @@
C2HF = { "curand_uniform_double":
 "rocrand_uniform_double" }

@cfe@
identifier fn;
expression list el;
position p;
@@
fn@p(el)

@script:python cf2hf@
fn << cfe.fn;
nf;
@@
coccinelle.nf =
 cocci.make_ident(C2HF[fn]);

@hfe@
identifier cfe.fn;
identifier cf2hf.nf;
position cfe.p;
@@
- fn@p
+ nf
(...)
`
	src := "void f(void){ double d = curand_uniform_double(gen); other_call(1); }\n"
	res, out := run(t, patch, src, Options{})
	if !res.Matched["hfe"] {
		t.Fatalf("hfe did not match:\n%s", out)
	}
	if !strings.Contains(out, "rocrand_uniform_double(gen)") {
		t.Errorf("function not renamed:\n%s", out)
	}
	if !strings.Contains(out, "other_call(1)") {
		t.Errorf("unrelated call touched:\n%s", out)
	}
	if strings.Contains(out, "curand_uniform_double") {
		t.Errorf("old name remains:\n%s", out)
	}
}

func TestL9ScriptTypeRename(t *testing.T) {
	patch := `@initialize:python@ @@
C2HT = { "__half": "rocblas_half" }

@cte@
type c_t;
identifier i;
@@
c_t i;

@script:python ct2hf@
c_t << cte.c_t;
h_t;
@@
coccinelle.h_t = cocci.make_type(C2HT[c_t])

@hte@
type ct2hf.h_t;
type cte.c_t;
identifier cte.i;
@@
- c_t i;
+ h_t i;
`
	src := "void f(void){ __half x; int y; }\n"
	res, out := run(t, patch, src, Options{})
	if !res.Matched["hte"] {
		t.Fatalf("hte did not match:\n%s", out)
	}
	if !strings.Contains(out, "rocblas_half x;") {
		t.Errorf("type not renamed:\n%s", out)
	}
	if !strings.Contains(out, "int y;") {
		t.Errorf("unrelated declaration touched:\n%s", out)
	}
}

func TestL2DeclareVariant(t *testing.T) {
	patch := `@@
type T;
identifier f =~ "kernel";
parameter list PL;
statement list SL;
fresh identifier f512 = "avx512_" ## f;
fresh identifier f10 = "avx10_" ## f;
@@
+ T f512 (PL) { SL }
+ T f10 (PL) { SL }
+ #pragma omp declare variant(f512) match(device={isa("core-avx512")})
+ #pragma omp declare variant(f10) match(device={isa("core-avx10")})
T f (PL) { SL }
`
	src := `double kernel_dot(int n, double *x, double *y) { double s = 0; return s; }
void helper(void) { }
`
	res, out := run(t, patch, src, Options{})
	if res.MatchCount["rule1"] != 1 {
		t.Fatalf("matches=%d want 1\n%s", res.MatchCount["rule1"], out)
	}
	for _, w := range []string{
		"double avx512_kernel_dot (int n, double *x, double *y) { double s = 0; return s; }",
		"double avx10_kernel_dot (int n, double *x, double *y) { double s = 0; return s; }",
		"#pragma omp declare variant(avx512_kernel_dot) match(device={isa(\"core-avx512\")})",
		"#pragma omp declare variant(avx10_kernel_dot)",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("missing %q:\n%s", w, out)
		}
	}
	// base function must remain, clones must precede it
	base := strings.Index(out, "double kernel_dot")
	clone := strings.Index(out, "avx512_kernel_dot (")
	if base < 0 || clone < 0 || clone > base {
		t.Errorf("clone/base ordering wrong:\n%s", out)
	}
}

func TestDependsOnSkipsRule(t *testing.T) {
	patch := `@never@
@@
- this_call_is_absent();

@dep depends on never@
@@
- remove_me();
+ replaced();
`
	src := "void f(void){ remove_me(); }\n"
	res, out := run(t, patch, src, Options{})
	if res.Matched["dep"] {
		t.Error("dep should not run when never did not match")
	}
	if !strings.Contains(out, "remove_me();") {
		t.Errorf("source must be unchanged:\n%s", out)
	}
}

func TestUnchangedFileNoDiff(t *testing.T) {
	patch := "@r@\n@@\n- absent();\n"
	src := "void f(void){ present(); }\n"
	res, out := run(t, patch, src, Options{})
	if out != src {
		t.Errorf("output differs for non-matching patch")
	}
	if res.Diffs["t.c"] != "" {
		t.Errorf("diff should be empty")
	}
}

func TestGoScriptHost(t *testing.T) {
	patch := `@cfe@
identifier fn;
expression list el;
@@
fn(el)

@script:go upper@
fn << cfe.fn;
nf;
@@
(native)

@hfe@
identifier cfe.fn;
identifier upper.nf;
@@
- fn
+ nf
(...)
`
	p, err := smpl.ParsePatch("t.cocci", patch)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(p, Options{})
	eng.RegisterScript("upper", func(in map[string]string) (map[string]string, error) {
		return map[string]string{"nf": "wrapped_" + in["fn"]}, nil
	})
	res, err := eng.Run([]SourceFile{{Name: "t.c", Src: "void f(void){ target(1); }\n"}})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outputs["t.c"]
	if !strings.Contains(out, "wrapped_target(1);") {
		t.Errorf("go script host rename failed:\n%s", out)
	}
}

// TestMaxEnvsClampAndFlag pins the environment-cap semantics: the set never
// exceeds the cap (the old code overshot it, breaking only the per-file
// match loop), matching stops before the over-cap match transforms
// anything, and the truncation is surfaced instead of silent.
func TestMaxEnvsClampAndFlag(t *testing.T) {
	patch := `@r@
expression E;
@@
- probe(E)
+ probe2(E)
`
	var sb strings.Builder
	sb.WriteString("void f(void)\n{\n")
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&sb, "\tprobe(%d);\n", i)
	}
	sb.WriteString("}\n")
	src := sb.String()

	// Uncapped: all ten matches land, no truncation.
	res, out := run(t, patch, src, Options{})
	if res.EnvsTruncated {
		t.Error("EnvsTruncated set without hitting the cap")
	}
	if got := strings.Count(out, "probe2("); got != 10 {
		t.Errorf("uncapped rewrites = %d, want 10", got)
	}

	// Capped at 4: exactly 4 environments survive, exactly 4 rewrites
	// happen (no edits from dropped matches), and the flag is raised.
	res, out = run(t, patch, src, Options{MaxEnvs: 4})
	if !res.EnvsTruncated {
		t.Error("EnvsTruncated not set although matches were dropped")
	}
	if res.EnvCount > 4 {
		t.Errorf("EnvCount = %d exceeds MaxEnvs=4", res.EnvCount)
	}
	if got := strings.Count(out, "probe2("); got != 4 {
		t.Errorf("capped rewrites = %d, want exactly MaxEnvs=4", got)
	}
	if res.MatchCount["r"] != 4 {
		t.Errorf("MatchCount = %d, want 4", res.MatchCount["r"])
	}

	// A cap that is not reached must not raise the flag, even at the
	// boundary.
	res, _ = run(t, patch, src, Options{MaxEnvs: 10})
	if res.EnvsTruncated {
		t.Error("EnvsTruncated set although every match fit exactly")
	}
}
