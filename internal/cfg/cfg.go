// Package cfg builds intraprocedural control-flow graphs over function
// bodies. The graph is the model over which the CTL engine (internal/ctl)
// evaluates dots and `when` constraints: a statement-level wildcard in a
// semantic patch matches a set of paths in this graph, exactly as in
// Coccinelle's CTL-VW formalisation.
package cfg

import (
	"fmt"
	"strings"

	"repro/internal/cast"
)

// NodeKind classifies CFG nodes.
type NodeKind uint8

// CFG node kinds.
const (
	Entry NodeKind = iota
	Exit
	Stmt   // a non-compound statement
	Branch // a condition evaluation (if/while/for/switch headers)
	Join   // a no-op merge point
)

func (k NodeKind) String() string {
	switch k {
	case Entry:
		return "entry"
	case Exit:
		return "exit"
	case Stmt:
		return "stmt"
	case Branch:
		return "branch"
	case Join:
		return "join"
	}
	return "?"
}

// Node is one CFG vertex.
type Node struct {
	ID   int
	Kind NodeKind
	// AST is the statement or condition expression this node represents;
	// nil for entry/exit/join.
	AST cast.Node
	// Succs and Preds are edge lists (node IDs).
	Succs []int
	Preds []int
}

// Graph is the CFG of one function.
type Graph struct {
	Func  *cast.FuncDef
	Nodes []*Node
	// EntryID and ExitID index into Nodes.
	EntryID, ExitID int
}

// builder state for one graph.
type builder struct {
	g *Graph
	// break/continue targets, innermost last
	breaks    []int
	continues []int
	// labels
	labels map[string]int
	gotos  []struct {
		from  int
		label string
	}
}

// Build constructs the CFG for a function definition.
func Build(fd *cast.FuncDef) *Graph {
	b := &builder{g: &Graph{Func: fd}, labels: map[string]int{}}
	entry := b.node(Entry, nil)
	exit := b.node(Exit, nil)
	b.g.EntryID = entry
	b.g.ExitID = exit
	var last = entry
	if fd.Body != nil {
		last = b.stmts(fd.Body.Items, entry)
	}
	if last >= 0 {
		b.edge(last, exit)
	}
	// resolve gotos
	for _, g := range b.gotos {
		if to, ok := b.labels[g.label]; ok {
			b.edge(g.from, to)
		} else {
			b.edge(g.from, exit)
		}
	}
	return b.g
}

func (b *builder) node(k NodeKind, ast cast.Node) int {
	n := &Node{ID: len(b.g.Nodes), Kind: k, AST: ast}
	b.g.Nodes = append(b.g.Nodes, n)
	return n.ID
}

func (b *builder) edge(from, to int) {
	if from < 0 || to < 0 {
		return
	}
	f := b.g.Nodes[from]
	for _, s := range f.Succs {
		if s == to {
			return
		}
	}
	f.Succs = append(f.Succs, to)
	b.g.Nodes[to].Preds = append(b.g.Nodes[to].Preds, from)
}

// stmts wires a statement sequence after `prev`, returning the node that
// falls through to whatever follows (or -1 if control never falls through).
func (b *builder) stmts(items []cast.Stmt, prev int) int {
	cur := prev
	for _, s := range items {
		cur = b.stmt(s, cur)
		if cur < 0 {
			// unreachable code after a jump still gets nodes, linked from
			// nowhere, so matching can see it; feed a fresh join as anchor.
			cur = b.node(Join, nil)
		}
	}
	return cur
}

// stmt wires one statement after prev; returns fall-through node or -1.
func (b *builder) stmt(s cast.Stmt, prev int) int {
	switch x := s.(type) {
	case *cast.Compound:
		return b.stmts(x.Items, prev)
	case *cast.If:
		cond := b.node(Branch, x)
		b.edge(prev, cond)
		thenEnd := b.stmt(x.Then, cond)
		join := b.node(Join, nil)
		if thenEnd >= 0 {
			b.edge(thenEnd, join)
		}
		if x.Else != nil {
			elseEnd := b.stmt(x.Else, cond)
			if elseEnd >= 0 {
				b.edge(elseEnd, join)
			}
		} else {
			b.edge(cond, join)
		}
		return join
	case *cast.For:
		head := b.node(Branch, x)
		b.edge(prev, head)
		after := b.node(Join, nil)
		b.pushLoop(after, head)
		bodyEnd := b.stmt(x.Body, head)
		if bodyEnd >= 0 {
			b.edge(bodyEnd, head)
		}
		b.popLoop()
		b.edge(head, after)
		return after
	case *cast.RangeFor:
		head := b.node(Branch, x)
		b.edge(prev, head)
		after := b.node(Join, nil)
		b.pushLoop(after, head)
		bodyEnd := b.stmt(x.Body, head)
		if bodyEnd >= 0 {
			b.edge(bodyEnd, head)
		}
		b.popLoop()
		b.edge(head, after)
		return after
	case *cast.While:
		head := b.node(Branch, x)
		b.edge(prev, head)
		after := b.node(Join, nil)
		b.pushLoop(after, head)
		bodyEnd := b.stmt(x.Body, head)
		if bodyEnd >= 0 {
			b.edge(bodyEnd, head)
		}
		b.popLoop()
		b.edge(head, after)
		return after
	case *cast.DoWhile:
		bodyStart := b.node(Join, nil)
		b.edge(prev, bodyStart)
		cond := b.node(Branch, x)
		after := b.node(Join, nil)
		b.pushLoop(after, cond)
		bodyEnd := b.stmt(x.Body, bodyStart)
		if bodyEnd >= 0 {
			b.edge(bodyEnd, cond)
		}
		b.popLoop()
		b.edge(cond, bodyStart)
		b.edge(cond, after)
		return after
	case *cast.Switch:
		head := b.node(Branch, x)
		b.edge(prev, head)
		after := b.node(Join, nil)
		b.breaks = append(b.breaks, after)
		// Each case label becomes a successor of the head; fallthrough
		// between consecutive statements is preserved.
		if body, ok := x.Body.(*cast.Compound); ok {
			cur := -1
			for _, item := range body.Items {
				if c, isCase := item.(*cast.Case); isCase {
					cn := b.node(Stmt, c)
					b.edge(head, cn)
					if cur >= 0 {
						b.edge(cur, cn)
					}
					cur = cn
					continue
				}
				cur = b.stmt(item, cur)
				if cur < 0 {
					cur = -1
					// next case will re-anchor from head
					cur = -2
				}
				if cur == -2 {
					cur = -1
				}
			}
			if cur >= 0 {
				b.edge(cur, after)
			}
		} else if x.Body != nil {
			end := b.stmt(x.Body, head)
			if end >= 0 {
				b.edge(end, after)
			}
		}
		b.edge(head, after) // no matching case
		b.breaks = b.breaks[:len(b.breaks)-1]
		return after
	case *cast.Return:
		n := b.node(Stmt, x)
		b.edge(prev, n)
		b.edge(n, b.g.ExitID)
		return -1
	case *cast.Break:
		n := b.node(Stmt, x)
		b.edge(prev, n)
		if len(b.breaks) > 0 {
			b.edge(n, b.breaks[len(b.breaks)-1])
		} else {
			b.edge(n, b.g.ExitID)
		}
		return -1
	case *cast.Continue:
		n := b.node(Stmt, x)
		b.edge(prev, n)
		if len(b.continues) > 0 {
			b.edge(n, b.continues[len(b.continues)-1])
		} else {
			b.edge(n, b.g.ExitID)
		}
		return -1
	case *cast.Goto:
		n := b.node(Stmt, x)
		b.edge(prev, n)
		b.gotos = append(b.gotos, struct {
			from  int
			label string
		}{n, x.Label})
		return -1
	case *cast.Label:
		n := b.node(Join, x)
		b.edge(prev, n)
		b.labels[x.Name] = n
		return b.stmt(x.Stmt, n)
	case *cast.Empty:
		return prev
	default:
		// Plain statement: expression, declaration, pragma, nested opaque.
		n := b.node(Stmt, x)
		b.edge(prev, n)
		return n
	}
}

func (b *builder) pushLoop(brk, cont int) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// ProbeNodes returns the AST fragments a path constraint must inspect when
// a path traverses this node. For a Stmt node that is the whole statement.
// For a Branch node it is the header only — condition, loop clauses, range
// declaration — because the construct's body statements are distinct CFG
// nodes and are checked if and only if the path actually enters them. A
// path skipping over an `if` header must not be vetoed by a forbidden
// expression sitting in an arm the path never takes.
func (n *Node) ProbeNodes() []cast.Node {
	if n.AST == nil {
		return nil
	}
	if n.Kind == Stmt {
		return []cast.Node{n.AST}
	}
	if n.Kind != Branch {
		return nil
	}
	var out []cast.Node
	add := func(m cast.Node) {
		if m != nil {
			out = append(out, m)
		}
	}
	switch x := n.AST.(type) {
	case *cast.If:
		add(x.Cond)
	case *cast.While:
		add(x.Cond)
	case *cast.DoWhile:
		add(x.Cond)
	case *cast.Switch:
		add(x.Cond)
	case *cast.For:
		if x.Init != nil {
			add(x.Init)
		}
		add(x.Cond)
		add(x.Post)
	case *cast.RangeFor:
		if x.Decl != nil {
			add(x.Decl)
		}
		add(x.X)
	default:
		add(x)
	}
	return out
}

// Reachable reports whether `to` is reachable from `from` following edges,
// optionally excluding a node predicate (for "when != S" path constraints).
func (g *Graph) Reachable(from, to int, excluded func(*Node) bool) bool {
	if from == to {
		return true
	}
	seen := make([]bool, len(g.Nodes))
	stack := []int{from}
	seen[from] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Nodes[n].Succs {
			if s == to {
				return true
			}
			if seen[s] {
				continue
			}
			if excluded != nil && excluded(g.Nodes[s]) {
				continue
			}
			seen[s] = true
			stack = append(stack, s)
		}
	}
	return false
}

// StmtNodes returns the CFG nodes carrying real statements, in id order.
func (g *Graph) StmtNodes() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.Kind == Stmt || n.Kind == Branch {
			out = append(out, n)
		}
	}
	return out
}

// Dot renders the graph in Graphviz dot syntax (for debugging and docs).
func (g *Graph) Dot(src *cast.File) string {
	var sb strings.Builder
	sb.WriteString("digraph cfg {\n")
	for _, n := range g.Nodes {
		label := n.Kind.String()
		if n.AST != nil && src != nil {
			t := src.Text(n.AST)
			if len(t) > 28 {
				t = t[:25] + "..."
			}
			label = strings.ReplaceAll(t, `"`, `\"`)
		}
		fmt.Fprintf(&sb, "  n%d [label=\"%s\"];\n", n.ID, label)
		for _, s := range n.Succs {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", n.ID, s)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
