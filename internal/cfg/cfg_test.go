package cfg

import (
	"strings"
	"testing"

	"repro/internal/cast"
	"repro/internal/cparse"
)

func buildFor(t *testing.T, src string) (*cast.File, *Graph) {
	t.Helper()
	f, err := cparse.Parse("t.c", src, cparse.Options{})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	funcs := f.Funcs()
	if len(funcs) == 0 {
		t.Fatal("no function")
	}
	return f, Build(funcs[0])
}

func nodeTexts(f *cast.File, g *Graph) []string {
	var out []string
	for _, n := range g.StmtNodes() {
		out = append(out, f.Text(n.AST))
	}
	return out
}

func TestLinearFlow(t *testing.T) {
	f, g := buildFor(t, "void f(){ a(); b(); c(); }")
	texts := nodeTexts(f, g)
	if strings.Join(texts, "|") != "a();|b();|c();" {
		t.Errorf("nodes: %v", texts)
	}
	// entry -> a -> b -> c -> exit
	if !g.Reachable(g.EntryID, g.ExitID, nil) {
		t.Error("exit unreachable")
	}
}

// findStmt returns the id of the first Stmt-kind node whose text contains
// sub. Branch nodes are deliberately excluded: their AST spans the whole
// conditional, so a text search would match them spuriously.
func findStmt(f *cast.File, g *Graph, sub string) int {
	for _, n := range g.Nodes {
		if n.Kind == Stmt && n.AST != nil && strings.Contains(f.Text(n.AST), sub) {
			return n.ID
		}
	}
	return -1
}

func TestIfElseFlow(t *testing.T) {
	f, g := buildFor(t, "void f(int x){ if (x) a(); else b(); c(); }")
	aID, bID, cID := findStmt(f, g, "a()"), findStmt(f, g, "b()"), findStmt(f, g, "c()")
	if aID < 0 || bID < 0 || cID < 0 {
		t.Fatal("missing nodes")
	}
	if !g.Reachable(aID, cID, nil) || !g.Reachable(bID, cID, nil) {
		t.Error("branches do not merge")
	}
	if g.Reachable(aID, bID, nil) {
		t.Error("then-branch should not reach else-branch")
	}
}

func TestLoopBackEdge(t *testing.T) {
	f, g := buildFor(t, "void f(int n){ for (int i=0;i<n;++i) { work(i); } done(); }")
	workID := findStmt(f, g, "work")
	headID := -1
	for _, n := range g.Nodes {
		if n.Kind == Branch {
			headID = n.ID
		}
	}
	if workID < 0 || headID < 0 {
		t.Fatal("missing loop nodes")
	}
	if !g.Reachable(workID, headID, nil) {
		t.Error("no back edge from body to loop head")
	}
	if !g.Reachable(workID, workID, nil) {
		t.Error("loop body cannot re-reach itself via the back edge")
	}
}

func TestReturnCutsFlow(t *testing.T) {
	f, g := buildFor(t, "void f(int x){ if (x) return; tail(); }")
	retID, tailID := findStmt(f, g, "return"), findStmt(f, g, "tail")
	if retID < 0 || tailID < 0 {
		t.Fatal("nodes missing")
	}
	if g.Reachable(retID, tailID, nil) {
		t.Error("return must not fall through to tail()")
	}
	if !g.Reachable(retID, g.ExitID, nil) {
		t.Error("return must reach exit")
	}
}

func TestBreakContinue(t *testing.T) {
	f, g := buildFor(t, `void f(int n){
	while (n) {
		if (n == 1) break;
		if (n == 2) continue;
		n--;
	}
	after();
}`)
	brkID, afterID, decID := findStmt(f, g, "break;"), findStmt(f, g, "after"), findStmt(f, g, "n--;")
	if brkID < 0 || afterID < 0 || decID < 0 {
		t.Fatal("nodes missing")
	}
	if !g.Reachable(brkID, afterID, nil) {
		t.Error("break must reach loop exit")
	}
	// break must not continue into the loop body remainder
	if g.Reachable(brkID, decID, nil) {
		t.Error("break must not reach rest of loop body")
	}
}

func TestGotoAndLabel(t *testing.T) {
	f, g := buildFor(t, "void f(){ goto out; mid(); out: end(); }")
	gotoID, midID, endID := findStmt(f, g, "goto"), findStmt(f, g, "mid"), findStmt(f, g, "end")
	if gotoID < 0 || midID < 0 || endID < 0 {
		t.Fatal("nodes missing")
	}
	if !g.Reachable(gotoID, endID, nil) {
		t.Error("goto must reach label")
	}
	if g.Reachable(gotoID, midID, nil) {
		t.Error("goto must not fall through")
	}
}

func TestReachableWithExclusion(t *testing.T) {
	f, g := buildFor(t, "void f(int x){ a(); if (x) b(); else c(); d(); }")
	aID, dID := findStmt(f, g, "a()"), findStmt(f, g, "d()")
	// Exclusions must test Stmt nodes only; a Branch node's AST spans the
	// whole conditional and would match any branch text.
	noB := func(n *Node) bool {
		return n.Kind == Stmt && n.AST != nil && strings.Contains(f.Text(n.AST), "b()")
	}
	if !g.Reachable(aID, dID, noB) {
		t.Error("should reach d() avoiding b() via else branch")
	}
	noBC := func(n *Node) bool {
		return n.Kind == Stmt && n.AST != nil &&
			(strings.Contains(f.Text(n.AST), "b()") || strings.Contains(f.Text(n.AST), "c()"))
	}
	if g.Reachable(aID, dID, noBC) {
		t.Error("both branches excluded, d() should be unreachable")
	}
}

func TestSwitchFlow(t *testing.T) {
	f, g := buildFor(t, `void f(int x){
	switch (x) {
	case 1: one(); break;
	case 2: two();
	default: dflt();
	}
	end();
}`)
	one, two, dflt, end := findStmt(f, g, "one"), findStmt(f, g, "two"), findStmt(f, g, "dflt"), findStmt(f, g, "end()")
	if one < 0 || two < 0 || dflt < 0 || end < 0 {
		t.Fatal("nodes missing")
	}
	if !g.Reachable(one, end, nil) {
		t.Error("case 1 must reach end")
	}
	if !g.Reachable(two, dflt, nil) {
		t.Error("case 2 must fall through to default")
	}
	if g.Reachable(one, two, nil) {
		t.Error("break must prevent fallthrough from case 1")
	}
}

func TestDotOutput(t *testing.T) {
	f, g := buildFor(t, "void f(){ a(); }")
	dot := g.Dot(f)
	if !strings.Contains(dot, "digraph cfg") || !strings.Contains(dot, "a()") {
		t.Errorf("dot output missing content:\n%s", dot)
	}
}
