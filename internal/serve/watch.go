package serve

import (
	"os"
	"time"
)

// watch is the session's poll watcher: a plain mtime/size scanner in its
// own goroutine (no OS-specific notification dependencies), dropping
// resident state for tracked files that changed or vanished since their
// last validation. Runs revalidate by stat anyway, so the watcher buys
// promptness and memory hygiene, never correctness: with it, a sweep
// arriving long after an edit finds the stale entries already gone instead
// of carrying them until the stat comparison discards them.
func (s *Session) watch(interval time.Duration) {
	defer close(s.watchDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.watchStop:
			return
		case <-ticker.C:
			s.scanOnce()
		}
	}
}

// scanOnce performs one watcher pass over the validation table. Membership
// is defined by the table itself, not by a corpus re-walk: ApplyPath may
// track files outside the sweep's extension set, and those entries must
// stay warm too. A deleted file simply fails its stat and is dropped.
func (s *Session) scanOnce() {
	// Snapshot the tracked set, stat outside the lock, then drop invalid
	// entries — a run landing in between only re-derives a little more.
	s.mu.Lock()
	tracked := make([]string, 0, len(s.files))
	for path := range s.files {
		tracked = append(tracked, path)
	}
	s.mu.Unlock()

	var stale []string
	for _, path := range tracked {
		info, err := os.Stat(path)
		if err != nil {
			stale = append(stale, path)
			continue
		}
		s.mu.Lock()
		e := s.files[path]
		valid := e != nil && e.mtime.Equal(info.ModTime()) && e.size == info.Size()
		s.mu.Unlock()
		if !valid {
			stale = append(stale, path)
		}
	}
	if len(stale) > 0 {
		s.mu.Lock()
		for _, path := range stale {
			delete(s.files, path)
		}
		s.mu.Unlock()
		s.invalidations.Add(int64(len(stale)))
	}
	s.watchScans.Add(1)
	s.lastScanNano.Store(time.Now().UnixNano())
}
