package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/smpl"
)

const renamePatch = `@r@
expression list el;
@@
- legacy_halo_exchange(el)
+ halo_exchange_v2(el)
`

// writeCorpus fabricates a small tree: every third file calls the legacy
// API (and so is patched), the rest cannot match.
func writeCorpus(t *testing.T, n int) string {
	t.Helper()
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Hour)
	for i := 0; i < n; i++ {
		src := fmt.Sprintf("void work_%d(int n)\n{\n\tcompute_%d(n);\n}\n", i, i)
		if i%3 == 0 {
			src += fmt.Sprintf("\nvoid migrate_%d(int n)\n{\n\tlegacy_halo_exchange(n, %d);\n}\n", i, i)
		}
		name := fmt.Sprintf("src%02d.c", i)
		if i%2 == 0 {
			name = filepath.Join("sub", name)
		}
		path := filepath.Join(root, name)
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		// Deterministic mtimes well in the past, so test edits that bump
		// them are always visible to stat-based revalidation.
		if err := os.Chtimes(path, base, base); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func parsePatch(t *testing.T, name, text string) *smpl.Patch {
	t.Helper()
	p, err := smpl.ParsePatch(name, text)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newTestSession(t *testing.T, root string, watch time.Duration) *Session {
	t.Helper()
	s, err := NewSession(Config{
		Root:          root,
		Patches:       []*smpl.Patch{parsePatch(t, "rename.cocci", renamePatch)},
		Options:       batch.Options{Workers: 4},
		WatchInterval: watch,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestSessionWarmSweep pins the resident contract: a cold sweep derives
// everything, a warm sweep over an unchanged corpus replays every result
// without reading or parsing a single file, and an edit re-derives exactly
// the edited file.
func TestSessionWarmSweep(t *testing.T) {
	const n = 9
	root := writeCorpus(t, n)
	s := newTestSession(t, root, 0)

	cold, err := s.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Files != n || cold.Errors != 0 {
		t.Fatalf("cold sweep: %+v", cold)
	}
	if cold.Cached != 0 || cold.Read != n {
		t.Errorf("cold sweep should read everything and cache nothing: %+v", cold)
	}
	if cold.Changed != 3 {
		t.Errorf("cold sweep changed %d files, want 3", cold.Changed)
	}

	warm, err := s.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cached != n {
		t.Errorf("warm sweep cached %d of %d", warm.Cached, n)
	}
	// A warm sweep parses nothing. It still reads the 3 files the patch
	// changes: their outputs replay from the cache, but the unified diff is
	// recomputed against the on-disk input text.
	if warm.Parsed != 0 || warm.Read != 3 {
		t.Errorf("warm sweep: parsed=%d read=%d, want parsed=0 read=3", warm.Parsed, warm.Read)
	}

	// Edit one file (content + mtime): the next sweep re-derives it alone.
	edited := filepath.Join(root, "src01.c")
	src, err := os.ReadFile(edited)
	if err != nil {
		t.Fatal(err)
	}
	src = append(src, []byte("\nvoid extra(int n)\n{\n\tlegacy_halo_exchange(n, 99);\n}\n")...)
	if err := os.WriteFile(edited, src, 0o644); err != nil {
		t.Fatal(err)
	}
	third, err := s.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the edited file is parsed; reads are the edited file plus the
	// three cached-changed files whose diffs are recomputed.
	if third.Parsed != 1 || third.Read != 4 {
		t.Errorf("after one edit: parsed=%d read=%d, want parsed=1 read=4", third.Parsed, third.Read)
	}
	if third.Cached != n-1 {
		t.Errorf("after one edit: cached=%d, want %d", third.Cached, n-1)
	}
}

// TestSessionSweepMatchesBatch pins output parity: a resident sweep (cold
// and warm) produces the same per-file diffs and outputs as a fresh
// cache-less campaign over the same paths.
func TestSessionSweepMatchesBatch(t *testing.T) {
	root := writeCorpus(t, 8)
	s := newTestSession(t, root, 0)

	collect := func() map[string]batch.CampaignFileResult {
		out := map[string]batch.CampaignFileResult{}
		if _, err := s.Run(func(fr batch.CampaignFileResult) error {
			out[fr.Name] = fr
			return fr.Err
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	cold := collect()
	warm := collect()

	paths, err := collectSources(root)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[string]batch.CampaignFileResult{}
	camp := batch.NewCampaign([]*smpl.Patch{parsePatch(t, "rename.cocci", renamePatch)}, batch.Options{Workers: 2})
	if _, err := camp.CollectPaths(paths, func(fr batch.CampaignFileResult) error {
		ref[fr.Name] = fr
		return fr.Err
	}); err != nil {
		t.Fatal(err)
	}

	for name, want := range ref {
		for mode, got := range map[string]batch.CampaignFileResult{"cold": cold[name], "warm": warm[name]} {
			if got.Diff != want.Diff {
				t.Errorf("%s %s: diff diverges from batch run", mode, name)
			}
			if got.OutputElided {
				if want.Changed() {
					t.Errorf("%s %s: output elided for a changed file", mode, name)
				}
				continue
			}
			if got.Output != want.Output {
				t.Errorf("%s %s: output diverges from batch run", mode, name)
			}
		}
	}
}

// TestSessionApply covers the one-shot paths: a corpus-relative file, a
// snippet, and the traversal guard.
func TestSessionApply(t *testing.T) {
	root := writeCorpus(t, 4)
	s := newTestSession(t, root, 0)

	fr, err := s.ApplyPath(filepath.Join("sub", "src00.c"))
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Changed() || !strings.Contains(fr.Output, "halo_exchange_v2") {
		t.Errorf("ApplyPath did not patch: %+v", fr)
	}

	// Repeating the apply replays from the resident cache.
	again, err := s.ApplyPath(filepath.Join("sub", "src00.c"))
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Patches) == 0 || !again.Patches[0].Cached {
		t.Errorf("second ApplyPath not cached: %+v", again.Patches)
	}
	if again.Diff != fr.Diff {
		t.Error("cached ApplyPath diff diverges")
	}

	if _, err := s.ApplyPath(filepath.Join("..", "escape.c")); err == nil {
		t.Error("ApplyPath must reject paths escaping the root")
	}

	snip, err := s.ApplySnippet("s.c", "void f(int n)\n{\n\tlegacy_halo_exchange(n, 1);\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	if !snip.Changed() || !strings.Contains(snip.Output, "halo_exchange_v2(n, 1)") {
		t.Errorf("ApplySnippet did not patch:\n%s", snip.Output)
	}
}

// TestWatcherInvalidates exercises the poll watcher: an edited file's
// resident entry is dropped between requests, and the stats see the scan.
func TestWatcherInvalidates(t *testing.T) {
	root := writeCorpus(t, 4)
	s := newTestSession(t, root, 10*time.Millisecond)

	if _, err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.TrackedFiles != 4 {
		t.Fatalf("tracked %d files after a sweep, want 4", st.TrackedFiles)
	}

	edited := filepath.Join(root, "src01.c")
	if err := os.WriteFile(edited, []byte("void other(void)\n{\n\tidle();\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st = s.Stats()
		if st.Invalidations > 0 && st.TrackedFiles == 3 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Invalidations == 0 || st.TrackedFiles != 3 {
		t.Errorf("watcher did not drop the edited file: %+v", st)
	}
	if st.WatchScans == 0 || st.LastWatchScan == "" {
		t.Errorf("watcher scans not accounted: %+v", st)
	}
}

// TestSessionConcurrent hammers one session from many goroutines — sweeps,
// applies, invalidations — and relies on -race (CI runs this package with
// it) to certify the resident state is race-clean.
func TestSessionConcurrent(t *testing.T) {
	root := writeCorpus(t, 6)
	s := newTestSession(t, root, 5*time.Millisecond)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				switch g % 3 {
				case 0:
					if _, err := s.Run(nil); err != nil {
						t.Error(err)
					}
				case 1:
					if _, err := s.ApplySnippet("c.c", fmt.Sprintf("void f(int n)\n{\n\tlegacy_halo_exchange(n, %d);\n}\n", i)); err != nil {
						t.Error(err)
					}
				default:
					s.Invalidate()
					s.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	if _, err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
}

func newTestServer(t *testing.T, root string) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(batch.Options{Workers: 2})
	if _, err := srv.AddSession(Config{
		ID:      "hpc",
		Root:    root,
		Patches: []*smpl.Patch{parsePatch(t, "rename.cocci", renamePatch)},
		Options: batch.Options{Workers: 2},
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data := new(bytes.Buffer)
	data.ReadFrom(resp.Body)
	return resp, data.Bytes()
}

// TestHTTPEndpoints walks the whole API surface once.
func TestHTTPEndpoints(t *testing.T) {
	root := writeCorpus(t, 6)
	_, ts := newTestServer(t, root)

	var health struct {
		Status   string `json:"status"`
		Sessions int    `json:"sessions"`
	}
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != 200 || health.Status != "ok" || health.Sessions != 1 {
		t.Errorf("healthz: %+v", health)
	}

	var list []SessionStats
	getJSON(t, ts.URL+"/v1/sessions", &list)
	if len(list) != 1 || list[0].ID != "hpc" {
		t.Errorf("sessions list: %+v", list)
	}

	// Streamed sweep: one NDJSON line per file plus a summary line.
	resp, err := http.Post(ts.URL+"/v1/sessions/hpc/run", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("run content type %q", ct)
	}
	var lines []RunLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line RunLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if len(lines) != 7 {
		t.Fatalf("got %d NDJSON lines, want 6 files + summary", len(lines))
	}
	sum := lines[len(lines)-1].Summary
	if sum == nil || sum.Files != 6 || sum.Changed != 2 || sum.Errors != 0 {
		t.Errorf("run summary: %+v", sum)
	}

	// Warm sweep over HTTP: everything cached, nothing parsed.
	resp2, err := http.Post(ts.URL+"/v1/sessions/hpc/run", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var warmSum *RunSummary
	sc2 := bufio.NewScanner(resp2.Body)
	for sc2.Scan() {
		var line RunLine
		if err := json.Unmarshal(sc2.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Summary != nil {
			warmSum = line.Summary
		}
	}
	resp2.Body.Close()
	if warmSum == nil || warmSum.Cached != 6 || warmSum.Parsed != 0 {
		t.Errorf("warm summary: %+v", warmSum)
	}

	var stats SessionStats
	getJSON(t, ts.URL+"/v1/sessions/hpc/stats", &stats)
	if stats.Runs != 2 || stats.TrackedFiles != 6 {
		t.Errorf("stats: %+v", stats)
	}

	// Metrics carry the counters in Prometheus text format.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb := new(bytes.Buffer)
	mb.ReadFrom(mresp.Body)
	mresp.Body.Close()
	metrics := mb.String()
	for _, want := range []string{
		"gocci_serve_sessions 1",
		`gocci_serve_http_requests_total{endpoint="run"} 2`,
		`gocci_serve_session_runs_total{session="hpc"} 2`,
		`gocci_serve_session_patch_results_cached_total{session="hpc"} 6`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Unknown session: 404 with a JSON error.
	if resp := getJSON(t, ts.URL+"/v1/sessions/nope/stats", nil); resp.StatusCode != 404 {
		t.Errorf("unknown session status %d", resp.StatusCode)
	}

	// Invalidate drops resident state.
	iresp, _ := postJSON(t, ts.URL+"/v1/sessions/hpc/invalidate", nil)
	if iresp.StatusCode != 200 {
		t.Errorf("invalidate status %d", iresp.StatusCode)
	}
	getJSON(t, ts.URL+"/v1/sessions/hpc/stats", &stats)
	if stats.TrackedFiles != 0 {
		t.Errorf("invalidate left %d tracked files", stats.TrackedFiles)
	}
}

// TestHTTPApply covers /v1/apply's request shapes and error contract.
func TestHTTPApply(t *testing.T) {
	root := writeCorpus(t, 4)
	_, ts := newTestServer(t, root)
	url := ts.URL + "/v1/apply"
	src := "void f(int n)\n{\n\tlegacy_halo_exchange(n, 7);\n}\n"

	// Session campaign over an inline snippet.
	resp, body := postJSON(t, url, ApplyRequest{Session: "hpc", Name: "s.c", Source: &src})
	if resp.StatusCode != 200 {
		t.Fatalf("apply snippet: %d %s", resp.StatusCode, body)
	}
	var ar ApplyResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if !ar.Changed || ar.Output == nil || !strings.Contains(*ar.Output, "halo_exchange_v2(n, 7)") {
		t.Errorf("apply snippet response: %s", body)
	}

	// Session campaign over a corpus file.
	resp, body = postJSON(t, url, ApplyRequest{Session: "hpc", File: "src03.c"})
	if resp.StatusCode != 200 {
		t.Fatalf("apply file: %d %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &ar)
	if !ar.Changed || !strings.Contains(ar.Diff, "halo_exchange_v2") {
		t.Errorf("apply file response: %s", body)
	}

	// Inline patch, no session: stateless one-shot.
	inline := "@i@\nexpression list el;\n@@\n- compute_1(el)\n+ compute_one(el)\n"
	osrc := "void g(int n)\n{\n\tcompute_1(n);\n}\n"
	resp, body = postJSON(t, url, ApplyRequest{Patch: inline, Name: "g.c", Source: &osrc})
	if resp.StatusCode != 200 {
		t.Fatalf("apply inline: %d %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &ar)
	if !ar.Changed || ar.Output == nil || !strings.Contains(*ar.Output, "compute_one(n)") {
		t.Errorf("apply inline response: %s", body)
	}

	// Inline patch over a session corpus file: resident artifacts serve any
	// patch.
	resp, body = postJSON(t, url, ApplyRequest{Session: "hpc", Patch: inline, File: "src01.c"})
	if resp.StatusCode != 200 {
		t.Fatalf("apply inline+file: %d %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &ar)
	if !ar.Changed {
		t.Errorf("inline patch over corpus file did not fire: %s", body)
	}

	// Error contract.
	for _, bad := range []struct {
		req  ApplyRequest
		code int
	}{
		{ApplyRequest{Session: "hpc"}, 400},                                  // neither source nor file
		{ApplyRequest{Session: "hpc", Source: &src, File: "x.c"}, 400},       // both
		{ApplyRequest{File: "src01.c"}, 400},                                 // file without session
		{ApplyRequest{Source: &src}, 400},                                    // no session, no patch
		{ApplyRequest{Session: "nope", Source: &src}, 404},                   // unknown session
		{ApplyRequest{Session: "hpc", File: "../escape.c"}, 422},             // traversal
		{ApplyRequest{Session: "hpc", File: "missing.c"}, 422},               // no such corpus file
		{ApplyRequest{Patch: "not a patch", Name: "x.c", Source: &src}, 422}, // bad inline patch
		// Unparsable source that still carries the patch's required atom, so
		// the prefilter cannot skip it and the parse error surfaces.
		{ApplyRequest{Session: "hpc", Name: "bad.c", Source: strptr("legacy_halo_exchange(\n")}, 422},
	} {
		resp, body := postJSON(t, url, bad.req)
		if resp.StatusCode != bad.code {
			t.Errorf("%+v: status %d, want %d (%s)", bad.req, resp.StatusCode, bad.code, body)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
			t.Errorf("%+v: error body not JSON: %s", bad.req, body)
		}
	}
}

func strptr(s string) *string { return &s }
