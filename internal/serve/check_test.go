package serve

// The /v1/sessions/{id}/check contract: the session's check-rule findings
// stream as NDJSON (finding lines byte-identical to the CLI's --check
// --format json output, then one summary line), a warm repeat replays every
// finding with parsed == 0, per-severity counters reach /metrics, and the
// whole thing survives concurrent hammering under -race.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/batch"
	"repro/internal/smpl"
)

// checkPatch flags the same legacy call writeCorpus plants in every third
// file, at two severities so the per-severity counters are distinguishable.
const checkPatch = `// gocci:check id=legacy-halo severity=error msg="legacy halo exchange of n"
@legacyhalo@
expression n, tag;
@@
* legacy_halo_exchange(n, tag);

// gocci:check id=compute-call severity=info msg="compute call"
@computecall@
expression n;
identifier fn =~ "^compute_";
@@
* fn(n);
`

func newCheckServer(t *testing.T, root string) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(batch.Options{Workers: 2})
	if _, err := srv.AddSession(Config{
		ID:      "chk",
		Root:    root,
		Patches: []*smpl.Patch{parsePatch(t, "check.cocci", checkPatch)},
		Options: batch.Options{Workers: 2},
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return srv, ts
}

// postCheck runs one check sweep and splits the NDJSON stream into finding
// lines and the trailing summary.
func postCheck(t *testing.T, url string) ([]analysis.Finding, CheckSummary, []string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("check: status %d: %s", resp.StatusCode, buf.String())
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("check content type %q", ct)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	var findings []analysis.Finding
	var summary CheckSummary
	for i, line := range lines {
		if i == len(lines)-1 {
			var cl CheckLine
			if err := json.Unmarshal([]byte(line), &cl); err != nil || cl.Summary == nil {
				t.Fatalf("last line is not a summary: %s", line)
			}
			summary = *cl.Summary
			break
		}
		var f analysis.Finding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("finding line %d: %s: %v", i, line, err)
		}
		if f.Check == "" {
			t.Fatalf("line %d is not a finding: %s", i, line)
		}
		findings = append(findings, f)
	}
	return findings, summary, lines
}

func TestCheckEndpoint(t *testing.T) {
	root := writeCorpus(t, 6) // files 0 and 3 carry legacy_halo_exchange
	_, ts := newCheckServer(t, root)
	url := ts.URL + "/v1/sessions/chk/check"

	findings, summary, _ := postCheck(t, url)
	wantErrors := 2 // legacy-halo in src00 and src03
	wantInfo := 6   // compute-call in every file
	byCheck := map[string]int{}
	for _, f := range findings {
		byCheck[f.Check]++
		if f.FuncHash == "" || f.Line == 0 {
			t.Errorf("incomplete finding %+v", f)
		}
	}
	if byCheck["legacy-halo"] != wantErrors || byCheck["compute-call"] != wantInfo {
		t.Fatalf("findings by check = %v, want legacy-halo:%d compute-call:%d", byCheck, wantErrors, wantInfo)
	}
	if summary.Files != 6 || summary.Findings != len(findings) || summary.Errors != 0 {
		t.Errorf("summary %+v", summary)
	}
	if summary.Parsed == 0 {
		t.Error("cold sweep reports parsed: 0")
	}
	if summary.BySeverity["error"] != wantErrors || summary.BySeverity["info"] != wantInfo {
		t.Errorf("summary by_severity %v", summary.BySeverity)
	}
	// Findings arrive in the CLI's sort order: file-major, then line.
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("findings out of order: %s:%d before %s:%d", a.File, a.Line, b.File, b.Line)
		}
	}

	// Warm repeat: identical findings, zero parses.
	warm, warmSummary, _ := postCheck(t, url)
	if len(warm) != len(findings) {
		t.Fatalf("warm sweep: %d findings, want %d", len(warm), len(findings))
	}
	if warmSummary.Parsed != 0 {
		t.Errorf("warm sweep parsed %d files, want 0", warmSummary.Parsed)
	}

	// The per-severity counters reach /metrics (two sweeps' worth).
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mbuf bytes.Buffer
	mbuf.ReadFrom(resp.Body)
	for _, want := range []string{
		fmt.Sprintf(`gocci_serve_session_findings_total{session="chk",severity="error"} %d`, 2*wantErrors),
		fmt.Sprintf(`gocci_serve_session_findings_total{session="chk",severity="info"} %d`, 2*wantInfo),
		`gocci_serve_session_findings_total{session="chk",severity="warning"} 0`,
		`gocci_serve_http_requests_total{endpoint="check"} 2`,
	} {
		if !strings.Contains(mbuf.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestCheckEndpointFileError pins the error-line shape: an unparsable file
// becomes an Error line and counts in the summary, while the other files'
// findings still stream.
func TestCheckEndpointFileError(t *testing.T) {
	root := writeCorpus(t, 3)
	bad := filepath.Join(root, "bad.c")
	if err := os.WriteFile(bad, []byte("void broken( {\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := newCheckServer(t, root)
	resp, err := http.Post(ts.URL+"/v1/sessions/chk/check", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	sawError := false
	for _, line := range lines[:len(lines)-1] {
		var cl CheckLine
		if json.Unmarshal([]byte(line), &cl) == nil && cl.Error != "" {
			sawError = true
			if !strings.Contains(cl.Error, "bad.c") {
				t.Errorf("error line does not name the file: %s", line)
			}
		}
	}
	if !sawError {
		t.Error("no error line for the unparsable file")
	}
	var cl CheckLine
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &cl); err != nil || cl.Summary == nil {
		t.Fatalf("no trailing summary: %s", lines[len(lines)-1])
	}
	if cl.Summary.Errors != 1 || cl.Summary.Findings == 0 {
		t.Errorf("summary %+v, want 1 error and surviving findings", *cl.Summary)
	}
}

// TestCheckConcurrent hammers /check from several goroutines while edits
// land between requests; run under -race. Every response must be internally
// consistent — sorted findings and a summary whose counts match the lines.
func TestCheckConcurrent(t *testing.T) {
	root := writeCorpus(t, 6)
	_, ts := newCheckServer(t, root)
	url := ts.URL + "/v1/sessions/chk/check"
	postCheck(t, url) // warm once

	const hammers = 4
	const rounds = 15
	errc := make(chan error, hammers*rounds+rounds)
	var wg sync.WaitGroup
	for w := 0; w < hammers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, err := http.Post(url, "application/json", nil)
				if err != nil {
					errc <- err
					return
				}
				var buf bytes.Buffer
				buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errc <- fmt.Errorf("check: status %d", resp.StatusCode)
					return
				}
				lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
				n := 0
				for _, line := range lines[:len(lines)-1] {
					var f analysis.Finding
					if err := json.Unmarshal([]byte(line), &f); err != nil || f.Check == "" {
						errc <- fmt.Errorf("bad finding line: %s", line)
						return
					}
					n++
				}
				var cl CheckLine
				if err := json.Unmarshal([]byte(lines[len(lines)-1]), &cl); err != nil || cl.Summary == nil {
					errc <- fmt.Errorf("bad summary line: %s", lines[len(lines)-1])
					return
				}
				if cl.Summary.Findings != n {
					errc <- fmt.Errorf("summary says %d findings, stream has %d", cl.Summary.Findings, n)
					return
				}
			}
		}()
	}
	// Concurrent edits: rewrite one file per round so warm and re-derived
	// sweeps interleave.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			src := fmt.Sprintf("void work_0(int n)\n{\n\tcompute_0(n + %d);\n}\n", i)
			if err := os.WriteFile(filepath.Join(root, "src01.c"), []byte(src), 0o644); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
