package serve

// Race test for the resident session API: POST /v1/sessions/{id}/invalidate
// dropping the session's derived artifacts while concurrent /v1/apply
// requests replay and re-derive them. Run under -race (the CI test job
// does); the assertions also pin the semantic contract — an apply must see
// either the pre- or post-invalidation state, never a torn one.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestInvalidateRacesApply(t *testing.T) {
	root := writeCorpus(t, 6)
	_, ts := newTestServer(t, root)
	applyURL := ts.URL + "/v1/apply"
	invURL := ts.URL + "/v1/sessions/hpc/invalidate"

	// Warm the session once so the invalidations actually drop state.
	if resp, body := postJSON(t, ts.URL+"/v1/sessions/hpc/run", nil); resp.StatusCode != 200 {
		t.Fatalf("warm run: %d %s", resp.StatusCode, body)
	}

	post := func(url string, payload any) (int, []byte, error) {
		b, err := json.Marshal(payload)
		if err != nil {
			return 0, nil, err
		}
		resp, err := http.Post(url, "application/json", bytes.NewReader(b))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes(), nil
	}

	const appliers = 4
	const rounds = 25
	errc := make(chan error, appliers*rounds+rounds)
	var wg sync.WaitGroup
	for w := 0; w < appliers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Alternate corpus files and inline snippets so both the
				// replay path and the parse path race the invalidation.
				var req ApplyRequest
				if i%2 == 0 {
					req = ApplyRequest{Session: "hpc", File: "src03.c"}
				} else {
					src := fmt.Sprintf("void r%d_%d(int n)\n{\n\tlegacy_halo_exchange(n, %d);\n}\n", w, i, i)
					req = ApplyRequest{Session: "hpc", Name: "r.c", Source: &src}
				}
				code, body, err := post(applyURL, req)
				if err != nil {
					errc <- fmt.Errorf("apply: %v", err)
					return
				}
				if code != 200 {
					errc <- fmt.Errorf("apply: status %d: %s", code, body)
					return
				}
				var ar ApplyResponse
				if err := json.Unmarshal(body, &ar); err != nil {
					errc <- fmt.Errorf("apply: bad body %s: %v", body, err)
					return
				}
				if !ar.Changed || !strings.Contains(ar.Diff, "halo_exchange_v2") {
					errc <- fmt.Errorf("apply: rewrite lost during invalidation race: %s", body)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			code, body, err := post(invURL, nil)
			if err != nil {
				errc <- fmt.Errorf("invalidate: %v", err)
				return
			}
			if code != 200 {
				errc <- fmt.Errorf("invalidate: status %d: %s", code, body)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// The session must still be fully functional after the storm.
	if resp, body := postJSON(t, ts.URL+"/v1/sessions/hpc/run", nil); resp.StatusCode != 200 {
		t.Fatalf("post-race run: %d %s", resp.StatusCode, body)
	}
}
