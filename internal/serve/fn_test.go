// Tests for function-granular incrementality through the resident layer: a
// warm apply after a one-function edit re-matches exactly that function, the
// counters surface through stats, and the intra-file parallel matcher is
// race-clean under concurrent HTTP applies (CI runs this package with -race).

package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
)

// fnKernelFile renders a k-function translation unit where every function
// calls the legacy API; consts holds the per-function constants so a test
// can edit exactly one function between applies.
func fnKernelFile(consts []int) string {
	var sb strings.Builder
	sb.WriteString("#include <hpc.h>\n\n")
	for i, c := range consts {
		fmt.Fprintf(&sb, "void stage_%d(int n)\n{\n\tlegacy_halo_exchange(n, %d);\n}\n\n", i, c)
	}
	sb.WriteString("/* end */\n")
	return sb.String()
}

func writeKernel(t *testing.T, root string, consts []int, old bool) {
	t.Helper()
	path := filepath.Join(root, "ker.c")
	if err := os.WriteFile(path, []byte(fnKernelFile(consts)), 0o644); err != nil {
		t.Fatal(err)
	}
	if old {
		base := time.Now().Add(-time.Hour)
		if err := os.Chtimes(path, base, base); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSessionFunctionGranularApply pins the resident warm-apply contract: a
// warm /v1/apply-equivalent after editing one of k functions re-matches
// exactly that function, replays the rest, stays byte-identical to a fresh
// file-granular run, and the session counters account for all of it.
func TestSessionFunctionGranularApply(t *testing.T) {
	const k = 5
	root := t.TempDir()
	consts := []int{0, 1, 2, 3, 4}
	writeKernel(t, root, consts, true)
	s := newTestSession(t, root, 0)

	scratch := func(consts []int) batch.FileResult {
		r := batch.New(parsePatch(t, "rename.cocci", renamePatch),
			batch.Options{Workers: 1, NoFuncCache: true})
		var out batch.FileResult
		// The session names corpus files by absolute path; mirror that so
		// the diffs compare byte-for-byte.
		r.Run([]core.SourceFile{{Name: filepath.Join(root, "ker.c"), Src: fnKernelFile(consts)}},
			func(fr batch.FileResult) bool { out = fr; return true })
		return out
	}

	cold, err := s.ApplyPath("ker.c")
	if err != nil {
		t.Fatal(err)
	}
	want := scratch(consts)
	if cold.Output != want.Output || cold.Diff != want.Diff {
		t.Fatalf("cold apply diverges from file-granular run:\n%s", cold.Diff)
	}
	if po := cold.Patches[0]; po.FuncsMatched != k || po.FuncsCached != 0 {
		t.Fatalf("cold apply: matched=%d cached=%d, want %d/0", po.FuncsMatched, po.FuncsCached, k)
	}

	// Edit exactly one function (content and mtime both change).
	consts[2] = 99
	writeKernel(t, root, consts, false)

	warm, err := s.ApplyPath("ker.c")
	if err != nil {
		t.Fatal(err)
	}
	want = scratch(consts)
	if warm.Output != want.Output || warm.Diff != want.Diff {
		t.Fatalf("warm apply diverges from file-granular run:\n%s", warm.Diff)
	}
	if po := warm.Patches[0]; po.FuncsMatched != 1 || po.FuncsCached != k-1 {
		t.Fatalf("warm apply after one-function edit: matched=%d cached=%d, want 1/%d",
			po.FuncsMatched, po.FuncsCached, k-1)
	}

	st := s.Stats()
	if st.FuncsMatched != k+1 || st.FuncsCached != k-1 {
		t.Errorf("session counters: matched=%d cached=%d, want %d/%d",
			st.FuncsMatched, st.FuncsCached, k+1, k-1)
	}

	// A sweep after another one-function edit shows the same granularity
	// through the Run path and its RunStats.
	consts[4] = 77
	writeKernel(t, root, consts, false)
	rs, err := s.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.FuncsMatched != 1 || rs.FuncsCached != k-1 {
		t.Errorf("warm sweep after one-function edit: matched=%d cached=%d, want 1/%d",
			rs.FuncsMatched, rs.FuncsCached, k-1)
	}
}

// TestHTTPApplyConcurrentFunctions hammers /v1/apply and /run from many
// goroutines over multi-function inputs, so the intra-file parallel matcher,
// the segment cache, and the counter atomics all run concurrently under
// -race. Responses must stay 200 and deterministic.
func TestHTTPApplyConcurrentFunctions(t *testing.T) {
	root := t.TempDir()
	writeKernel(t, root, []int{0, 1, 2, 3}, true)
	_, ts := newTestServer(t, root)
	applyURL := ts.URL + "/v1/apply"

	wantOut := func(consts []int) string {
		return strings.ReplaceAll(fnKernelFile(consts), "legacy_halo_exchange", "halo_exchange_v2")
	}

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				switch g % 3 {
				case 0: // corpus-file applies
					resp, body := postJSON(t, applyURL, ApplyRequest{Session: "hpc", File: "ker.c"})
					if resp.StatusCode != 200 {
						t.Errorf("apply file: %d %s", resp.StatusCode, body)
						continue
					}
					var ar ApplyResponse
					if err := json.Unmarshal(body, &ar); err != nil {
						t.Error(err)
						continue
					}
					if ar.Output == nil || *ar.Output != wantOut([]int{0, 1, 2, 3}) {
						t.Error("concurrent corpus apply produced a divergent output")
					}
				case 1: // distinct multi-function snippets per iteration
					consts := []int{g*100 + i, g*100 + i + 1, g*100 + i + 2}
					src := fnKernelFile(consts)
					resp, body := postJSON(t, applyURL, ApplyRequest{Session: "hpc", Name: "s.c", Source: &src})
					if resp.StatusCode != 200 {
						t.Errorf("apply snippet: %d %s", resp.StatusCode, body)
						continue
					}
					var ar ApplyResponse
					if err := json.Unmarshal(body, &ar); err != nil {
						t.Error(err)
						continue
					}
					if ar.Output == nil || *ar.Output != wantOut(consts) {
						t.Error("concurrent snippet apply produced a divergent output")
					}
				default: // full sweeps interleaved with the applies
					resp, err := http.Post(ts.URL+"/v1/sessions/hpc/run", "application/json", nil)
					if err != nil {
						t.Error(err)
						continue
					}
					if resp.StatusCode != 200 {
						t.Errorf("run: %d", resp.StatusCode)
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()

	var stats SessionStats
	getJSON(t, ts.URL+"/v1/sessions/hpc/stats", &stats)
	if stats.FuncsMatched == 0 {
		t.Error("no function segments matched across the hammer run")
	}
	if stats.FuncsMatched+stats.FuncsCached < 4 {
		t.Errorf("function counters too low: %+v", stats)
	}
}
