// A strict Prometheus text-format (0.0.4) checker over the full /metrics
// exposition, plus the trace endpoint's contract. The checker enforces what
// a strict scraper does: every sample belongs to a family announced by
// exactly one HELP and one TYPE line before it, a family's series are
// contiguous, histogram buckets are cumulative with ascending bounds and a
// +Inf bucket equal to _count, and sample names match their family.

package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// promFamily is one parsed metric family.
type promFamily struct {
	name    string
	typ     string
	samples []promSample
}

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePromText parses a text-format exposition strictly, failing the test
// on any violation of the format invariants.
func parsePromText(t *testing.T, body string) []promFamily {
	t.Helper()
	var fams []promFamily
	seen := map[string]bool{}
	var cur *promFamily
	helped := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for n := 1; sc.Scan(); n++ {
		line := sc.Text()
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				t.Fatalf("line %d: malformed HELP: %q", n, line)
			}
			if helped[name] {
				t.Fatalf("line %d: duplicate HELP for %s", n, name)
			}
			helped[name] = true
			if seen[name] {
				t.Fatalf("line %d: HELP for %s after its samples", n, name)
			}
			fams = append(fams, promFamily{name: name})
			cur = &fams[len(fams)-1]
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", n, line)
			}
			if cur == nil || cur.name != fields[0] || cur.typ != "" || len(cur.samples) > 0 {
				t.Fatalf("line %d: TYPE %s not immediately after its HELP", n, fields[0])
			}
			switch fields[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown type %q", n, fields[1])
			}
			cur.typ = fields[1]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", n, line)
		default:
			s := parsePromSample(t, n, line)
			base := s.name
			if cur != nil && cur.typ == "histogram" {
				for _, suf := range []string{"_bucket", "_sum", "_count"} {
					if trimmed, ok := strings.CutSuffix(s.name, suf); ok && trimmed == cur.name {
						base = trimmed
						break
					}
				}
			}
			if cur == nil || cur.typ == "" || base != cur.name {
				t.Fatalf("line %d: sample %s outside its family block (open family %v)", n, s.name, cur)
			}
			seen[cur.name] = true
			cur.samples = append(cur.samples, s)
		}
	}
	for _, f := range fams {
		if f.typ == "" {
			t.Fatalf("family %s has HELP but no TYPE", f.name)
		}
		if f.typ == "histogram" {
			checkPromHistogram(t, f)
		}
	}
	return fams
}

// parsePromSample parses `name{k="v",...} value`.
func parsePromSample(t *testing.T, n int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("line %d: malformed sample %q", n, line)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			t.Fatalf("line %d: unterminated labels in %q", n, line)
		}
		for _, pair := range strings.Split(rest[1:end], ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || !strings.HasPrefix(v, `"`) || !strings.HasSuffix(v, `"`) {
				t.Fatalf("line %d: malformed label %q", n, pair)
			}
			if _, dup := s.labels[k]; dup {
				t.Fatalf("line %d: duplicate label %s", n, k)
			}
			s.labels[k] = v[1 : len(v)-1]
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 {
		t.Fatalf("line %d: want exactly one value in %q", n, line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		t.Fatalf("line %d: bad value %q: %v", n, fields[0], err)
	}
	s.value = v
	return s
}

// checkPromHistogram verifies one histogram family: per label set, buckets
// are cumulative over ascending le bounds, the +Inf bucket exists and
// equals _count, and _sum/_count are present exactly once.
func checkPromHistogram(t *testing.T, f promFamily) {
	t.Helper()
	type series struct {
		buckets []promSample
		sum     *promSample
		count   *promSample
	}
	byKey := map[string]*series{}
	key := func(labels map[string]string) string {
		kv := make([]string, 0, len(labels))
		for k, v := range labels {
			if k != "le" {
				kv = append(kv, k+"="+v)
			}
		}
		sort.Strings(kv)
		return strings.Join(kv, ",")
	}
	get := func(labels map[string]string) *series {
		k := key(labels)
		if byKey[k] == nil {
			byKey[k] = &series{}
		}
		return byKey[k]
	}
	for _, s := range f.samples {
		sr := get(s.labels)
		switch {
		case s.name == f.name+"_bucket":
			if _, ok := s.labels["le"]; !ok {
				t.Fatalf("%s: bucket without le: %v", f.name, s.labels)
			}
			sr.buckets = append(sr.buckets, s)
		case s.name == f.name+"_sum":
			if sr.sum != nil {
				t.Fatalf("%s: duplicate _sum for %v", f.name, s.labels)
			}
			cp := s
			sr.sum = &cp
		case s.name == f.name+"_count":
			if sr.count != nil {
				t.Fatalf("%s: duplicate _count for %v", f.name, s.labels)
			}
			cp := s
			sr.count = &cp
		default:
			t.Fatalf("%s: unexpected histogram sample %s", f.name, s.name)
		}
	}
	for k, sr := range byKey {
		if sr.sum == nil || sr.count == nil || len(sr.buckets) == 0 {
			t.Fatalf("%s{%s}: incomplete histogram series", f.name, k)
		}
		prevBound := -1.0
		prevCount := -1.0
		infSeen := false
		for _, b := range sr.buckets {
			le := b.labels["le"]
			bound := 0.0
			if le == "+Inf" {
				infSeen = true
				if b.value != sr.count.value {
					t.Errorf("%s{%s}: +Inf bucket %v != count %v", f.name, k, b.value, sr.count.value)
				}
			} else {
				var err error
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("%s{%s}: bad le %q", f.name, k, le)
				}
				if infSeen {
					t.Errorf("%s{%s}: bucket after +Inf", f.name, k)
				}
				if bound <= prevBound {
					t.Errorf("%s{%s}: le bounds not ascending (%v after %v)", f.name, k, bound, prevBound)
				}
				prevBound = bound
			}
			if b.value < prevCount {
				t.Errorf("%s{%s}: bucket counts not cumulative (%v after %v)", f.name, k, b.value, prevCount)
			}
			prevCount = b.value
		}
		if !infSeen {
			t.Errorf("%s{%s}: no +Inf bucket", f.name, k)
		}
	}
}

// TestMetricsScrapeClean exercises every endpoint once, then holds the full
// /metrics exposition to the strict checker and spot-checks the families
// the observability layer added.
func TestMetricsScrapeClean(t *testing.T) {
	root := writeCorpus(t, 6)
	_, ts := newTestServer(t, root)

	if resp, err := http.Post(ts.URL+"/v1/sessions/hpc/run", "application/json", nil); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if resp, err := http.Post(ts.URL+"/v1/sessions/hpc/check", "application/json", nil); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	src := "void f(int n)\n{\n\tlegacy_halo_exchange(n, 1);\n}\n"
	if resp, _ := postJSON(t, ts.URL+"/v1/apply", map[string]any{"session": "hpc", "source": src}); resp.StatusCode != 200 {
		t.Fatalf("apply status %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/sessions/hpc/invalidate", nil); resp.StatusCode != 200 {
		t.Fatalf("invalidate status %d", resp.StatusCode)
	}
	getJSON(t, ts.URL+"/healthz", nil)
	getJSON(t, ts.URL+"/v1/sessions", nil)
	getJSON(t, ts.URL+"/v1/sessions/hpc/stats", nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams := parsePromText(t, string(body))

	byName := map[string]promFamily{}
	for _, f := range fams {
		byName[f.name] = f
	}
	for name, typ := range map[string]string{
		"gocci_serve_http_requests_total":      "counter",
		"gocci_serve_http_errors_total":        "counter",
		"gocci_serve_sessions":                 "gauge",
		"gocci_serve_http_request_seconds":     "histogram",
		"gocci_serve_session_runs_total":       "counter",
		"gocci_serve_session_stage_seconds":    "histogram",
		"gocci_serve_session_tracked_files":    "gauge",
		"gocci_serve_session_files_read_total": "counter",
		"gocci_serve_session_findings_total":   "counter",
	} {
		f, ok := byName[name]
		if !ok {
			t.Errorf("family %s missing from /metrics", name)
			continue
		}
		if f.typ != typ {
			t.Errorf("family %s has type %s, want %s", name, f.typ, typ)
		}
	}

	// The latency histogram must cover exactly the engine-work endpoints,
	// each with at least the one observation made above.
	lat := byName["gocci_serve_http_request_seconds"]
	counts := map[string]float64{}
	for _, s := range lat.samples {
		if s.name == lat.name+"_count" {
			counts[s.labels["endpoint"]] = s.value
		}
	}
	for _, ep := range []string{"run", "check", "apply", "invalidate"} {
		if counts[ep] < 1 {
			t.Errorf("endpoint %s latency histogram has count %v, want >= 1", ep, counts[ep])
		}
	}
	if len(counts) != 4 {
		t.Errorf("latency endpoints = %v, want exactly run/check/apply/invalidate", counts)
	}

	// Stage histograms carry per-session per-stage series; the sweep above
	// must have observed at least the match stage.
	stages := map[string]bool{}
	for _, s := range byName["gocci_serve_session_stage_seconds"].samples {
		if s.labels["session"] != "hpc" && s.labels["session"] != "" {
			t.Errorf("unexpected session label %q", s.labels["session"])
		}
		if st := s.labels["stage"]; st != "" {
			stages[st] = true
		}
	}
	for _, want := range []string{"match", "parse", "read", "worker"} {
		if !stages[want] {
			t.Errorf("stage %q missing from stage histograms (have %v)", want, stages)
		}
	}
}

// TestTraceEndpoint pins the trace endpoint's contract: 404 with a JSON
// error before any sweep, Chrome trace JSON after one, and stage self-times
// on the sweep's NDJSON summary line.
func TestTraceEndpoint(t *testing.T) {
	root := writeCorpus(t, 4)
	_, ts := newTestServer(t, root)

	resp, err := http.Get(ts.URL + "/v1/sessions/hpc/trace")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace before run: status %d, want 404", resp.StatusCode)
	}

	runResp, err := http.Post(ts.URL+"/v1/sessions/hpc/run", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer runResp.Body.Close()
	var last RunLine
	sc := bufio.NewScanner(runResp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
	}
	if last.Summary == nil {
		t.Fatal("no summary line")
	}
	if len(last.Summary.StageSeconds) == 0 {
		t.Error("summary line has no stage_seconds")
	}
	if _, ok := last.Summary.StageSeconds["match"]; !ok {
		t.Errorf("summary stage_seconds misses match: %v", last.Summary.StageSeconds)
	}

	resp, err = http.Get(ts.URL + "/v1/sessions/hpc/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("trace after run: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace content type %q", ct)
	}
	var trace struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		t.Fatalf("trace endpoint body is not JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	stages := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "X" {
			stages[ev.Name] = true
		}
	}
	for _, want := range []string{"worker", "file", "match"} {
		if !stages[want] {
			t.Errorf("sweep trace misses stage %q (have %v)", want, stages)
		}
	}

	// An unknown session keeps 404 semantics.
	if resp, err := http.Get(ts.URL + "/v1/sessions/nope/trace"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown session trace: status %d", resp.StatusCode)
		}
	}
}
