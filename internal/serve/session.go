// Package serve is gocci's resident patch-serving daemon: it keeps the
// expensive artifacts of semantic patching — compiled patch campaigns, the
// scan-word index, content hashes, and recently-used parse trees — warm in
// memory across requests, so that re-applying a patch library over a
// slowly-changing tree costs only what actually changed. A Session binds
// one corpus root to one campaign of compiled patches plus a cache stack
// (in-memory LRU over an optional disk cache); the Server exposes sessions
// over an HTTP/JSON API (see docs/serve.md) and is equally usable as a
// library through the public sempatch.Server/sempatch.Session wrappers.
//
// Invalidation is stat-driven: every run revalidates each corpus file by
// mtime+size before trusting resident artifacts, and an optional poll
// watcher (watch.go) drops state for files that changed or vanished
// between requests. A content change that preserves both mtime and size is
// invisible to stat — POST /v1/sessions/{id}/invalidate (or
// Session.Invalidate) forces a full re-derivation.
package serve

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/batch"
	"repro/internal/cache"
	"repro/internal/cast"
	"repro/internal/obs"
	"repro/internal/smpl"
)

// srcExts are the file suffixes a session considers corpus sources, the
// same set gocci -r collects.
var srcExts = map[string]bool{
	".c": true, ".h": true,
	".cc": true, ".cpp": true, ".cxx": true,
	".hh": true, ".hpp": true, ".hxx": true,
	".cu": true, ".cuh": true,
}

// collectSources walks root gathering C/C++/CUDA files in sorted path
// order (skipping .git), so sweep order is reproducible run to run.
func collectSources(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if d == nil {
				// The root itself is unreadable (deleted out from under a
				// running daemon): the sweep must fail loudly, not report a
				// healthy empty corpus.
				return err
			}
			// One unreadable subtree must not take the session down; the
			// file simply drops out of this sweep.
			if d.IsDir() {
				return filepath.SkipDir
			}
			return nil
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if srcExts[filepath.Ext(path)] {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// Config configures one corpus session.
type Config struct {
	// ID names the session in URLs ("default" when empty).
	ID string
	// Root is the corpus directory the session serves.
	Root string
	// Patches is the campaign applied by sweeps and session-scoped applies,
	// in order.
	Patches []*smpl.Patch
	// Options carries the engine configuration and worker-pool sizing.
	// Options.CacheDir, when set, becomes the disk layer behind the
	// session's in-memory cache, so a restarted daemon comes back warm;
	// Options.Store is ignored (the session builds its own stack).
	Options batch.Options
	// ASTCacheSize bounds the resident parse-tree LRU (default 256 trees).
	ASTCacheSize int
	// MemCacheEntries bounds the in-memory scan/result cache (default
	// cache.DefaultMemoryEntries).
	MemCacheEntries int
	// WatchInterval is the poll watcher's period; 0 disables the watcher
	// (runs still revalidate by stat, so results are never stale — the
	// watcher only reclaims resident state earlier).
	WatchInterval time.Duration
}

// Session is one resident corpus: compiled campaign, cache stack, and the
// per-file validation table. All methods are safe for concurrent use;
// concurrent sweeps share the worker-pool bound of Config.Options.Workers
// per request.
type Session struct {
	id       string
	root     string
	opts     batch.Options
	patches  []*smpl.Patch
	campaign *batch.Campaign
	mem      *cache.Memory
	disk     *cache.Cache
	asts     *cache.LRU[*cast.File]

	mu    sync.Mutex
	files map[string]*fileEntry // corpus path -> last validated stat + hash

	// Counters behind /metrics and Stats (see SessionStats for meanings).
	runs          atomic.Int64
	applies       atomic.Int64
	processed     atomic.Int64
	changed       atomic.Int64
	errors        atomic.Int64
	patchCached   atomic.Int64
	patchSkipped  atomic.Int64
	fnMatchedC    atomic.Int64
	fnCachedC     atomic.Int64
	demoted       atomic.Int64
	warningsC     atomic.Int64
	findingsErr   atomic.Int64
	findingsWarn  atomic.Int64
	findingsInfo  atomic.Int64
	parsed        atomic.Int64
	read          atomic.Int64
	invalidations atomic.Int64
	watchScans    atomic.Int64
	lastScanNano  atomic.Int64

	watchStop chan struct{}
	watchDone chan struct{}
	stopOnce  sync.Once

	// Observability: every request runs under a fresh per-request tracer
	// (CollectStatesT), whose profile folds into per-stage latency
	// histograms and cumulative self-time totals; the most recent full
	// sweep's trace is kept for GET /v1/sessions/{id}/trace.
	obsMu     sync.Mutex
	lastTrace *obs.Tracer
	stageHist map[string]*obs.Histogram
	stageSelf map[string]float64
}

// fileEntry is the resident validation record for one corpus file: the
// stat under which hash was derived. A run whose fresh stat matches trusts
// hash (and, through it, the word and AST caches) without reading.
type fileEntry struct {
	mtime time.Time
	size  int64
	hash  string
}

// NewSession builds the resident state for cfg and, when cfg.WatchInterval
// is positive, starts the poll watcher. Configuration errors — a missing
// root, no patches, an undeclared define, an unusable cache dir — are
// returned here, not deferred to the first request.
func NewSession(cfg Config) (*Session, error) {
	id := cfg.ID
	if id == "" {
		id = "default"
	}
	info, err := os.Stat(cfg.Root)
	if err != nil {
		return nil, fmt.Errorf("serve: session %s: %w", id, err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("serve: session %s: root %s is not a directory", id, cfg.Root)
	}
	s := &Session{
		id:        id,
		root:      cfg.Root,
		patches:   cfg.Patches,
		files:     map[string]*fileEntry{},
		asts:      cache.NewLRU[*cast.File](cfg.ASTCacheSize, 256),
		stageHist: map[string]*obs.Histogram{},
		stageSelf: map[string]float64{},
	}
	opts := cfg.Options
	if opts.CacheDir != "" {
		disk, err := cache.Open(opts.CacheDir)
		if err != nil {
			return nil, fmt.Errorf("serve: session %s: %w", id, err)
		}
		s.disk = disk
	}
	s.mem = cache.NewMemory(s.disk, cfg.MemCacheEntries)
	opts.CacheDir = ""
	opts.Store = s.mem
	s.opts = opts
	s.campaign = batch.NewCampaign(cfg.Patches, opts)
	// A zero-state run surfaces the campaign's construction error (no
	// patches, undeclared defines) now instead of on the first request.
	if _, err := s.campaign.CollectStates(nil, nil); err != nil {
		return nil, fmt.Errorf("serve: session %s: %w", id, err)
	}
	if cfg.WatchInterval > 0 {
		s.watchStop = make(chan struct{})
		s.watchDone = make(chan struct{})
		go s.watch(cfg.WatchInterval)
	}
	return s, nil
}

// ID returns the session's identifier.
func (s *Session) ID() string { return s.id }

// Root returns the corpus directory.
func (s *Session) Root() string { return s.root }

// PatchNames lists the campaign members in order.
func (s *Session) PatchNames() []string {
	out := make([]string, len(s.patches))
	for i, p := range s.patches {
		out[i] = p.Name
	}
	return out
}

// Close stops the watcher (if running); it is idempotent and safe to call
// concurrently. The session remains usable for requests; only the
// background invalidation stops.
func (s *Session) Close() {
	if s.watchStop != nil {
		s.stopOnce.Do(func() { close(s.watchStop) })
		<-s.watchDone
	}
}

// Invalidate drops every resident artifact — validation table, parse-tree
// LRU, and the in-memory cache layer. The disk cache (content-addressed,
// never stale) is untouched, so the next sweep re-derives hashes but still
// replays unchanged results from disk.
func (s *Session) Invalidate() {
	s.mu.Lock()
	s.files = map[string]*fileEntry{}
	s.mu.Unlock()
	s.asts.Clear()
	s.mem.Invalidate()
	s.invalidations.Add(1)
}

// state builds the FileState for one corpus file: resident artifacts are
// seeded only when the file's fresh stat matches the validation table.
func (s *Session) state(path string, info fs.FileInfo) *batch.FileState {
	st := &batch.FileState{Name: path, Read: func() (string, error) {
		b, err := os.ReadFile(path)
		return string(b), err
	}}
	if info == nil {
		return st
	}
	s.mu.Lock()
	e := s.files[path]
	s.mu.Unlock()
	if e != nil && e.mtime.Equal(info.ModTime()) && e.size == info.Size() {
		st.Hash = e.hash
		if cf, ok := s.asts.Get(e.hash); ok {
			st.Parsed = cf
		}
	}
	return st
}

// harvest folds one processed state back into the resident tables.
func (s *Session) harvest(path string, info fs.FileInfo, st *batch.FileState) {
	if st.ReadInput {
		s.read.Add(1)
	}
	if st.ParsedInput {
		s.parsed.Add(1)
		s.asts.Add(st.Hash, st.Parsed)
	}
	if info == nil || st.Hash == "" {
		return
	}
	s.mu.Lock()
	s.files[path] = &fileEntry{mtime: info.ModTime(), size: info.Size(), hash: st.Hash}
	s.mu.Unlock()
}

// RunStats aggregates one sweep: the campaign's own statistics plus the
// resident-state accounting a daemon lives by.
type RunStats struct {
	batch.CampaignStats
	// Cached and Skipped total the per-patch counters across the campaign.
	Cached  int
	Skipped int
	// FuncsMatched and FuncsCached total the function-granular counters
	// across the campaign: function segments matched fresh vs replayed from
	// the segment cache. A warm sweep after editing one function of one file
	// shows FuncsMatched == 1 (per function-local patch).
	FuncsMatched int
	FuncsCached  int
	// Parsed counts files whose input text was parsed this sweep — after a
	// warm sweep that edited k files, exactly k. Read counts files whose
	// bytes had to be read at all.
	Parsed int
	Read   int
	// Demoted and Warnings total the post-transform verifier's demotions
	// and findings across the campaign (Options.Verify runs only).
	Demoted  int
	Warnings int
	// StageSeconds is this sweep's per-stage self-time in seconds (worker
	// and file umbrella time is pool glue and scheduling).
	StageSeconds map[string]float64
}

// Run sweeps the whole corpus through the campaign, streaming per-file
// results to fn (which may be nil) in sorted path order. Resident
// artifacts are revalidated by stat, reused where valid, and re-derived
// (then kept) where not. A non-nil error from fn stops the sweep.
func (s *Session) Run(fn func(batch.CampaignFileResult) error) (RunStats, error) {
	s.runs.Add(1)
	paths, err := collectSources(s.root)
	if err != nil {
		return RunStats{}, fmt.Errorf("serve: scanning %s: %w", s.root, err)
	}
	infos := make([]fs.FileInfo, len(paths))
	states := make([]*batch.FileState, len(paths))
	for i, path := range paths {
		info, err := os.Stat(path)
		if err == nil {
			infos[i] = info
		}
		// A stat failure (racing delete) leaves info nil: the state carries
		// no resident seed and the read reports the per-file error.
		states[i] = s.state(path, infos[i])
	}
	tr := obs.New()
	st, err := s.campaign.CollectStatesT(states, tr, func(fr batch.CampaignFileResult) error {
		s.countFindings(fr.Findings())
		if fn == nil {
			return nil
		}
		return fn(fr)
	})
	for i := range states {
		s.harvest(paths[i], infos[i], states[i])
	}
	out := s.account(st, states)
	out.StageSeconds = s.observe(tr, true)
	return out, err
}

// countFindings folds one file's check-rule findings into the per-severity
// counters behind /metrics.
func (s *Session) countFindings(fs []analysis.Finding) {
	for _, f := range fs {
		switch f.Severity {
		case analysis.SeverityError:
			s.findingsErr.Add(1)
		case analysis.SeverityWarning:
			s.findingsWarn.Add(1)
		default:
			s.findingsInfo.Add(1)
		}
	}
}

// observe folds one request's trace into the session's stage histograms and
// cumulative totals, returning the request's per-stage self-seconds. keep
// retains the trace as the session's most recent (full sweeps only, so a
// stream of tiny applies never evicts the interesting trace).
func (s *Session) observe(tr *obs.Tracer, keep bool) map[string]float64 {
	stages := tr.Profile().StageSeconds()
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	for stage, sec := range stages {
		h := s.stageHist[stage]
		if h == nil {
			h = obs.NewHistogram()
			s.stageHist[stage] = h
		}
		h.Observe(sec)
		s.stageSelf[stage] += sec
	}
	if keep {
		s.lastTrace = tr
	}
	return stages
}

// WriteTrace writes the most recent full sweep's Chrome trace-event JSON to
// w, reporting false when no sweep has run yet.
func (s *Session) WriteTrace(w io.Writer) (bool, error) {
	s.obsMu.Lock()
	tr := s.lastTrace
	s.obsMu.Unlock()
	if tr == nil {
		return false, nil
	}
	return true, tr.WriteJSON(w)
}

// stageMetric pairs one stage with its latency-histogram snapshot.
type stageMetric struct {
	stage string
	snap  obs.HistSnapshot
}

// stageMetrics snapshots the per-stage histograms in sorted stage order,
// the shape /metrics renders.
func (s *Session) stageMetrics() []stageMetric {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	out := make([]stageMetric, 0, len(s.stageHist))
	for stage, h := range s.stageHist {
		out = append(out, stageMetric{stage: stage, snap: h.Snapshot()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].stage < out[j].stage })
	return out
}

// account folds a completed sweep into the session counters and totals.
func (s *Session) account(st batch.CampaignStats, states []*batch.FileState) RunStats {
	out := RunStats{CampaignStats: st}
	for _, ps := range st.PerPatch {
		out.Cached += ps.Cached
		out.Skipped += ps.Skipped
		out.FuncsMatched += ps.FuncsMatched
		out.FuncsCached += ps.FuncsCached
		out.Demoted += ps.Demoted
		out.Warnings += ps.Warnings
	}
	for _, fst := range states {
		if fst.ParsedInput {
			out.Parsed++
		}
		if fst.ReadInput {
			out.Read++
		}
	}
	s.processed.Add(int64(st.Files))
	s.changed.Add(int64(st.Changed))
	s.errors.Add(int64(st.Errors))
	s.patchCached.Add(int64(out.Cached))
	s.patchSkipped.Add(int64(out.Skipped))
	s.fnMatchedC.Add(int64(out.FuncsMatched))
	s.fnCachedC.Add(int64(out.FuncsCached))
	s.demoted.Add(int64(out.Demoted))
	s.warningsC.Add(int64(out.Warnings))
	return out
}

// ApplyPath applies the session's campaign to one corpus file named
// relative to the root, using (and refreshing) resident artifacts. The
// path must stay inside the root.
func (s *Session) ApplyPath(rel string) (batch.CampaignFileResult, error) {
	return s.applyPathWith(s.campaign, rel)
}

// applyPathWith is ApplyPath under a caller-supplied campaign (an inline
// patch from /v1/apply): resident artifacts still seed and harvest, since
// they are keyed by content, not by patch.
func (s *Session) applyPathWith(camp *batch.Campaign, rel string) (batch.CampaignFileResult, error) {
	s.applies.Add(1)
	if !filepath.IsLocal(rel) {
		return batch.CampaignFileResult{}, fmt.Errorf("serve: path %q escapes the session root", rel)
	}
	path := filepath.Join(s.root, rel)
	info, err := os.Stat(path)
	if err != nil {
		return batch.CampaignFileResult{}, fmt.Errorf("serve: %w", err)
	}
	st := s.state(path, info)
	fr, err := s.runOneWith(camp, st)
	s.harvest(path, info, st)
	return fr, err
}

// ApplySnippet applies the session's campaign to an in-memory source
// snippet. The snippet shares the session's cache stack (a repeated
// snippet replays from the result cache) but never enters the corpus
// tables.
func (s *Session) ApplySnippet(name, src string) (batch.CampaignFileResult, error) {
	s.applies.Add(1)
	if name == "" {
		name = "snippet.c"
	}
	st := &batch.FileState{Name: name, Src: src, Loaded: true}
	fr, err := s.runOne(st)
	if st.ParsedInput {
		s.parsed.Add(1)
	}
	return fr, err
}

// runOne sweeps a single state through the session's campaign.
func (s *Session) runOne(st *batch.FileState) (batch.CampaignFileResult, error) {
	return s.runOneWith(s.campaign, st)
}

// runOneWith sweeps a single state through camp, accounting the outcome.
func (s *Session) runOneWith(camp *batch.Campaign, st *batch.FileState) (batch.CampaignFileResult, error) {
	var out batch.CampaignFileResult
	tr := obs.New()
	stats, err := camp.CollectStatesT([]*batch.FileState{st}, tr, func(fr batch.CampaignFileResult) error {
		out = fr
		return nil
	})
	s.observe(tr, false)
	if err != nil {
		return batch.CampaignFileResult{}, err
	}
	s.countFindings(out.Findings())
	s.processed.Add(int64(stats.Files))
	s.changed.Add(int64(stats.Changed))
	s.errors.Add(int64(stats.Errors))
	for _, ps := range stats.PerPatch {
		s.patchCached.Add(int64(ps.Cached))
		s.patchSkipped.Add(int64(ps.Skipped))
		s.fnMatchedC.Add(int64(ps.FuncsMatched))
		s.fnCachedC.Add(int64(ps.FuncsCached))
		s.demoted.Add(int64(ps.Demoted))
		s.warningsC.Add(int64(ps.Warnings))
	}
	return out, nil
}

// SessionStats is a point-in-time snapshot for /v1/sessions/{id}/stats.
type SessionStats struct {
	ID      string   `json:"id"`
	Root    string   `json:"root"`
	Patches []string `json:"patches"`
	Workers int      `json:"workers"`

	// TrackedFiles is the validation table's size — corpus files whose
	// stat+hash are resident.
	TrackedFiles int `json:"tracked_files"`

	// Cumulative request counters.
	Runs    int64 `json:"runs"`
	Applies int64 `json:"applies"`

	// Cumulative per-file accounting across all requests.
	FilesProcessed int64 `json:"files_processed"`
	FilesChanged   int64 `json:"files_changed"`
	FileErrors     int64 `json:"file_errors"`
	PatchCached    int64 `json:"patch_results_cached"`
	PatchSkipped   int64 `json:"patch_results_skipped"`
	FuncsMatched   int64 `json:"functions_matched"`
	FuncsCached    int64 `json:"functions_cached"`
	Demoted        int64 `json:"edits_demoted"`
	Warnings       int64 `json:"verify_warnings"`
	FilesParsed    int64 `json:"files_parsed"`
	FilesRead      int64 `json:"files_read"`

	// Check-rule findings reported across all requests, by severity.
	FindingsError   int64 `json:"findings_error"`
	FindingsWarning int64 `json:"findings_warning"`
	FindingsInfo    int64 `json:"findings_info"`

	// StageSeconds is cumulative per-stage self-time across all requests,
	// in seconds (pipeline stages plus the worker/file umbrella glue).
	StageSeconds map[string]float64 `json:"stage_seconds,omitempty"`

	// Resident cache state.
	ASTEntries int    `json:"ast_entries"`
	ASTHits    int64  `json:"ast_hits"`
	ASTMisses  int64  `json:"ast_misses"`
	MemEntries int    `json:"mem_entries"`
	MemHits    int64  `json:"mem_hits"`
	MemMisses  int64  `json:"mem_misses"`
	DiskCache  string `json:"disk_cache,omitempty"`

	// Watcher state.
	Invalidations int64  `json:"invalidations"`
	WatchScans    int64  `json:"watch_scans"`
	LastWatchScan string `json:"last_watch_scan,omitempty"`
}

// Stats snapshots the session.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	tracked := len(s.files)
	s.mu.Unlock()
	astHits, astMisses := s.asts.HitsMisses()
	memHits, memMisses := s.mem.HitsMisses()
	st := SessionStats{
		ID:              s.id,
		Root:            s.root,
		Patches:         s.PatchNames(),
		Workers:         s.opts.Workers,
		TrackedFiles:    tracked,
		Runs:            s.runs.Load(),
		Applies:         s.applies.Load(),
		FilesProcessed:  s.processed.Load(),
		FilesChanged:    s.changed.Load(),
		FileErrors:      s.errors.Load(),
		PatchCached:     s.patchCached.Load(),
		PatchSkipped:    s.patchSkipped.Load(),
		FuncsMatched:    s.fnMatchedC.Load(),
		FuncsCached:     s.fnCachedC.Load(),
		Demoted:         s.demoted.Load(),
		Warnings:        s.warningsC.Load(),
		FilesParsed:     s.parsed.Load(),
		FilesRead:       s.read.Load(),
		FindingsError:   s.findingsErr.Load(),
		FindingsWarning: s.findingsWarn.Load(),
		FindingsInfo:    s.findingsInfo.Load(),
		ASTEntries:      s.asts.Len(),
		ASTHits:         astHits,
		ASTMisses:       astMisses,
		MemEntries:      s.mem.Len(),
		MemHits:         memHits,
		MemMisses:       memMisses,
		Invalidations:   s.invalidations.Load(),
		WatchScans:      s.watchScans.Load(),
	}
	s.obsMu.Lock()
	if len(s.stageSelf) > 0 {
		st.StageSeconds = make(map[string]float64, len(s.stageSelf))
		for k, v := range s.stageSelf {
			st.StageSeconds[k] = v
		}
	}
	s.obsMu.Unlock()
	if s.disk != nil {
		st.DiskCache = s.disk.Dir()
	}
	if n := s.lastScanNano.Load(); n != 0 {
		st.LastWatchScan = time.Unix(0, n).UTC().Format(time.RFC3339)
	}
	return st
}
