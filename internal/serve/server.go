// The HTTP face of the daemon. JSON in, JSON (or NDJSON for streamed
// sweeps, or Prometheus text for /metrics) out; every handler is safe for
// concurrent use and the heavy lifting stays in Session. See docs/serve.md
// for the API reference.

package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/batch"
	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/smpl"
)

// maxRequestBody bounds /v1/apply request bodies (patch + source) so a
// misbehaving client cannot balloon the daemon. 16 MiB comfortably holds
// any real source file.
const maxRequestBody = 16 << 20

// Server routes the HTTP API over a set of sessions. One Server typically
// lives for the process; sessions may be added at startup (CLI) or over
// the program's lifetime (library use).
type Server struct {
	mu       sync.RWMutex
	sessions map[string]*Session

	// defaults configures session-less /v1/apply requests (inline patch +
	// inline source); scratch is their cache stack and compiled their
	// compiled-campaign LRU, shared with session-scoped inline patches
	// (keyed per session, since options differ).
	defaults batch.Options
	scratch  *cache.Memory
	compiled *cache.LRU[*batch.Campaign]

	requests httpCounters

	// latency holds per-endpoint request-latency histograms for the
	// endpoints that do engine work. The map is fixed at construction;
	// Histogram is internally synchronized.
	latency map[string]*obs.Histogram
}

// httpCounters counts requests per endpoint plus error responses.
type httpCounters struct {
	healthz, metrics, sessions, stats, run, check, invalidate, apply, trace atomic.Int64
	errors                                                                  atomic.Int64
}

// NewServer returns a Server with no sessions. defaults configures
// session-less applies (dialect, limits, workers); its CacheDir/Store are
// ignored — scratch applies cache in memory only.
func NewServer(defaults batch.Options) *Server {
	defaults.CacheDir = ""
	defaults.Store = nil
	srv := &Server{
		sessions: map[string]*Session{},
		defaults: defaults,
		scratch:  cache.NewMemory(nil, 4096),
		compiled: cache.NewLRU[*batch.Campaign](64, 64),
		latency: map[string]*obs.Histogram{
			"run":        obs.NewHistogram(),
			"check":      obs.NewHistogram(),
			"apply":      obs.NewHistogram(),
			"invalidate": obs.NewHistogram(),
		},
	}
	return srv
}

// AddSession builds the session for cfg and registers it.
func (srv *Server) AddSession(cfg Config) (*Session, error) {
	s, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if _, dup := srv.sessions[s.ID()]; dup {
		s.Close()
		return nil, fmt.Errorf("serve: duplicate session id %q", s.ID())
	}
	srv.sessions[s.ID()] = s
	return s, nil
}

// Session returns a registered session.
func (srv *Server) Session(id string) (*Session, bool) {
	srv.mu.RLock()
	defer srv.mu.RUnlock()
	s, ok := srv.sessions[id]
	return s, ok
}

// Close stops every session's watcher.
func (srv *Server) Close() {
	srv.mu.RLock()
	defer srv.mu.RUnlock()
	for _, s := range srv.sessions {
		s.Close()
	}
}

// sessionList returns the sessions sorted by id.
func (srv *Server) sessionList() []*Session {
	srv.mu.RLock()
	defer srv.mu.RUnlock()
	out := make([]*Session, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// Handler returns the daemon's HTTP handler.
func (srv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", srv.handleHealthz)
	mux.HandleFunc("GET /metrics", srv.handleMetrics)
	mux.HandleFunc("GET /v1/sessions", srv.handleSessions)
	mux.HandleFunc("GET /v1/sessions/{id}/stats", srv.handleStats)
	mux.HandleFunc("GET /v1/sessions/{id}/trace", srv.handleTrace)
	mux.HandleFunc("POST /v1/sessions/{id}/run", srv.handleRun)
	mux.HandleFunc("POST /v1/sessions/{id}/check", srv.handleCheck)
	mux.HandleFunc("POST /v1/sessions/{id}/invalidate", srv.handleInvalidate)
	mux.HandleFunc("POST /v1/apply", srv.handleApply)
	return mux
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func (srv *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	srv.requests.errors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (srv *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	srv.requests.healthz.Add(1)
	writeJSON(w, map[string]any{"status": "ok", "sessions": len(srv.sessionList())})
}

func (srv *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	srv.requests.sessions.Add(1)
	out := []SessionStats{}
	for _, s := range srv.sessionList() {
		out = append(out, s.Stats())
	}
	writeJSON(w, out)
}

func (srv *Server) session(w http.ResponseWriter, r *http.Request) *Session {
	id := r.PathValue("id")
	s, ok := srv.Session(id)
	if !ok {
		srv.fail(w, http.StatusNotFound, "unknown session %q", id)
		return nil
	}
	return s
}

func (srv *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	srv.requests.stats.Add(1)
	if s := srv.session(w, r); s != nil {
		writeJSON(w, s.Stats())
	}
}

// observeLatency records one request's wall time in the endpoint's
// histogram.
func (srv *Server) observeLatency(endpoint string, start time.Time) {
	srv.latency[endpoint].Observe(time.Since(start).Seconds())
}

func (srv *Server) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	srv.requests.invalidate.Add(1)
	defer srv.observeLatency("invalidate", time.Now())
	s := srv.session(w, r)
	if s == nil {
		return
	}
	s.Invalidate()
	writeJSON(w, map[string]string{"status": "invalidated"})
}

// handleTrace serves the most recent full sweep's Chrome trace-event JSON;
// 404 until the session has run a sweep.
func (srv *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	srv.requests.trace.Add(1)
	s := srv.session(w, r)
	if s == nil {
		return
	}
	var buf strings.Builder
	ok, err := s.WriteTrace(&buf)
	if err != nil {
		srv.fail(w, http.StatusInternalServerError, "rendering trace: %v", err)
		return
	}
	if !ok {
		srv.fail(w, http.StatusNotFound, "session %q has no sweep trace yet; POST /v1/sessions/%s/run first", s.ID(), s.ID())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, buf.String())
}

// RunLine is one NDJSON line of a streamed sweep: per-file lines first, in
// sorted path order, then exactly one summary line.
type RunLine struct {
	// Per-file fields.
	Name    string      `json:"name,omitempty"`
	Changed bool        `json:"changed,omitempty"`
	Diff    string      `json:"diff,omitempty"`
	Output  *string     `json:"output,omitempty"`
	Error   string      `json:"error,omitempty"`
	Patches []PatchLine `json:"patches,omitempty"`

	// Summary is set only on the final line.
	Summary *RunSummary `json:"summary,omitempty"`
}

// PatchLine is one campaign member's outcome on one file.
type PatchLine struct {
	Patch   string `json:"patch"`
	Matches int    `json:"matches"`
	Changed bool   `json:"changed,omitempty"`
	Skipped bool   `json:"skipped,omitempty"`
	Cached  bool   `json:"cached,omitempty"`
	// FuncsMatched and FuncsCached count this file's function segments
	// matched fresh vs replayed when the member ran function-granularly.
	FuncsMatched int `json:"functions_matched,omitempty"`
	FuncsCached  int `json:"functions_cached,omitempty"`
	// Warnings are the post-transform verifier's findings (rendered); set
	// only when the session runs with Options.Verify. Demoted reports that
	// an unsafe finding reverted this member's edit.
	Warnings []string `json:"warnings,omitempty"`
	Demoted  bool     `json:"demoted,omitempty"`
}

// RunSummary is the trailing NDJSON line of a sweep.
type RunSummary struct {
	Files        int            `json:"files"`
	Changed      int            `json:"changed"`
	Errors       int            `json:"errors"`
	Cached       int            `json:"cached"`
	Skipped      int            `json:"skipped"`
	FuncsMatched int            `json:"functions_matched"`
	FuncsCached  int            `json:"functions_cached"`
	Parsed       int            `json:"parsed"`
	Read         int            `json:"read"`
	Demoted      int            `json:"demoted,omitempty"`
	Warnings     int            `json:"warnings,omitempty"`
	ElapsedMS    int64          `json:"elapsed_ms"`
	PerPatch     []PatchSummary `json:"per_patch,omitempty"`
	// StageSeconds is the sweep's per-stage self-time in seconds, from the
	// run's trace (worker/file entries are pool glue and scheduling).
	StageSeconds map[string]float64 `json:"stage_seconds,omitempty"`
}

// PatchSummary is one campaign member's aggregate over a sweep — the wire
// mirror of batch.PatchStats, so the HTTP contract is decoupled from
// internal struct layout.
type PatchSummary struct {
	Patch   string `json:"patch"`
	Matched int    `json:"matched"`
	Changed int    `json:"changed"`
	Matches int    `json:"matches"`
	Skipped int    `json:"skipped"`
	Cached  int    `json:"cached"`
	// FuncsMatched and FuncsCached aggregate the member's function-granular
	// counters across the sweep.
	FuncsMatched int `json:"functions_matched"`
	FuncsCached  int `json:"functions_cached"`
	// Demoted counts files where the verifier reverted this member's edit;
	// Warnings totals its verifier findings (Options.Verify runs only).
	Demoted  int `json:"demoted,omitempty"`
	Warnings int `json:"warnings,omitempty"`
}

func patchSummaries(per []batch.PatchStats) []PatchSummary {
	out := make([]PatchSummary, len(per))
	for i, ps := range per {
		out[i] = PatchSummary{
			Patch:        ps.Patch,
			Matched:      ps.Matched,
			Changed:      ps.Changed,
			Matches:      ps.Matches,
			Skipped:      ps.Skipped,
			Cached:       ps.Cached,
			FuncsMatched: ps.FuncsMatched,
			FuncsCached:  ps.FuncsCached,
			Demoted:      ps.Demoted,
			Warnings:     ps.Warnings,
		}
	}
	return out
}

// fileLine renders one campaign result; includeOutput additionally carries
// the full post-patch text (on-disk content when elided).
func fileLine(fr batch.CampaignFileResult, includeOutput bool) RunLine {
	line := RunLine{Name: fr.Name, Changed: fr.Changed(), Diff: fr.Diff}
	if fr.Err != nil {
		line.Error = fr.Err.Error()
	}
	if includeOutput && fr.Err == nil && !fr.OutputElided {
		out := fr.Output
		line.Output = &out
	}
	for _, o := range fr.Patches {
		pl := PatchLine{
			Patch:        o.Patch,
			Matches:      o.Matches(),
			Changed:      o.Changed,
			Skipped:      o.Skipped,
			Cached:       o.Cached,
			FuncsMatched: o.FuncsMatched,
			FuncsCached:  o.FuncsCached,
			Demoted:      o.Demoted,
		}
		for _, w := range o.Warnings {
			pl.Warnings = append(pl.Warnings, w.String())
		}
		line.Patches = append(line.Patches, pl)
	}
	return line
}

// handleRun streams a full-corpus sweep as NDJSON. ?output=1 includes each
// file's post-patch text (files proven unchanged without a read omit it —
// their on-disk content is the output).
func (srv *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	srv.requests.run.Add(1)
	defer srv.observeLatency("run", time.Now())
	s := srv.session(w, r)
	if s == nil {
		return
	}
	includeOutput := r.URL.Query().Get("output") == "1"
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	start := time.Now()
	stats, err := s.Run(func(fr batch.CampaignFileResult) error {
		if err := enc.Encode(fileLine(fr, includeOutput)); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		// Headers are already out; the error becomes the final line.
		srv.requests.errors.Add(1)
		enc.Encode(RunLine{Error: err.Error()})
		return
	}
	enc.Encode(RunLine{Summary: &RunSummary{
		Files:        stats.Files,
		Changed:      stats.Changed,
		Errors:       stats.Errors,
		Cached:       stats.Cached,
		Skipped:      stats.Skipped,
		FuncsMatched: stats.FuncsMatched,
		FuncsCached:  stats.FuncsCached,
		Parsed:       stats.Parsed,
		Read:         stats.Read,
		Demoted:      stats.Demoted,
		Warnings:     stats.Warnings,
		ElapsedMS:    time.Since(start).Milliseconds(),
		PerPatch:     patchSummaries(stats.PerPatch),
		StageSeconds: stats.StageSeconds,
	}})
}

// CheckLine is one non-finding NDJSON line of a streamed check sweep: a
// per-file error, or the trailing summary. Every other line is one
// analysis.Finding encoded exactly as the CLI's `--check --format json`
// prints it, so the two streams are byte-identical up to the summary line.
type CheckLine struct {
	Error   string        `json:"error,omitempty"`
	Summary *CheckSummary `json:"summary,omitempty"`
}

// CheckSummary is the trailing NDJSON line of a check sweep.
type CheckSummary struct {
	Files    int `json:"files"`
	Parsed   int `json:"parsed"`
	Findings int `json:"findings"`
	// Errors counts per-file processing failures (reported as Error lines).
	Errors int `json:"errors"`
	// BySeverity breaks the findings down ("error", "warning", "info").
	BySeverity map[string]int `json:"by_severity,omitempty"`
	ElapsedMS  int64          `json:"elapsed_ms"`
}

// handleCheck streams the session campaign's check-rule findings as NDJSON:
// per-file findings first (files in sorted path order, findings sorted
// within each file, which is the CLI's global sort order), then exactly one
// summary line. The sweep is the same resident-artifact sweep as /run —
// rewrites are computed but never written anywhere — so a warm check over
// an unchanged corpus replays every finding with Parsed == 0.
func (srv *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	srv.requests.check.Add(1)
	defer srv.observeLatency("check", time.Now())
	s := srv.session(w, r)
	if s == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	start := time.Now()
	total := 0
	bySev := map[string]int{}
	stats, err := s.Run(func(fr batch.CampaignFileResult) error {
		if fr.Err != nil {
			return enc.Encode(CheckLine{Error: fr.Err.Error()})
		}
		fs := fr.Findings()
		analysis.Sort(fs)
		if err := analysis.WriteNDJSON(w, fs); err != nil {
			return err
		}
		total += len(fs)
		for sev, n := range analysis.CountBySeverity(fs) {
			bySev[sev] += n
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		srv.requests.errors.Add(1)
		enc.Encode(CheckLine{Error: err.Error()})
		return
	}
	enc.Encode(CheckLine{Summary: &CheckSummary{
		Files:      stats.Files,
		Parsed:     stats.Parsed,
		Findings:   total,
		Errors:     stats.Errors,
		BySeverity: bySev,
		ElapsedMS:  time.Since(start).Milliseconds(),
	}})
}

// ApplyRequest is the body of POST /v1/apply. Exactly one of Source/File
// selects the input; Session and Patch select what to apply:
//
//   - Session set, Patch empty: the session's campaign.
//   - Patch set: that inline patch alone — compiled once and kept in an
//     LRU — under the session's options and cache stack when Session is
//     set, the server defaults otherwise.
//   - File requires Session (it names a corpus file relative to the root).
type ApplyRequest struct {
	Session string  `json:"session,omitempty"`
	Patch   string  `json:"patch,omitempty"`
	Name    string  `json:"name,omitempty"`
	Source  *string `json:"source,omitempty"`
	File    string  `json:"file,omitempty"`
}

// ApplyResponse is the body of a successful /v1/apply.
type ApplyResponse struct {
	Name    string      `json:"name"`
	Changed bool        `json:"changed"`
	Diff    string      `json:"diff,omitempty"`
	Output  *string     `json:"output,omitempty"`
	Patches []PatchLine `json:"patches,omitempty"`
}

func (srv *Server) handleApply(w http.ResponseWriter, r *http.Request) {
	srv.requests.apply.Add(1)
	defer srv.observeLatency("apply", time.Now())
	var req ApplyRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
	if err != nil {
		srv.fail(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxRequestBody {
		srv.fail(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", maxRequestBody)
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		srv.fail(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if (req.Source == nil) == (req.File == "") {
		srv.fail(w, http.StatusBadRequest, "exactly one of source and file must be given")
		return
	}
	if req.File != "" && req.Session == "" {
		srv.fail(w, http.StatusBadRequest, "file requires a session")
		return
	}

	var session *Session
	if req.Session != "" {
		s, ok := srv.Session(req.Session)
		if !ok {
			srv.fail(w, http.StatusNotFound, "unknown session %q", req.Session)
			return
		}
		session = s
	}

	var fr batch.CampaignFileResult
	if req.Patch != "" {
		fr, err = srv.applyInline(session, req)
	} else if session == nil {
		srv.fail(w, http.StatusBadRequest, "either a session or an inline patch is required")
		return
	} else if req.File != "" {
		fr, err = session.ApplyPath(req.File)
	} else {
		fr, err = session.ApplySnippet(req.Name, *req.Source)
	}
	if err != nil {
		srv.fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if fr.Err != nil {
		srv.fail(w, http.StatusUnprocessableEntity, "%v", fr.Err)
		return
	}
	resp := ApplyResponse{Name: fr.Name, Changed: fr.Changed(), Diff: fr.Diff}
	if !fr.OutputElided {
		out := fr.Output
		resp.Output = &out
	}
	line := fileLine(fr, false)
	resp.Patches = line.Patches
	writeJSON(w, resp)
}

// applyInline parses (or recalls) an inline patch and applies it to the
// requested input. With a session, the one-patch campaign shares the
// session's options and cache stack, so resident hashes, word sets, and
// parse trees accelerate it exactly like the session's own campaign; the
// compiled campaign itself is kept in the server's LRU keyed by patch text
// and scope.
func (srv *Server) applyInline(session *Session, req ApplyRequest) (batch.CampaignFileResult, error) {
	scope := ""
	opts := srv.defaults
	store := cache.Store(srv.scratch)
	if session != nil {
		scope = session.ID()
		opts = session.opts
		store = session.mem
	}
	key := scope + "\x00" + req.Patch
	camp, ok := srv.compiled.Get(key)
	if !ok {
		p, err := smpl.ParsePatch("inline.cocci", req.Patch)
		if err != nil {
			return batch.CampaignFileResult{}, err
		}
		opts.Store = store
		opts.CacheDir = ""
		camp = batch.NewCampaign([]*smpl.Patch{p}, opts)
		srv.compiled.Add(key, camp)
	}

	var st *batch.FileState
	switch {
	case req.File != "":
		// Resident artifacts are keyed by content hash, so they serve any
		// patch: seed the state exactly like a session sweep would.
		rel := req.File
		fr, err := session.applyPathWith(camp, rel)
		return fr, err
	default:
		name := req.Name
		if name == "" {
			name = "snippet.c"
		}
		st = &batch.FileState{Name: name, Src: *req.Source, Loaded: true}
	}
	var out batch.CampaignFileResult
	if _, err := camp.CollectStates([]*batch.FileState{st}, func(fr batch.CampaignFileResult) error {
		out = fr
		return nil
	}); err != nil {
		return batch.CampaignFileResult{}, err
	}
	return out, nil
}

// handleMetrics renders the Prometheus exposition. Families are emitted
// family-major (all of a family's series contiguous, one HELP and one TYPE
// line each) through obs.PromWriter, which panics on any violation of the
// text-format invariants — the strict-parser test keeps this honest.
func (srv *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	srv.requests.metrics.Add(1)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	c := &srv.requests
	p := obs.NewPromWriter(w)

	p.Family("gocci_serve_http_requests_total", "counter", "HTTP requests received, by endpoint.")
	for _, m := range []struct {
		endpoint string
		n        int64
	}{
		{"healthz", c.healthz.Load()},
		{"metrics", c.metrics.Load()},
		{"sessions", c.sessions.Load()},
		{"stats", c.stats.Load()},
		{"run", c.run.Load()},
		{"check", c.check.Load()},
		{"invalidate", c.invalidate.Load()},
		{"apply", c.apply.Load()},
		{"trace", c.trace.Load()},
	} {
		p.Sample("", [][2]string{{"endpoint", m.endpoint}}, float64(m.n))
	}
	p.Counter("gocci_serve_http_errors_total", "HTTP error responses sent.", nil, float64(c.errors.Load()))

	sessions := srv.sessionList()
	p.Gauge("gocci_serve_sessions", "Registered sessions.", nil, float64(len(sessions)))

	p.Family("gocci_serve_http_request_seconds", "histogram", "Request latency by endpoint, for the endpoints that do engine work.")
	for _, endpoint := range []string{"apply", "check", "invalidate", "run"} {
		p.HistogramSeries([][2]string{{"endpoint", endpoint}}, srv.latency[endpoint].Snapshot())
	}

	stats := make([]SessionStats, len(sessions))
	for i, s := range sessions {
		stats[i] = s.Stats()
	}
	// Family-major over the per-session counters: the outer loop is the
	// family, the inner the sessions, so a family's series stay contiguous.
	for _, fam := range []struct {
		name, typ, help string
		value           func(st SessionStats) float64
	}{
		{"tracked_files", "gauge", "Corpus files with resident stat and hash.", func(st SessionStats) float64 { return float64(st.TrackedFiles) }},
		{"runs_total", "counter", "Full corpus sweeps served.", func(st SessionStats) float64 { return float64(st.Runs) }},
		{"applies_total", "counter", "Single-file applies served.", func(st SessionStats) float64 { return float64(st.Applies) }},
		{"files_processed_total", "counter", "Files processed across all requests.", func(st SessionStats) float64 { return float64(st.FilesProcessed) }},
		{"files_changed_total", "counter", "Files changed across all requests.", func(st SessionStats) float64 { return float64(st.FilesChanged) }},
		{"file_errors_total", "counter", "Per-file errors across all requests.", func(st SessionStats) float64 { return float64(st.FileErrors) }},
		{"patch_results_cached_total", "counter", "Per-patch outcomes replayed from the result cache.", func(st SessionStats) float64 { return float64(st.PatchCached) }},
		{"patch_results_skipped_total", "counter", "Per-patch outcomes skipped by the prefilter.", func(st SessionStats) float64 { return float64(st.PatchSkipped) }},
		{"functions_matched_total", "counter", "Function segments matched fresh.", func(st SessionStats) float64 { return float64(st.FuncsMatched) }},
		{"functions_cached_total", "counter", "Function segments replayed from the segment cache.", func(st SessionStats) float64 { return float64(st.FuncsCached) }},
		{"files_parsed_total", "counter", "Input files parsed.", func(st SessionStats) float64 { return float64(st.FilesParsed) }},
		{"files_read_total", "counter", "Input files read.", func(st SessionStats) float64 { return float64(st.FilesRead) }},
		{"edits_demoted_total", "counter", "Unsafe edits demoted by the verifier.", func(st SessionStats) float64 { return float64(st.Demoted) }},
		{"verify_warnings_total", "counter", "Verifier findings reported.", func(st SessionStats) float64 { return float64(st.Warnings) }},
		{"ast_cache_entries", "gauge", "Resident parse trees.", func(st SessionStats) float64 { return float64(st.ASTEntries) }},
		{"ast_cache_hits_total", "counter", "Parse-tree cache hits.", func(st SessionStats) float64 { return float64(st.ASTHits) }},
		{"ast_cache_misses_total", "counter", "Parse-tree cache misses.", func(st SessionStats) float64 { return float64(st.ASTMisses) }},
		{"mem_cache_entries", "gauge", "In-memory scan/result cache entries.", func(st SessionStats) float64 { return float64(st.MemEntries) }},
		{"mem_cache_hits_total", "counter", "In-memory cache hits.", func(st SessionStats) float64 { return float64(st.MemHits) }},
		{"mem_cache_misses_total", "counter", "In-memory cache misses.", func(st SessionStats) float64 { return float64(st.MemMisses) }},
		{"invalidations_total", "counter", "Explicit invalidations.", func(st SessionStats) float64 { return float64(st.Invalidations) }},
		{"watch_scans_total", "counter", "Poll-watcher scans completed.", func(st SessionStats) float64 { return float64(st.WatchScans) }},
	} {
		p.Family("gocci_serve_session_"+fam.name, fam.typ, fam.help)
		for _, st := range stats {
			p.Sample("", [][2]string{{"session", st.ID}}, fam.value(st))
		}
	}

	p.Family("gocci_serve_session_findings_total", "counter", "Check-rule findings reported across all requests, by severity.")
	for _, st := range stats {
		for _, sev := range []struct {
			name string
			n    int64
		}{
			{"error", st.FindingsError},
			{"warning", st.FindingsWarning},
			{"info", st.FindingsInfo},
		} {
			p.Sample("", [][2]string{{"session", st.ID}, {"severity", sev.name}}, float64(sev.n))
		}
	}

	p.Family("gocci_serve_session_stage_seconds", "histogram", "Per-request pipeline stage self-time, by session and stage.")
	for i, s := range sessions {
		for _, sm := range s.stageMetrics() {
			p.HistogramSeries([][2]string{{"session", stats[i].ID}, {"stage", sm.stage}}, sm.snap)
		}
	}
}
