// Package codegen generates synthetic C/C++ sources with the code shapes the
// paper's semantic patches target: OpenMP-annotated loops, 4x-unrolled
// loops, CUDA API usage and kernel launches, AoS structure accesses,
// OpenACC directives, raw search loops, multiversioned function clones, and
// librsb-style kernel families. It stands in for the GADGET and Linux-scale
// codebases of the paper's evaluation context: the generator is seeded and
// parametric, so benchmarks can sweep file sizes deterministically.
package codegen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config parameterizes generation.
type Config struct {
	// Funcs is the number of functions per file.
	Funcs int
	// StmtsPerFunc controls body size.
	StmtsPerFunc int
	// Seed makes output deterministic.
	Seed int64
}

func (c Config) rng() *rand.Rand {
	return rand.New(rand.NewSource(c.Seed))
}

func (c Config) norm() Config {
	if c.Funcs <= 0 {
		c.Funcs = 4
	}
	if c.StmtsPerFunc <= 0 {
		c.StmtsPerFunc = 4
	}
	return c
}

// OpenMP generates a file of numeric kernels, each with an OpenMP pragma
// block (the L1 instrumentation workload).
func OpenMP(cfg Config) string {
	cfg = cfg.norm()
	r := cfg.rng()
	var sb strings.Builder
	sb.WriteString("#include <omp.h>\n#include <math.h>\n\n")
	for f := 0; f < cfg.Funcs; f++ {
		fmt.Fprintf(&sb, "void kernel_%d(int n, double *a, double *b) {\n", f)
		sb.WriteString("#pragma omp parallel for\n")
		sb.WriteString("{\n")
		for s := 0; s < cfg.StmtsPerFunc; s++ {
			op := []string{"+", "-", "*"}[r.Intn(3)]
			fmt.Fprintf(&sb, "\tfor (int i = 0; i < n; ++i) a[i] = b[i] %s %d.5;\n", op, r.Intn(9))
		}
		sb.WriteString("}\n}\n\n")
	}
	return sb.String()
}

// Unrolled generates functions whose loops are manually unrolled by four
// (the L5/L6 workload). Each function holds one unrolled loop plus filler.
func Unrolled(cfg Config) string {
	cfg = cfg.norm()
	r := cfg.rng()
	var sb strings.Builder
	sb.WriteString("/* generated: manually 4x-unrolled kernels */\n\n")
	for f := 0; f < cfg.Funcs; f++ {
		fmt.Fprintf(&sb, "void unrolled_%d(int n, double *s, double *q) {\n", f)
		fmt.Fprintf(&sb, "\tfor (int v%d=0; v%d+4-1 < n; v%d+=4)\n", f, f, f)
		sb.WriteString("\t{\n")
		c := r.Intn(5) + 1
		for u := 0; u < 4; u++ {
			fmt.Fprintf(&sb, "\t\ts[v%d+%d] = q[v%d+%d] * %d;\n", f, u, f, u, c)
		}
		sb.WriteString("\t}\n")
		for s := 0; s < cfg.StmtsPerFunc; s++ {
			fmt.Fprintf(&sb, "\tq[%d] = s[%d];\n", s, s)
		}
		sb.WriteString("}\n\n")
	}
	return sb.String()
}

// CUDA generates CUDA runtime usage and kernel launches (the L8/L9/L10
// hipify workload).
func CUDA(cfg Config) string {
	cfg = cfg.norm()
	r := cfg.rng()
	var sb strings.Builder
	sb.WriteString("#include <cuda_runtime.h>\n#include <curand_kernel.h>\n\n")
	for f := 0; f < cfg.Funcs; f++ {
		fmt.Fprintf(&sb, "__global__ void dev_kernel_%d(int n, double *a) {\n", f)
		sb.WriteString("\tint i = blockIdx.x * blockDim.x + threadIdx.x;\n")
		fmt.Fprintf(&sb, "\tif (i < n) a[i] = a[i] * %d.0;\n", r.Intn(7)+1)
		sb.WriteString("}\n\n")
		fmt.Fprintf(&sb, "int host_driver_%d(int n, double *h_a) {\n", f)
		sb.WriteString("\tdouble *d_a;\n")
		sb.WriteString("\tcudaError_t err = cudaMalloc(&d_a, n * sizeof(double));\n")
		sb.WriteString("\tif (err != cudaSuccess) return 1;\n")
		sb.WriteString("\tcudaStream_t stream;\n\tcudaStreamCreate(&stream);\n")
		sb.WriteString("\tcudaMemcpyAsync(d_a, h_a, n * sizeof(double), cudaMemcpyHostToDevice, stream);\n")
		for s := 0; s < cfg.StmtsPerFunc; s++ {
			fmt.Fprintf(&sb, "\tdev_kernel_%d<<<gridOf(n), %d, 0, stream>>>(n, d_a);\n", f, 64*(r.Intn(4)+1))
		}
		sb.WriteString("\tcudaMemcpy(h_a, d_a, n * sizeof(double), cudaMemcpyDeviceToHost);\n")
		sb.WriteString("\tcudaStreamSynchronize(stream);\n")
		sb.WriteString("\tcudaStreamDestroy(stream);\n\tcudaFree(d_a);\n\treturn 0;\n}\n\n")
	}
	return sb.String()
}

// Curand generates double-precision RNG calls and __half declarations, the
// exact shapes of the paper's L8/L9 dictionary listings.
func Curand(cfg Config) string {
	cfg = cfg.norm()
	var sb strings.Builder
	sb.WriteString("#include <curand_kernel.h>\n#include <cuda_fp16.h>\n\n")
	for f := 0; f < cfg.Funcs; f++ {
		fmt.Fprintf(&sb, "double sample_%d(void *gen) {\n", f)
		sb.WriteString("\t__half h;\n")
		sb.WriteString("\tdouble d = curand_uniform_double(gen);\n")
		for s := 0; s < cfg.StmtsPerFunc; s++ {
			fmt.Fprintf(&sb, "\td = d + curand_uniform_double(gen) * %d.0;\n", s+1)
		}
		sb.WriteString("\treturn d;\n}\n\n")
	}
	return sb.String()
}

// OpenACC generates acc-annotated loops (the L11 workload).
func OpenACC(cfg Config) string {
	cfg = cfg.norm()
	r := cfg.rng()
	var sb strings.Builder
	directives := []string{
		"parallel loop copy(a[0:n])",
		"parallel loop copyin(b[0:n]) copyout(a[0:n])",
		"kernels copy(a[0:n])",
		"parallel loop reduction(+:s) collapse(2)",
	}
	for f := 0; f < cfg.Funcs; f++ {
		fmt.Fprintf(&sb, "void acc_kernel_%d(int n, double *a, double *b) {\n", f)
		fmt.Fprintf(&sb, "#pragma acc %s\n", directives[r.Intn(len(directives))])
		sb.WriteString("\tfor (int i = 0; i < n; ++i)\n\t\ta[i] = b[i] + a[i];\n")
		for s := 0; s < cfg.StmtsPerFunc; s++ {
			fmt.Fprintf(&sb, "\tb[%d] = a[%d];\n", s, s)
		}
		sb.WriteString("}\n\n")
	}
	return sb.String()
}

// SearchLoops generates raw find-loops over C++ ranges (the L12 workload).
func SearchLoops(cfg Config) string {
	cfg = cfg.norm()
	r := cfg.rng()
	var sb strings.Builder
	sb.WriteString("#include <iostream>\n\n")
	for f := 0; f < cfg.Funcs; f++ {
		k := r.Intn(90) + 10
		fmt.Fprintf(&sb, "bool contains_%d(float *vals) {\n", f)
		sb.WriteString("\tbool found = false;\n")
		fmt.Fprintf(&sb, "\tprep_%d();\n", f)
		fmt.Fprintf(&sb, "\tfor ( float &e : vals )\n\t\tif ( e == %d )\n\t\t{\n", k)
		sb.WriteString("\t\t\tfound = true;\n\t\t\tbreak;\n\t\t}\n")
		sb.WriteString("\treturn found;\n}\n\n")
	}
	return sb.String()
}

// Multiversion generates __attribute__((target(...))) clone families (the
// L3/L4 workload): per base function one avx512, one avx2, and one default
// clone.
func Multiversion(cfg Config) string {
	cfg = cfg.norm()
	var sb strings.Builder
	for f := 0; f < cfg.Funcs; f++ {
		for _, isa := range []string{"avx512", "avx2", "default"} {
			fmt.Fprintf(&sb, "__attribute__((target(\"%s\")))\n", isa)
			fmt.Fprintf(&sb, "void spmv_%d(int n, double *a) {\n", f)
			for s := 0; s < cfg.StmtsPerFunc; s++ {
				fmt.Fprintf(&sb, "\ta[%d] = a[%d] * 2.0;\n", s, s+1)
			}
			sb.WriteString("}\n")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Librsb generates a function family following librsb's naming convention
// (the L14 workload): a few affected kernels among many unaffected ones.
func Librsb(cfg Config) string {
	cfg = cfg.norm()
	var sb strings.Builder
	for f := 0; f < cfg.Funcs; f++ {
		// every third function is one of the affected conjugate kernels
		if f%3 == 0 {
			fmt.Fprintf(&sb,
				"int rsb__BCSR_spmv_sasa_double_complex_C__tN_r1_c1_uu_sH_dE_uG_%d(const void *a) {\n", f)
		} else {
			fmt.Fprintf(&sb, "int rsb__BCSR_spmv_other_kernel_%d(const void *a) {\n", f)
		}
		for s := 0; s < cfg.StmtsPerFunc; s++ {
			fmt.Fprintf(&sb, "\tacc_%d(a);\n", s)
		}
		sb.WriteString("\treturn 0;\n}\n\n")
	}
	return sb.String()
}

// AoS generates array-of-structures particle code (the [ML21] GADGET-style
// workload for the AoS-to-SoA case study).
func AoS(cfg Config) string {
	cfg = cfg.norm()
	r := cfg.rng()
	fields := []string{"px", "py", "pz", "vx", "vy", "vz", "mass"}
	var sb strings.Builder
	sb.WriteString("struct particle { double px, py, pz, vx, vy, vz, mass; };\n")
	sb.WriteString("struct particle P[1024];\n\n")
	for f := 0; f < cfg.Funcs; f++ {
		fmt.Fprintf(&sb, "void step_%d(int n, double dt) {\n", f)
		sb.WriteString("\tfor (int i = 0; i < n; ++i) {\n")
		for s := 0; s < cfg.StmtsPerFunc; s++ {
			a := fields[r.Intn(3)]
			b := fields[3+r.Intn(3)]
			fmt.Fprintf(&sb, "\t\tP[i].%s = P[i].%s + dt * P[i].%s;\n", a, a, b)
		}
		sb.WriteString("\t}\n}\n\n")
	}
	return sb.String()
}

// Kernels generates plain compute kernels whose names match "kernel" (the
// L2 declare-variant workload).
func Kernels(cfg Config) string {
	cfg = cfg.norm()
	var sb strings.Builder
	for f := 0; f < cfg.Funcs; f++ {
		fmt.Fprintf(&sb, "double kernel_fma_%d(int n, double *x, double *y) {\n", f)
		sb.WriteString("\tdouble s = 0;\n")
		for s := 0; s < cfg.StmtsPerFunc; s++ {
			fmt.Fprintf(&sb, "\ts = s + x[%d] * y[%d];\n", s, s)
		}
		sb.WriteString("\treturn s;\n}\n\n")
		fmt.Fprintf(&sb, "void helper_%d(void) { }\n\n", f)
	}
	return sb.String()
}

// NestedIndex generates triple-subscript expressions on an array named a
// (the L7 multi-index workload).
func NestedIndex(cfg Config) string {
	cfg = cfg.norm()
	r := cfg.rng()
	var sb strings.Builder
	for f := 0; f < cfg.Funcs; f++ {
		fmt.Fprintf(&sb, "void stencil_%d(double ***a, int nx, int ny, int nz) {\n", f)
		sb.WriteString("\tfor (int i = 1; i < nx; ++i)\n")
		sb.WriteString("\t\tfor (int j = 1; j < ny; ++j)\n")
		sb.WriteString("\t\t\tfor (int k = 1; k < nz; ++k)\n")
		for s := 0; s < cfg.StmtsPerFunc; s++ {
			d := r.Intn(2)
			fmt.Fprintf(&sb, "\t\t\t\ta[i][j][k] = a[i-%d][j][k] + a[i][j-%d][k];\n", d, 1-d)
		}
		sb.WriteString("}\n\n")
	}
	return sb.String()
}

// Mixed concatenates a slice of every workload for whole-project scans.
func Mixed(cfg Config) string {
	cfg = cfg.norm()
	small := Config{Funcs: (cfg.Funcs + 3) / 4, StmtsPerFunc: cfg.StmtsPerFunc, Seed: cfg.Seed}
	var sb strings.Builder
	sb.WriteString(OpenMP(small))
	sb.WriteString(Unrolled(small))
	sb.WriteString(Kernels(small))
	sb.WriteString(AoS(small))
	return sb.String()
}

// Shapes lists the named generators for CLI and bench sweeps.
var Shapes = map[string]func(Config) string{
	"openmp":       OpenMP,
	"unrolled":     Unrolled,
	"cuda":         CUDA,
	"curand":       Curand,
	"openacc":      OpenACC,
	"search":       SearchLoops,
	"multiversion": Multiversion,
	"librsb":       Librsb,
	"aos":          AoS,
	"kernels":      Kernels,
	"nested":       NestedIndex,
	"mixed":        Mixed,
}
