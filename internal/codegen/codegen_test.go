package codegen

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cparse"
)

// Every generated shape must parse with our front end — that is the whole
// point of the generator.
func TestAllShapesParse(t *testing.T) {
	for name, gen := range Shapes {
		src := gen(Config{Funcs: 3, StmtsPerFunc: 3, Seed: 42})
		opts := cparse.Options{CPlusPlus: true, CUDA: true, Std: 17}
		if _, err := cparse.Parse(name+".c", src, opts); err != nil {
			t.Errorf("shape %s does not parse: %v\n%s", name, err, src)
		}
	}
}

func TestDeterministic(t *testing.T) {
	for name, gen := range Shapes {
		a := gen(Config{Funcs: 2, StmtsPerFunc: 2, Seed: 7})
		b := gen(Config{Funcs: 2, StmtsPerFunc: 2, Seed: 7})
		if a != b {
			t.Errorf("shape %s not deterministic", name)
		}
		c := gen(Config{Funcs: 2, StmtsPerFunc: 2, Seed: 8})
		if name != "kernels" && name != "librsb" && name != "curand" && a == c {
			// shapes without randomness are allowed to coincide
			continue
		}
		_ = c
	}
}

func TestSizeScales(t *testing.T) {
	small := OpenMP(Config{Funcs: 2, StmtsPerFunc: 2, Seed: 1})
	large := OpenMP(Config{Funcs: 20, StmtsPerFunc: 2, Seed: 1})
	if len(large) < 5*len(small) {
		t.Errorf("large=%d small=%d: scaling broken", len(large), len(small))
	}
}

func TestShapeContents(t *testing.T) {
	cases := []struct {
		shape string
		want  []string
	}{
		{"openmp", []string{"#pragma omp parallel for", "#include <omp.h>"}},
		{"unrolled", []string{"+4-1 < n", "v0+=4", "s[v0+3]"}},
		{"cuda", []string{"cudaMalloc", "<<<", "cudaMemcpyHostToDevice"}},
		{"curand", []string{"curand_uniform_double", "__half h;"}},
		{"openacc", []string{"#pragma acc"}},
		{"search", []string{"bool found = false;", "for ( float &e : vals )", "break;"}},
		{"multiversion", []string{`target("avx512")`, `target("avx2")`, `target("default")`}},
		{"librsb", []string{"rsb__BCSR_spmv_sasa_double_complex"}},
		{"aos", []string{"struct particle", "P[i].px"}},
		{"kernels", []string{"kernel_fma_0", "helper_0"}},
		{"nested", []string{"a[i][j][k]"}},
	}
	for _, c := range cases {
		src := Shapes[c.shape](Config{Funcs: 2, StmtsPerFunc: 2, Seed: 3})
		for _, w := range c.want {
			if !strings.Contains(src, w) {
				t.Errorf("shape %s missing %q:\n%s", c.shape, w, src)
			}
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	src := OpenMP(Config{})
	if !strings.Contains(src, "kernel_3") {
		t.Errorf("default Funcs=4 not applied")
	}
}

// Property: every shape parses for arbitrary small configurations.
func TestQuickShapesParse(t *testing.T) {
	names := make([]string, 0, len(Shapes))
	for n := range Shapes {
		names = append(names, n)
	}
	prop := func(pick uint8, funcs, stmts uint8, seed int64) bool {
		name := names[int(pick)%len(names)]
		cfg := Config{Funcs: int(funcs%6) + 1, StmtsPerFunc: int(stmts%6) + 1, Seed: seed}
		src := Shapes[name](cfg)
		_, err := cparse.Parse("q.c", src, cparse.Options{CPlusPlus: true, CUDA: true})
		return err == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
