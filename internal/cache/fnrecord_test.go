package cache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFuncRecordRoundtrip(t *testing.T) {
	c, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	key := ResultKey("patch", "fp")

	// A changed function segment carries its transformed text.
	fh := HashString("fn\x00int f(void)\n{\n\told(1);\n}\n")
	if err := c.PutFuncResult(key, fh, &FuncRecord{Matches: 1, Changed: true, Output: "int f(void)\n{\n\tnew(1);\n}\n"}); err != nil {
		t.Fatal(err)
	}
	rec, ok := c.FuncResult(key, fh)
	if !ok || rec.Matches != 1 || !rec.Changed || !strings.Contains(rec.Output, "new(1)") {
		t.Fatalf("function record round trip: %+v %v", rec, ok)
	}

	// A changed residue carries its gap texts; the checksum covers the join.
	rh := HashString("res\x002\x00gaps")
	if err := c.PutFuncResult(key, rh, &FuncRecord{Matches: 1, Changed: true, Gaps: []string{"/* a */\n", "\n", ""}}); err != nil {
		t.Fatal(err)
	}
	rec, ok = c.FuncResult(key, rh)
	if !ok || len(rec.Gaps) != 3 || rec.Gaps[0] != "/* a */\n" {
		t.Fatalf("residue record round trip: %+v %v", rec, ok)
	}

	// A pure (unchanged) record stores no payload and needs no checksum.
	ph := HashString("fn\x00int g(void)\n{\n}\n")
	if err := c.PutFuncResult(key, ph, &FuncRecord{}); err != nil {
		t.Fatal(err)
	}
	if rec, ok := c.FuncResult(key, ph); !ok || rec.Changed || rec.Matches != 0 {
		t.Fatalf("pure record round trip: %+v %v", rec, ok)
	}

	// A different (patch, options) key shares nothing.
	if _, ok := c.FuncResult(ResultKey("other", "fp"), fh); ok {
		t.Error("record leaked across result keys")
	}
}

// TestFuncRecordTamperDropped pins the corruption contract for segment
// entries: a record whose payload no longer matches its checksum is deleted,
// counted, and never replayed.
func TestFuncRecordTamperDropped(t *testing.T) {
	c, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	key := ResultKey("patch", "fp")
	fh := HashString("segment")
	if err := c.PutFuncResult(key, fh, &FuncRecord{Matches: 1, Changed: true, Output: "good text"}); err != nil {
		t.Fatal(err)
	}

	path := c.fnPath(key, fh)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(strings.Replace(string(b), "good", "evil", 1)), 0o644); err != nil {
		t.Fatal(err)
	}

	if rec, ok := c.FuncResult(key, fh); ok {
		t.Fatalf("tampered record replayed: %+v", rec)
	}
	if n := c.CorruptEntries(); n != 1 {
		t.Errorf("corrupt entries = %d, want 1", n)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("tampered entry left on disk")
	}

	// The caller re-derives and rewrites; the cache heals.
	if err := c.PutFuncResult(key, fh, &FuncRecord{Matches: 1, Changed: true, Output: "good text"}); err != nil {
		t.Fatal(err)
	}
	if rec, ok := c.FuncResult(key, fh); !ok || rec.Output != "good text" {
		t.Fatalf("healed record unreadable: %+v %v", rec, ok)
	}
}

// TestMemoryFuncEntriesDistinct pins the LRU keying discipline the
// function-granular layer depends on: a segment record stored under the same
// (key, hash) pair as a file-level manifest occupies its own entry — it can
// never displace or be mistaken for the manifest — and both write through to
// disk and fall back from it after Invalidate.
func TestMemoryFuncEntriesDistinct(t *testing.T) {
	disk, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMemory(disk, 16)
	key := ResultKey("patch", "fp")
	h := HashString("same content hash")

	m.PutResult(key, h, &Record{Changed: true, Output: "file manifest"})
	m.PutFuncResult(key, h, &FuncRecord{Changed: true, Output: "segment text"})

	if m.Len() != 2 {
		t.Fatalf("len = %d, want 2 (manifest and segment must not share an entry)", m.Len())
	}
	rec, ok := m.Result(key, h)
	if !ok || rec.Output != "file manifest" {
		t.Fatalf("file manifest clobbered by segment write: %+v %v", rec, ok)
	}
	frec, ok := m.FuncResult(key, h)
	if !ok || frec.Output != "segment text" {
		t.Fatalf("segment record clobbered by manifest write: %+v %v", frec, ok)
	}

	// Both kinds wrote through: a cleared RAM layer answers from disk.
	m.Invalidate()
	if rec, ok := m.Result(key, h); !ok || rec.Output != "file manifest" {
		t.Fatalf("manifest lost after invalidate: %+v %v", rec, ok)
	}
	if frec, ok := m.FuncResult(key, h); !ok || frec.Output != "segment text" {
		t.Fatalf("segment record lost after invalidate: %+v %v", frec, ok)
	}
	// And the fall-through primed RAM again.
	if m.Len() != 2 {
		t.Errorf("fall-through primed %d entries, want 2", m.Len())
	}
}
