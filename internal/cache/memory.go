// The in-memory cache layer. A resident process (internal/serve) answers
// most lookups from RAM: entries live in an LRU-bounded map in front of the
// optional disk cache, so a warm daemon pays neither JSON decoding nor
// filesystem reads for repeated requests, while still landing every write
// on disk (when backed) so a restart comes back warm.

package cache

// Store is the lookup surface the batch engine caches through: the scan
// layer (content hash → identifier-word set), the result layer
// ((patch+options key, content hash) → outcome), and the function-granular
// result layer ((patch+options key, segment hash) → per-segment outcome).
// *Cache implements it on disk; *Memory implements it in RAM with optional
// disk write-through.
type Store interface {
	Words(fileHash string) (map[string]bool, bool)
	PutWords(fileHash string, words map[string]bool) error
	Result(key, fileHash string) (*Record, bool)
	PutResult(key, fileHash string, r *Record) error
	FuncResult(key, fnHash string) (*FuncRecord, bool)
	PutFuncResult(key, fnHash string, r *FuncRecord) error
}

var (
	_ Store = (*Cache)(nil)
	_ Store = (*Memory)(nil)
)

// Memory is an LRU-bounded in-memory Store, optionally layered over a disk
// Store: reads try RAM first and fall through to the backing store (priming
// RAM on a hit); writes land in RAM and write through. It is safe for
// concurrent use. Entries are treated as immutable after insertion — the
// engine never mutates a word set or Record it got from a Store — so hits
// return the stored value without copying.
type Memory struct {
	disk Store // nil = RAM only
	lru  *LRU[*memEntry]
}

// memEntry is one resident cache entry; exactly one of words/rec/frec is
// set. Function-granular records get their own field (and their own key
// prefix) so a segment entry can never be mistaken for — or overwrite — the
// file-level manifest it was spliced into.
type memEntry struct {
	words map[string]bool
	rec   *Record
	frec  *FuncRecord
}

// DefaultMemoryEntries bounds a Memory store when the caller passes
// maxEntries <= 0. With a word set or Record per entry, tens of thousands
// of entries are typically a few hundred MB at most.
const DefaultMemoryEntries = 65536

// NewMemory returns an in-memory store holding at most maxEntries entries
// (scan and result entries pooled together), evicting least-recently-used
// first. disk, when non-nil, backs the memory layer: misses fall through to
// it and writes go through to it.
func NewMemory(disk *Cache, maxEntries int) *Memory {
	m := &Memory{lru: NewLRU[*memEntry](maxEntries, DefaultMemoryEntries)}
	if disk != nil {
		m.disk = disk
	}
	return m
}

// Len reports the number of resident entries.
func (m *Memory) Len() int { return m.lru.Len() }

// HitsMisses reports how many lookups were answered from RAM vs not (a
// miss may still be answered by the backing disk store).
func (m *Memory) HitsMisses() (hits, misses int64) { return m.lru.HitsMisses() }

// Invalidate drops every resident entry. The backing disk store, which is
// invalidated by content hashing alone, is untouched.
func (m *Memory) Invalidate() { m.lru.Clear() }

// Words implements Store.
func (m *Memory) Words(fileHash string) (map[string]bool, bool) {
	k := "w\x00" + fileHash
	if e, ok := m.lru.Get(k); ok {
		return e.words, true
	}
	if m.disk != nil {
		if words, ok := m.disk.Words(fileHash); ok {
			m.lru.Add(k, &memEntry{words: words})
			return words, true
		}
	}
	return nil, false
}

// PutWords implements Store.
func (m *Memory) PutWords(fileHash string, words map[string]bool) error {
	m.lru.Add("w\x00"+fileHash, &memEntry{words: words})
	if m.disk != nil {
		return m.disk.PutWords(fileHash, words)
	}
	return nil
}

// Result implements Store.
func (m *Memory) Result(key, fileHash string) (*Record, bool) {
	k := "r\x00" + key + "\x00" + fileHash
	if e, ok := m.lru.Get(k); ok {
		return e.rec, true
	}
	if m.disk != nil {
		if rec, ok := m.disk.Result(key, fileHash); ok {
			m.lru.Add(k, &memEntry{rec: rec})
			return rec, true
		}
	}
	return nil, false
}

// PutResult implements Store.
func (m *Memory) PutResult(key, fileHash string, r *Record) error {
	m.lru.Add("r\x00"+key+"\x00"+fileHash, &memEntry{rec: r})
	if m.disk != nil {
		return m.disk.PutResult(key, fileHash, r)
	}
	return nil
}

// FuncResult implements Store.
func (m *Memory) FuncResult(key, fnHash string) (*FuncRecord, bool) {
	k := "f\x00" + key + "\x00" + fnHash
	if e, ok := m.lru.Get(k); ok {
		return e.frec, true
	}
	if m.disk != nil {
		if rec, ok := m.disk.FuncResult(key, fnHash); ok {
			m.lru.Add(k, &memEntry{frec: rec})
			return rec, true
		}
	}
	return nil, false
}

// PutFuncResult implements Store.
func (m *Memory) PutFuncResult(key, fnHash string, r *FuncRecord) error {
	m.lru.Add("f\x00"+key+"\x00"+fnHash, &memEntry{frec: r})
	if m.disk != nil {
		return m.disk.PutFuncResult(key, fnHash, r)
	}
	return nil
}
