package cache

import (
	"container/list"
	"sync"
)

// LRU is a mutex-guarded, entry-count-bounded map from string keys to
// resident values, evicting least-recently-used first. It backs the
// in-memory cache layer (Memory) and the resident server's parse-tree and
// compiled-patch caches. Values are treated as immutable once inserted —
// every use shares read-only artifacts — so Get returns the stored value
// without copying.
type LRU[V any] struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used; values are *lruEntry[V]
	entries map[string]*list.Element
	hits    int64
	misses  int64
}

type lruEntry[V any] struct {
	key string
	val V
}

// NewLRU returns an LRU bounded to max entries (fallback when max <= 0).
func NewLRU[V any](max, fallback int) *LRU[V] {
	if max <= 0 {
		max = fallback
	}
	return &LRU[V]{max: max, order: list.New(), entries: map[string]*list.Element{}}
}

// Get returns the cached value and whether it was resident.
func (l *LRU[V]) Get(key string) (V, bool) {
	var zero V
	if key == "" {
		return zero, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.entries[key]
	if !ok {
		l.misses++
		return zero, false
	}
	l.hits++
	l.order.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

// Add inserts (or refreshes) a value, evicting past the bound.
func (l *LRU[V]) Add(key string, val V) {
	if key == "" {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.entries[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		l.order.MoveToFront(el)
		return
	}
	l.entries[key] = l.order.PushFront(&lruEntry[V]{key: key, val: val})
	for l.order.Len() > l.max {
		back := l.order.Back()
		l.order.Remove(back)
		delete(l.entries, back.Value.(*lruEntry[V]).key)
	}
}

// Len reports the number of resident entries.
func (l *LRU[V]) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.order.Len()
}

// HitsMisses reports how many Gets were answered vs not.
func (l *LRU[V]) HitsMisses() (hits, misses int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hits, l.misses
}

// Clear drops every entry (hit/miss counters are kept).
func (l *LRU[V]) Clear() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.order.Init()
	l.entries = map[string]*list.Element{}
}
