package cache

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestScanRoundtrip(t *testing.T) {
	c, err := Open(t.TempDir() + "/cache")
	if err != nil {
		t.Fatal(err)
	}
	h := HashString("int main(void) { return 0; }")
	if _, ok := c.Words(h); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	words := map[string]bool{"int": true, "main": true, "void": true, "return": true}
	if err := c.PutWords(h, words); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Words(h)
	if !ok {
		t.Fatal("miss after put")
	}
	if len(got) != len(words) {
		t.Fatalf("got %v want %v", got, words)
	}
	for w := range words {
		if !got[w] {
			t.Errorf("missing word %q", w)
		}
	}
}

func TestResultRoundtrip(t *testing.T) {
	c, err := Open(t.TempDir() + "/cache")
	if err != nil {
		t.Fatal(err)
	}
	key := ResultKey("@@\n- a()\n+ b()\n", "v1|cpp=false")
	h := HashString("void f(void) { a(); }")
	if _, ok := c.Result(key, h); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	rec := &Record{
		MatchCount: map[string]int{"r": 2},
		Changed:    true,
		Output:     "void f(void) { b(); }",
	}
	if err := c.PutResult(key, h, rec); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Result(key, h)
	if !ok {
		t.Fatal("miss after put")
	}
	if got.Output != rec.Output || !got.Changed || got.MatchCount["r"] != 2 {
		t.Fatalf("got %+v want %+v", got, rec)
	}
	// A different patch key or file hash must miss.
	if _, ok := c.Result(ResultKey("other", "v1"), h); ok {
		t.Error("hit across patch keys")
	}
	if _, ok := c.Result(key, HashString("edited")); ok {
		t.Error("hit across file hashes")
	}
}

// A corrupt entry is dropped, counted, and treated as a miss — never
// returned to the caller.
func TestCorruptEntryDropped(t *testing.T) {
	dir := t.TempDir() + "/cache"
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := ResultKey("patch", "opts")
	h := HashString("src")
	if err := c.PutResult(key, h, &Record{Changed: true, Output: "out"}); err != nil {
		t.Fatal(err)
	}
	path := c.resPath(key, h)
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Result(key, h); ok {
		t.Fatal("corrupt entry returned")
	}
	if c.CorruptEntries() != 1 {
		t.Fatalf("CorruptEntries = %d, want 1", c.CorruptEntries())
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt entry not deleted")
	}
	// Rebuilding the entry heals the cache.
	if err := c.PutResult(key, h, &Record{Changed: true, Output: "out"}); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Result(key, h); !ok || got.Output != "out" {
		t.Fatalf("rebuilt entry = %+v ok=%v", got, ok)
	}
}

// Valid JSON with a flipped output byte fails the checksum and is rebuilt,
// never written into user files.
func TestChecksumMismatchDropped(t *testing.T) {
	c, err := Open(t.TempDir() + "/cache")
	if err != nil {
		t.Fatal(err)
	}
	key := ResultKey("patch", "opts")
	h := HashString("src")
	if err := c.PutResult(key, h, &Record{Changed: true, Output: "good output"}); err != nil {
		t.Fatal(err)
	}
	path := c.resPath(key, h)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(strings.Replace(string(b), "good", "evil", 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Result(key, h); ok {
		t.Fatal("tampered entry returned")
	}
	if c.CorruptEntries() != 1 {
		t.Fatalf("CorruptEntries = %d, want 1", c.CorruptEntries())
	}
}

// An old-format cache is wiped and rebuilt, and the rebuild is reported.
func TestVersionMismatchRebuilds(t *testing.T) {
	dir := t.TempDir() + "/cache"
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := HashString("src")
	if err := c.PutWords(h, map[string]bool{"w": true}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "VERSION"), []byte("gocci-cache-v0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Rebuilt() == "" {
		t.Error("rebuild not reported")
	}
	if _, ok := c2.Words(h); ok {
		t.Error("old entries survived the rebuild")
	}
	// A third open sees the fresh marker and keeps the cache.
	c3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c3.Rebuilt() != "" {
		t.Errorf("unexpected rebuild: %s", c3.Rebuilt())
	}
}

// A non-empty directory without a VERSION marker is not a cache; Open must
// refuse rather than wipe it.
func TestRefusesForeignDirectory(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "thesis.tex"), []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a non-cache directory")
	}
	if _, err := os.Stat(filepath.Join(dir, "thesis.tex")); err != nil {
		t.Fatal("Open destroyed foreign data")
	}
}

// A path that exists as a regular file cannot become a cache.
func TestRefusesFilePath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "afile")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open accepted a regular file")
	}
}

// Concurrent writers of the same and different entries never corrupt the
// store (run with -race).
func TestConcurrentWrites(t *testing.T) {
	c, err := Open(t.TempDir() + "/cache")
	if err != nil {
		t.Fatal(err)
	}
	key := ResultKey("p", "o")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := HashString("shared")
			for j := 0; j < 20; j++ {
				if err := c.PutResult(key, h, &Record{Changed: true, Output: "same text"}); err != nil {
					t.Error(err)
				}
				if rec, ok := c.Result(key, h); ok && rec.Output != "same text" {
					t.Errorf("torn read: %q", rec.Output)
				}
			}
		}()
	}
	wg.Wait()
	if c.CorruptEntries() != 0 {
		t.Fatalf("CorruptEntries = %d after clean concurrent use", c.CorruptEntries())
	}
}
