package cache

import (
	"path/filepath"
	"sync"
	"testing"
)

func TestMemoryRAMOnly(t *testing.T) {
	m := NewMemory(nil, 4)
	h := HashString("int main() {}")
	if _, ok := m.Words(h); ok {
		t.Fatal("empty store answered")
	}
	m.PutWords(h, map[string]bool{"main": true, "int": true})
	words, ok := m.Words(h)
	if !ok || !words["main"] {
		t.Fatalf("words round trip: %v %v", words, ok)
	}
	key := ResultKey("patch", "fp")
	m.PutResult(key, h, &Record{Changed: true, Output: "x", MatchCount: map[string]int{"r": 1}})
	rec, ok := m.Result(key, h)
	if !ok || !rec.Changed || rec.Output != "x" || rec.MatchCount["r"] != 1 {
		t.Fatalf("result round trip: %+v %v", rec, ok)
	}
	hits, misses := m.HitsMisses()
	if hits != 2 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 2/1", hits, misses)
	}
}

func TestMemoryLRUEviction(t *testing.T) {
	m := NewMemory(nil, 2)
	ha, hb, hc := HashString("a"), HashString("b"), HashString("c")
	m.PutWords(ha, map[string]bool{"a": true})
	m.PutWords(hb, map[string]bool{"b": true})
	m.Words(ha) // refresh a: b is now least recently used
	m.PutWords(hc, map[string]bool{"c": true})
	if _, ok := m.Words(hb); ok {
		t.Error("least-recently-used entry survived eviction")
	}
	if _, ok := m.Words(ha); !ok {
		t.Error("recently-used entry evicted")
	}
	if m.Len() != 2 {
		t.Errorf("len=%d, want 2", m.Len())
	}
}

// TestMemoryDiskBacked pins the layering contract: writes go through to
// disk (a restart comes back warm), reads fall through on a RAM miss, and
// Invalidate clears RAM only.
func TestMemoryDiskBacked(t *testing.T) {
	disk, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	h := HashString("src")
	key := ResultKey("p", "fp")

	m1 := NewMemory(disk, 16)
	m1.PutWords(h, map[string]bool{"w": true})
	m1.PutResult(key, h, &Record{MatchCount: map[string]int{"r": 2}})

	// A fresh memory layer over the same disk answers from disk.
	m2 := NewMemory(disk, 16)
	if words, ok := m2.Words(h); !ok || !words["w"] {
		t.Fatalf("restart lost the scan entry: %v %v", words, ok)
	}
	if rec, ok := m2.Result(key, h); !ok || rec.MatchCount["r"] != 2 {
		t.Fatalf("restart lost the result entry: %+v %v", rec, ok)
	}
	// The fall-through primed RAM: the next read is a RAM hit.
	m2.Words(h)
	if hits, _ := m2.HitsMisses(); hits != 1 {
		t.Errorf("fall-through did not prime RAM (hits=%d)", hits)
	}

	// Invalidate clears RAM but not disk.
	m2.Invalidate()
	if m2.Len() != 0 {
		t.Errorf("invalidate left %d entries", m2.Len())
	}
	if _, ok := m2.Words(h); !ok {
		t.Error("disk layer lost after invalidate")
	}
}

func TestMemoryConcurrent(t *testing.T) {
	m := NewMemory(nil, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				h := HashString(string(rune('a' + (g+i)%16)))
				m.PutWords(h, map[string]bool{"x": true})
				m.Words(h)
				if i%10 == 0 {
					m.Invalidate()
				}
			}
		}(g)
	}
	wg.Wait()
}
