// Package cache implements gocci's persistent corpus index: an on-disk
// store, keyed by content hashes, that lets repeated semantic-patch runs
// over a slowly-changing source tree skip work they have already done. It
// holds two layers:
//
//   - a *scan cache* mapping a file's content hash to the set of
//     identifier-like words in its bytes, so the required-atom prefilter
//     (internal/index) can be answered for any patch without rescanning the
//     file's text;
//   - a *result cache* mapping (patch hash, effective options, file hash)
//     to the outcome of applying that patch to that file — match counts,
//     whether it changed, and the transformed text when it did — so a warm
//     re-run over an unchanged corpus skips scanning, parsing, matching,
//     and transforming entirely;
//   - a *function-granular result cache* mapping (patch hash, effective
//     options, function hash) to the outcome of matching one function
//     segment (or a file's inter-function residue), so editing one function
//     of a file re-matches only that function — the file-level answer is
//     spliced from the cached segments (internal/batch).
//
// Invalidation is purely by content hash: editing a file changes its hash,
// so stale entries are never consulted — they simply become garbage that a
// later cleanup (or deleting the directory) reclaims. Editing the patch or
// changing result-affecting options likewise changes the result key.
//
// Corruption is never silently trusted: every entry is validated on read
// (JSON structure plus an output checksum), a bad entry is deleted and
// counted — the caller re-derives it and the cache heals itself — and a
// cache directory whose version marker is missing while other content is
// present is refused outright rather than wiped, in case the caller pointed
// --cache-dir at a directory that is not a cache.
//
// All operations are safe for concurrent use by any number of workers and
// processes: entries are immutable once written, and writes go through a
// temp file and an atomic rename.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
)

// version is written to the VERSION marker file; bumping it (for a format
// change) makes Open wipe and rebuild old caches instead of misreading them.
const version = "gocci-cache-v1"

// Cache is an open cache directory. The zero value is not usable; call Open.
type Cache struct {
	dir     string
	rebuilt string // non-empty when Open wiped an incompatible cache
	corrupt atomic.Int64
}

// Open prepares dir as a cache directory, creating it if needed. An existing
// directory from an older (or corrupt) cache format is wiped and rebuilt,
// reported through Rebuilt. A non-empty directory that carries no cache
// version marker is refused — it is presumably not a cache, and wiping it
// would destroy user data.
func Open(dir string) (*Cache, error) {
	if info, err := os.Stat(dir); err == nil && !info.IsDir() {
		return nil, fmt.Errorf("cache: %s exists and is not a directory; delete it or choose another --cache-dir", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	c := &Cache{dir: dir}
	marker := filepath.Join(dir, "VERSION")
	b, err := os.ReadFile(marker)
	switch {
	case err == nil && strings.TrimSpace(string(b)) == version:
		return c, nil // compatible cache, use as is
	case err == nil:
		// A cache, but a different or corrupt format: drop and rebuild.
		c.rebuilt = fmt.Sprintf("version %q does not match %q", strings.TrimSpace(string(b)), version)
	case os.IsNotExist(err):
		entries, derr := os.ReadDir(dir)
		if derr != nil {
			return nil, fmt.Errorf("cache: %w", derr)
		}
		if len(entries) > 0 {
			return nil, fmt.Errorf("cache: %s is not empty and has no cache VERSION marker — it does not look like a gocci cache; use an empty or new directory, or delete its contents", dir)
		}
	default:
		return nil, fmt.Errorf("cache: %w", err)
	}
	// (Re)initialize: clear the entry trees and write the marker.
	for _, sub := range []string{"scan", "res", "fn"} {
		if err := os.RemoveAll(filepath.Join(dir, sub)); err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
	}
	if err := writeAtomic(marker, []byte(version+"\n")); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return c, nil
}

// Dir returns the cache directory path.
func (c *Cache) Dir() string { return c.dir }

// Rebuilt reports why Open wiped and rebuilt an existing cache ("" when it
// did not) — callers surface this so a rebuild is never silent.
func (c *Cache) Rebuilt() string { return c.rebuilt }

// CorruptEntries counts entries that failed validation on read and were
// deleted. The entries are re-derived and rewritten, so the cache heals; a
// nonzero count means the directory saw outside interference (truncation,
// bit rot, concurrent tampering) and is worth reporting to the user.
func (c *Cache) CorruptEntries() int64 { return c.corrupt.Load() }

// HashString returns the content hash used for every cache key.
func HashString(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// ResultKey derives the result-cache key prefix for one (patch, options)
// pair: patchSrc is the raw .cocci text and fingerprint a canonical
// rendering of every result-affecting option (dialect, limits, defines).
func ResultKey(patchSrc, fingerprint string) string {
	return HashString(patchSrc + "\x00" + fingerprint)
}

// scanPath shards scan entries by the first hash byte to keep directories
// small on big corpora.
func (c *Cache) scanPath(fileHash string) string {
	return filepath.Join(c.dir, "scan", fileHash[:2], fileHash+".json")
}

// resPath groups result entries per (patch, options) key — one directory
// per patch, sharded by file hash inside it.
func (c *Cache) resPath(key, fileHash string) string {
	return filepath.Join(c.dir, "res", key, fileHash[:2], fileHash+".json")
}

// fnPath groups function-granular result entries per (patch, options) key,
// sharded by function hash — a tree parallel to res/ so file manifests and
// function segments can never collide or overwrite each other.
func (c *Cache) fnPath(key, fnHash string) string {
	return filepath.Join(c.dir, "fn", key, fnHash[:2], fnHash+".json")
}

// scanEntry is the on-disk form of one scan-cache entry.
type scanEntry struct {
	Words []string `json:"words"`
}

// Words returns the cached identifier-word set for a file hash.
func (c *Cache) Words(fileHash string) (map[string]bool, bool) {
	var e scanEntry
	if !c.load(c.scanPath(fileHash), &e) {
		return nil, false
	}
	set := make(map[string]bool, len(e.Words))
	for _, w := range e.Words {
		set[w] = true
	}
	return set, true
}

// PutWords stores a file's identifier-word set. Write failures are returned
// but are safe to ignore: the cache is an accelerator, never authoritative.
func (c *Cache) PutWords(fileHash string, words map[string]bool) error {
	list := make([]string, 0, len(words))
	for w := range words {
		list = append(list, w)
	}
	sort.Strings(list)
	return c.store(c.scanPath(fileHash), &scanEntry{Words: list})
}

// Record is one cached per-file patch outcome. It stores exactly what is
// needed to synthesize the FileResult a full run would produce: the
// transformed text when the file changed (the diff is recomputed — it is
// deterministic), match counts, and the truncation/skip flags.
type Record struct {
	// MatchCount counts matches per rule.
	MatchCount map[string]int `json:"match_count,omitempty"`
	// Changed reports that the output differs from the input; Output then
	// holds the transformed text and Sum its content hash.
	Changed bool   `json:"changed,omitempty"`
	Output  string `json:"output,omitempty"`
	Sum     string `json:"sum,omitempty"`
	// Skipped records that the prefilter rejected the file without parsing.
	Skipped bool `json:"skipped,omitempty"`
	// EnvsTruncated records that the run hit the MaxEnvs cap.
	EnvsTruncated bool `json:"envs_truncated,omitempty"`
	// Warnings and Demoted record a verify-mode outcome: the checker's
	// findings and whether an unsafe finding reverted the edit. Only ever
	// set under verify-keyed result keys, so non-verify runs never replay
	// them.
	Warnings []Warning `json:"warnings,omitempty"`
	Demoted  bool      `json:"demoted,omitempty"`
	// Findings are the check-rule reports the run emitted for this file.
	// Positions are absolute: a file-level record only ever replays against
	// byte-identical text, so they cannot go stale.
	Findings []Finding `json:"findings,omitempty"`
}

// Warning is the stored form of one post-transform verifier finding (the
// wire mirror of verify.Warning, kept here so the cache stays free of the
// checker's dependencies).
type Warning struct {
	Code    string `json:"code"`
	Func    string `json:"func,omitempty"`
	Message string `json:"message"`
	Unsafe  bool   `json:"unsafe,omitempty"`
}

// Finding is the stored form of one check-rule report (the wire mirror of
// analysis.Finding, kept here like Warning so the cache stays free of the
// analysis layer's dependencies).
type Finding struct {
	Check    string            `json:"check"`
	Severity string            `json:"severity"`
	File     string            `json:"file"`
	Line     int               `json:"line"`
	Col      int               `json:"col"`
	Func     string            `json:"func,omitempty"`
	Message  string            `json:"message"`
	Rule     string            `json:"rule,omitempty"`
	Bindings map[string]string `json:"bindings,omitempty"`
	FuncHash string            `json:"func_hash,omitempty"`
	TokOff   int               `json:"tok_off"`
}

// FnFinding is the position-independent stored form of one check-rule report
// inside a function-granular record: only what cannot be re-derived from the
// live parse survives. File, Line, Col, Func, and FuncHash are reconstructed
// at replay from the current segmentation and the anchor's segment-relative
// token offset, so the record — like the rest of FuncRecord — stays valid
// when the segment moves inside its file.
type FnFinding struct {
	Check    string            `json:"check"`
	Severity string            `json:"severity"`
	Message  string            `json:"message"`
	Rule     string            `json:"rule,omitempty"`
	Bindings map[string]string `json:"bindings,omitempty"`
	TokOff   int               `json:"tok_off"`
}

// Result returns the cached outcome of applying (key) to a file.
func (c *Cache) Result(key, fileHash string) (*Record, bool) {
	path := c.resPath(key, fileHash)
	var r Record
	if !c.load(path, &r) {
		return nil, false
	}
	// Never trust a transformed output whose checksum does not match: a
	// bit-flipped entry must be rebuilt, not written into user files.
	if r.Changed && HashString(r.Output) != r.Sum {
		c.drop(path)
		return nil, false
	}
	return &r, true
}

// PutResult stores one per-file outcome.
func (c *Cache) PutResult(key, fileHash string, r *Record) error {
	if r.Changed {
		r.Sum = HashString(r.Output)
	}
	return c.store(c.resPath(key, fileHash), r)
}

// FuncRecord is one cached per-segment outcome: the result of matching one
// function (or one file's inter-function residue) under a (patch, options)
// key. It is position-independent — nothing in it depends on where the
// segment sits in its file or on any other segment's content — which is
// what lets a record survive reordering functions or editing a sibling.
type FuncRecord struct {
	// Matches counts applied matches inside the segment.
	Matches int `json:"matches,omitempty"`
	// Changed reports the segment's rendered text differs from its source;
	// the caller reconstructs unchanged segments from the current parse, so
	// Output/Gaps are stored only when Changed.
	Changed bool `json:"changed,omitempty"`
	// Output is the transformed segment text (function entries).
	Output string `json:"output,omitempty"`
	// Gaps are the transformed gap texts (residue entries).
	Gaps []string `json:"gaps,omitempty"`
	// Sum is the content hash of Output (or of the joined Gaps).
	Sum string `json:"sum,omitempty"`
	// Findings are the check-rule reports anchored inside the segment, in
	// position-independent form (see FnFinding).
	Findings []FnFinding `json:"findings,omitempty"`
}

// payload is the checksummed content of a changed record.
func (r *FuncRecord) payload() string {
	if r.Gaps != nil {
		return strings.Join(r.Gaps, "\x00")
	}
	return r.Output
}

// FuncResult returns the cached outcome of matching (key) against one
// function segment (or residue) by its content hash.
func (c *Cache) FuncResult(key, fnHash string) (*FuncRecord, bool) {
	path := c.fnPath(key, fnHash)
	var r FuncRecord
	if !c.load(path, &r) {
		return nil, false
	}
	if r.Changed && HashString(r.payload()) != r.Sum {
		c.drop(path)
		return nil, false
	}
	return &r, true
}

// PutFuncResult stores one per-segment outcome.
func (c *Cache) PutFuncResult(key, fnHash string, r *FuncRecord) error {
	if r.Changed {
		r.Sum = HashString(r.payload())
	}
	return c.store(c.fnPath(key, fnHash), r)
}

// load reads and decodes one entry, dropping it on any validation failure.
func (c *Cache) load(path string, v any) bool {
	b, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	if err := json.Unmarshal(b, v); err != nil {
		c.drop(path)
		return false
	}
	return true
}

// drop deletes a corrupt entry and counts it.
func (c *Cache) drop(path string) {
	c.corrupt.Add(1)
	os.Remove(path)
}

// store encodes and atomically writes one entry.
func (c *Cache) store(path string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return writeAtomic(path, b)
}

// writeAtomic lands content in a same-directory temp file and renames it
// into place, so readers never observe a half-written entry and concurrent
// writers of the same (identical) entry race harmlessly.
func writeAtomic(path string, content []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(content); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
