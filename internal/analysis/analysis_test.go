package analysis

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureFindings is a fixed finding set exercising every reporter feature:
// two checks, all three severities, a finding outside any function, repeated
// checks, metavariable bindings.
func fixtureFindings() []Finding {
	return []Finding{
		{
			Check: "cuda-malloc-unchecked", Severity: SeverityError,
			File: "kernel.cu", Line: 12, Col: 5, Func: "launch",
			Message:  "return value of cudaMalloc(&p, n) is not checked",
			Rule:     "malloc_unchecked",
			Bindings: map[string]string{"E": "&p", "n": "n"},
			FuncHash: FuncKey("launch\x00\x00void launch() {}"), TokOff: 7,
		},
		{
			Check: "acc-parallel-no-data", Severity: SeverityWarning,
			File: "solver.c", Line: 3, Col: 1, Func: "step",
			Message:  "acc parallel region without a data clause",
			Rule:     "acc_no_data",
			FuncHash: FuncKey("step\x00\x00void step() {}"), TokOff: 0,
		},
		{
			Check: "cuda-malloc-unchecked", Severity: SeverityInfo,
			File: "solver.c", Line: 40, Col: 9,
			Message: "top-level residue finding",
			Rule:    "malloc_unchecked",
		},
	}
}

func TestRankAndGating(t *testing.T) {
	if Rank(SeverityError) <= Rank(SeverityWarning) || Rank(SeverityWarning) <= Rank(SeverityInfo) {
		t.Fatal("severity ranks are not ordered")
	}
	if Rank("bogus") != 0 {
		t.Fatal("unknown severity should rank 0")
	}
	fs := fixtureFindings()
	if MaxRank(fs) != Rank(SeverityError) {
		t.Fatalf("MaxRank = %d", MaxRank(fs))
	}
	c := CountBySeverity(fs)
	if c["error"] != 1 || c["warning"] != 1 || c["info"] != 1 {
		t.Fatalf("CountBySeverity = %v", c)
	}
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, fixtureFindings()); err != nil {
		t.Fatal(err)
	}
	want := "kernel.cu:12:5: error: return value of cudaMalloc(&p, n) is not checked [cuda-malloc-unchecked]\n"
	if !strings.HasPrefix(buf.String(), want) {
		t.Fatalf("text output:\n%s\nwant first line:\n%s", buf.String(), want)
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Fatalf("%d lines, want 3", got)
	}
}

func TestWriteNDJSONRoundTrip(t *testing.T) {
	fs := fixtureFindings()
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, fs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(fs) {
		t.Fatalf("%d NDJSON lines for %d findings", len(lines), len(fs))
	}
	for i, l := range lines {
		var f Finding
		if err := json.Unmarshal([]byte(l), &f); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if f.Check != fs[i].Check || f.Line != fs[i].Line {
			t.Fatalf("line %d round-trips to %+v, want %+v", i, f, fs[i])
		}
	}
}

// TestSarifGolden pins the SARIF 2.1.0 surface two ways: the generated
// document must be byte-identical to testdata/golden.sarif, and the golden
// must decode through the pinned Sarif* types with DisallowUnknownFields —
// so neither an accidental new field nor a silently dropped one can ship.
func TestSarifGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSarif(&buf, "test", fixtureFindings()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden.sarif")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("SARIF output drifted from golden:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	dec := json.NewDecoder(bytes.NewReader(want))
	dec.DisallowUnknownFields()
	var log SarifLog
	if err := dec.Decode(&log); err != nil {
		t.Fatalf("golden does not decode under DisallowUnknownFields: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Fatalf("version %q", log.Version)
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "gocci" || len(run.Tool.Driver.Rules) != 2 {
		t.Fatalf("driver %+v", run.Tool.Driver)
	}
	for _, r := range run.Results {
		if r.RuleID != run.Tool.Driver.Rules[r.RuleIndex].ID {
			t.Fatalf("result %q has ruleIndex %d pointing at %q",
				r.RuleID, r.RuleIndex, run.Tool.Driver.Rules[r.RuleIndex].ID)
		}
	}
	if lvl := run.Results[0].Level; lvl != "error" {
		t.Fatalf("first result level %q", lvl)
	}
	// info maps to SARIF "note".
	if lvl := run.Results[2].Level; lvl != "note" {
		t.Fatalf("info finding level %q, want note", lvl)
	}
}

func TestBaselineRoundTripAndFilter(t *testing.T) {
	fs := fixtureFindings()
	b := NewBaseline(fs[:2])
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := b.Write(path); err != nil {
		t.Fatal(err)
	}
	b2, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Len() != 2 {
		t.Fatalf("Len = %d", b2.Len())
	}
	left := b2.Filter(fs)
	if len(left) != 1 || left[0].Message != "top-level residue finding" {
		t.Fatalf("Filter left %+v", left)
	}
	// A second identical finding in the same function exceeds the baselined
	// count and must resurface.
	dup := append(fs[:2:2], fs[0])
	if left := b2.Filter(dup); len(left) != 1 || left[0].Check != "cuda-malloc-unchecked" {
		t.Fatalf("duplicate beyond baselined count not reported: %+v", left)
	}
}

func TestBaselineSurvivesLineDriftNotContentChange(t *testing.T) {
	f := fixtureFindings()[0]
	b := NewBaseline([]Finding{f})
	// Unrelated drift: file renamed, line numbers moved — key unchanged.
	g := f
	g.File, g.Line, g.Col = "moved/kernel.cu", 99, 1
	if left := b.Filter([]Finding{g}); len(left) != 0 {
		t.Fatalf("line drift resurfaced the finding: %+v", left)
	}
	// The function's own content changed: new identity hash, resurfaces.
	h := f
	h.FuncHash = FuncKey("launch\x00\x00void launch() { edited(); }")
	if left := b.Filter([]Finding{h}); len(left) != 1 {
		t.Fatal("content change did not resurface the finding")
	}
}

func TestSortDeterminism(t *testing.T) {
	fs := fixtureFindings()
	rev := []Finding{fs[2], fs[0], fs[1]}
	Sort(rev)
	if rev[0].File != "kernel.cu" || rev[1].Line != 3 || rev[2].Line != 40 {
		t.Fatalf("sort order wrong: %+v", rev)
	}
}
