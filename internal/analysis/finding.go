// Package analysis is gocci's static-analysis layer: the Finding model
// produced by match-only check rules (SmPL star-lines and `// gocci:check`
// metadata headers), the reporters that print findings as plain text, NDJSON,
// or SARIF 2.1.0, and the baseline store that suppresses known findings by
// function identity instead of line number, so a baseline survives unrelated
// edits elsewhere in the file. The engine (internal/core) emits findings, the
// batch layer caches and aggregates them, and the CLI/serve front ends pick a
// reporter; this package owns only the data model and its serializations.
package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Version names the finding-emission semantics (anchor selection, message
// interpolation, baseline keying). It joins the result-cache fingerprint of
// any patch containing check rules, so changing how findings are derived
// invalidates every cached outcome that carries them.
const Version = "check-v1"

// Severity levels, ordered: Rank("error") > Rank("warning") > Rank("info").
const (
	SeverityError   = "error"
	SeverityWarning = "warning"
	SeverityInfo    = "info"
)

// Rank orders severities for gating; unknown strings rank below info.
func Rank(severity string) int {
	switch severity {
	case SeverityError:
		return 3
	case SeverityWarning:
		return 2
	case SeverityInfo:
		return 1
	}
	return 0
}

// Finding is one report from a check rule: where, what, and how bad.
type Finding struct {
	// Check is the check id from the rule's gocci:check header (or the rule
	// name for star rules without one).
	Check string `json:"check"`
	// Severity is "error", "warning", or "info".
	Severity string `json:"severity"`
	// File, Line, Col locate the report anchor: the position metavariable's
	// binding when the rule declares one, else the first starred token of
	// the match, else the match's first token. Line and Col are 1-based.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Func names the enclosing function ("" for findings outside any).
	Func string `json:"func,omitempty"`
	// Message is the rule's msg with metavariable references interpolated.
	Message string `json:"message"`
	// Rule is the SmPL rule that fired.
	Rule string `json:"rule,omitempty"`
	// Bindings are the match's bound metavariables (name → source text).
	Bindings map[string]string `json:"bindings,omitempty"`
	// FuncHash identifies the enclosing function by content (see FuncKey),
	// and TokOff is the anchor's token offset within that function — the
	// position-independent pair the baseline keys on.
	FuncHash string `json:"func_hash,omitempty"`
	TokOff   int    `json:"tok_off"`
}

// FuncKey hashes a function's segment identity (cast.FuncSeg.Identity or
// cast.Segmentation.ResidueIdentity) into the short stable form findings and
// baselines carry.
func FuncKey(identity string) string {
	sum := sha256.Sum256([]byte(identity))
	return hex.EncodeToString(sum[:8])
}

// BaselineKey is the finding's identity for baseline matching: independent
// of file name and line numbers, so findings survive renames and unrelated
// line drift, but sensitive to the function's own content.
func (f *Finding) BaselineKey() string {
	// All three parts are colon-free (check ids are [A-Za-z0-9._-], the hash
	// is hex), so the joined form is unambiguous and printable — it doubles
	// as the SARIF partial fingerprint.
	return f.Check + ":" + f.FuncHash + ":" + fmt.Sprint(f.TokOff)
}

// Sort orders findings for deterministic output: by file, line, column,
// check id, then message.
func Sort(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := &fs[i], &fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// Dedupe drops repeated reports of the same defect: same file, position,
// check, rule, and message. The engine can legitimately revisit one match
// under several environments (e.g. downstream of a script rule that forked
// the environment set); the user should still see one finding. Order is
// preserved.
func Dedupe(fs []Finding) []Finding {
	seen := make(map[string]bool, len(fs))
	out := fs[:0]
	for i := range fs {
		f := &fs[i]
		key := fmt.Sprintf("%s\x00%d\x00%d\x00%s\x00%s\x00%s", f.File, f.Line, f.Col, f.Check, f.Rule, f.Message)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, fs[i])
	}
	return out
}

// MaxRank returns the highest severity rank present (0 when empty).
func MaxRank(fs []Finding) int {
	m := 0
	for i := range fs {
		if r := Rank(fs[i].Severity); r > m {
			m = r
		}
	}
	return m
}

// CountBySeverity tallies findings per severity string.
func CountBySeverity(fs []Finding) map[string]int {
	out := map[string]int{}
	for i := range fs {
		out[fs[i].Severity]++
	}
	return out
}

// WriteText prints findings in compiler style, one per line:
// file:line:col: severity: message [check]
func WriteText(w io.Writer, fs []Finding) error {
	for i := range fs {
		f := &fs[i]
		if _, err := fmt.Fprintf(w, "%s:%d:%d: %s: %s [%s]\n",
			f.File, f.Line, f.Col, f.Severity, f.Message, f.Check); err != nil {
			return err
		}
	}
	return nil
}

// WriteNDJSON prints one finding as one JSON object per line — the same
// shape gocci-serve streams, so CLI and daemon output are byte-comparable.
func WriteNDJSON(w io.Writer, fs []Finding) error {
	enc := json.NewEncoder(w)
	for i := range fs {
		if err := enc.Encode(&fs[i]); err != nil {
			return err
		}
	}
	return nil
}
