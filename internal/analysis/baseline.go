package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline is the accepted-findings store: a multiset of baseline keys
// (check id + function identity hash + token offset). Because keys carry no
// file name or line number, a baselined finding stays suppressed through
// renames and edits to *other* functions; editing the finding's own function
// changes its identity hash and resurfaces every finding inside it — exactly
// the review trigger a baseline should have.
type Baseline struct {
	counts map[string]int
}

// baselineFile is the on-disk JSON shape, keys sorted for stable diffs.
type baselineFile struct {
	Version int            `json:"version"`
	Counts  map[string]int `json:"findings"`
}

// baselineVersion guards the file format.
const baselineVersion = 1

// NewBaseline builds a baseline from a finding set (the `--baseline write`
// workflow).
func NewBaseline(fs []Finding) *Baseline {
	b := &Baseline{counts: map[string]int{}}
	for i := range fs {
		b.counts[fs[i].BaselineKey()]++
	}
	return b
}

// LoadBaseline reads a baseline file written by Write.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if bf.Version != baselineVersion {
		return nil, fmt.Errorf("baseline %s: version %d, want %d", path, bf.Version, baselineVersion)
	}
	b := &Baseline{counts: bf.Counts}
	if b.counts == nil {
		b.counts = map[string]int{}
	}
	return b, nil
}

// Write stores the baseline as sorted, indented JSON.
func (b *Baseline) Write(path string) error {
	keys := make([]string, 0, len(b.counts))
	for k := range b.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make(map[string]int, len(keys))
	for _, k := range keys {
		ordered[k] = b.counts[k]
	}
	data, err := json.MarshalIndent(baselineFile{Version: baselineVersion, Counts: ordered}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Len reports the number of distinct baselined keys.
func (b *Baseline) Len() int { return len(b.counts) }

// Filter returns the findings not covered by the baseline. Each baselined
// key suppresses at most its recorded count, so a function that *gains* a
// second identical finding still reports the new one.
func (b *Baseline) Filter(fs []Finding) []Finding {
	budget := make(map[string]int, len(b.counts))
	for k, n := range b.counts {
		budget[k] = n
	}
	var out []Finding
	for i := range fs {
		k := fs[i].BaselineKey()
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		out = append(out, fs[i])
	}
	return out
}
