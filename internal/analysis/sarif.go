package analysis

import (
	"encoding/json"
	"io"
	"sort"
)

// SARIF 2.1.0 output. The types below are the *complete* set of fields gocci
// emits — sarif_test.go re-decodes generated output through them with
// DisallowUnknownFields, so any new field must land here (and in the golden
// file) deliberately, pinning the schema surface.

// SarifLog is the document root.
type SarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []SarifRun `json:"runs"`
}

// SarifRun is one analysis run: the tool description and its results.
type SarifRun struct {
	Tool    SarifTool     `json:"tool"`
	Results []SarifResult `json:"results"`
}

// SarifTool wraps the driver description.
type SarifTool struct {
	Driver SarifDriver `json:"driver"`
}

// SarifDriver names the producing tool and declares the rules its results
// reference by index.
type SarifDriver struct {
	Name           string      `json:"name"`
	Version        string      `json:"version,omitempty"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []SarifRule `json:"rules"`
}

// SarifRule is one reportingDescriptor: a check id and its default level.
type SarifRule struct {
	ID                   string        `json:"id"`
	ShortDescription     *SarifMessage `json:"shortDescription,omitempty"`
	DefaultConfiguration *SarifConfig  `json:"defaultConfiguration,omitempty"`
}

// SarifConfig carries a rule's default severity level.
type SarifConfig struct {
	Level string `json:"level"`
}

// SarifMessage is SARIF's text wrapper.
type SarifMessage struct {
	Text string `json:"text"`
}

// SarifResult is one finding.
type SarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   SarifMessage    `json:"message"`
	Locations []SarifLocation `json:"locations"`
	// Fingerprints carries the baseline key, so SARIF consumers can match
	// results across runs the same way gocci's own baseline does.
	Fingerprints map[string]string `json:"partialFingerprints,omitempty"`
}

// SarifLocation is a physical location plus the enclosing function.
type SarifLocation struct {
	PhysicalLocation SarifPhysicalLocation  `json:"physicalLocation"`
	LogicalLocations []SarifLogicalLocation `json:"logicalLocations,omitempty"`
}

// SarifPhysicalLocation is file + region.
type SarifPhysicalLocation struct {
	ArtifactLocation SarifArtifactLocation `json:"artifactLocation"`
	Region           SarifRegion           `json:"region"`
}

// SarifArtifactLocation names the file.
type SarifArtifactLocation struct {
	URI string `json:"uri"`
}

// SarifRegion is the 1-based start position.
type SarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SarifLogicalLocation names the enclosing function.
type SarifLogicalLocation struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// sarifLevel maps gocci severities onto SARIF levels (info → note).
func sarifLevel(severity string) string {
	switch severity {
	case SeverityError:
		return "error"
	case SeverityWarning:
		return "warning"
	default:
		return "note"
	}
}

// BuildSarif assembles the SARIF log for a finding set. Rules are collected
// from the findings (sorted by id); results reference them by index.
func BuildSarif(version string, fs []Finding) *SarifLog {
	byID := map[string]*SarifRule{}
	var ids []string
	for i := range fs {
		f := &fs[i]
		if _, ok := byID[f.Check]; !ok {
			byID[f.Check] = &SarifRule{
				ID:                   f.Check,
				DefaultConfiguration: &SarifConfig{Level: sarifLevel(f.Severity)},
			}
			ids = append(ids, f.Check)
		}
	}
	sort.Strings(ids)
	rules := make([]SarifRule, len(ids))
	index := map[string]int{}
	for i, id := range ids {
		rules[i] = *byID[id]
		index[id] = i
	}
	results := make([]SarifResult, 0, len(fs))
	for i := range fs {
		f := &fs[i]
		loc := SarifLocation{
			PhysicalLocation: SarifPhysicalLocation{
				ArtifactLocation: SarifArtifactLocation{URI: f.File},
				Region:           SarifRegion{StartLine: f.Line, StartColumn: f.Col},
			},
		}
		if f.Func != "" {
			loc.LogicalLocations = []SarifLogicalLocation{{Name: f.Func, Kind: "function"}}
		}
		res := SarifResult{
			RuleID:    f.Check,
			RuleIndex: index[f.Check],
			Level:     sarifLevel(f.Severity),
			Message:   SarifMessage{Text: f.Message},
			Locations: []SarifLocation{loc},
		}
		if f.FuncHash != "" {
			res.Fingerprints = map[string]string{"gocciBaseline/v1": f.BaselineKey()}
		}
		results = append(results, res)
	}
	return &SarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []SarifRun{{
			Tool: SarifTool{Driver: SarifDriver{
				Name:           "gocci",
				Version:        version,
				InformationURI: "https://github.com/coccinelle/coccinelle",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
}

// WriteSarif renders the findings as an indented SARIF 2.1.0 document.
func WriteSarif(w io.Writer, version string, fs []Finding) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildSarif(version, fs))
}
