// Package obs is the pipeline tracing and profiling layer. A Tracer owns a
// run's trace buffer; each worker goroutine records spans into its own Track
// so recording is lock-free on the hot path (the tracer mutex is only taken
// when a track is created). Every entry point is nil-safe: with tracing
// disabled the batch pipeline carries nil *Track receivers and the cost of
// each instrumentation site is a single pointer check, which is what lets
// the spans live permanently inside the match/cache/prefilter hot paths.
//
// The buffer renders two ways: WriteJSON emits Chrome trace-event JSON (one
// Perfetto track per worker, spans nested file → function → stage, args
// carrying the rule name and cache outcome), and Profile aggregates
// self-time per stage plus per-rule attribution for the `--profile` table
// and the gocci-serve per-stage histograms.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Stage names. These are the span vocabulary shared by the trace JSON, the
// profile table, and the gocci-serve stage histograms; docs/observability.md
// documents each one.
const (
	StageWorker     = "worker"      // per-worker umbrella; self-time is pool glue and idle wait
	StageFile       = "file"        // per-file umbrella; self-time is pipeline glue
	StageRead       = "read"        // reading source bytes
	StageHash       = "hash"        // content hashing for cache keys
	StagePrefilter  = "prefilter"   // required-atom scan + decision
	StageParse      = "parse"       // C/C++ parsing (including engine reparses)
	StageSegment    = "segment"     // splitting a file into function segments
	StageCFG        = "cfg"         // control-flow graph construction
	StageMatch      = "match"       // rule matching (attributed per rule)
	StageCheck      = "check"       // finding emission from match-only check rules (Matches = findings)
	StageVerify     = "verify"      // post-transform safety checking
	StageRender     = "render"      // applying edits, splicing, diffing
	StageCacheRead  = "cache-read"  // result/function cache lookups
	StageCacheWrite = "cache-write" // result/function cache persists
)

// Outcome values recorded on prefilter and cache spans.
const (
	OutcomeHit  = "hit"  // cache lookup replayed a stored result
	OutcomeMiss = "miss" // cache lookup found nothing usable
	OutcomeSkip = "skip" // prefilter proved no rule can fire
	OutcomePass = "pass" // prefilter let the file through
)

// Tracer collects one run's spans. Create per run with New; hand each worker
// goroutine its own Track. A nil *Tracer is a valid disabled sink.
type Tracer struct {
	mu     sync.Mutex
	start  time.Time
	tracks []*Track
}

// New creates an enabled tracer; the zero time origin of every span is now.
func New() *Tracer {
	return &Tracer{start: time.Now()}
}

// Track registers a new named track (one Perfetto thread row). Safe to call
// concurrently. Returns nil on a nil tracer, so callers thread the result
// through unconditionally.
func (t *Tracer) Track(name string) *Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tk := &Track{t: t, tid: len(t.tracks) + 1, name: name}
	t.tracks = append(t.tracks, tk)
	return tk
}

// Track is a single goroutine's span sequence. It must not be shared across
// goroutines — fan-out code forks a child track per goroutine instead. A nil
// *Track is a valid disabled sink: Start returns an inert Span.
type Track struct {
	t     *Tracer
	tid   int
	name  string
	spans []spanRec
	open  []int32 // stack of indices into spans
}

// Fork creates a sibling track for a goroutine fanning out under this one,
// named after its parent so related rows sort together in the viewer.
func (tk *Track) Fork(name string) *Track {
	if tk == nil {
		return nil
	}
	return tk.t.Track(tk.name + "/" + name)
}

// spanRec is one recorded span. Start/End are offsets from the tracer start;
// parent indexes the enclosing span on the same track (-1 at top level),
// which is what Profile's self-time subtraction walks.
type spanRec struct {
	stage   string
	file    string
	fn      string
	rule    string
	outcome string
	matches int
	start   time.Duration
	end     time.Duration
	parent  int32
}

// Span is a handle to an open span; its setters are chainable and, like
// everything here, no-ops on the zero Span a nil track hands out.
type Span struct {
	tk  *Track
	idx int32
}

// Start opens a span nested under the track's innermost open span.
func (tk *Track) Start(stage string) Span {
	if tk == nil {
		return Span{}
	}
	parent := int32(-1)
	if n := len(tk.open); n > 0 {
		parent = tk.open[n-1]
	}
	idx := int32(len(tk.spans))
	tk.spans = append(tk.spans, spanRec{
		stage:  stage,
		start:  time.Since(tk.t.start),
		end:    -1,
		parent: parent,
	})
	tk.open = append(tk.open, idx)
	return Span{tk: tk, idx: idx}
}

// File records the file the span worked on.
func (s Span) File(name string) Span {
	if s.tk != nil {
		s.tk.spans[s.idx].file = name
	}
	return s
}

// Func records the function segment the span worked on.
func (s Span) Func(name string) Span {
	if s.tk != nil {
		s.tk.spans[s.idx].fn = name
	}
	return s
}

// Rule attributes the span to a patch rule.
func (s Span) Rule(name string) Span {
	if s.tk != nil {
		s.tk.spans[s.idx].rule = name
	}
	return s
}

// Outcome records a cache or prefilter decision (Outcome* constants).
func (s Span) Outcome(o string) Span {
	if s.tk != nil {
		s.tk.spans[s.idx].outcome = o
	}
	return s
}

// Matches records how many matches the span produced.
func (s Span) Matches(n int) Span {
	if s.tk != nil {
		s.tk.spans[s.idx].matches = n
	}
	return s
}

// End closes the span. Closing a span force-closes any children left open on
// the stack (they keep their recorded end if they had one), so an early
// return that skips a child End cannot corrupt nesting.
func (s Span) End() {
	if s.tk == nil {
		return
	}
	tk := s.tk
	now := time.Since(tk.t.start)
	tk.spans[s.idx].end = now
	for n := len(tk.open); n > 0; n-- {
		top := tk.open[n-1]
		tk.open = tk.open[:n-1]
		if top == s.idx {
			break
		}
		if tk.spans[top].end < 0 {
			tk.spans[top].end = now
		}
	}
}

// traceEvent is one Chrome trace-event object. The subset emitted here (ph
// "X" complete events plus ph "M" thread_name metadata) is what Perfetto and
// chrome://tracing load directly.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts,omitempty"`
	Dur  float64        `json:"dur,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteJSON renders the trace as Chrome trace-event JSON. Call only after
// the traced run has completed: tracks are owned by their worker goroutines
// until then. Safe on a nil tracer (writes an empty trace).
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := []traceEvent{}
	if t != nil {
		t.mu.Lock()
		tracks := append([]*Track(nil), t.tracks...)
		t.mu.Unlock()
		for _, tk := range tracks {
			events = append(events, traceEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: tk.tid,
				Args: map[string]any{"name": tk.name},
			})
			for _, sp := range tk.spans {
				end := sp.end
				if end < sp.start {
					end = sp.start // never closed: render zero-duration
				}
				args := map[string]any{}
				if sp.file != "" {
					args["file"] = sp.file
				}
				if sp.fn != "" {
					args["func"] = sp.fn
				}
				if sp.rule != "" {
					args["rule"] = sp.rule
				}
				if sp.outcome != "" {
					args["outcome"] = sp.outcome
				}
				if sp.matches != 0 {
					args["matches"] = sp.matches
				}
				events = append(events, traceEvent{
					Name: sp.stage, Ph: "X", Pid: 1, Tid: tk.tid,
					Ts:  float64(sp.start) / float64(time.Microsecond),
					Dur: float64(end-sp.start) / float64(time.Microsecond),
					Cat: "stage",
					Args: func() map[string]any {
						if len(args) == 0 {
							return nil
						}
						return args
					}(),
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		TraceEvents     []traceEvent `json:"traceEvents"`
	}{DisplayTimeUnit: "ms", TraceEvents: events})
}

// String implements fmt.Stringer for debugging ("3 tracks, 120 spans").
func (t *Tracer) String() string {
	if t == nil {
		return "obs: disabled"
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, tk := range t.tracks {
		n += len(tk.spans)
	}
	return fmt.Sprintf("obs: %d tracks, %d spans", len(t.tracks), n)
}
