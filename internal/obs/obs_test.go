package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety exercises every entry point through nil receivers and the
// zero Span; the disabled path must be inert, not crash.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tk := tr.Track("w")
	if tk != nil {
		t.Fatalf("nil tracer returned non-nil track")
	}
	fk := tk.Fork("seg")
	if fk != nil {
		t.Fatalf("nil track forked non-nil track")
	}
	sp := tk.Start(StageParse)
	sp.File("a.c").Func("f").Rule("r").Outcome(OutcomeHit).Matches(3).End()
	sp.End() // double End on zero span
	if got := tr.String(); got != "obs: disabled" {
		t.Fatalf("nil String() = %q", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) != 0 {
		t.Fatalf("nil trace rendered %+v", doc)
	}
	p := tr.Profile()
	if p.Spans != 0 || p.Wall != 0 {
		t.Fatalf("nil profile = %+v", p)
	}
}

// TestNesting checks the parent stack: spans opened while another is open
// become its children, and siblings share the parent.
func TestNesting(t *testing.T) {
	tr := New()
	tk := tr.Track("w")
	file := tk.Start(StageFile)
	parse := tk.Start(StageParse)
	parse.End()
	match := tk.Start(StageMatch)
	match.End()
	file.End()
	top := tk.Start(StageRender)
	top.End()

	want := []struct {
		stage  string
		parent int32
	}{
		{StageFile, -1},
		{StageParse, 0},
		{StageMatch, 0},
		{StageRender, -1},
	}
	if len(tk.spans) != len(want) {
		t.Fatalf("recorded %d spans, want %d", len(tk.spans), len(want))
	}
	for i, w := range want {
		if tk.spans[i].stage != w.stage || tk.spans[i].parent != w.parent {
			t.Errorf("span %d = {%s parent=%d}, want {%s parent=%d}",
				i, tk.spans[i].stage, tk.spans[i].parent, w.stage, w.parent)
		}
	}
	if len(tk.open) != 0 {
		t.Fatalf("open stack not drained: %v", tk.open)
	}
}

// TestForceClose: ending a parent closes children that an early return left
// open, so nesting cannot corrupt.
func TestForceClose(t *testing.T) {
	tr := New()
	tk := tr.Track("w")
	file := tk.Start(StageFile)
	tk.Start(StageParse) // never explicitly ended
	tk.Start(StageMatch) // never explicitly ended
	file.End()
	for i, sp := range tk.spans {
		if sp.end < 0 {
			t.Errorf("span %d (%s) left open", i, sp.stage)
		}
		if sp.end < sp.start {
			t.Errorf("span %d (%s) ends before it starts", i, sp.stage)
		}
	}
	if len(tk.open) != 0 {
		t.Fatalf("open stack not drained: %v", tk.open)
	}
	// The next top-level span must not become a child of anything.
	next := tk.Start(StageRender)
	next.End()
	if got := tk.spans[3].parent; got != -1 {
		t.Fatalf("span after force-close has parent %d, want -1", got)
	}
}

// synthetic builds a deterministic trace by editing span times directly:
// worker[0..10ms] { file[1..9ms] { parse[1..4ms], match[4..8ms] } }.
func synthetic() *Tracer {
	tr := New()
	tk := tr.Track("w")
	w := tk.Start(StageWorker)
	f := tk.Start(StageFile).File("a.c")
	pa := tk.Start(StageParse)
	pa.End()
	m := tk.Start(StageMatch).Rule("r1").Matches(2)
	m.End()
	f.End()
	w.End()
	set := func(i int, start, end time.Duration) {
		tk.spans[i].start, tk.spans[i].end = start, end
	}
	set(0, 0, 10*time.Millisecond)
	set(1, 1*time.Millisecond, 9*time.Millisecond)
	set(2, 1*time.Millisecond, 4*time.Millisecond)
	set(3, 4*time.Millisecond, 8*time.Millisecond)
	return tr
}

// TestProfileSelfTime checks the self-time arithmetic on a synthetic trace:
// self = dur - Σ(child durs), and Σ(self) over all stages equals wall.
func TestProfileSelfTime(t *testing.T) {
	p := synthetic().Profile()
	if p.Wall != 10*time.Millisecond {
		t.Fatalf("wall = %v, want 10ms", p.Wall)
	}
	want := map[string]time.Duration{
		StageWorker: 2 * time.Millisecond, // 10 - 8 (file)
		StageFile:   1 * time.Millisecond, // 8 - 3 - 4
		StageParse:  3 * time.Millisecond,
		StageMatch:  4 * time.Millisecond,
	}
	var sum time.Duration
	for _, ss := range p.Stages {
		if ss.Self != want[ss.Stage] {
			t.Errorf("stage %s self = %v, want %v", ss.Stage, ss.Self, want[ss.Stage])
		}
		sum += ss.Self
	}
	if sum != p.Wall {
		t.Fatalf("Σself = %v, wall = %v; umbrella accounting broken", sum, p.Wall)
	}
	// Stages sort by self descending.
	for i := 1; i < len(p.Stages); i++ {
		if p.Stages[i].Self > p.Stages[i-1].Self {
			t.Fatalf("stages not sorted by self: %v before %v", p.Stages[i-1], p.Stages[i])
		}
	}
}

// TestProfileRules checks per-rule attribution: fired/never-fired counts and
// the never-fired listing in the formatted table.
func TestProfileRules(t *testing.T) {
	tr := New()
	tk := tr.Track("w")
	tk.Start(StageMatch).Rule("hot").Matches(3).End()
	tk.Start(StageMatch).Rule("hot").Matches(0).End()
	tk.Start(StageMatch).Rule("dead").Matches(0).End()
	p := tr.Profile()
	byName := map[string]RuleStat{}
	for _, rs := range p.Rules {
		byName[rs.Rule] = rs
	}
	if rs := byName["hot"]; rs.Spans != 2 || rs.Fired != 1 || rs.Matches != 3 {
		t.Fatalf("hot = %+v", rs)
	}
	if rs := byName["dead"]; rs.Spans != 1 || rs.Fired != 0 {
		t.Fatalf("dead = %+v", rs)
	}
	out := p.Format()
	if !strings.Contains(out, "rule dead never fired") {
		t.Fatalf("Format() missing never-fired line:\n%s", out)
	}
	if strings.Contains(out, "rule hot never fired") {
		t.Fatalf("Format() flags a fired rule as dead:\n%s", out)
	}
}

// TestProfileOutcomes checks cache and prefilter breakdowns; a Func name on a
// cache-read span classifies it as a function-cache lookup.
func TestProfileOutcomes(t *testing.T) {
	tr := New()
	tk := tr.Track("w")
	tk.Start(StageCacheRead).Outcome(OutcomeHit).End()
	tk.Start(StageCacheRead).Outcome(OutcomeMiss).End()
	tk.Start(StageCacheRead).Func("f").Outcome(OutcomeHit).End()
	tk.Start(StageCacheRead).Func("g").Outcome(OutcomeMiss).End()
	tk.Start(StagePrefilter).Outcome(OutcomeSkip).End()
	tk.Start(StagePrefilter).Outcome(OutcomePass).End()
	p := tr.Profile()
	if p.FileCacheHits != 1 || p.FileCacheMisses != 1 ||
		p.FuncCacheHits != 1 || p.FuncCacheMisses != 1 {
		t.Fatalf("cache breakdown = %+v", p)
	}
	if p.PrefilterSkips != 1 || p.PrefilterPasses != 1 {
		t.Fatalf("prefilter breakdown = %+v", p)
	}
	out := p.Format()
	for _, want := range []string{
		"file cache: 1 hits / 2 lookups",
		"func cache: 1 hits / 2 lookups",
		"prefilter: skipped 1 of 2 files",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}

// TestProfileFindings checks the check-stage counters: "check" span match
// counts aggregate into a total and a per-rule breakdown, shown in Format.
func TestProfileFindings(t *testing.T) {
	tr := New()
	tk := tr.Track("w")
	tk.Start(StageCheck).Rule("cuda-sync").Matches(2).End()
	tk.Start(StageCheck).Rule("cuda-sync").Matches(1).End()
	tk.Start(StageCheck).Rule("acc-data").Matches(1).End()
	tk.Start(StageCheck).Rule("quiet").Matches(0).End()
	p := tr.Profile()
	if p.Findings != 4 {
		t.Fatalf("Findings = %d, want 4", p.Findings)
	}
	if p.FindingsByRule["cuda-sync"] != 3 || p.FindingsByRule["acc-data"] != 1 {
		t.Fatalf("FindingsByRule = %v", p.FindingsByRule)
	}
	if _, ok := p.FindingsByRule["quiet"]; ok {
		t.Fatalf("zero-finding rule in breakdown: %v", p.FindingsByRule)
	}
	if out := p.Format(); !strings.Contains(out, "findings: 4 (acc-data 1, cuda-sync 3)") {
		t.Fatalf("Format() missing findings line:\n%s", out)
	}
}

// chromeTrace mirrors the Chrome trace-event schema subset WriteJSON emits;
// the golden-schema check decodes strictly into it.
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Cat  string         `json:"cat"`
	Args map[string]any `json:"args"`
}

// TestWriteJSON checks the Chrome trace-event rendering: metadata rows, X
// events with µs timestamps, and args carrying the span attributes.
func TestWriteJSON(t *testing.T) {
	tr := synthetic()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	var doc chromeTrace
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("trace does not decode against the schema: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name != "thread_name" || ev.Args["name"] != "w" {
				t.Errorf("metadata event = %+v", ev)
			}
		case "X":
			complete++
			if ev.Pid != 1 || ev.Tid != 1 || ev.Cat != "stage" {
				t.Errorf("complete event = %+v", ev)
			}
			if ev.Dur < 0 {
				t.Errorf("negative duration: %+v", ev)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 1 || complete != 4 {
		t.Fatalf("got %d metadata + %d complete events, want 1 + 4", meta, complete)
	}
	// The match span carries rule and matches args; ts/dur are microseconds.
	for _, ev := range doc.TraceEvents {
		if ev.Name == StageMatch {
			if ev.Args["rule"] != "r1" || ev.Args["matches"] != float64(2) {
				t.Fatalf("match args = %v", ev.Args)
			}
			if ev.Ts != 4000 || ev.Dur != 4000 {
				t.Fatalf("match ts/dur = %v/%v µs, want 4000/4000", ev.Ts, ev.Dur)
			}
		}
		if ev.Name == StageFile && ev.Args["file"] != "a.c" {
			t.Fatalf("file args = %v", ev.Args)
		}
	}
}

// TestForkNaming: forked tracks inherit the parent name as a prefix and get
// fresh tids.
func TestForkNaming(t *testing.T) {
	tr := New()
	tk := tr.Track("worker-1")
	fk := tk.Fork("seg-0")
	if fk.name != "worker-1/seg-0" {
		t.Fatalf("fork name = %q", fk.name)
	}
	if fk.tid == tk.tid {
		t.Fatalf("fork shares tid %d with parent", fk.tid)
	}
}

// TestConcurrentTracks hammers track creation and span recording from many
// goroutines; run under -race this pins the one-track-per-goroutine design.
func TestConcurrentTracks(t *testing.T) {
	tr := New()
	root := tr.Track("root")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tk := root.Fork(fmt.Sprintf("g%d", g))
			for i := 0; i < 200; i++ {
				sp := tk.Start(StageMatch).Rule("r").Matches(i % 2)
				tk.Start(StageCFG).End()
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	p := tr.Profile()
	if p.Spans != 8*200*2 {
		t.Fatalf("recorded %d spans, want %d", p.Spans, 8*200*2)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}
