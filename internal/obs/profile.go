package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// StageStat aggregates one stage across a trace. Total is wall time inside
// spans of the stage; Self subtracts time spent in nested child spans, so
// summing Self over all stages accounts for the traced wall time exactly
// once (the "file" umbrella span's self-time is pipeline glue).
type StageStat struct {
	Stage string
	Count int
	Total time.Duration
	Self  time.Duration
}

// RuleStat attributes match time to a single rule.
type RuleStat struct {
	Rule    string
	Spans   int // match spans recorded for the rule
	Fired   int // spans with at least one match
	Matches int // total matches
	Total   time.Duration
}

// Profile is the aggregate view of one trace, feeding the `--profile` table
// and the serve stage histograms.
type Profile struct {
	Wall   time.Duration // earliest span start to latest span end
	Spans  int
	Stages []StageStat // sorted by Self descending
	Rules  []RuleStat  // sorted by Total descending

	// Cache outcome breakdown, split file-level vs function-level (a span
	// carrying a Func name is a function-cache lookup).
	FileCacheHits, FileCacheMisses int
	FuncCacheHits, FuncCacheMisses int
	// Prefilter decisions, file-level vs per-function-segment (a span
	// carrying a Func name is a segment decision).
	PrefilterSkips, PrefilterPasses         int
	FuncPrefilterSkips, FuncPrefilterPasses int
	// Findings counts check-rule reports emitted during the trace (the sum
	// of "check" span match counters), with a per-rule breakdown.
	Findings       int
	FindingsByRule map[string]int
}

// Profile aggregates the trace. Call after the traced run completes. Safe on
// a nil tracer (returns an empty profile).
func (t *Tracer) Profile() *Profile {
	p := &Profile{}
	if t == nil {
		return p
	}
	t.mu.Lock()
	tracks := append([]*Track(nil), t.tracks...)
	t.mu.Unlock()

	stages := map[string]*StageStat{}
	rules := map[string]*RuleStat{}
	var lo, hi time.Duration = -1, 0
	for _, tk := range tracks {
		// child durations roll up into the parent's child-time so self =
		// dur - childTime without a second pass.
		child := make([]time.Duration, len(tk.spans))
		for _, sp := range tk.spans {
			end := sp.end
			if end < sp.start {
				end = sp.start
			}
			dur := end - sp.start
			if sp.parent >= 0 {
				child[sp.parent] += dur
			}
			if lo < 0 || sp.start < lo {
				lo = sp.start
			}
			if end > hi {
				hi = end
			}
		}
		for i, sp := range tk.spans {
			end := sp.end
			if end < sp.start {
				end = sp.start
			}
			dur := end - sp.start
			self := dur - child[i]
			if self < 0 {
				self = 0
			}
			p.Spans++
			ss := stages[sp.stage]
			if ss == nil {
				ss = &StageStat{Stage: sp.stage}
				stages[sp.stage] = ss
			}
			ss.Count++
			ss.Total += dur
			ss.Self += self

			switch sp.stage {
			case StageMatch:
				if sp.rule != "" {
					rs := rules[sp.rule]
					if rs == nil {
						rs = &RuleStat{Rule: sp.rule}
						rules[sp.rule] = rs
					}
					rs.Spans++
					rs.Matches += sp.matches
					if sp.matches > 0 {
						rs.Fired++
					}
					rs.Total += dur
				}
			case StageCacheRead:
				switch {
				case sp.fn != "" && sp.outcome == OutcomeHit:
					p.FuncCacheHits++
				case sp.fn != "" && sp.outcome == OutcomeMiss:
					p.FuncCacheMisses++
				case sp.outcome == OutcomeHit:
					p.FileCacheHits++
				case sp.outcome == OutcomeMiss:
					p.FileCacheMisses++
				}
			case StagePrefilter:
				switch {
				case sp.fn != "" && sp.outcome == OutcomeSkip:
					p.FuncPrefilterSkips++
				case sp.fn != "" && sp.outcome == OutcomePass:
					p.FuncPrefilterPasses++
				case sp.outcome == OutcomeSkip:
					p.PrefilterSkips++
				case sp.outcome == OutcomePass:
					p.PrefilterPasses++
				}
			case StageCheck:
				p.Findings += sp.matches
				if sp.rule != "" && sp.matches > 0 {
					if p.FindingsByRule == nil {
						p.FindingsByRule = map[string]int{}
					}
					p.FindingsByRule[sp.rule] += sp.matches
				}
			}
		}
	}
	if lo > 0 || hi > 0 {
		p.Wall = hi - lo
	}
	for _, ss := range stages {
		p.Stages = append(p.Stages, *ss)
	}
	sort.Slice(p.Stages, func(i, j int) bool {
		if p.Stages[i].Self != p.Stages[j].Self {
			return p.Stages[i].Self > p.Stages[j].Self
		}
		return p.Stages[i].Stage < p.Stages[j].Stage
	})
	for _, rs := range rules {
		p.Rules = append(p.Rules, *rs)
	}
	sort.Slice(p.Rules, func(i, j int) bool {
		if p.Rules[i].Total != p.Rules[j].Total {
			return p.Rules[i].Total > p.Rules[j].Total
		}
		return p.Rules[i].Rule < p.Rules[j].Rule
	})
	return p
}

// StageSeconds returns per-stage self-time in seconds, the shape the serve
// histograms observe.
func (p *Profile) StageSeconds() map[string]float64 {
	out := make(map[string]float64, len(p.Stages))
	for _, ss := range p.Stages {
		out[ss.Stage] = ss.Self.Seconds()
	}
	return out
}

// Format renders the aggregate table `gocci --profile` prints: self-time per
// stage, per-rule fire/miss/time, the cache hit breakdown, and prefilter
// skip savings.
func (p *Profile) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "wall %s over %d spans\n", round(p.Wall), p.Spans)
	sb.WriteString("stage         count      total       self   self%\n")
	for _, ss := range p.Stages {
		pct := 0.0
		if p.Wall > 0 {
			pct = 100 * float64(ss.Self) / float64(p.Wall)
		}
		fmt.Fprintf(&sb, "%-12s %6d %10s %10s  %5.1f%%\n",
			ss.Stage, ss.Count, round(ss.Total), round(ss.Self), pct)
	}
	if len(p.Rules) > 0 {
		sb.WriteString("rule                        runs  fired  matches       time\n")
		for _, rs := range p.Rules {
			fmt.Fprintf(&sb, "%-26s %6d %6d %8d %10s\n",
				rs.Rule, rs.Spans, rs.Fired, rs.Matches, round(rs.Total))
		}
		for _, rs := range p.Rules {
			if rs.Fired == 0 {
				fmt.Fprintf(&sb, "rule %s never fired\n", rs.Rule)
			}
		}
	}
	if p.Findings > 0 {
		rules := make([]string, 0, len(p.FindingsByRule))
		for r := range p.FindingsByRule {
			rules = append(rules, r)
		}
		sort.Strings(rules)
		fmt.Fprintf(&sb, "findings: %d", p.Findings)
		for i, r := range rules {
			if i == 0 {
				sb.WriteString(" (")
			} else {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s %d", r, p.FindingsByRule[r])
		}
		if len(rules) > 0 {
			sb.WriteString(")")
		}
		sb.WriteString("\n")
	}
	if n := p.FileCacheHits + p.FileCacheMisses; n > 0 {
		fmt.Fprintf(&sb, "file cache: %d hits / %d lookups\n", p.FileCacheHits, n)
	}
	if n := p.FuncCacheHits + p.FuncCacheMisses; n > 0 {
		fmt.Fprintf(&sb, "func cache: %d hits / %d lookups\n", p.FuncCacheHits, n)
	}
	if n := p.PrefilterSkips + p.PrefilterPasses; n > 0 {
		fmt.Fprintf(&sb, "prefilter: skipped %d of %d files before parsing\n", p.PrefilterSkips, n)
	}
	if n := p.FuncPrefilterSkips + p.FuncPrefilterPasses; n > 0 {
		fmt.Fprintf(&sb, "segment prefilter: skipped %d of %d segments before matching\n", p.FuncPrefilterSkips, n)
	}
	return sb.String()
}

// round trims a duration for table display.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(time.Microsecond)
	default:
		return d
	}
}
