package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// LatencyBuckets are the default upper bounds (seconds) for request and
// stage latency histograms: 50µs to 10s, roughly ×2.5 per step, matching
// the spread between a warm single-file apply (tens of microseconds) and a
// cold corpus sweep (seconds).
var LatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram with Prometheus exposition
// semantics (cumulative buckets plus an implicit +Inf). Safe for concurrent
// Observe/Snapshot.
type Histogram struct {
	mu     sync.Mutex
	upper  []float64 // ascending bucket upper bounds
	counts []uint64  // per-bucket (non-cumulative); last is +Inf overflow
	sum    float64
	total  uint64
}

// NewHistogram creates a histogram with the given upper bounds, which are
// sorted and deduplicated; nil means LatencyBuckets.
func NewHistogram(upper ...float64) *Histogram {
	if len(upper) == 0 {
		upper = LatencyBuckets
	}
	u := append([]float64(nil), upper...)
	sort.Float64s(u)
	dedup := u[:0]
	for i, v := range u {
		if i == 0 || v != u[i-1] {
			dedup = append(dedup, v)
		}
	}
	return &Histogram{upper: dedup, counts: make([]uint64, len(dedup)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.upper, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// HistSnapshot is a consistent copy of a histogram's state. Counts are
// cumulative per Prometheus convention; the final entry is the +Inf bucket
// and always equals Count.
type HistSnapshot struct {
	Upper  []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram under its lock.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{Upper: h.upper, Counts: make([]uint64, len(h.counts)), Sum: h.sum, Count: h.total}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		s.Counts[i] = cum
	}
	return s
}

// PromWriter emits Prometheus text exposition format 0.0.4 and guarantees
// the invariants a strict scraper checks: exactly one # HELP and one # TYPE
// line per family, emitted before the family's first sample, with all of a
// family's series contiguous. Callers group series by family; the writer
// panics on interleaving, which the serve metrics test would catch.
type PromWriter struct {
	w      io.Writer
	err    error
	seen   map[string]bool
	family string
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, seen: map[string]bool{}}
}

// Err returns the first write error.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

// Family opens a metric family: one HELP and one TYPE line. Every sample
// until the next Family call must belong to it.
func (p *PromWriter) Family(name, typ, help string) {
	if p.seen[name] {
		panic("obs: duplicate metric family " + name)
	}
	p.seen[name] = true
	p.family = name
	p.printf("# HELP %s %s\n", name, escapeHelp(help))
	p.printf("# TYPE %s %s\n", name, typ)
}

// Sample emits one series sample of the open family. For histogram families
// pass the suffixed name ("_bucket", "_sum", "_count") via suffix.
func (p *PromWriter) Sample(suffix string, labels [][2]string, value float64) {
	if p.family == "" {
		panic("obs: sample before Family")
	}
	p.printf("%s%s%s %s\n", p.family, suffix, formatLabels(labels), formatValue(value))
}

// Counter emits a whole single-sample family in one call.
func (p *PromWriter) Counter(name, help string, labels [][2]string, value float64) {
	p.Family(name, "counter", help)
	p.Sample("", labels, value)
}

// Gauge emits a whole single-sample gauge family in one call.
func (p *PromWriter) Gauge(name, help string, labels [][2]string, value float64) {
	p.Family(name, "gauge", help)
	p.Sample("", labels, value)
}

// HistogramSeries emits the _bucket/_sum/_count series of one histogram
// snapshot under the open family, tagged with the given labels.
func (p *PromWriter) HistogramSeries(labels [][2]string, s HistSnapshot) {
	for i, ub := range s.Upper {
		p.Sample("_bucket", append(labels[:len(labels):len(labels)], [2]string{"le", formatValue(ub)}), float64(s.Counts[i]))
	}
	p.Sample("_bucket", append(labels[:len(labels):len(labels)], [2]string{"le", "+Inf"}), float64(s.Count))
	p.Sample("_sum", labels, s.Sum)
	p.Sample("_count", labels, float64(s.Count))
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatLabels(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l[0])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l[1]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}
