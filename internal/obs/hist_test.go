package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0.01, 0.1, 1)
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if want := []float64{0.01, 0.1, 1}; len(s.Upper) != len(want) {
		t.Fatalf("upper = %v", s.Upper)
	}
	// Cumulative: ≤0.01 → 2 (0.005, 0.01 inclusive), ≤0.1 → 3, ≤1 → 4, +Inf → 5.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Sum < 2.564 || s.Sum > 2.566 {
		t.Fatalf("sum = %v", s.Sum)
	}
	if s.Counts[len(s.Counts)-1] != s.Count {
		t.Fatalf("+Inf bucket %d != count %d", s.Counts[len(s.Counts)-1], s.Count)
	}
}

func TestHistogramDefaultsAndDedup(t *testing.T) {
	if got := NewHistogram().Snapshot().Upper; len(got) != len(LatencyBuckets) {
		t.Fatalf("default buckets = %v", got)
	}
	s := NewHistogram(1, 0.5, 1, 0.5).Snapshot()
	if len(s.Upper) != 2 || s.Upper[0] != 0.5 || s.Upper[1] != 1 {
		t.Fatalf("dedup/sort broken: %v", s.Upper)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(float64(i) / 1000)
				h.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8*500 {
		t.Fatalf("count = %d, want %d", got, 8*500)
	}
}

func TestPromWriterOutput(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Counter("reqs_total", "Total requests.", [][2]string{{"endpoint", "run"}}, 3)
	p.Gauge("sessions", "Open sessions.", nil, 1)
	h := NewHistogram(0.1, 1)
	h.Observe(0.05)
	h.Observe(5)
	p.Family("latency_seconds", "histogram", "Request latency.")
	p.HistogramSeries([][2]string{{"endpoint", "run"}}, h.Snapshot())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP reqs_total Total requests.\n# TYPE reqs_total counter\nreqs_total{endpoint=\"run\"} 3\n",
		"# HELP sessions Open sessions.\n# TYPE sessions gauge\nsessions 1\n",
		"# TYPE latency_seconds histogram\n",
		`latency_seconds_bucket{endpoint="run",le="0.1"} 1`,
		`latency_seconds_bucket{endpoint="run",le="1"} 1`,
		`latency_seconds_bucket{endpoint="run",le="+Inf"} 2`,
		`latency_seconds_sum{endpoint="run"} 5.05`,
		`latency_seconds_count{endpoint="run"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPromWriterPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Family("a_total", "counter", "A.")
	mustPanic("duplicate family", func() { p.Family("a_total", "counter", "A.") })
	q := NewPromWriter(&buf)
	mustPanic("sample before family", func() { q.Sample("", nil, 1) })
}

func TestPromWriterEscaping(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Counter("m_total", "line\none \\ two", [][2]string{{"path", `a"b\c` + "\nd"}}, 1)
	out := buf.String()
	if !strings.Contains(out, `# HELP m_total line\none \\ two`) {
		t.Errorf("help not escaped: %s", out)
	}
	if !strings.Contains(out, `path="a\"b\\c\nd"`) {
		t.Errorf("label not escaped: %s", out)
	}
}
