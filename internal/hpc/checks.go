// The hpc-checks campaign: match-only anti-pattern detectors for the same
// HPC code the transformation campaigns rewrite. Every rule is a star-line
// check (`gocci --check --campaign hpc-checks`), so the campaign never
// touches a file — it reports findings with stable baseline keys and rides
// the same prefilter, worker pool, and per-function result cache as the
// rewriting campaigns.

package hpc

// cudaAPIChecks flags CUDA runtime calls whose use is correct C but a known
// performance or reliability trap: an ignored cudaMalloc status, and the
// whole-device synchronize where a stream- or event-scoped wait would do.
const cudaAPIChecks = `// gocci:check id=cuda-malloc-unchecked severity=error msg="cudaMalloc return code is ignored"
@cudamallocunchecked@
expression list args;
@@
* cudaMalloc(args);

// gocci:check id=cuda-sync-device severity=warning msg="cudaDeviceSynchronize stalls every stream; prefer cudaStreamSynchronize or events"
@cudasyncdevice@
@@
* cudaDeviceSynchronize();
`

// cudaLaunchChecks flags the four-argument launch form that names a shared
// memory size but then pins the kernel to the default stream: code that
// bothers with the long form almost always meant to pass a real stream.
const cudaLaunchChecks = `// gocci:check id=cuda-launch-default-stream severity=warning msg="kernel k launched with explicit shared memory s but the default stream"
@cudalaunchdefaultstream@
identifier k;
expression b, t, s;
expression list el;
@@
* k<<<b, t, s, 0>>>(el)
`

// accPragmaChecks flags OpenACC directives that compile clean but leave the
// important decisions implicit: a parallel loop with no data or tuning
// clauses, and the kernels construct that defers parallelization entirely
// to the compiler. Both are exact-directive matches — adding any clause
// makes the directive a different pragma line and the finding disappears.
const accPragmaChecks = `// gocci:check id=acc-parallel-no-clauses severity=warning msg="bare acc parallel loop: no data or tuning clauses; data movement is implicit"
@accparallelbare@
@@
* #pragma acc parallel loop

// gocci:check id=acc-kernels severity=info msg="acc kernels leaves parallelization to the compiler; prefer acc parallel with explicit clauses"
@acckernels@
@@
* #pragma acc kernels
`

// hostLeakChecks is the classic Coccinelle leak shape as a check: a malloc
// assignment from which some path (`when exists`) reaches a return without
// passing the matching free.
const hostLeakChecks = `// gocci:check id=host-alloc-no-free severity=warning msg="p allocated here but not freed on some path to return"
@hostallocnofree@
expression p;
expression sz;
@@
* p = malloc(sz);
... when != free(p)
when exists
* return ...;
`

// checksCampaign packages the detectors. The dialect is the superset the
// members need (CUDA implies C++), so one sweep covers .c, .cpp, and .cu
// sources alike.
func checksCampaign() *Campaign {
	return &Campaign{
		Name:      "hpc-checks",
		Title:     "match-only HPC anti-pattern checks (CUDA API misuse, bare ACC directives, host leaks)",
		Version:   "v1",
		CPlusPlus: true,
		Std:       17,
		CUDA:      true,
		members: []member{
			{name: "cuda-api-checks.cocci", text: cudaAPIChecks},
			{name: "cuda-launch-checks.cocci", text: cudaLaunchChecks},
			{name: "acc-pragma-checks.cocci", text: accPragmaChecks},
			{name: "host-leak-checks.cocci", text: hostLeakChecks},
		},
	}
}
