// The hipify campaign: CUDA→HIP translation (patchlib L8–L10) shipped as a
// batch campaign whose SmPL text is *generated* from the live dictionaries
// in internal/hipify. Each dictionary family becomes one member patch —
// headers, functions (renamed only in call position), types (renamed only
// in declaration position), enumerators, and the triple-chevron kernel
// launch — applied in that order. Because every dictionary entry is spelled
// out in the generated patch text, the persistent result cache keys on the
// dictionaries themselves: extending the function table reshapes the patch
// and invalidates stale outcomes with no extra bookkeeping.
//
// The launch member is deliberately a single rule so it stays
// function-local (core.FunctionLocal) and rides the per-function result
// cache; it covers the four-argument <<<b,t,x,y>>> form the corpus
// generator emits. Launches with fewer configuration arguments fall to the
// legacy walker (--legacy), which pads the missing shared-memory/stream
// arguments with 0.

package hpc

import (
	"sort"
	"strings"

	"repro/internal/hipify"
)

// sortedKeys returns m's keys whose mapping actually renames (identity
// entries like __syncthreads generate no rule), in sorted order for
// deterministic patch text.
func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k, v := range m {
		if k != v {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// hipifyHeadersPatch rewrites #include directives.
func hipifyHeadersPatch() string {
	var sb strings.Builder
	for _, from := range sortedKeys(hipify.Headers) {
		sb.WriteString("@@\n@@\n- #include <" + from + ">\n+ #include <" + hipify.Headers[from] + ">\n\n")
	}
	return sb.String()
}

// hipifyFuncsPatch renames API functions in call position only: a local
// variable or field that merely collides with an API name never matches the
// fn(el) call pattern.
func hipifyFuncsPatch() string {
	var sb strings.Builder
	for _, from := range sortedKeys(hipify.Functions) {
		sb.WriteString("@@\nexpression list el;\n@@\n- " + from + "\n+ " + hipify.Functions[from] + "\n(el)\n\n")
	}
	return sb.String()
}

// hipifyTypesPatch renames type names in declaration-statement position,
// with and without an initializer. Function-parameter, return-type, and
// cast positions are outside the current SmPL grammar (a typed parameter
// cannot appear in a pattern); sources using CUDA types there fall to the
// legacy walker (--legacy), which renames every type position.
func hipifyTypesPatch() string {
	var sb strings.Builder
	for _, from := range sortedKeys(hipify.Types) {
		to := hipify.Types[from]
		sb.WriteString("@@\nidentifier i;\n@@\n- " + from + " i;\n+ " + to + " i;\n\n")
		sb.WriteString("@@\nidentifier i;\nexpression e;\n@@\n- " + from + " i = e;\n+ " + to + " i = e;\n\n")
	}
	return sb.String()
}

// hipifyEnumsPatch renames enumerator constants in expression position.
func hipifyEnumsPatch() string {
	var sb strings.Builder
	for _, from := range sortedKeys(hipify.Enums) {
		sb.WriteString("@@\n@@\n- " + from + "\n+ " + hipify.Enums[from] + "\n\n")
	}
	return sb.String()
}

// hipifyLaunchPatch rewrites the four-argument triple-chevron launch to
// hipLaunchKernelGGL. Kept a single rule so the patch stays function-local.
const hipifyLaunchPatch = `@@
identifier k;
expression b,t,x,y;
expression list el;
@@
- k<<<b,t,x,y>>>(el)
+ hipLaunchKernelGGL(k, b, t, x, y, el)
`

// hipifyCampaign builds the CUDA→HIP campaign from the live dictionaries.
func hipifyCampaign() *Campaign {
	return &Campaign{
		Name:      "hipify",
		Title:     "CUDA API usage and kernel launches to HIP",
		Version:   "1",
		CPlusPlus: true,
		CUDA:      true,
		members: []member{
			{name: "hipify-headers.cocci", text: hipifyHeadersPatch()},
			{name: "hipify-funcs.cocci", text: hipifyFuncsPatch()},
			{name: "hipify-types.cocci", text: hipifyTypesPatch()},
			{name: "hipify-enums.cocci", text: hipifyEnumsPatch()},
			{name: "hipify-launch.cocci", text: hipifyLaunchPatch},
		},
	}
}
