// The acc2omp campaign: the paper's "Translation of directive-based APIs"
// use case (patchlib L11) shipped as a batch campaign. The single member
// patch matches every "#pragma acc" line, hands the directive body to the
// live translator (internal/accomp) through a Go script hook, and replaces
// the pragma with the OpenMP form the translator returns.

package hpc

import (
	"repro/internal/accomp"
	"repro/internal/minipy"
)

// acc2ompPatch is the L11 semantic patch: match the pragma, translate its
// body in the script rule, substitute the result.
const acc2ompPatch = `@moa@
pragmainfo pi;
@@
#pragma acc pi

@script:go o2o@
pi << moa.pi;
po;
@@
(translated by internal/accomp)

@@
pragmainfo moa.pi;
pragmainfo o2o.po;
@@
- #pragma acc pi
+ #pragma omp po
`

// acc2omp builds the OpenACC→OpenMP campaign for one translation mode. The
// o2o hook's version folds in the mode and the translation-table
// fingerprint, so editing a directive or clause mapping invalidates every
// cached outcome the old tables produced.
func acc2omp(offload bool) *Campaign {
	mode, name, target := accomp.Host, "acc2omp", "host threading"
	if offload {
		mode, name, target = accomp.Offload, "acc2omp-offload", "device offloading"
	}
	return &Campaign{
		Name:    name,
		Title:   "OpenACC directives to OpenMP (" + target + ")",
		Version: "1",
		members: []member{{name: name + ".cocci", text: acc2ompPatch}},
		hooks: []hook{{
			rule:    "o2o",
			version: name + ":" + accomp.Fingerprint(),
			fn: func(in map[string]string) (map[string]string, error) {
				omp, _, err := accomp.Translate(in["pi"], mode)
				if err != nil || omp == "" {
					// A directive the tables cannot translate (or one whose
					// translation is "remove the pragma") is left untouched:
					// a KeyError skips this environment without output
					// bindings, so the transform rule never fires on it,
					// instead of failing the whole file.
					return nil, &minipy.KeyError{Key: in["pi"]}
				}
				return map[string]string{"po": omp}, nil
			},
		}},
	}
}
