package hpc

import (
	"os"
	"path/filepath"
	"testing"

	sempatch "repro"
	"repro/internal/codegen"
)

// BenchmarkHPCCampaign measures the shipped hipify campaign over a
// generated corpus, cold (no cache) vs warm (persistent result cache
// primed): the warm case is the recurring-maintenance workload the
// campaign re-platforming exists for.
func BenchmarkHPCCampaign(b *testing.B) {
	c, _ := ByName("hipify")
	dir := b.TempDir()
	var paths []string
	for i := 0; i < 8; i++ {
		p := filepath.Join(dir, "app"+string(rune('a'+i))+".cu")
		src := codegen.CUDA(codegen.Config{Funcs: 4, StmtsPerFunc: 3, Seed: int64(i + 1)})
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			b.Fatal(err)
		}
		paths = append(paths, p)
	}
	sweep := func(b *testing.B, opts sempatch.Options) {
		ca, err := c.Build(opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ca.ApplyAllPathsFunc(paths, nil); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep(b, sempatch.Options{})
		}
	})
	b.Run("warm", func(b *testing.B) {
		opts := sempatch.Options{CacheDir: filepath.Join(dir, "cache")}
		sweep(b, opts) // prime
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweep(b, opts)
		}
	})
	b.Run("verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep(b, sempatch.Options{Verify: true})
		}
	})
}
